// Envelope inference and the sandwich acceptance check:
//
//   observed RoundStats peaks  <=  inferred spec  <=  hand-declared spec
//
// The left inequality is check_soundness over an instrumented emulation run
// with the verifier-derived hints; the right is check_spec_dominance against
// a spec built from generous hand-fed hints. Both sides are asserted here on
// the pointer-chasing corpus program, the one whose bounds genuinely need the
// abstract interpreter (data-dependent addressing).
#include "verify/envelope.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/spec_soundness.hpp"
#include "analysis/static_checker.hpp"
#include "mpc/simulation.hpp"
#include "ram/machine.hpp"
#include "ram/programs.hpp"
#include "strategies/ram_emulation.hpp"
#include "verify/abstract_interpreter.hpp"

namespace mpch::verify {
namespace {

using namespace ram::asm_ops;

/// MpcConfig sized exactly to a spec (the mpch-verify / mpch-analyze
/// documented config): s = worst declared memory/delivery.
mpc::MpcConfig config_for(const analysis::ProtocolSpec& spec) {
  mpc::MpcConfig c;
  c.machines = spec.machines;
  c.max_rounds = spec.max_rounds;
  c.query_budget = 0;
  std::uint64_t s = 0;
  for (std::uint64_t shape = 0; shape < spec.distinct_round_shapes(); ++shape) {
    const std::uint64_t round = shape < spec.prologue.size() ? shape : spec.prologue.size();
    const analysis::RoundEnvelope& env = spec.envelope(round);
    s = std::max({s, env.memory_bits, env.recv_bits});
  }
  c.local_memory_bits = s;
  return c;
}

std::vector<std::uint64_t> ring_memory(std::size_t n) {
  std::vector<std::uint64_t> memory(n);
  for (std::size_t i = 0; i < n; ++i) memory[i] = (i + 1) % n;
  return memory;
}

TEST(VerifyEnvelope, SandwichObservedInferredDeclared) {
  const auto memory = ring_memory(16);
  const auto prog = ram::programs::pointer_chase(8);
  const ProgramFacts facts = analyze_program(prog, MemoryModel::from_words(memory));
  ASSERT_TRUE(facts.terminates) << facts.summary();

  const std::uint64_t machines = 4;
  const InferredRamSpec inferred = infer_ram_emulation_spec(prog, facts, machines, 1);
  EXPECT_EQ(inferred.memory_words, facts.touched_words);
  EXPECT_EQ(inferred.max_steps, facts.max_steps);

  // Upper half: the inferred envelope fits under a hand-declared spec built
  // from generous hints (64 steps >= the proven bound of ~50).
  strategies::RamEmulationStrategy declared_strategy(prog, machines, 1, memory.size(), 64);
  const analysis::ProtocolSpec declared = declared_strategy.protocol_spec();
  const analysis::AnalysisReport dominance =
      analysis::check_spec_dominance(inferred.spec, declared);
  EXPECT_TRUE(dominance.ok()) << dominance.format();

  // Lower half: run the emulation instrumented under the inferred spec's own
  // config and assert every observed per-round peak fits the envelope.
  strategies::RamEmulationStrategy strategy(prog, machines, 1, inferred.memory_words,
                                            inferred.max_steps);
  const mpc::MpcConfig config = config_for(inferred.spec);
  mpc::MpcSimulation sim(config, nullptr);
  mpc::MpcRunResult result = sim.run(strategy, strategy.make_initial_memory(memory));
  ASSERT_TRUE(result.completed);
  const analysis::AnalysisReport sound =
      analysis::check_soundness(inferred.spec, result, config);
  EXPECT_TRUE(sound.ok()) << sound.format();

  // And the emulated machine computed the same thing as native execution.
  ram::RamMachine native(prog, memory);
  native.run();
  EXPECT_TRUE(strategies::RamEmulationStrategy::parse_output(result.output) == native.state());
}

TEST(VerifyEnvelope, SandwichHoldsForEveryCorpusProgram) {
  for (const auto& entry : ram::programs::corpus()) {
    const ProgramFacts facts =
        analyze_program(entry.program, MemoryModel::from_words(entry.memory));
    ASSERT_TRUE(facts.terminates) << entry.name;
    const InferredRamSpec inferred =
        infer_ram_emulation_spec(entry.program, facts, 4, entry.steps_per_round);

    strategies::RamEmulationStrategy strategy(entry.program, 4, entry.steps_per_round,
                                              inferred.memory_words, inferred.max_steps);
    const mpc::MpcConfig config = config_for(inferred.spec);
    mpc::MpcSimulation sim(config, nullptr);
    mpc::MpcRunResult result = sim.run(strategy, strategy.make_initial_memory(entry.memory));
    ASSERT_TRUE(result.completed) << entry.name;
    const analysis::AnalysisReport sound =
        analysis::check_soundness(inferred.spec, result, config);
    EXPECT_TRUE(sound.ok()) << entry.name << ":\n" << sound.format();
  }
}

TEST(VerifyEnvelope, TighterDeclaredSpecFailsDominance) {
  const auto memory = ring_memory(16);
  const auto prog = ram::programs::pointer_chase(8);
  const ProgramFacts facts = analyze_program(prog, MemoryModel::from_words(memory));
  ASSERT_TRUE(facts.terminates);
  const InferredRamSpec inferred = infer_ram_emulation_spec(prog, facts, 4, 1);

  // A hand-declared bound of 10 steps is *below* the proven worst case: the
  // inferred spec cannot fit inside it, and the round-count check says why.
  strategies::RamEmulationStrategy tight(prog, 4, 1, memory.size(), 10);
  const analysis::AnalysisReport dominance =
      analysis::check_spec_dominance(inferred.spec, tight.protocol_spec());
  EXPECT_FALSE(dominance.ok());
  EXPECT_TRUE(std::any_of(dominance.violations.begin(), dominance.violations.end(),
                          [](const analysis::Diagnostic& d) {
                            return d.kind == analysis::ViolationKind::kRoundCount;
                          }))
      << dominance.format();
}

TEST(VerifyEnvelope, InferenceRequiresATerminationProof) {
  const ProgramFacts facts = analyze_program({jmp(0)}, MemoryModel{});
  ASSERT_FALSE(facts.terminates);
  EXPECT_THROW(infer_ram_emulation_spec({jmp(0)}, facts, 4, 1), std::invalid_argument);
}

TEST(VerifyEnvelope, DominanceReportsFieldwiseViolations) {
  analysis::ProtocolSpec inner;
  inner.protocol = "inner";
  inner.machines = 4;
  inner.max_rounds = 10;
  inner.needs_oracle = true;
  inner.steady = {128, 3, 2, 2, 64, 64, 32, 0};

  analysis::ProtocolSpec outer = inner;
  outer.protocol = "outer";
  outer.needs_oracle = false;
  outer.steady = {64, 1, 2, 2, 64, 64, 32, 0};  // less memory, fewer queries

  const analysis::AnalysisReport report = analysis::check_spec_dominance(inner, outer);
  EXPECT_FALSE(report.ok());
  auto count = [&](analysis::ViolationKind kind) {
    return std::count_if(report.violations.begin(), report.violations.end(),
                         [kind](const analysis::Diagnostic& d) { return d.kind == kind; });
  };
  EXPECT_EQ(count(analysis::ViolationKind::kMemory), 1);
  EXPECT_EQ(count(analysis::ViolationKind::kQueryBudget), 1);
  EXPECT_EQ(count(analysis::ViolationKind::kOracleMissing), 1);
  EXPECT_EQ(count(analysis::ViolationKind::kRouting), 0);
}

TEST(VerifyEnvelope, DominanceIsReflexive) {
  analysis::ProtocolSpec spec;
  spec.protocol = "self";
  spec.machines = 4;
  spec.max_rounds = 5;
  spec.steady = {128, 0, 2, 2, 64, 64, 32, 0};
  EXPECT_TRUE(analysis::check_spec_dominance(spec, spec).ok());
}

TEST(VerifyEnvelope, DominanceThrowsOnZeroMachines) {
  analysis::ProtocolSpec good;
  good.protocol = "good";
  good.machines = 2;
  good.max_rounds = 1;
  analysis::ProtocolSpec bad;
  bad.protocol = "bad";
  bad.machines = 0;
  bad.max_rounds = 1;
  EXPECT_THROW(analysis::check_spec_dominance(bad, good), std::invalid_argument);
  EXPECT_THROW(analysis::check_spec_dominance(good, bad), std::invalid_argument);
}

}  // namespace
}  // namespace mpch::verify
