#include "strategies/block_store.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace mpch::strategies {
namespace {

using util::BitString;

core::LineParams params() { return core::LineParams::make(64, 16, 8, 100); }

TEST(BlockSet, AddFindContains) {
  core::LineParams p = params();
  BlockSet set(p);
  BitString x = BitString::from_uint(0xABCD, 16);
  set.add(3, x);
  EXPECT_TRUE(set.contains(3));
  EXPECT_FALSE(set.contains(4));
  ASSERT_NE(set.find(3), nullptr);
  EXPECT_EQ(*set.find(3), x);
  EXPECT_EQ(set.find(4), nullptr);
  EXPECT_EQ(set.size(), 1u);
}

TEST(BlockSet, RejectsBadIndexOrWidth) {
  core::LineParams p = params();
  BlockSet set(p);
  EXPECT_THROW(set.add(0, BitString(16)), std::out_of_range);
  EXPECT_THROW(set.add(9, BitString(16)), std::out_of_range);
  EXPECT_THROW(set.add(1, BitString(15)), std::invalid_argument);
}

TEST(BlockSet, EncodeDecodeRoundTrip) {
  core::LineParams p = params();
  util::Rng rng(1);
  BlockSet set(p);
  for (std::uint64_t b : {7, 2, 5}) {
    set.add(b, BitString::random(p.u, [&] { return rng.next_u64(); }));
  }
  BitString wire = set.encode();
  EXPECT_EQ(wire.size(), BlockSet::encoded_bits(p, 3));
  BlockSet decoded = BlockSet::decode(p, wire);
  EXPECT_EQ(decoded.size(), 3u);
  for (std::uint64_t b : {7, 2, 5}) {
    ASSERT_TRUE(decoded.contains(b));
    EXPECT_EQ(*decoded.find(b), *set.find(b));
  }
}

TEST(BlockSet, EmptyEncode) {
  core::LineParams p = params();
  BlockSet set(p);
  BlockSet decoded = BlockSet::decode(p, set.encode());
  EXPECT_EQ(decoded.size(), 0u);
}

TEST(BlockSet, IndicesSorted) {
  core::LineParams p = params();
  BlockSet set(p);
  for (std::uint64_t b : {6, 1, 4}) set.add(b, util::BitString(p.u));
  EXPECT_EQ(set.indices(), (std::vector<std::uint64_t>{1, 4, 6}));
}

TEST(Frontier, EncodeDecodeRoundTrip) {
  core::LineParams p = params();
  util::Rng rng(2);
  Frontier f;
  f.next_index = 57;
  f.ell = 6;
  f.r = BitString::random(p.u, [&] { return rng.next_u64(); });
  BitString wire = f.encode(p);
  EXPECT_EQ(wire.size(), Frontier::encoded_bits(p));
  Frontier decoded = Frontier::decode(p, wire);
  EXPECT_EQ(decoded.next_index, 57u);
  EXPECT_EQ(decoded.ell, 6u);
  EXPECT_EQ(decoded.r, f.r);
}

TEST(OwnershipPlan, RoundRobinCoversAllBlocks) {
  core::LineParams p = params();
  OwnershipPlan plan = OwnershipPlan::round_robin(p, 3);
  EXPECT_EQ(plan.machines(), 3u);
  std::uint64_t total = 0;
  for (std::uint64_t j = 0; j < 3; ++j) total += plan.owned_by(j).size();
  EXPECT_EQ(total, p.v);
  for (std::uint64_t b = 1; b <= p.v; ++b) {
    auto owner = plan.owner_of(b);
    ASSERT_TRUE(owner.has_value()) << b;
    // The declared owner really owns the block.
    const auto& owned = plan.owned_by(*owner);
    EXPECT_NE(std::find(owned.begin(), owned.end(), b), owned.end());
  }
}

TEST(OwnershipPlan, WindowsAreContiguous) {
  core::LineParams p = params();  // v = 8
  OwnershipPlan plan = OwnershipPlan::windows(p, 2, 3);
  // Windows: [1..3]->m0, [4..6]->m1, [7..8]->m0.
  EXPECT_EQ(plan.owned_by(0), (std::vector<std::uint64_t>{1, 2, 3, 7, 8}));
  EXPECT_EQ(plan.owned_by(1), (std::vector<std::uint64_t>{4, 5, 6}));
}

TEST(OwnershipPlan, ReplicatedIncreasesPerMachineFraction) {
  core::LineParams p = params();
  OwnershipPlan plan = OwnershipPlan::replicated(p, 4, 6);
  for (std::uint64_t j = 0; j < 4; ++j) {
    EXPECT_EQ(plan.owned_by(j).size(), 6u) << j;
  }
  // Coverage: every block has some owner (6 per machine, stride v/m = 2).
  for (std::uint64_t b = 1; b <= p.v; ++b) {
    EXPECT_TRUE(plan.owner_of(b).has_value()) << b;
  }
}

TEST(OwnershipPlan, ReplicatedClampsToV) {
  core::LineParams p = params();
  OwnershipPlan plan = OwnershipPlan::replicated(p, 2, 100);
  EXPECT_EQ(plan.owned_by(0).size(), p.v);
  EXPECT_EQ(plan.max_owned(), p.v);
}

TEST(OwnershipPlan, ReplicatedRejectsUncoverablePlans) {
  core::LineParams p = core::LineParams::make(64, 16, 64, 100);  // v = 64
  // 8 machines x 4 blocks = 32 < 64: coverage impossible.
  EXPECT_THROW(OwnershipPlan::replicated(p, 8, 4), std::invalid_argument);
  // 16 machines x 4 = 64 with stride 4: exactly covers.
  EXPECT_NO_THROW(OwnershipPlan::replicated(p, 16, 4));
}

TEST(OwnershipPlan, AllFactoriesRejectZeroMachines) {
  core::LineParams p = params();
  EXPECT_THROW(OwnershipPlan::round_robin(p, 0), std::invalid_argument);
  EXPECT_THROW(OwnershipPlan::windows(p, 0, 2), std::invalid_argument);
  EXPECT_THROW(OwnershipPlan::replicated(p, 0, 2), std::invalid_argument);
}

TEST(OwnershipPlan, MaxOwned) {
  core::LineParams p = params();
  OwnershipPlan plan = OwnershipPlan::round_robin(p, 3);
  EXPECT_EQ(plan.max_owned(), 3u);  // ceil(8/3)
}

}  // namespace
}  // namespace mpch::strategies
