#include "core/line.hpp"

#include <gtest/gtest.h>

#include "hash/random_oracle.hpp"
#include "util/rng.hpp"

namespace mpch::core {
namespace {

using util::BitString;

LineParams params() { return LineParams::make(64, 16, 8, 64); }

TEST(LineFunction, DeterministicGivenOracleAndInput) {
  LineParams p = params();
  LineFunction f(p);
  hash::LazyRandomOracle oracle(p.n, p.n, 1);
  util::Rng rng(2);
  LineInput input = LineInput::random(p, rng);
  BitString out1 = f.evaluate(oracle, input);
  BitString out2 = f.evaluate(oracle, input);
  EXPECT_EQ(out1, out2);
  EXPECT_EQ(out1.size(), p.n);
}

TEST(LineFunction, ChainAgreesWithEvaluate) {
  LineParams p = params();
  LineFunction f(p);
  hash::LazyRandomOracle oracle(p.n, p.n, 3);
  util::Rng rng(4);
  LineInput input = LineInput::random(p, rng);
  LineChain chain = f.evaluate_chain(oracle, input);
  EXPECT_EQ(chain.nodes.size(), p.w);
  EXPECT_EQ(chain.output, f.evaluate(oracle, input));
}

TEST(LineFunction, ChainStructureIsCorrect) {
  LineParams p = params();
  LineFunction f(p);
  LineCodec codec(p);
  hash::LazyRandomOracle oracle(p.n, p.n, 5);
  util::Rng rng(6);
  LineInput input = LineInput::random(p, rng);
  LineChain chain = f.evaluate_chain(oracle, input);

  // Node 1: ℓ_1 = 1, r_1 = 0^u.
  EXPECT_EQ(chain.nodes[0].index, 1u);
  EXPECT_EQ(chain.nodes[0].ell, 1u);
  EXPECT_EQ(chain.nodes[0].r, BitString(p.u));

  // Every node's query embeds (i, x_{ℓ_i}, r_i) and each answer drives the
  // next node.
  for (std::size_t i = 0; i < chain.nodes.size(); ++i) {
    const auto& node = chain.nodes[i];
    LineQuery parsed = codec.decode_query(node.query);
    EXPECT_EQ(parsed.index, node.index);
    EXPECT_EQ(parsed.x, input.block(node.ell));
    EXPECT_EQ(parsed.r, node.r);
    if (i + 1 < chain.nodes.size()) {
      LineAnswer a = codec.decode_answer(node.answer);
      EXPECT_EQ(chain.nodes[i + 1].ell, a.ell);
      EXPECT_EQ(chain.nodes[i + 1].r, a.r);
      EXPECT_EQ(chain.nodes[i + 1].index, node.index + 1);
    }
  }
}

TEST(LineFunction, DifferentOraclesGiveDifferentOutputs) {
  LineParams p = params();
  LineFunction f(p);
  hash::LazyRandomOracle o1(p.n, p.n, 10), o2(p.n, p.n, 11);
  util::Rng rng(12);
  LineInput input = LineInput::random(p, rng);
  EXPECT_NE(f.evaluate(o1, input), f.evaluate(o2, input));
}

TEST(LineFunction, SensitiveToVisitedBlockChange) {
  LineParams p = params();
  LineFunction f(p);
  hash::LazyRandomOracle oracle(p.n, p.n, 20);
  util::Rng rng(21);
  LineInput input = LineInput::random(p, rng);
  LineChain chain = f.evaluate_chain(oracle, input);

  // Flip one bit of a block the walk actually visits: output must change.
  std::uint64_t visited = chain.nodes[p.w / 2].ell;
  BitString bits = input.bits();
  bits.set((visited - 1) * p.u, !bits.get((visited - 1) * p.u));
  LineInput mutated(p, bits);
  EXPECT_NE(f.evaluate(oracle, mutated), chain.output);
}

TEST(LineFunction, InsensitiveToUnvisitedBlockChange) {
  LineParams p = params();
  LineFunction f(p);
  hash::LazyRandomOracle oracle(p.n, p.n, 30);
  util::Rng rng(31);
  LineInput input = LineInput::random(p, rng);
  LineChain chain = f.evaluate_chain(oracle, input);

  std::vector<bool> visited(p.v + 1, false);
  for (const auto& node : chain.nodes) visited[node.ell] = true;
  std::uint64_t untouched = 0;
  for (std::uint64_t b = 1; b <= p.v; ++b) {
    if (!visited[b]) {
      untouched = b;
      break;
    }
  }
  if (untouched == 0) GTEST_SKIP() << "walk visited every block";
  BitString bits = input.bits();
  bits.set((untouched - 1) * p.u, !bits.get((untouched - 1) * p.u));
  LineInput mutated(p, bits);
  EXPECT_EQ(f.evaluate(oracle, mutated), chain.output);
}

TEST(LineFunction, MeterChargesWQueriesAndInputSpace) {
  LineParams p = params();
  LineFunction f(p);
  hash::LazyRandomOracle oracle(p.n, p.n, 40);
  util::Rng rng(41);
  LineInput input = LineInput::random(p, rng);
  ram::RamMeter meter(p.n);
  f.evaluate(oracle, input, &meter);
  EXPECT_EQ(meter.costs().oracle_queries, p.w);
  EXPECT_GE(meter.costs().time_units, p.w * p.n);
  EXPECT_GE(meter.costs().peak_memory_bits, p.input_bits());
  // Space is O(S): input plus constant-size working state.
  EXPECT_LE(meter.costs().peak_memory_bits, p.input_bits() + 3 * p.n + 64);
  EXPECT_EQ(meter.live_bits(), 0u);
}

TEST(LineFunction, CorrectEntriesAfterFiltersByIndex) {
  LineParams p = params();
  LineFunction f(p);
  hash::LazyRandomOracle oracle(p.n, p.n, 50);
  util::Rng rng(51);
  LineInput input = LineInput::random(p, rng);
  LineChain chain = f.evaluate_chain(oracle, input);

  EXPECT_EQ(chain.all_correct_queries().size(), p.w);
  // C^{(k)} with stride h: entries with index > k*h.
  auto c1 = chain.correct_entries_after(1, 10);
  EXPECT_EQ(c1.size(), p.w - 10);
  auto c0 = chain.correct_entries_after(0, 10);
  EXPECT_EQ(c0.size(), p.w);
}

TEST(LineFunction, EllDistributionRoughlyUniform) {
  // The ℓ_i pointer sequence should look uniform over [v] (Figure 1's
  // mechanism). Chi-square-ish tolerance check over a longer chain.
  LineParams p = LineParams::make(64, 16, 8, 2048);
  LineFunction f(p);
  hash::LazyRandomOracle oracle(p.n, p.n, 60);
  util::Rng rng(61);
  LineInput input = LineInput::random(p, rng);
  LineChain chain = f.evaluate_chain(oracle, input);
  std::vector<int> counts(p.v + 1, 0);
  for (std::size_t i = 1; i < chain.nodes.size(); ++i) ++counts[chain.nodes[i].ell];
  double expected = static_cast<double>(p.w - 1) / p.v;
  for (std::uint64_t b = 1; b <= p.v; ++b) {
    EXPECT_GT(counts[b], expected * 0.6) << b;
    EXPECT_LT(counts[b], expected * 1.4) << b;
  }
}

}  // namespace
}  // namespace mpch::core
