#include "ram/machine.hpp"

#include <gtest/gtest.h>

namespace mpch::ram {
namespace {

using namespace asm_ops;

TEST(RamMachine, StraightLineArithmetic) {
  std::vector<Instruction> prog = {
      loadi(0, 21), loadi(1, 2), mul(2, 0, 1),  // R2 = 42
      sub(3, 2, 1),                             // R3 = 40
      bxor(4, 2, 3),                            // R4 = 42 ^ 40
      halt(),
  };
  RamMachine machine(prog, {});
  machine.run();
  EXPECT_TRUE(machine.state().halted);
  EXPECT_EQ(machine.state().regs[2], 42u);
  EXPECT_EQ(machine.state().regs[3], 40u);
  EXPECT_EQ(machine.state().regs[4], 42u ^ 40u);
  EXPECT_EQ(machine.steps_executed(), 6u);
}

TEST(RamMachine, LoadStore) {
  std::vector<Instruction> prog = {
      loadi(1, 3),   // addr 3
      load(0, 1),    // R0 = mem[3]
      loadi(2, 99),  // value
      loadi(3, 0),   // addr 0
      store(2, 3),   // mem[0] = 99
      halt(),
  };
  RamMachine machine(prog, {1, 2, 3, 7});
  machine.run();
  EXPECT_EQ(machine.state().regs[0], 7u);
  EXPECT_EQ(machine.memory()[0], 99u);
}

TEST(RamMachine, LoopSumsArray) {
  std::vector<Instruction> prog = {
      loadi(0, 0),    // 0: R0 = acc
      loadi(1, 0),    // 1: R1 = i
      loadi(2, 5),    // 2: R2 = n
      loadi(5, 1),    // 3: R5 = 1
      lt(3, 1, 2),    // 4: R3 = i < n
      jz(3, 10),      // 5: exit loop
      load(4, 1),     // 6: R4 = mem[i]
      add(0, 0, 4),   // 7: acc += R4
      add(1, 1, 5),   // 8: i += 1
      jmp(4),         // 9: loop
      halt(),         // 10
  };
  RamMachine machine(prog, {10, 20, 30, 40, 50});
  machine.run();
  EXPECT_EQ(machine.state().regs[0], 150u);
  EXPECT_TRUE(machine.state().halted);
}

TEST(RamMachine, BranchesTakenAndNot) {
  std::vector<Instruction> prog = {
      loadi(0, 0),
      jz(0, 3),      // taken
      loadi(1, 111),  // skipped
      loadi(2, 5),
      jnz(2, 6),     // taken
      loadi(3, 222),  // skipped
      halt(),
  };
  RamMachine machine(prog, {});
  machine.run();
  EXPECT_EQ(machine.state().regs[1], 0u);
  EXPECT_EQ(machine.state().regs[3], 0u);
  EXPECT_EQ(machine.state().regs[2], 5u);
}

TEST(RamMachine, ShiftOps) {
  std::vector<Instruction> prog = {
      loadi(0, 1), loadi(1, 10),
      {Opcode::kShl, 2, 0, 1, 0},  // R2 = 1 << 10
      {Opcode::kShr, 3, 2, 0, 0},  // R3 = R2 >> 1
      halt(),
  };
  RamMachine machine(prog, {});
  machine.run();
  EXPECT_EQ(machine.state().regs[2], 1024u);
  EXPECT_EQ(machine.state().regs[3], 512u);
}

TEST(RamMachine, OutOfBoundsMemoryThrows) {
  std::vector<Instruction> prog = {loadi(1, 10), load(0, 1), halt()};
  RamMachine machine(prog, {1, 2});
  EXPECT_THROW(machine.run(), std::out_of_range);
}

TEST(RamMachine, StepBudgetStopsInfiniteLoop) {
  std::vector<Instruction> prog = {jmp(0)};
  RamMachine machine(prog, {});
  EXPECT_EQ(machine.run(100), 100u);
  EXPECT_FALSE(machine.state().halted);
}

TEST(RamMachine, StepAfterHaltThrows) {
  std::vector<Instruction> prog = {halt()};
  RamMachine machine(prog, {});
  machine.run();
  EXPECT_THROW(RamMachine::step(prog, machine.state()), std::logic_error);
}

TEST(RamMachine, RejectsEmptyProgram) {
  EXPECT_THROW(RamMachine({}, {}), std::invalid_argument);
}

TEST(RamMachine, RejectsBadRegisterAtConstruction) {
  std::vector<Instruction> prog = {{Opcode::kMov, 9, 0, 0, 0}, halt()};
  EXPECT_THROW(RamMachine(prog, {}), std::invalid_argument);
}

TEST(RamMachine, RejectsOutOfRangeJumpAtConstruction) {
  EXPECT_THROW(RamMachine({loadi(0, 1), jmp(999), halt()}, {}), std::invalid_argument);
  EXPECT_THROW(RamMachine({jz(0, 3), halt()}, {}), std::invalid_argument);
  EXPECT_THROW(RamMachine({jnz(0, 100), halt()}, {}), std::invalid_argument);
}

TEST(RamMachine, RejectsBadOpcodeAtConstruction) {
  std::vector<Instruction> prog = {{static_cast<Opcode>(200), 0, 0, 0, 0}, halt()};
  EXPECT_THROW(RamMachine(prog, {}), std::invalid_argument);
}

TEST(RamMachine, ValidateProgramNamesOffendingPc) {
  std::vector<Instruction> prog = {loadi(0, 1), jmp(999), halt()};
  try {
    validate_program(prog);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("pc 1"), std::string::npos) << e.what();
  }
}

// Construction validates eagerly, but the static step() stays guarded too:
// callers can feed it unvalidated programs directly (defense in depth).
TEST(RamMachine, StepStillGuardsBadRegister) {
  std::vector<Instruction> prog = {{Opcode::kMov, 9, 0, 0, 0}};
  RamState s;
  EXPECT_THROW(RamMachine::step(prog, s), std::out_of_range);
}

TEST(RamMachine, StepStillGuardsPcPastEnd) {
  std::vector<Instruction> prog = {halt()};
  RamState s;
  s.pc = 5;
  EXPECT_THROW(RamMachine::step(prog, s), std::out_of_range);
}

TEST(RamMachine, StepEffectIsPure) {
  std::vector<Instruction> prog = {loadi(0, 7), halt()};
  RamState s;
  StepEffect e1 = RamMachine::step(prog, s);
  StepEffect e2 = RamMachine::step(prog, s);
  EXPECT_TRUE(e1.next == e2.next);
  EXPECT_EQ(s.pc, 0u);  // input untouched
}

}  // namespace
}  // namespace mpch::ram
