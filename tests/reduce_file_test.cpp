// Tests for the reduction-file grammar (reduce/reduction_file.hpp): the
// hostile-input boundary. Every malformed byte must surface as a typed
// ReductionError carrying 1-based line AND column provenance, the
// pre-allocation caps must reject before any container grows, and the happy
// path must round-trip through Term::describe / Reduction::describe.
#include <gtest/gtest.h>

#include <string>

#include "reduce/reduction_file.hpp"

namespace {

using mpch::reduce::kMaxFileBytes;
using mpch::reduce::kMaxNameBytes;
using mpch::reduce::kMaxReductions;
using mpch::reduce::kMaxTermLeaves;
using mpch::reduce::parse_reduction_file;
using mpch::reduce::Reduction;
using mpch::reduce::ReductionError;
using mpch::reduce::TermKind;

TEST(ReduceFile, ParsesASingleReduction) {
  const auto rs = parse_reduction_file("r1: a => b via space_scale(2);");
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs[0].name, "r1");
  EXPECT_EQ(rs[0].source, "a");
  EXPECT_EQ(rs[0].target, "b");
  EXPECT_EQ(rs[0].term.kind, TermKind::kSpaceScale);
  EXPECT_EQ(rs[0].term.arg, 2u);
  EXPECT_EQ(rs[0].source_line, 1u);
  EXPECT_EQ(rs[0].describe(), "r1: a => b via space_scale(2);");
}

TEST(ReduceFile, CommentsAndBlankLinesAreFree) {
  const std::string text =
      "# a comment\n"
      "\n"
      "r1: a => b via identity;  # trailing comment\n"
      "# another\n"
      "r2: b => c via round_stretch(3);\n";
  const auto rs = parse_reduction_file(text);
  ASSERT_EQ(rs.size(), 2u);
  EXPECT_EQ(rs[0].source_line, 3u);
  EXPECT_EQ(rs[1].source_line, 5u);
  EXPECT_EQ(rs[1].term.kind, TermKind::kRoundStretch);
}

TEST(ReduceFile, ViaListIsComposeSugar) {
  const auto rs =
      parse_reduction_file("r: a => b via machine_regroup(2), with_authentication(64);");
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs[0].term.kind, TermKind::kCompose);
  ASSERT_EQ(rs[0].term.children.size(), 2u);
  EXPECT_EQ(rs[0].term.children[0].kind, TermKind::kMachineRegroup);
  EXPECT_EQ(rs[0].term.children[1].kind, TermKind::kWithAuthentication);
  EXPECT_EQ(rs[0].term.describe(), "compose(machine_regroup(2), with_authentication(64))");
}

TEST(ReduceFile, BareAuthenticationDefaultsToTagBits) {
  const auto rs = parse_reduction_file("r: a => b via with_authentication;");
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs[0].term.kind, TermKind::kWithAuthentication);
  EXPECT_EQ(rs[0].term.arg, 64u);  // mpc::kMessageTagBits
}

TEST(ReduceFile, NestedComposeParses) {
  const auto rs = parse_reduction_file(
      "r: a => b via compose(space_scale(2), compose(identity, oracle_reindex(3)));");
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs[0].term.leaf_count(), 3u);
}

TEST(ReduceFile, NamesAllowTheSpecAlphabet) {
  const auto rs = parse_reduction_file(
      "auth/x-1: ram-emulation/m8 => pointer-chasing+auth via identity;");
  ASSERT_EQ(rs.size(), 1u);
  EXPECT_EQ(rs[0].name, "auth/x-1");
  EXPECT_EQ(rs[0].source, "ram-emulation/m8");
  EXPECT_EQ(rs[0].target, "pointer-chasing+auth");
}

/// Expect a ReductionError whose provenance matches (line, column).
void expect_error_at(const std::string& text, std::uint64_t line, std::uint64_t column) {
  try {
    (void)parse_reduction_file(text);
    FAIL() << "expected ReductionError for: " << text;
  } catch (const ReductionError& e) {
    EXPECT_EQ(e.line(), line) << e.what();
    EXPECT_EQ(e.column(), column) << e.what();
  }
}

TEST(ReduceFile, MissingColonHasColumnProvenance) {
  // "oops" ends at column 5; the colon is expected there.
  expect_error_at("oops a => b via identity;", 1, 6);
}

TEST(ReduceFile, ErrorProvenanceIsOneBasedAcrossLines) {
  // The bad token is on line 3.
  try {
    (void)parse_reduction_file("# c\nok: a => b via identity;\nbad: a -> b via identity;\n");
    FAIL() << "expected ReductionError";
  } catch (const ReductionError& e) {
    EXPECT_EQ(e.line(), 3u) << e.what();
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
  }
}

TEST(ReduceFile, RejectsUnknownTerm) {
  EXPECT_THROW((void)parse_reduction_file("r: a => b via teleport(2);"), ReductionError);
}

TEST(ReduceFile, RejectsZeroScaleWithProvenance) {
  try {
    (void)parse_reduction_file("r: a => b via space_scale(0);");
    FAIL() << "expected ReductionError";
  } catch (const ReductionError& e) {
    EXPECT_EQ(e.line(), 1u);
    EXPECT_NE(std::string(e.what()).find("space_scale"), std::string::npos) << e.what();
  }
}

TEST(ReduceFile, RejectsU64Overflow) {
  EXPECT_THROW((void)parse_reduction_file("r: a => b via space_scale(99999999999999999999);"),
               ReductionError);
}

TEST(ReduceFile, RejectsMissingSemicolonAndTruncation) {
  EXPECT_THROW((void)parse_reduction_file("r: a => b via identity"), ReductionError);
  EXPECT_THROW((void)parse_reduction_file("r: a => b via"), ReductionError);
  EXPECT_THROW((void)parse_reduction_file("r: a =>"), ReductionError);
  EXPECT_THROW((void)parse_reduction_file("r: a"), ReductionError);
  EXPECT_THROW((void)parse_reduction_file("r:"), ReductionError);
}

TEST(ReduceFile, RejectsBinaryGarbage) {
  EXPECT_THROW((void)parse_reduction_file(std::string("\x00\xff\x01{]", 5)), ReductionError);
}

TEST(ReduceFile, FileSizeCapIsCheckedFirst) {
  std::string big(kMaxFileBytes + 1, '#');
  EXPECT_THROW((void)parse_reduction_file(big), ReductionError);
}

TEST(ReduceFile, NameLengthIsCapped) {
  const std::string long_name(kMaxNameBytes + 1, 'a');
  EXPECT_THROW((void)parse_reduction_file(long_name + ": a => b via identity;"), ReductionError);
}

TEST(ReduceFile, TermLeafCountIsCappedAcrossNesting) {
  // A hostile term with kMaxTermLeaves+1 leaves must be rejected by the
  // shared leaf counter, whether flat or nested.
  std::string flat = "r: a => b via identity";
  for (std::uint64_t i = 0; i < kMaxTermLeaves; ++i) flat += ", identity";
  flat += ";";
  EXPECT_THROW((void)parse_reduction_file(flat), ReductionError);
}

TEST(ReduceFile, TermDepthIsCapped) {
  std::string nest = "r: a => b via ";
  for (int i = 0; i < 40; ++i) nest += "compose(";
  nest += "identity";
  for (int i = 0; i < 40; ++i) nest += ")";
  nest += ";";
  EXPECT_THROW((void)parse_reduction_file(nest), ReductionError);
}

TEST(ReduceFile, ReductionCountIsCapped) {
  // kMaxReductions is 4096 and each statement is ~25 bytes, so the count cap
  // fires before the size cap would.
  std::string many;
  for (std::uint64_t i = 0; i <= kMaxReductions; ++i) many += "r: a => b via identity;\n";
  ASSERT_LE(many.size(), kMaxFileBytes);
  EXPECT_THROW((void)parse_reduction_file(many), ReductionError);
}

TEST(ReduceFile, EmptyFileIsValid) {
  EXPECT_TRUE(parse_reduction_file("").empty());
  EXPECT_TRUE(parse_reduction_file("# only comments\n\n").empty());
}

}  // namespace
