// Replay audit of the A2 purity contract (compression proofs re-run round
// programs during decoding and assume the query stream is a pure function of
// memory and answers-so-far), plus the LoggingOracle delegation regression.
#include "verify/determinism.hpp"

#include <gtest/gtest.h>

#include "compress/round_program.hpp"
#include "hash/random_oracle.hpp"
#include "util/bitstring.hpp"

namespace mpch::verify {
namespace {

using util::BitString;

/// Pure A2: first query is the memory image, second query chains on the
/// first answer. The stream is a function of (memory, answers) only.
class ChainedQueryProgram final : public compress::RoundProgram {
 public:
  void run(const BitString& memory, hash::RandomOracle& oracle) override {
    const BitString first = oracle.query(memory);
    oracle.query(first);
  }
};

/// Impure A2: a mutable member leaks across runs, so the recorded and the
/// replayed executions issue different queries.
class HiddenCounterProgram final : public compress::RoundProgram {
 public:
  void run(const BitString& memory, hash::RandomOracle& oracle) override {
    (void)memory;
    oracle.query(BitString::from_uint(counter_++, 8));
  }

 private:
  std::uint64_t counter_ = 0;
};

/// Impure A2 that issues one extra query on every subsequent run.
class GrowingQueryProgram final : public compress::RoundProgram {
 public:
  void run(const BitString& memory, hash::RandomOracle& oracle) override {
    for (std::uint64_t i = 0; i <= runs_; ++i) oracle.query(memory);
    ++runs_;
  }

 private:
  std::uint64_t runs_ = 0;
};

TEST(VerifyDeterminism, PureProgramPassesTheAudit) {
  hash::LazyRandomOracle oracle(8, 8, 42);
  ChainedQueryProgram program;
  const ReplayAuditReport report =
      audit_round_program(program, BitString::from_uint(0xA5, 8), oracle);
  EXPECT_TRUE(report.deterministic) << report.message;
  EXPECT_EQ(report.recorded_queries, 2u);
  EXPECT_EQ(report.replayed_queries, 2u);
}

TEST(VerifyDeterminism, HiddenStateIsFlaggedWithTheFirstDivergence) {
  hash::LazyRandomOracle oracle(8, 8, 42);
  HiddenCounterProgram program;
  const ReplayAuditReport report =
      audit_round_program(program, BitString::from_uint(0, 8), oracle);
  EXPECT_FALSE(report.deterministic);
  EXPECT_EQ(report.first_divergence, 0u);
  EXPECT_FALSE(report.message.empty());
}

TEST(VerifyDeterminism, ExtraQueriesAreFlagged) {
  hash::LazyRandomOracle oracle(8, 8, 42);
  GrowingQueryProgram program;
  const ReplayAuditReport report =
      audit_round_program(program, BitString::from_uint(3, 8), oracle);
  EXPECT_FALSE(report.deterministic);
  EXPECT_EQ(report.recorded_queries, 1u);
  EXPECT_EQ(report.replayed_queries, 2u);
}

TEST(VerifyDeterminism, ReplayOracleAnswersZerosPastTheTranscript) {
  TranscriptReplayOracle oracle({{BitString::from_uint(1, 8), BitString::from_uint(9, 8)}}, 8, 8);
  EXPECT_TRUE(oracle.query(BitString::from_uint(1, 8)) == BitString::from_uint(9, 8));
  EXPECT_FALSE(oracle.diverged());
  // A query past the transcript end is a divergence answered with zeros.
  EXPECT_TRUE(oracle.query(BitString::from_uint(2, 8)) == BitString(8));
  EXPECT_TRUE(oracle.diverged());
  EXPECT_EQ(oracle.first_divergence(), 1u);
}

TEST(VerifyDeterminism, ReplayOracleFlagsMismatchedQueries) {
  TranscriptReplayOracle oracle({{BitString::from_uint(1, 8), BitString::from_uint(9, 8)}}, 8, 8);
  oracle.query(BitString::from_uint(7, 8));  // not the recorded query
  EXPECT_TRUE(oracle.diverged());
  EXPECT_EQ(oracle.first_divergence(), 0u);
}

// Regression: LoggingOracle::total_queries() must delegate to the inner
// oracle (the true global count), not report its own log size — the inner
// oracle may be queried before or around the wrapper.
TEST(VerifyDeterminism, LoggingOracleTotalQueriesDelegates) {
  hash::LazyRandomOracle inner(8, 8, 7);
  inner.query(BitString::from_uint(1, 8));  // queried before wrapping

  compress::LoggingOracle logging(inner);
  logging.query(BitString::from_uint(2, 8));

  EXPECT_EQ(logging.log().size(), 1u);       // the wrapper saw one query
  EXPECT_EQ(logging.total_queries(), 2u);    // the oracle answered two
  EXPECT_EQ(inner.total_queries(), 2u);
}

}  // namespace
}  // namespace mpch::verify
