// check_models_test.cpp — the four protocol models: clean trees verify, the
// mutation matrix kills every seeded bug, and counterexamples replay.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "check/explorer.hpp"
#include "check/models.hpp"

namespace mpch::check {
namespace {

ModelBounds small_bounds() {
  ModelBounds bounds;
  bounds.machines = 2;
  bounds.rounds = 2;
  bounds.messages = 2;
  bounds.faults = 1;
  return bounds;
}

TEST(CheckModels, RegistryNamesFourProtocols) {
  const std::vector<std::string>& names = protocol_names();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "inbox");
  EXPECT_EQ(names[1], "broadcast");
  EXPECT_EQ(names[2], "recovery");
  EXPECT_EQ(names[3], "quarantine");
}

TEST(CheckModels, EveryMutationBelongsToAKnownProtocol) {
  const std::vector<std::string>& names = protocol_names();
  std::set<std::string> seen;
  for (const MutationSpec& spec : mutation_registry()) {
    EXPECT_TRUE(std::find(names.begin(), names.end(), spec.protocol) != names.end())
        << spec.name << " claims unknown protocol " << spec.protocol;
    EXPECT_TRUE(seen.insert(spec.name).second) << "duplicate mutation " << spec.name;
    EXPECT_FALSE(spec.description.empty());
  }
  EXPECT_GE(seen.size(), 7u);
}

TEST(CheckModels, MakeModelRejectsUnknownNames) {
  EXPECT_THROW((void)make_model("carrier-pigeon", small_bounds()), std::invalid_argument);
  EXPECT_THROW((void)make_model("inbox", small_bounds(), "no-such-mutation"),
               std::invalid_argument);
  // A real mutation applied to the wrong protocol is also rejected.
  EXPECT_THROW((void)make_model("inbox", small_bounds(), "skip-retry-count"),
               std::invalid_argument);
}

TEST(CheckModels, CleanProtocolsExploreWithoutViolations) {
  for (const std::string& protocol : protocol_names()) {
    std::unique_ptr<Model> model = make_model(protocol, small_bounds());
    ExploreResult result = Explorer().run(*model);
    EXPECT_TRUE(result.ok()) << protocol << ": "
                             << (result.counterexample ? result.counterexample->violation
                                                       : std::string());
    EXPECT_GT(result.stats.states_explored, 0u) << protocol;
    EXPECT_GT(result.stats.terminal_states, 0u) << protocol;
    EXPECT_FALSE(result.stats.depth_bound_hit) << protocol;
    EXPECT_FALSE(result.stats.state_bound_hit) << protocol;
  }
}

// The in-tree mutation matrix: every seeded bug must yield a minimized
// counterexample that replays to the same violation on a fresh model. This
// is the checker's self-check — CI runs it on every push.
TEST(CheckModels, MutationMatrixKillsEverySeededBug) {
  for (const MutationSpec& spec : mutation_registry()) {
    std::unique_ptr<Model> mutant = make_model(spec.protocol, small_bounds(), spec.name);
    Explorer explorer;
    ExploreResult result = explorer.run(*mutant);
    ASSERT_FALSE(result.ok()) << spec.name << " survived exploration";
    ASSERT_TRUE(result.counterexample.has_value()) << spec.name;
    EXPECT_FALSE(result.counterexample->violation.empty()) << spec.name;
    EXPECT_FALSE(result.counterexample->schedule.empty()) << spec.name;

    // The minimized schedule must reproduce on a freshly built mutant.
    std::unique_ptr<Model> again = make_model(spec.protocol, small_bounds(), spec.name);
    ReplayOutcome outcome = explorer.replay(*again, result.counterexample->schedule);
    ASSERT_TRUE(outcome.violation.has_value()) << spec.name << " did not replay";
    EXPECT_EQ(*outcome.violation, result.counterexample->violation) << spec.name;

    // ...and must NOT reproduce on the clean protocol: the schedule
    // witnesses the bug, not a checker artefact.
    std::unique_ptr<Model> clean = make_model(spec.protocol, small_bounds());
    bool clean_violates = false;
    try {
      ReplayOutcome on_clean = explorer.replay(*clean, result.counterexample->schedule);
      clean_violates = on_clean.violation.has_value();
    } catch (const ReplayError&) {
      // Clean protocol refuses an action the mutant allowed — also fine.
    }
    EXPECT_FALSE(clean_violates) << spec.name << " schedule violates the clean protocol";
  }
}

TEST(CheckModels, DropSeqCheckCounterexampleIsAnOldDuplicate) {
  std::unique_ptr<Model> mutant = make_model("inbox", small_bounds(), "drop-seq-check");
  ExploreResult result = Explorer().run(*mutant);
  ASSERT_FALSE(result.ok());
  // The witness needs a re-delivery of an already-accepted frame: some
  // action in the shrunk schedule must be a duplicate.
  bool has_duplicate = false;
  for (const Action& a : result.counterexample->schedule) {
    if (a.label.find("duplicate") != std::string::npos) has_duplicate = true;
  }
  EXPECT_TRUE(has_duplicate);
}

TEST(CheckModels, InboxZeroMessageRoundIsASingleBarrier) {
  ModelBounds bounds = small_bounds();
  bounds.messages = 0;
  std::unique_ptr<Model> model = make_model("inbox", bounds);
  ExploreResult result = Explorer().run(*model);
  EXPECT_TRUE(result.ok());
  // Nothing to deliver: the only schedule is the empty-inbox barrier.
  EXPECT_EQ(result.stats.terminal_states, 1u);
}

TEST(CheckModels, SingleMachineProtocolsStillVerify) {
  ModelBounds bounds = small_bounds();
  bounds.machines = 1;
  for (const std::string& protocol : protocol_names()) {
    std::unique_ptr<Model> model = make_model(protocol, bounds);
    ExploreResult result = Explorer().run(*model);
    EXPECT_TRUE(result.ok()) << protocol;
  }
}

TEST(CheckModels, ZeroFaultBudgetLeavesOnlyCleanSchedules) {
  ModelBounds bounds = small_bounds();
  bounds.faults = 0;
  for (const std::string& protocol : {std::string("recovery"), std::string("quarantine")}) {
    std::unique_ptr<Model> model = make_model(protocol, bounds);
    ExploreResult result = Explorer().run(*model);
    EXPECT_TRUE(result.ok()) << protocol;
    // The adversary has no budget: exactly one (all-clean) schedule exists.
    EXPECT_EQ(result.stats.terminal_states, 1u) << protocol;
  }
}

TEST(CheckModels, LargerInboxBoundsStayExhaustive) {
  ModelBounds bounds = small_bounds();
  bounds.machines = 3;
  bounds.messages = 2;
  bounds.faults = 2;
  std::unique_ptr<Model> model = make_model("inbox", bounds);
  ExploreResult result = Explorer().run(*model);
  EXPECT_TRUE(result.ok());
  EXPECT_FALSE(result.stats.state_bound_hit);
  // Commuting deliveries collapse, via the sleep sets or the visited set.
  EXPECT_GT(result.stats.pruned_converged + result.stats.pruned_sleep, 0u);
}

TEST(CheckModels, FingerprintsAreResetStable) {
  // A model must fingerprint identically after reset() — replay-based
  // backtracking depends on it.
  for (const std::string& protocol : protocol_names()) {
    std::unique_ptr<Model> model = make_model(protocol, small_bounds());
    model->reset();
    const std::uint64_t first = model->fingerprint();
    std::vector<Action> acts = model->enabled();
    if (!acts.empty()) model->apply(acts.front().key);
    model->reset();
    EXPECT_EQ(model->fingerprint(), first) << protocol;
  }
}

}  // namespace
}  // namespace mpch::check
