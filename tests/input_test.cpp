#include "core/input.hpp"

#include <gtest/gtest.h>

namespace mpch::core {
namespace {

using util::BitString;

TEST(LineInput, ParsesBlocksInOrder) {
  LineParams p = LineParams::make(64, 4, 3, 10);
  BitString bits = BitString::from_binary_string("110100101010");  // 3 blocks of 4
  LineInput input(p, bits);
  EXPECT_EQ(input.num_blocks(), 3u);
  EXPECT_EQ(input.block(1).to_binary_string(), "1101");
  EXPECT_EQ(input.block(2).to_binary_string(), "0010");
  EXPECT_EQ(input.block(3).to_binary_string(), "1010");
  EXPECT_EQ(input.bits(), bits);
}

TEST(LineInput, RejectsWrongLength) {
  LineParams p = LineParams::make(64, 4, 3, 10);
  EXPECT_THROW(LineInput(p, BitString(11)), std::invalid_argument);
  EXPECT_THROW(LineInput(p, BitString(13)), std::invalid_argument);
}

TEST(LineInput, BlockIndexBoundsChecked) {
  LineParams p = LineParams::make(64, 4, 3, 10);
  LineInput input(p, BitString(12));
  EXPECT_THROW(input.block(0), std::out_of_range);
  EXPECT_THROW(input.block(4), std::out_of_range);
}

TEST(LineInput, RandomIsUniformishAndSeeded) {
  LineParams p = LineParams::make(96, 16, 64, 10);
  util::Rng rng1(42), rng2(42), rng3(43);
  LineInput a = LineInput::random(p, rng1);
  LineInput b = LineInput::random(p, rng2);
  LineInput c = LineInput::random(p, rng3);
  EXPECT_EQ(a, b);        // same seed, same input
  EXPECT_FALSE(a == c);   // different seed differs
  double frac = static_cast<double>(a.bits().popcount()) / a.bits().size();
  EXPECT_NEAR(frac, 0.5, 0.1);
}

TEST(LineInput, BlocksTileTheInput) {
  LineParams p = LineParams::make(96, 8, 16, 10);
  util::Rng rng(7);
  LineInput input = LineInput::random(p, rng);
  BitString rebuilt;
  for (std::uint64_t i = 1; i <= p.v; ++i) rebuilt += input.block(i);
  EXPECT_EQ(rebuilt, input.bits());
}

}  // namespace
}  // namespace mpch::core
