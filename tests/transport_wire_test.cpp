// transport_wire_test.cpp — the wire format as a hostile-input boundary.
//
// Socket frames arrive from another OS process; a Byzantine deployment would
// let an adversary write them. Every decode gate must fire as a typed
// WireError with provenance naming *which* gate rejected the bytes and where:
// bad magic, unknown frame type, oversized length prefix (rejected before any
// allocation sized from it), oversized broadcast fanout, truncated frame,
// duplicated frame, reordered frame. Alongside the hostile cases: codec
// round-trips, the incremental decoder under pathological chunking, the
// shared-memory byte ring, and direct end-to-end exercises of both byte
// backends including the wire-tamper hook the Byzantine tests build on.
// fuzz/fuzz_wire_frame.cpp drives the same entry points with coverage
// feedback; this file keeps the intent readable and the diagnostics pinned.
#include "transport/wire.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "transport/shared_memory.hpp"
#include "transport/socket.hpp"
#include "transport/transport.hpp"
#include "util/bitstring.hpp"

namespace mpch {
namespace {

using transport::FrameDecoder;
using transport::FrameType;
using transport::InboxAssembler;
using transport::WireError;
using transport::WireFrame;
using util::BitString;

WireFrame data_frame(std::uint64_t round, std::uint64_t from, std::uint64_t seq, std::uint64_t to,
                     BitString payload) {
  WireFrame f;
  f.type = FrameType::kData;
  f.round = round;
  f.from = from;
  f.seq = seq;
  f.to = to;
  f.payload = std::move(payload);
  return f;
}

/// Overwrite 8 bytes at `pos` with a little-endian u64 (header surgery).
void patch_u64(std::vector<std::uint8_t>& bytes, std::size_t pos, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) bytes[pos + i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void expect_wire_error(const std::vector<std::uint8_t>& bytes, const std::string& needle,
                       std::uint64_t max_payload_bits = transport::kDefaultMaxPayloadBits) {
  try {
    transport::decode_frames(bytes, max_payload_bits);
    FAIL() << "expected WireError containing \"" << needle << "\"";
  } catch (const WireError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "diagnostic was: " << e.what();
  }
}

// ---- codec round-trips ----

TEST(WireCodec, DataFrameRoundTrips) {
  WireFrame f = data_frame(7, 2, 11, 3, BitString::from_uint(0xA5C3, 16));
  auto frames = transport::decode_frames(transport::encode_frame(f));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0], f);
}

TEST(WireCodec, NonByteAlignedPayloadRoundTrips) {
  // 13 bits: the length prefix, not the byte count, defines the payload.
  WireFrame f = data_frame(1, 0, 0, 1, BitString::from_uint(0x1ABC & 0x1FFF, 13));
  auto frames = transport::decode_frames(transport::encode_frame(f));
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].payload.size(), 13u);
  EXPECT_EQ(frames[0], f);
}

TEST(WireCodec, BroadcastFrameRoundTrips) {
  WireFrame f;
  f.type = FrameType::kBroadcast;
  f.round = 3;
  f.from = 1;
  f.seq = 4;
  f.payload = BitString::from_uint(0xBEEF, 16);
  f.fanout = {{0, 4}, {2, 9}, {5, 0}};
  auto frames = transport::decode_frames(transport::encode_frame(f));
  ASSERT_EQ(frames.size(), 1u);
  // The `to` slot carried the fanout count on the wire; the decoded frame
  // leaves `to` at its default and restores the full fanout list.
  EXPECT_EQ(frames[0].fanout, f.fanout);
  EXPECT_EQ(frames[0].payload, f.payload);
  EXPECT_EQ(frames[0].round, f.round);
  EXPECT_EQ(frames[0].from, f.from);
}

TEST(WireCodec, ControlFramesRoundTrip) {
  for (FrameType type : {FrameType::kFlush, FrameType::kFlushDone, FrameType::kStageDone}) {
    WireFrame f;
    f.type = type;
    f.round = 12;
    f.from = 3;
    f.seq = 2;  // stage index for kStageDone
    auto frames = transport::decode_frames(transport::encode_frame(f));
    ASSERT_EQ(frames.size(), 1u);
    EXPECT_EQ(frames[0], f);
  }
}

TEST(WireCodec, DecoderReassemblesByteAtATimeChunks) {
  // Socket reads are not frame-aligned; the worst case is one byte per read.
  WireFrame a = data_frame(0, 0, 0, 1, BitString::from_uint(0x5A, 8));
  WireFrame b = data_frame(0, 1, 0, 0, BitString::from_uint(0x3C3C, 16));
  std::vector<std::uint8_t> stream = transport::encode_frame(a);
  auto more = transport::encode_frame(b);
  stream.insert(stream.end(), more.begin(), more.end());

  FrameDecoder decoder;
  std::vector<WireFrame> out;
  for (std::uint8_t byte : stream) {
    decoder.feed(&byte, 1);
    while (auto frame = decoder.next()) out.push_back(std::move(*frame));
  }
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], a);
  EXPECT_EQ(out[1], b);
  EXPECT_EQ(decoder.pending_bytes(), 0u);
  EXPECT_EQ(decoder.bytes_consumed(), stream.size());
}

// ---- hostile inputs: every gate, with its distinct diagnostic ----

TEST(WireHostile, BadMagicRejectedFromFirstFourBytes) {
  // Provable from four bytes alone — the decoder must not wait for a header.
  FrameDecoder decoder;
  const std::uint8_t garbage[4] = {0xDE, 0xAD, 0xBE, 0xEF};
  decoder.feed(garbage, 4);
  try {
    decoder.next();
    FAIL() << "expected WireError";
  } catch (const WireError& e) {
    EXPECT_NE(std::string(e.what()).find("bad magic"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("at byte 0"), std::string::npos) << e.what();
  }
}

TEST(WireHostile, BadMagicAfterValidFrameNamesStreamPosition) {
  auto stream = transport::encode_frame(data_frame(0, 0, 0, 1, BitString::from_uint(0xFF, 8)));
  const std::size_t first_frame_end = stream.size();
  stream.insert(stream.end(), {0x00, 0x11, 0x22, 0x33});
  expect_wire_error(stream, "at byte " + std::to_string(first_frame_end));
}

TEST(WireHostile, UnknownFrameTypeRejected) {
  auto bytes = transport::encode_frame(data_frame(0, 0, 0, 1, BitString::from_uint(0x1, 4)));
  bytes[4] = 0x7F;  // type discriminator
  expect_wire_error(bytes, "unknown frame type 127");
}

TEST(WireHostile, OversizedLengthPrefixRejectedBeforePayloadArrives) {
  // A hostile 2^60-bit length prefix must be rejected from the header alone
  // — before any allocation sized from it, and before "waiting" for the
  // 2^57 payload bytes that will never come.
  auto header = transport::encode_frame(data_frame(0, 0, 0, 1, {}));
  ASSERT_EQ(header.size(), transport::kFrameHeaderBytes);
  patch_u64(header, 37, 1ULL << 60);  // payload_bits slot
  FrameDecoder decoder;
  decoder.feed(header.data(), header.size());
  try {
    decoder.next();
    FAIL() << "expected WireError";
  } catch (const WireError& e) {
    EXPECT_NE(std::string(e.what()).find("oversized length prefix"), std::string::npos)
        << e.what();
  }
}

TEST(WireHostile, PayloadCapIsConfigurable) {
  // Tests and tight deployments shrink the cap; a frame over the configured
  // cap is hostile even if it would fit the default.
  auto bytes = transport::encode_frame(data_frame(0, 0, 0, 1, BitString::from_uint(0xFFFF, 16)));
  expect_wire_error(bytes, "oversized length prefix", /*max_payload_bits=*/8);
  EXPECT_EQ(transport::decode_frames(bytes, 16).size(), 1u);  // exactly at cap: fine
}

TEST(WireHostile, OversizedBroadcastFanoutRejected) {
  WireFrame f;
  f.type = FrameType::kBroadcast;
  f.fanout = {{0, 0}};
  auto bytes = transport::encode_frame(f);
  patch_u64(bytes, 29, transport::kMaxBroadcastFanout + 1);  // fanout-count slot
  expect_wire_error(bytes, "broadcast fanout");
}

TEST(WireHostile, TruncatedFrameRejected) {
  auto bytes = transport::encode_frame(data_frame(2, 1, 0, 3, BitString::from_uint(0xABCD, 16)));
  bytes.pop_back();  // lose the final payload byte
  expect_wire_error(bytes, "truncated frame");
}

TEST(WireHostile, TruncatedHeaderRejected) {
  auto bytes = transport::encode_frame(data_frame(0, 0, 0, 1, {}));
  bytes.resize(transport::kFrameHeaderBytes / 2);
  expect_wire_error(bytes, "truncated frame");
}

TEST(WireHostile, DuplicatedFrameRejectedWithProvenance) {
  InboxAssembler assembler(/*machine=*/3, /*round=*/7);
  assembler.add(/*from=*/2, /*seq=*/5, BitString::from_uint(0x1, 4));
  try {
    assembler.add(2, 5, BitString::from_uint(0x2, 4));
    FAIL() << "expected WireError";
  } catch (const WireError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("duplicated frame"), std::string::npos) << what;
    EXPECT_NE(what.find("machine 3"), std::string::npos) << what;
    EXPECT_NE(what.find("from machine 2"), std::string::npos) << what;
    EXPECT_NE(what.find("seq 5"), std::string::npos) << what;
    EXPECT_NE(what.find("round 7"), std::string::npos) << what;
  }
}

TEST(WireHostile, ReorderedFrameRejectedWithProvenance) {
  InboxAssembler assembler(/*machine=*/1, /*round=*/4);
  assembler.add(/*from=*/0, /*seq=*/6, BitString::from_uint(0x1, 4));
  try {
    assembler.add(0, 2, BitString::from_uint(0x2, 4));
    FAIL() << "expected WireError";
  } catch (const WireError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("reordered frame"), std::string::npos) << what;
    EXPECT_NE(what.find("seq 2"), std::string::npos) << what;
    EXPECT_NE(what.find("after seq 6"), std::string::npos) << what;
  }
}

TEST(WireAssembler, TakeRestoresCanonicalInboxOrder) {
  // Deliveries arrive router-sorted per sender but interleaved across
  // senders; take() must produce the in-process merge order: (sender, seq).
  InboxAssembler assembler(/*machine=*/0, /*round=*/0);
  assembler.add(2, 0, BitString::from_uint(20, 8));
  assembler.add(1, 3, BitString::from_uint(13, 8));
  assembler.add(2, 1, BitString::from_uint(21, 8));
  assembler.add(1, 7, BitString::from_uint(17, 8));
  assembler.add(0, 0, BitString::from_uint(0, 8));
  auto inbox = assembler.take();
  ASSERT_EQ(inbox.size(), 5u);
  const std::uint64_t expect_from[] = {0, 1, 1, 2, 2};
  const std::uint64_t expect_val[] = {0, 13, 17, 20, 21};
  for (std::size_t i = 0; i < inbox.size(); ++i) {
    EXPECT_EQ(inbox[i].from, expect_from[i]) << i;
    EXPECT_EQ(inbox[i].to, 0u) << i;
    EXPECT_EQ(inbox[i].payload, BitString::from_uint(expect_val[i], 8)) << i;
  }
  EXPECT_EQ(assembler.size(), 0u);  // take() resets
}

// ---- degenerate topologies: the boundary shapes mpch-model's bounded
// exploration cannot reach (zero traffic, one machine, the fanout cap) ----

TEST(WireAssembler, ZeroMessageRoundYieldsEmptyCanonicalInbox) {
  // A round in which nobody sends is legal at every layer: the barrier
  // simply observes an empty inbox, and the assembler is reusable after.
  InboxAssembler assembler(/*machine=*/2, /*round=*/5);
  EXPECT_EQ(assembler.size(), 0u);
  EXPECT_TRUE(assembler.take().empty());
  // Still functional after an empty take: the next round's frames assemble.
  assembler.add(/*from=*/0, /*seq=*/0, BitString::from_uint(7, 8));
  auto inbox = assembler.take();
  ASSERT_EQ(inbox.size(), 1u);
  EXPECT_EQ(inbox[0].payload, BitString::from_uint(7, 8));
}

TEST(WireAssembler, SingleMachineSelfDeliveryKeepsSeqOrder) {
  // m=1: every frame is a self-send from machine 0. The per-sender FIFO
  // gates and the canonical order must hold with one sender exactly as with
  // many — seq collisions and seq regressions stay typed rejections.
  InboxAssembler assembler(/*machine=*/0, /*round=*/0);
  for (std::uint64_t seq = 0; seq < 4; ++seq) {
    assembler.add(/*from=*/0, seq, BitString::from_uint(seq + 1, 8));
  }
  auto inbox = assembler.take();
  ASSERT_EQ(inbox.size(), 4u);
  for (std::uint64_t seq = 0; seq < 4; ++seq) {
    EXPECT_EQ(inbox[seq].from, 0u);
    EXPECT_EQ(inbox[seq].payload, BitString::from_uint(seq + 1, 8));
  }
  assembler.add(0, 4, BitString::from_uint(9, 8));
  EXPECT_THROW(assembler.add(0, 4, BitString::from_uint(9, 8)), WireError);
  EXPECT_THROW(assembler.add(0, 1, BitString::from_uint(9, 8)), WireError);
}

TEST(WireHostile, BroadcastFanoutAtExactCapRoundTrips) {
  // The cap is a boundary, not a margin: a broadcast addressing exactly
  // kMaxBroadcastFanout destinations (a 16 MiB fanout section on the wire)
  // must decode, and every (to, seq) entry must survive.
  WireFrame f;
  f.type = FrameType::kBroadcast;
  f.round = 1;
  f.from = 0;
  f.seq = 0;
  f.payload = BitString::from_uint(0xA5, 8);
  f.fanout.reserve(transport::kMaxBroadcastFanout);
  for (std::uint64_t to = 0; to < transport::kMaxBroadcastFanout; ++to) {
    f.fanout.emplace_back(to, to % 3);
  }
  auto frames = transport::decode_frames(transport::encode_frame(f));
  ASSERT_EQ(frames.size(), 1u);
  ASSERT_EQ(frames[0].fanout.size(), transport::kMaxBroadcastFanout);
  EXPECT_EQ(frames[0].fanout.front(), (std::pair<std::uint64_t, std::uint64_t>{0, 0}));
  EXPECT_EQ(frames[0].fanout.back(),
            (std::pair<std::uint64_t, std::uint64_t>{transport::kMaxBroadcastFanout - 1,
                                                     (transport::kMaxBroadcastFanout - 1) % 3}));
}

TEST(WireHostile, BroadcastFanoutCapIsStrictlyGreaterThan) {
  // Header surgery on a 1-entry broadcast: a count of exactly the cap gets
  // past the fanout gate (the decoder then waits for the 16 MiB body that
  // never arrives — "truncated frame", not a cap rejection), while cap+1
  // fires the fanout gate from the header alone. Together with the
  // at-cap round-trip above this pins the gate to `count > cap`.
  WireFrame f;
  f.type = FrameType::kBroadcast;
  f.fanout = {{0, 0}};
  auto bytes = transport::encode_frame(f);
  auto at_cap = bytes;
  patch_u64(at_cap, 29, transport::kMaxBroadcastFanout);  // fanout-count slot
  expect_wire_error(at_cap, "truncated frame");
  auto over_cap = bytes;
  patch_u64(over_cap, 29, transport::kMaxBroadcastFanout + 1);
  expect_wire_error(over_cap, "broadcast fanout");
}

// ---- the shared-memory byte ring ----

TEST(ByteRing, PreservesOrderAcrossWraparoundAndGrowth) {
  transport::ByteRing ring(/*capacity=*/8);
  std::vector<std::uint8_t> a = {1, 2, 3, 4, 5};
  ring.write(a.data(), a.size());
  EXPECT_EQ(ring.drain(), a);
  EXPECT_EQ(ring.size(), 0u);

  // Head is now mid-buffer: the next writes wrap, then force growth.
  std::vector<std::uint8_t> b(20);
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = static_cast<std::uint8_t>(100 + i);
  ring.write(b.data(), 6);
  ring.write(b.data() + 6, b.size() - 6);
  EXPECT_EQ(ring.size(), b.size());
  EXPECT_EQ(ring.drain(), b);
}

// ---- direct backend exercises ----

TEST(SharedMemoryTransportTest, StagedOutboxRoundTripsThroughWireBytes) {
  transport::SharedMemoryTransport t;
  t.start(3);
  std::vector<mpc::Message> outbox = {
      {1, 0, BitString::from_uint(0xAA, 8)},
      {1, 2, BitString::from_uint(0x1B5, 9)},  // non-byte-aligned survives
      {1, 2, BitString::from_uint(0xCC, 8)},
  };
  ASSERT_TRUE(t.stage(/*round=*/0, /*machine=*/1, outbox));
  auto back = t.collect_staged(0, 1);
  EXPECT_EQ(back, outbox);
  // Collecting twice is out of protocol: the ring was drained.
  EXPECT_THROW(t.collect_staged(0, 1), transport::TransportError);
}

TEST(SharedMemoryTransportTest, SendFlushReceiveMatchesCanonicalOrder) {
  transport::SharedMemoryTransport t;
  t.start(3);
  EXPECT_TRUE(t.idle());
  t.send(0, 0, {{0, 2, BitString::from_uint(1, 4)}, {0, 2, BitString::from_uint(2, 4)}});
  t.send(0, 1, {{1, 2, BitString::from_uint(3, 4)}, {1, 0, BitString::from_uint(4, 4)}});
  t.send(0, 2, {});
  EXPECT_FALSE(t.idle());
  t.flush(0);
  auto inbox0 = t.receive(0, 0);
  auto inbox1 = t.receive(0, 1);
  auto inbox2 = t.receive(0, 2);
  ASSERT_EQ(inbox0.size(), 1u);
  EXPECT_EQ(inbox0[0].payload, BitString::from_uint(4, 4));
  EXPECT_TRUE(inbox1.empty());
  ASSERT_EQ(inbox2.size(), 3u);
  EXPECT_EQ(inbox2[0].from, 0u);
  EXPECT_EQ(inbox2[0].payload, BitString::from_uint(1, 4));
  EXPECT_EQ(inbox2[1].payload, BitString::from_uint(2, 4));
  EXPECT_EQ(inbox2[2].from, 1u);
  EXPECT_TRUE(t.idle());
}

// TSan cannot follow fork()ed routers; MPCH_SKIP_SOCKET_TRANSPORT=1 skips
// the socket-path tests so the codec and ring suites still run under it.
bool skip_socket_backend() {
  const char* v = std::getenv("MPCH_SKIP_SOCKET_TRANSPORT");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

TEST(SocketTransportTest, DeliversAcrossRouterProcessesOverMultipleRounds) {
  if (skip_socket_backend()) GTEST_SKIP() << "MPCH_SKIP_SOCKET_TRANSPORT set";
  transport::TransportOptions options;
  options.processes = 2;
  transport::SocketTransport t(options);
  t.start(4);
  EXPECT_EQ(t.router_count(), 2u);

  // Round 0: cross-group traffic in both directions, multiple frames per
  // sender — the stream survives the round barrier into round 1.
  t.send(0, 0, {{0, 3, BitString::from_uint(0xA1, 8)}, {0, 3, BitString::from_uint(0xA2, 8)}});
  t.send(0, 1, {{1, 2, BitString::from_uint(0xB1, 8)}});
  t.send(0, 2, {{2, 0, BitString::from_uint(0xC1, 8)}});
  t.send(0, 3, {});
  t.flush(0);
  auto inbox0 = t.receive(0, 0);
  auto inbox2 = t.receive(0, 2);
  auto inbox3 = t.receive(0, 3);
  EXPECT_TRUE(t.receive(0, 1).empty());
  ASSERT_EQ(inbox0.size(), 1u);
  EXPECT_EQ(inbox0[0].from, 2u);
  ASSERT_EQ(inbox2.size(), 1u);
  EXPECT_EQ(inbox2[0].payload, BitString::from_uint(0xB1, 8));
  ASSERT_EQ(inbox3.size(), 2u);
  EXPECT_EQ(inbox3[0].payload, BitString::from_uint(0xA1, 8));
  EXPECT_EQ(inbox3[1].payload, BitString::from_uint(0xA2, 8));
  EXPECT_TRUE(t.idle());

  // Round 1: same channels, fresh assemblers.
  t.send(1, 0, {});
  t.send(1, 1, {});
  t.send(1, 2, {{2, 1, BitString::from_uint(0xD4, 8)}});
  t.send(1, 3, {{3, 0, BitString::from_uint(0xE5, 8)}});
  t.flush(1);
  ASSERT_EQ(t.receive(1, 0).size(), 1u);
  ASSERT_EQ(t.receive(1, 1).size(), 1u);
  EXPECT_TRUE(t.receive(1, 2).empty());
  EXPECT_TRUE(t.receive(1, 3).empty());
  EXPECT_TRUE(t.idle());
}

TEST(SocketTransportTest, CoalescedBroadcastReachesEveryDestination) {
  // One payload to five destinations with broadcast_min_fanout = 2: the
  // parent ships a single kBroadcast frame and the binomial dissemination
  // replicates it across three router groups (odd G: the dedup path).
  if (skip_socket_backend()) GTEST_SKIP() << "MPCH_SKIP_SOCKET_TRANSPORT set";
  transport::TransportOptions options;
  options.processes = 3;
  options.broadcast_min_fanout = 2;
  transport::SocketTransport t(options);
  t.start(6);
  ASSERT_EQ(t.router_count(), 3u);

  BitString bcast = BitString::from_uint(0x77, 8);
  t.send(0, 1, {{1, 0, bcast},
                {1, 2, BitString::from_uint(0x11, 8)},  // direct frame interleaved
                {1, 2, bcast},
                {1, 3, bcast},
                {1, 4, bcast},
                {1, 5, bcast}});
  for (std::uint64_t m : {0, 2, 3, 4, 5}) t.send(0, m, {});
  t.flush(0);

  auto inbox0 = t.receive(0, 0);
  ASSERT_EQ(inbox0.size(), 1u);
  EXPECT_EQ(inbox0[0].payload, bcast);
  auto inbox2 = t.receive(0, 2);
  ASSERT_EQ(inbox2.size(), 2u);  // canonical: seq 1 (direct) before seq 2 (bcast)
  EXPECT_EQ(inbox2[0].payload, BitString::from_uint(0x11, 8));
  EXPECT_EQ(inbox2[1].payload, bcast);
  for (std::uint64_t m : {3, 4, 5}) {
    auto inbox = t.receive(0, m);
    ASSERT_EQ(inbox.size(), 1u) << "machine " << m;
    EXPECT_EQ(inbox[0].payload, bcast) << "machine " << m;
    EXPECT_EQ(inbox[0].from, 1u) << "machine " << m;
  }
  EXPECT_TRUE(t.receive(0, 1).empty());
  EXPECT_TRUE(t.idle());
}

TEST(SocketTransportTest, WireTamperHookMutatesThePayloadOnTheWirePath) {
  // The hook the Byzantine wire tests build on: a flip applied to the decoded
  // frame is indistinguishable from a compromised router's output.
  if (skip_socket_backend()) GTEST_SKIP() << "MPCH_SKIP_SOCKET_TRANSPORT set";
  transport::TransportOptions options;
  options.processes = 2;
  transport::SocketTransport t(options);
  t.set_wire_tamper([](WireFrame& frame) {
    if (frame.from == 0) frame.payload.set(0, !frame.payload.get(0));
  });
  t.start(2);
  BitString original = BitString::from_uint(0xF0, 8);
  t.send(0, 0, {{0, 1, original}});
  t.send(0, 1, {{1, 0, original}});
  t.flush(0);
  auto tampered = t.receive(0, 1);
  auto intact = t.receive(0, 0);
  ASSERT_EQ(tampered.size(), 1u);
  ASSERT_EQ(intact.size(), 1u);
  BitString expected = original;
  expected.set(0, !expected.get(0));
  EXPECT_EQ(tampered[0].payload, expected);
  EXPECT_EQ(intact[0].payload, original);
}

}  // namespace
}  // namespace mpch
