// Tests for the mpch-serve jobfile grammar (serve/job_spec.hpp): accepted
// forms round-trip into the right JobSpec fields, every hostile class is
// rejected through JobSpecError with 1-based line provenance, and the
// pre-allocation caps hold before any expansion.
#include <gtest/gtest.h>

#include <string>

#include "serve/job_spec.hpp"

namespace {

using mpch::serve::JobSpec;
using mpch::serve::JobSpecError;
using mpch::serve::JobVerb;
using mpch::serve::kMaxJobs;
using mpch::serve::kMaxRepeat;
using mpch::serve::parse_jobfile;

/// Expect the parse to fail with JobSpecError naming line `line`.
void expect_rejected(const std::string& text, std::uint64_t line) {
  try {
    (void)parse_jobfile(text);
    FAIL() << "accepted: " << text;
  } catch (const JobSpecError& e) {
    EXPECT_EQ(e.line(), line) << e.what();
    EXPECT_NE(std::string(e.what()).find("line " + std::to_string(line)), std::string::npos)
        << e.what();
  }
}

TEST(JobSpec, ParsesMinimalSimulate) {
  auto jobs = parse_jobfile("simulate strategy=pointer-chasing\n");
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].verb, JobVerb::kSimulate);
  EXPECT_EQ(jobs[0].strategy, "pointer-chasing");
  EXPECT_EQ(jobs[0].seed, 1u);
  EXPECT_EQ(jobs[0].threads, 0u);
  EXPECT_FALSE(jobs[0].authenticate);
  EXPECT_EQ(jobs[0].source_line, 1u);
}

TEST(JobSpec, ParsesAllCommonKeys) {
  auto jobs = parse_jobfile(
      "verify strategy=ram-emulation seed=7 threads=4 transport=shared-memory "
      "transport-procs=2 authenticate=true budget-bits=4096\n");
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].verb, JobVerb::kVerify);
  EXPECT_EQ(jobs[0].seed, 7u);
  EXPECT_EQ(jobs[0].threads, 4u);
  EXPECT_EQ(jobs[0].transport, mpch::transport::TransportKind::kSharedMemory);
  EXPECT_EQ(jobs[0].transport_processes, 2u);
  EXPECT_TRUE(jobs[0].authenticate);
  EXPECT_EQ(jobs[0].budget_bits, 4096u);
}

TEST(JobSpec, ParsesChaosKeys) {
  auto jobs = parse_jobfile(
      "chaos strategy=colluding plan=kill:round=4 policy=quarantine every=3\n");
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].verb, JobVerb::kChaos);
  EXPECT_EQ(jobs[0].plan, "kill:round=4");
  EXPECT_EQ(jobs[0].policy, "quarantine");
  EXPECT_EQ(jobs[0].every, 3u);
}

TEST(JobSpec, CommentsAndBlankLinesSkipped) {
  auto jobs = parse_jobfile(
      "# a comment\n"
      "\n"
      "   \t\n"
      "simulate strategy=full-memory  # trailing comment\n"
      "\n"
      "simulate strategy=colluding\n");
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[0].source_line, 4u);
  EXPECT_EQ(jobs[1].source_line, 6u);
}

TEST(JobSpec, RepeatExpandsConsecutiveSeeds) {
  auto jobs = parse_jobfile("simulate strategy=pointer-chasing seed=10 repeat=4\n");
  ASSERT_EQ(jobs.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(jobs[i].seed, 10 + i);
    EXPECT_EQ(jobs[i].source_line, 1u);
  }
}

TEST(JobSpec, DescribeRoundTripsKeyFields) {
  auto jobs = parse_jobfile("chaos strategy=colluding seed=5 plan=kill:round=4\n");
  const std::string desc = jobs.at(0).describe();
  EXPECT_NE(desc.find("chaos"), std::string::npos);
  EXPECT_NE(desc.find("strategy=colluding"), std::string::npos);
  EXPECT_NE(desc.find("seed=5"), std::string::npos);
  EXPECT_NE(desc.find("plan=kill:round=4"), std::string::npos);
}

TEST(JobSpec, RejectsUnknownVerbWithProvenance) {
  expect_rejected("simulate strategy=x\nlaunch strategy=x\n", 2);
}

TEST(JobSpec, RejectsUnknownKey) { expect_rejected("simulate strategy=x frobnicate=1\n", 1); }

TEST(JobSpec, RejectsDuplicateKey) { expect_rejected("simulate strategy=x seed=1 seed=2\n", 1); }

TEST(JobSpec, RejectsMissingStrategy) { expect_rejected("simulate seed=1\n", 1); }

TEST(JobSpec, RejectsMalformedToken) { expect_rejected("simulate strategy\n", 1); }

TEST(JobSpec, RejectsNonNumericAndOverflow) {
  expect_rejected("simulate strategy=x seed=twelve\n", 1);
  expect_rejected("simulate strategy=x seed=-3\n", 1);
  expect_rejected("simulate strategy=x seed=99999999999999999999999\n", 1);
}

TEST(JobSpec, RejectsBadTransportAndBool) {
  expect_rejected("simulate strategy=x transport=carrier-pigeon\n", 1);
  expect_rejected("simulate strategy=x authenticate=maybe\n", 1);
}

TEST(JobSpec, ChaosKeysRejectedOnOtherVerbs) {
  expect_rejected("simulate strategy=x plan=kill:round=1\n", 1);
  expect_rejected("verify strategy=x policy=restart\n", 1);
  expect_rejected("simulate strategy=x every=2\n", 1);
}

TEST(JobSpec, ChaosRequiresPlanAndValidPolicy) {
  expect_rejected("chaos strategy=x policy=restart\n", 1);
  expect_rejected("chaos strategy=x plan=kill:round=1 policy=ostrich\n", 1);
  expect_rejected("chaos strategy=x plan=explode:now\n", 1);  // FaultPlan grammar, wrapped
}

// The pre-allocation guards: hostile counts are a comparison, not an
// allocation.
TEST(JobSpec, HostileRepeatIsTypedRejection) {
  expect_rejected("simulate strategy=x repeat=18446744073709551615\n", 1);
  expect_rejected("simulate strategy=x repeat=" + std::to_string(kMaxRepeat + 1) + "\n", 1);
  expect_rejected("simulate strategy=x repeat=0\n", 1);
}

TEST(JobSpec, WholeFileJobCapHolds) {
  std::string text;
  const std::uint64_t lines = kMaxJobs / kMaxRepeat + 1;
  for (std::uint64_t i = 0; i <= lines; ++i) {
    text += "simulate strategy=x repeat=" + std::to_string(kMaxRepeat) + "\n";
  }
  try {
    (void)parse_jobfile(text);
    FAIL() << "file cap not enforced";
  } catch (const JobSpecError& e) {
    EXPECT_NE(std::string(e.what()).find("cap"), std::string::npos) << e.what();
  }
}

TEST(JobSpec, MaxRepeatItselfIsAccepted) {
  auto jobs = parse_jobfile("simulate strategy=x repeat=" + std::to_string(kMaxRepeat) + "\n");
  EXPECT_EQ(jobs.size(), kMaxRepeat);
}

}  // namespace
