#include "core/codec.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace mpch::core {
namespace {

using util::BitString;

LineParams small_params() { return LineParams::make(64, 16, 8, 100); }

TEST(LineCodec, QueryRoundTrip) {
  LineParams p = small_params();
  LineCodec codec(p);
  util::Rng rng(1);
  BitString x = BitString::random(p.u, [&] { return rng.next_u64(); });
  BitString r = BitString::random(p.u, [&] { return rng.next_u64(); });
  BitString q = codec.encode_query(37, x, r);
  EXPECT_EQ(q.size(), p.n);

  bool pad_ok = false;
  LineQuery parsed = codec.decode_query(q, &pad_ok);
  EXPECT_EQ(parsed.index, 37u);
  EXPECT_EQ(parsed.x, x);
  EXPECT_EQ(parsed.r, r);
  EXPECT_TRUE(pad_ok);
}

TEST(LineCodec, PaddingViolationDetected) {
  LineParams p = small_params();
  LineCodec codec(p);
  BitString q = codec.encode_query(1, BitString(p.u), BitString(p.u));
  q.set(p.n - 1, true);  // corrupt the 0* padding
  bool pad_ok = true;
  codec.decode_query(q, &pad_ok);
  EXPECT_FALSE(pad_ok);
}

TEST(LineCodec, RejectsIndexOutOfRange) {
  LineParams p = small_params();
  LineCodec codec(p);
  BitString x(p.u), r(p.u);
  EXPECT_THROW(codec.encode_query(0, x, r), std::invalid_argument);
  EXPECT_THROW(codec.encode_query(p.w + 2, x, r), std::invalid_argument);
  EXPECT_NO_THROW(codec.encode_query(p.w + 1, x, r));  // the final answer index
}

TEST(LineCodec, RejectsWrongFieldWidths) {
  LineParams p = small_params();
  LineCodec codec(p);
  EXPECT_THROW(codec.encode_query(1, BitString(p.u - 1), BitString(p.u)), std::invalid_argument);
  EXPECT_THROW(codec.encode_query(1, BitString(p.u), BitString(p.u + 1)), std::invalid_argument);
  EXPECT_THROW(codec.decode_answer(BitString(p.n - 1)), std::invalid_argument);
}

TEST(LineCodec, AnswerRoundTrip) {
  LineParams p = small_params();
  LineCodec codec(p);
  util::Rng rng(3);
  BitString r = BitString::random(p.u, [&] { return rng.next_u64(); });
  BitString z = BitString::random(p.z_bits(), [&] { return rng.next_u64(); });
  BitString a = codec.encode_answer(5, r, z);
  LineAnswer parsed = codec.decode_answer(a);
  EXPECT_EQ(parsed.ell, 5u + 1u);  // field 5 maps to block 6 (mod-v + 1)
  EXPECT_EQ(parsed.r, r);
  EXPECT_EQ(parsed.z, z);
}

TEST(LineCodec, EllMappingCoversFullRangeForPow2V) {
  LineParams p = small_params();  // v = 8 = 2^3, ell_bits = 4 (ceil_log2(9))
  LineCodec codec(p);
  // All 16 field values map into [1, 8], each hit exactly twice.
  std::vector<int> hits(p.v + 1, 0);
  for (std::uint64_t f = 0; f < (1ULL << p.ell_bits); ++f) {
    BitString a = codec.encode_answer(f, BitString(p.u), BitString(p.z_bits()));
    LineAnswer parsed = codec.decode_answer(a);
    ASSERT_GE(parsed.ell, 1u);
    ASSERT_LE(parsed.ell, p.v);
    ++hits[parsed.ell];
  }
  for (std::uint64_t b = 1; b <= p.v; ++b) EXPECT_EQ(hits[b], 2) << b;
}

TEST(LineCodec, DistinctQueriesDistinctEncodings) {
  LineParams p = small_params();
  LineCodec codec(p);
  BitString x1 = BitString::from_uint(1, p.u);
  BitString x2 = BitString::from_uint(2, p.u);
  BitString r(p.u);
  EXPECT_NE(codec.encode_query(1, x1, r), codec.encode_query(1, x2, r));
  EXPECT_NE(codec.encode_query(1, x1, r), codec.encode_query(2, x1, r));
}

TEST(SimLineCodec, QueryRoundTrip) {
  LineParams p = small_params();
  SimLineCodec codec(p);
  util::Rng rng(5);
  BitString x = BitString::random(p.u, [&] { return rng.next_u64(); });
  BitString r = BitString::random(p.u, [&] { return rng.next_u64(); });
  BitString q = codec.encode_query(x, r);
  EXPECT_EQ(q.size(), p.n);
  bool pad_ok = false;
  SimLineQuery parsed = codec.decode_query(q, &pad_ok);
  EXPECT_EQ(parsed.x, x);
  EXPECT_EQ(parsed.r, r);
  EXPECT_TRUE(pad_ok);
}

TEST(SimLineCodec, AnswerSplit) {
  LineParams p = small_params();
  SimLineCodec codec(p);
  util::Rng rng(6);
  BitString ans = BitString::random(p.n, [&] { return rng.next_u64(); });
  SimLineAnswer parsed = codec.decode_answer(ans);
  EXPECT_EQ(parsed.r, ans.slice(0, p.u));
  EXPECT_EQ(parsed.z, ans.slice(p.u, p.n - p.u));
}

TEST(SimLineCodec, RejectsTooNarrowOracle) {
  // 2u > n must be rejected.
  LineParams p = LineParams::make(64, 16, 8, 100);
  p.u = 40;  // tamper to simulate a bad configuration
  EXPECT_THROW(SimLineCodec{p}, std::invalid_argument);
}

// Property: encode/decode identity across parameter combinations.
class CodecSweepTest : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint64_t>> {
};

TEST_P(CodecSweepTest, LineQueryIdentity) {
  auto [u, v] = GetParam();
  LineParams p = LineParams::make(3 * u + 16, u, v, 50);
  LineCodec codec(p);
  util::Rng rng(u * 31 + v);
  for (int i = 0; i < 20; ++i) {
    std::uint64_t idx = 1 + rng.next_below(p.w);
    BitString x = BitString::random(p.u, [&] { return rng.next_u64(); });
    BitString r = BitString::random(p.u, [&] { return rng.next_u64(); });
    LineQuery parsed = codec.decode_query(codec.encode_query(idx, x, r));
    EXPECT_EQ(parsed.index, idx);
    EXPECT_EQ(parsed.x, x);
    EXPECT_EQ(parsed.r, r);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, CodecSweepTest,
                         ::testing::Combine(::testing::Values(4, 8, 17, 32),
                                            ::testing::Values(2, 5, 8, 64)));

}  // namespace
}  // namespace mpch::core
