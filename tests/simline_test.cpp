#include "core/simline.hpp"

#include <gtest/gtest.h>

#include "core/line.hpp"

#include "hash/random_oracle.hpp"
#include "util/rng.hpp"

namespace mpch::core {
namespace {

using util::BitString;

LineParams params() { return LineParams::make(64, 16, 8, 64); }

TEST(SimLineFunction, ScheduleIsPeriodicModV) {
  LineParams p = params();
  SimLineFunction f(p);
  EXPECT_EQ(f.scheduled_block(1), 1u);
  EXPECT_EQ(f.scheduled_block(8), 8u);
  EXPECT_EQ(f.scheduled_block(9), 1u);
  EXPECT_EQ(f.scheduled_block(17), 1u);
  EXPECT_EQ(f.scheduled_block(16), 8u);
}

TEST(SimLineFunction, Deterministic) {
  LineParams p = params();
  SimLineFunction f(p);
  hash::LazyRandomOracle oracle(p.n, p.n, 1);
  util::Rng rng(2);
  LineInput input = LineInput::random(p, rng);
  EXPECT_EQ(f.evaluate(oracle, input), f.evaluate(oracle, input));
}

TEST(SimLineFunction, ChainMatchesEvaluate) {
  LineParams p = params();
  SimLineFunction f(p);
  hash::LazyRandomOracle oracle(p.n, p.n, 3);
  util::Rng rng(4);
  LineInput input = LineInput::random(p, rng);
  SimLineChain chain = f.evaluate_chain(oracle, input);
  EXPECT_EQ(chain.nodes.size(), p.w);
  EXPECT_EQ(chain.output, f.evaluate(oracle, input));
}

TEST(SimLineFunction, ChainStructure) {
  LineParams p = params();
  SimLineFunction f(p);
  SimLineCodec codec(p);
  hash::LazyRandomOracle oracle(p.n, p.n, 5);
  util::Rng rng(6);
  LineInput input = LineInput::random(p, rng);
  SimLineChain chain = f.evaluate_chain(oracle, input);

  EXPECT_EQ(chain.nodes[0].r, BitString(p.u));
  for (std::size_t i = 0; i < chain.nodes.size(); ++i) {
    const auto& node = chain.nodes[i];
    EXPECT_EQ(node.block, f.scheduled_block(node.index));
    SimLineQuery parsed = codec.decode_query(node.query);
    EXPECT_EQ(parsed.x, input.block(node.block));
    EXPECT_EQ(parsed.r, node.r);
    if (i + 1 < chain.nodes.size()) {
      EXPECT_EQ(chain.nodes[i + 1].r, codec.decode_answer(node.answer).r);
    }
  }
}

TEST(SimLineFunction, EveryBlockMattersWhenWCoversV) {
  // With w >= v every block is visited, so flipping any block changes the
  // output (w.h.p. over the oracle).
  LineParams p = params();
  SimLineFunction f(p);
  hash::LazyRandomOracle oracle(p.n, p.n, 7);
  util::Rng rng(8);
  LineInput input = LineInput::random(p, rng);
  BitString base = f.evaluate(oracle, input);
  for (std::uint64_t b = 1; b <= p.v; ++b) {
    BitString bits = input.bits();
    bits.set((b - 1) * p.u, !bits.get((b - 1) * p.u));
    EXPECT_NE(f.evaluate(oracle, LineInput(p, bits)), base) << "block " << b;
  }
}

TEST(SimLineFunction, MeterMatchesUpperBound) {
  LineParams p = params();
  SimLineFunction f(p);
  hash::LazyRandomOracle oracle(p.n, p.n, 9);
  util::Rng rng(10);
  LineInput input = LineInput::random(p, rng);
  ram::RamMeter meter(p.n);
  f.evaluate(oracle, input, &meter);
  EXPECT_EQ(meter.costs().oracle_queries, p.w);
  EXPECT_GE(meter.costs().time_units, p.w * p.n);
  EXPECT_LE(meter.costs().peak_memory_bits, p.input_bits() + 2 * p.n + 64);
  EXPECT_EQ(meter.live_bits(), 0u);
}

TEST(SimLineFunction, DistinctFromLineOnSameOracle) {
  // Line and SimLine are different functions of the same oracle and input.
  LineParams p = params();
  SimLineFunction sim(p);
  hash::LazyRandomOracle oracle(p.n, p.n, 11);
  util::Rng rng(12);
  LineInput input = LineInput::random(p, rng);
  LineFunction line(p);
  EXPECT_NE(sim.evaluate(oracle, input), line.evaluate(oracle, input));
}

}  // namespace
}  // namespace mpch::core
