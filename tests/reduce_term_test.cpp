// Tests for the reduction-calculus terms (reduce/term.hpp): each transfer
// function's arithmetic, the saturation (no-silent-wrap) contract, compose
// ordering, and the dedup guarantee that the with_authentication term IS
// ProtocolSpec::with_authentication (one lift, no drift).
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <stdexcept>

#include "analysis/protocol_spec.hpp"
#include "reduce/arith.hpp"
#include "reduce/term.hpp"

namespace {

using mpch::analysis::ProtocolSpec;
using mpch::analysis::RoundEnvelope;
using mpch::reduce::apply_term;
using mpch::reduce::ApplyResult;
using mpch::reduce::Term;

constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();

/// A small two-shape spec with distinct values in every field, so a transfer
/// function that touches the wrong field shows up immediately.
ProtocolSpec sample_spec() {
  ProtocolSpec s;
  s.protocol = "sample";
  s.machines = 6;
  s.max_rounds = 10;
  s.needs_oracle = true;
  s.clamps_queries_to_budget = true;
  RoundEnvelope p0;
  p0.memory_bits = 100;
  p0.oracle_queries = 3;
  p0.fan_out = 2;
  p0.fan_in = 5;
  p0.sent_bits = 40;
  p0.recv_bits = 70;
  p0.max_message_bits = 20;
  p0.witness_machine = 4;
  s.prologue.push_back(p0);
  s.steady.memory_bits = 80;
  s.steady.oracle_queries = 7;
  s.steady.fan_out = 3;
  s.steady.fan_in = 2;
  s.steady.sent_bits = 30;
  s.steady.recv_bits = 25;
  s.steady.max_message_bits = 15;
  s.steady.witness_machine = 1;
  return s;
}

TEST(ReduceTerm, IdentityIsANoOp) {
  const ProtocolSpec s = sample_spec();
  const ApplyResult r = apply_term(Term::identity(), s);
  EXPECT_EQ(r.spec.max_rounds, s.max_rounds);
  EXPECT_EQ(r.spec.machines, s.machines);
  EXPECT_EQ(r.spec.steady.memory_bits, s.steady.memory_bits);
  EXPECT_FALSE(r.saturated);
  EXPECT_TRUE(r.notes.empty());
}

TEST(ReduceTerm, RoundStretchOnlyScalesRounds) {
  const ProtocolSpec s = sample_spec();
  const ApplyResult r = apply_term(Term::round_stretch(3), s);
  EXPECT_EQ(r.spec.max_rounds, 30u);
  EXPECT_EQ(r.spec.steady.memory_bits, s.steady.memory_bits);
  EXPECT_EQ(r.spec.steady.oracle_queries, s.steady.oracle_queries);
  EXPECT_EQ(r.spec.prologue.size(), 1u);
  EXPECT_EQ(r.spec.prologue[0].sent_bits, s.prologue[0].sent_bits);
}

TEST(ReduceTerm, SpaceScaleScalesBitsAndFanNotQueries) {
  const ApplyResult r = apply_term(Term::space_scale(4), sample_spec());
  EXPECT_EQ(r.spec.steady.memory_bits, 320u);
  EXPECT_EQ(r.spec.steady.sent_bits, 120u);
  EXPECT_EQ(r.spec.steady.recv_bits, 100u);
  EXPECT_EQ(r.spec.steady.max_message_bits, 60u);
  EXPECT_EQ(r.spec.steady.fan_in, 8u);
  EXPECT_EQ(r.spec.steady.fan_out, 12u);
  // Queries, rounds, and machines are untouched: space is not query budget.
  EXPECT_EQ(r.spec.steady.oracle_queries, 7u);
  EXPECT_EQ(r.spec.max_rounds, 10u);
  EXPECT_EQ(r.spec.machines, 6u);
  // Both shapes scale.
  EXPECT_EQ(r.spec.prologue[0].memory_bits, 400u);
}

TEST(ReduceTerm, MachineRegroupScalesPerMachineNotMessageSize) {
  const ApplyResult r = apply_term(Term::machine_regroup(4), sample_spec());
  EXPECT_EQ(r.spec.machines, 2u);  // ceil(6/4)
  EXPECT_EQ(r.spec.steady.memory_bits, 320u);
  EXPECT_EQ(r.spec.steady.oracle_queries, 28u);
  EXPECT_EQ(r.spec.steady.fan_in, 8u);
  EXPECT_EQ(r.spec.steady.fan_out, 12u);
  EXPECT_EQ(r.spec.steady.sent_bits, 120u);
  EXPECT_EQ(r.spec.steady.recv_bits, 100u);
  // Messages are forwarded, not merged: the largest single payload is the
  // same; the old witness machine 4 is hosted by target machine 1.
  EXPECT_EQ(r.spec.steady.max_message_bits, 15u);
  EXPECT_EQ(r.spec.prologue[0].witness_machine, 1u);
  EXPECT_EQ(r.spec.max_rounds, 10u);
}

TEST(ReduceTerm, RoundCompressFoldsShapesAndHoldsBarriers) {
  const ApplyResult r = apply_term(Term::round_compress(2), sample_spec());
  EXPECT_EQ(r.spec.max_rounds, 5u);  // ceil(10/2)
  // The per-shape structure collapses to the worst-case join...
  EXPECT_TRUE(r.spec.prologue.empty());
  // ...then queries/fan/traffic double (two source rounds per target round):
  // worst queries = max(3,7) = 7, worst fan_in = max(5,2) = 5, worst
  // recv = max(70,25) = 70, worst sent = max(40,30) = 40.
  EXPECT_EQ(r.spec.steady.oracle_queries, 14u);
  EXPECT_EQ(r.spec.steady.fan_in, 10u);
  EXPECT_EQ(r.spec.steady.fan_out, 6u);
  EXPECT_EQ(r.spec.steady.sent_bits, 80u);
  EXPECT_EQ(r.spec.steady.recv_bits, 140u);
  // Memory pays the worst shape plus (k-1) barriers' worth of deliveries:
  // max(100,80) + 1*70.
  EXPECT_EQ(r.spec.steady.memory_bits, 170u);
  // The fold is called out in the notes.
  ASSERT_FALSE(r.notes.empty());
  EXPECT_NE(r.notes[0].find("folded"), std::string::npos);
}

TEST(ReduceTerm, RoundCompressRoundsUpOddCounts) {
  ProtocolSpec s = sample_spec();
  s.max_rounds = 11;
  EXPECT_EQ(apply_term(Term::round_compress(4), s).spec.max_rounds, 3u);
}

TEST(ReduceTerm, OracleReindexScalesQueriesOnly) {
  const ApplyResult r = apply_term(Term::oracle_reindex(5), sample_spec());
  EXPECT_EQ(r.spec.steady.oracle_queries, 35u);
  EXPECT_EQ(r.spec.prologue[0].oracle_queries, 15u);
  EXPECT_EQ(r.spec.steady.memory_bits, 80u);
  EXPECT_EQ(r.spec.max_rounds, 10u);
  // Budget-adaptivity carries over: a clamping protocol still clamps.
  EXPECT_TRUE(r.spec.clamps_queries_to_budget);
}

TEST(ReduceTerm, WithAuthenticationIsTheSharedLift) {
  // The dedup contract: the term must produce field-for-field exactly what
  // ProtocolSpec::with_authentication produces — serve's admission and the
  // reduce checker share one lift.
  const ProtocolSpec s = sample_spec();
  const ProtocolSpec direct = s.with_authentication(64);
  const ProtocolSpec via_term = apply_term(Term::with_authentication(64), s).spec;
  EXPECT_EQ(via_term.max_rounds, direct.max_rounds);
  EXPECT_EQ(via_term.machines, direct.machines);
  ASSERT_EQ(via_term.prologue.size(), direct.prologue.size());
  for (std::size_t i = 0; i <= direct.prologue.size(); ++i) {
    const RoundEnvelope& a =
        i < direct.prologue.size() ? direct.prologue[i] : direct.steady;
    const RoundEnvelope& b =
        i < via_term.prologue.size() ? via_term.prologue[i] : via_term.steady;
    EXPECT_EQ(a.memory_bits, b.memory_bits) << "shape " << i;
    EXPECT_EQ(a.sent_bits, b.sent_bits) << "shape " << i;
    EXPECT_EQ(a.recv_bits, b.recv_bits) << "shape " << i;
    EXPECT_EQ(a.max_message_bits, b.max_message_bits) << "shape " << i;
    EXPECT_EQ(a.oracle_queries, b.oracle_queries) << "shape " << i;
    EXPECT_EQ(a.fan_in, b.fan_in) << "shape " << i;
    EXPECT_EQ(a.fan_out, b.fan_out) << "shape " << i;
  }
}

TEST(ReduceTerm, ComposeAppliesLeftToRight) {
  // space_scale then round_compress is NOT round_compress then space_scale
  // in the memory field (the barrier surcharge scales differently); pin the
  // documented left-to-right order.
  const ProtocolSpec s = sample_spec();
  const ApplyResult lr =
      apply_term(Term::compose({Term::space_scale(2), Term::round_compress(2)}), s);
  // scale: worst memory 200, worst recv 140 -> compress: 200 + 140 = 340.
  EXPECT_EQ(lr.spec.steady.memory_bits, 340u);
  const ApplyResult manual = apply_term(
      Term::round_compress(2), apply_term(Term::space_scale(2), s).spec);
  EXPECT_EQ(lr.spec.steady.memory_bits, manual.spec.steady.memory_bits);
  EXPECT_EQ(lr.spec.max_rounds, manual.spec.max_rounds);
}

TEST(ReduceTerm, SaturationIsLoudNotSilent) {
  ProtocolSpec s = sample_spec();
  s.steady.memory_bits = kMax / 2 + 1;
  const ApplyResult r = apply_term(Term::space_scale(2), s);
  // u64 wrap would produce a tiny (unsound) bound; saturation pins the top.
  EXPECT_EQ(r.spec.steady.memory_bits, kMax);
  EXPECT_TRUE(r.saturated);
  ASSERT_FALSE(r.notes.empty());
  EXPECT_NE(r.notes.back().find("saturated"), std::string::npos);
}

TEST(ReduceTerm, RoundStretchSaturatesRoundCount) {
  ProtocolSpec s = sample_spec();
  s.max_rounds = kMax - 1;
  const ApplyResult r = apply_term(Term::round_stretch(3), s);
  EXPECT_EQ(r.spec.max_rounds, kMax);
  EXPECT_TRUE(r.saturated);
}

TEST(ReduceTerm, FactoriesRejectZeroArguments) {
  EXPECT_THROW(Term::round_compress(0), std::invalid_argument);
  EXPECT_THROW(Term::round_stretch(0), std::invalid_argument);
  EXPECT_THROW(Term::space_scale(0), std::invalid_argument);
  EXPECT_THROW(Term::machine_regroup(0), std::invalid_argument);
  EXPECT_THROW(Term::with_authentication(0), std::invalid_argument);
  EXPECT_THROW(Term::oracle_reindex(0), std::invalid_argument);
}

TEST(ReduceTerm, MalformedSourceSpecIsRejected) {
  ProtocolSpec zero_machines = sample_spec();
  zero_machines.machines = 0;
  EXPECT_THROW(apply_term(Term::identity(), zero_machines), std::invalid_argument);
  ProtocolSpec zero_rounds = sample_spec();
  zero_rounds.max_rounds = 0;
  EXPECT_THROW(apply_term(Term::identity(), zero_rounds), std::invalid_argument);
}

TEST(ReduceTerm, DescribeIsCanonical) {
  EXPECT_EQ(Term::identity().describe(), "identity");
  EXPECT_EQ(Term::space_scale(2).describe(), "space_scale(2)");
  EXPECT_EQ(
      Term::compose({Term::machine_regroup(2), Term::with_authentication(64)}).describe(),
      "compose(machine_regroup(2), with_authentication(64))");
  EXPECT_EQ(Term::compose({Term::compose({Term::identity(), Term::space_scale(3)}),
                           Term::oracle_reindex(4)})
                .leaf_count(),
            3u);
}

TEST(ReduceArith, SaturatingOpsNeverWrap) {
  mpch::reduce::SatFlag sat;
  EXPECT_EQ(mpch::reduce::sat_add(kMax, 1, &sat), kMax);
  EXPECT_TRUE(sat.saturated);
  sat = {};
  EXPECT_EQ(mpch::reduce::sat_mul(kMax / 2 + 1, 2, &sat), kMax);
  EXPECT_TRUE(sat.saturated);
  sat = {};
  EXPECT_EQ(mpch::reduce::sat_add(2, 3, &sat), 5u);
  EXPECT_EQ(mpch::reduce::sat_mul(6, 7, &sat), 42u);
  EXPECT_FALSE(sat.saturated);
}

}  // namespace
