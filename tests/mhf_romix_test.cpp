#include "mhf/romix.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace mpch::mhf {
namespace {

using util::BitString;

constexpr std::uint64_t kBlock = 64;

BitString input_block(std::uint64_t seed) {
  util::Rng rng(seed);
  return BitString::random(kBlock, [&rng] { return rng.next_u64(); });
}

TEST(RoMix, DeterministicAndInputSensitive) {
  RoMix romix(kBlock, 32);
  hash::LazyRandomOracle oracle(kBlock, kBlock, 1);
  BitString x = input_block(1);
  EXPECT_EQ(romix.evaluate(oracle, x), romix.evaluate(oracle, x));
  EXPECT_NE(romix.evaluate(oracle, x), romix.evaluate(oracle, input_block(2)));
}

TEST(RoMix, OracleCallCountIsTwoNPlusTwo) {
  // Fill: 1 + (N-1); transition: 1; mix: N. Total = 2N + 1.
  RoMix romix(kBlock, 32);
  hash::LazyRandomOracle oracle(kBlock, kBlock, 2);
  CmcMeter meter;
  romix.evaluate(oracle, input_block(3), &meter);
  EXPECT_EQ(meter.oracle_calls(), 2 * 32 + 1);
}

TEST(RoMix, PeakMemoryIsNBlocksHonest) {
  RoMix romix(kBlock, 64);
  hash::LazyRandomOracle oracle(kBlock, kBlock, 3);
  CmcMeter meter;
  romix.evaluate(oracle, input_block(4), &meter);
  EXPECT_EQ(meter.peak_bits(), 64 * kBlock);
  EXPECT_EQ(meter.live_bits(), 0u);
}

TEST(RoMix, StrideTradeoffPreservesOutput) {
  RoMix romix(kBlock, 64);
  for (std::uint64_t stride : {1, 2, 4, 8}) {
    hash::LazyRandomOracle oracle(kBlock, kBlock, 5);
    BitString honest;
    {
      hash::LazyRandomOracle o2(kBlock, kBlock, 5);
      honest = romix.evaluate(o2, input_block(6));
    }
    EXPECT_EQ(romix.evaluate_with_stride(oracle, input_block(6), stride), honest)
        << "stride=" << stride;
  }
}

TEST(RoMix, StrideTradesMemoryForTime) {
  RoMix romix(kBlock, 128);
  CmcMeter honest, strided;
  {
    hash::LazyRandomOracle oracle(kBlock, kBlock, 7);
    romix.evaluate(oracle, input_block(8), &honest);
  }
  {
    hash::LazyRandomOracle oracle(kBlock, kBlock, 7);
    romix.evaluate_with_stride(oracle, input_block(8), 4, &strided);
  }
  // Memory drops ~4x; oracle calls rise (recomputation).
  EXPECT_LT(strided.peak_bits() * 3, honest.peak_bits());
  EXPECT_GT(strided.oracle_calls(), honest.oracle_calls());
}

TEST(RoMix, CumulativeComplexityScalesQuadratically) {
  // Honest CMC ~ (2N)·(N·block/2-ish): quadrupling N should grow CMC by
  // clearly more than 4x (closer to 16x).
  CmcMeter small, large;
  {
    RoMix romix(kBlock, 32);
    hash::LazyRandomOracle oracle(kBlock, kBlock, 9);
    romix.evaluate(oracle, input_block(10), &small);
  }
  {
    RoMix romix(kBlock, 128);
    hash::LazyRandomOracle oracle(kBlock, kBlock, 9);
    romix.evaluate(oracle, input_block(10), &large);
  }
  double ratio = static_cast<double>(large.cumulative_bit_steps()) /
                 static_cast<double>(small.cumulative_bit_steps());
  EXPECT_GT(ratio, 8.0);
  EXPECT_LT(ratio, 32.0);
}

TEST(RoMix, ParameterValidation) {
  EXPECT_THROW(RoMix(0, 8), std::invalid_argument);
  EXPECT_THROW(RoMix(kBlock, 0), std::invalid_argument);
  EXPECT_THROW(RoMix(8, 8), std::invalid_argument);  // block too narrow
  RoMix romix(kBlock, 8);
  hash::LazyRandomOracle narrow(32, 32, 1);
  EXPECT_THROW(romix.evaluate(narrow, input_block(1)), std::invalid_argument);
  hash::LazyRandomOracle ok(kBlock, kBlock, 1);
  EXPECT_THROW(romix.evaluate_with_stride(ok, input_block(1), 0), std::invalid_argument);
  EXPECT_THROW(romix.evaluate(ok, BitString(32)), std::invalid_argument);
}

TEST(CmcMeter, Accounting) {
  CmcMeter m;
  m.allocate_bits(100);
  m.tick();
  m.tick();
  m.allocate_bits(50);
  m.tick();
  EXPECT_EQ(m.oracle_calls(), 3u);
  EXPECT_EQ(m.cumulative_bit_steps(), 100u + 100u + 150u);
  EXPECT_EQ(m.peak_bits(), 150u);
  m.free_bits(150);
  EXPECT_EQ(m.live_bits(), 0u);
  EXPECT_THROW(m.free_bits(1), std::logic_error);
}

}  // namespace
}  // namespace mpch::mhf
