// Binary program codec: the hostile-input boundary the fuzz harness drives.
// Round-trips must be exact; truncation and out-of-enum opcodes must throw;
// decodable-but-invalid programs (bad jumps) must pass through to the
// verifier, which rejects them as findings.
#include "verify/program_decoder.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "ram/programs.hpp"
#include "verify/verifier.hpp"

namespace mpch::verify {
namespace {

using namespace ram::asm_ops;

TEST(VerifyDecoder, RoundTripsEveryCorpusProgram) {
  for (const auto& entry : ram::programs::corpus()) {
    const std::vector<std::uint8_t> bytes = encode_program(entry.program);
    EXPECT_EQ(bytes.size(), entry.program.size() * kInstructionBytes);
    const std::vector<ram::Instruction> decoded = decode_program(bytes);
    EXPECT_EQ(decoded, entry.program) << entry.name;
  }
}

TEST(VerifyDecoder, RoundTripsLargeImmediates) {
  const std::vector<ram::Instruction> prog = {
      loadi(0, 0xDEADBEEFCAFEF00Dull), loadi(7, ~0ull), halt()};
  EXPECT_EQ(decode_program(encode_program(prog)), prog);
}

TEST(VerifyDecoder, RejectsTruncatedStreams) {
  std::vector<std::uint8_t> bytes = encode_program({halt()});
  bytes.push_back(0);  // 13 bytes: not a whole instruction
  EXPECT_THROW(decode_program(bytes), std::invalid_argument);
}

TEST(VerifyDecoder, RejectsOpcodeBytesOutsideTheEnum) {
  std::vector<std::uint8_t> bytes(kInstructionBytes, 0);
  bytes[0] = 200;
  EXPECT_THROW(decode_program(bytes), std::invalid_argument);
}

TEST(VerifyDecoder, EmptyStreamDecodesToTheEmptyProgram) {
  const std::vector<ram::Instruction> decoded = decode_program({});
  EXPECT_TRUE(decoded.empty());
  // ...which the verifier then rejects rather than admits.
  const VerifyReport report = verify_program("empty", decoded);
  EXPECT_FALSE(report.ok());
}

TEST(VerifyDecoder, BadJumpsDecodeButNeverReachExecution) {
  // Registers/jumps are not the decoder's business: the stream decodes, the
  // verifier flags it, and the machine constructor refuses it — three
  // independent layers, each catching the same hostile program.
  const std::vector<ram::Instruction> hostile = {loadi(0, 1), jmp(999), halt()};
  const std::vector<ram::Instruction> decoded = decode_program(encode_program(hostile));
  EXPECT_EQ(decoded, hostile);

  const VerifyReport report = verify_program("hostile", decoded);
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(std::any_of(report.findings.begin(), report.findings.end(), [](const Finding& f) {
    return f.kind == FindingKind::kBadJumpTarget;
  }));

  EXPECT_THROW(ram::RamMachine(decoded, {}), std::invalid_argument);
}

TEST(VerifyDecoder, PointerOverloadMatchesVectorOverload) {
  const std::vector<std::uint8_t> bytes = encode_program(ram::programs::sum(4));
  EXPECT_EQ(decode_program(bytes.data(), bytes.size()), decode_program(bytes));
}

}  // namespace
}  // namespace mpch::verify
