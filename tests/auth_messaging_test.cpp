// auth_messaging_test.cpp — MAC-tagged messaging and round attestation.
//
// The authentication layer (mpc/auth.hpp) must be invisible when off — the
// acceptance bar is *byte*-identical transcripts and checkpoints — and
// deterministic when on, across thread counts, with every tampering caught
// as a typed TamperViolation carrying machine/round/byte-offset provenance.
#include "mpc/auth.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "fault/checkpoint.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "fault/recovery.hpp"
#include "hash/random_oracle.hpp"
#include "mpc/simulation.hpp"
#include "transport/socket.hpp"
#include "util/serialize.hpp"

namespace mpch::mpc {
namespace {

using util::BitString;

/// Plain-model ring: pass a token once around, origin outputs the hop count.
/// 16-bit payloads make tag arithmetic easy to eyeball (16 + 64 on the wire).
class RingAlgorithm final : public MpcAlgorithm {
 public:
  explicit RingAlgorithm(std::uint64_t machines) : machines_(machines) {}

  void run_machine(MachineIo& io, hash::CountingOracle*, const SharedTape&, RoundTrace&) override {
    for (const auto& msg : *io.inbox) {
      util::BitReader r(msg.payload);
      std::uint64_t hops = r.read_uint(16);
      if (hops >= machines_) {
        io.output = BitString::from_uint(hops, 16);
        return;
      }
      util::BitWriter w;
      w.write_uint(hops + 1, 16);
      io.send((io.machine + 1) % machines_, w.take());
    }
  }

  std::string name() const override { return "ring"; }

 private:
  std::uint64_t machines_;
};

MpcConfig ring_config(bool authenticate, std::uint64_t threads = 0) {
  MpcConfig c;
  c.machines = 3;
  c.local_memory_bits = 256;
  c.query_budget = 1;
  c.max_rounds = 16;
  c.tape_seed = 9;
  c.threads = threads;
  c.authenticate_messages = authenticate;
  return c;
}

std::vector<BitString> ring_input() {
  // Machine 0 holds the token with hop count 0.
  return {BitString::from_uint(0, 16), BitString(), BitString()};
}

MpcRunResult run_ring(const MpcConfig& c, RoundObserver* observer = nullptr) {
  RingAlgorithm algo(c.machines);
  MpcSimulation sim(c, nullptr);
  return sim.run(algo, ring_input(), observer);
}

TEST(MessageTag, DeterministicAndKeyedOnEveryInput) {
  BitString payload = BitString::from_uint(0xBEEF, 16);
  BitString tag = message_tag(9, 2, 0, 1, payload);
  EXPECT_EQ(tag.size(), kMessageTagBits);
  EXPECT_EQ(tag, message_tag(9, 2, 0, 1, payload));
  // Any input to the PRF changes the tag: seed, round, sender, receiver,
  // payload. That is what binds a tag to one delivery of one message.
  EXPECT_NE(tag, message_tag(10, 2, 0, 1, payload));
  EXPECT_NE(tag, message_tag(9, 3, 0, 1, payload));
  EXPECT_NE(tag, message_tag(9, 2, 2, 1, payload));
  EXPECT_NE(tag, message_tag(9, 2, 0, 2, payload));
  EXPECT_NE(tag, message_tag(9, 2, 0, 1, BitString::from_uint(0xBEEE, 16)));
}

TEST(MessageTag, VerifyAcceptsTaggedAndStripRecovers) {
  BitString payload = BitString::from_uint(0x1234, 16);
  Message msg{0, 1, payload + message_tag(9, 2, 0, 1, payload)};
  std::vector<Message> inbox = {msg};
  EXPECT_NO_THROW(verify_inbox_tags(9, 2, 1, inbox));
  std::vector<Message> plain = strip_tags(inbox);
  ASSERT_EQ(plain.size(), 1u);
  EXPECT_EQ(plain[0].payload, payload);
  EXPECT_EQ(plain[0].from, 0u);
}

TEST(MessageTag, TamperViolationCarriesProvenance) {
  BitString payload = BitString::from_uint(0x1234, 16);
  std::vector<Message> inbox = {{0, 1, payload + message_tag(9, 2, 0, 1, payload)},
                                {2, 1, payload + message_tag(9, 2, 2, 1, payload)}};
  // Flip one bit in the *second* message's payload (bit 3 of its bytes).
  inbox[1].payload.set(3, !inbox[1].payload.get(3));
  try {
    verify_inbox_tags(9, 2, 1, inbox);
    FAIL() << "tampered inbox verified";
  } catch (const TamperViolation& tv) {
    EXPECT_EQ(tv.machine(), 1u);
    EXPECT_EQ(tv.round(), 2u);
    EXPECT_EQ(tv.message_index(), 1u);
    // Bit offsets are reported at byte granularity from the inbox start:
    // message 0 occupies (16+64)/8 = 10 bytes.
    EXPECT_EQ(tv.byte_offset(), 10u);
  }
  // A payload shorter than one tag cannot be authentic at all.
  std::vector<Message> runt = {{0, 1, BitString::from_uint(1, 8)}};
  EXPECT_THROW(verify_inbox_tags(9, 2, 1, runt), TamperViolation);
}

TEST(Attestation, DigestsAreDeterministicAndContentBound) {
  std::vector<Message> inbox = {{0, 1, BitString::from_uint(7, 24)}};
  std::uint64_t d = attestation_digest(9, 4, 1, inbox);
  EXPECT_EQ(d, attestation_digest(9, 4, 1, inbox));
  EXPECT_NE(d, attestation_digest(9, 5, 1, inbox));
  EXPECT_NE(d, attestation_digest(9, 4, 2, inbox));
  std::vector<Message> other = {{0, 1, BitString::from_uint(8, 24)}};
  EXPECT_NE(d, attestation_digest(9, 4, 1, other));

  std::vector<std::vector<Message>> inboxes = {inbox, other};
  std::vector<std::uint64_t> ds = attestation_digests(9, 4, inboxes);
  ASSERT_EQ(ds.size(), 2u);
  EXPECT_EQ(ds[0], attestation_digest(9, 4, 0, inbox));
  EXPECT_EQ(ds[1], attestation_digest(9, 4, 1, other));
}

TEST(AuthMessaging, OffMeansByteIdenticalTranscriptsAndCheckpoints) {
  // Two auth-off runs serialise to byte-identical checkpoints (determinism),
  // and the wire shows no tag: a ring hop is exactly 16 payload bits.
  fault::Checkpointer a(ring_config(false), nullptr, 1, "", true);
  fault::Checkpointer b(ring_config(false), nullptr, 1, "", true);
  MpcRunResult ra = run_ring(ring_config(false), &a);
  MpcRunResult rb = run_ring(ring_config(false), &b);
  ASSERT_TRUE(ra.completed);
  ASSERT_TRUE(a.latest_encoded().has_value());
  EXPECT_EQ(*a.latest_encoded(), *b.latest_encoded());
  for (const auto& stats : ra.trace.rounds()) {
    if (stats.peak_message_bits.value != 0) {
      EXPECT_EQ(stats.peak_message_bits.value, 16u);
    }
  }
  EXPECT_EQ(ra.output, rb.output);
}

TEST(AuthMessaging, OnAddsExactlyOneTagPerMessageAndPreservesOutput) {
  MpcRunResult off = run_ring(ring_config(false));
  MpcRunResult on = run_ring(ring_config(true));
  ASSERT_TRUE(off.completed);
  ASSERT_TRUE(on.completed);
  // The algorithm sees stripped payloads: behaviour (output, round count)
  // is unchanged; only the wire accounting grows by kMessageTagBits.
  EXPECT_EQ(off.output, on.output);
  EXPECT_EQ(off.rounds_used, on.rounds_used);
  for (const auto& stats : on.trace.rounds()) {
    if (stats.peak_message_bits.value != 0) {
      EXPECT_EQ(stats.peak_message_bits.value, 16u + kMessageTagBits);
    }
  }
}

TEST(AuthMessaging, OnIsDeterministicAcrossThreadCounts) {
  MpcRunResult base = run_ring(ring_config(true, 1));
  for (std::uint64_t threads : {std::uint64_t{2}, std::uint64_t{8}}) {
    MpcRunResult r = run_ring(ring_config(true, threads));
    EXPECT_EQ(base.output, r.output) << "threads=" << threads;
    EXPECT_EQ(base.rounds_used, r.rounds_used) << "threads=" << threads;
    EXPECT_EQ(base.trace.rounds(), r.trace.rounds()) << "threads=" << threads;
  }
}

/// Observer that copies every round's attestation vector.
struct AttestationRecorder : RoundObserver {
  std::vector<std::vector<std::uint64_t>> per_round;
  void after_round(const RoundSnapshot& snapshot) override {
    ASSERT_NE(snapshot.attestations, nullptr);
    per_round.push_back(*snapshot.attestations);
  }
};

TEST(Attestation, SnapshotDigestsAreThreadInvariant) {
  AttestationRecorder serial;
  AttestationRecorder parallel;
  run_ring(ring_config(true, 1), &serial);
  run_ring(ring_config(true, 8), &parallel);
  ASSERT_FALSE(serial.per_round.empty());
  EXPECT_EQ(serial.per_round, parallel.per_round);
}

TEST(AuthMessaging, CheckpointResumeReverifiesTags) {
  // Capture a mid-run snapshot under auth, corrupt one inbox payload bit in
  // the decoded struct, and resume: the tag re-verification at entry must
  // throw TamperViolation instead of running on the poisoned state.
  MpcConfig c = ring_config(true);
  c.max_rounds = 2;  // stop mid-ring so the snapshot has an in-flight message
  fault::Checkpointer ckpt(c, nullptr, 1, "", false);
  run_ring(c, &ckpt);
  ASSERT_TRUE(ckpt.latest().has_value());
  fault::Checkpoint cp = *ckpt.latest();
  ASSERT_GT(cp.next_round, 0u);
  bool corrupted = false;
  for (auto& inbox : cp.inboxes) {
    for (auto& msg : inbox) {
      msg.payload.set(0, !msg.payload.get(0));
      corrupted = true;
      break;
    }
    if (corrupted) break;
  }
  ASSERT_TRUE(corrupted) << "no message crossed the final barrier";
  MpcResumeState rs = fault::make_resume_state(cp, nullptr);
  RingAlgorithm algo(c.machines);
  MpcConfig resumed = c;
  resumed.max_rounds = 16;  // room to continue past the captured boundary
  MpcSimulation sim(resumed, nullptr);
  EXPECT_THROW(sim.resume(algo, std::move(rs)), TamperViolation);
}

// ---- RO-MAC over the socket wire path ----
//
// With the socket backend the tagged payloads cross a real process boundary
// as MPCF frames. The ring is the sharpest possible lens for provenance
// equality: exactly one message per round, so a wire-level attack and its
// in-process FaultInjector twin must yield *identical* TamperViolations.
// (Round r's token travels machine r%3 -> (r+1)%3; round 2 delivers to
// machine 0.)

// TSan cannot follow fork()ed routers; MPCH_SKIP_SOCKET_TRANSPORT=1 skips
// the socket-path tests so the rest of this suite still runs under it.
bool skip_socket_backend() {
  const char* v = std::getenv("MPCH_SKIP_SOCKET_TRANSPORT");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

MpcRunResult run_ring_over_socket(const MpcConfig& c,
                                  std::function<void(transport::WireFrame&)> tamper) {
  RingAlgorithm algo(c.machines);
  MpcSimulation sim(c, nullptr);
  sim.set_transport_factory([tamper = std::move(tamper)] {
    transport::TransportOptions options;
    options.processes = 2;
    auto t = std::make_unique<transport::SocketTransport>(options);
    if (tamper) t->set_wire_tamper(tamper);
    return t;
  });
  return sim.run(algo, ring_input());
}

TEST(AuthMessaging, UntamperedSocketRunMatchesInProcess) {
  if (skip_socket_backend()) GTEST_SKIP() << "MPCH_SKIP_SOCKET_TRANSPORT set";
  MpcRunResult in_process = run_ring(ring_config(true));
  MpcRunResult socket = run_ring_over_socket(ring_config(true), nullptr);
  ASSERT_TRUE(socket.completed);
  EXPECT_EQ(in_process.output, socket.output);
  EXPECT_EQ(in_process.rounds_used, socket.rounds_used);
  EXPECT_EQ(in_process.trace.rounds(), socket.trace.rounds());
}

std::optional<TamperViolation> catch_violation(const std::function<void()>& run) {
  try {
    run();
  } catch (const TamperViolation& tv) {
    return tv;
  }
  return std::nullopt;
}

TEST(AuthMessaging, WireFlipOverSocketMatchesInProcessTamperProvenance) {
  if (skip_socket_backend()) GTEST_SKIP() << "MPCH_SKIP_SOCKET_TRANSPORT set";
  fault::FaultInjector injector(fault::FaultPlan::parse("flip:machine=0,round=2,bit=2"),
                                /*fail_stop=*/false);
  std::optional<TamperViolation> in_process =
      catch_violation([&] { run_ring(ring_config(true), &injector); });
  std::optional<TamperViolation> wire = catch_violation([] {
    run_ring_over_socket(ring_config(true), [](transport::WireFrame& frame) {
      if (frame.round == 2) frame.payload.set(2, !frame.payload.get(2));
    });
  });
  ASSERT_TRUE(in_process.has_value()) << "in-process flip went undetected";
  ASSERT_TRUE(wire.has_value()) << "wire flip went undetected";
  EXPECT_EQ(wire->machine(), 0u);
  EXPECT_EQ(wire->round(), 2u);
  EXPECT_EQ(wire->message_index(), 0u);
  EXPECT_EQ(wire->byte_offset(), 0u);
  EXPECT_EQ(in_process->machine(), wire->machine());
  EXPECT_EQ(in_process->round(), wire->round());
  EXPECT_EQ(in_process->message_index(), wire->message_index());
  EXPECT_EQ(in_process->byte_offset(), wire->byte_offset());
}

TEST(AuthMessaging, WireForgeOverSocketMatchesInProcessTamperProvenance) {
  // Round 2's token genuinely comes from machine 2; spoof it as machine 1.
  // The tag binds the true sender, so verification at the receiver rejects
  // the forged provenance on both paths identically.
  if (skip_socket_backend()) GTEST_SKIP() << "MPCH_SKIP_SOCKET_TRANSPORT set";
  fault::FaultInjector injector(fault::FaultPlan::parse("forge:round=2,to=0,index=0,from=1"),
                                /*fail_stop=*/false);
  std::optional<TamperViolation> in_process =
      catch_violation([&] { run_ring(ring_config(true), &injector); });
  std::optional<TamperViolation> wire = catch_violation([] {
    run_ring_over_socket(ring_config(true), [](transport::WireFrame& frame) {
      if (frame.round == 2) frame.from = 1;
    });
  });
  ASSERT_TRUE(in_process.has_value()) << "in-process forge went undetected";
  ASSERT_TRUE(wire.has_value()) << "wire forge went undetected";
  EXPECT_EQ(wire->machine(), 0u);
  EXPECT_EQ(wire->round(), 2u);
  EXPECT_EQ(in_process->machine(), wire->machine());
  EXPECT_EQ(in_process->round(), wire->round());
  EXPECT_EQ(in_process->message_index(), wire->message_index());
  EXPECT_EQ(in_process->byte_offset(), wire->byte_offset());
}

}  // namespace
}  // namespace mpch::mpc
