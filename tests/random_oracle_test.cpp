#include "hash/random_oracle.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

#include "util/bitstring.hpp"
#include "util/rng.hpp"

namespace mpch::hash {
namespace {

using util::BitString;

TEST(LazyRandomOracle, IsAFunction) {
  LazyRandomOracle ro(16, 16, 42);
  BitString x = BitString::from_uint(0x1234, 16);
  BitString y1 = ro.query(x);
  BitString y2 = ro.query(x);
  EXPECT_EQ(y1, y2);
  EXPECT_EQ(ro.touched_entries(), 1u);
  EXPECT_EQ(ro.total_queries(), 2u);
}

TEST(LazyRandomOracle, OrderIndependent) {
  // Two oracles with the same seed queried in different orders agree.
  LazyRandomOracle a(16, 16, 7), b(16, 16, 7);
  BitString x1 = BitString::from_uint(1, 16);
  BitString x2 = BitString::from_uint(2, 16);
  BitString a1 = a.query(x1);
  BitString a2 = a.query(x2);
  BitString b2 = b.query(x2);
  BitString b1 = b.query(x1);
  EXPECT_EQ(a1, b1);
  EXPECT_EQ(a2, b2);
}

TEST(LazyRandomOracle, DifferentSeedsDiffer) {
  LazyRandomOracle a(16, 16, 1), b(16, 16, 2);
  BitString x = BitString::from_uint(99, 16);
  EXPECT_NE(a.query(x), b.query(x));
}

TEST(LazyRandomOracle, RejectsWrongInputWidth) {
  LazyRandomOracle ro(16, 16, 0);
  EXPECT_THROW(ro.query(BitString::from_uint(1, 8)), std::invalid_argument);
}

TEST(LazyRandomOracle, OutputWidthHonoured) {
  LazyRandomOracle ro(8, 131, 5);
  EXPECT_EQ(ro.query(BitString::from_uint(3, 8)).size(), 131u);
}

TEST(LazyRandomOracle, OutputsLookUniform) {
  LazyRandomOracle ro(32, 64, 11);
  std::uint64_t ones = 0;
  const int kQueries = 2000;
  for (int i = 0; i < kQueries; ++i) {
    ones += ro.query(BitString::from_uint(i, 32)).popcount();
  }
  double frac = static_cast<double>(ones) / (64.0 * kQueries);
  EXPECT_NEAR(frac, 0.5, 0.01);
}

TEST(LazyRandomOracle, NoCollisionsAcrossDistinctInputs) {
  LazyRandomOracle ro(24, 64, 13);
  std::unordered_set<std::uint64_t> seen;
  for (int i = 0; i < 4000; ++i) {
    seen.insert(ro.query(BitString::from_uint(i, 24)).hash());
  }
  EXPECT_EQ(seen.size(), 4000u);
}

TEST(LazyRandomOracle, TouchedTableSortedAndComplete) {
  LazyRandomOracle ro(8, 8, 3);
  for (int i : {5, 1, 3}) ro.query(BitString::from_uint(i, 8));
  auto table = ro.touched_table();
  ASSERT_EQ(table.size(), 3u);
  EXPECT_TRUE(table[0].first < table[1].first);
  EXPECT_TRUE(table[1].first < table[2].first);
}

TEST(ExhaustiveRandomOracle, CoversFullDomain) {
  util::Rng rng(9);
  ExhaustiveRandomOracle ro(10, 10, rng);
  EXPECT_EQ(ro.table().size(), 1024u);
  EXPECT_EQ(ro.table_bits(), 10240u);
  for (std::uint64_t i : {0ULL, 511ULL, 1023ULL}) {
    EXPECT_EQ(ro.query(BitString::from_uint(i, 10)), ro.table()[i]);
  }
}

TEST(ExhaustiveRandomOracle, SetEntryOverrides) {
  util::Rng rng(2);
  ExhaustiveRandomOracle ro(6, 6, rng);
  BitString patched = BitString::from_uint(0b101010, 6);
  ro.set_entry(17, patched);
  EXPECT_EQ(ro.query(BitString::from_uint(17, 6)), patched);
  EXPECT_THROW(ro.set_entry(64, patched), std::out_of_range);
  EXPECT_THROW(ro.set_entry(3, BitString::from_uint(0, 5)), std::invalid_argument);
}

TEST(ExhaustiveRandomOracle, RejectsHugeDomain) {
  util::Rng rng(1);
  EXPECT_THROW(ExhaustiveRandomOracle(23, 8, rng), std::invalid_argument);
}

TEST(ExhaustiveRandomOracle, EqualityAndCopy) {
  util::Rng rng(4);
  ExhaustiveRandomOracle a(8, 8, rng);
  ExhaustiveRandomOracle b = a;
  EXPECT_TRUE(a == b);
  b.set_entry(0, BitString::from_uint(1, 8));
  EXPECT_FALSE(a == b);
}

TEST(Sha256Oracle, DeterministicPublicFunction) {
  Sha256Oracle a(32, 48);
  Sha256Oracle b(32, 48);
  BitString x = BitString::from_uint(0xCAFE, 32);
  EXPECT_EQ(a.query(x), b.query(x));
  EXPECT_EQ(a.query(x).size(), 48u);
}

TEST(Sha256Oracle, DomainSeparatedFromLazy) {
  // A seeded lazy oracle and the public hash oracle must disagree (they are
  // different functions by construction).
  Sha256Oracle pub(32, 32);
  LazyRandomOracle priv(32, 32, 0);
  BitString x = BitString::from_uint(7, 32);
  EXPECT_NE(pub.query(x), priv.query(x));
}

TEST(Sha256Expand, ProducesRequestedBitsDeterministically) {
  std::vector<std::uint8_t> prefix = {1, 2, 3};
  util::BitString a = sha256_expand(prefix, 777);
  util::BitString b = sha256_expand(prefix, 777);
  EXPECT_EQ(a.size(), 777u);
  EXPECT_EQ(a, b);
  util::BitString c = sha256_expand({1, 2, 4}, 777);
  EXPECT_NE(a, c);
  // A prefix of the expansion equals the shorter expansion (counter mode).
  util::BitString d = sha256_expand(prefix, 100);
  EXPECT_EQ(a.slice(0, 100), d);
}

}  // namespace
}  // namespace mpch::hash
