// The serve cornerstone: every JobResult coming off the worker pool — with
// the shared oracle memo and per-worker buffer arenas BOTH on — is
// bit-identical to running the same JobSpec standalone, for every worker
// count. "Bit-identical" is the full artifact surface: completion, round
// count, output bits, per-round RoundStats (including the instrumented
// peaks), annotations, the oracle transcript records, the materialised
// oracle table, and total query counts — the same compare
// serve::artifact_mismatches gives mpch-chaos.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "serve/job_spec.hpp"
#include "serve/scenario.hpp"
#include "serve/service.hpp"

namespace {

using mpch::serve::artifact_mismatches;
using mpch::serve::JobResult;
using mpch::serve::JobSpec;
using mpch::serve::JobStatus;
using mpch::serve::JobVerb;
using mpch::serve::ServeOptions;
using mpch::serve::ServeService;

constexpr std::uint64_t kSeeds[] = {11, 22, 33};
constexpr std::uint64_t kWorkerCounts[] = {1, 2, 8};

void expect_identical(const JobResult& ref, const JobResult& got, const std::string& label) {
  ASSERT_EQ(ref.status, got.status) << label << ": " << ref.error << " vs " << got.error;
  if (ref.status == JobStatus::kRejected) return;
  const auto bad =
      artifact_mismatches(ref.run, ref.oracle.get(), got.run, got.oracle.get());
  for (const auto& b : bad) ADD_FAILURE() << label << ": " << b;
  // Chaos-verb surfaces beyond the run itself.
  EXPECT_EQ(ref.fault_log, got.fault_log) << label;
  EXPECT_EQ(ref.mismatches, got.mismatches) << label;
  EXPECT_EQ(ref.cost.faults_injected, got.cost.faults_injected) << label;
  EXPECT_EQ(ref.cost.recoveries, got.cost.recoveries) << label;
  EXPECT_EQ(ref.cost.rounds_reexecuted, got.cost.rounds_reexecuted) << label;
  EXPECT_EQ(ref.cost.checkpoints_taken, got.cost.checkpoints_taken) << label;
  // Verify-verb surface.
  EXPECT_EQ(ref.soundness.ok(), got.soundness.ok()) << label;
}

std::vector<JobSpec> conformance_jobs() {
  std::vector<JobSpec> jobs;
  for (const std::string& strategy : mpch::serve::strategy_names()) {
    for (std::uint64_t seed : kSeeds) {
      JobSpec spec;
      spec.verb = JobVerb::kSimulate;
      spec.strategy = strategy;
      spec.seed = seed;
      jobs.push_back(spec);
    }
  }
  // A few non-simulate verbs ride along so the conformance claim covers all
  // three execution paths (kept small: chaos runs are the expensive ones).
  JobSpec verify;
  verify.verb = JobVerb::kVerify;
  verify.strategy = "ram-emulation";
  verify.seed = 11;
  jobs.push_back(verify);
  JobSpec chaos;
  chaos.verb = JobVerb::kChaos;
  chaos.strategy = "pointer-chasing";
  chaos.seed = 11;
  chaos.plan = "kill:round=4";
  chaos.policy = "restart";
  chaos.every = 2;
  jobs.push_back(chaos);
  JobSpec chaos2;
  chaos2.verb = JobVerb::kChaos;
  chaos2.strategy = "colluding";
  chaos2.seed = 22;
  chaos2.plan = "crash:machine=2,round=3";
  chaos2.policy = "replicate";
  jobs.push_back(chaos2);
  return jobs;
}

TEST(ServeConformance, PoolResultsMatchStandaloneForAllWorkerCounts) {
  const std::vector<JobSpec> jobs = conformance_jobs();

  // Standalone references: one at a time, no shared memo, no arenas.
  std::vector<JobResult> reference;
  reference.reserve(jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    reference.push_back(ServeService::run_standalone(jobs[i], i));
    ASSERT_EQ(reference.back().status, JobStatus::kOk)
        << jobs[i].describe() << ": " << reference.back().error;
  }

  for (std::uint64_t workers : kWorkerCounts) {
    ServeService service(
        ServeOptions{workers, /*queue_depth=*/4, /*share_memo=*/true, /*reuse_buffers=*/true});
    const std::vector<JobResult> results = service.run_jobs(jobs);
    ASSERT_EQ(results.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      expect_identical(reference[i], results[i],
                       "workers=" + std::to_string(workers) + " " + jobs[i].describe());
    }
    // The sweep revisits each oracle family 3 times, so sharing must have
    // produced hits — proving the compare above ran *with* sharing active.
    EXPECT_GT(service.stats().memo_hits, 0u) << "workers=" << workers;
    EXPECT_GT(service.stats().arena_reuses, 0u) << "workers=" << workers;
  }
}

// Authenticated messaging changes the wire bytes (MAC tags), so conformance
// must hold there too — one strategy as a canary.
TEST(ServeConformance, AuthenticatedJobsMatchStandalone) {
  JobSpec spec;
  spec.verb = JobVerb::kSimulate;
  spec.strategy = "pointer-chasing";
  spec.seed = 11;
  spec.authenticate = true;
  const JobResult ref = ServeService::run_standalone(spec);
  ASSERT_EQ(ref.status, JobStatus::kOk) << ref.error;
  ServeService service(ServeOptions{2, 4, true, true});
  const auto results = service.run_jobs({spec, spec});
  for (const auto& r : results) expect_identical(ref, r, "authenticated");
}

// Per-job threads change only wall time, never artifacts: a threaded job
// from the pool equals a serial standalone run.
TEST(ServeConformance, InnerThreadsDoNotChangeArtifacts) {
  JobSpec serial;
  serial.verb = JobVerb::kSimulate;
  serial.strategy = "ram-emulation";
  serial.seed = 33;
  serial.threads = 0;
  JobSpec threaded = serial;
  threaded.threads = 4;
  const JobResult ref = ServeService::run_standalone(serial);
  ASSERT_EQ(ref.status, JobStatus::kOk) << ref.error;
  ServeService service(ServeOptions{2, 4, true, true});
  const auto results = service.run_jobs({threaded, threaded});
  for (const auto& r : results) expect_identical(ref, r, "threads=4");
}

}  // namespace
