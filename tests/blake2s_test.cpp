#include "hash/blake2s.hpp"

#include <gtest/gtest.h>

namespace mpch::hash {
namespace {

// RFC 7693 Appendix B test vector: BLAKE2s-256("abc").
TEST(Blake2s, RfcAbcVector) {
  EXPECT_EQ(Blake2s::to_hex(Blake2s::hash(std::string("abc"))),
            "508c5e8c327c14e2e1a72ba34eeb452f37458b209ed63a294d999b4c86675982");
}

// Known-answer vectors from the reference implementation (unkeyed).
TEST(Blake2s, EmptyString) {
  EXPECT_EQ(Blake2s::to_hex(Blake2s::hash(std::string(""))),
            "69217a3079908094e11121d042354a7c1f55b6482ca1a51e1b250dfd1ed0eef9");
}

TEST(Blake2s, ExactBlockBoundary) {
  std::string msg(64, 'x');
  auto once = Blake2s::hash(reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size());
  Blake2s h;
  h.update(msg.substr(0, 10));
  h.update(msg.substr(10));
  EXPECT_EQ(h.digest(), once);
}

TEST(Blake2s, MultiBlockIncrementalMatchesOneShot) {
  std::string msg(300, 'q');
  for (char& c : msg) c = static_cast<char>('a' + (&c - msg.data()) % 26);
  auto once = Blake2s::hash(reinterpret_cast<const std::uint8_t*>(msg.data()), msg.size());
  for (std::size_t split : {1UL, 63UL, 64UL, 65UL, 128UL, 299UL}) {
    Blake2s h;
    h.update(msg.substr(0, split));
    h.update(msg.substr(split));
    EXPECT_EQ(h.digest(), once) << "split=" << split;
  }
}

TEST(Blake2s, ResetReuse) {
  Blake2s h;
  h.update(std::string("abc"));
  auto d1 = h.digest();
  h.reset();
  h.update(std::string("abc"));
  EXPECT_EQ(h.digest(), d1);
  EXPECT_THROW(h.update(std::string("x")), std::logic_error);
}

TEST(Blake2s, DistinctFromSha256) {
  // Different functions entirely.
  auto b = Blake2s::hash(std::string("abc"));
  EXPECT_NE(Blake2s::to_hex(b),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Blake2sExpand, DeterministicPrefixProperty) {
  std::vector<std::uint8_t> prefix = {9, 8, 7};
  auto a = blake2s_expand(prefix, 500);
  auto b = blake2s_expand(prefix, 500);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 500u);
  EXPECT_EQ(a.slice(0, 100), blake2s_expand(prefix, 100));
  EXPECT_NE(a, blake2s_expand({9, 8, 6}, 500));
}

TEST(Blake2sOracle, FunctionalAndDistinctFromSha) {
  Blake2sOracle b2(32, 64);
  Sha256Oracle sha(32, 64);
  util::BitString x = util::BitString::from_uint(0x1234, 32);
  EXPECT_EQ(b2.query(x), b2.query(x));
  EXPECT_NE(b2.query(x), sha.query(x));
  EXPECT_EQ(b2.query(x).size(), 64u);
  EXPECT_THROW(b2.query(util::BitString::from_uint(1, 16)), std::invalid_argument);
}

TEST(Blake2sOracle, OutputBitBalance) {
  Blake2sOracle b2(24, 64);
  std::uint64_t ones = 0;
  const int kQ = 2000;
  for (int i = 0; i < kQ; ++i) ones += b2.query(util::BitString::from_uint(i, 24)).popcount();
  double frac = static_cast<double>(ones) / (64.0 * kQ);
  EXPECT_NEAR(frac, 0.5, 0.01);
}

}  // namespace
}  // namespace mpch::hash
