#include "mpc/fanin_circuit.hpp"

#include <gtest/gtest.h>

#include "util/math.hpp"
#include "util/rng.hpp"

namespace mpch::mpc {
namespace {

using util::BitString;

std::uint64_t sum64(std::uint64_t a, std::uint64_t b) { return a + b; }

TEST(FaninCircuit, RejectsBadConstruction) {
  EXPECT_THROW(FaninCircuit({}, 8), std::invalid_argument);
  EXPECT_THROW(FaninCircuit({8, 0}, 8), std::invalid_argument);
  EXPECT_THROW(FaninCircuit({8}, 0), std::invalid_argument);
}

TEST(FaninCircuit, EnforcesFaninBudget) {
  FaninCircuit c({8, 8, 8}, 16);  // s = 16 bits: at most two 8-bit wires
  FaninGate ok;
  ok.inputs = {{0, 0}, {0, 1}};
  ok.output_bits = 8;
  ok.compute = [](const BitString& in) { return in.slice(0, 8); };
  EXPECT_NO_THROW(c.add_level({ok}));

  FaninGate too_wide;
  too_wide.inputs = {{0, 0}, {0, 1}, {0, 2}};
  too_wide.output_bits = 8;
  too_wide.compute = ok.compute;
  FaninCircuit c2({8, 8, 8}, 16);
  EXPECT_THROW(c2.add_level({too_wide}), std::invalid_argument);
}

TEST(FaninCircuit, RejectsForwardReferences) {
  FaninCircuit c({8}, 64);
  FaninGate gate;
  gate.inputs = {{1, 0}};  // reads its own level
  gate.output_bits = 8;
  gate.compute = [](const BitString& in) { return in; };
  EXPECT_THROW(c.add_level({gate}), std::invalid_argument);
}

TEST(FaninCircuit, EvaluatesLayeredFunction) {
  // (a XOR b), then NOT of that.
  FaninCircuit c({4, 4}, 8);
  FaninGate x;
  x.inputs = {{0, 0}, {0, 1}};
  x.output_bits = 4;
  x.compute = [](const BitString& in) { return in.slice(0, 4) ^ in.slice(4, 4); };
  c.add_level({x});
  FaninGate inv;
  inv.inputs = {{1, 0}};
  inv.output_bits = 4;
  inv.compute = [](const BitString& in) {
    return in ^ BitString::from_binary_string("1111");
  };
  c.add_level({inv});

  auto out = c.evaluate({BitString::from_binary_string("1100"),
                         BitString::from_binary_string("1010")});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].to_binary_string(), "1001");  // ~(1100 ^ 1010)
}

TEST(FaninCircuit, DependencyConeTracksStructure) {
  FaninCircuit c = make_reduction_tree(16, 8, 16, sum64);  // arity 2
  EXPECT_EQ(c.depth(), 4u);                                // log2(16)
  std::set<std::uint64_t> cone = c.dependency_cone({c.depth(), 0});
  EXPECT_EQ(cone.size(), 16u);  // output depends on everything
  // A first-level gate depends on exactly its two inputs.
  std::set<std::uint64_t> leaf = c.dependency_cone({1, 3});
  EXPECT_EQ(leaf, (std::set<std::uint64_t>{6, 7}));
}

TEST(FaninCircuit, ConeGrowthBoundHolds) {
  for (std::uint64_t s : {16, 32, 64}) {
    FaninCircuit c = make_reduction_tree(64, 8, s, sum64);
    EXPECT_TRUE(c.cone_growth_bound_holds()) << "s=" << s;
  }
}

TEST(FaninCircuit, ReductionTreeComputesTheSum) {
  util::Rng rng(5);
  FaninCircuit c = make_reduction_tree(20, 16, 64, sum64);  // arity 4
  std::vector<BitString> inputs;
  std::uint64_t expected = 0;
  for (int i = 0; i < 20; ++i) {
    std::uint64_t v = rng.next_below(1000);
    expected += v;
    inputs.push_back(BitString::from_uint(v, 16));
  }
  auto out = c.evaluate(inputs);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].get_uint(0, 16), expected & 0xFFFF);
}

TEST(FaninCircuit, TreeDepthMeetsTheRvwBound) {
  // Depth = ceil(log_arity N) where arity = s/word; the [64] bound in bit
  // units is ceil(log_s N·word) <= depth + O(1): tight up to the word factor.
  struct Case {
    std::uint64_t n, word, s, expect_depth;
  };
  for (const auto& tc : {Case{16, 8, 16, 4}, Case{16, 8, 32, 2}, Case{64, 8, 64, 2},
                         Case{256, 8, 16, 8}, Case{81, 8, 24, 4}}) {
    FaninCircuit c = make_reduction_tree(tc.n, tc.word, tc.s, sum64);
    EXPECT_EQ(c.depth(), tc.expect_depth) << tc.n << "/" << tc.s;
    // Lower bound in gate levels with arity = s/word inputs per gate:
    std::uint64_t arity = tc.s / tc.word;
    EXPECT_GE(c.depth(), FaninCircuit::min_depth_for_full_dependence(tc.n, arity));
  }
}

TEST(FaninCircuit, MinDepthFormula) {
  EXPECT_EQ(FaninCircuit::min_depth_for_full_dependence(1, 4), 1u);
  EXPECT_EQ(FaninCircuit::min_depth_for_full_dependence(4, 4), 1u);
  EXPECT_EQ(FaninCircuit::min_depth_for_full_dependence(5, 4), 2u);
  EXPECT_EQ(FaninCircuit::min_depth_for_full_dependence(16, 4), 2u);
  EXPECT_EQ(FaninCircuit::min_depth_for_full_dependence(17, 4), 3u);
  EXPECT_EQ(FaninCircuit::min_depth_for_full_dependence(1 << 20, 2), 20u);
  EXPECT_THROW(FaninCircuit::min_depth_for_full_dependence(8, 1), std::invalid_argument);
}

TEST(FaninCircuit, FullDependenceRequiresTheBoundDepth) {
  // A circuit shallower than log_s N cannot depend on all inputs: verify by
  // building the widest possible tree and checking the cone at each level.
  FaninCircuit c = make_reduction_tree(64, 8, 16, sum64);  // arity 2 -> depth 6
  for (std::uint64_t level = 1; level < c.depth(); ++level) {
    std::set<std::uint64_t> cone = c.dependency_cone({level, 0});
    EXPECT_LE(cone.size(), util::pow_sat(2, level, 1 << 30)) << level;
    EXPECT_LT(cone.size(), 64u) << "full dependence before the bound depth";
  }
}

TEST(FaninCircuit, SingleInputDegenerateTree) {
  FaninCircuit c = make_reduction_tree(1, 8, 16, sum64);
  EXPECT_EQ(c.depth(), 1u);
  auto out = c.evaluate({BitString::from_uint(42, 8)});
  EXPECT_EQ(out[0].get_uint(0, 8), 42u);
}

TEST(FaninCircuit, RejectsTinyBudgetTrees) {
  EXPECT_THROW(make_reduction_tree(8, 8, 8, sum64), std::invalid_argument);  // arity 1
}

}  // namespace
}  // namespace mpch::mpc
