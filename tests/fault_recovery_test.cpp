// fault_recovery_test.cpp — the chaos differential suite.
//
// The determinism the simulator guarantees (parallel_simulation_test.cpp)
// makes recovery *verifiable*: a run that is killed mid-flight, restored from
// a checkpoint, and resumed must be bit-identical to one that never faulted —
// same output, same per-round RoundStats (peak witnesses included), same
// annotations, same canonical oracle transcript, same materialised oracle
// table and lifetime query count. This suite pins that for every strategy in
// the tree at thread counts {1, 8}, plus crash/drop/dup faults, the
// ReplicateRound policy, and the unrecoverable-fault path.
#include "fault/recovery.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/line.hpp"
#include "fault/checkpoint.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "hash/random_oracle.hpp"
#include "mpc/simulation.hpp"
#include "ram/machine.hpp"
#include "ram/programs.hpp"
#include "strategies/batch_pointer_chasing.hpp"
#include "strategies/colluding.hpp"
#include "strategies/dictionary.hpp"
#include "strategies/full_memory.hpp"
#include "strategies/pipelined_simline.hpp"
#include "strategies/pointer_chasing.hpp"
#include "strategies/ram_emulation.hpp"
#include "strategies/speculative.hpp"
#include "util/rng.hpp"

namespace mpch {
namespace {

using util::BitString;

constexpr std::uint64_t kSeed = 11;

struct Scenario {
  mpc::MpcConfig config;
  std::shared_ptr<mpc::MpcAlgorithm> algo;
  std::vector<BitString> initial;
  fault::ChaosHarness::OracleFactory oracle_factory;
  std::shared_ptr<const core::LineInput> truth;  ///< outlives algo (speculative holds a pointer)
  std::uint64_t fault_round = 3;                 ///< late enough for a checkpoint to exist
  std::uint64_t checkpoint_every = 2;
};

mpc::MpcConfig cfg(std::uint64_t m, std::uint64_t s, std::uint64_t q, std::uint64_t threads,
                   std::uint64_t max_rounds = 20000) {
  mpc::MpcConfig c;
  c.machines = m;
  c.local_memory_bits = s;
  c.query_budget = q;
  c.max_rounds = max_rounds;
  c.tape_seed = 5;
  c.threads = threads;
  return c;
}

/// Built fresh per run so strategy-internal counters (e.g. the speculative
/// strategy's lucky_escapes) never leak between the reference and chaos runs.
Scenario make_scenario(const std::string& name, std::uint64_t threads) {
  Scenario s;
  auto oracle_for = [](std::uint64_t n) -> fault::ChaosHarness::OracleFactory {
    return [n] { return std::make_shared<hash::LazyRandomOracle>(n, n, kSeed); };
  };

  if (name == "pointer-chasing") {
    core::LineParams p = core::LineParams::make(64, 16, 8, 96);
    util::Rng rng(kSeed + 1);
    core::LineInput input = core::LineInput::random(p, rng);
    auto strat = std::make_shared<strategies::PointerChasingStrategy>(
        p, strategies::OwnershipPlan::round_robin(p, 4));
    s.config = cfg(4, strat->required_local_memory(), 1 << 20, threads);
    s.initial = strat->make_initial_memory(input);
    s.algo = strat;
    s.oracle_factory = oracle_for(p.n);
  } else if (name == "batch-pointer-chasing") {
    core::LineParams p = core::LineParams::make(64, 16, 8, 128);
    std::vector<core::LineInput> inputs;
    for (std::uint64_t i = 0; i < 4; ++i) {
      util::Rng rng(kSeed * 100 + i);
      inputs.push_back(core::LineInput::random(p, rng));
    }
    auto strat = std::make_shared<strategies::BatchPointerChasingStrategy>(
        p, strategies::OwnershipPlan::round_robin(p, 4), 4);
    s.config = cfg(4, strat->required_local_memory(), 1 << 20, threads);
    s.initial = strat->make_initial_memory(inputs);
    s.algo = strat;
    s.oracle_factory = oracle_for(p.n);
  } else if (name == "speculative") {
    // u = 16 with a small guess budget: stalls essentially never escape, so
    // the run lasts many rounds and the kill/restore window actually exists
    // (the exhaustive u = 4 variant finishes in one round).
    core::LineParams p = core::LineParams::make(64, 16, 8, 96);
    util::Rng rng(kSeed * 3 + 7);
    auto input = std::make_shared<core::LineInput>(core::LineInput::random(p, rng));
    s.truth = input;
    auto strat = std::make_shared<strategies::SpeculativeStrategy>(
        p, strategies::OwnershipPlan::round_robin(p, 4), strategies::SpeculativeConfig{4, true},
        *input);
    s.config = cfg(4, strat->required_local_memory(), 1 << 20, threads);
    s.initial = strat->make_initial_memory(*input);
    s.algo = strat;
    s.oracle_factory = oracle_for(p.n);
  } else if (name == "pipelined-simline") {
    core::LineParams p = core::LineParams::make(64, 16, 16, 256);
    util::Rng rng(kSeed + 2);
    core::LineInput input = core::LineInput::random(p, rng);
    auto strat = std::make_shared<strategies::PipelinedSimLineStrategy>(
        p, strategies::OwnershipPlan::windows(p, 4, 4));
    s.config = cfg(4, strat->required_local_memory(), 1 << 20, threads);
    s.initial = strat->make_initial_memory(input);
    s.algo = strat;
    s.oracle_factory = oracle_for(p.n);
  } else if (name == "colluding") {
    core::LineParams p = core::LineParams::make(64, 16, 8, 96);
    util::Rng rng(kSeed + 3);
    core::LineInput input = core::LineInput::random(p, rng);
    auto strat = std::make_shared<strategies::ColludingStrategy>(
        p, strategies::OwnershipPlan::round_robin(p, 4));
    s.config = cfg(4, strat->required_local_memory(), 1 << 20, threads);
    s.initial = strat->make_initial_memory(input);
    s.algo = strat;
    s.oracle_factory = oracle_for(p.n);
  } else if (name == "dictionary") {
    core::LineParams p = core::LineParams::make(64, 16, 32, 128);
    util::Rng rng(kSeed + 4);
    core::LineInput input = strategies::make_low_entropy_input(p, 2, rng);
    auto strat = std::make_shared<strategies::DictionaryStrategy>(p, 4);
    s.config = cfg(4, strat->gathered_bits(2), p.w + 1, threads, 10);
    s.initial = strat->make_initial_memory(input);
    s.algo = strat;
    s.oracle_factory = oracle_for(p.n);
    s.fault_round = 1;
    s.checkpoint_every = 1;
  } else if (name == "full-memory") {
    core::LineParams p = core::LineParams::make(64, 16, 8, 256);
    util::Rng rng(kSeed + 5);
    core::LineInput input = core::LineInput::random(p, rng);
    auto strat = std::make_shared<strategies::FullMemoryStrategy>(
        p, strategies::OwnershipPlan::round_robin(p, 4));
    s.config = cfg(4, strat->required_local_memory(), p.w + 1, threads, 10);
    s.initial = strat->make_initial_memory(input);
    s.algo = strat;
    s.oracle_factory = oracle_for(p.n);
    s.fault_round = 1;
    s.checkpoint_every = 1;
  } else if (name == "ram-emulation") {
    const std::uint64_t n = 8;
    std::vector<std::uint64_t> memory(n);
    for (std::uint64_t i = 0; i < n; ++i) memory[i] = (kSeed * 7 + i * 3) % 97;
    std::vector<ram::Instruction> prog = ram::programs::sum(n);
    auto strat = std::make_shared<strategies::RamEmulationStrategy>(prog, 4, 1);
    s.config = cfg(4, strat->required_local_memory(memory.size()), 1, threads, 1 << 20);
    s.initial = strat->make_initial_memory(memory);
    s.algo = strat;
    s.oracle_factory = [] { return std::shared_ptr<hash::LazyRandomOracle>(); };
  } else {
    throw std::invalid_argument("unknown scenario " + name);
  }
  return s;
}

const char* const kAllScenarios[] = {
    "pointer-chasing", "batch-pointer-chasing", "speculative", "pipelined-simline",
    "colluding",       "dictionary",            "full-memory", "ram-emulation",
};

struct Artifacts {
  bool completed = false;
  std::uint64_t rounds_used = 0;
  BitString output;
  std::vector<mpc::RoundStats> rounds;
  std::map<std::string, std::vector<std::uint64_t>> annotations;
  std::vector<hash::QueryRecord> records;
  std::vector<std::pair<BitString, BitString>> touched;
  std::uint64_t oracle_total = 0;
};

Artifacts extract(const mpc::MpcRunResult& result, const hash::LazyRandomOracle* oracle) {
  Artifacts a;
  a.completed = result.completed;
  a.rounds_used = result.rounds_used;
  a.output = result.output;
  a.rounds = result.trace.rounds();
  a.annotations = result.trace.annotations();
  a.records = result.transcript->records();
  if (oracle != nullptr) {
    a.touched = oracle->touched_table();
    a.oracle_total = oracle->total_queries();
  }
  return a;
}

void expect_identical(const Artifacts& clean, const Artifacts& recovered) {
  EXPECT_EQ(clean.completed, recovered.completed);
  EXPECT_EQ(clean.rounds_used, recovered.rounds_used);
  EXPECT_EQ(clean.output, recovered.output);
  EXPECT_EQ(clean.rounds, recovered.rounds);  // RoundStats ==: peaks included
  EXPECT_EQ(clean.annotations, recovered.annotations);
  EXPECT_EQ(clean.records, recovered.records);
  EXPECT_EQ(clean.oracle_total, recovered.oracle_total);
  EXPECT_EQ(clean.touched, recovered.touched);
}

/// The uninterrupted reference: same scenario, no observer.
Artifacts run_clean(const std::string& name, std::uint64_t threads) {
  Scenario s = make_scenario(name, threads);
  auto oracle = s.oracle_factory();
  mpc::MpcSimulation sim(s.config, oracle);
  mpc::MpcRunResult result = sim.run(*s.algo, s.initial);
  EXPECT_TRUE(result.completed) << name;
  return extract(result, oracle.get());
}

TEST(ChaosRecovery, KillRestoreResumeIsBitIdenticalForEveryStrategy) {
  for (const char* name : kAllScenarios) {
    for (std::uint64_t threads : {std::uint64_t{1}, std::uint64_t{8}}) {
      SCOPED_TRACE(std::string(name) + " threads=" + std::to_string(threads));
      Artifacts clean = run_clean(name, threads);

      Scenario s = make_scenario(name, threads);
      fault::ChaosHarness harness(s.config, s.oracle_factory);
      fault::FaultPlan plan =
          fault::FaultPlan::parse("kill:round=" + std::to_string(s.fault_round));
      fault::ChaosResult chaos =
          harness.run_restart(*s.algo, s.initial, plan, s.checkpoint_every);

      EXPECT_EQ(chaos.cost.faults_injected, 1u);
      EXPECT_EQ(chaos.cost.recoveries, 1u);
      expect_identical(clean, extract(chaos.run, chaos.oracle.get()));
    }
  }
}

TEST(ChaosRecovery, CrashRestoreResumeIsBitIdentical) {
  for (const std::string name : {"pointer-chasing", "ram-emulation"}) {
    for (std::uint64_t threads : {std::uint64_t{1}, std::uint64_t{8}}) {
      SCOPED_TRACE(name + " threads=" + std::to_string(threads));
      Artifacts clean = run_clean(name, threads);

      Scenario s = make_scenario(name, threads);
      fault::ChaosHarness harness(s.config, s.oracle_factory);
      fault::FaultPlan plan = fault::FaultPlan::parse(
          "crash:machine=2,round=" + std::to_string(s.fault_round));
      fault::ChaosResult chaos =
          harness.run_restart(*s.algo, s.initial, plan, s.checkpoint_every);

      EXPECT_EQ(chaos.cost.faults_injected, 1u);
      // The crashed round itself re-executes, so at least one round is redone.
      EXPECT_GE(chaos.cost.rounds_reexecuted, 1u);
      expect_identical(clean, extract(chaos.run, chaos.oracle.get()));
    }
  }
}

TEST(ChaosRecovery, DropAndDuplicateRecoverUnderRestart) {
  for (const std::string spec : {"drop:round=2,to=0,index=0", "dup:round=2,to=0,index=0"}) {
    SCOPED_TRACE(spec);
    Artifacts clean = run_clean("ram-emulation", 1);
    Scenario s = make_scenario("ram-emulation", 1);
    fault::ChaosHarness harness(s.config, s.oracle_factory);
    fault::ChaosResult chaos =
        harness.run_restart(*s.algo, s.initial, fault::FaultPlan::parse(spec), 1);
    EXPECT_EQ(chaos.cost.faults_injected, 1u);
    expect_identical(clean, extract(chaos.run, chaos.oracle.get()));
  }
}

TEST(ChaosRecovery, ReplicateRoundVerifiesAndMatchesCleanRun) {
  for (const std::string name : {"pointer-chasing", "ram-emulation"}) {
    SCOPED_TRACE(name);
    Artifacts clean = run_clean(name, 1);
    Scenario s = make_scenario(name, 1);
    fault::ChaosHarness harness(s.config, s.oracle_factory);
    fault::FaultPlan plan = fault::FaultPlan::parse(
        "crash:machine=1,round=" + std::to_string(s.fault_round));
    fault::ChaosResult chaos = harness.run_replicate(*s.algo, s.initial, plan);
    EXPECT_EQ(chaos.cost.faults_injected, 1u);
    EXPECT_EQ(chaos.cost.replica_verifications, 1u);
    EXPECT_EQ(chaos.cost.rounds_reexecuted, 2u);  // two replicas of one round
    expect_identical(clean, extract(chaos.run, chaos.oracle.get()));
  }
}

TEST(ChaosRecovery, ReplicateHandlesRoundZeroFaults) {
  // ReplicateRound seeds itself with the initial checkpoint, so even a
  // round-0 crash (before any periodic snapshot could exist) is recoverable.
  Artifacts clean = run_clean("pointer-chasing", 1);
  Scenario s = make_scenario("pointer-chasing", 1);
  fault::ChaosHarness harness(s.config, s.oracle_factory);
  fault::ChaosResult chaos =
      harness.run_replicate(*s.algo, s.initial, fault::FaultPlan::parse("crash:machine=0,round=0"));
  EXPECT_EQ(chaos.cost.faults_injected, 1u);
  expect_identical(clean, extract(chaos.run, chaos.oracle.get()));
}

TEST(ChaosRecovery, MultiFaultPlanRecoversEveryEvent) {
  Artifacts clean = run_clean("colluding", 8);
  Scenario s = make_scenario("colluding", 8);
  fault::ChaosHarness harness(s.config, s.oracle_factory);
  fault::FaultPlan plan =
      fault::FaultPlan::parse("crash:machine=1,round=2;kill:round=5;dup:round=7,to=2,index=0");
  fault::ChaosResult chaos = harness.run_restart(*s.algo, s.initial, plan, 2);
  EXPECT_EQ(chaos.cost.faults_injected, 3u);
  EXPECT_EQ(chaos.cost.recoveries, 3u);
  expect_identical(clean, extract(chaos.run, chaos.oracle.get()));
}

TEST(ChaosRecovery, FaultBeforeFirstCheckpointIsUnrecoverableWithProvenance) {
  Scenario s = make_scenario("pointer-chasing", 1);
  fault::ChaosHarness harness(s.config, s.oracle_factory);
  try {
    harness.run_restart(*s.algo, s.initial, fault::FaultPlan::parse("kill:round=0"), 2);
    FAIL() << "expected UnrecoverableFault";
  } catch (const fault::UnrecoverableFault& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("kill the simulation before round 0"), std::string::npos) << what;
    EXPECT_NE(what.find("no checkpoint exists yet"), std::string::npos) << what;
  }
}

TEST(ChaosRecovery, CheckpointFileMirrorIsLoadable) {
  const std::string path = "chaos_recovery_mirror.ckpt";
  Scenario s = make_scenario("pointer-chasing", 1);
  fault::ChaosHarness harness(s.config, s.oracle_factory);
  fault::ChaosResult chaos = harness.run_restart(
      *s.algo, s.initial, fault::FaultPlan::parse("kill:round=3"), 2, path);
  EXPECT_TRUE(chaos.run.completed);
  fault::Checkpoint cp = fault::load_checkpoint_file(path);
  EXPECT_EQ(cp.machines, s.config.machines);
  EXPECT_GT(cp.next_round, 0u);
  EXPECT_GT(chaos.cost.checkpoint_bytes_last, 0u);
  std::remove(path.c_str());
}

TEST(ChaosRecovery, SilentFaultsCorruptTheRun) {
  // The contrapositive: with detection off (no recovery), a dropped delivery
  // must actually change the execution — otherwise the suite above would be
  // vacuous.
  Artifacts clean = run_clean("ram-emulation", 1);
  Scenario s = make_scenario("ram-emulation", 1);
  // The dropped delivery stalls the emulation forever; cap the corrupted run
  // well above the clean round count so the divergence is cheap to observe.
  s.config.max_rounds = 200;
  fault::FaultInjector injector(fault::FaultPlan::parse("drop:round=2,to=0,index=0"),
                                /*fail_stop=*/false);
  auto oracle = s.oracle_factory();
  mpc::MpcSimulation sim(s.config, oracle);
  mpc::MpcRunResult run = sim.run(*s.algo, s.initial, &injector);
  EXPECT_EQ(injector.faults_fired(), 1u);
  Artifacts corrupted = extract(run, oracle.get());
  EXPECT_FALSE(corrupted.completed == clean.completed && corrupted.output == clean.output &&
               corrupted.rounds == clean.rounds)
      << "silently dropping a delivery did not perturb the execution";
}

}  // namespace
}  // namespace mpch
