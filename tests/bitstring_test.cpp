#include "util/bitstring.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace mpch::util {
namespace {

TEST(BitString, DefaultIsEmpty) {
  BitString b;
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(b.empty());
}

TEST(BitString, ZeroInitialised) {
  BitString b(17);
  EXPECT_EQ(b.size(), 17u);
  for (std::size_t i = 0; i < 17; ++i) EXPECT_FALSE(b.get(i)) << i;
  EXPECT_EQ(b.popcount(), 0u);
}

TEST(BitString, SetAndGet) {
  BitString b(10);
  b.set(0, true);
  b.set(9, true);
  b.set(4, true);
  EXPECT_TRUE(b.get(0));
  EXPECT_TRUE(b.get(4));
  EXPECT_TRUE(b.get(9));
  EXPECT_FALSE(b.get(1));
  EXPECT_EQ(b.popcount(), 3u);
  b.set(4, false);
  EXPECT_FALSE(b.get(4));
  EXPECT_EQ(b.popcount(), 2u);
}

TEST(BitString, FromUintMsbFirst) {
  BitString b = BitString::from_uint(0b1011, 4);
  EXPECT_TRUE(b.get(0));
  EXPECT_FALSE(b.get(1));
  EXPECT_TRUE(b.get(2));
  EXPECT_TRUE(b.get(3));
  EXPECT_EQ(b.to_binary_string(), "1011");
}

TEST(BitString, FromUintRejectsWideWidth) {
  EXPECT_THROW(BitString::from_uint(0, 65), std::invalid_argument);
}

TEST(BitString, BinaryStringRoundTrip) {
  const std::string s = "110100100010111010001";
  BitString b = BitString::from_binary_string(s);
  EXPECT_EQ(b.size(), s.size());
  EXPECT_EQ(b.to_binary_string(), s);
}

TEST(BitString, BinaryStringRejectsGarbage) {
  EXPECT_THROW(BitString::from_binary_string("01x"), std::invalid_argument);
}

TEST(BitString, GetUintSetUintRoundTrip) {
  BitString b(100);
  b.set_uint(3, 40, 0xABCDEF1234ULL);
  EXPECT_EQ(b.get_uint(3, 40), 0xABCDEF1234ULL);
  // Neighbouring bits untouched.
  EXPECT_FALSE(b.get(0));
  EXPECT_FALSE(b.get(1));
  EXPECT_FALSE(b.get(2));
  EXPECT_FALSE(b.get(43));
}

TEST(BitString, GetUint64Full) {
  BitString b(64);
  b.set_uint(0, 64, 0xDEADBEEFCAFEF00DULL);
  EXPECT_EQ(b.get_uint(0, 64), 0xDEADBEEFCAFEF00DULL);
}

TEST(BitString, GetUintOutOfRangeThrows) {
  BitString b(10);
  EXPECT_THROW(b.get_uint(5, 6), std::out_of_range);
  EXPECT_THROW(b.get(10), std::out_of_range);
}

TEST(BitString, SliceAlignedAndUnaligned) {
  BitString b = BitString::from_binary_string("1101001000101110");
  EXPECT_EQ(b.slice(0, 8).to_binary_string(), "11010010");
  EXPECT_EQ(b.slice(8, 8).to_binary_string(), "00101110");
  EXPECT_EQ(b.slice(3, 7).to_binary_string(), "1001000");
  EXPECT_EQ(b.slice(15, 1).to_binary_string(), "0");
  EXPECT_EQ(b.slice(0, 0).size(), 0u);
}

TEST(BitString, SpliceOverwrites) {
  BitString b(12);
  b.splice(4, BitString::from_binary_string("1111"));
  EXPECT_EQ(b.to_binary_string(), "000011110000");
}

TEST(BitString, Concatenation) {
  BitString a = BitString::from_binary_string("101");
  BitString b = BitString::from_binary_string("0110");
  EXPECT_EQ((a + b).to_binary_string(), "1010110");
  a += b;
  EXPECT_EQ(a.to_binary_string(), "1010110");
}

TEST(BitString, PadZerosAndTruncate) {
  BitString b = BitString::from_binary_string("11");
  b.pad_zeros(3);
  EXPECT_EQ(b.to_binary_string(), "11000");
  b.truncate(2);
  EXPECT_EQ(b.to_binary_string(), "11");
  EXPECT_THROW(b.truncate(5), std::out_of_range);
}

TEST(BitString, XorAndLengthMismatch) {
  BitString a = BitString::from_binary_string("1100");
  BitString b = BitString::from_binary_string("1010");
  EXPECT_EQ((a ^ b).to_binary_string(), "0110");
  EXPECT_THROW(a ^ BitString::from_binary_string("10"), std::invalid_argument);
}

TEST(BitString, EqualityRespectsLength) {
  BitString a = BitString::from_binary_string("10");
  BitString b = BitString::from_binary_string("100");
  EXPECT_NE(a, b);
  EXPECT_EQ(a, BitString::from_binary_string("10"));
}

TEST(BitString, OrderingByLengthThenBits) {
  EXPECT_LT(BitString::from_binary_string("11"), BitString::from_binary_string("000"));
  EXPECT_LT(BitString::from_binary_string("01"), BitString::from_binary_string("10"));
}

TEST(BitString, TruncateCanonicalisesTailForEquality) {
  // Set a bit, then truncate it away: must equal the all-zero string.
  BitString a(10);
  a.set(9, true);
  a.truncate(9);
  EXPECT_EQ(a, BitString(9));
  EXPECT_EQ(a.hash(), BitString(9).hash());
}

TEST(BitString, HexString) {
  EXPECT_EQ(BitString::from_binary_string("10100001").to_hex_string(), "a1");
  // Non-nibble lengths pad on the right for display.
  EXPECT_EQ(BitString::from_binary_string("101").to_hex_string(), "a");
}

TEST(BitString, HashDiffersAcrossValues) {
  BitString a = BitString::from_binary_string("1010");
  BitString b = BitString::from_binary_string("1011");
  BitString c = BitString::from_binary_string("10100");
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_NE(a.hash(), c.hash());
}

TEST(BitString, RandomHasRequestedLengthAndVariation) {
  Rng rng(7);
  BitString a = BitString::random(131, [&] { return rng.next_u64(); });
  BitString b = BitString::random(131, [&] { return rng.next_u64(); });
  EXPECT_EQ(a.size(), 131u);
  EXPECT_NE(a, b);
  // A uniform 131-bit string has ~65 set bits; allow a generous window.
  EXPECT_GT(a.popcount(), 30u);
  EXPECT_LT(a.popcount(), 100u);
}

TEST(BitString, FromBytes) {
  BitString b = BitString::from_bytes({0xFF, 0x00, 0xA5});
  EXPECT_EQ(b.size(), 24u);
  EXPECT_EQ(b.get_uint(0, 8), 0xFFu);
  EXPECT_EQ(b.get_uint(16, 8), 0xA5u);
}

// Property sweep: set_uint/get_uint round-trips across widths and offsets.
class BitStringWidthTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitStringWidthTest, UintRoundTripAtManyOffsets) {
  std::size_t width = GetParam();
  Rng rng(width * 977 + 13);
  for (std::size_t offset : {0UL, 1UL, 7UL, 8UL, 9UL, 63UL, 64UL, 65UL}) {
    BitString b(offset + width + 17);
    std::uint64_t value = rng.next_u64();
    if (width < 64) value &= (1ULL << width) - 1;
    b.set_uint(offset, width, value);
    EXPECT_EQ(b.get_uint(offset, width), value) << "width=" << width << " offset=" << offset;
  }
}

TEST_P(BitStringWidthTest, SliceConcatIdentity) {
  std::size_t width = GetParam();
  Rng rng(width);
  BitString b = BitString::random(width + 37, [&] { return rng.next_u64(); });
  BitString rebuilt = b.slice(0, width) + b.slice(width, 37);
  EXPECT_EQ(rebuilt, b);
}

INSTANTIATE_TEST_SUITE_P(Widths, BitStringWidthTest,
                         ::testing::Values(1, 2, 3, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64));

}  // namespace
}  // namespace mpch::util
