// Structural + hygiene passes of the static verifier: bytecode rejection,
// CFG construction, unreachable-code and use-before-def warnings, and the
// corpus cleanliness bar (every checked-in program must verify with zero
// findings).
#include "verify/cfg.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "ram/programs.hpp"
#include "verify/verifier.hpp"

namespace mpch::verify {
namespace {

using namespace ram::asm_ops;

bool has_finding(const VerifyReport& report, FindingKind kind) {
  return std::any_of(report.findings.begin(), report.findings.end(),
                     [kind](const Finding& f) { return f.kind == kind; });
}

TEST(VerifyStructural, RejectsOutOfRangeJump) {
  const VerifyReport report =
      verify_program("bad-jump", {loadi(0, 1), jmp(999), halt()});
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.structurally_valid);
  ASSERT_TRUE(has_finding(report, FindingKind::kBadJumpTarget));
  for (const Finding& f : report.findings) {
    if (f.kind != FindingKind::kBadJumpTarget) continue;
    EXPECT_EQ(f.severity, Severity::kError);
    EXPECT_EQ(f.pc, 1u);
  }
  // A structurally invalid program never reaches the analysis pass.
  EXPECT_FALSE(report.facts.has_value());
}

TEST(VerifyStructural, RejectsBadRegister) {
  const VerifyReport report =
      verify_program("bad-reg", {{ram::Opcode::kAdd, 9, 0, 0, 0}, halt()});
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_finding(report, FindingKind::kBadRegister));
}

TEST(VerifyStructural, RejectsBadOpcode) {
  const VerifyReport report =
      verify_program("bad-op", {{static_cast<ram::Opcode>(200), 0, 0, 0, 0}, halt()});
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_finding(report, FindingKind::kBadOpcode));
}

TEST(VerifyStructural, RejectsEmptyProgram) {
  const VerifyReport report = verify_program("empty", {});
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_finding(report, FindingKind::kEmptyProgram));
}

TEST(VerifyStructural, RejectsFallingOffTheEnd) {
  const VerifyReport report = verify_program("falls-off", {loadi(0, 1)});
  EXPECT_FALSE(report.ok());
  EXPECT_TRUE(has_finding(report, FindingKind::kFallsOffEnd));

  // The fallthrough arm of a conditional branch at the last pc also falls off.
  const VerifyReport cond = verify_program("cond-falls-off", {loadi(0, 0), jz(0, 0)});
  EXPECT_FALSE(cond.ok());
  EXPECT_TRUE(has_finding(cond, FindingKind::kFallsOffEnd));
}

TEST(VerifyHygiene, UnreachableCodeIsAWarningNotAnError) {
  const VerifyReport report =
      verify_program("dead-code", {jmp(2), loadi(0, 1), halt()});
  EXPECT_TRUE(report.ok());      // warnings do not reject
  EXPECT_FALSE(report.clean());  // but the program is not corpus-clean
  ASSERT_TRUE(has_finding(report, FindingKind::kUnreachableCode));
  for (const Finding& f : report.findings) {
    if (f.kind == FindingKind::kUnreachableCode) {
      EXPECT_EQ(f.severity, Severity::kWarning);
    }
  }
}

TEST(VerifyHygiene, UseBeforeDefWarnsOnImplicitZeroReads) {
  // R1 and R2 are read without ever being written: legal (registers start at
  // zero) but almost always a bug in hand-written bytecode.
  const VerifyReport report = verify_program("ubd", {add(0, 1, 2), halt()});
  EXPECT_TRUE(report.ok());
  EXPECT_TRUE(has_finding(report, FindingKind::kUseBeforeDef));
}

TEST(VerifyHygiene, WrittenRegistersDoNotWarn) {
  const VerifyReport report =
      verify_program("defined", {loadi(1, 2), loadi(2, 3), add(0, 1, 2), halt()});
  EXPECT_TRUE(report.clean()) << report.format();
}

TEST(VerifyCorpus, EveryCheckedInProgramIsClean) {
  for (const auto& entry : ram::programs::corpus()) {
    VerifyOptions options;
    options.memory = MemoryModel::from_words(entry.memory);
    const VerifyReport report = verify_program(entry.name, entry.program, options);
    EXPECT_TRUE(report.clean()) << entry.name << ":\n" << report.format();
    ASSERT_TRUE(report.facts.has_value()) << entry.name;
    EXPECT_TRUE(report.facts->terminates) << entry.name;
  }
}

TEST(VerifyCfg, FindsTheSumLoop) {
  const auto prog = ram::programs::sum(8);
  Cfg cfg(prog);
  EXPECT_TRUE(cfg.reducible());
  ASSERT_EQ(cfg.loops().size(), 1u);
  const NaturalLoop& loop = cfg.loops()[0];
  // The loop header is the block holding the guard at pc 4.
  EXPECT_EQ(cfg.blocks()[loop.header].first, 4u);
  EXPECT_TRUE(loop.contains_block(cfg.block_of(6)));   // body load
  EXPECT_FALSE(loop.contains_block(cfg.block_of(10)));  // halt is outside
}

TEST(VerifyCfg, StraightLineHasNoLoops) {
  Cfg cfg({loadi(0, 1), loadi(1, 2), add(2, 0, 1), halt()});
  EXPECT_TRUE(cfg.reducible());
  EXPECT_TRUE(cfg.loops().empty());
  ASSERT_FALSE(cfg.blocks().empty());
}

TEST(VerifyCfg, ThrowsOnStructurallyInvalidProgram) {
  EXPECT_THROW(Cfg({jmp(999)}), std::invalid_argument);
  EXPECT_THROW(Cfg({}), std::invalid_argument);
}

}  // namespace
}  // namespace mpch::verify
