// The dynamic half: every strategy's declared ProtocolSpec is pinned to
// reality by running it under the instrumented simulation and asserting the
// observed per-round peaks never exceed the declared envelopes. A spec that
// understates its footprint (the "lying spec" cases) must be caught with the
// observed value, the declared limit, and machine/round provenance.
#include "analysis/spec_soundness.hpp"

#include <gtest/gtest.h>

#include "core/line.hpp"
#include "hash/random_oracle.hpp"
#include "ram/machine.hpp"
#include "ram/programs.hpp"
#include "strategies/batch_pointer_chasing.hpp"
#include "strategies/colluding.hpp"
#include "strategies/dictionary.hpp"
#include "strategies/full_memory.hpp"
#include "strategies/pipelined_simline.hpp"
#include "strategies/pointer_chasing.hpp"
#include "strategies/ram_emulation.hpp"
#include "strategies/speculative.hpp"
#include "util/rng.hpp"

namespace mpch::analysis {
namespace {

core::LineParams params(std::uint64_t w = 64) { return core::LineParams::make(64, 16, 8, w); }

mpc::MpcConfig documented(const ProtocolSpec& spec, std::uint64_t q) {
  mpc::MpcConfig c;
  c.machines = spec.machines;
  c.max_rounds = spec.max_rounds;
  c.query_budget = q;
  for (std::uint64_t shape = 0; shape < spec.distinct_round_shapes(); ++shape) {
    std::uint64_t round = shape < spec.prologue.size() ? shape : spec.prologue.size();
    const RoundEnvelope& env = spec.envelope(round);
    c.local_memory_bits = std::max({c.local_memory_bits, env.memory_bits, env.recv_bits});
  }
  return c;
}

/// Run a Line-family strategy under its documented config and assert the
/// observed trace stays inside the declared spec.
template <typename Strategy>
void expect_sound(Strategy& strat, const core::LineInput& input, std::uint64_t q,
                  std::uint64_t seed) {
  ProtocolSpec spec = strat.protocol_spec();
  mpc::MpcConfig c = documented(spec, q);
  auto oracle = std::make_shared<hash::LazyRandomOracle>(64, 64, seed);
  mpc::MpcSimulation sim(c, oracle);
  auto result = sim.run(strat, strat.make_initial_memory(input));
  ASSERT_TRUE(result.completed);
  AnalysisReport report = check_soundness(spec, result, c);
  EXPECT_TRUE(report.ok()) << report.format();
}

TEST(SpecSoundness, PointerChasing) {
  core::LineParams p = params();
  util::Rng rng(11);
  core::LineInput input = core::LineInput::random(p, rng);
  strategies::PointerChasingStrategy strat(p, strategies::OwnershipPlan::round_robin(p, 4));
  expect_sound(strat, input, 4, 12);
}

TEST(SpecSoundness, Colluding) {
  core::LineParams p = params();
  util::Rng rng(13);
  core::LineInput input = core::LineInput::random(p, rng);
  strategies::ColludingStrategy strat(p, strategies::OwnershipPlan::round_robin(p, 4));
  expect_sound(strat, input, 4, 14);
}

TEST(SpecSoundness, PipelinedSimLine) {
  core::LineParams p = params();
  util::Rng rng(15);
  core::LineInput input = core::LineInput::random(p, rng);
  strategies::PipelinedSimLineStrategy strat(p, strategies::OwnershipPlan::windows(p, 4, 2));
  expect_sound(strat, input, 4, 16);
}

TEST(SpecSoundness, Speculative) {
  core::LineParams p = params();
  util::Rng rng(17);
  core::LineInput input = core::LineInput::random(p, rng);
  strategies::SpeculativeStrategy strat(p, strategies::OwnershipPlan::round_robin(p, 4),
                                        {4, true}, input);
  expect_sound(strat, input, 8, 18);
}

TEST(SpecSoundness, FullMemory) {
  core::LineParams p = params();
  util::Rng rng(19);
  core::LineInput input = core::LineInput::random(p, rng);
  strategies::FullMemoryStrategy strat(p, strategies::OwnershipPlan::round_robin(p, 4));
  expect_sound(strat, input, p.w, 20);
}

TEST(SpecSoundness, Dictionary) {
  core::LineParams p = params();
  util::Rng rng(21);
  core::LineInput input = core::LineInput::random(p, rng);
  strategies::DictionaryStrategy strat(p, 4);
  expect_sound(strat, input, p.w, 22);
}

TEST(SpecSoundness, BatchPointerChasing) {
  core::LineParams p = params();
  std::vector<core::LineInput> inputs;
  for (std::uint64_t i = 0; i < 3; ++i) {
    util::Rng rng(23 + i);
    inputs.push_back(core::LineInput::random(p, rng));
  }
  strategies::BatchPointerChasingStrategy strat(
      p, strategies::OwnershipPlan::round_robin(p, 4), 3);
  ProtocolSpec spec = strat.protocol_spec();
  mpc::MpcConfig c = documented(spec, 4);
  auto oracle = std::make_shared<hash::LazyRandomOracle>(64, 64, 26);
  mpc::MpcSimulation sim(c, oracle);
  auto result = sim.run(strat, strat.make_initial_memory(inputs));
  ASSERT_TRUE(result.completed);
  AnalysisReport report = check_soundness(spec, result, c);
  EXPECT_TRUE(report.ok()) << report.format();
}

TEST(SpecSoundness, RamEmulation) {
  const std::uint64_t n = 8;
  std::vector<ram::Instruction> prog = ram::programs::sum(n);
  std::vector<std::uint64_t> memory(n);
  for (std::uint64_t i = 0; i < n; ++i) memory[i] = i + 1;
  ram::RamMachine native(prog, memory);
  native.run();

  strategies::RamEmulationStrategy strat(prog, 4, 1, memory.size(), native.steps_executed());
  ProtocolSpec spec = strat.protocol_spec();
  mpc::MpcConfig c = documented(spec, 0);
  mpc::MpcSimulation sim(c, nullptr);
  auto result = sim.run(strat, strat.make_initial_memory(memory));
  ASSERT_TRUE(result.completed);
  AnalysisReport report = check_soundness(spec, result, c);
  EXPECT_TRUE(report.ok()) << report.format();
}

// --- lying specs are caught with provenance ---

TEST(SpecSoundness, CatchesUnderstatedMemory) {
  core::LineParams p = params();
  util::Rng rng(31);
  core::LineInput input = core::LineInput::random(p, rng);
  strategies::PointerChasingStrategy strat(p, strategies::OwnershipPlan::round_robin(p, 4));
  ProtocolSpec spec = strat.protocol_spec();
  mpc::MpcConfig c = documented(spec, 4);
  auto oracle = std::make_shared<hash::LazyRandomOracle>(64, 64, 32);
  mpc::MpcSimulation sim(c, oracle);
  auto result = sim.run(strat, strat.make_initial_memory(input));
  ASSERT_TRUE(result.completed);

  ProtocolSpec lying = spec;
  lying.steady.memory_bits = 1;  // the run certainly used more
  AnalysisReport report = check_soundness(lying, result, c);
  ASSERT_FALSE(report.ok());
  const Diagnostic& d = report.violations.front();
  EXPECT_EQ(d.kind, ViolationKind::kMemory);
  EXPECT_GT(d.value, d.limit);
  EXPECT_EQ(d.limit, 1u);
  // Provenance names the witness machine the instrumentation recorded.
  EXPECT_LT(d.machine, 4u);
  EXPECT_NE(d.to_string().find("observed"), std::string::npos);
}

TEST(SpecSoundness, CatchesUnderstatedFanOut) {
  core::LineParams p = params();
  util::Rng rng(33);
  core::LineInput input = core::LineInput::random(p, rng);
  strategies::ColludingStrategy strat(p, strategies::OwnershipPlan::round_robin(p, 4));
  ProtocolSpec spec = strat.protocol_spec();
  mpc::MpcConfig c = documented(spec, 4);
  auto oracle = std::make_shared<hash::LazyRandomOracle>(64, 64, 34);
  mpc::MpcSimulation sim(c, oracle);
  auto result = sim.run(strat, strat.make_initial_memory(input));
  ASSERT_TRUE(result.completed);

  ProtocolSpec lying = spec;
  lying.steady.fan_out = 1;  // the broadcast sends to all m machines
  AnalysisReport report = check_soundness(lying, result, c);
  ASSERT_FALSE(report.ok());
  const Diagnostic* fan_out = nullptr;
  for (const auto& d : report.violations) {
    if (d.kind == ViolationKind::kFanOut) fan_out = &d;
  }
  ASSERT_NE(fan_out, nullptr) << report.format();
  EXPECT_GT(fan_out->value, 1u);
}

TEST(SpecSoundness, CatchesUnderstatedRoundCount) {
  core::LineParams p = params();
  util::Rng rng(35);
  core::LineInput input = core::LineInput::random(p, rng);
  strategies::PointerChasingStrategy strat(p, strategies::OwnershipPlan::round_robin(p, 4));
  ProtocolSpec spec = strat.protocol_spec();
  mpc::MpcConfig c = documented(spec, 4);
  auto oracle = std::make_shared<hash::LazyRandomOracle>(64, 64, 36);
  mpc::MpcSimulation sim(c, oracle);
  auto result = sim.run(strat, strat.make_initial_memory(input));
  ASSERT_TRUE(result.completed);
  ASSERT_GT(result.rounds_used, 2u);

  ProtocolSpec lying = spec;
  lying.max_rounds = 2;
  AnalysisReport report = check_soundness(lying, result, c);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.violations.front().kind, ViolationKind::kRoundCount);
  EXPECT_EQ(report.violations.front().value, result.rounds_used);
}

TEST(SpecSoundness, QueriesComparedAgainstClampedBound) {
  // With q = 2, a clamped strategy may never exceed 2 observed queries per
  // machine-round even though its declared envelope says w; soundness must
  // compare against min(declared, q) and pass.
  core::LineParams p = params();
  util::Rng rng(37);
  core::LineInput input = core::LineInput::random(p, rng);
  strategies::PointerChasingStrategy strat(p, strategies::OwnershipPlan::round_robin(p, 4));
  ProtocolSpec spec = strat.protocol_spec();
  mpc::MpcConfig c = documented(spec, 2);
  auto oracle = std::make_shared<hash::LazyRandomOracle>(64, 64, 38);
  mpc::MpcSimulation sim(c, oracle);
  auto result = sim.run(strat, strat.make_initial_memory(input));
  ASSERT_TRUE(result.completed);
  AnalysisReport report = check_soundness(spec, result, c);
  EXPECT_TRUE(report.ok()) << report.format();
  for (const auto& stats : result.trace.rounds()) {
    EXPECT_LE(stats.peak_queries.value, 2u);
  }
}

TEST(SpecSoundness, ParallelRunObservesSamePeaksAsSerial) {
  // The peak instrumentation reduces deterministically in the parallel
  // merge, so the soundness verdict cannot depend on MpcConfig::threads.
  core::LineParams p = params();
  util::Rng rng(39);
  core::LineInput input = core::LineInput::random(p, rng);
  strategies::PointerChasingStrategy strat(p, strategies::OwnershipPlan::round_robin(p, 4));
  ProtocolSpec spec = strat.protocol_spec();
  mpc::MpcConfig c = documented(spec, 4);

  auto run_with_threads = [&](std::uint64_t threads) {
    mpc::MpcConfig ct = c;
    ct.threads = threads;
    auto oracle = std::make_shared<hash::LazyRandomOracle>(64, 64, 40);
    mpc::MpcSimulation sim(ct, oracle);
    return sim.run(strat, strat.make_initial_memory(input));
  };
  auto serial = run_with_threads(1);
  auto parallel = run_with_threads(4);
  ASSERT_EQ(serial.trace.rounds().size(), parallel.trace.rounds().size());
  for (std::size_t i = 0; i < serial.trace.rounds().size(); ++i) {
    const auto& a = serial.trace.rounds()[i];
    const auto& b = parallel.trace.rounds()[i];
    EXPECT_EQ(a.peak_memory_bits.value, b.peak_memory_bits.value);
    EXPECT_EQ(a.peak_memory_bits.machine, b.peak_memory_bits.machine);
    EXPECT_EQ(a.peak_queries.value, b.peak_queries.value);
    EXPECT_EQ(a.peak_fan_out.value, b.peak_fan_out.value);
    EXPECT_EQ(a.peak_fan_in.value, b.peak_fan_in.value);
    EXPECT_EQ(a.peak_sent_bits.value, b.peak_sent_bits.value);
    EXPECT_EQ(a.peak_recv_bits.value, b.peak_recv_bits.value);
    EXPECT_EQ(a.peak_message_bits.value, b.peak_message_bits.value);
  }
  EXPECT_TRUE(check_soundness(spec, parallel, c).ok());
}

}  // namespace
}  // namespace mpch::analysis
