#include "stats/estimator.hpp"
#include "stats/trials.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mpch::stats {
namespace {

TEST(Proportion, RateAndDegenerateCases) {
  Proportion p{5, 20};
  EXPECT_DOUBLE_EQ(p.rate(), 0.25);
  Proportion empty{0, 0};
  EXPECT_DOUBLE_EQ(empty.rate(), 0.0);
  EXPECT_DOUBLE_EQ(empty.wilson_low(), 0.0);
  EXPECT_DOUBLE_EQ(empty.wilson_high(), 1.0);
}

TEST(Proportion, WilsonIntervalBracketsRate) {
  Proportion p{50, 1000};
  EXPECT_LT(p.wilson_low(), p.rate());
  EXPECT_GT(p.wilson_high(), p.rate());
  EXPECT_GE(p.wilson_low(), 0.0);
  EXPECT_LE(p.wilson_high(), 1.0);
  EXPECT_TRUE(p.contains(0.05));
  EXPECT_FALSE(p.contains(0.2));
}

TEST(Proportion, IntervalNarrowsWithTrials) {
  Proportion small{5, 100}, large{500, 10000};
  EXPECT_GT(small.wilson_high() - small.wilson_low(),
            large.wilson_high() - large.wilson_low());
}

TEST(Proportion, ZeroSuccessesStillValid) {
  Proportion p{0, 1000};
  EXPECT_DOUBLE_EQ(p.wilson_low(), 0.0);
  EXPECT_GT(p.wilson_high(), 0.0);
  EXPECT_LT(p.wilson_high(), 0.01);
}

TEST(LinearFit, ExactLine) {
  LinearFit fit = fit_line({1, 2, 3, 4}, {3, 5, 7, 9});
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(LinearFit, NoisyLineSlopeRecovered) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 100; ++i) {
    xs.push_back(i);
    ys.push_back(-1.0 * i + 5 + ((i % 3) - 1) * 0.1);  // slope -1 + small noise
  }
  LinearFit fit = fit_line(xs, ys);
  EXPECT_NEAR(fit.slope, -1.0, 0.01);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(LinearFit, Degenerate) {
  EXPECT_THROW(fit_line({1}, {2}), std::invalid_argument);
  EXPECT_THROW(fit_line({1, 1}, {2, 3}), std::invalid_argument);
  EXPECT_THROW(fit_line({1, 2}, {2}), std::invalid_argument);
}

TEST(RunningStats, WelfordMatchesDirect) {
  RunningStats s;
  std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  for (double x : xs) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(Histogram, BinsAndOverflow) {
  Histogram h(4);
  for (std::uint64_t v : {0ULL, 1ULL, 1ULL, 3ULL, 9ULL, 12ULL}) h.add(v);
  EXPECT_EQ(h.count(0), 1u);
  EXPECT_EQ(h.count(1), 2u);
  EXPECT_EQ(h.count(2), 0u);
  EXPECT_EQ(h.count(3), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 6u);
}

TEST(Histogram, TailProbability) {
  Histogram h(4);
  for (std::uint64_t v : {0ULL, 1ULL, 2ULL, 3ULL, 10ULL}) h.add(v);
  EXPECT_DOUBLE_EQ(h.tail_probability(1), 3.0 / 5.0);  // {2, 3, 10}
  EXPECT_DOUBLE_EQ(h.tail_probability(3), 1.0 / 5.0);  // {10}
  EXPECT_DOUBLE_EQ(h.tail_probability(0), 4.0 / 5.0);
}

TEST(Trials, BooleanDeterministicAcrossThreadCounts) {
  auto trial = [](util::Rng& rng) { return rng.next_below(10) == 0; };
  util::ThreadPool pool1(1), pool4(4);
  Proportion a = run_boolean_trials(50000, 11, trial, &pool1);
  Proportion b = run_boolean_trials(50000, 11, trial, &pool4);
  EXPECT_EQ(a.successes, b.successes);
  EXPECT_EQ(a.trials, 50000u);
  EXPECT_TRUE(a.contains(0.1));
}

TEST(Trials, NumericAggregates) {
  auto trial = [](util::Rng& rng) { return rng.next_double(); };
  RunningStats s = run_numeric_trials(20000, 5, trial);
  EXPECT_EQ(s.count(), 20000u);
  EXPECT_NEAR(s.mean(), 0.5, 0.02);
  EXPECT_NEAR(s.variance(), 1.0 / 12.0, 0.01);
}

TEST(Trials, HistogramCollects) {
  auto trial = [](util::Rng& rng) { return rng.next_below(4); };
  Histogram h = run_histogram_trials(40000, 3, 4, trial);
  EXPECT_EQ(h.total(), 40000u);
  for (std::size_t b = 0; b < 4; ++b) {
    EXPECT_GT(h.count(b), 9000u);
    EXPECT_LT(h.count(b), 11000u);
  }
  EXPECT_EQ(h.overflow(), 0u);
}

TEST(Trials, DifferentSeedsDiffer) {
  auto trial = [](util::Rng& rng) { return rng.next_below(2) == 0; };
  Proportion a = run_boolean_trials(10000, 1, trial);
  Proportion b = run_boolean_trials(10000, 2, trial);
  EXPECT_NE(a.successes, b.successes);
}

}  // namespace
}  // namespace mpch::stats
