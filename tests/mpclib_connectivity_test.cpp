#include "mpclib/connectivity.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "util/rng.hpp"

namespace mpch::mpclib {
namespace {

mpc::MpcConfig config(std::uint64_t m, std::uint64_t s = 1 << 18) {
  mpc::MpcConfig c;
  c.machines = m;
  c.local_memory_bits = s;
  c.query_budget = 1;
  c.max_rounds = 500;
  c.tape_seed = 11;
  return c;
}

/// Reference union-find for expected components.
std::vector<std::uint64_t> reference_labels(std::uint64_t n, const std::vector<Edge>& edges) {
  std::vector<std::uint64_t> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  std::function<std::uint64_t(std::uint64_t)> find = [&](std::uint64_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  for (const auto& e : edges) {
    std::uint64_t ra = find(e.a), rb = find(e.b);
    if (ra != rb) parent[std::max(ra, rb)] = std::min(ra, rb);
  }
  // Label = min vertex of the component.
  std::vector<std::uint64_t> labels(n);
  for (std::uint64_t v = 0; v < n; ++v) labels[v] = find(v);
  // Normalise: min-id labelling (find with min-merging already gives it).
  return labels;
}

void run_and_check(std::uint64_t machines, std::uint64_t n, const std::vector<Edge>& edges) {
  mpc::MpcSimulation sim(config(machines), nullptr);
  LabelPropagationCC algo(machines, n);
  mpc::MpcRunResult result =
      sim.run(algo, LabelPropagationCC::make_initial_memory(machines, n, edges));
  ASSERT_TRUE(result.completed) << "did not converge";
  EXPECT_EQ(LabelPropagationCC::parse_labels(result.output, n), reference_labels(n, edges));
}

TEST(LabelPropagationCC, SingleComponentPath) {
  run_and_check(3, 6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}});
}

TEST(LabelPropagationCC, TwoComponents) {
  run_and_check(4, 7, {{0, 1}, {1, 2}, {4, 5}, {5, 6}});
}

TEST(LabelPropagationCC, IsolatedVerticesKeepOwnLabel) { run_and_check(2, 5, {}); }

TEST(LabelPropagationCC, StarGraphConvergesFast) {
  std::vector<Edge> star;
  for (std::uint64_t i = 1; i < 20; ++i) star.push_back({0, i});
  mpc::MpcSimulation sim(config(4), nullptr);
  LabelPropagationCC algo(4, 20);
  auto result = sim.run(algo, LabelPropagationCC::make_initial_memory(4, 20, star));
  ASSERT_TRUE(result.completed);
  // One propagation iteration suffices + one no-change iteration: the round
  // count stays far below the path-graph worst case.
  EXPECT_LE(result.rounds_used, 10u);
  EXPECT_EQ(LabelPropagationCC::parse_labels(result.output, 20),
            std::vector<std::uint64_t>(20, 0));
}

TEST(LabelPropagationCC, PathRoundsScaleWithDiameter) {
  // Label diameter for a path rooted at its min id: rounds ~ 3·(length).
  std::vector<Edge> path;
  const std::uint64_t n = 12;
  for (std::uint64_t i = 0; i + 1 < n; ++i) path.push_back({i, i + 1});
  mpc::MpcSimulation sim(config(3), nullptr);
  LabelPropagationCC algo(3, n);
  auto result = sim.run(algo, LabelPropagationCC::make_initial_memory(3, n, path));
  ASSERT_TRUE(result.completed);
  EXPECT_GE(result.rounds_used, n);  // at least one iteration per hop (3 rounds/hop)
}

TEST(LabelPropagationCC, RandomGraphMatchesReference) {
  util::Rng rng(17);
  const std::uint64_t n = 40;
  std::vector<Edge> edges;
  for (int i = 0; i < 50; ++i) {
    edges.push_back({rng.next_below(n), rng.next_below(n)});
  }
  run_and_check(5, n, edges);
}

TEST(LabelPropagationCC, SelfLoopsAreHarmless) {
  run_and_check(2, 4, {{0, 0}, {1, 1}, {2, 3}});
}

TEST(LabelPropagationCC, MoreMachinesThanVertices) {
  run_and_check(8, 3, {{0, 2}});
}

}  // namespace
}  // namespace mpch::mpclib
