// parallel_simulation_test.cpp — the serial-vs-parallel differential suite.
//
// MpcConfig::threads promises bit-identical results at any thread count. This
// suite pins that promise down for every strategy in the tree: each scenario
// builds a fresh (oracle, input, strategy) triple from a seed, runs it at
// threads ∈ {0 (serial baseline), 1, 2, 8}, and compares the *entire*
// observable result — output bits, rounds_used, every per-round RoundStats
// field, every trace annotation sequence, the canonically-sorted transcript
// (including per-machine seq numbers), the oracle's materialised sub-function
// (touched_table) and exact query count. Failure semantics are differential
// too: budget overruns and memory violations must surface as the same
// exception with the same message in both modes.
#include "mpc/simulation.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/line.hpp"
#include "hash/random_oracle.hpp"
#include "mpclib/primitives.hpp"
#include "ram/machine.hpp"
#include "ram/programs.hpp"
#include "strategies/batch_pointer_chasing.hpp"
#include "strategies/colluding.hpp"
#include "strategies/dictionary.hpp"
#include "strategies/full_memory.hpp"
#include "strategies/guess_ahead.hpp"
#include "strategies/pipelined_simline.hpp"
#include "strategies/pointer_chasing.hpp"
#include "strategies/ram_emulation.hpp"
#include "strategies/speculative.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"
#include "util/thread_pool.hpp"

namespace mpch {
namespace {

using util::BitString;

constexpr std::uint64_t kSeeds[] = {11, 22, 33};
constexpr std::uint64_t kThreadCounts[] = {1, 2, 8};

/// Everything observable about one run, flattened for comparison.
struct Artifacts {
  bool completed = false;
  std::uint64_t rounds_used = 0;
  BitString output;
  std::vector<mpc::RoundStats> rounds;
  std::map<std::string, std::vector<std::uint64_t>> annotations;
  std::vector<hash::QueryRecord> records;
  std::vector<std::pair<BitString, BitString>> touched;
  std::uint64_t oracle_total = 0;
  std::uint64_t extra = 0;  ///< strategy-specific counter (e.g. lucky_escapes)
};

Artifacts extract(const mpc::MpcRunResult& result, const hash::LazyRandomOracle* oracle) {
  Artifacts a;
  a.completed = result.completed;
  a.rounds_used = result.rounds_used;
  a.output = result.output;
  a.rounds = result.trace.rounds();
  a.annotations = result.trace.annotations();
  a.records = result.transcript->records();
  if (oracle != nullptr) {
    a.touched = oracle->touched_table();
    a.oracle_total = oracle->total_queries();
  }
  return a;
}

void expect_identical(const Artifacts& serial, const Artifacts& parallel) {
  EXPECT_EQ(serial.completed, parallel.completed);
  EXPECT_EQ(serial.rounds_used, parallel.rounds_used);
  EXPECT_EQ(serial.output, parallel.output);
  EXPECT_EQ(serial.extra, parallel.extra);

  ASSERT_EQ(serial.rounds.size(), parallel.rounds.size());
  for (std::size_t r = 0; r < serial.rounds.size(); ++r) {
    const auto& s = serial.rounds[r];
    const auto& p = parallel.rounds[r];
    EXPECT_EQ(s.round, p.round) << "round " << r;
    EXPECT_EQ(s.messages, p.messages) << "round " << r;
    EXPECT_EQ(s.communicated_bits, p.communicated_bits) << "round " << r;
    EXPECT_EQ(s.oracle_queries, p.oracle_queries) << "round " << r;
    EXPECT_EQ(s.max_inbox_bits, p.max_inbox_bits) << "round " << r;
  }

  EXPECT_EQ(serial.annotations, parallel.annotations);

  ASSERT_EQ(serial.records.size(), parallel.records.size());
  for (std::size_t i = 0; i < serial.records.size(); ++i) {
    const auto& s = serial.records[i];
    const auto& p = parallel.records[i];
    EXPECT_EQ(s.round, p.round) << "record " << i;
    EXPECT_EQ(s.machine, p.machine) << "record " << i;
    EXPECT_EQ(s.seq, p.seq) << "record " << i;
    EXPECT_EQ(s.input, p.input) << "record " << i;
    EXPECT_EQ(s.output, p.output) << "record " << i;
  }

  EXPECT_EQ(serial.oracle_total, parallel.oracle_total);
  ASSERT_EQ(serial.touched.size(), parallel.touched.size());
  for (std::size_t i = 0; i < serial.touched.size(); ++i) {
    EXPECT_EQ(serial.touched[i].first, parallel.touched[i].first) << "entry " << i;
    EXPECT_EQ(serial.touched[i].second, parallel.touched[i].second) << "entry " << i;
  }
}

using Scenario = std::function<Artifacts(std::uint64_t seed, std::uint64_t threads)>;

void run_differential(const Scenario& scenario) {
  for (std::uint64_t seed : kSeeds) {
    Artifacts baseline = scenario(seed, 0);  // the serial reference
    for (std::uint64_t threads : kThreadCounts) {
      SCOPED_TRACE("seed=" + std::to_string(seed) + " threads=" + std::to_string(threads));
      expect_identical(baseline, scenario(seed, threads));
    }
  }
}

mpc::MpcConfig cfg(std::uint64_t m, std::uint64_t s, std::uint64_t q, std::uint64_t threads,
                   std::uint64_t max_rounds = 20000) {
  mpc::MpcConfig c;
  c.machines = m;
  c.local_memory_bits = s;
  c.query_budget = q;
  c.max_rounds = max_rounds;
  c.tape_seed = 5;
  c.threads = threads;
  return c;
}

TEST(ParallelDifferential, PointerChasing) {
  run_differential([](std::uint64_t seed, std::uint64_t threads) {
    core::LineParams p = core::LineParams::make(64, 16, 8, 96);
    auto oracle = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, seed);
    util::Rng rng(seed + 1);
    core::LineInput input = core::LineInput::random(p, rng);
    strategies::PointerChasingStrategy strat(p, strategies::OwnershipPlan::round_robin(p, 4));
    mpc::MpcSimulation sim(cfg(4, strat.required_local_memory(), 1 << 20, threads), oracle);
    auto result = sim.run(strat, strat.make_initial_memory(input));
    EXPECT_TRUE(result.completed);
    return extract(result, oracle.get());
  });
}

TEST(ParallelDifferential, ParallelOutputMatchesRamEvaluation) {
  // Not just serial == parallel: the parallel run also computes the right
  // function (guards against both paths being identically wrong).
  core::LineParams p = core::LineParams::make(64, 16, 8, 96);
  auto ref_oracle = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, 11);
  util::Rng rng(12);
  core::LineInput input = core::LineInput::random(p, rng);
  BitString expected = core::LineFunction(p).evaluate(*ref_oracle, input);

  auto oracle = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, 11);
  strategies::PointerChasingStrategy strat(p, strategies::OwnershipPlan::round_robin(p, 4));
  mpc::MpcSimulation sim(cfg(4, strat.required_local_memory(), 1 << 20, 8), oracle);
  auto result = sim.run(strat, strat.make_initial_memory(input));
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.output, expected);
}

TEST(ParallelDifferential, BatchPointerChasing) {
  run_differential([](std::uint64_t seed, std::uint64_t threads) {
    core::LineParams p = core::LineParams::make(64, 16, 8, 128);
    auto oracle = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, seed);
    const std::uint64_t k = 4, m = 4;
    std::vector<core::LineInput> inputs;
    for (std::uint64_t i = 0; i < k; ++i) {
      util::Rng rng(seed * 100 + i);
      inputs.push_back(core::LineInput::random(p, rng));
    }
    strategies::BatchPointerChasingStrategy strat(
        p, strategies::OwnershipPlan::round_robin(p, m), k);
    mpc::MpcSimulation sim(cfg(m, strat.required_local_memory(), 1 << 20, threads), oracle);
    auto result = sim.run(strat, strat.make_initial_memory(inputs));
    EXPECT_TRUE(result.completed);
    return extract(result, oracle.get());
  });
}

TEST(ParallelDifferential, SpeculativeEnumeration) {
  // u = 4 with exhaustive enumeration: every stall escapes by guessing, so
  // the run exercises the tape-indexed guessing path and the lucky_escapes
  // counter under concurrency.
  run_differential([](std::uint64_t seed, std::uint64_t threads) {
    core::LineParams p = core::LineParams::make(3 * 4 + 16, 4, 8, 64);
    auto oracle = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, seed);
    util::Rng rng(seed * 3 + 7);
    core::LineInput input = core::LineInput::random(p, rng);
    strategies::SpeculativeStrategy strat(p, strategies::OwnershipPlan::round_robin(p, 4),
                                          {16, true}, input);
    mpc::MpcSimulation sim(cfg(4, strat.required_local_memory(), 1 << 20, threads), oracle);
    auto result = sim.run(strat, strat.make_initial_memory(input));
    EXPECT_TRUE(result.completed);
    Artifacts a = extract(result, oracle.get());
    a.extra = strat.lucky_escapes();
    return a;
  });
}

TEST(ParallelDifferential, PipelinedSimLine) {
  run_differential([](std::uint64_t seed, std::uint64_t threads) {
    core::LineParams p = core::LineParams::make(64, 16, 16, 256);
    auto oracle = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, seed);
    util::Rng rng(seed + 2);
    core::LineInput input = core::LineInput::random(p, rng);
    strategies::PipelinedSimLineStrategy strat(p, strategies::OwnershipPlan::windows(p, 4, 4));
    mpc::MpcSimulation sim(cfg(4, strat.required_local_memory(), 1 << 20, threads), oracle);
    auto result = sim.run(strat, strat.make_initial_memory(input));
    EXPECT_TRUE(result.completed);
    return extract(result, oracle.get());
  });
}

TEST(ParallelDifferential, ColludingBroadcast) {
  // The broadcast ablation is the sharpest concurrency test: *every* machine
  // owning the needed block advances in parallel, issuing duplicate oracle
  // queries from multiple threads in the same round.
  run_differential([](std::uint64_t seed, std::uint64_t threads) {
    core::LineParams p = core::LineParams::make(64, 16, 8, 96);
    auto oracle = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, seed);
    util::Rng rng(seed + 3);
    core::LineInput input = core::LineInput::random(p, rng);
    strategies::ColludingStrategy strat(p, strategies::OwnershipPlan::round_robin(p, 4));
    mpc::MpcSimulation sim(cfg(4, strat.required_local_memory(), 1 << 20, threads), oracle);
    auto result = sim.run(strat, strat.make_initial_memory(input));
    EXPECT_TRUE(result.completed);
    return extract(result, oracle.get());
  });
}

TEST(ParallelDifferential, Dictionary) {
  run_differential([](std::uint64_t seed, std::uint64_t threads) {
    core::LineParams p = core::LineParams::make(64, 16, 32, 128);
    auto oracle = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, seed);
    util::Rng rng(seed + 4);
    core::LineInput input = strategies::make_low_entropy_input(p, 2, rng);
    strategies::DictionaryStrategy strat(p, 4);
    mpc::MpcSimulation sim(cfg(4, strat.gathered_bits(2), p.w + 1, threads, 10), oracle);
    auto result = sim.run(strat, strat.make_initial_memory(input));
    EXPECT_TRUE(result.completed);
    return extract(result, oracle.get());
  });
}

TEST(ParallelDifferential, FullMemory) {
  run_differential([](std::uint64_t seed, std::uint64_t threads) {
    core::LineParams p = core::LineParams::make(64, 16, 8, 256);
    auto oracle = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, seed);
    util::Rng rng(seed + 5);
    core::LineInput input = core::LineInput::random(p, rng);
    strategies::FullMemoryStrategy strat(p, strategies::OwnershipPlan::round_robin(p, 4));
    mpc::MpcSimulation sim(cfg(4, strat.required_local_memory(), p.w + 1, threads, 10), oracle);
    auto result = sim.run(strat, strat.make_initial_memory(input));
    EXPECT_TRUE(result.completed);
    return extract(result, oracle.get());
  });
}

TEST(ParallelDifferential, RamEmulation) {
  // Plain model (no oracle): the CPU/server message choreography must still
  // merge identically. Memory contents vary with the seed.
  run_differential([](std::uint64_t seed, std::uint64_t threads) {
    const std::uint64_t n = 8;
    std::vector<std::uint64_t> memory(n);
    for (std::uint64_t i = 0; i < n; ++i) memory[i] = (seed * 7 + i * 3) % 97;
    std::vector<ram::Instruction> prog = ram::programs::sum(n);
    strategies::RamEmulationStrategy strat(prog, 4, 1);
    mpc::MpcConfig c = cfg(4, strat.required_local_memory(memory.size()), 1, threads, 1 << 20);
    mpc::MpcSimulation sim(c, nullptr);
    auto result = sim.run(strat, strat.make_initial_memory(memory));
    EXPECT_TRUE(result.completed);
    return extract(result, nullptr);
  });
}

TEST(ParallelDifferential, MpclibBroadcast) {
  // Plain-model substrate algorithm at a machine count well above the thread
  // cap, so chunks carry several machines each.
  run_differential([](std::uint64_t seed, std::uint64_t threads) {
    const std::uint64_t m = 16;
    mpclib::BroadcastAlgorithm algo(m, 2);
    mpc::MpcConfig c = cfg(m, 1 << 16, 1, threads, 200);
    c.tape_seed = seed;
    mpc::MpcSimulation sim(c, nullptr);
    auto result = sim.run(algo, {BitString::from_uint(0xBEEF ^ seed, 16)});
    EXPECT_TRUE(result.completed);
    return extract(result, nullptr);
  });
}

TEST(ParallelDifferential, GuessAheadTrialsAreSeedDeterministic) {
  // guess_ahead is a Monte-Carlo harness, not an MpcAlgorithm; its
  // differential property is seed-determinism of the trial loop.
  strategies::GuessAheadConfig c;
  c.params = core::LineParams::make(3 * 4 + 16, 4, 8, 16);
  c.guesses_per_trial = 4;
  for (std::uint64_t seed : kSeeds) {
    auto a = strategies::run_guess_ahead_trials(c, seed, 300);
    auto b = strategies::run_guess_ahead_trials(c, seed, 300);
    EXPECT_EQ(a.hits, b.hits) << seed;
    EXPECT_EQ(a.trials, b.trials) << seed;
  }
}

TEST(ParallelDifferential, BlockSetDecodeIsPureUnderConcurrency) {
  // block_store has no strategy object of its own, but every strategy decodes
  // BlockSets concurrently; decode of one payload from many threads must
  // agree with a serial decode.
  core::LineParams p = core::LineParams::make(64, 16, 8, 96);
  strategies::BlockSet set(p);
  util::Rng rng(9);
  for (std::uint64_t b = 1; b <= p.v; ++b) {
    set.add(b, BitString::random(p.u, [&] { return rng.next_u64(); }));
  }
  BitString payload = set.encode();
  BitString serial = strategies::BlockSet::decode(p, payload).encode();

  util::ThreadPool pool(8);
  std::vector<BitString> results(32);
  pool.parallel_chunks(results.size(), [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      results[i] = strategies::BlockSet::decode(p, payload).encode();
    }
  });
  for (const auto& r : results) EXPECT_EQ(r, serial);
}

/// Machines 1 and 3 both blow their budget in round 0; the lowest-index
/// failure must win in both modes, with an identical message.
class DoubleOverrunAlgorithm final : public mpc::MpcAlgorithm {
 public:
  void run_machine(mpc::MachineIo& io, hash::CountingOracle* oracle, const mpc::SharedTape&,
                   mpc::RoundTrace&) override {
    if (io.machine == 1 || io.machine == 3) {
      for (int i = 0; i < 100; ++i) {
        oracle->query(BitString::from_uint(static_cast<std::uint64_t>(i) * 4 + io.machine, 16));
      }
    }
    io.output = BitString(1);
  }
  std::string name() const override { return "double-overrun"; }
};

TEST(ParallelDifferential, BudgetOverrunThrowsDeterministically) {
  std::string serial_what;
  for (std::uint64_t threads : {std::uint64_t{0}, std::uint64_t{2}, std::uint64_t{8}}) {
    auto oracle = std::make_shared<hash::LazyRandomOracle>(16, 16, 5);
    mpc::MpcSimulation sim(cfg(4, 128, 10, threads), oracle);
    DoubleOverrunAlgorithm algo;
    std::string what;
    try {
      sim.run(algo, {BitString(1)});
      FAIL() << "expected QueryBudgetExceeded at threads=" << threads;
    } catch (const hash::QueryBudgetExceeded& e) {
      what = e.what();
    }
    EXPECT_NE(what.find("machine 1"), std::string::npos) << what;
    if (threads == 0) {
      serial_what = what;
    } else {
      EXPECT_EQ(what, serial_what) << "threads=" << threads;
    }
  }
}

TEST(ParallelDifferential, MemoryViolationThrowsInParallelToo) {
  class Flood final : public mpc::MpcAlgorithm {
   public:
    void run_machine(mpc::MachineIo& io, hash::CountingOracle*, const mpc::SharedTape&,
                     mpc::RoundTrace&) override {
      if (io.round == 0) io.send(0, BitString(40));  // 4 x 40 > s = 64
    }
    std::string name() const override { return "flood"; }
  } algo;
  for (std::uint64_t threads : {std::uint64_t{0}, std::uint64_t{8}}) {
    mpc::MpcSimulation sim(cfg(4, 64, 1, threads), nullptr);
    EXPECT_THROW(sim.run(algo, {BitString(1)}), mpc::MemoryViolation) << threads;
  }
}

TEST(ParallelDifferential, ThreadCountAboveMachinesIsSafe) {
  // threads > m: the pool is clamped to m workers; results unchanged.
  core::LineParams p = core::LineParams::make(64, 16, 8, 64);
  auto o1 = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, 3);
  auto o2 = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, 3);
  util::Rng rng(4);
  core::LineInput input = core::LineInput::random(p, rng);
  strategies::PointerChasingStrategy s1(p, strategies::OwnershipPlan::round_robin(p, 2));
  strategies::PointerChasingStrategy s2(p, strategies::OwnershipPlan::round_robin(p, 2));
  mpc::MpcSimulation serial(cfg(2, s1.required_local_memory(), 1 << 20, 0), o1);
  mpc::MpcSimulation parallel(cfg(2, s2.required_local_memory(), 1 << 20, 64), o2);
  auto r1 = serial.run(s1, s1.make_initial_memory(input));
  auto r2 = parallel.run(s2, s2.make_initial_memory(input));
  ASSERT_TRUE(r1.completed);
  ASSERT_TRUE(r2.completed);
  EXPECT_EQ(r1.output, r2.output);
  EXPECT_EQ(r1.rounds_used, r2.rounds_used);
}

}  // namespace
}  // namespace mpch
