#include "mpclib/matching.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace mpch::mpclib {
namespace {

mpc::MpcConfig config(std::uint64_t m) {
  mpc::MpcConfig c;
  c.machines = m;
  c.local_memory_bits = 1 << 20;
  c.query_budget = 1;
  c.max_rounds = 4000;
  c.tape_seed = 41;
  return c;
}

std::vector<Edge> run_matching(std::uint64_t machines, std::uint64_t n,
                               const std::vector<Edge>& edges,
                               std::uint64_t* rounds = nullptr) {
  mpc::MpcSimulation sim(config(machines), nullptr);
  MaximalMatchingAlgorithm algo(machines, n);
  auto result =
      sim.run(algo, MaximalMatchingAlgorithm::make_initial_memory(machines, n, edges));
  EXPECT_TRUE(result.completed);
  if (rounds != nullptr) *rounds = result.rounds_used;
  return MaximalMatchingAlgorithm::parse_matching(result.output);
}

TEST(MaximalMatching, EmptyGraph) {
  auto matching = run_matching(3, 5, {});
  EXPECT_TRUE(matching.empty());
  EXPECT_TRUE(MaximalMatchingAlgorithm::verify_matching(matching, 5, {}));
}

TEST(MaximalMatching, SingleEdge) {
  std::vector<Edge> edges = {{0, 1}};
  auto matching = run_matching(2, 2, edges);
  ASSERT_EQ(matching.size(), 1u);
  EXPECT_TRUE(MaximalMatchingAlgorithm::verify_matching(matching, 2, edges));
}

TEST(MaximalMatching, TriangleMatchesOneEdge) {
  std::vector<Edge> tri = {{0, 1}, {1, 2}, {0, 2}};
  auto matching = run_matching(2, 3, tri);
  EXPECT_EQ(matching.size(), 1u);
  EXPECT_TRUE(MaximalMatchingAlgorithm::verify_matching(matching, 3, tri));
}

TEST(MaximalMatching, PerfectMatchingOnDisjointEdges) {
  std::vector<Edge> edges = {{0, 1}, {2, 3}, {4, 5}, {6, 7}};
  auto matching = run_matching(3, 8, edges);
  EXPECT_EQ(matching.size(), 4u);
  EXPECT_TRUE(MaximalMatchingAlgorithm::verify_matching(matching, 8, edges));
}

TEST(MaximalMatching, PathGraph) {
  std::vector<Edge> path;
  const std::uint64_t n = 17;
  for (std::uint64_t i = 0; i + 1 < n; ++i) path.push_back({i, i + 1});
  auto matching = run_matching(4, n, path);
  EXPECT_TRUE(MaximalMatchingAlgorithm::verify_matching(matching, n, path));
  // A maximal matching on a 16-edge path has >= 6 edges (>= m/ (2*2 - 1)).
  EXPECT_GE(matching.size(), 6u);
}

TEST(MaximalMatching, RandomGraphsValidAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    util::Rng rng(seed);
    const std::uint64_t n = 40;
    std::vector<Edge> edges;
    for (int i = 0; i < 100; ++i) edges.push_back({rng.next_below(n), rng.next_below(n)});
    auto matching = run_matching(5, n, edges);
    EXPECT_TRUE(MaximalMatchingAlgorithm::verify_matching(matching, n, edges)) << seed;
  }
}

TEST(MaximalMatching, SelfLoopsAndDuplicatesHandled) {
  std::vector<Edge> edges = {{0, 0}, {1, 2}, {1, 2}, {2, 1}};
  auto matching = run_matching(3, 3, edges);
  EXPECT_EQ(matching.size(), 1u);
  EXPECT_TRUE(MaximalMatchingAlgorithm::verify_matching(matching, 3, edges));
}

TEST(MaximalMatching, PhasesLogarithmic) {
  util::Rng rng(7);
  const std::uint64_t n = 64;
  std::vector<Edge> edges;
  for (int i = 0; i < 300; ++i) edges.push_back({rng.next_below(n), rng.next_below(n)});
  std::uint64_t rounds = 0;
  auto matching = run_matching(8, n, edges, &rounds);
  EXPECT_TRUE(MaximalMatchingAlgorithm::verify_matching(matching, n, edges));
  EXPECT_LT(rounds, 4 * 16);  // ~log phases of 4 rounds
}

TEST(MaximalMatching, VerifierRejectsBadMatchings) {
  std::vector<Edge> edges = {{0, 1}, {1, 2}};
  EXPECT_FALSE(MaximalMatchingAlgorithm::verify_matching({{0, 1}, {1, 2}}, 3, edges));
  EXPECT_FALSE(MaximalMatchingAlgorithm::verify_matching({}, 3, edges));
  EXPECT_TRUE(MaximalMatchingAlgorithm::verify_matching({{0, 1}}, 3, edges));
}

}  // namespace
}  // namespace mpch::mpclib
