#include "util/math.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mpch::util {
namespace {

TEST(CeilLog2, SmallValues) {
  EXPECT_EQ(ceil_log2(1), 1u);  // library convention: 1 bit even for [1]
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(4), 2u);
  EXPECT_EQ(ceil_log2(5), 3u);
  EXPECT_EQ(ceil_log2(8), 3u);
  EXPECT_EQ(ceil_log2(9), 4u);
  EXPECT_EQ(ceil_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1025), 11u);
}

TEST(CeilLog2, RejectsZero) { EXPECT_THROW(ceil_log2(0), std::invalid_argument); }

TEST(FloorLog2, Values) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(4), 2u);
  EXPECT_EQ(floor_log2(1023), 9u);
  EXPECT_EQ(floor_log2(1024), 10u);
}

TEST(CeilDiv, Values) {
  EXPECT_EQ(ceil_div(10, 5), 2u);
  EXPECT_EQ(ceil_div(11, 5), 3u);
  EXPECT_EQ(ceil_div(0, 5), 0u);
  EXPECT_EQ(ceil_div(1, 1), 1u);
  EXPECT_THROW(ceil_div(1, 0), std::invalid_argument);
}

TEST(IsPow2, Values) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ULL << 40));
  EXPECT_FALSE(is_pow2((1ULL << 40) + 1));
}

TEST(Log2Add, AgreesWithDirectComputation) {
  // 2^-3 + 2^-3 = 2^-2.
  EXPECT_NEAR(static_cast<double>(log2_add(-3.0L, -3.0L)), -2.0, 1e-12);
  // 2^0 + 2^-10 ~ slightly above 0.
  EXPECT_NEAR(static_cast<double>(log2_add(0.0L, -10.0L)),
              std::log2(1.0 + std::exp2(-10.0)), 1e-12);
}

TEST(Log2Add, HandlesVastlyDifferentMagnitudes) {
  // Adding 2^-10000 to 2^-5 must not change it measurably or produce NaN.
  long double r = log2_add(-5.0L, -10000.0L);
  EXPECT_NEAR(static_cast<double>(r), -5.0, 1e-9);
}

TEST(Log2Add, NegativeInfinityIsIdentity) {
  long double ninf = -std::numeric_limits<long double>::infinity();
  EXPECT_EQ(static_cast<double>(log2_add(ninf, -7.0L)), -7.0);
  EXPECT_EQ(static_cast<double>(log2_add(-7.0L, ninf)), -7.0);
}

TEST(ClampLog2Prob, Clamps) {
  EXPECT_EQ(static_cast<double>(clamp_log2_prob(3.5L)), 0.0);
  EXPECT_EQ(static_cast<double>(clamp_log2_prob(-3.5L)), -3.5);
}

TEST(PowSat, SaturatesAtCap) {
  EXPECT_EQ(pow_sat(2, 10, 1ULL << 20), 1024u);
  EXPECT_EQ(pow_sat(2, 30, 1ULL << 20), 1ULL << 20);
  EXPECT_EQ(pow_sat(10, 0, 100), 1u);
  EXPECT_EQ(pow_sat(1, 1000, 100), 1u);
}

}  // namespace
}  // namespace mpch::util
