// Abstract-interpretation pass: termination proofs, step bounds, memory
// footprints, and the precision properties the envelope inference depends on
// (tight load ranges, dead-branch pruning, contents-bounded pointer chasing).
#include "verify/abstract_interpreter.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "ram/machine.hpp"
#include "ram/programs.hpp"

namespace mpch::verify {
namespace {

using namespace ram::asm_ops;

bool has_finding(const ProgramFacts& facts, FindingKind kind) {
  return std::any_of(facts.findings.begin(), facts.findings.end(),
                     [kind](const Finding& f) { return f.kind == kind; });
}

std::vector<std::uint64_t> iota_memory(std::size_t n) {
  std::vector<std::uint64_t> memory(n);
  for (std::size_t i = 0; i < n; ++i) memory[i] = i + 1;
  return memory;
}

TEST(VerifyAbstract, SumBoundIsSoundAndTight) {
  const auto memory = iota_memory(8);
  const auto prog = ram::programs::sum(memory.size());
  const ProgramFacts facts = analyze_program(prog, MemoryModel::from_words(memory));

  ASSERT_TRUE(facts.terminates) << facts.summary();

  ram::RamMachine native(prog, memory);
  native.run();
  ASSERT_TRUE(native.state().halted);
  // Sound: the static bound covers the concrete run. Tight: within a small
  // constant of it (the proof over-counts at most one guard pass per loop).
  EXPECT_GE(facts.max_steps, native.steps_executed());
  EXPECT_LE(facts.max_steps, native.steps_executed() + 16);

  EXPECT_TRUE(facts.has_loads);
  EXPECT_FALSE(facts.has_stores);
  EXPECT_EQ(facts.load_addrs, (Interval{0, 7}));
  EXPECT_GE(facts.max_loads, 8u);
  EXPECT_LE(facts.max_loads, 9u);
  EXPECT_EQ(facts.touched_words, 8u);

  ASSERT_EQ(facts.loops.size(), 1u);
  EXPECT_TRUE(facts.loops[0].bounded);
  EXPECT_EQ(facts.loops[0].max_trips, 8u);
}

TEST(VerifyAbstract, ReverseIsBoundedWithStoresInRange) {
  const std::vector<std::uint64_t> memory{1, 2, 3, 4, 5, 6};
  const auto prog = ram::programs::reverse(memory.size());
  const ProgramFacts facts = analyze_program(prog, MemoryModel::from_words(memory));

  ASSERT_TRUE(facts.terminates) << facts.summary();
  EXPECT_TRUE(facts.has_stores);
  EXPECT_LE(facts.store_addrs.hi, 5u);
  EXPECT_EQ(facts.touched_words, 6u);

  ram::RamMachine native(prog, memory);
  native.run();
  EXPECT_GE(facts.max_steps, native.steps_executed());
}

TEST(VerifyAbstract, PointerChaseBoundedByMemoryContents) {
  // Ring of 16: contents in [0, 15], so every data-dependent load address is
  // bounded by the *memory model*, not the program text.
  std::vector<std::uint64_t> memory(16);
  for (std::size_t i = 0; i < memory.size(); ++i) memory[i] = (i + 1) % memory.size();
  const auto prog = ram::programs::pointer_chase(8);
  const ProgramFacts facts = analyze_program(prog, MemoryModel::from_words(memory));

  ASSERT_TRUE(facts.terminates) << facts.summary();
  EXPECT_TRUE(facts.has_loads);
  EXPECT_LE(facts.load_addrs.hi, 15u);
  EXPECT_EQ(facts.touched_words, 16u);
  EXPECT_FALSE(has_finding(facts, FindingKind::kOobLoad));
}

TEST(VerifyAbstract, PointerChaseWithUnboundedContentsWarnsOob) {
  // Same program, but the model admits arbitrary word values: the cursor can
  // escape the mapped image and the analyzer must say so.
  MemoryModel model;
  model.words = 16;
  model.values = Interval::all();
  const ProgramFacts facts = analyze_program(ram::programs::pointer_chase(8), model);
  EXPECT_TRUE(has_finding(facts, FindingKind::kOobLoad));
}

TEST(VerifyAbstract, InfiniteLoopHasNoTerminationProof) {
  const ProgramFacts facts = analyze_program({jmp(0)}, MemoryModel{});
  EXPECT_FALSE(facts.terminates);
  EXPECT_TRUE(has_finding(facts, FindingKind::kUnboundedLoop));
}

TEST(VerifyAbstract, FibonacciTouchesNoMemory) {
  const ProgramFacts facts = analyze_program(ram::programs::fibonacci(10), MemoryModel{});
  ASSERT_TRUE(facts.terminates) << facts.summary();
  EXPECT_FALSE(facts.has_loads);
  EXPECT_FALSE(facts.has_stores);
  EXPECT_EQ(facts.touched_words, 0u);
  ASSERT_EQ(facts.loops.size(), 1u);
  EXPECT_EQ(facts.loops[0].max_trips, 10u);
}

TEST(VerifyAbstract, StoresExtendTheFootprintPastTheImage) {
  // fill(8) writes mem[0..7] even though the model only maps 4 words: the
  // footprint must come from the store range, not the image size.
  const std::vector<std::uint64_t> memory(4, 0);
  const ProgramFacts facts =
      analyze_program(ram::programs::fill(8, 100), MemoryModel::from_words(memory));
  ASSERT_TRUE(facts.terminates) << facts.summary();
  EXPECT_TRUE(facts.has_stores);
  EXPECT_EQ(facts.store_addrs, (Interval{0, 7}));
  EXPECT_EQ(facts.touched_words, 8u);
}

TEST(VerifyAbstract, ConstantBranchPrunesTheDeadArm) {
  // R0 is the constant 0, so jz always jumps: the skipped loadi must not
  // count toward the step bound (the interpreter prunes the infeasible edge).
  const ProgramFacts facts =
      analyze_program({loadi(0, 0), jz(0, 3), loadi(1, 1), halt()}, MemoryModel{});
  ASSERT_TRUE(facts.terminates);
  EXPECT_EQ(facts.max_steps, 3u);
}

TEST(VerifyAbstract, SummaryMentionsTheStepBound) {
  const ProgramFacts facts =
      analyze_program(ram::programs::sum(8), MemoryModel::from_words(iota_memory(8)));
  const std::string s = facts.summary();
  EXPECT_NE(s.find("steps"), std::string::npos) << s;
}

}  // namespace
}  // namespace mpch::verify
