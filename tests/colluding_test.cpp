#include "strategies/colluding.hpp"

#include <gtest/gtest.h>

#include "core/line.hpp"
#include "hash/random_oracle.hpp"
#include "strategies/pointer_chasing.hpp"
#include "util/rng.hpp"

namespace mpch::strategies {
namespace {

core::LineParams params(std::uint64_t w = 256) {
  return core::LineParams::make(64, 16, 8, w);
}

TEST(Colluding, ComputesTheCorrectOutput) {
  core::LineParams p = params();
  auto oracle = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, 1);
  util::Rng rng(2);
  core::LineInput input = core::LineInput::random(p, rng);
  util::BitString expected = core::LineFunction(p).evaluate(*oracle, input);

  const std::uint64_t m = 4;
  ColludingStrategy strat(p, OwnershipPlan::round_robin(p, m));
  mpc::MpcConfig c;
  c.machines = m;
  c.local_memory_bits = strat.required_local_memory();
  c.query_budget = 1 << 20;
  c.max_rounds = 100000;
  mpc::MpcSimulation sim(c, oracle);
  auto result = sim.run(strat, strat.make_initial_memory(input));
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.output, expected);
}

TEST(Colluding, RoundCountMatchesUnicastHandoff) {
  // The communication pattern is irrelevant to the round count: broadcast
  // collusion and unicast hand-off advance the frontier identically.
  core::LineParams p = params(512);
  const std::uint64_t m = 4;
  auto oracle1 = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, 5);
  auto oracle2 = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, 5);
  util::Rng rng(6);
  core::LineInput input = core::LineInput::random(p, rng);

  ColludingStrategy collude(p, OwnershipPlan::round_robin(p, m));
  PointerChasingStrategy unicast(p, OwnershipPlan::round_robin(p, m));

  mpc::MpcConfig c1;
  c1.machines = m;
  c1.local_memory_bits = collude.required_local_memory();
  c1.query_budget = 1 << 20;
  c1.max_rounds = 100000;
  mpc::MpcSimulation sim1(c1, oracle1);
  auto r1 = sim1.run(collude, collude.make_initial_memory(input));

  mpc::MpcConfig c2 = c1;
  c2.local_memory_bits = unicast.required_local_memory();
  mpc::MpcSimulation sim2(c2, oracle2);
  auto r2 = sim2.run(unicast, unicast.make_initial_memory(input));

  ASSERT_TRUE(r1.completed);
  ASSERT_TRUE(r2.completed);
  EXPECT_EQ(r1.output, r2.output);
  EXPECT_EQ(r1.rounds_used, r2.rounds_used);
  // ...but the colluders pay ~m-fold communication for it.
  EXPECT_GT(r1.trace.total_communicated_bits(), r2.trace.total_communicated_bits());
}

TEST(Colluding, ReplicationHelpsExactlyAsMuchAsForUnicast) {
  core::LineParams p = params(512);
  const std::uint64_t m = 4;
  auto oracle = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, 9);
  util::Rng rng(10);
  core::LineInput input = core::LineInput::random(p, rng);

  ColludingStrategy repl(p, OwnershipPlan::replicated(p, m, 4));  // f = 1/2
  mpc::MpcConfig c;
  c.machines = m;
  c.local_memory_bits = repl.required_local_memory();
  c.query_budget = 1 << 20;
  c.max_rounds = 100000;
  mpc::MpcSimulation sim(c, oracle);
  auto result = sim.run(repl, repl.make_initial_memory(input));
  ASSERT_TRUE(result.completed);
  // f = 1/2 => ~w/2 rounds, within noise.
  EXPECT_GT(result.rounds_used, 150u);
  EXPECT_LT(result.rounds_used, 350u);
}

}  // namespace
}  // namespace mpch::strategies
