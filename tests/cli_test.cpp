#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace mpch::util {
namespace {

CliArgs make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return CliArgs(static_cast<int>(argv.size()), argv.data());
}

TEST(CliArgs, EqualsForm) {
  CliArgs args = make({"--w=128", "--name=test"});
  EXPECT_EQ(args.get_u64("w", 0), 128u);
  EXPECT_EQ(args.get_string("name", ""), "test");
}

TEST(CliArgs, SpaceForm) {
  CliArgs args = make({"--w", "64"});
  EXPECT_EQ(args.get_u64("w", 0), 64u);
}

TEST(CliArgs, BooleanFlag) {
  CliArgs args = make({"--csv"});
  EXPECT_TRUE(args.get_bool("csv", false));
  EXPECT_FALSE(args.get_bool("other", false));
}

TEST(CliArgs, FallbacksUsed) {
  CliArgs args = make({});
  EXPECT_EQ(args.get_u64("missing", 7), 7u);
  EXPECT_EQ(args.get_double("missing", 2.5), 2.5);
  EXPECT_EQ(args.get_string("missing", "dflt"), "dflt");
}

TEST(CliArgs, PositionalCollected) {
  CliArgs args = make({"file1", "--flag", "file2"});
  // "file2" follows a flag without '=', so it binds as its value.
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "file1");
  EXPECT_EQ(args.get_string("flag", ""), "file2");
}

TEST(CliArgs, UnusedDetectsTypos) {
  CliArgs args = make({"--used=1", "--typo=2"});
  args.get_u64("used", 0);
  auto unused = args.unused();
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "typo");
}

TEST(CliArgs, DoubleParsing) {
  CliArgs args = make({"--frac=0.75"});
  EXPECT_DOUBLE_EQ(args.get_double("frac", 0), 0.75);
}

TEST(CliArgs, BoolVariants) {
  CliArgs args = make({"--a=true", "--b=1", "--c=yes", "--d=no"});
  EXPECT_TRUE(args.get_bool("a", false));
  EXPECT_TRUE(args.get_bool("b", false));
  EXPECT_TRUE(args.get_bool("c", false));
  EXPECT_FALSE(args.get_bool("d", true));
}

TEST(CliArgs, RejectsBareDashes) {
  std::vector<const char*> argv{"prog", "--"};
  EXPECT_THROW(CliArgs(2, argv.data()), std::invalid_argument);
}

}  // namespace
}  // namespace mpch::util
