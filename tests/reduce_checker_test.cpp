// Tests for the reduction checker (reduce/checker.hpp) and the built-in
// catalog (reduce/catalog.hpp): every shipped reduction must hold statically
// AND dynamically (observed peaks inside the transformed envelope), every
// deliberately-broken claim must be refuted with its expected diagnostic
// kind, the theory round floor must bite, and resolution errors must carry
// the reduction's provenance.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>

#include "analysis/static_checker.hpp"
#include "reduce/catalog.hpp"
#include "reduce/checker.hpp"
#include "util/json.hpp"

namespace {

using mpch::analysis::ProtocolSpec;
using mpch::analysis::ViolationKind;
using mpch::reduce::BrokenEntry;
using mpch::reduce::build_builtin_catalog;
using mpch::reduce::BuiltinCatalog;
using mpch::reduce::CatalogEntry;
using mpch::reduce::check_reduction;
using mpch::reduce::cross_check_reduction;
using mpch::reduce::Reduction;
using mpch::reduce::ReductionReport;
using mpch::reduce::SpecCatalog;
using mpch::reduce::Term;

TEST(ReduceChecker, EveryBuiltinReductionHoldsStatically) {
  const BuiltinCatalog lib = build_builtin_catalog(1);
  EXPECT_GE(lib.entries.size(), 12u);
  for (const CatalogEntry& entry : lib.entries) {
    SCOPED_TRACE(entry.reduction.name);
    const ReductionReport report =
        check_reduction(entry.reduction, lib.specs, entry.floor_rounds);
    EXPECT_TRUE(report.ok()) << report.format();
    EXPECT_FALSE(report.transformed.saturated);
  }
}

TEST(ReduceChecker, EveryBuiltinReductionHoldsDynamically) {
  // The cross-check leg of `mpch-reduce --catalog --cross-check`, pinned in
  // gtest: run each entry's target strategy instrumented and require the
  // observed RoundStats peaks to stay inside T(source).
  const BuiltinCatalog lib = build_builtin_catalog(1);
  for (const CatalogEntry& entry : lib.entries) {
    SCOPED_TRACE(entry.reduction.name);
    ASSERT_TRUE(static_cast<bool>(entry.run_target));
    const ReductionReport report =
        check_reduction(entry.reduction, lib.specs, entry.floor_rounds);
    ASSERT_TRUE(report.ok()) << report.format();
    mpch::mpc::MpcConfig config;
    const mpch::mpc::MpcRunResult result = entry.run_target(&config);
    EXPECT_TRUE(result.completed);
    const mpch::analysis::AnalysisReport cross = cross_check_reduction(report, result, config);
    EXPECT_TRUE(cross.ok()) << cross.format();
  }
}

TEST(ReduceChecker, BrokenClaimsAreRefutedWithDistinctKinds) {
  const BuiltinCatalog lib = build_builtin_catalog(1);
  ASSERT_GE(lib.broken.size(), 3u);
  std::set<ViolationKind> leading_kinds;
  for (const BrokenEntry& broken : lib.broken) {
    SCOPED_TRACE(broken.reduction.name);
    const ReductionReport report = check_reduction(broken.reduction, lib.specs);
    EXPECT_FALSE(report.ok()) << "broken claim survived: " << report.format();
    ASSERT_FALSE(report.dominance.violations.empty());
    EXPECT_EQ(report.dominance.violations.front().kind, broken.expected)
        << report.dominance.violations.front().to_string();
    leading_kinds.insert(report.dominance.violations.front().kind);
  }
  // Each broken claim fails for its own distinct reason — the self-check
  // matrix proves the checker can tell the failure modes apart.
  EXPECT_EQ(leading_kinds.size(), lib.broken.size());
}

TEST(ReduceChecker, TheoryFloorRejectsTooFastTargets) {
  // A claimed reduction into a 2-round protocol cannot preserve a 3-round
  // hardness floor, even when every envelope field fits.
  SpecCatalog specs;
  ProtocolSpec src;
  src.protocol = "src";
  src.machines = 4;
  src.max_rounds = 96;
  src.steady.memory_bits = 100;
  ProtocolSpec dst = src;
  dst.protocol = "dst";
  dst.max_rounds = 2;
  specs.add("src", src);
  specs.add("dst", dst);
  Reduction r;
  r.name = "too-fast";
  r.source = "src";
  r.target = "dst";
  r.term = Term::identity();
  const ReductionReport report = check_reduction(r, specs, /*floor_rounds=*/3);
  EXPECT_FALSE(report.ok());
  EXPECT_FALSE(report.floor_ok);
  ASSERT_FALSE(report.dominance.violations.empty());
  EXPECT_EQ(report.dominance.violations.back().kind, ViolationKind::kRoundCount);
  EXPECT_NE(report.dominance.violations.back().message.find("incompressibility"),
            std::string::npos);
  // The same claim with a floor the target meets is fine.
  EXPECT_TRUE(check_reduction(r, specs, /*floor_rounds=*/2).ok());
}

TEST(ReduceChecker, UnknownSpecNamesCarryReductionProvenance) {
  const BuiltinCatalog lib = build_builtin_catalog(1);
  Reduction r;
  r.name = "dangling";
  r.source = "pointer-chasing";
  r.target = "no-such-spec";
  r.term = Term::identity();
  r.source_line = 17;
  try {
    (void)check_reduction(r, lib.specs);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("dangling"), std::string::npos) << what;
    EXPECT_NE(what.find("line 17"), std::string::npos) << what;
    EXPECT_NE(what.find("no-such-spec"), std::string::npos) << what;
  }
}

TEST(ReduceChecker, ReportFormatsAndSerializes) {
  const BuiltinCatalog lib = build_builtin_catalog(1);
  const CatalogEntry& entry = lib.entries.front();
  const ReductionReport report =
      check_reduction(entry.reduction, lib.specs, entry.floor_rounds);
  const std::string text = report.format();
  EXPECT_NE(text.find(entry.reduction.name), std::string::npos);
  EXPECT_NE(text.find("dominance"), std::string::npos);
  mpch::util::JsonWriter w;
  report.to_json(w);
  EXPECT_TRUE(w.complete());
  EXPECT_NE(w.str().find("\"ok\":true"), std::string::npos) << w.str();
}

TEST(ReduceChecker, CatalogListingIsDeterministic) {
  // The spec catalog is an ordered map: two builds list identically, so
  // --list-specs and --catalog output can be byte-compared in CI.
  const BuiltinCatalog a = build_builtin_catalog(1);
  const BuiltinCatalog b = build_builtin_catalog(1);
  auto ia = a.specs.all().begin();
  auto ib = b.specs.all().begin();
  for (; ia != a.specs.all().end(); ++ia, ++ib) {
    EXPECT_EQ(ia->first, ib->first);
    EXPECT_EQ(ia->second.summary(), ib->second.summary());
  }
  EXPECT_GE(a.specs.all().size(), 19u);  // 8 strategies + 8 auth lifts + family points
}

TEST(ReduceChecker, CrossCheckCatchesAnUndersizedEnvelope) {
  // Shrink the transformed envelope below what the run really uses: the
  // dynamic leg must refuse it even though the static leg was never asked.
  const BuiltinCatalog lib = build_builtin_catalog(1);
  const CatalogEntry& entry = lib.entries.front();  // auth/pointer-chasing
  ReductionReport report = check_reduction(entry.reduction, lib.specs, entry.floor_rounds);
  ASSERT_TRUE(report.ok());
  report.transformed.spec.max_rounds = 1;  // the chase needs far more
  mpch::mpc::MpcConfig config;
  const mpch::mpc::MpcRunResult result = entry.run_target(&config);
  const mpch::analysis::AnalysisReport cross = cross_check_reduction(report, result, config);
  EXPECT_FALSE(cross.ok());
}

}  // namespace
