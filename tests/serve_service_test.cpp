// Tests for the ServeService execution engine (serve/service.hpp): budget
// admission rejects with static-checker provenance before running,
// backpressure engages under a tiny queue, the shared oracle memo actually
// gets hit on repeated-seed sweeps, and every verb produces the result
// surfaces the CLI reports.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "analysis/static_checker.hpp"
#include "mpc/auth.hpp"
#include "serve/job_spec.hpp"
#include "serve/scenario.hpp"
#include "serve/service.hpp"

namespace {

using mpch::serve::JobResult;
using mpch::serve::JobSpec;
using mpch::serve::JobStatus;
using mpch::serve::JobVerb;
using mpch::serve::ServeOptions;
using mpch::serve::ServeService;

JobSpec simulate_spec(const std::string& strategy, std::uint64_t seed) {
  JobSpec spec;
  spec.verb = JobVerb::kSimulate;
  spec.strategy = strategy;
  spec.seed = seed;
  spec.source_line = 1;
  return spec;
}

TEST(ServeService, BudgetRejectionCarriesProvenance) {
  JobSpec spec = simulate_spec("dictionary", 11);
  spec.budget_bits = 512;  // dictionary's declared gather is far larger
  spec.source_line = 7;
  ServeService service(ServeOptions{1, 4, true, true});
  auto results = service.run_jobs({spec});
  ASSERT_EQ(results.size(), 1u);
  const JobResult& r = results[0];
  EXPECT_EQ(r.status, JobStatus::kRejected);
  // The job never executed: no rounds, no oracle, and the admission report
  // carries the static checker's diagnostics with machine/round provenance.
  EXPECT_FALSE(r.run.completed);
  EXPECT_EQ(r.oracle, nullptr);
  ASSERT_FALSE(r.admission.violations.empty());
  EXPECT_NE(r.error.find("line 7"), std::string::npos) << r.error;
  EXPECT_NE(r.error.find("512"), std::string::npos) << r.error;
  EXPECT_EQ(service.stats().rejected, 1u);
  EXPECT_EQ(service.stats().ok, 0u);
}

TEST(ServeService, GenerousBudgetAdmits) {
  JobSpec spec = simulate_spec("pointer-chasing", 11);
  spec.budget_bits = 1 << 20;
  auto results = ServeService(ServeOptions{1, 4, true, true}).run_jobs({spec});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, JobStatus::kOk);
  EXPECT_TRUE(results[0].admission.ok());
  EXPECT_TRUE(results[0].run.completed);
}

TEST(ServeService, AuthenticatedAdmissionUsesTheSharedLift) {
  // Regression for the auth-envelope dedup: serve's admission now lifts the
  // declared spec through the reduce-calculus with_authentication term. The
  // rejection decision and its static-checker provenance must be
  // byte-identical to the direct ProtocolSpec::with_authentication path.
  mpch::serve::Scenario sc = mpch::serve::make_scenario("pointer-chasing", 11, 0);
  auto* provider =
      dynamic_cast<mpch::analysis::ProtocolSpecProvider*>(sc.algo.get());
  ASSERT_NE(provider, nullptr);
  const mpch::analysis::ProtocolSpec lifted =
      provider->protocol_spec().with_authentication(mpch::mpc::kMessageTagBits);

  // A budget between the plain and lifted envelopes: admitted without
  // authentication, rejected with it.
  std::uint64_t plain_worst = 0;
  std::uint64_t lifted_worst = 0;
  for (std::uint64_t shape = 0; shape < lifted.distinct_round_shapes(); ++shape) {
    const std::uint64_t round =
        shape < lifted.prologue.size() ? shape : lifted.prologue.size();
    plain_worst = std::max(plain_worst,
                           provider->protocol_spec().envelope(round).memory_bits);
    lifted_worst = std::max(lifted_worst, lifted.envelope(round).memory_bits);
  }
  ASSERT_LT(plain_worst, lifted_worst);
  const std::uint64_t budget = (plain_worst + lifted_worst) / 2;

  JobSpec plain = simulate_spec("pointer-chasing", 11);
  plain.budget_bits = budget;
  auto admitted = ServeService(ServeOptions{1, 4, true, true}).run_jobs({plain});
  ASSERT_EQ(admitted.size(), 1u);
  EXPECT_EQ(admitted[0].status, JobStatus::kOk);

  JobSpec authed = plain;
  authed.authenticate = true;
  authed.source_line = 5;
  auto rejected = ServeService(ServeOptions{1, 4, true, true}).run_jobs({authed});
  ASSERT_EQ(rejected.size(), 1u);
  EXPECT_EQ(rejected[0].status, JobStatus::kRejected);
  EXPECT_NE(rejected[0].error.find("line 5"), std::string::npos) << rejected[0].error;

  // Byte-identical provenance: recompute the admission report the pre-dedup
  // way (direct lift, budgeted config) and compare the formatted output.
  mpch::mpc::MpcConfig admission_config = sc.config;
  admission_config.authenticate_messages = true;
  admission_config.local_memory_bits = budget;
  const mpch::analysis::AnalysisReport expected =
      mpch::analysis::check_spec(lifted, admission_config);
  EXPECT_FALSE(expected.ok());
  EXPECT_EQ(rejected[0].admission.format(), expected.format());
  EXPECT_EQ(rejected[0].admission.to_json(), expected.to_json());
}

TEST(ServeService, UnknownStrategyFailsTyped) {
  auto results = ServeService().run_jobs({simulate_spec("nonesuch", 1)});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, JobStatus::kFailed);
  EXPECT_NE(results[0].error.find("unknown strategy"), std::string::npos) << results[0].error;
}

TEST(ServeService, BackpressureEngagesUnderTinyQueue) {
  // queue_depth=1 with a single worker: the submitter can hold at most one
  // queued job, so pushing 6 jobs must stall it at least once, and the
  // high watermark can never exceed the capacity bound.
  std::vector<JobSpec> jobs;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    jobs.push_back(simulate_spec("ram-emulation", seed));
  }
  ServeService service(ServeOptions{1, 1, true, true});
  auto results = service.run_jobs(jobs);
  ASSERT_EQ(results.size(), jobs.size());
  for (const auto& r : results) EXPECT_EQ(r.status, JobStatus::kOk) << r.error;
  EXPECT_GE(service.stats().backpressure_waits, 1u);
  EXPECT_LE(service.stats().queue_high_watermark, 1u);
}

TEST(ServeService, SharedMemoHitsOnRepeatedSeeds) {
  // Same strategy + seed twice: the second job's oracle queries the same
  // sub-function, so with sharing on it must hit the process-wide memo —
  // and both runs must still be bit-identical to each other.
  std::vector<JobSpec> jobs = {simulate_spec("pointer-chasing", 11),
                               simulate_spec("pointer-chasing", 11)};
  ServeService shared(ServeOptions{1, 4, /*share_memo=*/true, true});
  auto on = shared.run_jobs(jobs);
  EXPECT_GT(shared.stats().memo_hits, 0u);
  EXPECT_EQ(shared.stats().memo_families, 1u);

  ServeService unshared(ServeOptions{1, 4, /*share_memo=*/false, true});
  auto off = unshared.run_jobs(jobs);
  EXPECT_EQ(unshared.stats().memo_hits, 0u);
  EXPECT_EQ(unshared.stats().memo_families, 0u);

  ASSERT_EQ(on.size(), 2u);
  ASSERT_EQ(off.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(on[i].status, JobStatus::kOk);
    EXPECT_EQ(on[i].run.output, off[i].run.output);
    EXPECT_EQ(on[i].run.rounds_used, off[i].run.rounds_used);
    ASSERT_NE(on[i].oracle, nullptr);
    EXPECT_EQ(on[i].oracle->total_queries(), off[i].oracle->total_queries());
    EXPECT_EQ(on[i].oracle->touched_table(), off[i].oracle->touched_table());
  }
}

TEST(ServeService, BufferReuseRecyclesAcrossJobs) {
  std::vector<JobSpec> jobs;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    jobs.push_back(simulate_spec("pointer-chasing", seed));
  }
  ServeService service(ServeOptions{1, 4, true, /*reuse_buffers=*/true});
  auto results = service.run_jobs(jobs);
  for (const auto& r : results) EXPECT_EQ(r.status, JobStatus::kOk) << r.error;
  // Rounds far outnumber jobs, so steady-state acquires must be reuses.
  EXPECT_GT(service.stats().arena_reuses, service.stats().arena_allocations);
}

TEST(ServeService, VerifyVerbRunsSoundnessCheck) {
  JobSpec spec = simulate_spec("ram-emulation", 7);
  spec.verb = JobVerb::kVerify;
  auto results = ServeService().run_jobs({spec});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].status, JobStatus::kOk) << results[0].error;
  EXPECT_TRUE(results[0].soundness.ok());
  EXPECT_TRUE(results[0].run.completed);
}

TEST(ServeService, ChaosVerbRecoversAndVerifies) {
  JobSpec spec = simulate_spec("pointer-chasing", 11);
  spec.verb = JobVerb::kChaos;
  spec.plan = "kill:round=4";
  spec.policy = "restart";
  spec.every = 2;
  auto results = ServeService().run_jobs({spec});
  ASSERT_EQ(results.size(), 1u);
  const JobResult& r = results[0];
  EXPECT_EQ(r.status, JobStatus::kOk) << r.error;
  EXPECT_TRUE(r.mismatches.empty());
  EXPECT_FALSE(r.fault_log.empty());
  EXPECT_GE(r.cost.faults_injected, 1u);
  EXPECT_GE(r.cost.recoveries, 1u);
}

TEST(ServeService, ResultsKeepJobfileOrderAcrossWorkers) {
  std::vector<JobSpec> jobs;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    jobs.push_back(simulate_spec("ram-emulation", seed));
    jobs.back().source_line = seed;
  }
  auto results = ServeService(ServeOptions{4, 2, true, true}).run_jobs(jobs);
  ASSERT_EQ(results.size(), jobs.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].job_id, i);
    EXPECT_EQ(results[i].spec.seed, jobs[i].seed);
  }
}

}  // namespace
