#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace mpch::util {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, (1ULL << 40)}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowCoversSmallRangeUniformly) {
  Rng rng(99);
  std::vector<int> counts(8, 0);
  const int kTrials = 80000;
  for (int i = 0; i < kTrials; ++i) ++counts[rng.next_below(8)];
  for (int c : counts) {
    EXPECT_GT(c, kTrials / 8 - 800);
    EXPECT_LT(c, kTrials / 8 + 800);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, SplitProducesIndependentStreams) {
  Rng parent(13);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (child1.next_u64() == child2.next_u64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Rng>);
  SUCCEED();
}

TEST(SplitMix64, KnownSequenceIsStable) {
  SplitMix64 sm(0);
  std::uint64_t first = sm.next();
  SplitMix64 sm2(0);
  EXPECT_EQ(sm2.next(), first);
  EXPECT_NE(sm.next(), first);
}

TEST(Rng, BitBalance) {
  Rng rng(123);
  int ones = 0;
  const int kWords = 10000;
  for (int i = 0; i < kWords; ++i) ones += __builtin_popcountll(rng.next_u64());
  double frac = static_cast<double>(ones) / (64.0 * kWords);
  EXPECT_NEAR(frac, 0.5, 0.01);
}

}  // namespace
}  // namespace mpch::util
