#include "mpclib/sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "util/rng.hpp"

namespace mpch::mpclib {
namespace {

mpc::MpcConfig config(std::uint64_t m, std::uint64_t s = 1 << 18) {
  mpc::MpcConfig c;
  c.machines = m;
  c.local_memory_bits = s;
  c.query_budget = 1;
  c.max_rounds = 16;
  c.tape_seed = 9;
  return c;
}

std::vector<std::vector<std::uint64_t>> random_partition(std::uint64_t total, std::uint64_t m,
                                                         std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<std::vector<std::uint64_t>> parts(m);
  for (std::uint64_t i = 0; i < total; ++i) {
    parts[rng.next_below(m)].push_back(rng.next_u64() % 100000);
  }
  return parts;
}

class SampleSortTest : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint64_t>> {
};

TEST_P(SampleSortTest, SortsGloballyInFourRounds) {
  auto [m, total] = GetParam();
  auto parts = random_partition(total, m, m * 1000 + total);
  std::vector<std::uint64_t> expected;
  for (const auto& p : parts) expected.insert(expected.end(), p.begin(), p.end());
  std::sort(expected.begin(), expected.end());

  mpc::MpcSimulation sim(config(m), nullptr);
  SampleSortAlgorithm algo(m, 8);
  mpc::MpcRunResult result = sim.run(algo, SampleSortAlgorithm::make_initial_memory(parts));
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.rounds_used, SampleSortAlgorithm::kRounds);
  EXPECT_EQ(SampleSortAlgorithm::parse_output(result.output), expected);
}

INSTANTIATE_TEST_SUITE_P(Shapes, SampleSortTest,
                         ::testing::Combine(::testing::Values(1, 2, 4, 8),
                                            ::testing::Values(0, 1, 50, 500)));

TEST(SampleSort, HandlesDuplicateKeys) {
  const std::uint64_t m = 4;
  std::vector<std::vector<std::uint64_t>> parts = {
      {7, 7, 7}, {7, 7}, {7}, {7, 7, 7, 7}};
  mpc::MpcSimulation sim(config(m), nullptr);
  SampleSortAlgorithm algo(m, 4);
  mpc::MpcRunResult result = sim.run(algo, SampleSortAlgorithm::make_initial_memory(parts));
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(SampleSortAlgorithm::parse_output(result.output),
            std::vector<std::uint64_t>(10, 7));
}

TEST(SampleSort, AlreadySortedAndReversed) {
  const std::uint64_t m = 3;
  std::vector<std::vector<std::uint64_t>> parts = {{1, 2, 3}, {4, 5, 6}, {9, 8, 7}};
  mpc::MpcSimulation sim(config(m), nullptr);
  SampleSortAlgorithm algo(m, 4);
  mpc::MpcRunResult result = sim.run(algo, SampleSortAlgorithm::make_initial_memory(parts));
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(SampleSortAlgorithm::parse_output(result.output),
            (std::vector<std::uint64_t>{1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(SampleSort, SkewedDistributionStillSorts) {
  // All keys land in one bucket range: the splitters degenerate but the
  // output must still be sorted.
  const std::uint64_t m = 4;
  std::vector<std::vector<std::uint64_t>> parts(m);
  util::Rng rng(5);
  std::vector<std::uint64_t> expected;
  for (int i = 0; i < 100; ++i) {
    std::uint64_t k = 1000 + rng.next_below(3);  // only 3 distinct keys
    parts[rng.next_below(m)].push_back(k);
    expected.push_back(k);
  }
  std::sort(expected.begin(), expected.end());
  mpc::MpcSimulation sim(config(m), nullptr);
  SampleSortAlgorithm algo(m, 8);
  mpc::MpcRunResult result = sim.run(algo, SampleSortAlgorithm::make_initial_memory(parts));
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(SampleSortAlgorithm::parse_output(result.output), expected);
}

TEST(SampleSort, CommunicationBoundedByData) {
  const std::uint64_t m = 4;
  auto parts = random_partition(200, m, 77);
  mpc::MpcSimulation sim(config(m), nullptr);
  SampleSortAlgorithm algo(m, 8);
  mpc::MpcRunResult result = sim.run(algo, SampleSortAlgorithm::make_initial_memory(parts));
  ASSERT_TRUE(result.completed);
  // Each key moves O(1) times: total communication stays within a small
  // multiple of the data size plus per-message headers.
  std::uint64_t data_bits = 200 * 64;
  EXPECT_LT(result.trace.total_communicated_bits(), 6 * data_bits + 8192);
}

}  // namespace
}  // namespace mpch::mpclib
