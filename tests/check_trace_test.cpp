// check_trace_test.cpp — the counterexample trace codec: canonical
// round-trips, and a TraceError from every hostile-input gate.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "check/trace.hpp"

namespace mpch::check {
namespace {

TraceFile sample_trace() {
  TraceFile trace;
  trace.protocol = "inbox";
  trace.mutation = "skip-dedup";
  trace.bound = "machines=2,rounds=1,messages=2";
  trace.violation = "inbox: duplicate frame (from=0, seq=0) accepted";
  trace.schedule = {
      {(1ULL << 40) | 0, "deliver from=0 seq=0"},
      {(2ULL << 40) | 0, "re-deliver duplicate from=0 seq=0"},
      {3ULL << 40, "barrier"},
  };
  return trace;
}

void expect_trace_error(std::string text, const std::string& needle) {
  try {
    (void)parse_trace(text);
    FAIL() << "expected TraceError containing '" << needle << "'";
  } catch (const TraceError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual error: " << e.what();
  }
}

TEST(CheckTrace, EncodeParseRoundTrip) {
  const TraceFile original = sample_trace();
  const std::string text = encode_trace(original);
  const TraceFile parsed = parse_trace(text);
  EXPECT_EQ(parsed, original);
  // The encoding is canonical: re-encoding the parse gives the same bytes.
  EXPECT_EQ(encode_trace(parsed), text);
}

TEST(CheckTrace, EmptyBoundAndEmptyScheduleRoundTrip) {
  TraceFile trace;
  trace.protocol = "quarantine";
  trace.violation = "quarantine: core diverged from the policy spec";
  const TraceFile parsed = parse_trace(encode_trace(trace));
  EXPECT_EQ(parsed, trace);
  EXPECT_EQ(parsed.mutation, "none");
  EXPECT_TRUE(parsed.schedule.empty());
}

TEST(CheckTrace, SaveAndLoadFile) {
  const std::string path = ::testing::TempDir() + "check_trace_roundtrip.trace";
  const TraceFile original = sample_trace();
  save_trace(path, original);
  const TraceFile loaded = load_trace(path);
  EXPECT_EQ(loaded, original);
  std::remove(path.c_str());
}

TEST(CheckTrace, LoadMissingFileIsTraceError) {
  EXPECT_THROW((void)load_trace(::testing::TempDir() + "does_not_exist.trace"), TraceError);
}

TEST(CheckTrace, RejectsBadHeader) {
  std::string text = encode_trace(sample_trace());
  text.replace(0, text.find('\n'), "mpch-model-trace v2");
  expect_trace_error(text, "header");
  expect_trace_error("", "line 1");
}

TEST(CheckTrace, RejectsCarriageReturns) {
  std::string text = encode_trace(sample_trace());
  text.insert(text.find('\n'), "\r");
  expect_trace_error(text, "CR");
}

TEST(CheckTrace, RejectsMissingNewlineTermination) {
  std::string text = encode_trace(sample_trace());
  text.pop_back();  // strip the final '\n' after "end"
  expect_trace_error(text, "newline");
}

TEST(CheckTrace, RejectsTrailingBytesAfterEnd) {
  std::string text = encode_trace(sample_trace());
  text += "extra\n";
  expect_trace_error(text, "end");
}

TEST(CheckTrace, RejectsWrongFieldOrder) {
  // Swap the protocol and mutation lines: field order is part of the format.
  TraceFile trace = sample_trace();
  std::string text = encode_trace(trace);
  const std::string proto_line = "protocol inbox\n";
  const std::string mut_line = "mutation skip-dedup\n";
  const std::size_t p = text.find(proto_line);
  ASSERT_NE(p, std::string::npos);
  text.replace(p, proto_line.size() + mut_line.size(), mut_line + proto_line);
  expect_trace_error(text, "line 2");
}

TEST(CheckTrace, RejectsActionCountMismatch) {
  std::string text = encode_trace(sample_trace());
  const std::size_t p = text.find("actions 3");
  ASSERT_NE(p, std::string::npos);
  text.replace(p, 9, "actions 4");
  expect_trace_error(text, "line");
}

TEST(CheckTrace, RejectsHostileActionCount) {
  std::string text = encode_trace(sample_trace());
  const std::size_t p = text.find("actions 3");
  ASSERT_NE(p, std::string::npos);
  // A count above kMaxTraceActions must be rejected before any allocation.
  text.replace(p, 9, "actions 18446744073709551615");
  expect_trace_error(text, "action count");
}

TEST(CheckTrace, RejectsNonNumericActionKey) {
  std::string text = encode_trace(sample_trace());
  const std::size_t p = text.find("1099511627776 deliver");
  ASSERT_NE(p, std::string::npos);
  text.replace(p, 13, "not-a-number!");
  expect_trace_error(text, "key");
}

TEST(CheckTrace, RejectsOversizedFile) {
  std::string text(kMaxTraceFileBytes + 1, 'x');
  expect_trace_error(text, "exceeds");
}

TEST(CheckTrace, RejectsOverlongLine) {
  std::string text = "mpch-model-trace v1\nprotocol ";
  text += std::string(kMaxTraceLineBytes + 1, 'p');
  text += "\n";
  expect_trace_error(text, "line");
}

TEST(CheckTrace, RejectsTruncatedSchedule) {
  std::string text = encode_trace(sample_trace());
  // Cut the file off in the middle of the action list.
  const std::size_t p = text.find("re-deliver");
  ASSERT_NE(p, std::string::npos);
  text.resize(text.rfind('\n', p) + 1);
  expect_trace_error(text, "line");
}

TEST(CheckTrace, EncodeRejectsUnrepresentableFields) {
  TraceFile trace = sample_trace();
  trace.violation = "two\nlines";
  EXPECT_THROW((void)encode_trace(trace), std::invalid_argument);

  trace = sample_trace();
  trace.protocol = "has space";
  EXPECT_THROW((void)encode_trace(trace), std::invalid_argument);

  trace = sample_trace();
  trace.protocol.clear();
  EXPECT_THROW((void)encode_trace(trace), std::invalid_argument);

  trace = sample_trace();
  trace.schedule[0].label = "bad\nlabel";
  EXPECT_THROW((void)encode_trace(trace), std::invalid_argument);
}

TEST(CheckTrace, ParserNeverThrowsAnythingButTraceError) {
  // A grab-bag of hostile inputs: whatever happens, the only exception type
  // allowed out of parse_trace is TraceError. (The fuzz harness enforces the
  // same contract with arbitrary bytes.)
  const std::string good = encode_trace(sample_trace());
  std::vector<std::string> hostile = {
      "\n", "\x00\x01\x02", "mpch-model-trace v1\n",
      "mpch-model-trace v1\nprotocol\n",
      "mpch-model-trace v1\nprotocol inbox\nmutation none\nbound \nviolation v\nactions 0\nend\n",
      good.substr(0, good.size() / 2),
      good + good,
  };
  for (const std::string& text : hostile) {
    try {
      (void)parse_trace(text);
    } catch (const TraceError&) {
      // expected
    } catch (...) {
      FAIL() << "non-TraceError exception for input of size " << text.size();
    }
  }
}

}  // namespace
}  // namespace mpch::check
