#include "compress/line_codec.hpp"

#include <gtest/gtest.h>

#include "core/line.hpp"
#include "util/rng.hpp"

namespace mpch::compress {
namespace {

using util::BitString;

// Tiny parameters: n = 12, u = 3, v = 4, w = 8 — the full oracle table is
// 4096 entries and v^depth enumeration stays small.
core::LineParams tiny_params() { return core::LineParams::make(12, 3, 4, 8); }

struct Fixture {
  core::LineParams p = tiny_params();
  util::Rng rng;
  hash::ExhaustiveRandomOracle oracle;
  core::LineInput input;
  core::LineChain chain;

  explicit Fixture(std::uint64_t seed)
      : rng(seed),
        oracle(tiny_params().n, tiny_params().n, rng),
        input(core::LineInput::random(tiny_params(), rng)),
        chain(core::LineFunction(tiny_params()).evaluate_chain(oracle, input)) {}

  RewireAnchor anchor_at(std::uint64_t j_k) const {
    RewireAnchor a;
    a.j_k = j_k;
    a.ell_next = chain.nodes[j_k].ell;  // node j_k+1's ℓ (0-indexed vector)
    a.r_next = chain.nodes[j_k].r;
    return a;
  }

  /// Memory for the honest machine: frontier at node j_k+1 holding the given
  /// blocks.
  BitString memory_with_blocks(std::uint64_t j_k,
                               const std::vector<std::uint64_t>& block_ids) const {
    std::vector<std::pair<std::uint64_t, BitString>> blocks;
    for (std::uint64_t b : block_ids) blocks.emplace_back(b, input.block(b));
    return LineWindowProgram::make_memory(p, j_k + 1, chain.nodes[j_k].ell,
                                          chain.nodes[j_k].r, blocks);
  }
};

TEST(LineCompressor, RoundTripsExactlyWithFullBlockSet) {
  Fixture f(1);
  LineCompressor comp(f.p, 64, 2);
  LineWindowProgram program(f.p);
  BitString memory = f.memory_with_blocks(2, {1, 2, 3, 4});
  RewireAnchor anchor = f.anchor_at(2);

  LineEncoding enc = comp.encode(f.oracle, f.input, memory, program, anchor);
  // The machine owns every block, so the rewiring reaches all of [v]:
  // B = {1, 2, 3, 4}.
  EXPECT_EQ(enc.b_set.size(), f.p.v);
  EXPECT_EQ(enc.enumerated_seqs, 16u);  // v^depth = 4^2

  LineDecoded dec = comp.decode(enc.message, program);
  EXPECT_EQ(dec.input_bits, f.input.bits());
  for (std::size_t i = 0; i < dec.oracle_table.size(); ++i) {
    ASSERT_EQ(dec.oracle_table[i], f.oracle.table()[i]) << i;
  }
}

TEST(LineCompressor, BSetIsExactlyTheReachableStoredBlocks) {
  Fixture f(2);
  LineCompressor comp(f.p, 64, 2);
  LineWindowProgram program(f.p);
  RewireAnchor anchor = f.anchor_at(1);

  // Machine stores blocks {ell_next, 3}: step 1 reveals ell_next; step 2
  // reveals any stored a_1 (the rewiring tries all) — so B = {ell_next, 3}.
  std::vector<std::uint64_t> stored = {anchor.ell_next, 3};
  if (anchor.ell_next == 3) stored = {3, 1};
  BitString memory = f.memory_with_blocks(1, stored);
  auto b_set = comp.compute_b_set(f.oracle, f.input, memory, program, anchor);
  std::set<std::uint64_t> expected(stored.begin(), stored.end());
  EXPECT_EQ(b_set, expected);
}

TEST(LineCompressor, NoBlocksMeansEmptyBSet) {
  Fixture f(3);
  LineCompressor comp(f.p, 64, 2);
  LineWindowProgram program(f.p);
  RewireAnchor anchor = f.anchor_at(0);
  BitString memory = f.memory_with_blocks(0, {});
  auto b_set = comp.compute_b_set(f.oracle, f.input, memory, program, anchor);
  EXPECT_TRUE(b_set.empty());
}

TEST(LineCompressor, MissingFirstBlockBlocksTheWholeWindow) {
  Fixture f(4);
  LineCompressor comp(f.p, 64, 2);
  LineWindowProgram program(f.p);
  RewireAnchor anchor = f.anchor_at(1);
  // Machine stores everything EXCEPT ℓ_{j_k+1}: it can never make the first
  // window query, so no rewiring helps: B is empty.
  std::vector<std::uint64_t> stored;
  for (std::uint64_t b = 1; b <= f.p.v; ++b) {
    if (b != anchor.ell_next) stored.push_back(b);
  }
  BitString memory = f.memory_with_blocks(1, stored);
  auto b_set = comp.compute_b_set(f.oracle, f.input, memory, program, anchor);
  EXPECT_TRUE(b_set.empty());
}

TEST(LineCompressor, PartialBlockSetsRoundTrip) {
  for (std::uint64_t seed = 5; seed < 9; ++seed) {
    Fixture f(seed);
    LineCompressor comp(f.p, 64, 2);
    LineWindowProgram program(f.p);
    RewireAnchor anchor = f.anchor_at(3);
    BitString memory = f.memory_with_blocks(3, {anchor.ell_next, (anchor.ell_next % 4) + 1});
    LineEncoding enc = comp.encode(f.oracle, f.input, memory, program, anchor);
    LineDecoded dec = comp.decode(enc.message, program);
    EXPECT_EQ(dec.input_bits, f.input.bits()) << "seed=" << seed;
  }
}

TEST(LineCompressor, ResidualShrinksWithCoverage) {
  Fixture f(10);
  LineCompressor comp(f.p, 64, 2);
  LineWindowProgram program(f.p);
  RewireAnchor anchor = f.anchor_at(2);

  BitString none = f.memory_with_blocks(2, {});
  BitString all = f.memory_with_blocks(2, {1, 2, 3, 4});
  LineEncoding enc_none = comp.encode(f.oracle, f.input, none, program, anchor);
  LineEncoding enc_all = comp.encode(f.oracle, f.input, all, program, anchor);
  EXPECT_EQ(enc_none.breakdown.residual_bits, f.p.v * f.p.u);
  EXPECT_EQ(enc_all.breakdown.residual_bits, 0u);
  EXPECT_EQ(enc_none.b_set.size(), 0u);  // no stored blocks => empty B
  EXPECT_EQ(enc_all.b_set.size(), f.p.v);
}

TEST(LineCompressor, Depth1Works) {
  Fixture f(11);
  LineCompressor comp(f.p, 64, 1);
  LineWindowProgram program(f.p);
  RewireAnchor anchor = f.anchor_at(1);
  BitString memory = f.memory_with_blocks(1, {anchor.ell_next});
  LineEncoding enc = comp.encode(f.oracle, f.input, memory, program, anchor);
  EXPECT_EQ(enc.b_set, std::set<std::uint64_t>{anchor.ell_next});
  LineDecoded dec = comp.decode(enc.message, program);
  EXPECT_EQ(dec.input_bits, f.input.bits());
}

TEST(LineCompressor, RejectsExplosiveEnumeration) {
  core::LineParams p = core::LineParams::make(20, 4, 64, 8);
  EXPECT_THROW(LineCompressor(p, 64, 5), std::invalid_argument);  // 64^5 sequences
}

TEST(LineCompressor, WindowClipsAtChainEnd) {
  Fixture f(12);
  LineCompressor comp(f.p, 64, 3);
  LineWindowProgram program(f.p);
  // Anchor near the end: j_k = w-2 leaves only 2 window steps.
  RewireAnchor anchor = f.anchor_at(f.p.w - 2);
  BitString memory = f.memory_with_blocks(f.p.w - 2, {1, 2, 3, 4});
  LineEncoding enc = comp.encode(f.oracle, f.input, memory, program, anchor);
  LineDecoded dec = comp.decode(enc.message, program);
  EXPECT_EQ(dec.input_bits, f.input.bits());
}

}  // namespace
}  // namespace mpch::compress
