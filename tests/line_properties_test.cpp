// line_properties_test.cpp — parameterised property sweeps tying the Line /
// SimLine functions and their strategies together across a parameter grid.
#include <gtest/gtest.h>

#include "core/line.hpp"
#include "core/simline.hpp"
#include "hash/blake2s.hpp"
#include "hash/random_oracle.hpp"
#include "mpc/simulation.hpp"
#include "strategies/pipelined_simline.hpp"
#include "strategies/pointer_chasing.hpp"
#include "util/rng.hpp"

namespace mpch {
namespace {

struct GridPoint {
  std::uint64_t u;
  std::uint64_t v;
  std::uint64_t w;
  std::uint64_t machines;
};

class LineGridTest : public ::testing::TestWithParam<GridPoint> {
 protected:
  core::LineParams make_params() const {
    const GridPoint& g = GetParam();
    return core::LineParams::make(3 * g.u + 16, g.u, g.v, g.w);
  }
};

TEST_P(LineGridTest, ChainIsInternallyConsistent) {
  core::LineParams p = make_params();
  hash::LazyRandomOracle oracle(p.n, p.n, p.u * 1000 + p.v * 10 + p.w);
  util::Rng rng(p.w);
  core::LineInput input = core::LineInput::random(p, rng);
  core::LineChain chain = core::LineFunction(p).evaluate_chain(oracle, input);
  core::LineCodec codec(p);

  ASSERT_EQ(chain.nodes.size(), p.w);
  for (std::size_t i = 0; i < chain.nodes.size(); ++i) {
    const auto& node = chain.nodes[i];
    ASSERT_GE(node.ell, 1u);
    ASSERT_LE(node.ell, p.v);
    core::LineQuery q = codec.decode_query(node.query);
    ASSERT_EQ(q.index, i + 1);
    ASSERT_EQ(q.x, input.block(node.ell));
    // Answers are the oracle's; re-querying is stable.
    ASSERT_EQ(oracle.query(node.query), node.answer);
  }
}

TEST_P(LineGridTest, MpcMatchesRamEverywhereOnTheGrid) {
  const GridPoint& g = GetParam();
  core::LineParams p = make_params();
  auto oracle = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, 31 * p.v + p.w);
  util::Rng rng(17 * p.u + p.w);
  core::LineInput input = core::LineInput::random(p, rng);
  util::BitString expected = core::LineFunction(p).evaluate(*oracle, input);

  strategies::PointerChasingStrategy strat(
      p, strategies::OwnershipPlan::round_robin(p, g.machines));
  mpc::MpcConfig c;
  c.machines = g.machines;
  c.local_memory_bits = strat.required_local_memory();
  c.query_budget = 1 << 20;
  c.max_rounds = 1 << 20;
  mpc::MpcSimulation sim(c, oracle);
  auto result = sim.run(strat, strat.make_initial_memory(input));
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.output, expected);
  // Honest strategy: exactly w queries, rounds in [w/max_advance, w].
  EXPECT_EQ(result.trace.total_oracle_queries(), p.w);
  EXPECT_LE(result.rounds_used, p.w);
}

TEST_P(LineGridTest, SimLinePipelineMatchesClosedFormEverywhere) {
  const GridPoint& g = GetParam();
  core::LineParams p = make_params();
  auto oracle = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, 77 * p.v + p.w);
  util::Rng rng(19 * p.u + p.w);
  core::LineInput input = core::LineInput::random(p, rng);
  util::BitString expected = core::SimLineFunction(p).evaluate(*oracle, input);

  std::uint64_t window = std::max<std::uint64_t>(1, p.v / g.machines);
  strategies::PipelinedSimLineStrategy strat(
      p, strategies::OwnershipPlan::windows(p, g.machines, window));
  mpc::MpcConfig c;
  c.machines = g.machines;
  c.local_memory_bits = strat.required_local_memory();
  c.query_budget = 1 << 20;
  c.max_rounds = 1 << 20;
  mpc::MpcSimulation sim(c, oracle);
  auto result = sim.run(strat, strat.make_initial_memory(input));
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.output, expected);
  EXPECT_EQ(result.rounds_used, strat.predicted_rounds());
}

constexpr GridPoint kGrid[] = {{8, 4, 16, 2},    {8, 8, 64, 4},   {16, 8, 32, 3},
                               {16, 16, 128, 4}, {16, 32, 64, 8}, {24, 8, 96, 5},
                               {12, 16, 48, 16}};

INSTANTIATE_TEST_SUITE_P(Grid, LineGridTest, ::testing::ValuesIn(kGrid),
                         [](const ::testing::TestParamInfo<GridPoint>& param_info) {
                           const GridPoint& g = param_info.param;
                           return "u" + std::to_string(g.u) + "v" + std::to_string(g.v) + "w" +
                                  std::to_string(g.w) + "m" + std::to_string(g.machines);
                         });

// Oracle-instantiation grid: the function is well-defined under every
// oracle implementation.
class OracleKindTest : public ::testing::TestWithParam<int> {};

TEST_P(OracleKindTest, EvaluationStableAndWidthCorrect) {
  core::LineParams p = core::LineParams::make(64, 16, 8, 32);
  std::shared_ptr<hash::RandomOracle> oracle;
  util::Rng table_rng(5);
  switch (GetParam()) {
    case 0:
      oracle = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, 1);
      break;
    case 1:
      oracle = std::make_shared<hash::Sha256Oracle>(p.n, p.n);
      break;
    case 2:
      oracle = std::make_shared<hash::Blake2sOracle>(p.n, p.n);
      break;
    default:
      GTEST_FAIL();
  }
  util::Rng rng(6);
  core::LineInput input = core::LineInput::random(p, rng);
  core::LineFunction f(p);
  util::BitString out1 = f.evaluate(*oracle, input);
  util::BitString out2 = f.evaluate(*oracle, input);
  EXPECT_EQ(out1, out2);
  EXPECT_EQ(out1.size(), p.n);
}

std::string oracle_kind_name(const ::testing::TestParamInfo<int>& info) {
  static const char* const kNames[] = {"LazyRO", "Sha256", "Blake2s"};
  return kNames[info.param];
}

INSTANTIATE_TEST_SUITE_P(Oracles, OracleKindTest, ::testing::Values(0, 1, 2),
                         oracle_kind_name);

}  // namespace
}  // namespace mpch
