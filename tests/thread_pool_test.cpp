#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace mpch::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, ParallelChunksCoverExactlyOnce) {
  ThreadPool pool(4);
  const std::size_t kTotal = 10007;  // prime: uneven chunking
  std::vector<std::atomic<int>> touched(kTotal);
  pool.parallel_chunks(kTotal, [&](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) touched[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kTotal; ++i) {
    ASSERT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, ParallelChunksChunkIndicesAreDistinct) {
  ThreadPool pool(2);
  std::mutex mu;
  std::vector<std::size_t> seen;
  pool.parallel_chunks(
      100,
      [&](std::size_t chunk, std::size_t, std::size_t) {
        std::lock_guard<std::mutex> lock(mu);
        seen.push_back(chunk);
      },
      10);
  std::sort(seen.begin(), seen.end());
  ASSERT_EQ(seen.size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(seen[i], i);
}

TEST(ThreadPool, ZeroTotalIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_chunks(0, [&](std::size_t, std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, MoreChunksThanItemsClamped) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.parallel_chunks(
      3, [&](std::size_t, std::size_t begin, std::size_t end) {
        EXPECT_EQ(end - begin, 1u);
        calls.fetch_add(1);
      },
      50);
  EXPECT_EQ(calls.load(), 3);
}

TEST(ThreadPool, GlobalPoolIsUsable) {
  std::atomic<int> n{0};
  global_pool().parallel_chunks(10, [&](std::size_t, std::size_t b, std::size_t e) {
    n.fetch_add(static_cast<int>(e - b));
  });
  EXPECT_EQ(n.load(), 10);
}

TEST(ThreadPool, DefaultThreadCountPositive) {
  ThreadPool pool;
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, InWorkerReflectsCallingThread) {
  EXPECT_FALSE(ThreadPool::in_worker());
  ThreadPool pool(2);
  std::atomic<int> inside{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(pool.submit([&inside] {
      if (ThreadPool::in_worker()) inside.fetch_add(1);
    }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(inside.load(), 8);
  EXPECT_FALSE(ThreadPool::in_worker());  // main thread is still not a worker
}

}  // namespace
}  // namespace mpch::util
