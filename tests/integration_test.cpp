// integration_test.cpp — cross-module properties tying the whole system to
// the paper's claims.
#include <gtest/gtest.h>

#include "core/line.hpp"
#include "core/simline.hpp"
#include "hash/random_oracle.hpp"
#include "mpc/simulation.hpp"
#include "stats/estimator.hpp"
#include "strategies/full_memory.hpp"
#include "strategies/pipelined_simline.hpp"
#include "strategies/pointer_chasing.hpp"
#include "theory/bounds.hpp"
#include "util/rng.hpp"

namespace mpch {
namespace {

using core::LineParams;

/// End-to-end: the MPC pointer-chasing strategy and the sequential RAM
/// evaluation compute the same function, under both the seeded true-RO and
/// the SHA-256 instantiation (the random-oracle methodology step).
TEST(Integration, MpcAgreesWithRamUnderBothOracles) {
  LineParams p = LineParams::make(64, 16, 8, 96);
  for (bool use_sha : {false, true}) {
    std::shared_ptr<hash::RandomOracle> oracle;
    if (use_sha) {
      oracle = std::make_shared<hash::Sha256Oracle>(p.n, p.n);
    } else {
      oracle = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, 99);
    }
    util::Rng rng(3);
    core::LineInput input = core::LineInput::random(p, rng);
    util::BitString ram_out = core::LineFunction(p).evaluate(*oracle, input);

    const std::uint64_t m = 4;
    strategies::PointerChasingStrategy strat(p, strategies::OwnershipPlan::round_robin(p, m));
    mpc::MpcConfig c;
    c.machines = m;
    c.local_memory_bits = strat.required_local_memory();
    c.query_budget = 1 << 20;
    c.max_rounds = 10000;
    mpc::MpcSimulation sim(c, oracle);
    auto result = sim.run(strat, strat.make_initial_memory(input));
    ASSERT_TRUE(result.completed) << "sha=" << use_sha;
    EXPECT_EQ(result.output, ram_out) << "sha=" << use_sha;
  }
}

/// The headline contrast: at matched storage fractions, SimLine's pipelined
/// strategy needs far fewer rounds than Line's pointer-chasing, because
/// SimLine's schedule is public and Line's is oracle-chosen.
TEST(Integration, LineIsHarderThanSimLine) {
  LineParams p = LineParams::make(64, 16, 16, 512);
  const std::uint64_t m = 4;  // 4 blocks per machine, f = 1/4

  // SimLine, windows of 4 blocks: rounds = w / 4.
  auto sim_oracle = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, 7);
  util::Rng rng1(4);
  core::LineInput input1 = core::LineInput::random(p, rng1);
  strategies::PipelinedSimLineStrategy sim_strat(p, strategies::OwnershipPlan::windows(p, m, 4));
  mpc::MpcConfig c1;
  c1.machines = m;
  c1.local_memory_bits = sim_strat.required_local_memory();
  c1.query_budget = 1 << 20;
  c1.max_rounds = 100000;
  mpc::MpcSimulation msim1(c1, sim_oracle);
  auto r_sim = msim1.run(sim_strat, sim_strat.make_initial_memory(input1));
  ASSERT_TRUE(r_sim.completed);

  // Line, same storage: rounds ≈ w(1 - 1/4).
  auto line_oracle = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, 8);
  util::Rng rng2(5);
  core::LineInput input2 = core::LineInput::random(p, rng2);
  strategies::PointerChasingStrategy line_strat(p, strategies::OwnershipPlan::round_robin(p, m));
  mpc::MpcConfig c2 = c1;
  c2.local_memory_bits = line_strat.required_local_memory();
  mpc::MpcSimulation msim2(c2, line_oracle);
  auto r_line = msim2.run(line_strat, line_strat.make_initial_memory(input2));
  ASSERT_TRUE(r_line.completed);

  // SimLine: the public schedule pipelines through each 4-block window.
  EXPECT_EQ(r_sim.rounds_used, p.w / 4);
  // Line: the oracle-chosen schedule forces ~w(1-f) = 0.75w rounds — about
  // 3x the SimLine count at the same storage fraction.
  EXPECT_GT(r_line.rounds_used, r_sim.rounds_used * 2);
}

/// Measured per-round advance for Line matches the geometric model
/// E[advance] = 1/(1-f), and measured rounds match the analytic curve.
TEST(Integration, LineAdvanceMatchesGeometricModel) {
  LineParams p = LineParams::make(64, 16, 16, 1024);
  const std::uint64_t m = 4;  // f = 1/4 per machine with round-robin
  auto oracle = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, 17);
  util::Rng rng(6);
  core::LineInput input = core::LineInput::random(p, rng);
  strategies::PointerChasingStrategy strat(p, strategies::OwnershipPlan::round_robin(p, m));
  mpc::MpcConfig c;
  c.machines = m;
  c.local_memory_bits = strat.required_local_memory();
  c.query_budget = 1 << 20;
  c.max_rounds = 100000;
  mpc::MpcSimulation sim(c, oracle);
  auto result = sim.run(strat, strat.make_initial_memory(input));
  ASSERT_TRUE(result.completed);

  long double predicted = theory::pointer_chasing_expected_rounds(p, 0.25L);
  double measured = static_cast<double>(result.rounds_used);
  EXPECT_NEAR(measured, static_cast<double>(predicted), 0.2 * static_cast<double>(predicted));
}

/// Threshold behaviour: the same function drops from ~w(1-f) rounds to 2
/// rounds the moment local memory covers the whole input.
TEST(Integration, MemoryThresholdCollapsesRounds) {
  LineParams p = LineParams::make(64, 16, 8, 256);
  const std::uint64_t m = 4;
  auto oracle = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, 23);
  util::Rng rng(7);
  core::LineInput input = core::LineInput::random(p, rng);

  strategies::FullMemoryStrategy full(p, strategies::OwnershipPlan::round_robin(p, m));
  mpc::MpcConfig c;
  c.machines = m;
  c.local_memory_bits = full.required_local_memory();
  c.query_budget = p.w + 1;
  c.max_rounds = 10;
  mpc::MpcSimulation sim(c, oracle);
  auto r_full = sim.run(full, full.make_initial_memory(input));
  ASSERT_TRUE(r_full.completed);
  EXPECT_EQ(r_full.rounds_used, 2u);

  auto oracle2 = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, 23);
  strategies::PointerChasingStrategy chase(p, strategies::OwnershipPlan::round_robin(p, m));
  mpc::MpcConfig c2;
  c2.machines = m;
  c2.local_memory_bits = chase.required_local_memory();  // ~ S/m
  c2.query_budget = 1 << 20;
  c2.max_rounds = 100000;
  mpc::MpcSimulation sim2(c2, oracle2);
  auto r_chase = sim2.run(chase, chase.make_initial_memory(input));
  ASSERT_TRUE(r_chase.completed);
  EXPECT_EQ(r_chase.output, r_full.output);
  EXPECT_GT(r_chase.rounds_used, 50u);
}

/// The transcript machinery reproduces the proof's |Q ∩ C| bookkeeping: an
/// honest run's queries hit every correct entry exactly once, in order.
TEST(Integration, TranscriptCoversCorrectChainExactly) {
  LineParams p = LineParams::make(64, 16, 8, 64);
  auto oracle = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, 31);
  util::Rng rng(8);
  core::LineInput input = core::LineInput::random(p, rng);
  core::LineChain chain = core::LineFunction(p).evaluate_chain(*oracle, input);

  const std::uint64_t m = 2;
  strategies::PointerChasingStrategy strat(p, strategies::OwnershipPlan::round_robin(p, m));
  mpc::MpcConfig c;
  c.machines = m;
  c.local_memory_bits = strat.required_local_memory();
  c.query_budget = 1 << 20;
  c.max_rounds = 10000;
  mpc::MpcSimulation sim(c, oracle);
  auto result = sim.run(strat, strat.make_initial_memory(input));
  ASSERT_TRUE(result.completed);

  auto all_queries = result.transcript->queries_up_to(result.rounds_used);
  auto correct = chain.all_correct_queries();
  EXPECT_EQ(result.transcript->intersect_count(all_queries, correct), p.w);
  EXPECT_EQ(all_queries.size(), p.w);  // honest: every query is a chain query
}

/// Average-case correctness semantics (Definition 2.5): across random
/// (oracle, input) pairs the strategy computes f with empirical probability
/// ~1 (far above the 1/3 the definition requires).
TEST(Integration, AverageCaseCorrectness) {
  LineParams p = LineParams::make(64, 16, 8, 32);
  int successes = 0;
  const int kTrials = 10;
  for (int t = 0; t < kTrials; ++t) {
    auto oracle = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, 1000 + t);
    util::Rng rng(2000 + t);
    core::LineInput input = core::LineInput::random(p, rng);
    util::BitString expected = core::LineFunction(p).evaluate(*oracle, input);
    const std::uint64_t m = 4;
    strategies::PointerChasingStrategy strat(p, strategies::OwnershipPlan::round_robin(p, m));
    mpc::MpcConfig c;
    c.machines = m;
    c.local_memory_bits = strat.required_local_memory();
    c.query_budget = 1 << 20;
    c.max_rounds = 10000;
    mpc::MpcSimulation sim(c, oracle);
    auto result = sim.run(strat, strat.make_initial_memory(input));
    if (result.completed && result.output == expected) ++successes;
  }
  EXPECT_EQ(successes, kTrials);
}

}  // namespace
}  // namespace mpch
