#include "strategies/ram_emulation.hpp"

#include <gtest/gtest.h>

#include "ram/machine.hpp"
#include "ram/programs.hpp"

namespace mpch::strategies {
namespace {

using namespace ram::asm_ops;

mpc::MpcRunResult run_emulated(const std::vector<ram::Instruction>& prog,
                               const std::vector<std::uint64_t>& memory, std::uint64_t machines,
                               std::uint64_t steps_per_round, RamEmulationStrategy** out_strat,
                               std::unique_ptr<RamEmulationStrategy>& holder) {
  holder = std::make_unique<RamEmulationStrategy>(prog, machines, steps_per_round);
  if (out_strat != nullptr) *out_strat = holder.get();
  mpc::MpcConfig c;
  c.machines = machines;
  c.local_memory_bits = holder->required_local_memory(memory.size());
  c.query_budget = 1;
  c.max_rounds = 1 << 20;
  mpc::MpcSimulation sim(c, nullptr);
  return sim.run(*holder, holder->make_initial_memory(memory));
}

TEST(RamEmulation, MatchesNativeExecutionOnSum) {
  std::vector<std::uint64_t> memory = {3, 1, 4, 1, 5, 9, 2, 6};
  auto prog = ram::programs::sum(memory.size());

  ram::RamMachine native(prog, memory);
  native.run();

  std::unique_ptr<RamEmulationStrategy> holder;
  auto result = run_emulated(prog, memory, 4, 1, nullptr, holder);
  ASSERT_TRUE(result.completed);
  ram::RamState final_state = RamEmulationStrategy::parse_output(result.output);
  EXPECT_TRUE(final_state == native.state());
  EXPECT_EQ(final_state.regs[0], 31u);
}

TEST(RamEmulation, StoresVisibleToLaterLoads) {
  std::vector<std::uint64_t> memory = {1, 2, 3, 4, 5, 6};
  auto prog = ram::programs::reverse(memory.size());

  ram::RamMachine native(prog, memory);
  native.run();

  std::unique_ptr<RamEmulationStrategy> holder;
  auto result = run_emulated(prog, memory, 3, 1, nullptr, holder);
  ASSERT_TRUE(result.completed);
  ram::RamState final_state = RamEmulationStrategy::parse_output(result.output);
  EXPECT_TRUE(final_state == native.state());
}

TEST(RamEmulation, RoundsScaleWithInstructionCountAtOneStepPerRound) {
  // "an MPC algorithm can compute the function in T rounds by emulating the
  // RAM computation step by step": rounds within a small constant of steps.
  for (std::uint64_t n : {4, 8, 16}) {
    std::vector<std::uint64_t> memory(n, 1);
    auto prog = ram::programs::sum(n);
    ram::RamMachine native(prog, memory);
    native.run();
    std::uint64_t steps = native.steps_executed();

    std::unique_ptr<RamEmulationStrategy> holder;
    auto result = run_emulated(prog, memory, 4, 1, nullptr, holder);
    ASSERT_TRUE(result.completed) << n;
    EXPECT_GE(result.rounds_used, steps);          // at least one round per step
    EXPECT_LE(result.rounds_used, 3 * steps + 4);  // loads cost extra round-trips
  }
}

TEST(RamEmulation, UnboundedStepsPerRoundCollapsesToLoadCount) {
  const std::uint64_t n = 16;
  std::vector<std::uint64_t> memory(n, 2);
  auto prog = ram::programs::sum(n);

  std::unique_ptr<RamEmulationStrategy> holder;
  auto result = run_emulated(prog, memory, 4, 0, nullptr, holder);
  ASSERT_TRUE(result.completed);
  // n loads, each costing ~3 rounds of round trip; far below total steps.
  EXPECT_LE(result.rounds_used, 3 * n + 4);
  EXPECT_EQ(RamEmulationStrategy::parse_output(result.output).regs[0], 2 * n);
}

TEST(RamEmulation, CpuMemoryFootprintIsLogarithmic) {
  // The CPU carries O(1) words regardless of RAM size — the "O(log S) local
  // memory" part of the paper's remark. Verify the strategy's CPU share of
  // required memory does not grow with memory_words.
  RamEmulationStrategy strat(ram::programs::sum(4), 9, 1);
  // With more servers, per-server share shrinks; CPU cost is the floor.
  std::uint64_t small = strat.required_local_memory(8);
  std::uint64_t big = strat.required_local_memory(8000);
  EXPECT_GT(big, small);  // server share grows...
  RamEmulationStrategy many_servers(ram::programs::sum(4), 801, 1);
  // ...but with enough servers the bound approaches the constant CPU state.
  EXPECT_LT(many_servers.required_local_memory(8000), small * 4);
}

TEST(RamEmulation, NeedsTwoMachines) {
  EXPECT_THROW(RamEmulationStrategy(ram::programs::sum(2), 1, 1), std::invalid_argument);
}

TEST(RamEmulation, ProgramWithNoMemoryOps) {
  std::vector<ram::Instruction> prog = {loadi(0, 5), loadi(1, 7), mul(2, 0, 1), halt()};
  std::unique_ptr<RamEmulationStrategy> holder;
  auto result = run_emulated(prog, {}, 2, 1, nullptr, holder);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(RamEmulationStrategy::parse_output(result.output).regs[2], 35u);
  EXPECT_EQ(result.rounds_used, 4u);  // one instruction per round
}

}  // namespace
}  // namespace mpch::strategies
