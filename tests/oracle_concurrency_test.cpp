// oracle_concurrency_test.cpp — the oracle substrate under raw std::thread
// hammering (no simulation harness in the loop).
//
// The parallel round path rests on three properties proven here in
// isolation: (1) LazyRandomOracle's memo is interleaving-independent — the
// materialised sub-function after a concurrent storm equals a serial replay
// of the same query set, and total_queries() is exact; (2) per-machine
// CountingOracles over one shared RO + one shared transcript preserve exact
// per-machine seq numbering, so sort_canonical() reconstructs the serial
// transcript; (3) budget overruns throw deterministically at the same query
// index regardless of what other threads are doing.
#include "hash/oracle_transcript.hpp"
#include "hash/random_oracle.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace mpch::hash {
namespace {

using util::BitString;

constexpr std::size_t kBits = 20;
constexpr std::size_t kThreads = 8;

TEST(OracleConcurrency, LazyMemoMatchesSerialReplay) {
  LazyRandomOracle concurrent(kBits, kBits, 42);

  // Each thread queries an overlapping window of inputs, several times, so
  // the same key races across threads and shards.
  const std::uint64_t kDistinct = 512;
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&concurrent, t] {
      for (int pass = 0; pass < 3; ++pass) {
        for (std::uint64_t v = t * 32; v < t * 32 + kDistinct; ++v) {
          concurrent.query(BitString::from_uint(v % kDistinct, kBits));
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  LazyRandomOracle serial(kBits, kBits, 42);
  for (std::uint64_t v = 0; v < kDistinct; ++v) {
    serial.query(BitString::from_uint(v, kBits));
  }

  EXPECT_EQ(concurrent.total_queries(), kThreads * 3 * kDistinct);
  EXPECT_EQ(concurrent.touched_entries(), serial.touched_entries());
  auto ct = concurrent.touched_table();
  auto st = serial.touched_table();
  ASSERT_EQ(ct.size(), st.size());
  for (std::size_t i = 0; i < ct.size(); ++i) {
    EXPECT_EQ(ct[i].first, st[i].first) << i;
    EXPECT_EQ(ct[i].second, st[i].second) << i;
  }
}

TEST(OracleConcurrency, CountingOraclesRebuildSerialTranscript) {
  auto inner = std::make_shared<LazyRandomOracle>(kBits, kBits, 7);
  auto transcript = std::make_shared<OracleTranscript>();
  const std::uint64_t kMachines = kThreads;
  const std::uint64_t kPerRound = 64;
  const std::uint64_t kRounds = 3;

  std::vector<std::unique_ptr<CountingOracle>> oracles;
  for (std::uint64_t m = 0; m < kMachines; ++m) {
    oracles.push_back(std::make_unique<CountingOracle>(inner, m, kPerRound, transcript));
  }

  // Round structure mirrors the simulation: begin_round on all machines,
  // then one thread per machine issuing its round's queries concurrently.
  for (std::uint64_t round = 0; round < kRounds; ++round) {
    for (auto& o : oracles) o->begin_round(round);
    std::vector<std::thread> threads;
    for (std::uint64_t m = 0; m < kMachines; ++m) {
      threads.emplace_back([&, m] {
        for (std::uint64_t q = 0; q < kPerRound; ++q) {
          // Overlapping inputs across machines: the shared memo races too.
          oracles[m]->query(BitString::from_uint((m * 17 + q * 3 + round) % 256, kBits));
        }
      });
    }
    for (auto& th : threads) th.join();
  }
  transcript->sort_canonical();

  // Serial replay with the same per-machine query program.
  auto inner2 = std::make_shared<LazyRandomOracle>(kBits, kBits, 7);
  auto expected = std::make_shared<OracleTranscript>();
  std::vector<std::unique_ptr<CountingOracle>> serial;
  for (std::uint64_t m = 0; m < kMachines; ++m) {
    serial.push_back(std::make_unique<CountingOracle>(inner2, m, kPerRound, expected));
  }
  for (std::uint64_t round = 0; round < kRounds; ++round) {
    for (std::uint64_t m = 0; m < kMachines; ++m) {
      serial[m]->begin_round(round);
      for (std::uint64_t q = 0; q < kPerRound; ++q) {
        serial[m]->query(BitString::from_uint((m * 17 + q * 3 + round) % 256, kBits));
      }
    }
  }

  EXPECT_EQ(inner->total_queries(), kMachines * kPerRound * kRounds);
  ASSERT_EQ(transcript->size(), expected->size());
  const auto& got = transcript->records();
  const auto& want = expected->records();
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].round, want[i].round) << i;
    EXPECT_EQ(got[i].machine, want[i].machine) << i;
    EXPECT_EQ(got[i].seq, want[i].seq) << i;
    EXPECT_EQ(got[i].input, want[i].input) << i;
    EXPECT_EQ(got[i].output, want[i].output) << i;
  }
  // Per-machine totals survive the concurrency.
  for (std::uint64_t m = 0; m < kMachines; ++m) {
    EXPECT_EQ(oracles[m]->total_queries(), kPerRound * kRounds) << m;
  }
}

TEST(OracleConcurrency, BudgetOverrunsThrowDeterministicallyPerThread) {
  auto inner = std::make_shared<LazyRandomOracle>(kBits, kBits, 13);
  const std::uint64_t kBudget = 10;
  const std::uint64_t kAttempts = 25;

  std::vector<std::unique_ptr<CountingOracle>> oracles;
  for (std::uint64_t m = 0; m < kThreads; ++m) {
    oracles.push_back(std::make_unique<CountingOracle>(inner, m, kBudget, nullptr));
    oracles.back()->begin_round(0);
  }

  std::vector<std::uint64_t> succeeded(kThreads, 0);
  std::vector<int> threw(kThreads, 0);
  std::vector<std::thread> threads;
  for (std::uint64_t m = 0; m < kThreads; ++m) {
    threads.emplace_back([&, m] {
      for (std::uint64_t q = 0; q < kAttempts; ++q) {
        try {
          oracles[m]->query(BitString::from_uint(m * 1000 + q, kBits));
          ++succeeded[m];
        } catch (const QueryBudgetExceeded&) {
          ++threw[m];
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  // Every machine gets *exactly* its budget through, then throws on every
  // further attempt — no lost updates, no over-admission, on any thread.
  for (std::uint64_t m = 0; m < kThreads; ++m) {
    EXPECT_EQ(succeeded[m], kBudget) << m;
    EXPECT_EQ(threw[m], static_cast<int>(kAttempts - kBudget)) << m;
    EXPECT_EQ(oracles[m]->queries_this_round(), kBudget) << m;
    EXPECT_EQ(oracles[m]->remaining_budget(), 0u) << m;
  }
  EXPECT_EQ(inner->total_queries(), kThreads * kBudget);
}

TEST(OracleConcurrency, Sha256CounterIsExactUnderThreads) {
  Sha256Oracle oracle(kBits, kBits);
  std::vector<std::thread> threads;
  const std::uint64_t kEach = 200;
  for (std::size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&oracle, t] {
      for (std::uint64_t q = 0; q < kEach; ++q) {
        oracle.query(BitString::from_uint(t * kEach + q, kBits));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(oracle.total_queries(), kThreads * kEach);
}

}  // namespace
}  // namespace mpch::hash
