#include "mpc/simulation.hpp"

#include <gtest/gtest.h>

#include <iterator>
#include <utility>

#include "hash/random_oracle.hpp"
#include "util/serialize.hpp"

namespace mpch::mpc {
namespace {

using util::BitString;

/// Plain-model test algorithm: pass a token around the ring once, then the
/// origin outputs the hop count.
class RingAlgorithm final : public MpcAlgorithm {
 public:
  explicit RingAlgorithm(std::uint64_t machines) : machines_(machines) {}

  void run_machine(MachineIo& io, hash::CountingOracle*, const SharedTape&,
                   RoundTrace&) override {
    for (const auto& msg : *io.inbox) {
      util::BitReader r(msg.payload);
      std::uint64_t hops = r.read_uint(16);
      if (hops >= machines_) {
        io.output = BitString::from_uint(hops, 16);
        return;
      }
      util::BitWriter w;
      w.write_uint(hops + 1, 16);
      io.send((io.machine + 1) % machines_, w.take());
    }
  }

  std::string name() const override { return "ring"; }

 private:
  std::uint64_t machines_;
};

/// Algorithm that tries to flood one machine past its memory cap.
class FloodAlgorithm final : public MpcAlgorithm {
 public:
  explicit FloodAlgorithm(std::uint64_t bits) : bits_(bits) {}
  void run_machine(MachineIo& io, hash::CountingOracle*, const SharedTape&,
                   RoundTrace&) override {
    if (io.round == 0 && io.machine == 0) io.send(0, BitString(bits_));
  }
  std::string name() const override { return "flood"; }

 private:
  std::uint64_t bits_;
};

/// Algorithm that queries the oracle more than q times in a round.
class GreedyQueryAlgorithm final : public MpcAlgorithm {
 public:
  void run_machine(MachineIo& io, hash::CountingOracle* oracle, const SharedTape&,
                   RoundTrace&) override {
    if (io.machine != 0 || io.round != 0) return;
    for (int i = 0; i < 100; ++i) oracle->query(BitString::from_uint(i, 16));
    io.output = BitString(1);
  }
  std::string name() const override { return "greedy"; }
};

MpcConfig config(std::uint64_t m, std::uint64_t s, std::uint64_t q) {
  MpcConfig c;
  c.machines = m;
  c.local_memory_bits = s;
  c.query_budget = q;
  c.max_rounds = 100;
  c.tape_seed = 1;
  return c;
}

TEST(MpcSimulation, RingCompletesInMRounds) {
  const std::uint64_t m = 5;
  MpcSimulation sim(config(m, 1024, 1), nullptr);
  RingAlgorithm algo(m);
  util::BitWriter w;
  w.write_uint(0, 16);
  MpcRunResult result = sim.run(algo, {w.take()});
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.rounds_used, m + 1);  // m hops + the output round
  EXPECT_EQ(result.output.get_uint(0, 16), m);
}

TEST(MpcSimulation, TraceCountsMessagesAndBits) {
  const std::uint64_t m = 3;
  MpcSimulation sim(config(m, 1024, 1), nullptr);
  RingAlgorithm algo(m);
  util::BitWriter w;
  w.write_uint(0, 16);
  MpcRunResult result = sim.run(algo, {w.take()});
  // Rounds 0..m-1 each carry one 16-bit message; the final round none.
  std::uint64_t total_msgs = 0;
  for (const auto& r : result.trace.rounds()) total_msgs += r.messages;
  EXPECT_EQ(total_msgs, m);
  EXPECT_EQ(result.trace.total_communicated_bits(), m * 16);
}

TEST(MpcSimulation, EnforcesInboxCapacity) {
  MpcSimulation sim(config(4, 64, 1), nullptr);
  FloodAlgorithm algo(65);  // one bit over the cap
  EXPECT_THROW(sim.run(algo, {BitString(1)}), MemoryViolation);
}

TEST(MpcSimulation, ExactCapacityAllowed) {
  MpcSimulation sim(config(4, 64, 1), nullptr);
  FloodAlgorithm algo(64);
  EXPECT_NO_THROW(sim.run(algo, {BitString(1)}));
}

TEST(MpcSimulation, RejectsOversizedInputShare) {
  MpcSimulation sim(config(2, 32, 1), nullptr);
  RingAlgorithm algo(2);
  EXPECT_THROW(sim.run(algo, {BitString(33)}), MemoryViolation);
}

TEST(MpcSimulation, RejectsTooManyShares) {
  MpcSimulation sim(config(2, 32, 1), nullptr);
  RingAlgorithm algo(2);
  std::vector<BitString> shares(3, BitString(1));
  EXPECT_THROW(sim.run(algo, shares), std::invalid_argument);
}

TEST(MpcSimulation, EnforcesQueryBudget) {
  auto oracle = std::make_shared<hash::LazyRandomOracle>(16, 16, 5);
  MpcSimulation sim(config(2, 128, 10), oracle);
  GreedyQueryAlgorithm algo;
  EXPECT_THROW(sim.run(algo, {BitString(1)}), hash::QueryBudgetExceeded);
}

TEST(MpcSimulation, QueryBudgetSufficientSucceeds) {
  auto oracle = std::make_shared<hash::LazyRandomOracle>(16, 16, 5);
  MpcSimulation sim(config(2, 128, 100), oracle);
  GreedyQueryAlgorithm algo;
  MpcRunResult result = sim.run(algo, {BitString(1)});
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.transcript->size(), 100u);
  EXPECT_EQ(result.trace.rounds()[0].oracle_queries, 100u);
}

TEST(MpcSimulation, StopsAtMaxRoundsWithoutOutput) {
  MpcConfig c = config(2, 64, 1);
  c.max_rounds = 7;
  MpcSimulation sim(c, nullptr);

  class ForeverAlgorithm final : public MpcAlgorithm {
   public:
    void run_machine(MachineIo& io, hash::CountingOracle*, const SharedTape&,
                     RoundTrace&) override {
      io.send(io.machine, BitString(8));
    }
    std::string name() const override { return "forever"; }
  } algo;

  MpcRunResult result = sim.run(algo, {BitString(1)});
  EXPECT_FALSE(result.completed);
  EXPECT_EQ(result.rounds_used, 7u);
}

TEST(MpcSimulation, RejectsMessageToNonexistentMachine) {
  MpcSimulation sim(config(2, 64, 1), nullptr);
  class BadTarget final : public MpcAlgorithm {
   public:
    void run_machine(MachineIo& io, hash::CountingOracle*, const SharedTape&,
                     RoundTrace&) override {
      if (io.round == 1 && io.machine == 1) io.send(5, BitString(1));
      io.send(io.machine, BitString(1));
    }
    std::string name() const override { return "bad-target"; }
  } algo;
  try {
    sim.run(algo, {BitString(1), BitString(1)});
    FAIL() << "expected RoutingViolation";
  } catch (const RoutingViolation& e) {
    // Provenance: the diagnostic names the sender, the destination, and the
    // round in which the bad send happened.
    std::string what = e.what();
    EXPECT_NE(what.find("machine 1"), std::string::npos) << what;
    EXPECT_NE(what.find("machine 5"), std::string::npos) << what;
    EXPECT_NE(what.find("round 1"), std::string::npos) << what;
  }
}

TEST(MpcSimulation, RoutingViolationRaisedEvenForDirectOutboxWrites) {
  // Outbox entries pushed without going through send() are caught by the
  // merge-time backstop with the same exception type.
  MpcSimulation sim(config(2, 64, 1), nullptr);
  class RawOutbox final : public MpcAlgorithm {
   public:
    void run_machine(MachineIo& io, hash::CountingOracle*, const SharedTape&,
                     RoundTrace&) override {
      if (io.round == 0 && io.machine == 0) io.outbox.push_back({0, 9, BitString(1)});
    }
    std::string name() const override { return "raw-outbox"; }
  } algo;
  EXPECT_THROW(sim.run(algo, {BitString(1)}), RoutingViolation);
}

TEST(MpcSimulation, SharedTapeIsCommonAndDeterministic) {
  SharedTape t1(99), t2(99), t3(100);
  EXPECT_EQ(t1.word(0), t2.word(0));
  EXPECT_EQ(t1.word(12345), t2.word(12345));
  EXPECT_NE(t1.word(0), t3.word(0));
  // bits() agrees with bit().
  util::BitString bits = t1.bits(100, 64);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(bits.get(i), t1.bit(100 + i));
}

TEST(MpcSimulation, ConfigValidation) {
  EXPECT_THROW(MpcSimulation(config(0, 64, 1), nullptr), std::invalid_argument);
  EXPECT_THROW(MpcSimulation(config(2, 0, 1), nullptr), std::invalid_argument);
}

TEST(PartitionBlocksRoundRobin, SpreadsBlocks) {
  std::vector<BitString> blocks = {BitString(8), BitString(8), BitString(8), BitString(8),
                                   BitString(8)};
  auto shares = partition_blocks_round_robin(blocks, 2);
  ASSERT_EQ(shares.size(), 2u);
  EXPECT_EQ(shares[0].size(), 24u);  // 3 blocks
  EXPECT_EQ(shares[1].size(), 16u);  // 2 blocks
}

TEST(PartitionBlocksRoundRobin, ZeroMachinesThrows) {
  std::vector<BitString> blocks = {BitString(8)};
  EXPECT_THROW(partition_blocks_round_robin(blocks, 0), std::invalid_argument);
  // Zero machines is rejected even with nothing to distribute.
  EXPECT_THROW(partition_blocks_round_robin({}, 0), std::invalid_argument);
}

TEST(PartitionBlocksRoundRobin, MoreMachinesThanBlocks) {
  std::vector<BitString> blocks = {BitString(8), BitString(8)};
  auto shares = partition_blocks_round_robin(blocks, 5);
  ASSERT_EQ(shares.size(), 5u);
  EXPECT_EQ(shares[0].size(), 8u);
  EXPECT_EQ(shares[1].size(), 8u);
  for (std::size_t j = 2; j < 5; ++j) EXPECT_EQ(shares[j].size(), 0u);
}

TEST(PartitionBlocksRoundRobin, NoBlocksYieldsEmptyShares) {
  auto shares = partition_blocks_round_robin({}, 3);
  ASSERT_EQ(shares.size(), 3u);
  for (const auto& s : shares) EXPECT_EQ(s.size(), 0u);
}

TEST(PartitionBlocksRoundRobin, ShareExceedingSIsRejectedAtRunTime) {
  // The partition itself is size-agnostic; the simulation's input check is
  // what rejects a share that outgrows s. 3 blocks of 16 bits on 1 machine
  // = 48 bits > s = 32.
  std::vector<BitString> blocks = {BitString(16), BitString(16), BitString(16)};
  auto shares = partition_blocks_round_robin(blocks, 1);
  ASSERT_EQ(shares.size(), 1u);
  EXPECT_EQ(shares[0].size(), 48u);
  MpcSimulation sim(config(1, 32, 1), nullptr);
  RingAlgorithm algo(1);
  EXPECT_THROW(sim.run(algo, shares), MemoryViolation);
}

TEST(Peak, TieGoesToTheLowestMachineIndex) {
  Peak p;
  p.observe(5, 3);
  EXPECT_EQ(p.machine, 3u);
  p.observe(5, 1);  // equal value, lower index: the witness moves
  EXPECT_EQ(p.value, 5u);
  EXPECT_EQ(p.machine, 1u);
  p.observe(5, 2);  // equal value, higher index: the witness stays
  EXPECT_EQ(p.machine, 1u);
  p.observe(4, 0);  // smaller value never wins
  EXPECT_EQ(p.value, 5u);
  EXPECT_EQ(p.machine, 1u);
  p.observe(6, 2);
  EXPECT_EQ(p.value, 6u);
  EXPECT_EQ(p.machine, 2u);
}

TEST(Peak, WitnessIsObservationOrderIndependent) {
  // The same multiset of (value, machine) observations must name the same
  // witness in any order — serial sweeps, parallel merges, and resumed
  // replays all agree.
  const std::pair<std::uint64_t, std::uint64_t> obs[] = {{7, 2}, {7, 0}, {3, 1}, {7, 3}};
  Peak forward;
  for (const auto& [v, m] : obs) forward.observe(v, m);
  Peak backward;
  for (auto it = std::rbegin(obs); it != std::rend(obs); ++it) {
    backward.observe(it->first, it->second);
  }
  EXPECT_EQ(forward, backward);
  EXPECT_EQ(forward.value, 7u);
  EXPECT_EQ(forward.machine, 0u);

  // merge() follows the same rule: merging per-machine peaks in any grouping
  // names the lowest-index machine among the maxima.
  Peak left, right;
  left.observe(7, 2);
  right.observe(7, 0);
  Peak merged_lr = left;
  merged_lr.merge(right);
  Peak merged_rl = right;
  merged_rl.merge(left);
  EXPECT_EQ(merged_lr, merged_rl);
  EXPECT_EQ(merged_lr.machine, 0u);
}

TEST(MpcSimulation, MemoryViolationProvenanceTextIsStable) {
  // Recovery tooling and CI greps key off these diagnostics; pin the exact
  // wording of both MemoryViolation sites.
  MpcSimulation sim(config(2, 64, 1), nullptr);
  FloodAlgorithm algo(100);  // machine 0 sends itself 100 bits > s=64
  try {
    sim.run(algo, {BitString(1), BitString(1)});
    FAIL() << "expected MemoryViolation";
  } catch (const MemoryViolation& e) {
    EXPECT_STREQ(e.what(), "machine 0 would receive 100 bits > s=64 after round 0");
  }

  MpcSimulation sim2(config(2, 64, 1), nullptr);
  RingAlgorithm ring(2);
  try {
    sim2.run(ring, {BitString(80)});
    FAIL() << "expected MemoryViolation";
  } catch (const MemoryViolation& e) {
    EXPECT_STREQ(e.what(), "input share for machine 0 has 80 bits > s=64");
  }
}

TEST(MpcSimulation, RoutingViolationProvenanceTextIsStable) {
  // Both detection sites — send()'s eager check and the merge-time backstop
  // for direct outbox writes — must produce the identical diagnostic.
  class BadSend final : public MpcAlgorithm {
   public:
    explicit BadSend(bool direct) : direct_(direct) {}
    void run_machine(MachineIo& io, hash::CountingOracle*, const SharedTape&,
                     RoundTrace&) override {
      if (io.machine != 1 || io.round != 0) return;
      if (direct_) {
        io.outbox.push_back({1, 7, BitString(1)});
      } else {
        io.send(7, BitString(1));
      }
    }
    std::string name() const override { return "bad-send"; }

   private:
    bool direct_;
  };
  for (bool direct : {false, true}) {
    MpcSimulation sim(config(2, 64, 1), nullptr);
    BadSend algo(direct);
    try {
      sim.run(algo, {BitString(1), BitString(1)});
      FAIL() << "expected RoutingViolation (direct=" << direct << ")";
    } catch (const RoutingViolation& e) {
      EXPECT_STREQ(e.what(), "machine 1 sent a message to machine 7 >= m=2 in round 0") << direct;
    }
  }
}

TEST(MpcSimulation, ParallelRingMatchesSerial) {
  const std::uint64_t m = 5;
  MpcConfig c = config(m, 1024, 1);
  c.threads = 4;
  MpcSimulation sim(c, nullptr);
  RingAlgorithm algo(m);
  util::BitWriter w;
  w.write_uint(0, 16);
  MpcRunResult result = sim.run(algo, {w.take()});
  EXPECT_TRUE(result.completed);
  EXPECT_EQ(result.rounds_used, m + 1);
  EXPECT_EQ(result.output.get_uint(0, 16), m);
}

}  // namespace
}  // namespace mpch::mpc
