#include "theory/bounds.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace mpch::theory {
namespace {

core::LineParams paperish_params() {
  // A regime where the Lemma 3.6 precondition genuinely holds:
  // u = 4096 >> (log²w + 2)·log v + log q = (100+2)·4 + 10 = 418.
  return core::LineParams::make(3 * 4096 + 64, 4096, 16, 1024);
}

MpcBoundParams mp(std::uint64_t m, std::uint64_t q, std::uint64_t s) {
  MpcBoundParams p;
  p.m = m;
  p.q = q;
  p.s = s;
  return p;
}

TEST(Lemma33, MatchesDirectFormulaAtSmallParams) {
  core::LineParams p = core::LineParams::make(64, 16, 4, 4);
  MpcBoundParams b = mp(2, 8, 32);
  // log2(w · v^{log²w} · (k+1)·m·q·2^{-u}) with w=4: log²w = 4.
  long double expected = std::log2(4.0L) + 4.0L * std::log2(4.0L) + std::log2(3.0L) +
                         std::log2(2.0L) + std::log2(8.0L) - 16.0L;
  EXPECT_NEAR(static_cast<double>(lemma33_log2_prob(p, b, 2)), static_cast<double>(expected),
              1e-9);
}

TEST(Lemma33, MonotoneInRoundsAndMachines) {
  core::LineParams p = paperish_params();
  MpcBoundParams b = mp(16, 1024, 1 << 14);
  EXPECT_LT(lemma33_log2_prob(p, b, 1), lemma33_log2_prob(p, b, 10));
  MpcBoundParams more_machines = mp(64, 1024, 1 << 14);
  EXPECT_LT(lemma33_log2_prob(p, b, 1), lemma33_log2_prob(p, more_machines, 1));
}

TEST(Lemma33, ClampedAtProbabilityOne) {
  // Tiny u makes the bound vacuous: clamp to 0 (= probability 1).
  core::LineParams p = core::LineParams::make(28, 4, 8, 64);
  EXPECT_EQ(static_cast<double>(lemma33_log2_prob(p, mp(64, 1024, 64), 10)), 0.0);
}

TEST(Lemma36, DenominatorAndH) {
  core::LineParams p = paperish_params();
  MpcBoundParams b = mp(16, 1024, 1 << 14);
  long double denom = lemma36_denominator(p, b);
  EXPECT_GT(denom, 0.0L);
  long double h = lemma36_h(p, b);
  EXPECT_NEAR(static_cast<double>(h), static_cast<double>(b.s) / static_cast<double>(denom) + 1.0,
              1e-6);
  // Probability bound = 2^{-denominator}.
  EXPECT_NEAR(static_cast<double>(lemma36_log2_prob(p, b)), -static_cast<double>(denom), 1e-9);
}

TEST(Lemma36, VacuousWhenPreconditionFails) {
  core::LineParams p = core::LineParams::make(28, 4, 8, 1024);
  MpcBoundParams b = mp(4, 1024, 64);
  EXPECT_GT(lemma36_h(p, b), static_cast<long double>(p.v));
  EXPECT_EQ(static_cast<double>(lemma36_log2_prob(p, b)), 0.0);
}

TEST(Claim39, BetweenComponentBounds) {
  core::LineParams p = paperish_params();
  MpcBoundParams b = mp(16, 1024, 1 << 14);
  long double total = claim39_log2_prob(p, b, 5);
  // The union bound exceeds each individual term.
  EXPECT_GE(total, lemma36_log2_prob(p, b) + std::log2(6.0L) + std::log2(16.0L) - 1e-9);
  EXPECT_LE(total, 0.0L);
}

TEST(Lemma32, RoundLowerBound) {
  core::LineParams p = paperish_params();  // w = 1024, log²w = 100
  EXPECT_NEAR(static_cast<double>(lemma32_round_lower_bound(p)), 1024.0 / 100.0, 1e-9);
}

TEST(Lemma32, SuccessProbabilityTinyInTheoremRegime) {
  core::LineParams p = paperish_params();
  MpcBoundParams b = mp(16, 1024, 1 << 14);
  // With u = 4096 and s = S/4 the dominating (h/v)^{log²w} term alone puts
  // the bound below 2^{-100}.
  EXPECT_LT(static_cast<double>(lemma32_success_log2_prob(p, b)), -100.0);
}

TEST(LemmaA2, HAndRoundBound) {
  core::LineParams p = core::LineParams::make(3 * 64 + 16, 64, 16, 4096);
  MpcBoundParams b = mp(8, 256, 512);
  // h = s/(u - log q - log v) + 1 = 512/(64-8-4)+1.
  long double h = lemmaA2_h(p, b);
  EXPECT_NEAR(static_cast<double>(h), 512.0 / 52.0 + 1.0, 1e-9);
  EXPECT_NEAR(static_cast<double>(lemmaA2_round_lower_bound(p, b)), 4096.0 / (512.0 / 52.0 + 1.0),
              1e-6);
}

TEST(LemmaA2, RoundBoundScalesLikeTOverS) {
  core::LineParams p = core::LineParams::make(3 * 64 + 16, 64, 16, 1 << 14);
  long double r_small_s = lemmaA2_round_lower_bound(p, mp(8, 256, 256));
  long double r_big_s = lemmaA2_round_lower_bound(p, mp(8, 256, 2048));
  EXPECT_GT(r_small_s, r_big_s);
  // Doubling w doubles the bound.
  core::LineParams p2 = core::LineParams::make(3 * 64 + 16, 64, 16, 1 << 15);
  EXPECT_NEAR(static_cast<double>(lemmaA2_round_lower_bound(p2, mp(8, 256, 256)) / r_small_s),
              2.0, 1e-9);
}

TEST(LemmaA3, ExponentLinearInAlpha) {
  core::LineParams p = core::LineParams::make(3 * 64 + 16, 64, 16, 4096);
  MpcBoundParams b = mp(8, 256, 100);
  long double lp1 = lemmaA3_log2_prob(p, b, 4.0L);
  long double lp2 = lemmaA3_log2_prob(p, b, 8.0L);
  // Each extra unit of α multiplies the bound by 2^{-(u - log q - log v)}.
  long double per_alpha = 64.0L - 8.0L - 4.0L;
  EXPECT_NEAR(static_cast<double>(lp1 - lp2), static_cast<double>(4.0L * per_alpha), 1e-6);
}

TEST(LemmaA7, IsExactlyMinusU) {
  core::LineParams p = core::LineParams::make(64, 16, 8, 64);
  EXPECT_EQ(static_cast<double>(lemmaA7_log2_prob(p)), -16.0);
}

TEST(ClaimA8, GrowsLinearlyInK) {
  core::LineParams p = core::LineParams::make(3 * 64 + 16, 64, 16, 4096);
  MpcBoundParams b = mp(8, 256, 512);
  long double k0 = claimA8_log2_prob(p, b, 0);
  long double k3 = claimA8_log2_prob(p, b, 3);
  EXPECT_NEAR(static_cast<double>(k3 - k0), std::log2(4.0), 1e-9);
}

TEST(EncodingBounds, ClaimA4AndClaim37Formulas) {
  core::LineParams p = core::LineParams::make(3 * 64 + 16, 64, 16, 1024);
  MpcBoundParams b = mp(8, 256, 512);
  long double table = 1000.0L;
  // α = 0: bound = s + v·u + table.
  EXPECT_NEAR(static_cast<double>(claimA4_encoding_bound_bits(p, b, 0.0L, table)),
              512.0 + 16.0 * 64.0 + 1000.0, 1e-6);
  // Every covered block trades u bits for (log q + log v).
  long double a0 = claimA4_encoding_bound_bits(p, b, 0.0L, table);
  long double a1 = claimA4_encoding_bound_bits(p, b, 1.0L, table);
  EXPECT_NEAR(static_cast<double>(a0 - a1), 64.0 - (8.0 + 4.0), 1e-6);
  // Claim 3.7 trades u for (log²w + 2)log v + log q per unit of h.
  long double c0 = claim37_encoding_bound_bits(p, b, 0.0L, table);
  long double c1 = claim37_encoding_bound_bits(p, b, 1.0L, table);
  long double log_w = std::log2(1024.0L);
  EXPECT_NEAR(static_cast<double>(c0 - c1),
              64.0 - static_cast<double>((log_w * log_w + 2.0L) * 4.0L + 8.0L), 1e-6);
}

TEST(EncodingBounds, InformationFloor) {
  core::LineParams p = core::LineParams::make(64, 16, 8, 64);
  // eps = 1: floor = table + uv - 1.
  EXPECT_NEAR(static_cast<double>(information_floor_bits(p, 500.0L, 0.0L)),
              500.0 + 128.0 - 1.0, 1e-9);
  // Smaller eps lowers the floor.
  EXPECT_LT(information_floor_bits(p, 500.0L, -10.0L), information_floor_bits(p, 500.0L, 0.0L));
}

TEST(PointerChasingModel, ExpectedRounds) {
  core::LineParams p = core::LineParams::make(64, 16, 8, 1001);
  EXPECT_NEAR(static_cast<double>(pointer_chasing_expected_rounds(p, 0.0L)), 1001.0, 1e-9);
  EXPECT_NEAR(static_cast<double>(pointer_chasing_expected_rounds(p, 0.5L)), 1.0 + 500.0, 1e-9);
  EXPECT_EQ(static_cast<double>(pointer_chasing_expected_rounds(p, 1.0L)), 1.0);
}

TEST(Consistency, Lemma32RoundBoundIndependentOfSAndNearLinearInW) {
  // The Line bound w/log²w does not degrade as s grows (only the success
  // probability side conditions do) — unlike the SimLine bound w/h, which
  // collapses as s -> S. That contrast is the paper's headline.
  core::LineParams p = paperish_params();
  EXPECT_EQ(static_cast<double>(lemma32_round_lower_bound(p)),
            static_cast<double>(lemma32_round_lower_bound(p)));
  MpcBoundParams small_s = mp(16, 1024, 1 << 10);
  MpcBoundParams big_s = mp(16, 1024, 1 << 18);
  EXPECT_GT(lemmaA2_round_lower_bound(p, small_s), lemmaA2_round_lower_bound(p, big_s));
  // Near-linear in w: a 16x larger w grows the bound by more than 8x, since
  // the log²w denominator grows only polylogarithmically.
  core::LineParams p16 = core::LineParams::make(p.n, p.u, p.v, p.w * 16);
  EXPECT_GT(lemma32_round_lower_bound(p16), 8.0L * lemma32_round_lower_bound(p));
}

}  // namespace
}  // namespace mpch::theory
