// transport_conformance_test.cpp — the cross-backend conformance matrix.
//
// MpcConfig::transport promises that how bytes move is invisible to the
// model: every backend must produce bit-identical results. This suite is the
// headline correctness artifact of the transport layer — each scenario
// builds a fresh (oracle, input, strategy) triple per seed, runs it once on
// the serial in-process reference, then across every backend × thread-count
// cell of the matrix (in-process, shared-memory, socket × threads {1, 2, 8},
// socket with 2/3/4 router processes to cover even, odd, and power-of-two
// binomial dissemination), and compares the *entire* observable result:
// output bits, rounds_used, every RoundStats field including the per-round
// peak stats, every trace annotation, the canonically-sorted oracle
// transcript, the touched table, and exact query counts. Authenticated runs
// and the chaos/recovery harness (checkpoint restart, Byzantine quarantine)
// ride the same matrix: RO-MAC tags cross a real wire on the socket backend
// and quarantine must still converge to the fault-free execution.
#include "transport/transport.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/line.hpp"
#include "fault/fault_plan.hpp"
#include "fault/recovery.hpp"
#include "hash/random_oracle.hpp"
#include "mpc/simulation.hpp"
#include "mpclib/primitives.hpp"
#include "ram/machine.hpp"
#include "ram/programs.hpp"
#include "strategies/batch_pointer_chasing.hpp"
#include "strategies/colluding.hpp"
#include "strategies/dictionary.hpp"
#include "strategies/full_memory.hpp"
#include "strategies/pipelined_simline.hpp"
#include "strategies/pointer_chasing.hpp"
#include "strategies/ram_emulation.hpp"
#include "strategies/speculative.hpp"
#include "transport/socket.hpp"
#include "util/rng.hpp"

namespace mpch {
namespace {

using util::BitString;
using transport::TransportKind;

constexpr std::uint64_t kSeeds[] = {11, 22, 33};

/// CI escape hatch: the socket backend fork()s router processes, which the
/// thread sanitizer does not support. Setting MPCH_SKIP_SOCKET_TRANSPORT=1
/// drops the socket cells from the matrix (and GTEST_SKIPs the socket-only
/// tests) so the rest of the suite still runs under TSan.
bool skip_socket_backend() {
  const char* v = std::getenv("MPCH_SKIP_SOCKET_TRANSPORT");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

/// One cell of the conformance matrix.
struct Backend {
  TransportKind kind = TransportKind::kInProcess;
  std::uint64_t threads = 0;
  std::uint64_t processes = 0;  ///< socket: router process count (0 = auto)

  std::string label() const {
    return transport::to_string(kind) + " threads=" + std::to_string(threads) +
           (processes != 0 ? " procs=" + std::to_string(processes) : "");
  }
};

/// The serial zero-copy reference every other cell is measured against.
constexpr Backend kReference{TransportKind::kInProcess, 0, 0};

const Backend kMatrix[] = {
    {TransportKind::kInProcess, 1, 0},    {TransportKind::kInProcess, 2, 0},
    {TransportKind::kInProcess, 8, 0},    {TransportKind::kSharedMemory, 1, 0},
    {TransportKind::kSharedMemory, 2, 0}, {TransportKind::kSharedMemory, 8, 0},
    {TransportKind::kSocket, 1, 2},       {TransportKind::kSocket, 2, 3},
    {TransportKind::kSocket, 8, 4},
};

struct Artifacts {
  bool completed = false;
  std::uint64_t rounds_used = 0;
  BitString output;
  std::vector<mpc::RoundStats> rounds;
  std::map<std::string, std::vector<std::uint64_t>> annotations;
  std::vector<hash::QueryRecord> records;
  std::vector<std::pair<BitString, BitString>> touched;
  std::uint64_t oracle_total = 0;
  std::uint64_t extra = 0;  ///< strategy-specific counter (e.g. lucky_escapes)
};

Artifacts extract(const mpc::MpcRunResult& result, const hash::LazyRandomOracle* oracle) {
  Artifacts a;
  a.completed = result.completed;
  a.rounds_used = result.rounds_used;
  a.output = result.output;
  a.rounds = result.trace.rounds();
  a.annotations = result.trace.annotations();
  a.records = result.transcript->records();
  if (oracle != nullptr) {
    a.touched = oracle->touched_table();
    a.oracle_total = oracle->total_queries();
  }
  return a;
}

void expect_identical(const Artifacts& reference, const Artifacts& candidate) {
  EXPECT_EQ(reference.completed, candidate.completed);
  EXPECT_EQ(reference.rounds_used, candidate.rounds_used);
  EXPECT_EQ(reference.output, candidate.output);
  EXPECT_EQ(reference.extra, candidate.extra);
  // RoundStats::operator== covers every field, including all per-round peak
  // stats (fan-in/out, message/sent/recv bits, memory, queries) with their
  // argmax machine indices — a transport that merged in a different order
  // or dropped/duplicated a byte shows up here.
  EXPECT_EQ(reference.rounds, candidate.rounds);
  EXPECT_EQ(reference.annotations, candidate.annotations);
  EXPECT_EQ(reference.records, candidate.records);
  EXPECT_EQ(reference.oracle_total, candidate.oracle_total);
  EXPECT_EQ(reference.touched, candidate.touched);
}

using Scenario = std::function<Artifacts(std::uint64_t seed, const Backend& backend)>;

void run_conformance(const Scenario& scenario) {
  for (std::uint64_t seed : kSeeds) {
    Artifacts reference = scenario(seed, kReference);
    for (const Backend& backend : kMatrix) {
      if (backend.kind == TransportKind::kSocket && skip_socket_backend()) continue;
      SCOPED_TRACE("seed=" + std::to_string(seed) + " " + backend.label());
      expect_identical(reference, scenario(seed, backend));
    }
  }
}

mpc::MpcConfig cfg(std::uint64_t m, std::uint64_t s, std::uint64_t q, const Backend& backend,
                   std::uint64_t max_rounds = 20000) {
  mpc::MpcConfig c;
  c.machines = m;
  c.local_memory_bits = s;
  c.query_budget = q;
  c.max_rounds = max_rounds;
  c.tape_seed = 5;
  c.threads = backend.threads;
  c.transport = backend.kind;
  c.transport_processes = backend.processes;
  return c;
}

TEST(TransportConformance, PointerChasing) {
  run_conformance([](std::uint64_t seed, const Backend& backend) {
    core::LineParams p = core::LineParams::make(64, 16, 8, 96);
    auto oracle = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, seed);
    util::Rng rng(seed + 1);
    core::LineInput input = core::LineInput::random(p, rng);
    strategies::PointerChasingStrategy strat(p, strategies::OwnershipPlan::round_robin(p, 4));
    mpc::MpcSimulation sim(cfg(4, strat.required_local_memory(), 1 << 20, backend), oracle);
    auto result = sim.run(strat, strat.make_initial_memory(input));
    EXPECT_TRUE(result.completed);
    return extract(result, oracle.get());
  });
}

TEST(TransportConformance, BatchPointerChasing) {
  run_conformance([](std::uint64_t seed, const Backend& backend) {
    core::LineParams p = core::LineParams::make(64, 16, 8, 128);
    auto oracle = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, seed);
    const std::uint64_t k = 4, m = 4;
    std::vector<core::LineInput> inputs;
    for (std::uint64_t i = 0; i < k; ++i) {
      util::Rng rng(seed * 100 + i);
      inputs.push_back(core::LineInput::random(p, rng));
    }
    strategies::BatchPointerChasingStrategy strat(p, strategies::OwnershipPlan::round_robin(p, m),
                                                  k);
    mpc::MpcSimulation sim(cfg(m, strat.required_local_memory(), 1 << 20, backend), oracle);
    auto result = sim.run(strat, strat.make_initial_memory(inputs));
    EXPECT_TRUE(result.completed);
    return extract(result, oracle.get());
  });
}

TEST(TransportConformance, SpeculativeEnumeration) {
  run_conformance([](std::uint64_t seed, const Backend& backend) {
    core::LineParams p = core::LineParams::make(3 * 4 + 16, 4, 8, 64);
    auto oracle = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, seed);
    util::Rng rng(seed * 3 + 7);
    core::LineInput input = core::LineInput::random(p, rng);
    strategies::SpeculativeStrategy strat(p, strategies::OwnershipPlan::round_robin(p, 4),
                                          {16, true}, input);
    mpc::MpcSimulation sim(cfg(4, strat.required_local_memory(), 1 << 20, backend), oracle);
    auto result = sim.run(strat, strat.make_initial_memory(input));
    EXPECT_TRUE(result.completed);
    Artifacts a = extract(result, oracle.get());
    a.extra = strat.lucky_escapes();
    return a;
  });
}

TEST(TransportConformance, PipelinedSimLine) {
  run_conformance([](std::uint64_t seed, const Backend& backend) {
    core::LineParams p = core::LineParams::make(64, 16, 16, 256);
    auto oracle = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, seed);
    util::Rng rng(seed + 2);
    core::LineInput input = core::LineInput::random(p, rng);
    strategies::PipelinedSimLineStrategy strat(p, strategies::OwnershipPlan::windows(p, 4, 4));
    mpc::MpcSimulation sim(cfg(4, strat.required_local_memory(), 1 << 20, backend), oracle);
    auto result = sim.run(strat, strat.make_initial_memory(input));
    EXPECT_TRUE(result.completed);
    return extract(result, oracle.get());
  });
}

TEST(TransportConformance, ColludingBroadcast) {
  run_conformance([](std::uint64_t seed, const Backend& backend) {
    core::LineParams p = core::LineParams::make(64, 16, 8, 96);
    auto oracle = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, seed);
    util::Rng rng(seed + 3);
    core::LineInput input = core::LineInput::random(p, rng);
    strategies::ColludingStrategy strat(p, strategies::OwnershipPlan::round_robin(p, 4));
    mpc::MpcSimulation sim(cfg(4, strat.required_local_memory(), 1 << 20, backend), oracle);
    auto result = sim.run(strat, strat.make_initial_memory(input));
    EXPECT_TRUE(result.completed);
    return extract(result, oracle.get());
  });
}

TEST(TransportConformance, Dictionary) {
  run_conformance([](std::uint64_t seed, const Backend& backend) {
    core::LineParams p = core::LineParams::make(64, 16, 32, 128);
    auto oracle = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, seed);
    util::Rng rng(seed + 4);
    core::LineInput input = strategies::make_low_entropy_input(p, 2, rng);
    strategies::DictionaryStrategy strat(p, 4);
    mpc::MpcSimulation sim(cfg(4, strat.gathered_bits(2), p.w + 1, backend, 10), oracle);
    auto result = sim.run(strat, strat.make_initial_memory(input));
    EXPECT_TRUE(result.completed);
    return extract(result, oracle.get());
  });
}

TEST(TransportConformance, FullMemory) {
  run_conformance([](std::uint64_t seed, const Backend& backend) {
    core::LineParams p = core::LineParams::make(64, 16, 8, 256);
    auto oracle = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, seed);
    util::Rng rng(seed + 5);
    core::LineInput input = core::LineInput::random(p, rng);
    strategies::FullMemoryStrategy strat(p, strategies::OwnershipPlan::round_robin(p, 4));
    mpc::MpcSimulation sim(cfg(4, strat.required_local_memory(), p.w + 1, backend, 10), oracle);
    auto result = sim.run(strat, strat.make_initial_memory(input));
    EXPECT_TRUE(result.completed);
    return extract(result, oracle.get());
  });
}

TEST(TransportConformance, RamEmulation) {
  run_conformance([](std::uint64_t seed, const Backend& backend) {
    const std::uint64_t n = 8;
    std::vector<std::uint64_t> memory(n);
    for (std::uint64_t i = 0; i < n; ++i) memory[i] = (seed * 7 + i * 3) % 97;
    std::vector<ram::Instruction> prog = ram::programs::sum(n);
    strategies::RamEmulationStrategy strat(prog, 4, 1);
    mpc::MpcConfig c = cfg(4, strat.required_local_memory(memory.size()), 1, backend, 1 << 20);
    mpc::MpcSimulation sim(c, nullptr);
    auto result = sim.run(strat, strat.make_initial_memory(memory));
    EXPECT_TRUE(result.completed);
    return extract(result, nullptr);
  });
}

TEST(TransportConformance, MpclibBroadcastCoalesces) {
  // BroadcastAlgorithm fans one identical payload out to many machines per
  // round — on the socket backend this is the broadcast-coalescing path: the
  // parent ships one kBroadcast frame and the routers replicate it along the
  // binomial tree. m = 16 over 3 and 4 router processes exercises both an
  // odd group count (dedup of dissemination duplicates) and a power of two.
  run_conformance([](std::uint64_t seed, const Backend& backend) {
    const std::uint64_t m = 16;
    mpclib::BroadcastAlgorithm algo(m, 2);
    mpc::MpcConfig c = cfg(m, 1 << 16, 1, backend, 200);
    c.tape_seed = seed;
    mpc::MpcSimulation sim(c, nullptr);
    auto result = sim.run(algo, {BitString::from_uint(0xBEEF ^ seed, 16)});
    EXPECT_TRUE(result.completed);
    return extract(result, nullptr);
  });
}

TEST(TransportConformance, AuthenticatedMessagingOverEveryBackend) {
  // RO-MAC tags ride inside the payloads; on the socket backend they cross a
  // real process boundary and must still verify at every barrier.
  run_conformance([](std::uint64_t seed, const Backend& backend) {
    core::LineParams p = core::LineParams::make(64, 16, 8, 96);
    auto oracle = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, seed);
    util::Rng rng(seed + 1);
    core::LineInput input = core::LineInput::random(p, rng);
    strategies::PointerChasingStrategy strat(p, strategies::OwnershipPlan::round_robin(p, 4));
    mpc::MpcConfig c = cfg(4, strat.required_local_memory() + (1 << 16), 1 << 20, backend);
    c.authenticate_messages = true;
    mpc::MpcSimulation sim(c, oracle);
    auto result = sim.run(strat, strat.make_initial_memory(input));
    EXPECT_TRUE(result.completed);
    return extract(result, oracle.get());
  });
}

// ---- chaos/recovery over the wire backends ----

struct ChaosScenario {
  mpc::MpcConfig config;
  std::shared_ptr<strategies::PointerChasingStrategy> strat;
  std::vector<BitString> initial;
  fault::ChaosHarness::OracleFactory oracle_factory;
};

ChaosScenario make_chaos_scenario(const Backend& backend, bool authenticate) {
  constexpr std::uint64_t kSeed = 11;
  ChaosScenario s;
  core::LineParams p = core::LineParams::make(64, 16, 8, 96);
  util::Rng rng(kSeed + 1);
  core::LineInput input = core::LineInput::random(p, rng);
  s.strat = std::make_shared<strategies::PointerChasingStrategy>(
      p, strategies::OwnershipPlan::round_robin(p, 4));
  s.config = cfg(4, s.strat->required_local_memory(), 1 << 20, backend);
  s.initial = s.strat->make_initial_memory(input);
  s.oracle_factory = [n = p.n, seed = kSeed] {
    return std::make_shared<hash::LazyRandomOracle>(n, n, seed);
  };
  if (authenticate) {
    s.config.authenticate_messages = true;
    s.config.local_memory_bits += 1 << 16;
  }
  return s;
}

Artifacts run_chaos_clean(bool authenticate) {
  ChaosScenario s = make_chaos_scenario(kReference, authenticate);
  auto oracle = s.oracle_factory();
  mpc::MpcSimulation sim(s.config, oracle);
  auto result = sim.run(*s.strat, s.initial);
  EXPECT_TRUE(result.completed);
  return extract(result, oracle.get());
}

TEST(TransportConformance, RestartFromCheckpointOverEveryBackend) {
  // Checkpoint/resume across the wire backends: a kill at round 3 restores
  // the round-2 snapshot and resumes — bit-identical to the fault-free
  // serial reference. Transports are quiescent at every barrier, so the
  // snapshot needs no wire state and the checkpoint format is unchanged.
  Artifacts clean = run_chaos_clean(false);
  for (const Backend& backend : {Backend{TransportKind::kInProcess, 1, 0},
                                 Backend{TransportKind::kSharedMemory, 2, 0},
                                 Backend{TransportKind::kSocket, 1, 2}}) {
    if (backend.kind == TransportKind::kSocket && skip_socket_backend()) continue;
    SCOPED_TRACE(backend.label());
    ChaosScenario s = make_chaos_scenario(backend, false);
    fault::ChaosHarness harness(s.config, s.oracle_factory);
    fault::ChaosResult chaos = harness.run_restart(*s.strat, s.initial,
                                                   fault::FaultPlan::parse("kill:round=3"),
                                                   /*checkpoint_every=*/2);
    EXPECT_EQ(chaos.cost.faults_injected, 1u);
    EXPECT_GE(chaos.cost.recoveries, 1u);
    expect_identical(clean, extract(chaos.run, chaos.oracle.get()));
  }
}

TEST(TransportConformance, QuarantineRecoversOverSocketBackend) {
  // The acceptance-criteria case: an authenticated Byzantine flip while the
  // whole execution — including every quarantine replica and retry — runs
  // over forked router processes. Detection must be the typed TamperViolation
  // path and the recovered run must equal the fault-free serial reference.
  if (skip_socket_backend()) GTEST_SKIP() << "MPCH_SKIP_SOCKET_TRANSPORT set";
  Artifacts clean = run_chaos_clean(true);
  ChaosScenario s = make_chaos_scenario(Backend{TransportKind::kSocket, 1, 2}, true);
  fault::ChaosHarness harness(s.config, s.oracle_factory);
  fault::ChaosResult chaos = harness.run_quarantine(
      *s.strat, s.initial, fault::FaultPlan::parse("flip:machine=1,round=3,bit=2"));
  EXPECT_EQ(chaos.cost.faults_injected, 1u);
  EXPECT_GE(chaos.cost.quarantine_strikes, 1u);
  expect_identical(clean, extract(chaos.run, chaos.oracle.get()));
}

TEST(TransportConformance, QuarantineRecoversOverSharedMemoryBackend) {
  Artifacts clean = run_chaos_clean(false);
  ChaosScenario s = make_chaos_scenario(Backend{TransportKind::kSharedMemory, 8, 0}, false);
  fault::ChaosHarness harness(s.config, s.oracle_factory);
  fault::ChaosResult chaos = harness.run_quarantine(
      *s.strat, s.initial, fault::FaultPlan::parse("flip:machine=1,round=3,bit=2"));
  EXPECT_GE(chaos.cost.recoveries, 1u);
  expect_identical(clean, extract(chaos.run, chaos.oracle.get()));
}

// ---- transport selection plumbing ----

TEST(TransportConformance, KindParsingRoundTripsAndRejectsUnknown) {
  EXPECT_EQ(transport::parse_transport_kind("in-process"), TransportKind::kInProcess);
  EXPECT_EQ(transport::parse_transport_kind("inprocess"), TransportKind::kInProcess);
  EXPECT_EQ(transport::parse_transport_kind("shared-memory"), TransportKind::kSharedMemory);
  EXPECT_EQ(transport::parse_transport_kind("shm"), TransportKind::kSharedMemory);
  EXPECT_EQ(transport::parse_transport_kind("socket"), TransportKind::kSocket);
  for (TransportKind kind : {TransportKind::kInProcess, TransportKind::kSharedMemory,
                             TransportKind::kSocket}) {
    EXPECT_EQ(transport::parse_transport_kind(transport::to_string(kind)), kind);
  }
  EXPECT_THROW(transport::parse_transport_kind("carrier-pigeon"), std::invalid_argument);
}

TEST(TransportConformance, SocketRouterCountClampsToMachines) {
  if (skip_socket_backend()) GTEST_SKIP() << "MPCH_SKIP_SOCKET_TRANSPORT set";
  {
    transport::TransportOptions options;
    options.processes = 64;
    transport::SocketTransport t(options);
    t.start(4);
    EXPECT_EQ(t.router_count(), 4u);
  }
  {
    transport::TransportOptions options;
    options.processes = 3;
    transport::SocketTransport t(options);
    t.start(8);
    EXPECT_EQ(t.router_count(), 3u);
  }
  {
    transport::SocketTransport t;  // auto: 2 router processes for m > 1
    t.start(6);
    EXPECT_EQ(t.router_count(), 2u);
  }
}

}  // namespace
}  // namespace mpch
