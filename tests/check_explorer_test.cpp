// check_explorer_test.cpp — the explorer's search mechanics, on toy models
// whose state spaces are small enough to count by hand.
#include <gtest/gtest.h>

#include <algorithm>

#include "check/explorer.hpp"
#include "check/model.hpp"

namespace mpch::check {
namespace {

/// k distinct tokens deliverable in any order; terminal once all are
/// delivered. State = the delivered subset, so the canonical state space is
/// exactly 2^k subsets regardless of order.
class TokenModel : public Model {
 public:
  explicit TokenModel(std::uint64_t tokens, bool tokens_independent = false)
      : tokens_(tokens), independent_(tokens_independent) {}

  std::string name() const override { return "tokens"; }
  void reset() override { mask_ = 0; }

  std::vector<Action> enabled() const override {
    std::vector<Action> out;
    for (std::uint64_t t = 0; t < tokens_; ++t) {
      if ((mask_ & (1ULL << t)) == 0) {
        out.push_back(Action{t, "token " + std::to_string(t)});
      }
    }
    return out;
  }

  void apply(std::uint64_t key) override { mask_ |= 1ULL << key; }
  std::optional<std::string> violation() const override { return std::nullopt; }
  std::uint64_t fingerprint() const override { return Fingerprint().mix(mask_).value(); }
  bool independent(const Action&, const Action&) const override { return independent_; }

 protected:
  std::uint64_t tokens_;
  bool independent_;
  std::uint64_t mask_ = 0;
};

/// TokenModel plus a self-loop action that leaves the state unchanged — the
/// canonical livelock.
class LoopModel : public TokenModel {
 public:
  explicit LoopModel(std::uint64_t tokens) : TokenModel(tokens) {}
  std::vector<Action> enabled() const override {
    std::vector<Action> out = TokenModel::enabled();
    if (!out.empty()) out.push_back(Action{99, "spin"});
    return out;
  }
  void apply(std::uint64_t key) override {
    if (key != 99) TokenModel::apply(key);
  }
};

/// Two one-step schedules with different outcomes: a confluence breach.
class ForkModel : public Model {
 public:
  std::string name() const override { return "fork"; }
  void reset() override { taken_ = 0; }
  std::vector<Action> enabled() const override {
    if (taken_ != 0) return {};
    return {Action{1, "left"}, Action{2, "right"}};
  }
  void apply(std::uint64_t key) override { taken_ = key; }
  std::optional<std::string> violation() const override { return std::nullopt; }
  std::uint64_t fingerprint() const override { return Fingerprint().mix(taken_).value(); }

 private:
  std::uint64_t taken_ = 0;
};

/// Violates after a specific two-action prefix (key 1 then key 0), buried
/// in a larger token space — exercises shrinking down to that pair.
class NeedleModel : public TokenModel {
 public:
  explicit NeedleModel() : TokenModel(4) {}
  void reset() override {
    TokenModel::reset();
    history_.clear();
  }
  void apply(std::uint64_t key) override {
    TokenModel::apply(key);
    history_.push_back(key);
  }
  std::optional<std::string> violation() const override {
    for (std::size_t i = 0; i + 1 < history_.size(); ++i) {
      if (history_[i] == 1 && history_[i + 1] == 0) return "needle: 1 then 0";
    }
    return std::nullopt;
  }
  std::uint64_t fingerprint() const override {
    Fingerprint fp;
    fp.mix(mask_);
    for (std::uint64_t h : history_) fp.mix(h);
    return fp.value();
  }
  // The terminal state carries the whole history, so outcomes legitimately
  // differ per schedule — no confluence claim to check.
  bool terminal_comparable() const override { return false; }

 private:
  std::vector<std::uint64_t> history_;
};

TEST(CheckExplorer, CountsCanonicalStatesWithConvergencePruning) {
  TokenModel model(3);
  ExplorerOptions opts;
  opts.sleep_sets = false;
  ExploreResult result = Explorer(opts).run(model);
  ASSERT_TRUE(result.ok());
  // Every non-terminal subset of 3 tokens is expanded exactly once.
  EXPECT_EQ(result.stats.states_explored, 7u);
  EXPECT_EQ(result.stats.terminal_fingerprints, 1u);
  EXPECT_GT(result.stats.pruned_converged, 0u);
  EXPECT_EQ(result.stats.deepest, 3u);
}

TEST(CheckExplorer, ExploresFullTreeWithoutPruning) {
  TokenModel model(3);
  ExplorerOptions opts;
  opts.prune_converged = false;
  opts.sleep_sets = false;
  ExploreResult result = Explorer(opts).run(model);
  ASSERT_TRUE(result.ok());
  // Ordered prefixes of length 0..2 over 3 distinct tokens: 1 + 3 + 6.
  EXPECT_EQ(result.stats.states_explored, 10u);
  // Every permutation completes.
  EXPECT_EQ(result.stats.terminal_states, 6u);
}

TEST(CheckExplorer, SleepSetsCollapseCommutingOrders) {
  TokenModel model(3, /*tokens_independent=*/true);
  ExplorerOptions opts;
  opts.prune_converged = false;
  ExploreResult result = Explorer(opts).run(model);
  ASSERT_TRUE(result.ok());
  // All interleavings commute, so one linearisation suffices.
  EXPECT_EQ(result.stats.terminal_states, 1u);
  EXPECT_GT(result.stats.pruned_sleep, 0u);
}

TEST(CheckExplorer, DepthBoundTruncates) {
  TokenModel model(6);
  ExplorerOptions opts;
  opts.max_depth = 2;
  ExploreResult result = Explorer(opts).run(model);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.stats.depth_bound_hit);
  EXPECT_EQ(result.stats.terminal_states, 0u);
  EXPECT_EQ(result.stats.deepest, 2u);
}

TEST(CheckExplorer, StateBoundStopsSearch) {
  TokenModel model(10);
  ExplorerOptions opts;
  opts.max_states = 5;
  ExploreResult result = Explorer(opts).run(model);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.stats.state_bound_hit);
  EXPECT_EQ(result.stats.states_explored, 5u);
}

TEST(CheckExplorer, DetectsLivelockAndShrinksToOneAction) {
  LoopModel model(2);
  ExploreResult result = Explorer().run(model);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.counterexample->violation.find("livelock"), std::string::npos);
  // The minimal loop is a single spin from the initial state.
  EXPECT_EQ(result.counterexample->schedule.size(), 1u);
  EXPECT_EQ(result.counterexample->schedule[0].key, 99u);
}

TEST(CheckExplorer, DetectsConfluenceViolation) {
  ForkModel model;
  ExploreResult result = Explorer().run(model);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.counterexample->violation.find("confluence"), std::string::npos);
}

TEST(CheckExplorer, ConfluenceCheckCanBeDisabled) {
  ForkModel model;
  ExplorerOptions opts;
  opts.check_confluence = false;
  ExploreResult result = Explorer(opts).run(model);
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.stats.terminal_fingerprints, 2u);
}

TEST(CheckExplorer, ShrinksToTheMinimalViolatingPair) {
  NeedleModel model;
  ExploreResult result = Explorer().run(model);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.counterexample->violation, "needle: 1 then 0");
  ASSERT_EQ(result.counterexample->schedule.size(), 2u);
  EXPECT_EQ(result.counterexample->schedule[0].key, 1u);
  EXPECT_EQ(result.counterexample->schedule[1].key, 0u);
}

TEST(CheckExplorer, ReplayReproducesAndIsStrict) {
  NeedleModel model;
  Explorer explorer;
  ExploreResult result = explorer.run(model);
  ASSERT_FALSE(result.ok());
  ReplayOutcome outcome = explorer.replay(model, result.counterexample->schedule);
  ASSERT_TRUE(outcome.violation.has_value());
  EXPECT_EQ(*outcome.violation, result.counterexample->violation);

  // A key the model never offers is a ReplayError, not a silent skip.
  std::vector<Action> bogus = {{42, "not a real action"}};
  EXPECT_THROW((void)explorer.replay(model, bogus), ReplayError);

  // Applying a token twice: the second occurrence is no longer enabled.
  std::vector<Action> twice = {{0, "token 0"}, {0, "token 0"}};
  EXPECT_THROW((void)explorer.replay(model, twice), ReplayError);
}

TEST(CheckExplorer, EmptyScheduleReplaysClean) {
  TokenModel model(2);
  ReplayOutcome outcome = Explorer().replay(model, {});
  EXPECT_FALSE(outcome.violation.has_value());
  EXPECT_EQ(outcome.steps, 0u);
}

}  // namespace
}  // namespace mpch::check
