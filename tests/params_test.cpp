#include "core/params.hpp"

#include <gtest/gtest.h>

namespace mpch::core {
namespace {

TEST(LineParams, DerivesLayoutWidths) {
  LineParams p = LineParams::make(64, 16, 32, 1000);
  EXPECT_EQ(p.n, 64u);
  EXPECT_EQ(p.u, 16u);
  EXPECT_EQ(p.v, 32u);
  EXPECT_EQ(p.w, 1000u);
  EXPECT_EQ(p.ell_bits, 6u);        // ceil_log2(33)
  EXPECT_EQ(p.index_bits, 10u);     // ceil_log2(1002)
  EXPECT_EQ(p.input_bits(), 512u);  // u*v
  EXPECT_EQ(p.output_bits(), 64u);
  EXPECT_EQ(p.z_bits(), 64u - 6u - 16u);
}

TEST(LineParams, RejectsZeroParameters) {
  EXPECT_THROW(LineParams::make(0, 1, 1, 1), std::invalid_argument);
  EXPECT_THROW(LineParams::make(64, 0, 1, 1), std::invalid_argument);
  EXPECT_THROW(LineParams::make(64, 1, 0, 1), std::invalid_argument);
  EXPECT_THROW(LineParams::make(64, 1, 1, 0), std::invalid_argument);
}

TEST(LineParams, RejectsOverfullQueryLayout) {
  // 2u + index_bits > n.
  EXPECT_THROW(LineParams::make(32, 16, 4, 100), std::invalid_argument);
}

TEST(LineParams, RejectsOverfullAnswerLayout) {
  // ell_bits + u > n: u = 30, n = 32, v large.
  EXPECT_THROW(LineParams::make(32, 30, 1 << 10, 2), std::invalid_argument);
}

TEST(LineParams, ToStringMentionsAllFields) {
  LineParams p = LineParams::make(64, 16, 8, 100);
  std::string s = p.to_string();
  EXPECT_NE(s.find("n=64"), std::string::npos);
  EXPECT_NE(s.find("u=16"), std::string::npos);
  EXPECT_NE(s.find("v=8"), std::string::npos);
  EXPECT_NE(s.find("w=100"), std::string::npos);
}

TEST(PaperRegime, DerivesTable3Parameters) {
  PaperRegime r;
  r.n = 3000;
  r.S = 100000;
  r.T = 1000000;
  r.q = 1 << 20;
  r.m = 1024;
  r.s = 25000;
  LineParams p = r.derive_line_params();
  EXPECT_EQ(p.u, 1000u);       // n/3
  EXPECT_EQ(p.v, 100u);        // S/u
  EXPECT_EQ(p.w, 1000000u);    // T
}

TEST(PaperRegime, AllChecksPassInTheoremRegime) {
  // n = 3000: 2^{n^{1/4}} = 2^7.4 ~ huge... n^{1/4} ~ 7.4 so bound = 2^7.4 ~
  // 169. Use a larger n so the regime genuinely holds.
  PaperRegime r;
  r.n = 65536 * 16;  // n^{1/4} = 32 -> bound 2^32
  r.S = 1 << 20;
  r.T = 1 << 24;
  r.q = 1 << 10;
  r.m = 1 << 10;
  r.s = (1 << 20) / 4;
  EXPECT_TRUE(r.all_satisfied(2.0)) << [&] {
    std::string out;
    for (const auto& c : r.checks()) {
      if (!c.satisfied) out += c.name + " (" + c.detail + "); ";
    }
    return out;
  }();
}

TEST(PaperRegime, DetectsViolations) {
  PaperRegime r;
  r.n = 65536 * 16;
  r.S = 1 << 20;
  r.T = 1 << 19;  // T < S violates S <= T
  r.q = 1 << 10;
  r.m = 1 << 10;
  r.s = (1 << 19) + 1;  // s > S/2 violates s <= S/c for c=2
  EXPECT_FALSE(r.all_satisfied(2.0));
  bool found_t = false, found_s = false;
  for (const auto& c : r.checks(2.0)) {
    if (c.name == "S <= T" && !c.satisfied) found_t = true;
    if (c.name == "s <= S/c" && !c.satisfied) found_s = true;
  }
  EXPECT_TRUE(found_t);
  EXPECT_TRUE(found_s);
}

TEST(PaperRegime, Lemma36HZeroWhenPreconditionFails) {
  PaperRegime r;
  r.n = 30;  // u = 10, far too small for (log^2 w + 2) log v + log q
  r.S = 1000;
  r.T = 100000;
  r.q = 1 << 10;
  r.m = 4;
  r.s = 100;
  EXPECT_EQ(r.lemma36_h(), 0.0);
}

TEST(PaperRegime, Lemma36HPositiveInValidRegime) {
  PaperRegime r;
  r.n = 1 << 20;  // u ~ 350k dominates the subtracted terms
  r.S = 1 << 22;
  r.T = 1 << 24;
  r.q = 1 << 10;
  r.m = 16;
  r.s = 1 << 20;
  double h = r.lemma36_h();
  EXPECT_GT(h, 1.0);
  EXPECT_LT(h, 1e6);
}

// Parameter sweep: derived layouts always fit (the constructor guarantees).
class ParamsSweepTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>> {};

TEST_P(ParamsSweepTest, LayoutInvariants) {
  auto [u, v, w] = GetParam();
  std::uint64_t n = 3 * u + 20;  // roomy
  LineParams p = LineParams::make(n, u, v, w);
  EXPECT_LE(p.index_bits + 2 * p.u, p.n);
  EXPECT_LE(p.ell_bits + p.u, p.n);
  EXPECT_EQ(p.z_bits() + p.ell_bits + p.u, p.n);
  EXPECT_GE(1ULL << p.ell_bits, p.v);
  EXPECT_GE(1ULL << p.index_bits, p.w + 1);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParamsSweepTest,
    ::testing::Combine(::testing::Values(4, 8, 16, 24), ::testing::Values(2, 4, 7, 16, 100),
                       ::testing::Values(1, 2, 100, 4096)));

}  // namespace
}  // namespace mpch::core
