#include "strategies/speculative.hpp"

#include <gtest/gtest.h>

#include "core/line.hpp"
#include "hash/random_oracle.hpp"
#include "strategies/pointer_chasing.hpp"
#include "util/rng.hpp"

namespace mpch::strategies {
namespace {

struct Fix {
  core::LineParams p;
  std::shared_ptr<hash::LazyRandomOracle> oracle;
  core::LineInput input;
  util::BitString expected;

  Fix(std::uint64_t u, std::uint64_t w, std::uint64_t seed)
      : p(core::LineParams::make(3 * u + 16, u, 8, w)),
        oracle(std::make_shared<hash::LazyRandomOracle>(p.n, p.n, seed)),
        input(make_input(p, seed)),
        expected(core::LineFunction(p).evaluate(*oracle, input)) {}

  static core::LineInput make_input(const core::LineParams& p, std::uint64_t seed) {
    util::Rng rng(seed * 3 + 11);
    return core::LineInput::random(p, rng);
  }
};

mpc::MpcConfig config(std::uint64_t local_bits, std::uint64_t m, std::uint64_t q) {
  mpc::MpcConfig c;
  c.machines = m;
  c.local_memory_bits = local_bits;
  c.query_budget = q;
  c.max_rounds = 20000;
  c.tape_seed = 77;
  return c;
}

TEST(Speculative, WithZeroGuessesMatchesPointerChasing) {
  Fix setup(16, 128, 1);
  const std::uint64_t m = 4;
  OwnershipPlan plan = OwnershipPlan::round_robin(setup.p, m);
  SpeculativeStrategy spec(setup.p, plan, {0, false}, setup.input);
  PointerChasingStrategy honest(setup.p, plan);

  mpc::MpcSimulation sim1(config(spec.required_local_memory(), m, 1 << 20), setup.oracle);
  auto r_spec = sim1.run(spec, spec.make_initial_memory(setup.input));
  Fix setup2(16, 128, 1);
  mpc::MpcSimulation sim2(config(honest.required_local_memory(), m, 1 << 20), setup2.oracle);
  auto r_honest = sim2.run(honest, honest.make_initial_memory(setup2.input));

  ASSERT_TRUE(r_spec.completed);
  ASSERT_TRUE(r_honest.completed);
  EXPECT_EQ(r_spec.rounds_used, r_honest.rounds_used);
  EXPECT_EQ(r_spec.output, setup.expected);
  EXPECT_EQ(spec.lucky_escapes(), 0u);
}

TEST(Speculative, EnumerationAtTinyUCollapsesRounds) {
  // u = 4: 16 candidate blocks; enumerating all escapes every stall, so the
  // carrier machine walks the whole chain in round 0.
  Fix setup(4, 64, 2);
  const std::uint64_t m = 4;
  OwnershipPlan plan = OwnershipPlan::round_robin(setup.p, m);
  SpeculativeConfig cfg{16, true};
  SpeculativeStrategy spec(setup.p, plan, cfg, setup.input);
  mpc::MpcSimulation sim(config(spec.required_local_memory(), m, 1 << 20), setup.oracle);
  auto result = sim.run(spec, spec.make_initial_memory(setup.input));
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.rounds_used, 1u);
  EXPECT_EQ(result.output, setup.expected);
  EXPECT_GT(spec.lucky_escapes(), 0u);
}

TEST(Speculative, LargeUGuessingNeverEscapes) {
  // u = 16 with only 64 random guesses per stall: escape probability
  // 64/2^16 per stall — effectively never; rounds match honest behaviour.
  Fix setup(16, 128, 3);
  const std::uint64_t m = 4;
  OwnershipPlan plan = OwnershipPlan::round_robin(setup.p, m);
  SpeculativeStrategy spec(setup.p, plan, {64, false}, setup.input);
  mpc::MpcSimulation sim(config(spec.required_local_memory(), m, 1 << 20), setup.oracle);
  auto result = sim.run(spec, spec.make_initial_memory(setup.input));
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(spec.lucky_escapes(), 0u);
  EXPECT_EQ(result.output, setup.expected);
  EXPECT_GT(result.rounds_used, setup.p.w / 4);  // no shortcut materialised
}

TEST(Speculative, QueryBudgetCapsGuessing) {
  // With q = 4 the enumerate-16 attack cannot finish a stall's enumeration;
  // escapes become rare and the budget is never exceeded.
  Fix setup(4, 64, 4);
  const std::uint64_t m = 4;
  OwnershipPlan plan = OwnershipPlan::round_robin(setup.p, m);
  SpeculativeStrategy spec(setup.p, plan, {16, true}, setup.input);
  mpc::MpcSimulation sim(config(spec.required_local_memory(), m, 4), setup.oracle);
  auto result = sim.run(spec, spec.make_initial_memory(setup.input));
  ASSERT_TRUE(result.completed);  // still finishes eventually via hand-offs
  EXPECT_EQ(result.output, setup.expected);
  // Every round respects q: check the trace.
  for (const auto& round : result.trace.rounds()) {
    EXPECT_LE(round.oracle_queries, 4u * m);
  }
}

TEST(Speculative, OutputAlwaysCorrectDespiteGuessing) {
  for (std::uint64_t seed = 10; seed < 14; ++seed) {
    Fix setup(6, 48, seed);
    const std::uint64_t m = 3;
    OwnershipPlan plan = OwnershipPlan::round_robin(setup.p, m);
    SpeculativeStrategy spec(setup.p, plan, {8, false}, setup.input);
    mpc::MpcSimulation sim(config(spec.required_local_memory(), m, 1 << 20), setup.oracle);
    auto result = sim.run(spec, spec.make_initial_memory(setup.input));
    ASSERT_TRUE(result.completed) << seed;
    EXPECT_EQ(result.output, setup.expected) << seed;
  }
}

}  // namespace
}  // namespace mpch::strategies
