// fault_checkpoint_test.cpp — the checkpoint wire format and its integrity
// guards: serialize -> deserialize -> serialize is byte-identical, every
// corruption class (magic, version, length, checksum, truncation, trailing
// bits) is rejected with a diagnostic naming what failed, file round-trips
// survive, and make_resume_state re-verifies the oracle memo against the
// supplied oracle's seed.
#include "fault/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "hash/random_oracle.hpp"
#include "util/serialize.hpp"

namespace mpch {
namespace {

using fault::Checkpoint;
using fault::CheckpointError;
using util::BitString;

/// A checkpoint exercising every field class: messages with odd bit lengths,
/// round stats with distinct peak witnesses, annotations, transcript records,
/// and a real oracle memo (so restore_table verification has true entries).
Checkpoint sample_checkpoint() {
  Checkpoint cp;
  cp.next_round = 4;
  cp.machines = 3;
  cp.local_memory_bits = 512;
  cp.query_budget = 9;
  cp.tape_seed = 5;

  cp.inboxes.resize(3);
  cp.inboxes[0].push_back({2, 0, BitString::from_uint(0b10110, 5)});
  cp.inboxes[1].push_back({0, 1, BitString::from_uint(0xABCD, 16)});
  cp.inboxes[1].push_back({1, 1, BitString(1)});
  // inbox 2 deliberately empty.

  for (std::uint64_t r = 0; r < 4; ++r) {
    mpc::RoundStats s;
    s.round = r;
    s.messages = 3 + r;
    s.communicated_bits = 100 * (r + 1);
    s.oracle_queries = 2 * r;
    s.max_inbox_bits = 64 + r;
    s.peak_memory_bits = {64 + r, r % 3};
    s.peak_queries = {2, 1};
    s.peak_fan_out = {3, 0};
    s.peak_fan_in = {2, 2};
    s.peak_sent_bits = {80, 1};
    s.peak_recv_bits = {64 + r, 0};
    s.peak_message_bits = {40, 2};
    cp.rounds.push_back(s);
  }
  cp.annotations["advance"] = {1, 2, 3, 5};
  cp.annotations["stall"] = {0, 0, 1, 0};

  hash::QueryRecord rec;
  rec.round = 2;
  rec.machine = 1;
  rec.seq = 0;
  rec.input = BitString::from_uint(7, 16);
  rec.output = BitString::from_uint(9, 16);
  cp.transcript.push_back(rec);

  hash::LazyRandomOracle oracle(16, 16, 1);
  oracle.query(BitString::from_uint(3, 16));
  oracle.query(BitString::from_uint(11, 16));
  cp.has_oracle = true;
  cp.oracle_in_bits = 16;
  cp.oracle_out_bits = 16;
  cp.oracle_total_queries = oracle.total_queries();
  cp.oracle_memo = oracle.touched_table();
  return cp;
}

TEST(Checkpoint, SerializeDeserializeSerializeIsByteIdentical) {
  Checkpoint cp = sample_checkpoint();
  BitString first = fault::serialize(cp);
  Checkpoint decoded = fault::deserialize(first);
  EXPECT_EQ(decoded, cp);
  BitString second = fault::serialize(decoded);
  EXPECT_EQ(first, second);
}

TEST(Checkpoint, PlainModelCheckpointRoundTrips) {
  Checkpoint cp = sample_checkpoint();
  cp.has_oracle = false;
  cp.oracle_in_bits = cp.oracle_out_bits = cp.oracle_total_queries = 0;
  cp.oracle_memo.clear();
  EXPECT_EQ(fault::deserialize(fault::serialize(cp)), cp);
}

TEST(Checkpoint, FlippedPayloadBitIsRejectedByChecksum) {
  BitString bits = fault::serialize(sample_checkpoint());
  const std::size_t header_bits = 8 * 8 + 64 + 64 + 64;
  std::size_t victim = header_bits + 129;  // any payload bit
  bits.set_uint(victim, 1, 1 - bits.get_uint(victim, 1));
  try {
    fault::deserialize(bits);
    FAIL() << "corrupted payload accepted";
  } catch (const CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("checksum mismatch"), std::string::npos) << e.what();
  }
}

TEST(Checkpoint, BadMagicIsRejected) {
  BitString bits = fault::serialize(sample_checkpoint());
  bits.set_uint(0, 8, 'X');
  try {
    fault::deserialize(bits);
    FAIL() << "bad magic accepted";
  } catch (const CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("not a checkpoint snapshot"), std::string::npos)
        << e.what();
  }
}

TEST(Checkpoint, UnsupportedVersionIsRejected) {
  BitString bits = fault::serialize(sample_checkpoint());
  bits.set_uint(64, 64, Checkpoint::kVersion + 1);
  try {
    fault::deserialize(bits);
    FAIL() << "future version accepted";
  } catch (const CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("unsupported checkpoint version"), std::string::npos)
        << e.what();
  }
}

TEST(Checkpoint, TruncatedSnapshotIsRejected) {
  BitString bits = fault::serialize(sample_checkpoint());
  BitString cut = bits.slice(0, bits.size() - 100);
  try {
    fault::deserialize(cut);
    FAIL() << "truncated snapshot accepted";
  } catch (const CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos) << e.what();
  }
  // Cutting into the header itself is caught by the BitReader guard.
  EXPECT_THROW(fault::deserialize(bits.slice(0, 70)), CheckpointError);
}

TEST(Checkpoint, FileRoundTripAndMissingFile) {
  Checkpoint cp = sample_checkpoint();
  const std::string path = "checkpoint_test_roundtrip.ckpt";
  fault::save_checkpoint_file(path, cp);
  Checkpoint loaded = fault::load_checkpoint_file(path);
  EXPECT_EQ(loaded, cp);
  std::remove(path.c_str());

  try {
    fault::load_checkpoint_file("checkpoint_test_does_not_exist.ckpt");
    FAIL() << "missing file accepted";
  } catch (const CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("cannot load checkpoint"), std::string::npos) << e.what();
  }
}

TEST(Checkpoint, ResumeStateRestoresOracleAndTrace) {
  Checkpoint cp = sample_checkpoint();
  hash::LazyRandomOracle fresh(16, 16, 1);  // same seed as sample_checkpoint's
  mpc::MpcResumeState state = fault::make_resume_state(cp, &fresh);
  EXPECT_EQ(state.next_round, cp.next_round);
  EXPECT_EQ(state.inboxes, cp.inboxes);
  EXPECT_EQ(state.trace.rounds(), cp.rounds);
  EXPECT_EQ(state.trace.annotations(), cp.annotations);
  ASSERT_NE(state.transcript, nullptr);
  EXPECT_EQ(state.transcript->records(), cp.transcript);
  EXPECT_EQ(fresh.total_queries(), cp.oracle_total_queries);
  EXPECT_EQ(fresh.touched_table(), cp.oracle_memo);
}

TEST(Checkpoint, ResumeStateRejectsWrongSeedOracle) {
  Checkpoint cp = sample_checkpoint();
  hash::LazyRandomOracle wrong_seed(16, 16, 2);
  try {
    fault::make_resume_state(cp, &wrong_seed);
    FAIL() << "memo from another oracle accepted";
  } catch (const CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find("memo rejected"), std::string::npos) << e.what();
  }
}

TEST(Checkpoint, ResumeStateRejectsMismatchedOracleShape) {
  Checkpoint cp = sample_checkpoint();
  hash::LazyRandomOracle narrow(8, 8, 1);
  EXPECT_THROW(fault::make_resume_state(cp, &narrow), CheckpointError);
  EXPECT_THROW(fault::make_resume_state(cp, nullptr), CheckpointError);
}

TEST(Checkpoint, InconsistentInboxCountIsRejected) {
  Checkpoint cp = sample_checkpoint();
  cp.inboxes.pop_back();
  EXPECT_THROW(fault::deserialize(fault::serialize(cp)), CheckpointError);
}

}  // namespace
}  // namespace mpch
