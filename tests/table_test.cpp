#include "util/table.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace mpch::util {
namespace {

TEST(Table, RejectsMismatchedRow) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
  EXPECT_THROW(t.add_row({"1", "2", "3"}), std::invalid_argument);
}

TEST(Table, PrintsAlignedColumns) {
  Table t({"name", "value"});
  t.add("alpha", 1);
  t.add("b", 22222);
  std::ostringstream os;
  t.print(os);
  std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22222"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"x", "y"});
  t.add(1, 2.5);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "x,y\n1,2.5\n");
}

TEST(Table, MixedCellTypes) {
  Table t({"s", "i", "d", "b"});
  t.add("str", 42, 3.14159, true);
  EXPECT_EQ(t.rows(), 1u);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "s,i,d,b\nstr,42,3.1416,yes\n");
}

TEST(FormatDouble, TrimsTrailingZeros) {
  EXPECT_EQ(format_double(1.5), "1.5");
  EXPECT_EQ(format_double(2.0), "2");
  EXPECT_EQ(format_double(0.12345, 3), "0.123");
  EXPECT_EQ(format_double(-3.1000), "-3.1");
}

TEST(FormatLog2Prob, ShowsBothForms) {
  std::string s = format_log2_prob(-3.0L);
  EXPECT_NE(s.find("2^-3"), std::string::npos);
  EXPECT_NE(s.find("0.125"), std::string::npos);
  // Extremely small probabilities: exponent form only.
  std::string tiny = format_log2_prob(-500.0L);
  EXPECT_NE(tiny.find("2^-500"), std::string::npos);
  EXPECT_EQ(tiny.find('('), std::string::npos);
}

}  // namespace
}  // namespace mpch::util
