// Replays the checked-in fuzz seed corpora (fuzz/corpus/) through the same
// entry points the libFuzzer harnesses drive. The harnesses themselves need
// clang (MPCH_FUZZ); this test keeps the corpus contract enforced under the
// stock g++ build: every corpus input must either parse or be rejected
// through the *typed* error path — CheckpointError for snapshots,
// std::invalid_argument for plans — never via std::length_error, bad_alloc,
// or a crash. New fuzzer-found inputs get checked in here as regressions.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "check/explorer.hpp"
#include "check/models.hpp"
#include "check/trace.hpp"
#include "fault/checkpoint.hpp"
#include "fault/fault_plan.hpp"
#include "ram/machine.hpp"
#include "reduce/reduction_file.hpp"
#include "serve/job_spec.hpp"
#include "transport/wire.hpp"
#include "util/bitstring.hpp"
#include "verify/program_decoder.hpp"
#include "verify/verifier.hpp"

namespace {

using mpch::fault::Checkpoint;
using mpch::fault::CheckpointError;
using mpch::fault::FaultPlan;
using mpch::util::BitString;

std::filesystem::path corpus_root() { return MPCH_FUZZ_CORPUS_DIR; }

std::vector<std::uint8_t> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "cannot open corpus file " << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

TEST(FuzzCorpusReplay, CheckpointCorpusRejectsOrParsesTyped) {
  std::size_t replayed = 0;
  for (const auto& entry : std::filesystem::directory_iterator(corpus_root() / "checkpoint")) {
    SCOPED_TRACE(entry.path().string());
    BitString bits = BitString::from_bytes(read_file(entry.path()));
    // Raw header path and checksummed-framed payload path, exactly as in
    // fuzz/fuzz_checkpoint_load.cpp. CheckpointError is the only acceptable
    // rejection; any other escape fails the test.
    try {
      (void)mpch::fault::deserialize(bits);
    } catch (const CheckpointError&) {
    }
    try {
      (void)mpch::fault::deserialize(mpch::fault::frame_checkpoint_payload(bits));
    } catch (const CheckpointError&) {
    }
    ++replayed;
  }
  EXPECT_GE(replayed, 5u) << "checkpoint corpus went missing — check fuzz/corpus/checkpoint";
}

TEST(FuzzCorpusReplay, FaultPlanCorpusRejectsOrParsesTyped) {
  std::size_t replayed = 0;
  for (const auto& entry : std::filesystem::directory_iterator(corpus_root() / "fault_plan")) {
    SCOPED_TRACE(entry.path().string());
    std::vector<std::uint8_t> bytes = read_file(entry.path());
    std::string spec(bytes.begin(), bytes.end());
    try {
      FaultPlan plan = FaultPlan::parse(spec);
      (void)plan.describe();
    } catch (const std::invalid_argument&) {
    }
    ++replayed;
  }
  EXPECT_GE(replayed, 10u) << "fault-plan corpus went missing — check fuzz/corpus/fault_plan";
}

TEST(FuzzCorpusReplay, JobSpecCorpusRejectsOrParsesTyped) {
  // Mirrors fuzz/fuzz_job_spec.cpp: the jobfile grammar must accept or
  // reject through JobSpecError only — hostile repeat counts, duplicate
  // keys, unknown verbs, truncation, and binary garbage all included.
  std::size_t replayed = 0;
  for (const auto& entry : std::filesystem::directory_iterator(corpus_root() / "job_spec")) {
    SCOPED_TRACE(entry.path().string());
    std::vector<std::uint8_t> bytes = read_file(entry.path());
    std::string text(bytes.begin(), bytes.end());
    try {
      const std::vector<mpch::serve::JobSpec> jobs = mpch::serve::parse_jobfile(text);
      for (const auto& job : jobs) (void)job.describe();
    } catch (const mpch::serve::JobSpecError&) {
    }
    ++replayed;
  }
  EXPECT_GE(replayed, 12u) << "job-spec corpus went missing — check fuzz/corpus/job_spec";
}

TEST(FuzzCorpusReplay, RamProgramCorpusRejectsOrVerifiesTyped) {
  // Mirrors fuzz/fuzz_ram_verify.cpp: decode, attempt construction, run the
  // full verifier pipeline, render both report formats. std::invalid_argument
  // is the only acceptable rejection at each layer.
  std::size_t replayed = 0;
  for (const auto& entry : std::filesystem::directory_iterator(corpus_root() / "ram_program")) {
    SCOPED_TRACE(entry.path().string());
    std::vector<std::uint8_t> bytes = read_file(entry.path());
    try {
      const std::vector<mpch::ram::Instruction> program =
          mpch::verify::decode_program(bytes.data(), bytes.size());
      try {
        mpch::ram::RamMachine machine(program, {});
        (void)machine;
      } catch (const std::invalid_argument&) {
      }
      mpch::verify::VerifyOptions options;
      options.memory.words = 8;
      options.memory.values = {0, 7};
      const mpch::verify::VerifyReport report =
          mpch::verify::verify_program("corpus", program, options);
      (void)report.format();
      (void)report.to_json();
    } catch (const std::invalid_argument&) {
    }
    ++replayed;
  }
  EXPECT_GE(replayed, 8u) << "RAM-program corpus went missing — check fuzz/corpus/ram_program";
}

// The bug class the framed harness exists for: element counts larger than
// the remaining payload must be rejected as CheckpointError before any
// resize() can turn them into std::length_error or an OOM.
TEST(FuzzCorpusReplay, HostileInboxCountIsTypedRejection) {
  BitString payload;
  for (int i = 0; i < 5; ++i) payload += BitString::from_uint(0, 64);  // header fields
  payload += BitString::from_uint(0xffff'ffff'ffffULL, 64);            // inbox count
  EXPECT_THROW((void)mpch::fault::deserialize(mpch::fault::frame_checkpoint_payload(payload)),
               CheckpointError);
}

TEST(FuzzCorpusReplay, HostileStringLengthIsTypedRejection) {
  // Annotation key whose byte length would wrap the bits multiply.
  BitString payload;
  for (int i = 0; i < 5; ++i) payload += BitString::from_uint(0, 64);
  payload += BitString::from_uint(0, 64);                        // no inboxes
  payload += BitString::from_uint(0, 64);                        // no round stats
  payload += BitString::from_uint(1, 64);                        // one annotation
  payload += BitString::from_uint(0x2000'0000'0000'0000ULL, 64); // its key length, in bytes
  EXPECT_THROW((void)mpch::fault::deserialize(mpch::fault::frame_checkpoint_payload(payload)),
               CheckpointError);
}

TEST(FuzzCorpusReplay, ValidCorpusSeedStillDecodes) {
  // empty_payload.bin is a checksummed frame around zero payload bits: it
  // must fail *inside* the payload parser (truncated), proving the corpus
  // still reaches past the header gates.
  BitString bits = BitString::from_bytes(read_file(corpus_root() / "checkpoint" /
                                                   "empty_payload.bin"));
  EXPECT_THROW(
      {
        try {
          (void)mpch::fault::deserialize(bits);
        } catch (const CheckpointError& e) {
          EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos) << e.what();
          throw;
        }
      },
      CheckpointError);
}

TEST(FuzzCorpusReplay, ModelTraceCorpusRejectsOrParsesTyped) {
  // Mirrors fuzz/fuzz_model_trace.cpp: parse, and round-trip whatever
  // parses. TraceError is the only acceptable rejection.
  std::size_t replayed = 0;
  for (const auto& entry : std::filesystem::directory_iterator(corpus_root() / "model_trace")) {
    SCOPED_TRACE(entry.path().string());
    std::vector<std::uint8_t> bytes = read_file(entry.path());
    std::string text(bytes.begin(), bytes.end());
    try {
      const mpch::check::TraceFile trace = mpch::check::parse_trace(text);
      EXPECT_EQ(mpch::check::parse_trace(mpch::check::encode_trace(trace)), trace);
    } catch (const mpch::check::TraceError&) {
    }
    ++replayed;
  }
  EXPECT_GE(replayed, 9u) << "model-trace corpus went missing — check fuzz/corpus/model_trace";
}

TEST(FuzzCorpusReplay, ModelTraceMutationSeedsStillReproduce) {
  // The seven <mutation>.trace seeds are live counterexamples written by
  // `mpch-model --mutation-matrix --trace-dir`: each must still load, build
  // its recorded mutant at the default bounds, and replay to a violation.
  // A seed that stops reproducing means the trace format, the model, or the
  // mutation drifted — regenerate the corpus in the same change.
  std::size_t reproduced = 0;
  for (const mpch::check::MutationSpec& spec : mpch::check::mutation_registry()) {
    SCOPED_TRACE(spec.name);
    const mpch::check::TraceFile trace =
        mpch::check::load_trace((corpus_root() / "model_trace" / (spec.name + ".trace")).string());
    EXPECT_EQ(trace.protocol, spec.protocol);
    EXPECT_EQ(trace.mutation, spec.name);
    std::unique_ptr<mpch::check::Model> model =
        mpch::check::make_model(trace.protocol, mpch::check::ModelBounds{}, trace.mutation);
    const mpch::check::ReplayOutcome outcome =
        mpch::check::Explorer().replay(*model, trace.schedule);
    ASSERT_TRUE(outcome.violation.has_value());
    EXPECT_EQ(*outcome.violation, trace.violation);
    ++reproduced;
  }
  EXPECT_GE(reproduced, 7u);
}

TEST(FuzzCorpusReplay, ReductionFileCorpusRejectsOrParsesTyped) {
  // Mirrors fuzz/fuzz_reduction_file.cpp: parse, and walk whatever parses
  // through describe()/leaf_count(). ReductionError is the only acceptable
  // rejection — hostile compose pyramids, zero scales, u64 overflow, binary
  // garbage, and truncation all included.
  std::size_t replayed = 0;
  for (const auto& entry : std::filesystem::directory_iterator(corpus_root() / "reduction_file")) {
    SCOPED_TRACE(entry.path().string());
    std::vector<std::uint8_t> bytes = read_file(entry.path());
    std::string text(bytes.begin(), bytes.end());
    try {
      const std::vector<mpch::reduce::Reduction> reductions =
          mpch::reduce::parse_reduction_file(text);
      for (const auto& r : reductions) {
        (void)r.describe();
        (void)r.term.leaf_count();
      }
    } catch (const mpch::reduce::ReductionError&) {
    }
    ++replayed;
  }
  EXPECT_GE(replayed, 10u) << "reduction-file corpus went missing — check fuzz/corpus/reduction_file";
}

TEST(FuzzCorpusReplay, ReductionFileValidSeedsStillParse) {
  // The valid seeds must pass every gate — a corpus that rejects everything
  // no longer covers the happy path the fuzzer mutates from.
  for (const char* name : {"valid_auth.red", "valid_regroup.red", "valid_via_list.red",
                           "valid_nested.red", "valid_bare_auth.red"}) {
    SCOPED_TRACE(name);
    std::vector<std::uint8_t> bytes = read_file(corpus_root() / "reduction_file" / name);
    std::string text(bytes.begin(), bytes.end());
    EXPECT_NO_THROW((void)mpch::reduce::parse_reduction_file(text));
  }
}

TEST(FuzzCorpusReplay, WireFrameCorpusRejectsOrAssemblesTyped) {
  // Mirrors fuzz/fuzz_wire_frame.cpp: decode with the shrunk payload cap,
  // then push every data/broadcast frame through an InboxAssembler. WireError
  // is the only acceptable rejection; std::length_error, bad_alloc, or a
  // crash from a trusted length prefix fails the test.
  std::size_t replayed = 0;
  for (const auto& entry : std::filesystem::directory_iterator(corpus_root() / "wire_frame")) {
    SCOPED_TRACE(entry.path().string());
    std::vector<std::uint8_t> bytes = read_file(entry.path());
    try {
      std::vector<mpch::transport::WireFrame> frames =
          mpch::transport::decode_frames(bytes, /*max_payload_bits=*/1 << 16);
      mpch::transport::InboxAssembler assembler(/*machine=*/0, /*round=*/0);
      for (auto& frame : frames) {
        if (frame.type == mpch::transport::FrameType::kData) {
          assembler.add(frame.from, frame.seq, std::move(frame.payload));
        } else if (frame.type == mpch::transport::FrameType::kBroadcast) {
          for (const auto& [to, seq] : frame.fanout) {
            if (to == 0) assembler.add(frame.from, seq, frame.payload);
          }
        }
      }
      (void)assembler.take();
    } catch (const mpch::transport::WireError&) {
    }
    ++replayed;
  }
  EXPECT_GE(replayed, 12u) << "wire-frame corpus went missing — check fuzz/corpus/wire_frame";
}

TEST(FuzzCorpusReplay, WireFrameValidSeedsStillDecode) {
  // The valid seeds must actually pass every gate — a corpus that rejects
  // everything no longer covers the happy path the fuzzer mutates from.
  for (const char* name : {"valid_data.bin", "valid_two_senders.bin", "valid_broadcast.bin",
                           "valid_controls.bin"}) {
    SCOPED_TRACE(name);
    std::vector<std::uint8_t> bytes = read_file(corpus_root() / "wire_frame" / name);
    EXPECT_NO_THROW((void)mpch::transport::decode_frames(bytes));
  }
}

}  // namespace
