#include "compress/simline_codec.hpp"

#include <gtest/gtest.h>

#include "core/simline.hpp"
#include "theory/bounds.hpp"
#include "util/rng.hpp"

namespace mpch::compress {
namespace {

using util::BitString;

// Tiny parameters so the exhaustive oracle is materialisable: n = 14 bits,
// u = 4, v = 8, w = 16.
core::LineParams tiny_params() { return core::LineParams::make(14, 4, 8, 16); }

struct Fixture {
  core::LineParams p = tiny_params();
  util::Rng rng;
  hash::ExhaustiveRandomOracle oracle;
  core::LineInput input;
  core::SimLineChain chain;

  explicit Fixture(std::uint64_t seed)
      : rng(seed),
        oracle(tiny_params().n, tiny_params().n, rng),
        input(core::LineInput::random(tiny_params(), rng)),
        chain(core::SimLineFunction(tiny_params()).evaluate_chain(oracle, input)) {}
};

/// Build the window machine memory holding blocks for nodes [start,
/// start+count) of the schedule, anchored at the chain's true r.
BitString window_memory(const Fixture& f, std::uint64_t start, std::uint64_t count) {
  std::vector<std::pair<std::uint64_t, BitString>> blocks;
  core::SimLineFunction fn(f.p);
  for (std::uint64_t i = start; i < start + count; ++i) {
    std::uint64_t b = fn.scheduled_block(i);
    blocks.emplace_back(b, f.input.block(b));
  }
  return SimLineWindowProgram::make_memory(f.p, start, f.chain.nodes[start - 1].r, blocks);
}

/// Target set C: the correct entries for nodes [start, start+count) with
/// their revealed block indices.
void window_targets(const Fixture& f, std::uint64_t start, std::uint64_t count,
                    std::vector<BitString>* entries, std::vector<std::uint64_t>* blocks) {
  core::SimLineFunction fn(f.p);
  for (std::uint64_t i = start; i < start + count; ++i) {
    entries->push_back(f.chain.nodes[i - 1].query);
    blocks->push_back(fn.scheduled_block(i));
  }
}

TEST(SimLineCompressor, RoundTripsExactly) {
  Fixture f(1);
  SimLineCompressor comp(f.p, 64);
  SimLineWindowProgram program(f.p);
  BitString memory = window_memory(f, 3, 4);
  std::vector<BitString> entries;
  std::vector<std::uint64_t> blocks;
  window_targets(f, 3, 4, &entries, &blocks);

  SimLineEncoding enc = comp.encode(f.oracle, f.input, memory, program, entries, blocks);
  EXPECT_EQ(enc.covered, 4u);

  SimLineDecoded dec = comp.decode(enc.message, program);
  EXPECT_EQ(dec.input_bits, f.input.bits());
  ASSERT_EQ(dec.oracle_table.size(), f.oracle.table().size());
  for (std::size_t i = 0; i < dec.oracle_table.size(); ++i) {
    ASSERT_EQ(dec.oracle_table[i], f.oracle.table()[i]) << "oracle entry " << i;
  }
}

TEST(SimLineCompressor, EachCoveredBlockSavesBits) {
  // savings = α·u − α·(qpos + ell) − overhead vs trivial; with u = 4 and
  // qpos+ell = 7+4 = 11 the per-block trade is negative here — the point is
  // the *accounting* is exact. Verify total = components and covered blocks
  // drop their u bits from the residual.
  Fixture f(2);
  SimLineCompressor comp(f.p, 64);
  SimLineWindowProgram program(f.p);
  for (std::uint64_t count : {0ULL, 2ULL, 5ULL}) {
    BitString memory = window_memory(f, 2, count);
    std::vector<BitString> entries;
    std::vector<std::uint64_t> blocks;
    window_targets(f, 2, count, &entries, &blocks);
    SimLineEncoding enc = comp.encode(f.oracle, f.input, memory, program, entries, blocks);
    EXPECT_EQ(enc.covered, count);
    EXPECT_EQ(enc.breakdown.residual_bits, (f.p.v - count) * f.p.u);
    EXPECT_EQ(enc.breakdown.total(), enc.message.size());
    SimLineDecoded dec = comp.decode(enc.message, program);
    EXPECT_EQ(dec.input_bits, f.input.bits()) << "count=" << count;
  }
}

TEST(SimLineCompressor, MeetsClaimA4BoundWithLargeU) {
  // With u = 12 > log q + log v, covered blocks genuinely shrink the
  // encoding below the trivial one: the engine of Lemma A.3.
  core::LineParams p = core::LineParams::make(16 /*n*/, 6 /*u*/, 4 /*v*/, 8 /*w*/);
  util::Rng rng(3);
  hash::ExhaustiveRandomOracle oracle(p.n, p.n, rng);
  core::LineInput input = core::LineInput::random(p, rng);
  core::SimLineFunction fn(p);
  core::SimLineChain chain = fn.evaluate_chain(oracle, input);

  std::vector<std::pair<std::uint64_t, BitString>> blocks;
  for (std::uint64_t i = 1; i <= 4; ++i) {
    blocks.emplace_back(fn.scheduled_block(i), input.block(fn.scheduled_block(i)));
  }
  BitString memory = SimLineWindowProgram::make_memory(p, 1, chain.nodes[0].r, blocks);
  std::vector<BitString> entries;
  std::vector<std::uint64_t> target_blocks;
  for (std::uint64_t i = 1; i <= 4; ++i) {
    entries.push_back(chain.nodes[i - 1].query);
    target_blocks.push_back(fn.scheduled_block(i));
  }

  SimLineCompressor comp(p, 8);  // q = 8: qpos_bits = 4, ell_bits = 3
  SimLineWindowProgram program(p);
  SimLineEncoding enc = comp.encode(oracle, input, memory, program, entries, target_blocks);
  EXPECT_EQ(enc.covered, 4u);

  // Paper bound (Claim A.4): s + α(log q + log v) + (v − α)u + table_bits.
  theory::MpcBoundParams mp;
  mp.q = 8;
  mp.s = memory.size();
  long double bound = theory::claimA4_encoding_bound_bits(
      p, mp, static_cast<long double>(enc.covered),
      static_cast<long double>(oracle.table_bits()));
  // Implementation overhead (count fields) is tracked separately; the
  // non-overhead portion must be within the paper's bound.
  EXPECT_LE(enc.breakdown.total() - enc.breakdown.overhead_bits,
            static_cast<std::uint64_t>(bound) + 1);

  SimLineDecoded dec = comp.decode(enc.message, program);
  EXPECT_EQ(dec.input_bits, input.bits());
}

TEST(SimLineCompressor, ObliviousProgramCoversNothing) {
  Fixture f(4);
  SimLineCompressor comp(f.p, 64);
  SimLineObliviousProgram junk(f.p, 20);
  std::vector<BitString> entries;
  std::vector<std::uint64_t> blocks;
  window_targets(f, 1, 8, &entries, &blocks);
  BitString memory = BitString::from_uint(0xAB, 8);
  SimLineEncoding enc = comp.encode(f.oracle, f.input, memory, junk, entries, blocks);
  EXPECT_EQ(enc.covered, 0u);
  EXPECT_EQ(enc.breakdown.residual_bits, f.p.v * f.p.u);  // whole X verbatim
  SimLineDecoded dec = comp.decode(enc.message, junk);
  EXPECT_EQ(dec.input_bits, f.input.bits());
}

TEST(SimLineCompressor, RejectsMismatchedTargets) {
  Fixture f(5);
  SimLineCompressor comp(f.p, 64);
  SimLineWindowProgram program(f.p);
  std::vector<BitString> entries = {f.chain.nodes[0].query};
  std::vector<std::uint64_t> blocks = {};
  EXPECT_THROW(
      comp.encode(f.oracle, f.input, BitString(8), program, entries, blocks),
      std::invalid_argument);
}

TEST(SimLineCompressor, SavingsAndImpliedEpsilonAccounting) {
  Fixture f(6);
  SimLineCompressor comp(f.p, 64);
  SimLineWindowProgram program(f.p);
  BitString memory = window_memory(f, 1, 6);
  std::vector<BitString> entries;
  std::vector<std::uint64_t> blocks;
  window_targets(f, 1, 6, &entries, &blocks);
  SimLineEncoding enc = comp.encode(f.oracle, f.input, memory, program, entries, blocks);

  // implied_log2_eps must be >= 0-ish only when no real compression
  // happened; it decreases as the encoding shrinks below oracle+uv.
  long double implied = implied_log2_eps(f.p, enc.breakdown);
  long double expected = static_cast<long double>(enc.breakdown.total()) -
                         (static_cast<long double>(enc.breakdown.oracle_bits) +
                          static_cast<long double>(f.p.u * f.p.v)) +
                         1.0L;
  EXPECT_DOUBLE_EQ(static_cast<double>(implied), static_cast<double>(expected));
  // savings_bits consistency.
  std::int64_t savings = savings_bits(f.p, enc.breakdown);
  std::int64_t recomputed = static_cast<std::int64_t>(enc.breakdown.oracle_bits +
                                                      enc.breakdown.memory_bits +
                                                      f.p.u * f.p.v) -
                            static_cast<std::int64_t>(enc.breakdown.total());
  EXPECT_EQ(savings, recomputed);
}

TEST(SimLineCompressor, RequiresSmallN) {
  core::LineParams p = core::LineParams::make(64, 16, 8, 16);
  EXPECT_THROW(SimLineCompressor(p, 16), std::invalid_argument);
}

}  // namespace
}  // namespace mpch::compress
