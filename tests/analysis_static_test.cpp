// The static pass: ProtocolSpec-vs-MpcConfig conformance decided without
// executing. The seeded-violation fixtures here are the checker's acceptance
// contract: a memory overflow, a query-budget overflow, a fan-in/inbox
// overflow, a routing violation, and a round-count blowup must each be
// rejected with machine/round provenance.
#include "analysis/static_checker.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "core/line.hpp"
#include "reduce/term.hpp"
#include "strategies/batch_pointer_chasing.hpp"
#include "strategies/colluding.hpp"
#include "strategies/dictionary.hpp"
#include "strategies/full_memory.hpp"
#include "strategies/pipelined_simline.hpp"
#include "strategies/pointer_chasing.hpp"
#include "strategies/ram_emulation.hpp"
#include "strategies/speculative.hpp"

namespace mpch::analysis {
namespace {

core::LineParams params(std::uint64_t w = 64) { return core::LineParams::make(64, 16, 8, w); }

/// The config a spec documents for itself: s covering the declared envelope,
/// the declared round count, and the given q.
mpc::MpcConfig documented(const ProtocolSpec& spec, std::uint64_t q) {
  mpc::MpcConfig c;
  c.machines = spec.machines;
  c.max_rounds = spec.max_rounds;
  c.query_budget = q;
  for (std::uint64_t shape = 0; shape < spec.distinct_round_shapes(); ++shape) {
    std::uint64_t round = shape < spec.prologue.size() ? shape : spec.prologue.size();
    const RoundEnvelope& env = spec.envelope(round);
    c.local_memory_bits = std::max({c.local_memory_bits, env.memory_bits, env.recv_bits});
  }
  return c;
}

const Diagnostic* find(const AnalysisReport& report, ViolationKind kind) {
  for (const auto& d : report.violations) {
    if (d.kind == kind) return &d;
  }
  return nullptr;
}

// --- clean passes: every in-tree strategy under its documented config ---

TEST(StaticChecker, AllLineStrategiesPassTheirDocumentedConfig) {
  core::LineParams p = params();
  const std::uint64_t m = 4;
  auto plan = strategies::OwnershipPlan::round_robin(p, m);

  strategies::PointerChasingStrategy chase(p, plan);
  strategies::ColludingStrategy collude(p, plan);
  strategies::PipelinedSimLineStrategy pipe(p, strategies::OwnershipPlan::windows(p, m, 2));
  strategies::SpeculativeStrategy spec_strat(p, plan, {4, true},
                                             core::LineInput(p, util::BitString(p.input_bits())));
  strategies::FullMemoryStrategy full(p, plan);
  strategies::DictionaryStrategy dict(p, m);
  strategies::BatchPointerChasingStrategy batch(p, plan, 3);

  std::vector<std::pair<ProtocolSpec, std::uint64_t>> cases = {
      {chase.protocol_spec(), 4},  {collude.protocol_spec(), 4},
      {pipe.protocol_spec(), 4},   {spec_strat.protocol_spec(), 4},
      {full.protocol_spec(), p.w}, {dict.protocol_spec(), p.w},
      {batch.protocol_spec(), 4},
  };
  for (const auto& [spec, q] : cases) {
    AnalysisReport report = check_spec(spec, documented(spec, q));
    EXPECT_TRUE(report.ok()) << report.format();
  }
}

TEST(StaticChecker, RamEmulationPassesPlainModelWithZeroBudget) {
  strategies::RamEmulationStrategy ram({ram::asm_ops::halt()}, 4, 1, 8, 10);
  ProtocolSpec spec = ram.protocol_spec();
  EXPECT_FALSE(spec.needs_oracle);
  AnalysisReport report = check_spec(spec, documented(spec, 0));
  EXPECT_TRUE(report.ok()) << report.format();
}

TEST(StaticChecker, RamEmulationSpecRequiresCtorHints) {
  strategies::RamEmulationStrategy ram({ram::asm_ops::halt()}, 4);
  EXPECT_THROW(ram.protocol_spec(), std::logic_error);
}

// --- seeded violation fixtures ---

TEST(StaticChecker, RejectsMemoryOverflowWithProvenance) {
  // full-memory's round-1 footprint is the whole gathered input; shrink s
  // below it and the checker must name the gather target (machine 0).
  core::LineParams p = params();
  strategies::FullMemoryStrategy full(p, strategies::OwnershipPlan::round_robin(p, 4));
  ProtocolSpec spec = full.protocol_spec();
  mpc::MpcConfig c = documented(spec, p.w);
  c.local_memory_bits = full.required_local_memory() - 1;

  AnalysisReport report = check_spec(spec, c);
  ASSERT_FALSE(report.ok());
  const Diagnostic* d = find(report, ViolationKind::kMemory);
  ASSERT_NE(d, nullptr) << report.format();
  EXPECT_EQ(d->machine, 0u);  // the gather target
  EXPECT_EQ(d->round, 1u);    // the local-walk round
  EXPECT_EQ(d->value, full.required_local_memory());
  EXPECT_EQ(d->limit, c.local_memory_bits);
  EXPECT_NE(d->to_string().find("round 1, machine 0"), std::string::npos);
}

TEST(StaticChecker, RejectsQueryBudgetOverflowForUnclampedProtocols) {
  // full-memory walks all w nodes in one round and does not clamp; q < w is
  // statically impossible.
  core::LineParams p = params();
  strategies::FullMemoryStrategy full(p, strategies::OwnershipPlan::round_robin(p, 4));
  ProtocolSpec spec = full.protocol_spec();
  mpc::MpcConfig c = documented(spec, p.w - 1);

  AnalysisReport report = check_spec(spec, c);
  ASSERT_FALSE(report.ok());
  const Diagnostic* d = find(report, ViolationKind::kQueryBudget);
  ASSERT_NE(d, nullptr) << report.format();
  EXPECT_EQ(d->machine, 0u);
  EXPECT_EQ(d->round, 1u);
  EXPECT_EQ(d->value, p.w);
  EXPECT_EQ(d->limit, p.w - 1);
}

TEST(StaticChecker, ClampedProtocolsPassAnyPositiveBudget) {
  // pointer-chasing declares up to w queries but adapts to the budget; the
  // same q that rejects full-memory must pass here.
  core::LineParams p = params();
  strategies::PointerChasingStrategy chase(p, strategies::OwnershipPlan::round_robin(p, 4));
  ProtocolSpec spec = chase.protocol_spec();
  EXPECT_TRUE(spec.clamps_queries_to_budget);
  AnalysisReport report = check_spec(spec, documented(spec, 1));
  EXPECT_TRUE(report.ok()) << report.format();
}

TEST(StaticChecker, RejectsInboxOverflowWithProvenance) {
  // dictionary's round-0 delivery is the whole gathered encoding; a config
  // whose s admits the round-start memory but not the delivery must be
  // rejected as an inbox-capacity violation at round 0, machine 0.
  core::LineParams p = params();
  strategies::DictionaryStrategy dict(p, 4);
  ProtocolSpec spec = dict.protocol_spec();
  mpc::MpcConfig c = documented(spec, p.w);
  c.local_memory_bits = spec.prologue[0].recv_bits - 1;

  AnalysisReport report = check_spec(spec, c);
  ASSERT_FALSE(report.ok());
  const Diagnostic* d = find(report, ViolationKind::kInboxCapacity);
  ASSERT_NE(d, nullptr) << report.format();
  EXPECT_EQ(d->machine, 0u);
  EXPECT_EQ(d->round, 0u);
  EXPECT_EQ(d->value, spec.prologue[0].recv_bits);
}

TEST(StaticChecker, RejectsRoutingToNonexistentMachines) {
  // A spec built for 8 machines cannot run on a 4-machine config: some
  // destination indices would be out of range.
  core::LineParams p = params();
  strategies::PointerChasingStrategy chase(p, strategies::OwnershipPlan::round_robin(p, 8));
  ProtocolSpec spec = chase.protocol_spec();
  mpc::MpcConfig c = documented(spec, 4);
  c.machines = 4;

  AnalysisReport report = check_spec(spec, c);
  ASSERT_FALSE(report.ok());
  const Diagnostic* d = find(report, ViolationKind::kRouting);
  ASSERT_NE(d, nullptr) << report.format();
  EXPECT_EQ(d->machine, 7u);  // highest addressed machine
  EXPECT_EQ(d->limit, 4u);
}

TEST(StaticChecker, RejectsRoundCountBlowup) {
  core::LineParams p = params(256);
  strategies::PointerChasingStrategy chase(p, strategies::OwnershipPlan::round_robin(p, 4));
  ProtocolSpec spec = chase.protocol_spec();
  mpc::MpcConfig c = documented(spec, 4);
  c.max_rounds = 50;

  AnalysisReport report = check_spec(spec, c);
  ASSERT_FALSE(report.ok());
  const Diagnostic* d = find(report, ViolationKind::kRoundCount);
  ASSERT_NE(d, nullptr) << report.format();
  EXPECT_EQ(d->value, 256u);
  EXPECT_EQ(d->limit, 50u);
}

TEST(StaticChecker, RejectsOracleProtocolUnderZeroBudget) {
  core::LineParams p = params();
  strategies::PointerChasingStrategy chase(p, strategies::OwnershipPlan::round_robin(p, 4));
  ProtocolSpec spec = chase.protocol_spec();
  AnalysisReport report = check_spec(spec, documented(spec, 0));
  ASSERT_FALSE(report.ok());
  EXPECT_NE(find(report, ViolationKind::kOracleMissing), nullptr) << report.format();
}

TEST(StaticChecker, ThrowsOnMalformedSpec) {
  ProtocolSpec spec;
  spec.protocol = "broken";
  spec.machines = 0;
  spec.max_rounds = 1;
  mpc::MpcConfig c;
  c.machines = 1;
  EXPECT_THROW(check_spec(spec, c), std::invalid_argument);
  spec.machines = 1;
  spec.max_rounds = 0;
  EXPECT_THROW(check_spec(spec, c), std::invalid_argument);
}

TEST(StaticChecker, MalformedSpecErrorNamesTheProtocol) {
  ProtocolSpec spec;
  spec.protocol = "zero-machine-proto";
  spec.machines = 0;
  spec.max_rounds = 1;
  mpc::MpcConfig c;
  c.machines = 4;
  try {
    check_spec(spec, c);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("zero-machine-proto"), std::string::npos) << e.what();
  }
}

TEST(StaticChecker, EnvelopeExactlyAtTheBudgetPasses) {
  // Conformance is <=, not <: a spec that meets every bound exactly is legal,
  // and one bit/query over any single bound is not.
  ProtocolSpec spec;
  spec.protocol = "boundary";
  spec.machines = 4;
  spec.max_rounds = 10;
  spec.needs_oracle = true;
  spec.steady.memory_bits = 100;
  spec.steady.recv_bits = 100;
  spec.steady.oracle_queries = 7;

  mpc::MpcConfig c;
  c.machines = 4;
  c.max_rounds = 10;
  c.local_memory_bits = 100;
  c.query_budget = 7;
  EXPECT_TRUE(check_spec(spec, c).ok());

  ProtocolSpec over = spec;
  over.steady.memory_bits = 101;
  EXPECT_NE(find(check_spec(over, c), ViolationKind::kMemory), nullptr);
  over = spec;
  over.steady.oracle_queries = 8;
  EXPECT_NE(find(check_spec(over, c), ViolationKind::kQueryBudget), nullptr);
  over = spec;
  over.steady.recv_bits = 101;
  EXPECT_NE(find(check_spec(over, c), ViolationKind::kInboxCapacity), nullptr);
}

TEST(StaticChecker, OracleMissingDiagnosticExplainsItself) {
  core::LineParams p = params();
  strategies::PointerChasingStrategy chase(p, strategies::OwnershipPlan::round_robin(p, 4));
  ProtocolSpec spec = chase.protocol_spec();
  AnalysisReport report = check_spec(spec, documented(spec, 0));
  const Diagnostic* d = find(report, ViolationKind::kOracleMissing);
  ASSERT_NE(d, nullptr) << report.format();
  EXPECT_NE(d->message.find("oracle"), std::string::npos) << d->message;
}

TEST(StaticChecker, EffectiveQueryBoundClampsOnlyWhenDeclared) {
  ProtocolSpec spec;
  spec.steady.oracle_queries = 100;
  mpc::MpcConfig c;
  c.query_budget = 7;
  spec.clamps_queries_to_budget = true;
  EXPECT_EQ(effective_query_bound(spec, spec.steady, c), 7u);
  spec.clamps_queries_to_budget = false;
  EXPECT_EQ(effective_query_bound(spec, spec.steady, c), 100u);
}

TEST(StaticChecker, PrologueRoundsCheckedIndividually) {
  // A spec whose prologue fits but whose steady state overflows must point
  // at the first steady round, not round 0.
  ProtocolSpec spec;
  spec.protocol = "synthetic";
  spec.machines = 2;
  spec.max_rounds = 10;
  RoundEnvelope small;
  small.memory_bits = 10;
  spec.prologue.push_back(small);
  spec.steady.memory_bits = 1000;
  spec.steady.witness_machine = 1;

  mpc::MpcConfig c;
  c.machines = 2;
  c.local_memory_bits = 100;
  c.max_rounds = 10;
  AnalysisReport report = check_spec(spec, c);
  ASSERT_FALSE(report.ok());
  const Diagnostic* d = find(report, ViolationKind::kMemory);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->round, 1u);  // first round the steady envelope governs
  EXPECT_EQ(d->machine, 1u);
}

TEST(StaticChecker, ReportJsonCarriesEveryDiagnosticField) {
  ProtocolSpec spec;
  spec.protocol = "synthetic \"quoted\"";
  spec.machines = 2;
  spec.max_rounds = 10;
  spec.steady.memory_bits = 1000;
  spec.steady.witness_machine = 1;

  mpc::MpcConfig c;
  c.machines = 2;
  c.local_memory_bits = 100;
  c.max_rounds = 10;
  AnalysisReport report = check_spec(spec, c);
  ASSERT_FALSE(report.ok());

  const std::string json = report.to_json();
  // The protocol name is escaped, ok is false, and the diagnostic carries
  // kind/round/machine/value/limit/message — the same fields format() prints.
  EXPECT_NE(json.find("\"protocol\":\"synthetic \\\"quoted\\\"\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ok\":false"), std::string::npos) << json;
  EXPECT_NE(json.find("\"kind\":\"memory\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"machine\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"value\":1000"), std::string::npos) << json;
  EXPECT_NE(json.find("\"limit\":100"), std::string::npos) << json;
  EXPECT_NE(json.find("\"message\":\""), std::string::npos) << json;
}

TEST(StaticChecker, CleanReportJsonHasEmptyViolations) {
  ProtocolSpec spec;
  spec.protocol = "clean";
  spec.machines = 2;
  spec.max_rounds = 2;
  spec.steady.memory_bits = 8;

  mpc::MpcConfig c;
  c.machines = 2;
  c.local_memory_bits = 100;
  c.max_rounds = 2;
  AnalysisReport report = check_spec(spec, c);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.to_json(), "{\"protocol\":\"clean\",\"ok\":true,\"violations\":[]}");
}

// --- interval edges where check_spec meets the reduction calculus ---

TEST(StaticCheckerIntervalEdges, ExactBudgetBoundaryAfterSpaceScale) {
  // <= survives the transfer function: a spec sitting exactly on its budget
  // after space_scale(c) still passes, and one extra source bit (c over
  // after scaling) fails — the reduction calculus does not erode the
  // boundary semantics.
  ProtocolSpec spec;
  spec.protocol = "boundary-scaled";
  spec.machines = 4;
  spec.max_rounds = 10;
  spec.steady.memory_bits = 25;
  spec.steady.recv_bits = 20;

  mpc::MpcConfig c;
  c.machines = 4;
  c.max_rounds = 10;
  c.local_memory_bits = 100;  // 25 * 4, exactly
  const ProtocolSpec scaled =
      reduce::apply_term(reduce::Term::space_scale(4), spec).spec;
  EXPECT_EQ(scaled.steady.memory_bits, 100u);
  EXPECT_TRUE(check_spec(scaled, c).ok());

  ProtocolSpec over = spec;
  over.steady.memory_bits = 26;  // scales to 104 > 100
  const ProtocolSpec over_scaled =
      reduce::apply_term(reduce::Term::space_scale(4), over).spec;
  const Diagnostic* d = find(check_spec(over_scaled, c), ViolationKind::kMemory);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->value, 104u);
  EXPECT_EQ(d->limit, 100u);
}

TEST(StaticCheckerIntervalEdges, ZeroRoundSpecsAreMalformedEverywhere) {
  // check_spec, check_spec_dominance, and apply_term share the contract:
  // zero rounds (or machines) is a malformed spec, not a vacuous pass.
  ProtocolSpec zero;
  zero.protocol = "zero-rounds";
  zero.machines = 2;
  zero.max_rounds = 0;
  mpc::MpcConfig c;
  c.machines = 2;
  EXPECT_THROW(check_spec(zero, c), std::invalid_argument);
  EXPECT_THROW(reduce::apply_term(reduce::Term::identity(), zero), std::invalid_argument);
}

TEST(StaticCheckerIntervalEdges, OverflowSaturatesInsteadOfWrapping) {
  // The hostile case the saturating arithmetic exists for: a near-kMax
  // envelope pushed through a scale factor must land at kMax (always
  // rejected against any real budget), never wrap to a tiny bound that
  // would admit the protocol.
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  ProtocolSpec huge;
  huge.protocol = "huge";
  huge.machines = 4;
  huge.max_rounds = 2;
  huge.steady.memory_bits = kMax / 2 + 1;

  const reduce::ApplyResult scaled =
      reduce::apply_term(reduce::Term::space_scale(2), huge);
  EXPECT_TRUE(scaled.saturated);
  EXPECT_EQ(scaled.spec.steady.memory_bits, kMax);

  mpc::MpcConfig c;
  c.machines = 4;
  c.max_rounds = 2;
  c.local_memory_bits = 1 << 20;
  const Diagnostic* d = find(check_spec(scaled.spec, c), ViolationKind::kMemory);
  ASSERT_NE(d, nullptr) << "a wrapped (tiny) bound would have been admitted";
  EXPECT_EQ(d->value, kMax);
}

TEST(StaticCheckerIntervalEdges, DominanceRejectsSaturatedInner) {
  // Dominance direction: a saturated *inner* spec can never hide inside a
  // finite outer envelope.
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  ProtocolSpec outer;
  outer.protocol = "outer";
  outer.machines = 4;
  outer.max_rounds = 8;
  outer.steady.memory_bits = 1000;
  ProtocolSpec inner = outer;
  inner.protocol = "inner";
  inner.steady.memory_bits = kMax;
  EXPECT_NE(find(check_spec_dominance(inner, outer), ViolationKind::kMemory), nullptr);
  // And a saturated outer dominates everything — sound, just not tight.
  ProtocolSpec top = outer;
  top.steady.memory_bits = kMax;
  top.steady.recv_bits = kMax;
  top.steady.sent_bits = kMax;
  EXPECT_TRUE(check_spec_dominance(outer, top).ok());
}

}  // namespace
}  // namespace mpch::analysis
