#include "strategies/guess_ahead.hpp"

#include <gtest/gtest.h>

#include "stats/estimator.hpp"

namespace mpch::strategies {
namespace {

GuessAheadConfig config(std::uint64_t u, std::uint64_t guesses, bool simline) {
  GuessAheadConfig c;
  c.params = core::LineParams::make(3 * u + 16, u, 8, 16);
  c.guesses_per_trial = guesses;
  c.simline = simline;
  return c;
}

TEST(GuessAhead, Deterministic) {
  GuessAheadConfig c = config(6, 4, false);
  auto a = run_guess_ahead_trials(c, 42, 200);
  auto b = run_guess_ahead_trials(c, 42, 200);
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_EQ(a.trials, 200u);
}

TEST(GuessAhead, PredictedRateFormula) {
  core::LineParams p = core::LineParams::make(40, 8, 8, 16);
  EXPECT_DOUBLE_EQ(guess_ahead_predicted_rate(p, 1), 1.0 / 256);
  EXPECT_DOUBLE_EQ(guess_ahead_predicted_rate(p, 128), 0.5);
  EXPECT_DOUBLE_EQ(guess_ahead_predicted_rate(p, 256), 1.0);
  EXPECT_DOUBLE_EQ(guess_ahead_predicted_rate(p, 10000), 1.0);
}

TEST(GuessAhead, MeasuredRateMatchesLemma33Bound) {
  // u = 4: single-guess hit rate should be exactly 2^-4 = 1/16 up to noise.
  GuessAheadConfig c = config(4, 1, false);
  auto outcome = run_guess_ahead_trials(c, 7, 20000);
  stats::Proportion prop{outcome.hits, outcome.trials};
  EXPECT_TRUE(prop.contains(1.0 / 16))
      << "rate=" << prop.rate() << " ci=[" << prop.wilson_low() << ", " << prop.wilson_high()
      << "]";
}

TEST(GuessAhead, SimLineVariantMatchesLemmaA7Bound) {
  GuessAheadConfig c = config(4, 1, true);
  auto outcome = run_guess_ahead_trials(c, 8, 20000);
  stats::Proportion prop{outcome.hits, outcome.trials};
  EXPECT_TRUE(prop.contains(1.0 / 16)) << prop.rate();
}

TEST(GuessAhead, RateScalesLinearlyInGuesses) {
  // Without-replacement guessing: rate = guesses / 2^u exactly in
  // expectation.
  GuessAheadConfig c1 = config(5, 1, false);
  GuessAheadConfig c8 = config(5, 8, false);
  auto o1 = run_guess_ahead_trials(c1, 9, 20000);
  auto o8 = run_guess_ahead_trials(c8, 9, 20000);
  stats::Proportion p1{o1.hits, o1.trials}, p8{o8.hits, o8.trials};
  EXPECT_TRUE(p1.contains(1.0 / 32)) << p1.rate();
  EXPECT_TRUE(p8.contains(8.0 / 32)) << p8.rate();
}

TEST(GuessAhead, FullEnumerationAlwaysHits) {
  GuessAheadConfig c = config(4, 16, false);
  auto outcome = run_guess_ahead_trials(c, 10, 500);
  EXPECT_EQ(outcome.hits, outcome.trials);
}

TEST(GuessAhead, LargerUDecaysExponentially) {
  // Hit rates across u = 3, 5, 7 with one guess: each step of 2 in u cuts
  // the rate by ~4x.
  std::uint64_t trials = 60000;
  auto r3 = run_guess_ahead_trials(config(3, 1, false), 11, trials);
  auto r5 = run_guess_ahead_trials(config(5, 1, false), 12, trials);
  auto r7 = run_guess_ahead_trials(config(7, 1, false), 13, trials);
  stats::Proportion p3{r3.hits, trials}, p5{r5.hits, trials}, p7{r7.hits, trials};
  EXPECT_TRUE(p3.contains(1.0 / 8)) << p3.rate();
  EXPECT_TRUE(p5.contains(1.0 / 32)) << p5.rate();
  EXPECT_TRUE(p7.contains(1.0 / 128)) << p7.rate();
}

TEST(GuessAhead, FixedTargetNodeWorksToo) {
  GuessAheadConfig c = config(4, 1, false);
  c.target_node = 5;
  auto outcome = run_guess_ahead_trials(c, 14, 10000);
  stats::Proportion prop{outcome.hits, outcome.trials};
  EXPECT_TRUE(prop.contains(1.0 / 16)) << prop.rate();
}

TEST(GuessAhead, RejectsDegenerateChain) {
  GuessAheadConfig c = config(4, 1, false);
  c.params.w = 1;
  EXPECT_THROW(run_guess_ahead_trials(c, 1, 1), std::invalid_argument);
}

}  // namespace
}  // namespace mpch::strategies
