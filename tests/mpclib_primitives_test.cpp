#include "mpclib/primitives.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "util/serialize.hpp"

namespace mpch::mpclib {
namespace {

using util::BitString;

mpc::MpcConfig config(std::uint64_t m, std::uint64_t s = 1 << 16) {
  mpc::MpcConfig c;
  c.machines = m;
  c.local_memory_bits = s;
  c.query_budget = 1;
  c.max_rounds = 200;
  c.tape_seed = 3;
  return c;
}

TEST(PackU64, RoundTrip) {
  std::vector<std::uint64_t> values = {0, 1, UINT64_MAX, 42};
  auto [tag, decoded] = unpack_u64s(pack_u64s(5, values));
  EXPECT_EQ(tag, 5u);
  EXPECT_EQ(decoded, values);
}

TEST(PackU64, EmptyVector) {
  auto [tag, decoded] = unpack_u64s(pack_u64s(2, {}));
  EXPECT_EQ(tag, 2u);
  EXPECT_TRUE(decoded.empty());
}

TEST(PackU64, PayloadBitsFormula) {
  EXPECT_EQ(pack_u64s(1, {1, 2, 3}).size(), u64_payload_bits(3));
}

class BroadcastTest : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint64_t>> {
};

TEST_P(BroadcastTest, AllMachinesReceiveTheValue) {
  auto [m, fanout] = GetParam();
  mpc::MpcSimulation sim(config(m), nullptr);
  BroadcastAlgorithm algo(m, fanout);
  BitString value = BitString::from_uint(0xBEEF, 16);
  mpc::MpcRunResult result = sim.run(algo, {value});
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.rounds_used, BroadcastAlgorithm::predicted_rounds(m, fanout));
  // Union of outputs = m copies of the value.
  ASSERT_EQ(result.output.size(), m * 16);
  for (std::uint64_t i = 0; i < m; ++i) {
    EXPECT_EQ(result.output.get_uint(i * 16, 16), 0xBEEFu) << "machine " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, BroadcastTest,
                         ::testing::Combine(::testing::Values(1, 2, 5, 16, 33),
                                            ::testing::Values(1, 2, 4)));

TEST(Broadcast, PredictedRoundsGrowLogarithmically) {
  EXPECT_EQ(BroadcastAlgorithm::predicted_rounds(1, 2), 1u);
  EXPECT_LT(BroadcastAlgorithm::predicted_rounds(64, 4),
            BroadcastAlgorithm::predicted_rounds(64, 1));
  // fanout 1 doubles coverage each round: ceil(log2 m) + 1 rounds.
  EXPECT_EQ(BroadcastAlgorithm::predicted_rounds(8, 1), 4u);
}

class AllReduceTest : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint64_t>> {
};

TEST_P(AllReduceTest, EveryMachineOutputsGlobalSum) {
  auto [m, fanout] = GetParam();
  mpc::MpcSimulation sim(config(m), nullptr);
  AllReduceSumAlgorithm algo(m, fanout);
  std::vector<BitString> shares;
  std::uint64_t expected = 0;
  for (std::uint64_t i = 0; i < m; ++i) {
    shares.push_back(pack_u64s(3 /*kHold*/, {i * 10 + 1}));
    expected += i * 10 + 1;
  }
  mpc::MpcRunResult result = sim.run(algo, shares);
  ASSERT_TRUE(result.completed);
  // Parse m concatenated outputs, all equal to the sum.
  util::BitReader r(result.output);
  std::uint64_t outputs = 0;
  while (r.remaining() > 0) {
    r.read_uint(4);
    std::uint64_t count = r.read_uint(32);
    ASSERT_EQ(count, 1u);
    EXPECT_EQ(r.read_uint(64), expected);
    ++outputs;
  }
  EXPECT_EQ(outputs, m);
}

INSTANTIATE_TEST_SUITE_P(Shapes, AllReduceTest,
                         ::testing::Combine(::testing::Values(1, 2, 7, 16),
                                            ::testing::Values(2, 3)));

TEST(PrefixSum, ComputesInclusivePrefixInThreeRounds) {
  const std::uint64_t m = 4;
  mpc::MpcSimulation sim(config(m), nullptr);
  PrefixSumAlgorithm algo(m);
  std::vector<std::vector<std::uint64_t>> values = {{1, 2}, {3}, {}, {4, 5, 6}};
  mpc::MpcRunResult result = sim.run(algo, PrefixSumAlgorithm::make_initial_memory(values));
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.rounds_used, 3u);
  std::vector<std::uint64_t> prefix = PrefixSumAlgorithm::parse_output(result.output);
  std::vector<std::uint64_t> expected = {1, 3, 6, 10, 15, 21};
  EXPECT_EQ(prefix, expected);
}

TEST(PrefixSum, SingleMachine) {
  mpc::MpcSimulation sim(config(1), nullptr);
  PrefixSumAlgorithm algo(1);
  mpc::MpcRunResult result =
      sim.run(algo, PrefixSumAlgorithm::make_initial_memory({{5, 5, 5}}));
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(PrefixSumAlgorithm::parse_output(result.output),
            (std::vector<std::uint64_t>{5, 10, 15}));
}

}  // namespace
}  // namespace mpch::mpclib
