#include "strategies/full_memory.hpp"

#include <gtest/gtest.h>

#include "core/line.hpp"
#include "hash/random_oracle.hpp"
#include "util/rng.hpp"

namespace mpch::strategies {
namespace {

core::LineParams params(std::uint64_t w = 64) {
  return core::LineParams::make(64, 16, 8, w);
}

TEST(FullMemory, TwoRoundsWhenMemoryCoversInput) {
  core::LineParams p = params();
  auto oracle = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, 1);
  util::Rng rng(2);
  core::LineInput input = core::LineInput::random(p, rng);
  util::BitString expected = core::LineFunction(p).evaluate(*oracle, input);

  const std::uint64_t m = 4;
  FullMemoryStrategy strat(p, OwnershipPlan::round_robin(p, m));
  mpc::MpcConfig c;
  c.machines = m;
  c.local_memory_bits = strat.required_local_memory();
  c.query_budget = p.w + 1;
  c.max_rounds = 10;
  mpc::MpcSimulation sim(c, oracle);
  auto result = sim.run(strat, strat.make_initial_memory(input));
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.rounds_used, 2u);
  EXPECT_EQ(result.output, expected);
}

TEST(FullMemory, FailsWhenLocalMemoryBelowInputSize) {
  // s smaller than the gathered input: the model's inbox check fires —
  // this IS the s >= S threshold of the introduction.
  core::LineParams p = params();
  auto oracle = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, 3);
  util::Rng rng(4);
  core::LineInput input = core::LineInput::random(p, rng);

  const std::uint64_t m = 4;
  FullMemoryStrategy strat(p, OwnershipPlan::round_robin(p, m));
  mpc::MpcConfig c;
  c.machines = m;
  c.local_memory_bits = p.input_bits();  // < gathered share with tags/indices
  c.query_budget = p.w + 1;
  c.max_rounds = 10;
  mpc::MpcSimulation sim(c, oracle);
  EXPECT_THROW(sim.run(strat, strat.make_initial_memory(input)), mpc::MemoryViolation);
}

TEST(FullMemory, RequiresQueryBudgetAtLeastW) {
  core::LineParams p = params();
  auto oracle = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, 5);
  util::Rng rng(6);
  core::LineInput input = core::LineInput::random(p, rng);

  const std::uint64_t m = 2;
  FullMemoryStrategy strat(p, OwnershipPlan::round_robin(p, m));
  mpc::MpcConfig c;
  c.machines = m;
  c.local_memory_bits = strat.required_local_memory();
  c.query_budget = p.w - 1;  // one too few: the single-round walk needs w
  c.max_rounds = 10;
  mpc::MpcSimulation sim(c, oracle);
  EXPECT_THROW(sim.run(strat, strat.make_initial_memory(input)),
               hash::QueryBudgetExceeded);
}

TEST(FullMemory, MatchesPointerChasingOutput) {
  core::LineParams p = params(100);
  auto oracle = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, 7);
  util::Rng rng(8);
  core::LineInput input = core::LineInput::random(p, rng);
  util::BitString expected = core::LineFunction(p).evaluate(*oracle, input);

  FullMemoryStrategy strat(p, OwnershipPlan::round_robin(p, 3));
  mpc::MpcConfig c;
  c.machines = 3;
  c.local_memory_bits = strat.required_local_memory();
  c.query_budget = p.w;
  c.max_rounds = 10;
  mpc::MpcSimulation sim(c, oracle);
  auto result = sim.run(strat, strat.make_initial_memory(input));
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.output, expected);
}

}  // namespace
}  // namespace mpch::strategies
