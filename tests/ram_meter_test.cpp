#include "ram/ram_meter.hpp"

#include <gtest/gtest.h>

namespace mpch::ram {
namespace {

TEST(RamMeter, ChargesQueriesAtOracleCost) {
  RamMeter meter(64);
  meter.charge_query();
  meter.charge_query();
  EXPECT_EQ(meter.costs().oracle_queries, 2u);
  EXPECT_EQ(meter.costs().time_units, 128u);
}

TEST(RamMeter, ChargesWordOps) {
  RamMeter meter(10);
  meter.charge_ops(5);
  meter.charge_ops();
  EXPECT_EQ(meter.costs().word_ops, 6u);
  EXPECT_EQ(meter.costs().time_units, 6u);
}

TEST(RamMeter, TracksPeakMemory) {
  RamMeter meter(1);
  meter.allocate_bits(100);
  meter.allocate_bits(50);
  EXPECT_EQ(meter.costs().peak_memory_bits, 150u);
  meter.free_bits(120);
  EXPECT_EQ(meter.live_bits(), 30u);
  meter.allocate_bits(60);
  EXPECT_EQ(meter.costs().peak_memory_bits, 150u);  // peak unchanged
  meter.allocate_bits(100);
  EXPECT_EQ(meter.costs().peak_memory_bits, 190u);  // new peak
}

TEST(RamMeter, OverFreeingThrows) {
  RamMeter meter(1);
  meter.allocate_bits(10);
  EXPECT_THROW(meter.free_bits(11), std::logic_error);
}

TEST(RamMeter, TimeCombinesQueriesAndOps) {
  RamMeter meter(7);
  meter.charge_query();
  meter.charge_ops(3);
  EXPECT_EQ(meter.costs().time_units, 10u);
}

}  // namespace
}  // namespace mpch::ram
