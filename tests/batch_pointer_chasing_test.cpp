#include "strategies/batch_pointer_chasing.hpp"

#include <gtest/gtest.h>

#include "core/line.hpp"
#include "hash/random_oracle.hpp"
#include "strategies/pointer_chasing.hpp"
#include "util/rng.hpp"

namespace mpch::strategies {
namespace {

core::LineParams params(std::uint64_t w = 256) {
  return core::LineParams::make(64, 16, 8, w);
}

struct Batch {
  core::LineParams p;
  std::shared_ptr<hash::LazyRandomOracle> oracle;
  std::vector<core::LineInput> inputs;
  std::vector<util::BitString> expected;

  Batch(std::uint64_t w, std::uint64_t k, std::uint64_t seed) : p(params(w)) {
    oracle = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, seed);
    core::LineFunction f(p);
    for (std::uint64_t i = 0; i < k; ++i) {
      util::Rng rng(seed * 100 + i);
      inputs.push_back(core::LineInput::random(p, rng));
      expected.push_back(f.evaluate(*oracle, inputs.back()));
    }
  }
};

mpc::MpcRunResult run_batch(Batch& b, std::uint64_t m, std::uint64_t k) {
  BatchPointerChasingStrategy strat(b.p, OwnershipPlan::round_robin(b.p, m), k);
  mpc::MpcConfig c;
  c.machines = m;
  c.local_memory_bits = strat.required_local_memory();
  c.query_budget = 1 << 20;
  c.max_rounds = 20000;  // fail fast on regressions instead of spinning
  mpc::MpcSimulation sim(c, b.oracle);
  return sim.run(strat, strat.make_initial_memory(b.inputs));
}

TEST(BatchPointerChasing, SingleInstanceMatchesLine) {
  Batch b(128, 1, 1);
  auto result = run_batch(b, 4, 1);
  ASSERT_TRUE(result.completed);
  auto answers = BatchPointerChasingStrategy::parse_outputs(b.p, result.output, 1);
  EXPECT_EQ(answers[0], b.expected[0]);
}

TEST(BatchPointerChasing, AllInstancesCorrect) {
  const std::uint64_t k = 5;
  Batch b(128, k, 2);
  auto result = run_batch(b, 4, k);
  ASSERT_TRUE(result.completed);
  auto answers = BatchPointerChasingStrategy::parse_outputs(b.p, result.output, k);
  for (std::uint64_t i = 0; i < k; ++i) EXPECT_EQ(answers[i], b.expected[i]) << i;
}

TEST(BatchPointerChasing, ThroughputScalesButLatencyDoesNot) {
  // k chains batched take barely more rounds than one chain — far below the
  // k-fold sequential cost. That is the throughput/latency split: the
  // theorem bounds latency only.
  const std::uint64_t m = 4, w = 512;
  Batch b1(w, 1, 3);
  auto r1 = run_batch(b1, m, 1);
  ASSERT_TRUE(r1.completed);

  const std::uint64_t k = 8;
  Batch bk(w, k, 3);
  auto rk = run_batch(bk, m, k);
  ASSERT_TRUE(rk.completed);
  auto answers = BatchPointerChasingStrategy::parse_outputs(bk.p, rk.output, k);
  for (std::uint64_t i = 0; i < k; ++i) EXPECT_EQ(answers[i], bk.expected[i]) << i;

  EXPECT_LT(rk.rounds_used, 2 * r1.rounds_used);          // ~flat in k
  EXPECT_LT(rk.rounds_used * 3, k * r1.rounds_used);      // >> cheaper than sequential
}

TEST(BatchPointerChasing, HonestQueryCountIsKTimesW) {
  const std::uint64_t k = 3, w = 128;
  Batch b(w, k, 4);
  auto result = run_batch(b, 4, k);
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.trace.total_oracle_queries(), k * w);
}

TEST(BatchPointerChasing, RejectsBadInstanceCounts) {
  core::LineParams p = params();
  EXPECT_THROW(BatchPointerChasingStrategy(p, OwnershipPlan::round_robin(p, 2), 0),
               std::invalid_argument);
  BatchPointerChasingStrategy strat(p, OwnershipPlan::round_robin(p, 2), 2);
  util::Rng rng(1);
  std::vector<core::LineInput> one = {core::LineInput::random(p, rng)};
  EXPECT_THROW(strat.make_initial_memory(one), std::invalid_argument);
}

}  // namespace
}  // namespace mpch::strategies
