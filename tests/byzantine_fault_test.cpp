// byzantine_fault_test.cpp — Byzantine verbs and the quarantine policy.
//
// fault_recovery_test.cpp pins the fail-stop story: faults announce
// themselves and recovery replays checkpoints. This suite pins the Byzantine
// story: flip/forge/garble-oracle/tamper-ckpt apply *silently*, and the
// quarantine policy (ChaosHarness::run_quarantine) must detect them by
// cross-checking every round against a clean replica, localise the offender
// via attestation digests (or a typed TamperViolation when authenticated
// messaging is on), and still finish bit-identical to a fault-free run.
// Satellite coverage rides along: the ObserverChain throw-delivery contract,
// dup under ReplicateRound, and drop aimed at an empty inbox.
#include "fault/recovery.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/line.hpp"
#include "fault/checkpoint.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "hash/random_oracle.hpp"
#include "mpc/auth.hpp"
#include "mpc/simulation.hpp"
#include "ram/machine.hpp"
#include "ram/programs.hpp"
#include "strategies/pointer_chasing.hpp"
#include "strategies/ram_emulation.hpp"
#include "transport/socket.hpp"
#include "util/rng.hpp"

namespace mpch {
namespace {

using util::BitString;

constexpr std::uint64_t kSeed = 11;

struct Scenario {
  mpc::MpcConfig config;
  std::shared_ptr<mpc::MpcAlgorithm> algo;
  std::vector<BitString> initial;
  fault::ChaosHarness::OracleFactory oracle_factory;
};

/// One oracle-model and one plain-model scenario, built fresh per run (same
/// shapes as fault_recovery_test.cpp). `authenticate` turns tagged messaging
/// on and widens s for the tag bits, mirroring what mpch-chaos does.
Scenario make_scenario(const std::string& name, std::uint64_t threads, bool authenticate) {
  Scenario s;
  if (name == "pointer-chasing") {
    core::LineParams p = core::LineParams::make(64, 16, 8, 96);
    util::Rng rng(kSeed + 1);
    core::LineInput input = core::LineInput::random(p, rng);
    auto strat = std::make_shared<strategies::PointerChasingStrategy>(
        p, strategies::OwnershipPlan::round_robin(p, 4));
    s.config.machines = 4;
    s.config.local_memory_bits = strat->required_local_memory();
    s.config.query_budget = 1 << 20;
    s.initial = strat->make_initial_memory(input);
    s.algo = strat;
    s.oracle_factory = [n = p.n] { return std::make_shared<hash::LazyRandomOracle>(n, n, kSeed); };
  } else if (name == "ram-emulation") {
    const std::uint64_t n = 8;
    std::vector<std::uint64_t> memory(n);
    for (std::uint64_t i = 0; i < n; ++i) memory[i] = (kSeed * 7 + i * 3) % 97;
    std::vector<ram::Instruction> prog = ram::programs::sum(n);
    auto strat = std::make_shared<strategies::RamEmulationStrategy>(prog, 4, 1);
    s.config.machines = 4;
    s.config.local_memory_bits = strat->required_local_memory(memory.size());
    s.config.query_budget = 1;
    s.initial = strat->make_initial_memory(memory);
    s.algo = strat;
    s.oracle_factory = [] { return std::shared_ptr<hash::LazyRandomOracle>(); };
  } else {
    throw std::invalid_argument("unknown scenario " + name);
  }
  s.config.max_rounds = 20000;
  s.config.tape_seed = 5;
  s.config.threads = threads;
  if (authenticate) {
    s.config.authenticate_messages = true;
    s.config.local_memory_bits += 1 << 16;  // headroom for the per-message tags
  }
  return s;
}

struct Artifacts {
  bool completed = false;
  std::uint64_t rounds_used = 0;
  BitString output;
  std::vector<mpc::RoundStats> rounds;
  std::map<std::string, std::vector<std::uint64_t>> annotations;
  std::vector<hash::QueryRecord> records;
  std::vector<std::pair<BitString, BitString>> touched;
  std::uint64_t oracle_total = 0;
};

Artifacts extract(const mpc::MpcRunResult& result, const hash::LazyRandomOracle* oracle) {
  Artifacts a;
  a.completed = result.completed;
  a.rounds_used = result.rounds_used;
  a.output = result.output;
  a.rounds = result.trace.rounds();
  a.annotations = result.trace.annotations();
  a.records = result.transcript->records();
  if (oracle != nullptr) {
    a.touched = oracle->touched_table();
    a.oracle_total = oracle->total_queries();
  }
  return a;
}

void expect_identical(const Artifacts& clean, const Artifacts& recovered) {
  EXPECT_EQ(clean.completed, recovered.completed);
  EXPECT_EQ(clean.rounds_used, recovered.rounds_used);
  EXPECT_EQ(clean.output, recovered.output);
  EXPECT_EQ(clean.rounds, recovered.rounds);
  EXPECT_EQ(clean.annotations, recovered.annotations);
  EXPECT_EQ(clean.records, recovered.records);
  EXPECT_EQ(clean.oracle_total, recovered.oracle_total);
  EXPECT_EQ(clean.touched, recovered.touched);
}

Artifacts run_clean(const std::string& name, std::uint64_t threads, bool authenticate) {
  Scenario s = make_scenario(name, threads, authenticate);
  auto oracle = s.oracle_factory();
  mpc::MpcSimulation sim(s.config, oracle);
  mpc::MpcRunResult result = sim.run(*s.algo, s.initial);
  EXPECT_TRUE(result.completed) << name;
  return extract(result, oracle.get());
}

bool log_contains(const std::vector<std::string>& log, const std::string& needle) {
  for (const auto& line : log) {
    if (line.find(needle) != std::string::npos) return true;
  }
  return false;
}

TEST(ByzantineFaultPlan, ParsesEveryVerbWithFullProvenance) {
  fault::FaultPlan plan = fault::FaultPlan::parse(
      "flip:machine=1,round=2,bit=5;forge:round=2,to=0,index=1,from=3;"
      "garble-oracle:round=3,entry=7;tamper-ckpt:round=4,bit=100");
  ASSERT_EQ(plan.events.size(), 4u);

  EXPECT_EQ(plan.events[0].kind, fault::FaultKind::FlipBit);
  EXPECT_EQ(plan.events[0].machine, 1u);
  EXPECT_EQ(plan.events[0].round, 2u);
  EXPECT_EQ(plan.events[0].index, 5u);

  EXPECT_EQ(plan.events[1].kind, fault::FaultKind::ForgeMessage);
  EXPECT_EQ(plan.events[1].machine, 0u);
  EXPECT_EQ(plan.events[1].index, 1u);
  EXPECT_EQ(plan.events[1].aux, 3u);  // the spoofed sender

  EXPECT_EQ(plan.events[2].kind, fault::FaultKind::GarbleOracle);
  EXPECT_EQ(plan.events[2].index, 7u);

  EXPECT_EQ(plan.events[3].kind, fault::FaultKind::TamperCheckpoint);
  EXPECT_EQ(plan.events[3].index, 100u);

  // describe() names each verb so fault logs read as provenance.
  for (const auto& ev : plan.events) EXPECT_FALSE(ev.describe().empty());
}

TEST(ByzantineFaultPlan, RejectsMalformedByzantineTokens) {
  EXPECT_THROW(fault::FaultPlan::parse("flip:round=1"), std::invalid_argument);  // missing bit
  EXPECT_THROW(fault::FaultPlan::parse("flip:machine=0,round=1,bits=2"), std::invalid_argument);
  EXPECT_THROW(fault::FaultPlan::parse("forge:round=1,to=0,index=0"), std::invalid_argument);
  EXPECT_THROW(fault::FaultPlan::parse("garble-oracle:round=1"), std::invalid_argument);
  EXPECT_THROW(fault::FaultPlan::parse("tamper-ckpt:bit=1"), std::invalid_argument);
}

TEST(Quarantine, RecoversEveryByzantineVerbBitIdentical) {
  const std::pair<const char*, const char*> kCases[] = {
      {"pointer-chasing", "flip:machine=1,round=3,bit=2"},
      {"pointer-chasing", "forge:round=3,to=1,index=0,from=99"},
      {"pointer-chasing", "garble-oracle:round=3,entry=0"},
      {"pointer-chasing", "tamper-ckpt:round=3,bit=100"},
      {"ram-emulation", "flip:machine=0,round=2,bit=0"},
      {"ram-emulation", "forge:round=2,to=0,index=0,from=99"},
  };
  for (const auto& [name, spec] : kCases) {
    SCOPED_TRACE(std::string(name) + " " + spec);
    Artifacts clean = run_clean(name, 1, false);
    Scenario s = make_scenario(name, 1, false);
    fault::ChaosHarness harness(s.config, s.oracle_factory);
    fault::ChaosResult chaos =
        harness.run_quarantine(*s.algo, s.initial, fault::FaultPlan::parse(spec));
    EXPECT_EQ(chaos.cost.faults_injected, 1u);
    EXPECT_GE(chaos.cost.recoveries, 1u);
    EXPECT_GT(chaos.cost.attestation_checks, 0u);
    EXPECT_TRUE(log_contains(chaos.fault_log, "detected")) << spec;
    expect_identical(clean, extract(chaos.run, chaos.oracle.get()));
  }
}

TEST(Quarantine, IsThreadInvariant) {
  for (std::uint64_t threads : {std::uint64_t{1}, std::uint64_t{8}}) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    Artifacts clean = run_clean("pointer-chasing", threads, false);
    Scenario s = make_scenario("pointer-chasing", threads, false);
    fault::ChaosHarness harness(s.config, s.oracle_factory);
    fault::ChaosResult chaos = harness.run_quarantine(
        *s.algo, s.initial, fault::FaultPlan::parse("flip:machine=1,round=3,bit=2"));
    expect_identical(clean, extract(chaos.run, chaos.oracle.get()));
  }
}

TEST(Quarantine, AuthenticatedFlipIsTypedAndStrikesTheReceiver) {
  // With authenticate_messages on, the flipped payload fails MAC
  // verification at the faulted round's own barrier: detection is a typed
  // TamperViolation naming the machine, and quarantine strikes it directly
  // instead of needing the attestation cross-check to localise.
  Artifacts clean = run_clean("pointer-chasing", 1, true);
  Scenario s = make_scenario("pointer-chasing", 1, true);
  fault::ChaosHarness harness(s.config, s.oracle_factory);
  fault::ChaosResult chaos = harness.run_quarantine(
      *s.algo, s.initial, fault::FaultPlan::parse("flip:machine=1,round=3,bit=2"));
  EXPECT_GE(chaos.cost.quarantine_strikes, 1u);
  EXPECT_TRUE(log_contains(chaos.fault_log, "machine 1 struck"));
  EXPECT_TRUE(log_contains(chaos.fault_log, "detected"));
  expect_identical(clean, extract(chaos.run, chaos.oracle.get()));
}

TEST(Quarantine, SilentFlipIsLocalisedByAttestationDigests) {
  // No authentication: the flip corrupts machine 1's round-start memory
  // silently, the clean-replica cross-check sees the divergence, and the
  // per-machine attestation digests name machine 1 as the one that differs.
  Scenario s = make_scenario("pointer-chasing", 1, false);
  fault::ChaosHarness harness(s.config, s.oracle_factory);
  fault::ChaosResult chaos = harness.run_quarantine(
      *s.algo, s.initial, fault::FaultPlan::parse("flip:machine=1,round=3,bit=2"));
  EXPECT_TRUE(log_contains(chaos.fault_log, "attestation mismatch at machine 1"));
  EXPECT_TRUE(log_contains(chaos.fault_log, "machine 1 struck"));
}

TEST(Quarantine, EscalatesToPeriodicCheckpointWhenRetriesExhausted) {
  Artifacts clean = run_clean("pointer-chasing", 1, false);
  Scenario s = make_scenario("pointer-chasing", 1, false);
  fault::ChaosHarness harness(s.config, s.oracle_factory);
  fault::QuarantineConfig qc;
  qc.max_round_retries = 0;  // any detection escalates immediately
  qc.checkpoint_every = 2;
  fault::ChaosResult chaos = harness.run_quarantine(
      *s.algo, s.initial, fault::FaultPlan::parse("flip:machine=1,round=3,bit=2"), qc);
  EXPECT_GE(chaos.cost.escalations, 1u);
  EXPECT_TRUE(log_contains(chaos.fault_log, "escalation:"));
  EXPECT_TRUE(log_contains(chaos.fault_log, "periodic checkpoint"));
  expect_identical(clean, extract(chaos.run, chaos.oracle.get()));
}

TEST(Quarantine, RejectsZeroCheckpointCadence) {
  Scenario s = make_scenario("ram-emulation", 1, false);
  fault::ChaosHarness harness(s.config, s.oracle_factory);
  fault::QuarantineConfig qc;
  qc.checkpoint_every = 0;
  EXPECT_THROW(
      harness.run_quarantine(*s.algo, s.initial, fault::FaultPlan::parse("kill:round=1"), qc),
      std::invalid_argument);
}

TEST(TamperCheckpoint, CorruptedSnapshotFailsIntegrityCheckAtRestore) {
  // Unit level: a post-save bit flip in the encoded snapshot must be caught
  // by the wire format's checksum, never resumed from.
  Scenario s = make_scenario("ram-emulation", 1, false);
  fault::Checkpointer ckpt(s.config, nullptr, 1, "", true);
  mpc::MpcSimulation sim(s.config, nullptr);
  sim.run(*s.algo, s.initial, &ckpt);
  ASSERT_TRUE(ckpt.latest_encoded().has_value());
  EXPECT_NO_THROW(fault::deserialize(*ckpt.latest_encoded()));
  ASSERT_TRUE(ckpt.corrupt_latest_encoded(12345));
  EXPECT_THROW(fault::deserialize(*ckpt.latest_encoded()), fault::CheckpointError);
  // The in-memory decoded struct is deliberately left intact — the point of
  // the verb is that restores must not trust it over the encoded form.
  EXPECT_TRUE(ckpt.latest().has_value());
}

TEST(TamperCheckpoint, RestartPolicyRefusesToResumeFromTamperedSnapshot) {
  // End to end: tamper the round-1 snapshot, then kill at round 2 so the
  // restart policy has to restore exactly the tampered image. CheckpointError
  // (not a silent resume of corrupted state) is the required outcome.
  Scenario s = make_scenario("ram-emulation", 1, false);
  fault::ChaosHarness harness(s.config, s.oracle_factory);
  EXPECT_THROW(harness.run_restart(*s.algo, s.initial,
                                   fault::FaultPlan::parse("tamper-ckpt:round=1,bit=9;kill:round=2"),
                                   /*checkpoint_every=*/1),
               fault::CheckpointError);
}

TEST(GarbleOracle, CorruptsMemoAndVerifyMemoNamesTheInput) {
  hash::LazyRandomOracle oracle(16, 16, kSeed);
  for (std::uint64_t i = 0; i < 3; ++i) oracle.query(BitString::from_uint(i, 16));
  EXPECT_TRUE(oracle.verify_memo().empty());

  ASSERT_TRUE(oracle.corrupt_memo_entry(1, 4));
  std::vector<BitString> bad = oracle.verify_memo();
  ASSERT_EQ(bad.size(), 1u);
  // Entry 1 in sorted input order is input value 1.
  EXPECT_EQ(bad[0], BitString::from_uint(1, 16));

  // Restoring a fresh oracle from the tampered table must be refused: the
  // memo is a materialised pure function of the seed, and restore_table
  // re-derives every entry.
  hash::LazyRandomOracle fresh(16, 16, kSeed);
  EXPECT_THROW(fresh.restore_table(oracle.touched_table(), oracle.total_queries()),
               std::invalid_argument);

  EXPECT_FALSE(oracle.corrupt_memo_entry(99));  // out of range: fired no-op
}

// ---- satellite: ObserverChain must deliver hooks past a throwing child ----

struct ThrowingObserver final : mpc::RoundObserver {
  std::string tag;
  explicit ThrowingObserver(std::string t) : tag(std::move(t)) {}
  void before_round(std::uint64_t) override { throw std::runtime_error(tag); }
  void after_merge(std::uint64_t, std::vector<std::vector<mpc::Message>>&) override {
    throw std::runtime_error(tag);
  }
  void after_round(const mpc::RoundSnapshot&) override { throw std::runtime_error(tag); }
};

struct CountingObserver final : mpc::RoundObserver {
  int before = 0, merges = 0, afters = 0;
  void before_round(std::uint64_t) override { ++before; }
  void after_merge(std::uint64_t, std::vector<std::vector<mpc::Message>>&) override { ++merges; }
  void after_round(const mpc::RoundSnapshot&) override { ++afters; }
};

TEST(ObserverChain, DeliversEveryHookEvenWhenAnEarlierChildThrows) {
  ThrowingObserver thrower("boom");
  CountingObserver counter;
  fault::ObserverChain chain({&thrower, &counter});
  std::vector<std::vector<mpc::Message>> inboxes;
  mpc::RoundSnapshot snapshot;

  EXPECT_THROW(chain.before_round(0), std::runtime_error);
  EXPECT_THROW(chain.after_merge(0, inboxes), std::runtime_error);
  EXPECT_THROW(chain.after_round(snapshot), std::runtime_error);
  // The child *behind* the thrower saw every barrier anyway: a throwing
  // injector must not blind the checkpointer chained after it.
  EXPECT_EQ(counter.before, 1);
  EXPECT_EQ(counter.merges, 1);
  EXPECT_EQ(counter.afters, 1);
}

TEST(ObserverChain, FirstThrowerWinsWhenSeveralThrow) {
  ThrowingObserver first("first");
  ThrowingObserver second("second");
  fault::ObserverChain chain({&first, &second});
  try {
    chain.before_round(0);
    FAIL() << "expected the collected exception to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "first");  // chain order encodes detection priority
  }
}

// ---- satellite: dup under ReplicateRound, drop aimed at an empty inbox ----

TEST(MessageFaults, DuplicateRecoversUnderReplicateRound) {
  Artifacts clean = run_clean("ram-emulation", 1, false);
  Scenario s = make_scenario("ram-emulation", 1, false);
  fault::ChaosHarness harness(s.config, s.oracle_factory);
  fault::ChaosResult chaos =
      harness.run_replicate(*s.algo, s.initial, fault::FaultPlan::parse("dup:round=2,to=0,index=0"));
  EXPECT_EQ(chaos.cost.faults_injected, 1u);
  EXPECT_EQ(chaos.cost.replica_verifications, 1u);
  EXPECT_EQ(chaos.cost.rounds_reexecuted, 2u);  // two replicas of the one round
  expect_identical(clean, extract(chaos.run, chaos.oracle.get()));
}

/// Nobody ever sends; machine 0 outputs in round 1. Every inbox past round 0
/// is empty, so a drop aimed at one names a delivery that does not exist.
class SilentAlgorithm final : public mpc::MpcAlgorithm {
 public:
  void run_machine(mpc::MachineIo& io, hash::CountingOracle*, const mpc::SharedTape&,
                   mpc::RoundTrace&) override {
    if (io.round == 1 && io.machine == 0) io.output = BitString::from_uint(1, 8);
  }
  std::string name() const override { return "silent"; }
};

TEST(MessageFaults, DropOnEmptyInboxFiresAsNoOpAndNeedsNoRecovery) {
  mpc::MpcConfig c;
  c.machines = 2;
  c.local_memory_bits = 64;
  c.query_budget = 1;
  c.max_rounds = 4;
  c.tape_seed = 5;
  SilentAlgorithm algo;

  // Even fail-stop injection has nothing to detect: the event fires (it is
  // consumed and logged) but there is no delivery to remove and no throw.
  fault::FaultInjector injector(fault::FaultPlan::parse("drop:round=0,to=1,index=0"),
                                /*fail_stop=*/true);
  mpc::MpcSimulation sim(c, nullptr);
  mpc::MpcRunResult run = sim.run(algo, {BitString(), BitString()}, &injector);
  EXPECT_TRUE(run.completed);
  EXPECT_EQ(injector.faults_fired(), 1u);

  // Same contract through a recovery policy: nothing is detected (the
  // policies count *caught* faults), so nothing is recovered or re-executed.
  SilentAlgorithm algo2;
  fault::ChaosHarness harness(c, [] { return std::shared_ptr<hash::LazyRandomOracle>(); });
  fault::ChaosResult chaos = harness.run_replicate(
      algo2, {BitString(), BitString()}, fault::FaultPlan::parse("drop:round=0,to=1,index=0"));
  EXPECT_TRUE(chaos.run.completed);
  EXPECT_EQ(chaos.cost.faults_injected, 0u);
  EXPECT_EQ(chaos.cost.recoveries, 0u);
  EXPECT_EQ(chaos.cost.rounds_reexecuted, 0u);
}

// ---- the socket wire path (transport/socket.hpp) ----
//
// The verbs above tamper with in-process state. With the socket backend the
// message bytes cross a real process boundary, so the same attacks can be
// mounted *on the wire* — a flipped frame off a router socket is
// indistinguishable from a compromised router's output. Detection must be
// the identical typed path with the identical provenance, and quarantine
// recovery over forked routers must still converge to the fault-free run.

// TSan cannot follow fork()ed routers; MPCH_SKIP_SOCKET_TRANSPORT=1 skips
// the socket-path tests so the rest of this suite still runs under it.
bool skip_socket_backend() {
  const char* v = std::getenv("MPCH_SKIP_SOCKET_TRANSPORT");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

TEST(Quarantine, FlipAndForgeOverSocketTransportRecoverBitIdentical) {
  // The clean reference runs in-process: recovery over the socket backend
  // must reproduce it bit for bit, not merely recover to *something*.
  if (skip_socket_backend()) GTEST_SKIP() << "MPCH_SKIP_SOCKET_TRANSPORT set";
  const char* kSpecs[] = {"flip:machine=1,round=3,bit=2", "forge:round=3,to=1,index=0,from=99"};
  for (const char* spec : kSpecs) {
    SCOPED_TRACE(spec);
    Artifacts clean = run_clean("pointer-chasing", 1, false);
    Scenario s = make_scenario("pointer-chasing", 1, false);
    s.config.transport = transport::TransportKind::kSocket;
    s.config.transport_processes = 2;
    fault::ChaosHarness harness(s.config, s.oracle_factory);
    fault::ChaosResult chaos =
        harness.run_quarantine(*s.algo, s.initial, fault::FaultPlan::parse(spec));
    EXPECT_EQ(chaos.cost.faults_injected, 1u);
    EXPECT_GE(chaos.cost.recoveries, 1u);
    EXPECT_TRUE(log_contains(chaos.fault_log, "detected")) << spec;
    expect_identical(clean, extract(chaos.run, chaos.oracle.get()));
  }
}

TEST(ByzantineWire, SocketWireFlipIsTypedWithInProcessProvenance) {
  // Flip the same logical bits two ways — in-process (mutating machine 1's
  // merged round-3 inbox through an observer) and on the wire (mutating the
  // decoded frames off the router socket) — and require the *same*
  // TamperViolation: machine, round, message index, byte offset.
  if (skip_socket_backend()) GTEST_SKIP() << "MPCH_SKIP_SOCKET_TRANSPORT set";
  struct InboxFlip final : mpc::RoundObserver {
    void after_merge(std::uint64_t round,
                     std::vector<std::vector<mpc::Message>>& next_inboxes) override {
      if (round != 3) return;
      for (auto& msg : next_inboxes[1]) msg.payload.set(2, !msg.payload.get(2));
    }
  };

  std::optional<mpc::TamperViolation> in_process;
  {
    Scenario s = make_scenario("pointer-chasing", 1, true);
    mpc::MpcSimulation sim(s.config, s.oracle_factory());
    InboxFlip flip;
    try {
      sim.run(*s.algo, s.initial, &flip);
      FAIL() << "in-process flip went undetected";
    } catch (const mpc::TamperViolation& tv) {
      in_process = tv;
    }
  }

  std::optional<mpc::TamperViolation> wire;
  {
    Scenario s = make_scenario("pointer-chasing", 1, true);
    mpc::MpcSimulation sim(s.config, s.oracle_factory());
    sim.set_transport_factory([] {
      transport::TransportOptions options;
      options.processes = 2;
      auto t = std::make_unique<transport::SocketTransport>(options);
      t->set_wire_tamper([](transport::WireFrame& frame) {
        if (frame.round == 3 && frame.to == 1) {
          frame.payload.set(2, !frame.payload.get(2));
        }
      });
      return t;
    });
    try {
      sim.run(*s.algo, s.initial);
      FAIL() << "wire flip went undetected";
    } catch (const mpc::TamperViolation& tv) {
      wire = tv;
    }
  }

  ASSERT_TRUE(in_process.has_value());
  ASSERT_TRUE(wire.has_value());
  EXPECT_EQ(in_process->machine(), wire->machine());
  EXPECT_EQ(in_process->round(), 3u);
  EXPECT_EQ(wire->round(), 3u);
  EXPECT_EQ(in_process->message_index(), wire->message_index());
  EXPECT_EQ(in_process->byte_offset(), wire->byte_offset());
}

}  // namespace
}  // namespace mpch
