#include "hash/oracle_transcript.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace mpch::hash {
namespace {

using util::BitString;

std::shared_ptr<RandomOracle> make_inner() {
  return std::make_shared<LazyRandomOracle>(16, 16, 123);
}

TEST(CountingOracle, EnforcesPerRoundBudget) {
  auto transcript = std::make_shared<OracleTranscript>();
  CountingOracle co(make_inner(), 0, 3, transcript);
  co.begin_round(0);
  for (int i = 0; i < 3; ++i) co.query(BitString::from_uint(i, 16));
  EXPECT_EQ(co.remaining_budget(), 0u);
  EXPECT_THROW(co.query(BitString::from_uint(9, 16)), QueryBudgetExceeded);
}

TEST(CountingOracle, BudgetResetsEachRound) {
  auto transcript = std::make_shared<OracleTranscript>();
  CountingOracle co(make_inner(), 0, 2, transcript);
  co.begin_round(0);
  co.query(BitString::from_uint(1, 16));
  co.query(BitString::from_uint(2, 16));
  co.begin_round(1);
  EXPECT_EQ(co.remaining_budget(), 2u);
  co.query(BitString::from_uint(3, 16));
  EXPECT_EQ(co.queries_this_round(), 1u);
  EXPECT_EQ(co.total_queries(), 3u);
}

TEST(CountingOracle, RecordsTranscriptWithRoundAndMachine) {
  auto transcript = std::make_shared<OracleTranscript>();
  auto inner = make_inner();
  CountingOracle m0(inner, 0, 10, transcript);
  CountingOracle m1(inner, 1, 10, transcript);
  m0.begin_round(0);
  m1.begin_round(0);
  m0.query(BitString::from_uint(5, 16));
  m1.query(BitString::from_uint(6, 16));
  m0.begin_round(1);
  m0.query(BitString::from_uint(7, 16));

  ASSERT_EQ(transcript->size(), 3u);
  EXPECT_EQ(transcript->queries_of(0, 0).size(), 1u);
  EXPECT_EQ(transcript->queries_of(1, 0).size(), 1u);
  EXPECT_EQ(transcript->queries_of(0, 1).size(), 1u);
  EXPECT_EQ(transcript->queries_of(1, 1).size(), 0u);
  EXPECT_EQ(transcript->queries_up_to(0).size(), 2u);
  EXPECT_EQ(transcript->queries_up_to(1).size(), 3u);
}

TEST(CountingOracle, AnswersMatchInnerOracle) {
  auto inner = make_inner();
  auto transcript = std::make_shared<OracleTranscript>();
  CountingOracle co(inner, 0, 10, transcript);
  co.begin_round(0);
  BitString x = BitString::from_uint(77, 16);
  EXPECT_EQ(co.query(x), inner->query(x));
  // Transcript records the answer too.
  EXPECT_EQ(transcript->records()[0].output, inner->query(x));
}

TEST(CountingOracle, SharedInnerOracleIsConsistentAcrossMachines) {
  auto inner = make_inner();
  auto transcript = std::make_shared<OracleTranscript>();
  CountingOracle m0(inner, 0, 10, transcript);
  CountingOracle m1(inner, 1, 10, transcript);
  m0.begin_round(0);
  m1.begin_round(0);
  BitString x = BitString::from_uint(1000, 16);
  EXPECT_EQ(m0.query(x), m1.query(x));
}

TEST(OracleTranscript, IntersectCountDistinctTargets) {
  OracleTranscript t;
  std::vector<BitString> inputs = {BitString::from_uint(1, 8), BitString::from_uint(2, 8),
                                   BitString::from_uint(1, 8)};
  std::vector<BitString> targets = {BitString::from_uint(1, 8), BitString::from_uint(3, 8)};
  EXPECT_EQ(t.intersect_count(inputs, targets), 1u);
  targets.push_back(BitString::from_uint(2, 8));
  EXPECT_EQ(t.intersect_count(inputs, targets), 2u);
}

TEST(CountingOracle, NullInnerRejected) {
  auto transcript = std::make_shared<OracleTranscript>();
  EXPECT_THROW(CountingOracle(nullptr, 0, 1, transcript), std::invalid_argument);
}

TEST(CountingOracle, ZeroBudgetRejectsImmediately) {
  auto transcript = std::make_shared<OracleTranscript>();
  CountingOracle co(make_inner(), 0, 0, transcript);
  co.begin_round(0);
  EXPECT_THROW(co.query(BitString::from_uint(0, 16)), QueryBudgetExceeded);
}

}  // namespace
}  // namespace mpch::hash
