#include "mpclib/mis.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace mpch::mpclib {
namespace {

mpc::MpcConfig config(std::uint64_t m) {
  mpc::MpcConfig c;
  c.machines = m;
  c.local_memory_bits = 1 << 20;
  c.query_budget = 1;
  c.max_rounds = 2000;
  c.tape_seed = 31;
  return c;
}

std::vector<bool> run_mis(std::uint64_t machines, std::uint64_t n,
                          const std::vector<Edge>& edges, std::uint64_t* rounds = nullptr) {
  mpc::MpcSimulation sim(config(machines), nullptr);
  LubyMisAlgorithm algo(machines, n);
  auto result = sim.run(algo, LubyMisAlgorithm::make_initial_memory(machines, n, edges));
  EXPECT_TRUE(result.completed);
  if (rounds != nullptr) *rounds = result.rounds_used;
  return LubyMisAlgorithm::parse_membership(result.output, n);
}

TEST(LubyMis, EmptyGraphTakesEveryVertex) {
  auto mis = run_mis(3, 6, {});
  for (bool b : mis) EXPECT_TRUE(b);
}

TEST(LubyMis, TriangleTakesExactlyOne) {
  std::vector<Edge> tri = {{0, 1}, {1, 2}, {0, 2}};
  auto mis = run_mis(2, 3, tri);
  EXPECT_TRUE(LubyMisAlgorithm::verify_mis(mis, 3, tri));
  EXPECT_EQ(std::count(mis.begin(), mis.end(), true), 1);
}

TEST(LubyMis, PathGraphValid) {
  std::vector<Edge> path;
  const std::uint64_t n = 16;
  for (std::uint64_t i = 0; i + 1 < n; ++i) path.push_back({i, i + 1});
  auto mis = run_mis(4, n, path);
  EXPECT_TRUE(LubyMisAlgorithm::verify_mis(mis, n, path));
  // A path MIS has at least n/3 vertices.
  EXPECT_GE(std::count(mis.begin(), mis.end(), true), static_cast<long>(n / 3));
}

TEST(LubyMis, StarTakesCenterOrAllLeaves) {
  std::vector<Edge> star;
  for (std::uint64_t i = 1; i < 12; ++i) star.push_back({0, i});
  auto mis = run_mis(4, 12, star);
  EXPECT_TRUE(LubyMisAlgorithm::verify_mis(mis, 12, star));
  if (mis[0]) {
    EXPECT_EQ(std::count(mis.begin(), mis.end(), true), 1);
  } else {
    EXPECT_EQ(std::count(mis.begin(), mis.end(), true), 11);
  }
}

TEST(LubyMis, RandomGraphsValidAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    util::Rng rng(seed);
    const std::uint64_t n = 48;
    std::vector<Edge> edges;
    for (int i = 0; i < 120; ++i) edges.push_back({rng.next_below(n), rng.next_below(n)});
    auto mis = run_mis(6, n, edges);
    EXPECT_TRUE(LubyMisAlgorithm::verify_mis(mis, n, edges)) << "seed=" << seed;
  }
}

TEST(LubyMis, SelfLoopsIgnored) {
  std::vector<Edge> edges = {{0, 0}, {1, 2}};
  auto mis = run_mis(2, 3, edges);
  EXPECT_TRUE(LubyMisAlgorithm::verify_mis(mis, 3, edges));
  EXPECT_TRUE(mis[0]);  // isolated apart from the self-loop
}

TEST(LubyMis, PhasesAreLogarithmic) {
  // Dense random graph: rounds (4 per phase) stay far below n.
  util::Rng rng(9);
  const std::uint64_t n = 64;
  std::vector<Edge> edges;
  for (int i = 0; i < 400; ++i) edges.push_back({rng.next_below(n), rng.next_below(n)});
  std::uint64_t rounds = 0;
  auto mis = run_mis(8, n, edges, &rounds);
  EXPECT_TRUE(LubyMisAlgorithm::verify_mis(mis, n, edges));
  EXPECT_LT(rounds, 4 * 12);  // ~log n phases, 4 rounds each
}

TEST(LubyMis, VerifierRejectsBadSets) {
  std::vector<Edge> edges = {{0, 1}};
  EXPECT_FALSE(LubyMisAlgorithm::verify_mis({true, true}, 2, edges));   // dependent
  EXPECT_FALSE(LubyMisAlgorithm::verify_mis({false, false}, 2, edges));  // not maximal
  EXPECT_TRUE(LubyMisAlgorithm::verify_mis({true, false}, 2, edges));
}

}  // namespace
}  // namespace mpch::mpclib
