#include "strategies/dictionary.hpp"

#include <gtest/gtest.h>

#include "core/line.hpp"
#include "hash/random_oracle.hpp"
#include "util/rng.hpp"

namespace mpch::strategies {
namespace {

core::LineParams params() { return core::LineParams::make(64, 16, 32, 128); }

TEST(LowEntropyInput, HasRequestedDistinctCount) {
  core::LineParams p = params();
  util::Rng rng(1);
  for (std::uint64_t d : {1, 2, 5, 32}) {
    core::LineInput input = make_low_entropy_input(p, d, rng);
    EXPECT_EQ(DictionaryStrategy::distinct_blocks(input), d) << d;
  }
  EXPECT_THROW(make_low_entropy_input(p, 0, rng), std::invalid_argument);
  EXPECT_THROW(make_low_entropy_input(p, 33, rng), std::invalid_argument);
}

TEST(DictionaryStrategy, SolvesLowEntropyInputInTwoRounds) {
  core::LineParams p = params();
  util::Rng rng(2);
  core::LineInput input = make_low_entropy_input(p, 2, rng);
  auto oracle = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, 3);
  util::BitString expected = core::LineFunction(p).evaluate(*oracle, input);

  DictionaryStrategy strat(p, 4);
  mpc::MpcConfig c;
  c.machines = 4;
  c.local_memory_bits = strat.gathered_bits(2);
  c.query_budget = p.w + 1;
  c.max_rounds = 10;
  mpc::MpcSimulation sim(c, oracle);
  auto result = sim.run(strat, strat.make_initial_memory(input));
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.rounds_used, 2u);
  EXPECT_EQ(result.output, expected);
}

TEST(DictionaryStrategy, UniformInputDictionaryExceedsInputSize) {
  // With d = v distinct blocks the dictionary encoding is strictly larger
  // than X — no free compression of uniform inputs.
  core::LineParams p = params();
  DictionaryStrategy strat(p, 4);
  EXPECT_GT(strat.gathered_bits(p.v), p.input_bits());
}

TEST(DictionaryStrategy, GatherBlockedBySmallMemory) {
  core::LineParams p = params();
  util::Rng rng(4);
  core::LineInput input = core::LineInput::random(p, rng);  // ~v distinct blocks
  auto oracle = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, 5);

  DictionaryStrategy strat(p, 4);
  mpc::MpcConfig c;
  c.machines = 4;
  c.local_memory_bits = p.input_bits() / 2;  // s = S/2: cannot hold the encoding
  c.query_budget = p.w + 1;
  c.max_rounds = 10;
  mpc::MpcSimulation sim(c, oracle);
  EXPECT_THROW(sim.run(strat, strat.make_initial_memory(input)), mpc::MemoryViolation);
}

TEST(DictionaryStrategy, CorrectAcrossEntropyLevels) {
  core::LineParams p = params();
  for (std::uint64_t d : {1, 3, 8}) {
    util::Rng rng(10 + d);
    core::LineInput input = make_low_entropy_input(p, d, rng);
    auto oracle = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, 20 + d);
    util::BitString expected = core::LineFunction(p).evaluate(*oracle, input);
    DictionaryStrategy strat(p, 3);
    mpc::MpcConfig c;
    c.machines = 3;
    c.local_memory_bits = strat.gathered_bits(d);
    c.query_budget = p.w + 1;
    c.max_rounds = 10;
    mpc::MpcSimulation sim(c, oracle);
    auto result = sim.run(strat, strat.make_initial_memory(input));
    ASSERT_TRUE(result.completed) << d;
    EXPECT_EQ(result.output, expected) << d;
  }
}

TEST(DictionaryStrategy, EncodedSharesSmallForLowEntropy) {
  // Wide blocks (u = 48) so the per-block pointer (~22 bits) is a genuine
  // saving: the 2-value dictionary encoding undercuts the raw input.
  core::LineParams p = core::LineParams::make(160, 48, 32, 128);
  util::Rng rng(30);
  core::LineInput low = make_low_entropy_input(p, 2, rng);
  DictionaryStrategy strat(p, 4);
  std::uint64_t total = 0;
  for (const auto& share : strat.make_initial_memory(low)) total += share.size();
  EXPECT_LT(total, p.input_bits());  // 1536 raw bits vs ~1000 encoded
  // And the formula bound covers the actual shares.
  EXPECT_LE(total, strat.gathered_bits(2));
}

}  // namespace
}  // namespace mpch::strategies
