// Tests for util::JsonWriter (util/json.hpp): structural output, escaping,
// number formatting, and the std::logic_error misuse guards.
#include <gtest/gtest.h>

#include <stdexcept>

#include "util/json.hpp"

namespace {

using mpch::util::JsonWriter;

TEST(JsonWriter, ProducesExpectedDocument) {
  JsonWriter w;
  w.begin_object();
  w.member("name", "serve");
  w.member("count", std::uint64_t{2});
  w.member("neg", std::int64_t{-4});
  w.member("flag", false);
  w.key("xs").begin_array().value(std::uint64_t{1}).value(std::uint64_t{2}).end_array();
  w.member_double("ms", 1.5);
  w.key("none").value_null();
  w.end_object();
  EXPECT_TRUE(w.complete());
  EXPECT_EQ(w.str(),
            "{\"name\":\"serve\",\"count\":2,\"neg\":-4,\"flag\":false,"
            "\"xs\":[1,2],\"ms\":1.5,\"none\":null}");
}

TEST(JsonWriter, EscapesStrings) {
  JsonWriter w;
  w.begin_array();
  w.value("quote\" backslash\\ newline\n tab\t bell\x07");
  w.end_array();
  EXPECT_EQ(w.str(), "[\"quote\\\" backslash\\\\ newline\\n tab\\t bell\\u0007\"]");
}

TEST(JsonWriter, DoubleFormattingTrimsZeros) {
  JsonWriter w;
  w.begin_array();
  w.value_double(3.0);
  w.value_double(0.125, 3);
  w.end_array();
  EXPECT_EQ(w.str(), "[3,0.125]");
}

TEST(JsonWriter, MisuseThrowsLogicError) {
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.value("no key"), std::logic_error);
  }
  {
    JsonWriter w;
    w.begin_array();
    EXPECT_THROW(w.key("keys only in objects"), std::logic_error);
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.end_array(), std::logic_error);
  }
  {
    JsonWriter w;
    w.begin_object();
    w.key("pending");
    EXPECT_THROW(w.end_object(), std::logic_error);
  }
}

TEST(JsonWriter, CompleteOnlyWhenClosed) {
  JsonWriter w;
  EXPECT_FALSE(w.complete());
  w.begin_object();
  EXPECT_FALSE(w.complete());
  w.end_object();
  EXPECT_TRUE(w.complete());
}

}  // namespace
