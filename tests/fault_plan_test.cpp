// fault_plan_test.cpp — the fault-plan grammar, its error reporting (every
// parse failure quotes the offending token), event provenance text, and the
// seed-determinism of randomly generated plans.
#include "fault/fault_plan.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace mpch {
namespace {

using fault::FaultKind;
using fault::FaultPlan;

TEST(FaultPlan, ParsesEveryKind) {
  FaultPlan plan = FaultPlan::parse(
      "crash:machine=2,round=3;drop:round=1,to=0,index=4;dup:round=7,to=3,index=0;kill:round=9");
  ASSERT_EQ(plan.events.size(), 4u);

  EXPECT_EQ(plan.events[0].kind, FaultKind::CrashMachine);
  EXPECT_EQ(plan.events[0].machine, 2u);
  EXPECT_EQ(plan.events[0].round, 3u);

  EXPECT_EQ(plan.events[1].kind, FaultKind::DropMessage);
  EXPECT_EQ(plan.events[1].round, 1u);
  EXPECT_EQ(plan.events[1].machine, 0u);
  EXPECT_EQ(plan.events[1].index, 4u);

  EXPECT_EQ(plan.events[2].kind, FaultKind::DuplicateMessage);
  EXPECT_EQ(plan.events[3].kind, FaultKind::KillSimulation);
  EXPECT_EQ(plan.events[3].round, 9u);
}

TEST(FaultPlan, DescribeGivesProvenanceText) {
  EXPECT_EQ(FaultPlan::parse("crash:machine=2,round=3").events[0].describe(),
            "crash machine 2 in round 3");
  EXPECT_EQ(FaultPlan::parse("drop:round=1,to=0,index=4").events[0].describe(),
            "drop message 4 delivered to machine 0 after round 1");
  EXPECT_EQ(FaultPlan::parse("dup:round=7,to=3,index=0").events[0].describe(),
            "duplicate message 0 delivered to machine 3 after round 7");
  EXPECT_EQ(FaultPlan::parse("kill:round=9").events[0].describe(),
            "kill the simulation before round 9");
}

void expect_parse_error(const std::string& spec, const std::string& needle) {
  try {
    FaultPlan::parse(spec);
    FAIL() << "parsed '" << spec << "'";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << spec << " -> " << e.what();
  }
}

TEST(FaultPlan, MalformedSpecsAreRejectedWithTheOffendingToken) {
  expect_parse_error("", "no events");
  expect_parse_error(";;", "no events");
  expect_parse_error("melt:round=1", "unknown fault kind 'melt'");
  expect_parse_error("crash:round=3", "missing 'machine='");
  expect_parse_error("crash:machine=1", "missing 'round='");
  expect_parse_error("kill:round=1,extra=2", "unknown key 'extra'");
  expect_parse_error("kill:round=banana", "not a number");
  expect_parse_error("kill:round=1x", "not a number");
  expect_parse_error("crash:machine=1,=3", "expected key=value");
  // The failing token is quoted even in a multi-event spec.
  expect_parse_error("kill:round=1;crash:machine=0", "'crash:machine=0'");
}

TEST(FaultPlan, RandomPlansAreSeedDeterministic) {
  FaultPlan a = FaultPlan::random(42, 16, 10, 4);
  FaultPlan b = FaultPlan::random(42, 16, 10, 4);
  ASSERT_EQ(a.events.size(), 16u);
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i], b.events[i]) << i;
    EXPECT_LT(a.events[i].round, 10u) << i;
    EXPECT_LT(a.events[i].machine, 4u) << i;
  }
  FaultPlan c = FaultPlan::random(43, 16, 10, 4);
  bool any_different = false;
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    any_different = any_different || !(a.events[i] == c.events[i]);
  }
  EXPECT_TRUE(any_different) << "seed does not influence the plan";
}

TEST(FaultPlan, RandomSubPlanViaParseMatchesDirectCall) {
  FaultPlan parsed = FaultPlan::parse("random:seed=7,events=5,rounds=12,machines=3");
  FaultPlan direct = FaultPlan::random(7, 5, 12, 3);
  ASSERT_EQ(parsed.events.size(), direct.events.size());
  for (std::size_t i = 0; i < parsed.events.size(); ++i) {
    EXPECT_EQ(parsed.events[i], direct.events[i]) << i;
  }
  EXPECT_THROW(FaultPlan::random(1, 1, 0, 4), std::invalid_argument);
  EXPECT_THROW(FaultPlan::random(1, 1, 4, 0), std::invalid_argument);
}

TEST(FaultPlan, DescribeJoinsEvents) {
  FaultPlan plan = FaultPlan::parse("kill:round=2;crash:machine=1,round=4");
  EXPECT_EQ(plan.describe(),
            "kill the simulation before round 2; crash machine 1 in round 4");
}

}  // namespace
}  // namespace mpch
