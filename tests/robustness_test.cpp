// robustness_test.cpp — failure injection: corrupted and truncated inputs
// must produce typed exceptions, never silent wrong answers or crashes.
#include <gtest/gtest.h>

#include "compress/simline_codec.hpp"
#include "core/line.hpp"
#include "core/simline.hpp"
#include "mpclib/primitives.hpp"
#include "strategies/block_store.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"

namespace mpch {
namespace {

using util::BitString;

TEST(Robustness, TruncatedBlockSetThrows) {
  core::LineParams p = core::LineParams::make(64, 16, 8, 16);
  strategies::BlockSet set(p);
  util::Rng rng(1);
  set.add(3, BitString::random(p.u, [&] { return rng.next_u64(); }));
  BitString wire = set.encode();
  wire.truncate(wire.size() - 4);
  EXPECT_THROW(strategies::BlockSet::decode(p, wire), std::out_of_range);
}

TEST(Robustness, BlockSetCountLyingHighThrows) {
  core::LineParams p = core::LineParams::make(64, 16, 8, 16);
  // A count field claiming more records than the payload holds.
  util::BitWriter w;
  w.write_uint(5, 32);
  w.write_uint(1, p.ell_bits);
  w.write_bits(BitString(p.u));
  EXPECT_THROW(strategies::BlockSet::decode(p, w.take()), std::out_of_range);
}

TEST(Robustness, BlockSetBadIndexThrows) {
  core::LineParams p = core::LineParams::make(64, 16, 8, 16);
  util::BitWriter w;
  w.write_uint(1, 32);
  w.write_uint(15, p.ell_bits);  // index > v = 8
  w.write_bits(BitString(p.u));
  EXPECT_THROW(strategies::BlockSet::decode(p, w.take()), std::out_of_range);
}

TEST(Robustness, TruncatedFrontierThrows) {
  core::LineParams p = core::LineParams::make(64, 16, 8, 16);
  strategies::Frontier f;
  f.r = BitString(p.u);
  BitString wire = f.encode(p);
  wire.truncate(wire.size() / 2);
  EXPECT_THROW(strategies::Frontier::decode(p, wire), std::out_of_range);
}

TEST(Robustness, TruncatedU64PayloadThrows) {
  BitString wire = mpclib::pack_u64s(1, {1, 2, 3});
  wire.truncate(wire.size() - 30);
  EXPECT_THROW(mpclib::unpack_u64s(wire), std::out_of_range);
}

TEST(Robustness, CompressorDecodeOfTruncatedMessageThrows) {
  core::LineParams p = core::LineParams::make(14, 4, 8, 16);
  util::Rng rng(2);
  hash::ExhaustiveRandomOracle oracle(p.n, p.n, rng);
  core::LineInput input = core::LineInput::random(p, rng);
  core::SimLineFunction fn(p);
  core::SimLineChain chain = fn.evaluate_chain(oracle, input);

  std::vector<std::pair<std::uint64_t, BitString>> blocks = {{1, input.block(1)}};
  BitString memory = compress::SimLineWindowProgram::make_memory(p, 1, chain.nodes[0].r, blocks);
  compress::SimLineCompressor comp(p, 16);
  compress::SimLineWindowProgram program(p);
  auto enc =
      comp.encode(oracle, input, memory, program, {chain.nodes[0].query}, {1});

  BitString truncated = enc.message;
  truncated.truncate(truncated.size() - p.u);  // drop part of the residual
  EXPECT_THROW(comp.decode(truncated, program), std::out_of_range);
}

TEST(Robustness, CompressorPointerPastQueryStreamThrows) {
  core::LineParams p = core::LineParams::make(14, 4, 8, 16);
  util::Rng rng(3);
  hash::ExhaustiveRandomOracle oracle(p.n, p.n, rng);
  core::LineInput input = core::LineInput::random(p, rng);
  core::SimLineFunction fn(p);
  core::SimLineChain chain = fn.evaluate_chain(oracle, input);

  std::vector<std::pair<std::uint64_t, BitString>> blocks = {{1, input.block(1)}};
  BitString memory = compress::SimLineWindowProgram::make_memory(p, 1, chain.nodes[0].r, blocks);
  compress::SimLineCompressor comp(p, 16);
  compress::SimLineWindowProgram program(p);
  auto enc = comp.encode(oracle, input, memory, program, {chain.nodes[0].query}, {1});
  ASSERT_EQ(enc.covered, 1u);

  // Corrupt the pointer's query position to the maximum: the decoder's
  // replayed query stream is far shorter.
  BitString msg = enc.message;
  std::uint64_t pointer_pos = oracle.table_bits() + 32 + memory.size() + 32;
  msg.set_uint(pointer_pos, 4, 15);  // qpos field = 15 >> actual stream length
  EXPECT_THROW(comp.decode(msg, program), std::invalid_argument);
}

TEST(Robustness, BitStringOperationsRejectCorruptRanges) {
  BitString b(16);
  EXPECT_THROW(b.slice(10, 10), std::out_of_range);
  EXPECT_THROW(b.splice(10, BitString(10)), std::out_of_range);
  EXPECT_THROW(b.set_uint(0, 65, 0), std::invalid_argument);
}

TEST(Robustness, CorruptedChainAnswerChangesLineOutput) {
  // Flip one bit in an intermediate oracle answer: the final output must
  // change — no silent error absorption along the chain.
  core::LineParams p = core::LineParams::make(14, 4, 8, 16);
  util::Rng rng(4);
  hash::ExhaustiveRandomOracle oracle(p.n, p.n, rng);
  core::LineInput input = core::LineInput::random(p, rng);
  core::LineFunction f(p);
  core::LineChain chain = f.evaluate_chain(oracle, input);

  hash::ExhaustiveRandomOracle corrupted = oracle;
  const auto& mid = chain.nodes[p.w / 2];
  BitString answer = mid.answer;
  answer.set(p.n - 1, !answer.get(p.n - 1));  // flip a z-bit... still changes entry
  corrupted.set_entry(mid.query.get_uint(0, p.n), answer);
  // Flipping only z does not change the walk; flip an r-bit instead.
  BitString answer2 = mid.answer;
  answer2.set(p.ell_bits, !answer2.get(p.ell_bits));  // first r bit
  corrupted.set_entry(mid.query.get_uint(0, p.n), answer2);
  EXPECT_NE(f.evaluate(corrupted, input), chain.output);
}

}  // namespace
}  // namespace mpch
