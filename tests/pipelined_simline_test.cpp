#include "strategies/pipelined_simline.hpp"

#include <gtest/gtest.h>

#include "core/simline.hpp"
#include "hash/random_oracle.hpp"
#include "util/rng.hpp"

namespace mpch::strategies {
namespace {

core::LineParams params(std::uint64_t w) { return core::LineParams::make(64, 16, 8, w); }

struct Fix {
  core::LineParams p;
  std::shared_ptr<hash::LazyRandomOracle> oracle;
  core::LineInput input;
  util::BitString expected;

  Fix(std::uint64_t w, std::uint64_t seed)
      : p(params(w)),
        oracle(std::make_shared<hash::LazyRandomOracle>(p.n, p.n, seed)),
        input(make_input(p, seed)),
        expected(core::SimLineFunction(p).evaluate(*oracle, input)) {}

  static core::LineInput make_input(const core::LineParams& p, std::uint64_t seed) {
    util::Rng rng(seed * 13 + 5);
    return core::LineInput::random(p, rng);
  }
};

mpc::MpcConfig config(const PipelinedSimLineStrategy& strat, std::uint64_t m) {
  mpc::MpcConfig c;
  c.machines = m;
  c.local_memory_bits = strat.required_local_memory();
  c.query_budget = 1 << 20;
  c.max_rounds = 10000;
  c.tape_seed = 5;
  return c;
}

TEST(PipelinedSimLine, ComputesTheCorrectOutput) {
  Fix setup(64, 1);
  const std::uint64_t m = 4;
  PipelinedSimLineStrategy strat(setup.p, OwnershipPlan::windows(setup.p, m, 2));
  mpc::MpcSimulation sim(config(strat, m), setup.oracle);
  auto result = sim.run(strat, strat.make_initial_memory(setup.input));
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.output, setup.expected);
}

TEST(PipelinedSimLine, MeasuredRoundsMatchClosedForm) {
  for (std::uint64_t window : {1ULL, 2ULL, 4ULL}) {
    Fix setup(128, window + 10);
    const std::uint64_t m = 4;
    PipelinedSimLineStrategy strat(setup.p, OwnershipPlan::windows(setup.p, m, window));
    mpc::MpcSimulation sim(config(strat, m), setup.oracle);
    auto result = sim.run(strat, strat.make_initial_memory(setup.input));
    ASSERT_TRUE(result.completed) << "window=" << window;
    EXPECT_EQ(result.rounds_used, strat.predicted_rounds()) << "window=" << window;
    EXPECT_EQ(result.output, setup.expected) << "window=" << window;
  }
}

TEST(PipelinedSimLine, RoundsScaleInverselyWithWindow) {
  // rounds ≈ w / window: the Θ(T·u/s) upper bound of Theorem A.1.
  Fix s1(256, 3), s2(256, 3);
  const std::uint64_t m = 4;
  PipelinedSimLineStrategy small(s1.p, OwnershipPlan::windows(s1.p, m, 1));
  PipelinedSimLineStrategy large(s2.p, OwnershipPlan::windows(s2.p, m, 4));
  mpc::MpcSimulation sim1(config(small, m), s1.oracle);
  mpc::MpcSimulation sim2(config(large, m), s2.oracle);
  auto r1 = sim1.run(small, small.make_initial_memory(s1.input));
  auto r2 = sim2.run(large, large.make_initial_memory(s2.input));
  ASSERT_TRUE(r1.completed);
  ASSERT_TRUE(r2.completed);
  EXPECT_EQ(r1.rounds_used, 256u);      // window 1: one node per round
  EXPECT_EQ(r2.rounds_used, 256u / 4);  // window 4: four nodes per round
}

TEST(PipelinedSimLine, WholeInputWindowOneRound) {
  Fix setup(64, 9);
  PipelinedSimLineStrategy strat(setup.p, OwnershipPlan::windows(setup.p, 1, 8));
  mpc::MpcSimulation sim(config(strat, 1), setup.oracle);
  auto result = sim.run(strat, strat.make_initial_memory(setup.input));
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.rounds_used, 1u);
  EXPECT_EQ(result.output, setup.expected);
}

TEST(PipelinedSimLine, HonestQueryCountIsW) {
  Fix setup(128, 11);
  const std::uint64_t m = 2;
  PipelinedSimLineStrategy strat(setup.p, OwnershipPlan::windows(setup.p, m, 4));
  mpc::MpcSimulation sim(config(strat, m), setup.oracle);
  auto result = sim.run(strat, strat.make_initial_memory(setup.input));
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.trace.total_oracle_queries(), setup.p.w);
}

TEST(PipelinedSimLine, PredictedRoundsFormula) {
  core::LineParams p = params(128);  // v = 8
  // window=2, m=4: windows [1,2],[3,4],[5,6],[7,8] on machines 0..3; the
  // schedule walks blocks 1..8 cyclically, 16 cycles of 4 hand-offs each.
  PipelinedSimLineStrategy strat(p, OwnershipPlan::windows(p, 4, 2));
  EXPECT_EQ(strat.predicted_rounds(), 64u);
}

}  // namespace
}  // namespace mpch::strategies
