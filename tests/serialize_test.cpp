#include "util/serialize.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace mpch::util {
namespace {

TEST(BitWriter, WritesFixedWidthFields) {
  BitWriter w;
  w.write_uint(0b101, 3);
  w.write_uint(0xFF, 8);
  w.write_bool(true);
  EXPECT_EQ(w.bit_count(), 12u);
  EXPECT_EQ(w.bits().to_binary_string(), "101111111111");
}

TEST(BitWriter, RejectsOverflowingValue) {
  BitWriter w;
  EXPECT_THROW(w.write_uint(8, 3), std::invalid_argument);
  EXPECT_THROW(w.write_uint(0, 65), std::invalid_argument);
}

TEST(BitWriter, WriteBitsAppends) {
  BitWriter w;
  w.write_bits(BitString::from_binary_string("110"));
  w.write_bits(BitString::from_binary_string("01"));
  EXPECT_EQ(w.bits().to_binary_string(), "11001");
}

TEST(BitReader, ReadsBackInOrder) {
  BitWriter w;
  w.write_uint(42, 17);
  w.write_bool(false);
  w.write_uint(7, 3);
  w.write_bits(BitString::from_binary_string("1001"));
  BitReader r(w.take());
  EXPECT_EQ(r.read_uint(17), 42u);
  EXPECT_FALSE(r.read_bool());
  EXPECT_EQ(r.read_uint(3), 7u);
  EXPECT_EQ(r.read_bits(4).to_binary_string(), "1001");
  EXPECT_TRUE(r.exhausted());
}

TEST(BitReader, ThrowsOnOverread) {
  BitReader r(BitString::from_binary_string("101"));
  r.read_uint(2);
  EXPECT_THROW(r.read_uint(2), std::out_of_range);
  EXPECT_EQ(r.remaining(), 1u);
}

TEST(BitReader, PositionTracks) {
  BitReader r(BitString(32));
  EXPECT_EQ(r.position(), 0u);
  r.read_uint(10);
  EXPECT_EQ(r.position(), 10u);
  r.read_bits(5);
  EXPECT_EQ(r.position(), 15u);
  EXPECT_EQ(r.remaining(), 17u);
}

// Property: arbitrary field sequences round-trip.
TEST(Serialize, RandomFieldSequencesRoundTrip) {
  Rng rng(2024);
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<std::pair<std::uint64_t, std::size_t>> fields;
    BitWriter w;
    std::size_t count = 1 + rng.next_below(20);
    for (std::size_t i = 0; i < count; ++i) {
      std::size_t width = 1 + rng.next_below(64);
      std::uint64_t value = rng.next_u64();
      if (width < 64) value &= (1ULL << width) - 1;
      fields.emplace_back(value, width);
      w.write_uint(value, width);
    }
    BitReader r(w.take());
    for (const auto& [value, width] : fields) {
      EXPECT_EQ(r.read_uint(width), value);
    }
    EXPECT_TRUE(r.exhausted());
  }
}

}  // namespace
}  // namespace mpch::util
