#include "hash/sha256.hpp"

#include <gtest/gtest.h>

#include <string>

namespace mpch::hash {
namespace {

// FIPS 180-4 / NIST CAVP reference vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(Sha256::to_hex(Sha256::hash(std::string(""))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(Sha256::to_hex(Sha256::hash(std::string("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(Sha256::to_hex(Sha256::hash(
                std::string("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(Sha256::to_hex(h.digest()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, ExactBlockBoundary) {
  // 64-byte message exercises the padding-overflow path.
  std::string msg(64, 'x');
  auto once = Sha256::hash(msg);
  Sha256 h;
  h.update(msg.substr(0, 13));
  h.update(msg.substr(13));
  EXPECT_EQ(h.digest(), once);
}

TEST(Sha256, IncrementalMatchesOneShot) {
  std::string msg = "the quick brown fox jumps over the lazy dog";
  for (std::size_t split = 0; split <= msg.size(); split += 7) {
    Sha256 h;
    h.update(msg.substr(0, split));
    h.update(msg.substr(split));
    EXPECT_EQ(h.digest(), Sha256::hash(msg)) << "split=" << split;
  }
}

TEST(Sha256, ResetAllowsReuse) {
  Sha256 h;
  h.update(std::string("abc"));
  auto d1 = h.digest();
  h.reset();
  h.update(std::string("abc"));
  EXPECT_EQ(h.digest(), d1);
}

TEST(Sha256, DigestTwiceThrows) {
  Sha256 h;
  h.update(std::string("x"));
  h.digest();
  EXPECT_THROW(h.digest(), std::logic_error);
  EXPECT_THROW(h.update(std::string("y")), std::logic_error);
}

TEST(Sha256, SensitivityToEveryBit) {
  auto base = Sha256::hash(std::string("aaaa"));
  auto flipped = Sha256::hash(std::string("aaab"));
  EXPECT_NE(base, flipped);
}

TEST(Sha256, LengthExtensionDistinctFromConcat) {
  // hash("ab") != hash("a") in any byte — sanity on state handling.
  auto a = Sha256::hash(std::string("a"));
  auto ab = Sha256::hash(std::string("ab"));
  EXPECT_NE(a, ab);
}

}  // namespace
}  // namespace mpch::hash
