#include "strategies/pointer_chasing.hpp"

#include <gtest/gtest.h>

#include "core/line.hpp"
#include "hash/random_oracle.hpp"
#include "util/rng.hpp"

namespace mpch::strategies {
namespace {

core::LineParams params(std::uint64_t w = 64) {
  return core::LineParams::make(64, 16, 8, w);
}

struct Fix {
  core::LineParams p;
  std::shared_ptr<hash::LazyRandomOracle> oracle;
  core::LineInput input;
  util::BitString expected;

  Fix(std::uint64_t w, std::uint64_t seed)
      : p(params(w)),
        oracle(std::make_shared<hash::LazyRandomOracle>(p.n, p.n, seed)),
        input(make_input(p, seed)),
        expected(core::LineFunction(p).evaluate(*oracle, input)) {}

  static core::LineInput make_input(const core::LineParams& p, std::uint64_t seed) {
    util::Rng rng(seed * 7 + 1);
    return core::LineInput::random(p, rng);
  }
};

mpc::MpcConfig config(const PointerChasingStrategy& strat, std::uint64_t m,
                      std::uint64_t max_rounds = 10000) {
  mpc::MpcConfig c;
  c.machines = m;
  c.local_memory_bits = strat.required_local_memory();
  c.query_budget = 1 << 20;
  c.max_rounds = max_rounds;
  c.tape_seed = 5;
  return c;
}

TEST(PointerChasing, ComputesTheCorrectOutput) {
  Fix setup(64, 1);
  const std::uint64_t m = 4;
  PointerChasingStrategy strat(setup.p, OwnershipPlan::round_robin(setup.p, m));
  mpc::MpcSimulation sim(config(strat, m), setup.oracle);
  auto result = sim.run(strat, strat.make_initial_memory(setup.input));
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.output, setup.expected);
}

TEST(PointerChasing, SingleMachineOwningEverythingFinishesInOneRound) {
  Fix setup(64, 2);
  PointerChasingStrategy strat(setup.p, OwnershipPlan::round_robin(setup.p, 1));
  mpc::MpcSimulation sim(config(strat, 1), setup.oracle);
  auto result = sim.run(strat, strat.make_initial_memory(setup.input));
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.rounds_used, 1u);
  EXPECT_EQ(result.output, setup.expected);
}

TEST(PointerChasing, RoundsGrowWithMachineCount) {
  // More machines => smaller per-machine fraction f => more rounds.
  Fix s2(256, 3), s8(256, 3);
  PointerChasingStrategy strat2(s2.p, OwnershipPlan::round_robin(s2.p, 2));
  PointerChasingStrategy strat8(s8.p, OwnershipPlan::round_robin(s8.p, 8));
  mpc::MpcSimulation sim2(config(strat2, 2), s2.oracle);
  mpc::MpcSimulation sim8(config(strat8, 8), s8.oracle);
  auto r2 = sim2.run(strat2, strat2.make_initial_memory(s2.input));
  auto r8 = sim8.run(strat8, strat8.make_initial_memory(s8.input));
  ASSERT_TRUE(r2.completed);
  ASSERT_TRUE(r8.completed);
  EXPECT_LT(r2.rounds_used, r8.rounds_used);
  EXPECT_EQ(r2.output, s2.expected);
  EXPECT_EQ(r8.output, s8.expected);
}

TEST(PointerChasing, ReplicationReducesRounds) {
  Fix setup(256, 4);
  const std::uint64_t m = 4;
  // Partitioned: 2 blocks/machine (f = 1/4). Replicated: 6 blocks/machine.
  PointerChasingStrategy part(setup.p, OwnershipPlan::round_robin(setup.p, m));
  PointerChasingStrategy repl(setup.p, OwnershipPlan::replicated(setup.p, m, 6));
  mpc::MpcSimulation sim_part(config(part, m), setup.oracle);
  auto r_part = sim_part.run(part, part.make_initial_memory(setup.input));
  Fix setup2(256, 4);  // fresh oracle object with same seed (same function)
  mpc::MpcSimulation sim_repl(config(repl, m), setup2.oracle);
  auto r_repl = sim_repl.run(repl, repl.make_initial_memory(setup2.input));
  ASSERT_TRUE(r_part.completed);
  ASSERT_TRUE(r_repl.completed);
  EXPECT_EQ(r_part.output, setup.expected);
  EXPECT_EQ(r_repl.output, setup.expected);
  EXPECT_LT(r_repl.rounds_used, r_part.rounds_used);
}

TEST(PointerChasing, AdvanceAnnotationsSumToW) {
  Fix setup(128, 5);
  const std::uint64_t m = 4;
  PointerChasingStrategy strat(setup.p, OwnershipPlan::round_robin(setup.p, m));
  mpc::MpcSimulation sim(config(strat, m), setup.oracle);
  auto result = sim.run(strat, strat.make_initial_memory(setup.input));
  ASSERT_TRUE(result.completed);
  std::uint64_t total = 0;
  for (std::uint64_t a : result.trace.annotation("advance")) total += a;
  EXPECT_EQ(total, setup.p.w);
  // Queries = exactly w (honest: one per node).
  EXPECT_EQ(result.trace.total_oracle_queries(), setup.p.w);
}

TEST(PointerChasing, RequiredMemoryIsTight) {
  Fix setup(64, 6);
  const std::uint64_t m = 4;
  PointerChasingStrategy strat(setup.p, OwnershipPlan::round_robin(setup.p, m));
  // One bit less than required must blow up the inbox check.
  mpc::MpcConfig c = config(strat, m);
  c.local_memory_bits = strat.required_local_memory() - 1 -
                        Frontier::encoded_bits(setup.p) - kTagBits;
  mpc::MpcSimulation sim(c, setup.oracle);
  EXPECT_THROW(sim.run(strat, strat.make_initial_memory(setup.input)), mpc::MemoryViolation);
}

TEST(PointerChasing, DeterministicAcrossRuns) {
  Fix a(128, 7), b(128, 7);
  const std::uint64_t m = 4;
  PointerChasingStrategy sa(a.p, OwnershipPlan::round_robin(a.p, m));
  PointerChasingStrategy sb(b.p, OwnershipPlan::round_robin(b.p, m));
  mpc::MpcSimulation sim_a(config(sa, m), a.oracle);
  mpc::MpcSimulation sim_b(config(sb, m), b.oracle);
  auto ra = sim_a.run(sa, sa.make_initial_memory(a.input));
  auto rb = sim_b.run(sb, sb.make_initial_memory(b.input));
  EXPECT_EQ(ra.rounds_used, rb.rounds_used);
  EXPECT_EQ(ra.output, rb.output);
}

TEST(PointerChasing, MoreMachinesThanBlocks) {
  Fix setup(32, 8);
  const std::uint64_t m = 16;  // v = 8 < m: half the machines own nothing
  PointerChasingStrategy strat(setup.p, OwnershipPlan::round_robin(setup.p, m));
  mpc::MpcSimulation sim(config(strat, m), setup.oracle);
  auto result = sim.run(strat, strat.make_initial_memory(setup.input));
  ASSERT_TRUE(result.completed);
  EXPECT_EQ(result.output, setup.expected);
}

}  // namespace
}  // namespace mpch::strategies
