// E12 — the MPC model itself (Definitions 2.1/2.2): the simulator is a real
// MPC substrate with textbook round counts on classic workloads.
//
// Broadcast/all-reduce in O(log m) rounds, prefix sum in O(1), sample sort
// in 4, connected components in O(diameter) — plus the model's enforcement
// (memory caps, query budgets) demonstrated against the Line workload.
#include <algorithm>
#include <chrono>
#include <thread>

#include "bench_common.hpp"
#include "mpclib/connectivity.hpp"
#include "mpclib/primitives.hpp"
#include "mpclib/matching.hpp"
#include "mpclib/mis.hpp"
#include "mpclib/sort.hpp"
#include "util/rng.hpp"

using namespace mpch;

namespace {

mpc::MpcConfig cfg(std::uint64_t m, std::uint64_t s = 1 << 18) {
  mpc::MpcConfig c;
  c.machines = m;
  c.local_memory_bits = s;
  c.query_budget = 1;
  c.max_rounds = 2000;
  c.tape_seed = 1;
  return c;
}

}  // namespace

int main() {
  bench::header("E12", "Definitions 2.1/2.2 (the MPC substrate)",
                "the simulator reproduces textbook MPC round complexities");

  std::cout << "\nbroadcast rounds vs machine count and fanout (tree dissemination):\n";
  util::Table t1({"m", "fanout", "measured_rounds", "predicted"});
  for (std::uint64_t m : {4, 16, 64, 256}) {
    for (std::uint64_t fanout : {1, 2, 4}) {
      mpc::MpcSimulation sim(cfg(m), nullptr);
      mpclib::BroadcastAlgorithm algo(m, fanout);
      auto result = sim.run(algo, {util::BitString::from_uint(0xFEED, 16)});
      t1.add(m, fanout, result.rounds_used,
             mpclib::BroadcastAlgorithm::predicted_rounds(m, fanout));
    }
  }
  t1.print(std::cout);

  std::cout << "\nall-reduce (sum) and prefix sum:\n";
  util::Table t2({"primitive", "m", "items", "rounds", "comm_bits"});
  for (std::uint64_t m : {4, 16, 64}) {
    mpc::MpcSimulation sim(cfg(m), nullptr);
    mpclib::AllReduceSumAlgorithm algo(m, 2);
    std::vector<util::BitString> shares;
    for (std::uint64_t i = 0; i < m; ++i) shares.push_back(mpclib::pack_u64s(3, {i + 1}));
    auto result = sim.run(algo, shares);
    t2.add("all-reduce", m, m, result.rounds_used, result.trace.total_communicated_bits());
  }
  for (std::uint64_t m : {4, 16, 64}) {
    mpc::MpcSimulation sim(cfg(m), nullptr);
    mpclib::PrefixSumAlgorithm algo(m);
    std::vector<std::vector<std::uint64_t>> values(m);
    util::Rng rng(m);
    for (auto& vs : values) {
      for (int i = 0; i < 8; ++i) vs.push_back(rng.next_below(100));
    }
    auto result = sim.run(algo, mpclib::PrefixSumAlgorithm::make_initial_memory(values));
    t2.add("prefix-sum", m, m * 8, result.rounds_used, result.trace.total_communicated_bits());
  }
  t2.print(std::cout);

  std::cout << "\ndistributed sample sort (4 rounds for any size that fits):\n";
  util::Table t3({"m", "keys", "rounds", "comm_bits", "sorted_ok"});
  for (auto [m, total] : {std::pair<std::uint64_t, std::uint64_t>{4, 256},
                          {8, 1024}, {16, 4096}}) {
    util::Rng rng(m * 31 + total);
    std::vector<std::vector<std::uint64_t>> parts(m);
    std::vector<std::uint64_t> expected;
    for (std::uint64_t i = 0; i < total; ++i) {
      std::uint64_t k = rng.next_u64() % 1000000;
      parts[rng.next_below(m)].push_back(k);
      expected.push_back(k);
    }
    std::sort(expected.begin(), expected.end());
    mpc::MpcSimulation sim(cfg(m, 1 << 20), nullptr);
    mpclib::SampleSortAlgorithm algo(m, 16);
    auto result = sim.run(algo, mpclib::SampleSortAlgorithm::make_initial_memory(parts));
    bool ok = mpclib::SampleSortAlgorithm::parse_output(result.output) == expected;
    t3.add(m, total, result.rounds_used, result.trace.total_communicated_bits(), ok);
  }
  t3.print(std::cout);

  std::cout << "\nconnected components (label propagation, rounds ~ 3 * label diameter):\n";
  util::Table t4({"graph", "vertices", "edges", "rounds", "components"});
  {
    // Path graph: worst-case diameter.
    const std::uint64_t nv = 24;
    std::vector<mpclib::Edge> path;
    for (std::uint64_t i = 0; i + 1 < nv; ++i) path.push_back({i, i + 1});
    mpc::MpcSimulation sim(cfg(8, 1 << 20), nullptr);
    mpclib::LabelPropagationCC algo(8, nv);
    auto result = sim.run(algo, mpclib::LabelPropagationCC::make_initial_memory(8, nv, path));
    auto labels = mpclib::LabelPropagationCC::parse_labels(result.output, nv);
    std::sort(labels.begin(), labels.end());
    std::uint64_t comps = std::unique(labels.begin(), labels.end()) - labels.begin();
    t4.add("path", nv, path.size(), result.rounds_used, comps);
  }
  {
    // Random graph: logarithmic-ish diameter.
    const std::uint64_t nv = 64;
    util::Rng rng(5);
    std::vector<mpclib::Edge> edges;
    for (int i = 0; i < 96; ++i) edges.push_back({rng.next_below(nv), rng.next_below(nv)});
    mpc::MpcSimulation sim(cfg(8, 1 << 20), nullptr);
    mpclib::LabelPropagationCC algo(8, nv);
    auto result = sim.run(algo, mpclib::LabelPropagationCC::make_initial_memory(8, nv, edges));
    auto labels = mpclib::LabelPropagationCC::parse_labels(result.output, nv);
    std::sort(labels.begin(), labels.end());
    std::uint64_t comps = std::unique(labels.begin(), labels.end()) - labels.begin();
    t4.add("random(64,96)", nv, edges.size(), result.rounds_used, comps);
  }
  t4.print(std::cout);

  std::cout << "\nrandomised symmetry breaking (Luby MIS + maximal matching, shared-tape\n"
               "randomness, O(log n) phases):\n";
  util::Table t5({"algorithm", "vertices", "edges", "rounds", "size", "verified"});
  {
    util::Rng rng(8);
    const std::uint64_t nv = 64;
    std::vector<mpclib::Edge> edges;
    for (int i = 0; i < 200; ++i) edges.push_back({rng.next_below(nv), rng.next_below(nv)});
    {
      mpc::MpcSimulation sim(cfg(8, 1 << 20), nullptr);
      mpclib::LubyMisAlgorithm algo(8, nv);
      auto result = sim.run(algo, mpclib::LubyMisAlgorithm::make_initial_memory(8, nv, edges));
      auto mis = mpclib::LubyMisAlgorithm::parse_membership(result.output, nv);
      t5.add("luby-mis", nv, edges.size(), result.rounds_used,
             static_cast<std::uint64_t>(std::count(mis.begin(), mis.end(), true)),
             mpclib::LubyMisAlgorithm::verify_mis(mis, nv, edges));
    }
    {
      mpc::MpcSimulation sim(cfg(8, 1 << 20), nullptr);
      mpclib::MaximalMatchingAlgorithm algo(8, nv);
      auto result =
          sim.run(algo, mpclib::MaximalMatchingAlgorithm::make_initial_memory(8, nv, edges));
      auto matching = mpclib::MaximalMatchingAlgorithm::parse_matching(result.output);
      t5.add("maximal-matching", nv, edges.size(), result.rounds_used, matching.size(),
             mpclib::MaximalMatchingAlgorithm::verify_matching(matching, nv, edges));
    }
  }
  t5.print(std::cout);

  std::cout << "\nparallel round execution on sample sort (hardware threads available: "
            << std::thread::hardware_concurrency() << "):\n";
  util::Table t6({"threads", "m", "keys", "wall_ms", "rounds_per_sec", "output_identical"});
  {
    const std::uint64_t m = 16, total = 16384;
    std::vector<std::uint64_t> sorted_serial;
    for (std::uint64_t threads : {1, 2, 4, 8}) {
      util::Rng rng(m * 31 + total);
      std::vector<std::vector<std::uint64_t>> parts(m);
      for (std::uint64_t i = 0; i < total; ++i) {
        parts[rng.next_below(m)].push_back(rng.next_u64() % 1000000);
      }
      mpc::MpcConfig c = cfg(m, 1 << 22);
      c.threads = threads;
      mpc::MpcSimulation sim(c, nullptr);
      mpclib::SampleSortAlgorithm algo(m, 16);
      auto start = std::chrono::steady_clock::now();
      auto result = sim.run(algo, mpclib::SampleSortAlgorithm::make_initial_memory(parts));
      auto stop = std::chrono::steady_clock::now();
      double ms = std::chrono::duration<double, std::milli>(stop - start).count();
      auto sorted = mpclib::SampleSortAlgorithm::parse_output(result.output);
      if (threads == 1) sorted_serial = sorted;
      t6.add(threads, m, total, util::format_double(ms, 1),
             util::format_double(1000.0 * result.rounds_used / ms, 0), sorted == sorted_serial);
    }
  }
  t6.print(std::cout);

  std::cout << "\ninterpretation: every classic MPC workload lands on its textbook round\n"
               "count inside the same simulator that enforces the hardness experiments —\n"
               "the substrate, not the Line function, is what makes E1-E10 meaningful.\n"
               "The threads table shows the round loop itself parallelises (identical\n"
               "output at every thread count); wall-clock gains require multiple cores.\n";
  return 0;
}
