// E8 — the q < 2^{n/4} side condition: what a per-round query budget buys.
//
// A charitably-verified block-guessing adversary spends q oracle queries per
// stall trying to jump the walk past an unowned block. Each guess succeeds
// with probability 2^{-u}, so rounds collapse only once q approaches 2^u —
// the paper's "u is assumed to be large enough as otherwise, machine may
// guess it locally with non-trivial probability", and the reason Theorem
// 3.1 caps q at 2^{n/4} = 2^{3u/4} << 2^u... per *chain step* the attack
// still needs 2^u expected work.
#include "bench_common.hpp"
#include "core/line.hpp"
#include "strategies/pointer_chasing.hpp"
#include "strategies/speculative.hpp"
#include "util/rng.hpp"

using namespace mpch;

int main() {
  bench::header("E8", "Theorem 3.1's q budget (speculative block-guessing)",
                "guessing escapes a stall w.p. ~q/2^u: rounds collapse iff q >= 2^u");

  const std::uint64_t v = 8, m = 4, w = 512;
  util::Table t({"u", "2^u", "guess_budget_q", "measured_rounds", "honest_rounds",
                 "lucky_escapes", "rounds_ratio"});
  for (std::uint64_t u : {4, 6, 8, 10}) {
    core::LineParams p = core::LineParams::make(3 * u + 16, u, v, w);

    // Honest baseline.
    util::Rng rng_in(3000 + u);
    core::LineInput input = core::LineInput::random(p, rng_in);
    strategies::PointerChasingStrategy honest(p, strategies::OwnershipPlan::round_robin(p, m));
    auto oracle_h = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, 4000 + u);
    auto r_honest = bench::run_strategy(honest, input, oracle_h, m);

    for (std::uint64_t q : {4, 16, 64, 256, 1024}) {
      strategies::SpeculativeConfig cfg;
      cfg.guesses_per_stall = q;
      cfg.enumerate = true;  // strongest attack: systematic enumeration
      strategies::SpeculativeStrategy spec(p, strategies::OwnershipPlan::round_robin(p, m), cfg,
                                           input);
      auto oracle_s = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, 4000 + u);
      auto r_spec = bench::run_strategy(spec, input, oracle_s, m, 1ULL << 20);
      t.add(u, 1ULL << u, q, r_spec.rounds_used, r_honest.rounds_used, spec.lucky_escapes(),
            util::format_double(static_cast<double>(r_spec.rounds_used) /
                                    static_cast<double>(r_honest.rounds_used),
                                3));
    }
  }
  t.print(std::cout);

  std::cout << "\ninterpretation: the rounds_ratio cliff sits exactly at q >= 2^u — below it\n"
               "the budget buys nothing (ratio ~1), at or above it the adversary walks the\n"
               "whole chain in one round (ratio ~1/honest). At cryptographic u (= n/3) no\n"
               "feasible q reaches 2^u, which is why the model may allow q < 2^{n/4} for\n"
               "free. The adversary here is charitably verified: a real attacker would do\n"
               "strictly worse.\n";
  return 0;
}
