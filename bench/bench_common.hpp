// bench_common.hpp — shared helpers for the experiment binaries.
#pragma once

#include <iostream>
#include <memory>
#include <string>

#include "core/input.hpp"
#include "core/params.hpp"
#include "hash/random_oracle.hpp"
#include "mpc/simulation.hpp"
#include "util/table.hpp"

namespace mpch::bench {

inline void header(const std::string& id, const std::string& paper_object,
                   const std::string& claim) {
  std::cout << "\n==================================================================\n"
            << id << " — " << paper_object << "\n"
            << "claim: " << claim << "\n"
            << "==================================================================\n";
}

/// Run one MPC strategy to completion and return the result; wires up the
/// standard config from the strategy's own memory requirement.
template <typename Strategy>
mpc::MpcRunResult run_strategy(Strategy& strategy, const core::LineInput& input,
                               std::shared_ptr<hash::RandomOracle> oracle, std::uint64_t machines,
                               std::uint64_t query_budget = 1ULL << 20,
                               std::uint64_t max_rounds = 1ULL << 22) {
  mpc::MpcConfig c;
  c.machines = machines;
  c.local_memory_bits = strategy.required_local_memory();
  c.query_budget = query_budget;
  c.max_rounds = max_rounds;
  c.tape_seed = 0xBE7C;
  mpc::MpcSimulation sim(c, std::move(oracle));
  return sim.run(strategy, strategy.make_initial_memory(input));
}

}  // namespace mpch::bench
