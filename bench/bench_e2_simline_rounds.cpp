// E2 — Theorem A.1 / Lemma A.2: SimLine^RO round complexity is Θ(w·u/s).
//
// The pipelined strategy's measured rounds are compared against the exact
// hand-off schedule (w/window), Lemma A.2's lower bound w/h, and the honest
// Line strategy at the same storage — showing the warm-up bound is tight and
// strictly weaker than the Line bound.
#include "bench_common.hpp"
#include "core/simline.hpp"
#include "strategies/pipelined_simline.hpp"
#include "theory/bounds.hpp"
#include "util/rng.hpp"

using namespace mpch;

int main() {
  bench::header("E2", "Theorem A.1 / Lemma A.2 (SimLine warm-up)",
                "SimLine needs Theta(w*u/s) rounds: the pipelined strategy matches the "
                "lower bound's shape");

  const std::uint64_t n = 64, u = 16, v = 64, m = 8, w = 4096;
  core::LineParams p = core::LineParams::make(n, u, v, w);

  util::Table t({"window_b", "s_bits(blocks)", "measured_rounds", "closed_form_w/b",
                 "lemmaA2_lb_w/h", "ratio_measured/lb"});
  for (std::uint64_t b : {1, 2, 4, 8, 16, 32}) {
    strategies::PipelinedSimLineStrategy strat(p, strategies::OwnershipPlan::windows(p, m, b));
    auto oracle = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, 500 + b);
    util::Rng rng(600 + b);
    core::LineInput input = core::LineInput::random(p, rng);
    auto result = bench::run_strategy(strat, input, oracle, m);

    theory::MpcBoundParams mp;
    mp.m = m;
    mp.q = 1 << 20;
    mp.s = b * (p.u + p.ell_bits);  // bits of blocks a machine carries
    long double lb = theory::lemmaA2_round_lower_bound(p, mp);
    t.add(b, mp.s, result.rounds_used, w / b,
          util::format_double(static_cast<double>(lb), 1),
          util::format_double(static_cast<double>(result.rounds_used) /
                                  static_cast<double>(lb),
                              2));
  }
  t.print(std::cout);

  std::cout << "\nscaling in w at fixed window 8:\n";
  util::Table t2({"w", "measured_rounds", "closed_form_w/8"});
  for (std::uint64_t wv : {512, 2048, 8192}) {
    core::LineParams pw = core::LineParams::make(n, u, v, wv);
    strategies::PipelinedSimLineStrategy strat(pw, strategies::OwnershipPlan::windows(pw, m, 8));
    auto oracle = std::make_shared<hash::LazyRandomOracle>(pw.n, pw.n, 700 + wv);
    util::Rng rng(800 + wv);
    core::LineInput input = core::LineInput::random(pw, rng);
    auto result = bench::run_strategy(strat, input, oracle, m);
    t2.add(wv, result.rounds_used, wv / 8);
  }
  t2.print(std::cout);

  std::cout << "\ninterpretation: rounds halve every time the per-machine window doubles —\n"
               "exactly Theta(w*u/s) — and the measured/lower-bound ratio stays a small\n"
               "constant. Contrast with E1, where more memory barely helps on Line.\n";
  return 0;
}
