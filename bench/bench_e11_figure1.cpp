// E11 — Figure 1: the structure of the Line^RO walk.
//
// Figure 1 illustrates the mechanism: each oracle answer names the next
// input block x_{ℓ}, the ℓ's are uniform over [v], and "each machine is not
// able to store the entire X". This bench measures all three: the empirical
// ℓ distribution (chi-square), the run-length distribution of repeats (the
// walk has no useful locality), and the memory arithmetic that forces
// hand-offs.
#include "bench_common.hpp"
#include "core/line.hpp"
#include "stats/estimator.hpp"
#include "util/rng.hpp"

using namespace mpch;

int main() {
  bench::header("E11", "Figure 1 (structure of the Line walk)",
                "the oracle-chosen ell-sequence is uniform over [v] and memoryless");

  const std::uint64_t n = 64, u = 16, v = 16, w = 1 << 15;
  core::LineParams p = core::LineParams::make(n, u, v, w);
  hash::LazyRandomOracle oracle(p.n, p.n, 777);
  util::Rng rng(778);
  core::LineInput input = core::LineInput::random(p, rng);
  core::LineChain chain = core::LineFunction(p).evaluate_chain(oracle, input);

  // 1. Uniformity of ell over [v].
  std::vector<std::uint64_t> counts(v + 1, 0);
  for (std::size_t i = 1; i < chain.nodes.size(); ++i) ++counts[chain.nodes[i].ell];
  double expected = static_cast<double>(w - 1) / static_cast<double>(v);
  double chi2 = 0;
  for (std::uint64_t b = 1; b <= v; ++b) {
    double d = static_cast<double>(counts[b]) - expected;
    chi2 += d * d / expected;
  }
  util::Table t({"block", "count", "count/expected"});
  for (std::uint64_t b = 1; b <= v; ++b) {
    t.add(b, counts[b], util::format_double(static_cast<double>(counts[b]) / expected, 3));
  }
  t.print(std::cout);
  std::cout << "chi-square (" << v - 1 << " dof): " << util::format_double(chi2, 1)
            << "  (95% critical value for 15 dof: 25.0)\n";

  // 2. Memorylessness: distribution of gaps between successive visits to
  // the same block is geometric with mean v.
  std::vector<std::uint64_t> last_seen(v + 1, 0);
  stats::RunningStats gaps;
  for (std::size_t i = 0; i < chain.nodes.size(); ++i) {
    std::uint64_t b = chain.nodes[i].ell;
    if (last_seen[b] != 0) gaps.add(static_cast<double>(i + 1 - last_seen[b]));
    last_seen[b] = i + 1;
  }
  std::cout << "\nrevisit gap: mean = " << util::format_double(gaps.mean(), 2)
            << " (geometric model: v = " << v
            << "), stddev = " << util::format_double(gaps.stddev(), 2)
            << " (model sqrt(v(v-1)) = "
            << util::format_double(std::sqrt(static_cast<double>(v * (v - 1))), 2) << ")\n";

  // 3. The figure's caption, as arithmetic: what fraction of X fits in s.
  std::cout << "\n\"each machine is not able to store the entire X\":\n";
  util::Table t2({"s_bits", "blocks_that_fit", "fraction_of_X", "forced_handoff_rate"});
  for (std::uint64_t s : {128, 256, 512, 1024}) {
    std::uint64_t fit = s / (p.u + p.ell_bits);
    double frac = std::min(1.0, static_cast<double>(fit) / static_cast<double>(v));
    t2.add(s, fit, util::format_double(frac, 3), util::format_double(1.0 - frac, 3));
  }
  t2.print(std::cout);

  std::cout << "\ninterpretation: the walk's next block is a fresh uniform draw every step\n"
               "(chi-square passes, revisit gaps are geometric) — there is no locality for\n"
               "an s-bounded machine to exploit, which is precisely what Figure 1 depicts.\n";
  return 0;
}
