// E4 — Lemma 3.6 / Definition 3.5: the B-set (blocks a machine can reveal
// under any rewired oracle) is capped by what it stores, and the per-round
// advance distribution decays geometrically.
//
// Part 1 computes Definition 3.5's B_i^{(k)} literally via the rewiring
// enumeration at tiny parameters, sweeping the machine's stored-block count.
// Part 2 measures the per-round advance histogram of honest pointer-chasing
// — Pr[advance > k] must decay like f^k, the operative form of "the
// probability that a machine learns k new nodes decays exponentially in k".
#include "bench_common.hpp"
#include "compress/line_codec.hpp"
#include "core/line.hpp"
#include "stats/estimator.hpp"
#include "strategies/pointer_chasing.hpp"
#include "theory/bounds.hpp"
#include "util/rng.hpp"

using namespace mpch;

int main() {
  bench::header("E4", "Lemma 3.6 / Definition 3.5 (B-set & per-round advance)",
                "|B_i| <= stored blocks; Pr[advance > k] decays geometrically");

  // Part 1: literal B-set via oracle rewiring (Definition 3.4/3.5).
  std::cout << "\nDefinition 3.5's B-set, computed by full [v]^depth rewiring enumeration\n"
               "(n = 12, u = 3, v = 4, depth = 2):\n";
  core::LineParams tiny = core::LineParams::make(12, 3, 4, 8);
  util::Table t1({"stored_blocks", "includes_ell_next", "measured_|B|", "bound_min(stored,v)"});
  for (std::uint64_t stored = 0; stored <= 4; ++stored) {
    util::Rng rng(900 + stored);
    hash::ExhaustiveRandomOracle oracle(tiny.n, tiny.n, rng);
    core::LineInput input = core::LineInput::random(tiny, rng);
    core::LineChain chain = core::LineFunction(tiny).evaluate_chain(oracle, input);
    compress::RewireAnchor anchor;
    anchor.j_k = 2;
    anchor.ell_next = chain.nodes[2].ell;
    anchor.r_next = chain.nodes[2].r;

    // Store `stored` blocks, always including ℓ_{j_k+1} when stored > 0 (a
    // machine that cannot make the first window query reveals nothing).
    // Candidates: ℓ_{j_k+1} first (without it nothing is revealed), then the
    // remaining blocks in index order.
    std::vector<std::uint64_t> candidates = {anchor.ell_next};
    for (std::uint64_t b = 1; b <= tiny.v; ++b) {
      if (b != anchor.ell_next) candidates.push_back(b);
    }
    std::vector<std::pair<std::uint64_t, util::BitString>> blocks;
    bool has_first = false;
    for (std::uint64_t pick : candidates) {
      if (blocks.size() >= stored) break;
      blocks.emplace_back(pick, input.block(pick));
      if (pick == anchor.ell_next) has_first = true;
    }
    util::BitString memory = compress::LineWindowProgram::make_memory(
        tiny, anchor.j_k + 1, anchor.ell_next, anchor.r_next, blocks);
    compress::LineCompressor comp(tiny, 64, 2);
    compress::LineWindowProgram program(tiny);
    auto b_set = comp.compute_b_set(oracle, input, memory, program, anchor);
    t1.add(blocks.size(), has_first, b_set.size(),
           std::min<std::uint64_t>(blocks.size(), tiny.v));
  }
  t1.print(std::cout);

  // Part 2: per-round advance distribution of honest pointer chasing.
  std::cout << "\nper-round advance of honest pointer-chasing (v = 64, f = 1/4, w = 8192):\n";
  const std::uint64_t n = 64, u = 16, v = 64, m = 8, w = 8192;
  core::LineParams p = core::LineParams::make(n, u, v, w);
  strategies::PointerChasingStrategy strat(p,
                                           strategies::OwnershipPlan::replicated(p, m, v / 4));
  auto oracle = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, 1000);
  util::Rng rng(1001);
  core::LineInput input = core::LineInput::random(p, rng);
  auto result = bench::run_strategy(strat, input, oracle, m);

  stats::Histogram hist(16);
  for (std::uint64_t a : result.trace.annotation("advance")) {
    if (a > 0) hist.add(a);  // only carrier rounds
  }
  util::Table t2({"advance_k", "count", "Pr[adv=k]", "geometric_f^(k-1)(1-f)"});
  double f = 0.25;
  for (std::uint64_t k = 1; k < 10; ++k) {
    double measured = static_cast<double>(hist.count(k)) / static_cast<double>(hist.total());
    double geo = std::pow(f, static_cast<double>(k - 1)) * (1 - f);
    t2.add(k, hist.count(k), util::format_double(measured, 4), util::format_double(geo, 4));
  }
  t2.print(std::cout);
  std::cout << "carrier rounds: " << hist.total()
            << ", mean advance: " << util::format_double(static_cast<double>(w) / hist.total(), 3)
            << " (model 1/(1-f) = " << util::format_double(1.0 / (1 - f), 3) << ")\n";

  theory::MpcBoundParams bp;
  bp.m = m;
  bp.q = 1 << 20;
  bp.s = (v / 4) * (p.u + p.ell_bits);
  std::cout << "Lemma 3.6 advance cap h (at these parameters, for reference): "
            << util::format_double(static_cast<double>(theory::lemma36_h(p, bp)), 2) << "\n";

  std::cout << "\ninterpretation: |B| equals exactly the blocks the machine stores (and is 0\n"
               "without the window's first block); the advance histogram matches the\n"
               "geometric f^k decay — together these are Lemma 3.6's content, measured.\n";
  return 0;
}
