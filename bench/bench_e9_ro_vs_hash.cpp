// E9 — the random oracle methodology (Section 1 / 1.2): instantiating RO
// with a concrete hash function h changes nothing observable.
//
// The same workloads run under the secret-seeded true-RO and under the
// public SHA-256 oracle; round counts, advance statistics, and oracle-output
// bit balance are compared side by side. If Line^h were a counter-example to
// the methodology, some statistic would diverge — none does.
#include "bench_common.hpp"
#include "hash/blake2s.hpp"
#include "core/line.hpp"
#include "stats/estimator.hpp"
#include "strategies/pointer_chasing.hpp"
#include "util/rng.hpp"

using namespace mpch;

namespace {

struct Measured {
  double mean_rounds = 0;
  double mean_advance = 0;
  double output_bit_balance = 0;
};

enum class OracleKind { kTrueRo, kSha256, kBlake2s };

Measured run_variant(OracleKind kind, const core::LineParams& p, std::uint64_t m,
                     std::uint64_t per_machine, int seeds) {
  Measured out;
  stats::RunningStats rounds, advance, balance;
  for (int s = 0; s < seeds; ++s) {
    std::shared_ptr<hash::RandomOracle> oracle;
    switch (kind) {
      case OracleKind::kSha256:
        oracle = std::make_shared<hash::Sha256Oracle>(p.n, p.n);
        break;
      case OracleKind::kBlake2s:
        oracle = std::make_shared<hash::Blake2sOracle>(p.n, p.n);
        break;
      case OracleKind::kTrueRo:
        oracle = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, 9000 + s);
        break;
    }
    util::Rng rng(7000 + s);
    core::LineInput input = core::LineInput::random(p, rng);
    strategies::PointerChasingStrategy strat(
        p, strategies::OwnershipPlan::replicated(p, m, per_machine));
    auto result = bench::run_strategy(strat, input, oracle, m);
    rounds.add(static_cast<double>(result.rounds_used));
    std::uint64_t carrier_rounds = 0;
    for (std::uint64_t a : result.trace.annotation("advance")) {
      if (a > 0) ++carrier_rounds;
    }
    advance.add(static_cast<double>(p.w) / static_cast<double>(carrier_rounds));
    balance.add(static_cast<double>(result.output.popcount()) /
                static_cast<double>(result.output.size()));
  }
  out.mean_rounds = rounds.mean();
  out.mean_advance = advance.mean();
  out.output_bit_balance = balance.mean();
  return out;
}

}  // namespace

int main() {
  bench::header("E9", "Random oracle methodology (Sections 1, 1.2)",
                "replacing RO by SHA-256 or BLAKE2s preserves every observable statistic "
                "of the hard function");

  const std::uint64_t m = 8;
  util::Table t({"workload", "oracle", "mean_rounds", "mean_advance/round",
                 "output_bit_balance"});
  for (auto [v, frac_den, w] : {std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>{32, 4, 2048},
                                {64, 8, 2048}, {32, 2, 1024}}) {
    core::LineParams p = core::LineParams::make(64, 16, v, w);
    std::string label = "v=" + std::to_string(v) + ",f=1/" + std::to_string(frac_den) +
                        ",w=" + std::to_string(w);
    Measured ro = run_variant(OracleKind::kTrueRo, p, m, v / frac_den, 5);
    Measured sha = run_variant(OracleKind::kSha256, p, m, v / frac_den, 5);
    Measured b2s = run_variant(OracleKind::kBlake2s, p, m, v / frac_den, 5);
    t.add(label, "true RO", util::format_double(ro.mean_rounds, 1),
          util::format_double(ro.mean_advance, 3),
          util::format_double(ro.output_bit_balance, 4));
    t.add(label, "SHA-256", util::format_double(sha.mean_rounds, 1),
          util::format_double(sha.mean_advance, 3),
          util::format_double(sha.output_bit_balance, 4));
    t.add(label, "BLAKE2s", util::format_double(b2s.mean_rounds, 1),
          util::format_double(b2s.mean_advance, 3),
          util::format_double(b2s.output_bit_balance, 4));
  }
  t.print(std::cout);

  std::cout << "\ninterpretation: round counts, advance rates, and output statistics are\n"
               "indistinguishable across the idealised oracle and two structurally\n"
               "different hash instantiations — consistent with the paper's position that Line^h is no\n"
               "counter-example to the random oracle methodology.\n";
  return 0;
}
