// E17 — latency vs throughput: what the theorem does NOT forbid.
//
// Theorem 3.1 bounds the rounds to finish ONE chain; it does not stop a
// cluster from walking many independent chains concurrently. This bench
// batches k instances of Line over the same machines and shows rounds stay
// ~flat in k while the sequential baseline grows k-fold — MPC parallelism
// survives as a throughput tool exactly where the paper leaves room for it.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <thread>

#include "bench_common.hpp"
#include "core/line.hpp"
#include "serve/service.hpp"
#include "strategies/batch_pointer_chasing.hpp"
#include "transport/transport.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

using namespace mpch;

namespace {

/// Order statistic over a (small) latency sample; q in [0, 1].
double percentile(std::vector<double> samples, double q) {
  std::sort(samples.begin(), samples.end());
  const std::size_t idx = std::min(
      samples.size() - 1, static_cast<std::size_t>(q * static_cast<double>(samples.size())));
  return samples[idx];
}

}  // namespace

int main(int argc, char** argv) {
  util::CliArgs args(argc, argv);
  const std::string transport_name = args.get_string("transport", "in-process");
  const transport::TransportKind transport_kind = transport::parse_transport_kind(transport_name);
  const std::uint64_t repeats = args.get_u64("repeats", 5);
  const bool serve_mode = args.get_bool("serve", false);
  if (!args.unused().empty()) {
    std::cerr << "unknown flag --" << args.unused().front()
              << " (supported: --transport, --repeats, --serve)\n";
    return 2;
  }

  bench::header("E17", "Latency vs throughput (what Theorem 3.1 leaves open)",
                "k batched chains finish in ~1x rounds, not k x — the bound is per-chain "
                "latency only");

  const std::uint64_t n = 64, u = 16, v = 8, m = 4, w = 1024;
  core::LineParams p = core::LineParams::make(n, u, v, w);

  util::Table t({"instances_k", "batched_rounds", "sequential_kx_baseline",
                 "rounds_per_chain", "total_queries", "all_outputs_ok"});
  std::uint64_t single_rounds = 0;
  for (std::uint64_t k : {1, 2, 4, 8, 16}) {
    auto oracle = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, 40 + k);
    core::LineFunction f(p);
    std::vector<core::LineInput> inputs;
    std::vector<util::BitString> expected;
    for (std::uint64_t i = 0; i < k; ++i) {
      util::Rng rng(50 * k + i);
      inputs.push_back(core::LineInput::random(p, rng));
      expected.push_back(f.evaluate(*oracle, inputs.back()));
    }

    strategies::BatchPointerChasingStrategy strat(
        p, strategies::OwnershipPlan::round_robin(p, m), k);
    mpc::MpcConfig c;
    c.machines = m;
    c.local_memory_bits = strat.required_local_memory();
    c.query_budget = 1 << 20;
    c.max_rounds = 100000;
    mpc::MpcSimulation sim(c, oracle);
    auto result = sim.run(strat, strat.make_initial_memory(inputs));
    if (!result.completed) {
      std::cerr << "batch did not complete\n";
      return 1;
    }
    auto answers =
        strategies::BatchPointerChasingStrategy::parse_outputs(p, result.output, k);
    bool ok = true;
    for (std::uint64_t i = 0; i < k; ++i) ok = ok && answers[i] == expected[i];
    if (k == 1) single_rounds = result.rounds_used;
    t.add(k, result.rounds_used, k * single_rounds,
          util::format_double(static_cast<double>(result.rounds_used) / k, 1),
          result.trace.total_oracle_queries(), ok);
  }
  t.print(std::cout);

  std::cout << "\ninterpretation: batched rounds stay within ~1.2x of a single chain while\n"
               "the per-chain amortised latency falls like 1/k — the cluster's parallelism\n"
               "is fully useful for throughput. Theorem 3.1 kills only the hope of making\n"
               "ONE long sequential computation finish faster. (Note s scales with k here:\n"
               "the machines hold k inputs; the per-chain storage fraction f is unchanged.)\n";

  // Wall-clock throughput of the simulator itself: the same batched workload
  // with the round loop running machines concurrently (MpcConfig::threads)
  // over the selected transport backend. Each cell is `repeats` full runs:
  // runs/sec is the sustained rate, p50/p99 the per-run latency order
  // statistics. Output must stay bit-identical to the serial run at every
  // thread count (the conformance matrix proves it per backend; here it
  // doubles as a sanity check on the measured configuration).
  std::cout << "\nparallel round execution over transport \"" << transport_name
            << "\" (repeats per cell: " << repeats
            << ", hardware threads available: " << std::thread::hardware_concurrency() << "):\n";
  const std::uint64_t kBig = 16, mBig = 8;
  util::Table tp({"threads", "runs_per_sec", "p50_ms", "p99_ms", "speedup_vs_serial",
                  "output_identical"});
  util::BitString serial_output;
  double serial_p50 = 0.0;
  struct JsonRow {
    std::uint64_t threads;
    std::uint64_t rounds;
    double runs_per_sec;
    double p50_ms;
    double p99_ms;
  };
  std::vector<JsonRow> json_rows;
  for (std::uint64_t threads : {1, 2, 4, 8}) {
    core::LineFunction f(p);
    std::vector<core::LineInput> inputs;
    for (std::uint64_t i = 0; i < kBig; ++i) {
      util::Rng rng(900 + i);
      inputs.push_back(core::LineInput::random(p, rng));
    }
    std::vector<double> latencies_ms;
    util::BitString output;
    std::uint64_t rounds_used = 0;
    for (std::uint64_t rep = 0; rep < repeats; ++rep) {
      auto oracle = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, 90);
      strategies::BatchPointerChasingStrategy strat(
          p, strategies::OwnershipPlan::round_robin(p, mBig), kBig);
      mpc::MpcConfig c;
      c.machines = mBig;
      c.local_memory_bits = strat.required_local_memory();
      c.query_budget = 1 << 20;
      c.max_rounds = 100000;
      c.threads = threads;
      c.transport = transport_kind;
      mpc::MpcSimulation sim(c, oracle);
      auto t0 = std::chrono::steady_clock::now();
      auto result = sim.run(strat, strat.make_initial_memory(inputs));
      auto t1 = std::chrono::steady_clock::now();
      if (!result.completed) {
        std::cerr << "parallel batch did not complete\n";
        return 1;
      }
      latencies_ms.push_back(std::chrono::duration<double, std::milli>(t1 - t0).count());
      output = result.output;
      rounds_used = result.rounds_used;
    }
    double total_ms = 0.0;
    for (double ms : latencies_ms) total_ms += ms;
    const double runs_per_sec = 1000.0 * static_cast<double>(repeats) / total_ms;
    const double p50 = percentile(latencies_ms, 0.50);
    const double p99 = percentile(latencies_ms, 0.99);
    if (threads == 1) {
      serial_output = output;
      serial_p50 = p50;
    }
    tp.add(threads, util::format_double(runs_per_sec, 2), util::format_double(p50, 1),
           util::format_double(p99, 1), util::format_double(serial_p50 / p50, 2),
           output == serial_output);
    json_rows.push_back({threads, rounds_used, runs_per_sec, p50, p99});
  }
  tp.print(std::cout);

  // Machine-readable mirror of the throughput table for dashboards and
  // regression tracking (EXPERIMENTS.md workflow).
  {
    std::ofstream json("BENCH_e17.json");
    json << "[\n";
    for (std::size_t i = 0; i < json_rows.size(); ++i) {
      json << "  {\"strategy\": \"batch-pointer-chasing\", \"transport\": \"" << transport_name
           << "\", \"threads\": " << json_rows[i].threads
           << ", \"rounds\": " << json_rows[i].rounds
           << ", \"runs_per_sec\": " << util::format_double(json_rows[i].runs_per_sec, 3)
           << ", \"p50_ms\": " << util::format_double(json_rows[i].p50_ms, 3)
           << ", \"p99_ms\": " << util::format_double(json_rows[i].p99_ms, 3) << "}"
           << (i + 1 < json_rows.size() ? "," : "") << "\n";
    }
    json << "]\n";
  }
  std::cout << "\nwrote BENCH_e17.json (strategy, transport, threads, rounds, runs_per_sec, "
               "p50_ms, p99_ms per row)\n";
  std::cout << "\nnote: speedup tracks min(threads, m, hardware cores); on a single-core\n"
               "host the table demonstrates determinism (output_identical) rather than\n"
               "speed. Record multi-core numbers in EXPERIMENTS.md.\n";

  // --serve: the other axis of throughput — many independent *jobs* through
  // the mpch-serve worker pool (job-level parallelism) instead of one run
  // with round-level parallelism. Batch size fixed, worker count swept;
  // outputs must agree across all worker counts (serve's cornerstone).
  if (serve_mode) {
    std::cout << "\nserve mode: " << repeats * 8
              << " batch-pointer-chasing jobs through the mpch-serve pool:\n";
    util::Table ts({"workers", "runs_per_sec", "p50_ms", "p99_ms", "results_identical"});
    std::vector<serve::JobSpec> jobs(repeats * 8);
    for (std::uint64_t i = 0; i < jobs.size(); ++i) {
      jobs[i].verb = serve::JobVerb::kSimulate;
      jobs[i].strategy = "batch-pointer-chasing";
      jobs[i].seed = 1 + i % 8;
      jobs[i].transport = transport_kind;
    }
    std::vector<util::BitString> baseline;
    for (std::uint64_t workers : {1, 2, 4, 8}) {
      serve::ServeService service(serve::ServeOptions{workers, 64, true, true});
      auto results = service.run_jobs(jobs);
      std::vector<double> walls;
      bool identical = true;
      for (std::size_t i = 0; i < results.size(); ++i) {
        if (results[i].status != serve::JobStatus::kOk) {
          std::cerr << "serve job failed: " << results[i].error << "\n";
          return 1;
        }
        walls.push_back(results[i].wall_ms);
        if (workers == 1) {
          baseline.push_back(results[i].run.output);
        } else {
          identical = identical && results[i].run.output == baseline[i];
        }
      }
      ts.add(workers, util::format_double(service.stats().runs_per_sec, 2),
             util::format_double(percentile(walls, 0.50), 2),
             util::format_double(percentile(walls, 0.99), 2), identical);
      if (!identical) {
        std::cerr << "serve results diverged across worker counts\n";
        return 1;
      }
    }
    ts.print(std::cout);
  }
  return 0;
}
