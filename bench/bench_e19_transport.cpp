// E19 — what moving real bytes costs: transport backends compared.
//
// The conformance matrix (tests/transport_conformance_test.cpp) proves the
// three backends are bit-identical; this experiment prices them. The same
// two workloads — ram-emulation (many tiny CPU<->server messages per round,
// the chatty extreme) and pointer-chasing (few larger block transfers, the
// bulky extreme) — run over in-process (zero-copy reference), shared-memory
// (every payload round-trips through MPCF frames in a byte ring), and socket
// (every payload crosses an OS process boundary through forked routers).
// The measured gap is the simulator-side answer to "how much of an MPC
// round is computation vs moving the bytes": Definition 2.1 charges rounds,
// not transport, so the backends differ in wall clock only — rounds, stats,
// and outputs are pinned equal below.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/line.hpp"
#include "ram/programs.hpp"
#include "strategies/pointer_chasing.hpp"
#include "strategies/ram_emulation.hpp"
#include "transport/transport.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

using namespace mpch;

namespace {

double percentile(std::vector<double> samples, double q) {
  std::sort(samples.begin(), samples.end());
  const std::size_t idx = std::min(
      samples.size() - 1, static_cast<std::size_t>(q * static_cast<double>(samples.size())));
  return samples[idx];
}

struct Measurement {
  std::string workload;
  std::string transport;
  std::uint64_t rounds = 0;
  double runs_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  bool identical = false;
};

struct RunOutcome {
  util::BitString output;
  std::uint64_t rounds = 0;
  double wall_ms = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  util::CliArgs args(argc, argv);
  const std::uint64_t repeats = args.get_u64("repeats", 5);
  const std::uint64_t threads = args.get_u64("threads", 2);
  if (!args.unused().empty()) {
    std::cerr << "unknown flag --" << args.unused().front()
              << " (supported: --repeats, --threads)\n";
    return 2;
  }

  bench::header("E19", "Transport backends: in-process vs shared-memory vs socket",
                "bit-identical results over any backend; the backends differ only in the "
                "wall-clock cost of moving the round's bytes");

  const transport::TransportKind kKinds[] = {
      transport::TransportKind::kInProcess,
      transport::TransportKind::kSharedMemory,
      transport::TransportKind::kSocket,
  };

  // Workloads as closures: build fresh state per run, return the outcome.
  const std::uint64_t kRamMachines = 4;
  auto run_ram = [&](transport::TransportKind kind) {
    const std::uint64_t n = 16;
    std::vector<std::uint64_t> memory(n);
    for (std::uint64_t i = 0; i < n; ++i) memory[i] = (7 + i * 3) % 97;
    std::vector<ram::Instruction> prog = ram::programs::sum(n);
    strategies::RamEmulationStrategy strat(prog, kRamMachines, 1);
    mpc::MpcConfig c;
    c.machines = kRamMachines;
    c.local_memory_bits = strat.required_local_memory(memory.size());
    c.query_budget = 1;
    c.max_rounds = 1 << 20;
    c.tape_seed = 5;
    c.threads = threads;
    c.transport = kind;
    mpc::MpcSimulation sim(c, nullptr);
    auto t0 = std::chrono::steady_clock::now();
    auto result = sim.run(strat, strat.make_initial_memory(memory));
    auto t1 = std::chrono::steady_clock::now();
    if (!result.completed) throw std::runtime_error("ram-emulation did not complete");
    return RunOutcome{result.output, result.rounds_used,
                      std::chrono::duration<double, std::milli>(t1 - t0).count()};
  };

  auto run_chase = [&](transport::TransportKind kind) {
    core::LineParams p = core::LineParams::make(64, 16, 8, 512);
    auto oracle = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, 11);
    util::Rng rng(12);
    core::LineInput input = core::LineInput::random(p, rng);
    strategies::PointerChasingStrategy strat(p, strategies::OwnershipPlan::round_robin(p, 4));
    mpc::MpcConfig c;
    c.machines = 4;
    c.local_memory_bits = strat.required_local_memory();
    c.query_budget = 1 << 20;
    c.max_rounds = 20000;
    c.tape_seed = 5;
    c.threads = threads;
    c.transport = kind;
    mpc::MpcSimulation sim(c, oracle);
    auto t0 = std::chrono::steady_clock::now();
    auto result = sim.run(strat, strat.make_initial_memory(input));
    auto t1 = std::chrono::steady_clock::now();
    if (!result.completed) throw std::runtime_error("pointer-chasing did not complete");
    return RunOutcome{result.output, result.rounds_used,
                      std::chrono::duration<double, std::milli>(t1 - t0).count()};
  };

  struct Workload {
    const char* name;
    std::function<RunOutcome(transport::TransportKind)> run;
  };
  const Workload kWorkloads[] = {{"ram-emulation", run_ram}, {"pointer-chasing", run_chase}};

  std::vector<Measurement> measurements;
  util::Table t({"workload", "transport", "rounds", "runs_per_sec", "p50_ms", "p99_ms",
                 "output_identical"});
  for (const Workload& w : kWorkloads) {
    util::BitString reference_output;
    for (transport::TransportKind kind : kKinds) {
      std::vector<double> latencies;
      RunOutcome last;
      for (std::uint64_t rep = 0; rep < repeats; ++rep) {
        last = w.run(kind);
        latencies.push_back(last.wall_ms);
      }
      if (kind == transport::TransportKind::kInProcess) reference_output = last.output;
      double total_ms = 0.0;
      for (double ms : latencies) total_ms += ms;
      Measurement m;
      m.workload = w.name;
      m.transport = transport::to_string(kind);
      m.rounds = last.rounds;
      m.runs_per_sec = 1000.0 * static_cast<double>(repeats) / total_ms;
      m.p50_ms = percentile(latencies, 0.50);
      m.p99_ms = percentile(latencies, 0.99);
      m.identical = last.output == reference_output;
      measurements.push_back(m);
      t.add(m.workload, m.transport, m.rounds, util::format_double(m.runs_per_sec, 2),
            util::format_double(m.p50_ms, 2), util::format_double(m.p99_ms, 2), m.identical);
      if (!m.identical) {
        std::cerr << w.name << " over " << m.transport << " diverged from in-process\n";
        return 1;
      }
    }
  }
  t.print(std::cout);

  {
    std::ofstream json("BENCH_e19.json");
    json << "[\n";
    for (std::size_t i = 0; i < measurements.size(); ++i) {
      const Measurement& m = measurements[i];
      json << "  {\"workload\": \"" << m.workload << "\", \"transport\": \"" << m.transport
           << "\", \"threads\": " << threads << ", \"rounds\": " << m.rounds
           << ", \"runs_per_sec\": " << util::format_double(m.runs_per_sec, 3)
           << ", \"p50_ms\": " << util::format_double(m.p50_ms, 3)
           << ", \"p99_ms\": " << util::format_double(m.p99_ms, 3) << "}"
           << (i + 1 < measurements.size() ? "," : "") << "\n";
    }
    json << "]\n";
  }
  std::cout << "\nwrote BENCH_e19.json (workload, transport, threads, rounds, runs_per_sec, "
               "p50_ms, p99_ms per row)\n";

  std::cout << "\ninterpretation: rounds are identical by construction (the conformance\n"
               "matrix pins the whole execution, not just the output). The wall-clock\n"
               "ordering in-process <= shared-memory <= socket prices frame encoding and\n"
               "process hops; the chatty workload (ram-emulation) pays the per-message\n"
               "overhead most, the bulky one (pointer-chasing) amortises it over payload\n"
               "bits. Definition 2.1 charges neither — which is exactly why lower bounds\n"
               "measured in-process carry to deployments where the bytes are real.\n";
  return 0;
}
