// E18 — what authenticated messaging costs.
//
// MpcConfig::authenticate_messages appends a 64-bit RO-derived MAC to every
// message and verifies every delivery at the round barrier (mpc/auth.hpp).
// The model meters those bits like any protocol bits, so the overhead is
// exactly quantifiable: communication grows by fan-in * 64 bits per round,
// rounds and outputs do not change at all, and the wall-clock cost is the
// tag derivation + verification (two SHA-256 expansions per message). This
// bench pins all three for an oracle-model strategy and a plain-model one,
// and mirrors the table to BENCH_e18.json for regression tracking.
#include <chrono>
#include <fstream>
#include <vector>

#include "bench_common.hpp"
#include "core/line.hpp"
#include "ram/machine.hpp"
#include "ram/programs.hpp"
#include "strategies/pointer_chasing.hpp"
#include "strategies/ram_emulation.hpp"
#include "util/rng.hpp"

using namespace mpch;

namespace {

struct Measurement {
  bool completed = false;
  std::uint64_t rounds = 0;
  std::uint64_t total_bits = 0;
  std::uint64_t messages = 0;
  double wall_ms = 0.0;
  util::BitString output;
};

Measurement measure(mpc::MpcAlgorithm& algo, mpc::MpcConfig config,
                    const std::vector<util::BitString>& initial,
                    std::shared_ptr<hash::RandomOracle> oracle, bool authenticate) {
  config.authenticate_messages = authenticate;
  if (authenticate) config.local_memory_bits += 1 << 16;  // headroom for the tags
  mpc::MpcSimulation sim(config, std::move(oracle));
  auto t0 = std::chrono::steady_clock::now();
  mpc::MpcRunResult result = sim.run(algo, initial);
  auto t1 = std::chrono::steady_clock::now();
  Measurement m;
  m.completed = result.completed;
  m.rounds = result.rounds_used;
  m.total_bits = result.trace.total_communicated_bits();
  for (const auto& r : result.trace.rounds()) m.messages += r.messages;
  m.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  m.output = result.output;
  return m;
}

}  // namespace

int main() {
  bench::header("E18", "Authenticated messaging overhead (mpc/auth.hpp)",
                "auth adds exactly 64 bits x message count to communication, zero rounds, "
                "and a small constant per-message CPU cost");

  struct JsonRow {
    std::string strategy;
    bool authenticate;
    std::uint64_t rounds;
    std::uint64_t messages;
    std::uint64_t total_bits;
    double wall_ms;
  };
  std::vector<JsonRow> json_rows;
  util::Table t({"strategy", "auth", "rounds", "messages", "comm_bits", "bits_overhead",
                 "wall_ms", "output_identical"});
  bool all_ok = true;

  auto record = [&](const std::string& name, const Measurement& off, const Measurement& on) {
    // The metered contract: same rounds, same output, and the bit growth is
    // exactly one kMessageTagBits tag per message.
    bool identical = on.completed && off.completed && on.output == off.output &&
                     on.rounds == off.rounds &&
                     on.total_bits == off.total_bits + mpc::kMessageTagBits * on.messages;
    all_ok = all_ok && identical;
    t.add(name, "off", off.rounds, off.messages, off.total_bits, 0,
          util::format_double(off.wall_ms, 2), "-");
    t.add(name, "on", on.rounds, on.messages, on.total_bits, on.total_bits - off.total_bits,
          util::format_double(on.wall_ms, 2), identical);
    json_rows.push_back({name, false, off.rounds, off.messages, off.total_bits, off.wall_ms});
    json_rows.push_back({name, true, on.rounds, on.messages, on.total_bits, on.wall_ms});
  };

  {
    const std::uint64_t m = 4;
    core::LineParams p = core::LineParams::make(256, 16, 8, 96);
    util::Rng rng(77);
    core::LineInput input = core::LineInput::random(p, rng);
    strategies::PointerChasingStrategy strat(p, strategies::OwnershipPlan::round_robin(p, m));
    mpc::MpcConfig c;
    c.machines = m;
    c.local_memory_bits = strat.required_local_memory();
    c.query_budget = 1 << 20;
    c.max_rounds = 100000;
    c.tape_seed = 18;
    auto oracle_off = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, 18);
    auto oracle_on = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, 18);
    Measurement off = measure(strat, c, strat.make_initial_memory(input), oracle_off, false);
    Measurement on = measure(strat, c, strat.make_initial_memory(input), oracle_on, true);
    record("pointer-chasing", off, on);
  }

  {
    const std::uint64_t n = 64;
    std::vector<std::uint64_t> memory(n);
    for (std::uint64_t i = 0; i < n; ++i) memory[i] = (18 * 7 + i * 3) % 997;
    std::vector<ram::Instruction> prog = ram::programs::sum(n);
    strategies::RamEmulationStrategy strat(prog, 4, 1);
    mpc::MpcConfig c;
    c.machines = 4;
    c.local_memory_bits = strat.required_local_memory(memory.size());
    c.query_budget = 1;
    c.max_rounds = 1 << 20;
    c.tape_seed = 18;
    Measurement off = measure(strat, c, strat.make_initial_memory(memory), nullptr, false);
    Measurement on = measure(strat, c, strat.make_initial_memory(memory), nullptr, true);
    record("ram-emulation", off, on);
  }

  t.print(std::cout);
  std::cout << "\ninterpretation: bits_overhead == 64 x messages, rounds and outputs are\n"
               "untouched — authentication rides inside the existing schedule. The wall\n"
               "clock delta is the per-message tag derivation + barrier verification; it\n"
               "scales with message count, not with rounds or machine memory.\n";

  {
    std::ofstream json("BENCH_e18.json");
    json << "[\n";
    for (std::size_t i = 0; i < json_rows.size(); ++i) {
      const JsonRow& r = json_rows[i];
      json << "  {\"strategy\": \"" << r.strategy << "\", \"authenticate\": "
           << (r.authenticate ? "true" : "false") << ", \"rounds\": " << r.rounds
           << ", \"messages\": " << r.messages << ", \"comm_bits\": " << r.total_bits
           << ", \"wall_ms\": " << util::format_double(r.wall_ms, 3) << "}"
           << (i + 1 < json_rows.size() ? "," : "") << "\n";
    }
    json << "]\n";
  }
  std::cout << "\nwrote BENCH_e18.json (strategy, authenticate, rounds, messages, comm_bits, "
               "wall_ms per row)\n";

  if (!all_ok) {
    std::cerr << "auth-on run was not identical-modulo-tags to the auth-off run\n";
    return 1;
  }
  return 0;
}
