// E15 — ablation: why the hardness is average-case (Definition 2.5).
//
// A machine may store any *encoding* of its blocks. If the input has only d
// distinct block values, the dictionary encoding squeezes all of X into
// d·u + v·log d bits: below the s cap for small d, letting one machine walk
// the whole chain in 2 rounds. At d = v (the uniform-input regime) the
// dictionary is bigger than X itself and the gather violates s — the
// entropy of X is the resource the compression argument protects.
#include "bench_common.hpp"
#include "core/line.hpp"
#include "strategies/dictionary.hpp"
#include "strategies/pointer_chasing.hpp"
#include "util/rng.hpp"

using namespace mpch;

int main() {
  bench::header("E15", "Input-entropy ablation (Definition 2.5's average case)",
                "low-entropy X compresses below s and the hardness evaporates; uniform X "
                "does not compress and the bound bites");

  const std::uint64_t n = 64, u = 16, v = 64, m = 8, w = 1024;
  core::LineParams p = core::LineParams::make(n, u, v, w);
  // The memory cap a pointer-chasing machine would have at f = 1/4.
  strategies::PointerChasingStrategy reference(p, strategies::OwnershipPlan::round_robin(p, m));
  const std::uint64_t s_cap = 3000;  // bits; ~S/5 where S = 1024

  util::Table t({"distinct_d", "encoded_bits", "fits_s=3000", "strategy", "rounds", "output_ok"});
  for (std::uint64_t d : {1, 2, 4, 8, 16, 32, 64}) {
    util::Rng rng(7000 + d);
    core::LineInput input = strategies::make_low_entropy_input(p, d, rng);
    auto oracle = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, 8000 + d);
    util::BitString expected = core::LineFunction(p).evaluate(*oracle, input);

    strategies::DictionaryStrategy dict(p, m);
    std::uint64_t bits = dict.gathered_bits(d);
    bool fits = bits <= s_cap;
    if (fits) {
      mpc::MpcConfig c;
      c.machines = m;
      c.local_memory_bits = s_cap;
      c.query_budget = w + 1;
      c.max_rounds = 10;
      mpc::MpcSimulation sim(c, oracle);
      auto result = sim.run(dict, dict.make_initial_memory(input));
      t.add(d, bits, true, "dictionary-gather", result.rounds_used, result.output == expected);
    } else {
      // Dictionary does not fit: fall back to honest pointer chasing with
      // the same per-machine cap (round-robin, 8 blocks/machine ~ 2900 bits).
      strategies::PointerChasingStrategy chase(p,
                                               strategies::OwnershipPlan::round_robin(p, m));
      auto oracle2 = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, 8000 + d);
      auto result = bench::run_strategy(chase, input, oracle2, m);
      t.add(d, bits, false, "pointer-chasing", result.rounds_used, result.output == expected);
    }
  }
  t.print(std::cout);

  std::cout << "\ninterpretation: while the input has few distinct blocks the dictionary\n"
               "encoding of ALL of X fits one machine's s = 3000 bits and the chain\n"
               "finishes in 2 rounds; at full entropy (d = v = 64) no encoding fits\n"
               "(Shannon) and rounds jump back to ~w(1-f). Hardness is a property of the\n"
               "input distribution, exactly as Definition 2.5's average case states it.\n";
  return 0;
}
