// E16 — the unconditional baseline: [64]'s Ω(log_s N) vs this paper's Ω̃(T).
//
// Section 1: "Roughgarden, Vassilvitskii, and Wang showed that there are
// functions requiring Ω(log_s N) rounds... This gives a logarithmic lower
// bound when s = O(1), but only a constant lower bound for the typical
// settings where s is polynomial in N" — and beating it unconditionally
// would separate P from NC1. This bench computes both bounds side by side
// on a shared parameter grid, and validates the [64] mechanism on real
// fan-in-s circuits (cone growth ≤ s^depth; reduction trees meet the bound
// with equality).
#include "bench_common.hpp"
#include "mpc/fanin_circuit.hpp"
#include "theory/bounds.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"

using namespace mpch;

int main() {
  bench::header("E16", "[64]'s unconditional Omega(log_s N) baseline (Section 1)",
                "the unconditional bound is constant for polynomial s; the paper's "
                "conditional bound is ~T/log^2 T — the gap this paper exists to close");

  std::cout << "\nthe two bounds on a shared grid (N = input bits, T = N so the RAM pass is "
               "linear):\n";
  util::Table t({"N", "s", "rvw_lb_log_s(N)", "paper_lb_T/log2T", "ratio"});
  for (std::uint64_t logN : {16, 20, 24}) {
    std::uint64_t n_inputs = 1ULL << logN;
    for (std::uint64_t s : {4ULL, 1ULL << (logN / 4), 1ULL << (logN / 2)}) {
      std::uint64_t rvw = mpc::FaninCircuit::min_depth_for_full_dependence(n_inputs, s);
      // Line at T = N, u = 16 (layout fields don't affect the bound shape).
      core::LineParams p = core::LineParams::make(64, 16, 1 << 10, n_inputs);
      long double paper = theory::lemma32_round_lower_bound(p);
      t.add(std::string("2^") + std::to_string(logN),
            s, rvw, util::format_double(static_cast<double>(paper), 0),
            util::format_double(static_cast<double>(paper) / static_cast<double>(rvw), 0));
    }
  }
  t.print(std::cout);

  std::cout << "\nmechanism check on concrete fan-in-s circuits (reduction trees):\n";
  util::Table t2({"inputs_N", "word", "s_bits", "tree_depth", "lb_gate_levels",
                  "cone=all_inputs", "cone_growth_ok"});
  auto sum = [](std::uint64_t a, std::uint64_t b) { return a + b; };
  for (auto [n, word, s] : {std::tuple<std::uint64_t, std::uint64_t, std::uint64_t>{64, 8, 16},
                            {256, 8, 32}, {1024, 8, 64}, {4096, 16, 256}}) {
    mpc::FaninCircuit c = mpc::make_reduction_tree(n, word, s, sum);
    std::uint64_t lb = mpc::FaninCircuit::min_depth_for_full_dependence(n, s / word);
    auto cone = c.dependency_cone({c.depth(), 0});
    t2.add(n, word, s, c.depth(), lb, cone.size() == n, c.cone_growth_bound_holds());
  }
  t2.print(std::cout);

  std::cout << "\nverification that the trees compute correctly (sum of 1..N):\n";
  util::Table t3({"N", "computed", "expected"});
  for (std::uint64_t n : {64, 256}) {
    mpc::FaninCircuit c = mpc::make_reduction_tree(n, 32, 128, sum);
    std::vector<util::BitString> inputs;
    for (std::uint64_t i = 1; i <= n; ++i) inputs.push_back(util::BitString::from_uint(i, 32));
    auto out = c.evaluate(inputs);
    t3.add(n, out[0].get_uint(0, 32), n * (n + 1) / 2);
  }
  t3.print(std::cout);

  std::cout << "\ninterpretation: at the typical s = N^(1/2) the unconditional bound is 2\n"
               "rounds — vacuous — while the paper's RO-conditional bound is ~N/log^2 N:\n"
               "five orders of magnitude stronger at N = 2^24. That gap (and the P vs NC1\n"
               "barrier behind it) is the reason the paper moves to the random oracle\n"
               "model at all.\n";
  return 0;
}
