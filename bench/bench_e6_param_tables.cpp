// E6 — Tables 1-3 and the Theorem 3.1 parameter regime.
//
// Reproduces the paper's parameter tables concretely: for a sweep of n, it
// derives Table 3's (u, v, w), checks every side condition of Theorem 3.1 /
// Lemma 3.6, and evaluates the exact Claim 3.9 failure bound at the
// theorem's round budget — showing where the regime "turns on".
#include <algorithm>

#include "bench_common.hpp"
#include "theory/bounds.hpp"

using namespace mpch;

int main() {
  bench::header("E6", "Tables 1-3 + Theorem 3.1 side conditions",
                "the derived (u = n/3, v = S/u, w = T) regime satisfies every inequality "
                "once n is large enough; the success bound then vanishes");

  std::cout << "\nTable 3 derivation + feasibility (S = 2^20 bits, T = 2^24, q = 2^10, "
               "m = 2^8, s = S/4):\n";
  util::Table t({"n", "u=n/3", "v=S/u", "w=T", "all_checks", "lemma36_h",
                 "lemma32_lb_rounds", "success_log2_prob"});
  for (std::uint64_t n : {96, 3072, 98304, 524288, 1048576}) {
    core::PaperRegime r;
    r.n = n;
    r.S = 1 << 20;
    r.T = 1 << 24;
    r.q = 1 << 10;
    r.m = 1 << 8;
    r.s = r.S / 4;
    core::LineParams p = r.derive_line_params();
    theory::MpcBoundParams mp;
    mp.m = r.m;
    mp.q = r.q;
    mp.s = r.s;
    t.add(n, p.u, p.v, p.w, r.all_satisfied(2.0),
          util::format_double(r.lemma36_h(), 2),
          util::format_double(static_cast<double>(theory::lemma32_round_lower_bound(p)), 1),
          util::format_log2_prob(theory::lemma32_success_log2_prob(p, mp)));
  }
  t.print(std::cout);

  std::cout << "\nper-inequality detail at n = 2^20 (the fully feasible row):\n";
  {
    core::PaperRegime r;
    r.n = 1048576;
    r.S = 1 << 20;
    r.T = 1 << 24;
    r.q = 1 << 10;
    r.m = 1 << 8;
    r.s = r.S / 4;
    util::Table t2({"check", "satisfied", "detail"});
    for (const auto& c : r.checks(2.0)) t2.add(c.name, c.satisfied, c.detail);
    t2.print(std::cout);
  }

  std::cout << "\nthe n = polylog(T) instantiation (Theorem 1.1's concluding remark):\n"
               "n = log^5 T satisfies T < 2^{n^{1/4}} = 2^{log^{5/4} T}; S = max(n, 2^{logT/2}):\n";
  util::Table t3({"T", "n=log^5(T)", "all_checks", "RAM_time_T*n", "mpc_lb_rounds"});
  for (std::uint64_t logT : {16, 24, 32, 48}) {
    std::uint64_t T = 1ULL << logT;
    std::uint64_t n = logT * logT * logT * logT * logT;
    core::PaperRegime r;
    r.n = n;
    r.S = std::max<std::uint64_t>(n, 1ULL << (logT / 2));
    r.T = T;
    r.q = 1ULL << (logT / 4);
    r.m = 1ULL << (logT / 4);
    r.s = r.S / 4;
    core::LineParams p = r.derive_line_params();
    t3.add(std::string("2^") + std::to_string(logT), n, r.all_satisfied(2.0),
           std::string("2^") + util::format_double(logT + std::log2(static_cast<double>(n)), 1),
           util::format_double(static_cast<double>(theory::lemma32_round_lower_bound(p)), 0));
  }
  t3.print(std::cout);

  std::cout << "\ninterpretation: once n clears the Lemma 3.6 precondition "
               "(u >= (log^2 w + 2) log v + log q),\nevery inequality of Theorem 3.1 holds and "
               "the MPC success bound collapses; RAM cost\nstays ~T*n while the MPC round bound "
               "stays ~T/log^2 T — best-possible hardness.\n";
  return 0;
}
