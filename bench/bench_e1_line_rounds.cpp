// E1 — Theorem 3.1 / Lemma 3.2: Line^RO round complexity when s <= S/c.
//
// Sweeps the per-machine storage fraction f = s-blocks/v (i.e. c = 1/f) and
// the chain length w. Measured rounds of the best honest strategy
// (pointer-chasing with replication) are printed against:
//   * the geometric model 1 + (w-1)(1-f)  — expected behaviour,
//   * the paper's lower bound w/log²w     — which no strategy may beat,
//   * the SimLine-style target w·u/s      — what parallelism WOULD buy if
//     the schedule were public (for contrast; see E2).
#include "bench_common.hpp"
#include "core/line.hpp"
#include "strategies/colluding.hpp"
#include "strategies/pointer_chasing.hpp"
#include "theory/bounds.hpp"
#include "util/rng.hpp"

using namespace mpch;

int main() {
  bench::header("E1", "Theorem 3.1 / Lemma 3.2 (Line round complexity)",
                "any MPC algorithm with s <= S/c needs ~Omega(w/log^2 w) rounds; the honest "
                "strategy needs ~w(1-f)");

  const std::uint64_t n = 64, u = 16, v = 64, m = 16;
  util::Table sweep_f({"c=S/s", "f=s/S", "w", "measured_rounds", "model_w(1-f)",
                       "paper_lb_w/log2w", "rounds/w"});
  for (std::uint64_t c : {2, 4, 8, 16}) {
    const std::uint64_t w = 4096;
    core::LineParams p = core::LineParams::make(n, u, v, w);
    double f = 1.0 / static_cast<double>(c);
    std::uint64_t per_machine = v / c;
    strategies::PointerChasingStrategy strat(
        p, strategies::OwnershipPlan::replicated(p, m, per_machine));
    auto oracle = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, 100 + c);
    util::Rng rng(200 + c);
    core::LineInput input = core::LineInput::random(p, rng);
    auto result = bench::run_strategy(strat, input, oracle, m);
    long double model = theory::pointer_chasing_expected_rounds(p, f);
    long double paper_lb = theory::lemma32_round_lower_bound(p);
    sweep_f.add(c, util::format_double(f, 4), w, result.rounds_used,
                util::format_double(static_cast<double>(model), 1),
                util::format_double(static_cast<double>(paper_lb), 1),
                util::format_double(static_cast<double>(result.rounds_used) / w, 3));
  }
  sweep_f.print(std::cout);

  std::cout << "\nscaling in w at fixed c = 4 (rounds must grow ~linearly in w = T):\n";
  util::Table sweep_w({"w", "measured_rounds", "model_w(1-f)", "paper_lb_w/log2w", "rounds/w"});
  for (std::uint64_t w : {512, 1024, 2048, 4096, 8192}) {
    core::LineParams p = core::LineParams::make(n, u, v, w);
    strategies::PointerChasingStrategy strat(
        p, strategies::OwnershipPlan::replicated(p, m, v / 4));
    auto oracle = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, 300 + w);
    util::Rng rng(400 + w);
    core::LineInput input = core::LineInput::random(p, rng);
    auto result = bench::run_strategy(strat, input, oracle, m);
    long double model = theory::pointer_chasing_expected_rounds(p, 0.25L);
    long double paper_lb = theory::lemma32_round_lower_bound(p);
    sweep_w.add(w, result.rounds_used, util::format_double(static_cast<double>(model), 1),
                util::format_double(static_cast<double>(paper_lb), 1),
                util::format_double(static_cast<double>(result.rounds_used) / w, 3));
  }
  sweep_w.print(std::cout);

  std::cout << "\ncommunication-pattern ablation at c = 4, w = 2048 (unicast hand-off vs\n"
               "full frontier broadcast):\n";
  util::Table ablate({"pattern", "rounds", "communicated_bits"});
  {
    const std::uint64_t w = 2048;
    core::LineParams p = core::LineParams::make(n, u, v, w);
    util::Rng rng(901);
    core::LineInput input = core::LineInput::random(p, rng);
    strategies::PointerChasingStrategy unicast(
        p, strategies::OwnershipPlan::round_robin(p, m));
    auto o1 = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, 902);
    auto r1 = bench::run_strategy(unicast, input, o1, m);
    strategies::ColludingStrategy collude(p, strategies::OwnershipPlan::round_robin(p, m));
    auto o2 = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, 902);
    auto r2 = bench::run_strategy(collude, input, o2, m);
    ablate.add("unicast hand-off", r1.rounds_used, r1.trace.total_communicated_bits());
    ablate.add("frontier broadcast", r2.rounds_used, r2.trace.total_communicated_bits());
  }
  ablate.print(std::cout);

  std::cout << "\ninterpretation: measured rounds scale linearly in w and exceed the paper's\n"
               "w/log^2 w lower bound at every point; shrinking s (growing c) pushes rounds\n"
               "toward w, and changing the communication pattern changes communication\n"
               "volume but not rounds — the bound is about local memory, nothing else.\n";
  return 0;
}
