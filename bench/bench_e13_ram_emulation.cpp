// E13 — the trivial upper bound (Introduction): "an MPC algorithm can
// compute the function in T rounds by emulating the RAM computation step by
// step, even when each machine has O(log S) local memory size."
//
// A real word-RAM program (array sum / in-place reverse) is executed
// natively and under MPC emulation with the memory sharded across servers
// and a constant-size CPU state. Rounds per RAM step stay a small constant;
// together with E1's lower bound this pins Line's round complexity at
// Θ̃(T).
#include "bench_common.hpp"
#include "ram/machine.hpp"
#include "ram/programs.hpp"
#include "strategies/ram_emulation.hpp"

using namespace mpch;

int main() {
  bench::header("E13", "The trivial T-round upper bound (Introduction)",
                "MPC emulates any RAM step-by-step: rounds/step is a small constant even "
                "with O(log S)-size CPU state");

  util::Table t({"array_n", "ram_steps", "machines", "steps/round_cap", "mpc_rounds",
                 "rounds_per_step", "cpu_state_bits"});
  for (std::uint64_t n : {8, 32, 128}) {
    std::vector<std::uint64_t> memory(n);
    for (std::uint64_t i = 0; i < n; ++i) memory[i] = i + 1;
    auto prog = ram::programs::sum(n);
    ram::RamMachine native(prog, memory);
    native.run();
    std::uint64_t steps = native.steps_executed();

    for (std::uint64_t cap : {1ULL, 0ULL}) {  // 1 = paper-literal, 0 = unbounded local compute
      strategies::RamEmulationStrategy strat(prog, 5, cap);
      mpc::MpcConfig c;
      c.machines = 5;
      c.local_memory_bits = strat.required_local_memory(memory.size());
      c.query_budget = 1;
      c.max_rounds = 1 << 20;
      mpc::MpcSimulation sim(c, nullptr);
      auto result = sim.run(strat, strat.make_initial_memory(memory));
      if (!result.completed) {
        std::cerr << "emulation did not finish\n";
        return 1;
      }
      ram::RamState final_state = strategies::RamEmulationStrategy::parse_output(result.output);
      if (final_state.regs[0] != n * (n + 1) / 2) {
        std::cerr << "WRONG SUM\n";
        return 1;
      }
      // CPU state = pc + halted + 8 regs + load target (+ tag).
      std::uint64_t cpu_bits = 4 + 64 + 1 + 8 * 64 + 8;
      t.add(n, steps, 5, cap == 0 ? "unbounded" : "1",
            result.rounds_used,
            util::format_double(static_cast<double>(result.rounds_used) /
                                    static_cast<double>(steps),
                                2),
            cpu_bits);
    }
  }
  t.print(std::cout);

  std::cout << "\ninterpretation: with the paper-literal one-step-per-round cap, rounds per\n"
               "RAM step sit near 1.5 (loads cost a round trip); the CPU carries a fixed\n"
               "~600-bit state no matter how large the sharded memory is. Emulation gives\n"
               "the O(T)-round upper bound that Theorem 3.1's ~T/log^2 T lower bound meets\n"
               "from below: Line's MPC round complexity is pinned at Theta~(T).\n";
  return 0;
}
