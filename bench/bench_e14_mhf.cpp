// E14 — the memory-hard-function connection (Section 1.2).
//
// The paper situates Line^RO next to the MHF literature ([3-6], scrypt):
// both chain sequential oracle calls, but the cost they defend differs —
// MHFs defend cumulative memory (adaptive queries are the obstacle), Line
// defends rounds (bounded local space is the obstacle). This bench runs
// scrypt's ROMix on the same oracle substrate and puts the two cost curves
// side by side: ROMix's CMC grows ~quadratically in its cost parameter and
// admits a memory/time trade-off (stride recomputation); Line's rounds grow
// ~linearly in w and admit *no* memory trade-off below s = S (E10's cliff).
#include "bench_common.hpp"
#include "core/line.hpp"
#include "mhf/romix.hpp"
#include "strategies/pointer_chasing.hpp"
#include "util/rng.hpp"

using namespace mpch;

int main() {
  bench::header("E14", "MHF connection (Section 1.2)",
                "ROMix on the same RO substrate: quadratic CMC with a memory/time "
                "trade-off, vs Line's linear rounds with none");

  const std::uint64_t kBlock = 64;
  std::cout << "\nROMix (scrypt core) honest evaluation — CMC grows ~N^2:\n";
  util::Table t({"cost_N", "oracle_calls", "peak_bits", "CMC_bit_steps", "CMC/N^2"});
  for (std::uint64_t n : {64, 128, 256, 512}) {
    mhf::RoMix romix(kBlock, n);
    hash::LazyRandomOracle oracle(kBlock, kBlock, 100 + n);
    util::Rng rng(n);
    util::BitString input = util::BitString::random(kBlock, [&rng] { return rng.next_u64(); });
    mhf::CmcMeter meter;
    romix.evaluate(oracle, input, &meter);
    t.add(n, meter.oracle_calls(), meter.peak_bits(), meter.cumulative_bit_steps(),
          util::format_double(static_cast<double>(meter.cumulative_bit_steps()) /
                                  static_cast<double>(n * n),
                              2));
  }
  t.print(std::cout);

  std::cout << "\nROMix memory/time trade-off at N = 256 (stride recomputation):\n";
  util::Table t2({"stride", "peak_bits", "oracle_calls", "calls_vs_honest", "output_identical"});
  util::BitString honest_out;
  std::uint64_t honest_calls = 0;
  for (std::uint64_t stride : {1, 2, 4, 8, 16}) {
    mhf::RoMix romix(kBlock, 256);
    hash::LazyRandomOracle oracle(kBlock, kBlock, 555);
    util::Rng rng(9);
    util::BitString input = util::BitString::random(kBlock, [&rng] { return rng.next_u64(); });
    mhf::CmcMeter meter;
    util::BitString out = romix.evaluate_with_stride(oracle, input, stride, &meter);
    if (stride == 1) {
      honest_out = out;
      honest_calls = meter.oracle_calls();
    }
    t2.add(stride, meter.peak_bits(), meter.oracle_calls(),
           util::format_double(static_cast<double>(meter.oracle_calls()) /
                                   static_cast<double>(honest_calls),
                               2),
           out == honest_out);
  }
  t2.print(std::cout);

  std::cout << "\nLine for contrast — rounds are linear in w and cannot be traded away\n"
               "below s = S (measured at f = 1/4):\n";
  util::Table t3({"w", "mpc_rounds", "rounds/w"});
  for (std::uint64_t w : {512, 1024, 2048}) {
    core::LineParams p = core::LineParams::make(64, 16, 16, w);
    strategies::PointerChasingStrategy strat(p, strategies::OwnershipPlan::round_robin(p, 4));
    auto oracle = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, 200 + w);
    util::Rng rng(300 + w);
    core::LineInput input = core::LineInput::random(p, rng);
    auto result = bench::run_strategy(strat, input, oracle, 4);
    t3.add(w, result.rounds_used,
           util::format_double(static_cast<double>(result.rounds_used) / w, 3));
  }
  t3.print(std::cout);

  std::cout << "\ninterpretation: both primitives chain oracle calls, but ROMix's defence\n"
               "(CMC ~ N^2, eroded k-fold in memory at a k-fold call cost) is orthogonal to\n"
               "Line's (rounds ~ w, insensitive to anything but s >= S) — exactly the\n"
               "paper's point that MHF analyses do not transfer to the MPC model.\n";
  return 0;
}
