// E20 — mpch-serve throughput: the job-queue service as a measurement.
//
// Three sections, all through the real ServeService (the same engine behind
// the mpch-serve CLI):
//
//  1. ram-sweep — 200 independent ram-emulation jobs (seeds 1..200) on a
//     worker pool. The acceptance bar: total wall time beats 200x the
//     single-run ram-emulation time BENCH_e18 records (~23.5 ms), i.e. the
//     service amortises setup and parallelises across jobs instead of just
//     queueing them.
//
//  2. memo-delta — a repeated-seed pointer-chasing sweep (every job the same
//     oracle family) run twice: shared memo ON vs OFF. With sharing, job 2..N
//     hit the process-wide memo instead of re-deriving SHA-256-CTR outputs,
//     so per-job latency drops while every output bit stays identical.
//
//  3. mixed — all eight strategies x several seeds, reporting per-strategy
//     p50/p99 latency under the pool.
//
// Writes BENCH_e20.json (the machine-readable mirror) to the working
// directory, like the other bench JSON artifacts.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <thread>

#include "bench_common.hpp"
#include "serve/service.hpp"
#include "util/cli.hpp"
#include "util/json.hpp"

using namespace mpch;

namespace {

double percentile(std::vector<double> samples, double q) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const std::size_t idx = std::min(
      samples.size() - 1, static_cast<std::size_t>(q * static_cast<double>(samples.size())));
  return samples[idx];
}

std::vector<double> executed_walls(const std::vector<serve::JobResult>& results) {
  std::vector<double> walls;
  for (const auto& r : results) {
    if (r.status != serve::JobStatus::kRejected) walls.push_back(r.wall_ms);
  }
  return walls;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliArgs args(argc, argv);
  const std::uint64_t workers = args.get_u64("workers", 4);
  const std::uint64_t sweep_jobs = args.get_u64("sweep-jobs", 200);
  const std::uint64_t memo_jobs = args.get_u64("memo-jobs", 64);
  if (!args.unused().empty()) {
    std::cerr << "unknown flag --" << args.unused().front()
              << " (supported: --workers, --sweep-jobs, --memo-jobs)\n";
    return 2;
  }

  bench::header("E20", "mpch-serve job-queue throughput",
                "a worker pool with shared oracle memo + buffer reuse beats N x single-run "
                "time on N-job sweeps without changing one output bit");
  std::cout << "workers: " << workers
            << " (hardware threads: " << std::thread::hardware_concurrency() << ")\n";

  util::JsonWriter json;
  json.begin_object();
  json.member("workers", workers);

  // --- 1. ram-emulation sweep -------------------------------------------
  std::vector<serve::JobSpec> ram_jobs(sweep_jobs);
  for (std::uint64_t i = 0; i < sweep_jobs; ++i) {
    ram_jobs[i].verb = serve::JobVerb::kSimulate;
    ram_jobs[i].strategy = "ram-emulation";
    ram_jobs[i].seed = i + 1;
  }
  serve::ServeService ram_service(serve::ServeOptions{workers, 64, true, true});
  auto ram_results = ram_service.run_jobs(ram_jobs);
  std::uint64_t ram_ok = ram_service.stats().ok;
  auto ram_walls = executed_walls(ram_results);
  const double ram_wall = ram_service.stats().wall_ms;
  std::cout << "\nram-sweep: " << sweep_jobs << " jobs, " << ram_ok << " ok, "
            << util::format_double(ram_wall, 1) << " ms total ("
            << util::format_double(ram_service.stats().runs_per_sec, 1) << " runs/sec, p50 "
            << util::format_double(percentile(ram_walls, 0.50), 3) << " ms, p99 "
            << util::format_double(percentile(ram_walls, 0.99), 3) << " ms)\n"
            << "  buffer arenas: " << ram_service.stats().arena_reuses << " reuse(s), "
            << ram_service.stats().arena_allocations << " allocation(s)\n";
  json.key("ram_sweep").begin_object();
  json.member("jobs", sweep_jobs);
  json.member("ok", ram_ok);
  json.member_double("wall_ms", ram_wall);
  json.member_double("runs_per_sec", ram_service.stats().runs_per_sec);
  json.member_double("p50_ms", percentile(ram_walls, 0.50));
  json.member_double("p99_ms", percentile(ram_walls, 0.99));
  json.member("arena_reuses", ram_service.stats().arena_reuses);
  json.member("arena_allocations", ram_service.stats().arena_allocations);
  json.end_object();
  if (ram_ok != sweep_jobs) {
    std::cerr << "ram-sweep had failures\n";
    return 1;
  }

  // --- 2. memo on/off delta ---------------------------------------------
  // Same seed on purpose: every job queries the same oracle sub-function, so
  // with sharing only the first derives — the steady state of a sweep that
  // re-examines one instance (parameter studies, fault matrices).
  std::vector<serve::JobSpec> memo_sweep(memo_jobs);
  for (auto& spec : memo_sweep) {
    spec.verb = serve::JobVerb::kSimulate;
    spec.strategy = "pointer-chasing";
    spec.seed = 11;
  }
  serve::ServeService memo_on(serve::ServeOptions{workers, 64, /*share_memo=*/true, true});
  auto on_results = memo_on.run_jobs(memo_sweep);
  serve::ServeService memo_off(serve::ServeOptions{workers, 64, /*share_memo=*/false, true});
  auto off_results = memo_off.run_jobs(memo_sweep);
  const auto on_walls = executed_walls(on_results);
  const auto off_walls = executed_walls(off_results);
  const double on_p50 = percentile(on_walls, 0.50), off_p50 = percentile(off_walls, 0.50);
  bool identical = on_results.size() == off_results.size();
  for (std::size_t i = 0; identical && i < on_results.size(); ++i) {
    identical = on_results[i].run.output == off_results[i].run.output &&
                on_results[i].run.rounds_used == off_results[i].run.rounds_used;
  }
  std::cout << "\nmemo-delta (" << memo_jobs << " repeated-seed pointer-chasing jobs):\n"
            << "  memo on:  " << util::format_double(memo_on.stats().wall_ms, 1) << " ms total, "
            << "p50 " << util::format_double(on_p50, 3) << " ms/job ("
            << memo_on.stats().memo_hits << " hits, " << memo_on.stats().memo_misses
            << " misses)\n"
            << "  memo off: " << util::format_double(memo_off.stats().wall_ms, 1)
            << " ms total, p50 " << util::format_double(off_p50, 3) << " ms/job\n"
            << "  outputs identical on/off: " << (identical ? "yes" : "NO") << "\n";
  json.key("memo_delta").begin_object();
  json.member("jobs", memo_jobs);
  json.member_double("on_wall_ms", memo_on.stats().wall_ms);
  json.member_double("off_wall_ms", memo_off.stats().wall_ms);
  json.member_double("on_p50_ms", on_p50);
  json.member_double("off_p50_ms", off_p50);
  json.member("memo_hits", memo_on.stats().memo_hits);
  json.member("memo_misses", memo_on.stats().memo_misses);
  json.member("outputs_identical", identical);
  json.end_object();
  if (!identical) {
    std::cerr << "memo sharing changed an output — determinism broken\n";
    return 1;
  }

  // --- 3. mixed per-strategy latency ------------------------------------
  std::vector<serve::JobSpec> mixed;
  for (const std::string& name : serve::strategy_names()) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      serve::JobSpec spec;
      spec.verb = serve::JobVerb::kSimulate;
      spec.strategy = name;
      spec.seed = seed;
      mixed.push_back(spec);
    }
  }
  serve::ServeService mixed_service(serve::ServeOptions{workers, 64, true, true});
  auto mixed_results = mixed_service.run_jobs(mixed);
  util::Table t({"strategy", "jobs", "p50_ms", "p99_ms"});
  json.key("strategies").begin_array();
  for (const std::string& name : serve::strategy_names()) {
    std::vector<double> walls;
    for (const auto& r : mixed_results) {
      if (r.spec.strategy == name && r.status != serve::JobStatus::kRejected) {
        walls.push_back(r.wall_ms);
      }
    }
    if (walls.empty()) continue;
    const double p50 = percentile(walls, 0.50), p99 = percentile(walls, 0.99);
    t.add(name, walls.size(), util::format_double(p50, 3), util::format_double(p99, 3));
    json.begin_object();
    json.member("strategy", name);
    json.member("jobs", static_cast<std::uint64_t>(walls.size()));
    json.member_double("p50_ms", p50);
    json.member_double("p99_ms", p99);
    json.end_object();
  }
  json.end_array();
  std::cout << "\nmixed sweep (" << mixed.size() << " jobs, "
            << util::format_double(mixed_service.stats().runs_per_sec, 1) << " runs/sec):\n";
  t.print(std::cout);
  json.member_double("mixed_runs_per_sec", mixed_service.stats().runs_per_sec);
  json.end_object();

  std::ofstream out("BENCH_e20.json");
  out << json.str() << "\n";
  std::cout << "\nwrote BENCH_e20.json (ram_sweep, memo_delta, per-strategy latency)\n"
            << "\ninterpretation: the sweep's wall time is what a cluster operator buys with\n"
               "the service — Theorem 3.1 caps per-run rounds, not jobs/second. Sharing the\n"
               "oracle memo is safe precisely because H is one fixed random function per\n"
               "(width, seed) family: caching its graph across jobs is invisible to every\n"
               "observable surface, and the memo-delta section measures what it saves.\n";
  return 0;
}
