// E3 — Lemma 3.3 / Lemma A.7: the guess-ahead probability is 2^{-u}.
//
// Measures the hit rate of an adversary that tries to query correct entry
// e = (j+1, x, r_{j+1}) without having queried its predecessor: the only
// unknown is the u-bit r. The measured rate must sit inside the Wilson
// interval of guesses/2^u for every u, and the fitted slope of
// log2(rate) vs u must be ~ -1 per bit — the exponential decay the paper's
// union bound rests on.
#include "bench_common.hpp"
#include "stats/estimator.hpp"
#include "strategies/guess_ahead.hpp"

using namespace mpch;

int main() {
  bench::header("E3", "Lemma 3.3 / Lemma A.7 (guess-ahead probability)",
                "Pr[query correct entry without its predecessor] <= 2^{-u} per guess");

  util::Table t({"u", "variant", "guesses", "trials", "hits", "measured_rate", "predicted",
                 "wilson_low", "wilson_high", "inside_CI"});
  std::vector<double> xs, ys;
  for (bool simline : {false, true}) {
    for (std::uint64_t u : {4, 6, 8, 10, 12}) {
      strategies::GuessAheadConfig cfg;
      cfg.params = core::LineParams::make(3 * u + 16, u, 8, 16);
      cfg.guesses_per_trial = 1;
      cfg.simline = simline;
      std::uint64_t trials = 1ULL << (10 + u);  // keep expected hits ~1024
      auto outcome = strategies::run_guess_ahead_trials(cfg, 42 + u, trials);
      double predicted = strategies::guess_ahead_predicted_rate(cfg.params, 1);
      stats::Proportion prop{outcome.hits, outcome.trials};
      t.add(u, simline ? "SimLine(A.7)" : "Line(3.3)", 1, trials, outcome.hits,
            util::format_double(prop.rate(), 8), util::format_double(predicted, 8),
            util::format_double(prop.wilson_low(), 8), util::format_double(prop.wilson_high(), 8),
            prop.contains(predicted));
      if (!simline && prop.rate() > 0) {
        xs.push_back(static_cast<double>(u));
        ys.push_back(std::log2(prop.rate()));
      }
    }
  }
  t.print(std::cout);

  stats::LinearFit fit = stats::fit_line(xs, ys);
  std::cout << "\nfit of log2(rate) vs u (Line variant): slope = "
            << util::format_double(fit.slope, 3) << " (paper predicts -1.0), R^2 = "
            << util::format_double(fit.r_squared, 4) << "\n";

  std::cout << "\nbudget scaling at u = 8 (rate = q/2^u, linear in the query budget):\n";
  util::Table t2({"guesses_q", "measured_rate", "predicted_q/2^u", "inside_CI"});
  for (std::uint64_t g : {1, 4, 16, 64, 256}) {
    strategies::GuessAheadConfig cfg;
    cfg.params = core::LineParams::make(3 * 8 + 16, 8, 8, 16);
    cfg.guesses_per_trial = g;
    std::uint64_t trials = 1 << 16;
    auto outcome = strategies::run_guess_ahead_trials(cfg, 77 + g, trials);
    double predicted = strategies::guess_ahead_predicted_rate(cfg.params, g);
    stats::Proportion prop{outcome.hits, outcome.trials};
    t2.add(g, util::format_double(prop.rate(), 6), util::format_double(predicted, 6),
           prop.contains(predicted));
  }
  t2.print(std::cout);

  std::cout << "\ninterpretation: the measured decay is exactly 2^{-u} per guess and exactly\n"
               "linear in the budget — the quantitative engine behind Pr[E^(k)] in Lemma 3.3.\n";
  return 0;
}
