// E5 — Claims 3.7/3.8 and A.4/A.5: the compression argument, executed.
//
// Runs the literal Enc/Dec schemes, verifies bit-exact round-trips, and
// prints the measured codeword breakdown against the paper's length bounds
// and the information-theoretic floor. The "contradiction" is visible as
// the implied log2(eps) dropping linearly in the covered-block count alpha.
#include "bench_common.hpp"
#include "compress/line_codec.hpp"
#include "compress/simline_codec.hpp"
#include "core/line.hpp"
#include "core/simline.hpp"
#include "theory/bounds.hpp"
#include "util/rng.hpp"

using namespace mpch;

int main() {
  bench::header("E5", "Claims 3.7/3.8 & A.4/A.5 (compression argument)",
                "Enc/Dec round-trips exactly; |Enc| <= paper bound; savings grow "
                "linearly in alpha, forcing eps <= 2^{-(alpha(u-logq-logv)-s-1)}");

  // SimLine scheme (Claim A.4) at n = 16, u = 6, v = 4.
  std::cout << "\nClaim A.4 Enc/Dec (SimLine), n = 16, u = 6, v = 4, q = 8:\n";
  core::LineParams p = core::LineParams::make(16, 6, 4, 8);
  util::Rng rng(1);
  hash::ExhaustiveRandomOracle oracle(p.n, p.n, rng);
  core::LineInput input = core::LineInput::random(p, rng);
  core::SimLineFunction fn(p);
  core::SimLineChain chain = fn.evaluate_chain(oracle, input);

  util::Table t({"alpha", "roundtrip_ok", "|Enc|_total", "oracle", "memory", "pointers",
                 "residual", "overhead", "paperA4_bound", "savings_vs_trivial",
                 "implied_log2_eps"});
  for (std::uint64_t alpha = 0; alpha <= 4; ++alpha) {
    std::vector<std::pair<std::uint64_t, util::BitString>> blocks;
    std::vector<util::BitString> entries;
    std::vector<std::uint64_t> target_blocks;
    for (std::uint64_t i = 1; i <= alpha; ++i) {
      std::uint64_t b = fn.scheduled_block(i);
      blocks.emplace_back(b, input.block(b));
      entries.push_back(chain.nodes[i - 1].query);
      target_blocks.push_back(b);
    }
    util::BitString memory =
        compress::SimLineWindowProgram::make_memory(p, 1, chain.nodes[0].r, blocks);
    compress::SimLineCompressor comp(p, 8);
    compress::SimLineWindowProgram program(p);
    auto enc = comp.encode(oracle, input, memory, program, entries, target_blocks);
    auto dec = comp.decode(enc.message, program);
    bool ok = dec.input_bits == input.bits();

    theory::MpcBoundParams mp;
    mp.q = 8;
    mp.s = memory.size();
    long double bound = theory::claimA4_encoding_bound_bits(
        p, mp, static_cast<long double>(enc.covered),
        static_cast<long double>(oracle.table_bits()));
    t.add(enc.covered, ok, enc.breakdown.total(), enc.breakdown.oracle_bits,
          enc.breakdown.memory_bits, enc.breakdown.pointer_bits, enc.breakdown.residual_bits,
          enc.breakdown.overhead_bits, util::format_double(static_cast<double>(bound), 0),
          compress::savings_bits(p, enc.breakdown),
          util::format_double(static_cast<double>(compress::implied_log2_eps(p, enc.breakdown)),
                              1));
  }
  t.print(std::cout);

  // Line scheme (Claim 3.7) with the Definition 3.4 rewiring.
  std::cout << "\nClaim 3.7 Enc/Dec (Line, oracle rewiring over [v]^depth), n = 12, u = 3, "
               "v = 4, depth = 2:\n";
  core::LineParams tp = core::LineParams::make(12, 3, 4, 8);
  util::Table t2({"stored_blocks", "roundtrip_ok", "|B|", "recorded_seqs/enumerated",
                  "|Enc|_total", "pointers", "residual", "claim37_bound"});
  for (std::uint64_t stored : {0ULL, 2ULL, 4ULL}) {
    util::Rng trng(50 + stored);
    hash::ExhaustiveRandomOracle toracle(tp.n, tp.n, trng);
    core::LineInput tinput = core::LineInput::random(tp, trng);
    core::LineChain tchain = core::LineFunction(tp).evaluate_chain(toracle, tinput);
    compress::RewireAnchor anchor;
    anchor.j_k = 1;
    anchor.ell_next = tchain.nodes[1].ell;
    anchor.r_next = tchain.nodes[1].r;

    std::vector<std::uint64_t> candidates = {anchor.ell_next};
    for (std::uint64_t b = 1; b <= tp.v; ++b) {
      if (b != anchor.ell_next) candidates.push_back(b);
    }
    std::vector<std::pair<std::uint64_t, util::BitString>> blocks;
    for (std::uint64_t pick : candidates) {
      if (blocks.size() >= stored) break;
      blocks.emplace_back(pick, tinput.block(pick));
    }
    util::BitString memory = compress::LineWindowProgram::make_memory(
        tp, anchor.j_k + 1, anchor.ell_next, anchor.r_next, blocks);
    compress::LineCompressor comp(tp, 64, 2);
    compress::LineWindowProgram program(tp);
    auto enc = comp.encode(toracle, tinput, memory, program, anchor);
    auto dec = comp.decode(enc.message, program);
    bool ok = dec.input_bits == tinput.bits();

    theory::MpcBoundParams mp;
    mp.q = 64;
    mp.s = memory.size();
    long double bound = theory::claim37_encoding_bound_bits(
        tp, mp, static_cast<long double>(enc.b_set.size()),
        static_cast<long double>(toracle.table_bits()));
    t2.add(blocks.size(), ok, enc.b_set.size(),
           std::to_string(enc.recorded_seqs) + "/" + std::to_string(enc.enumerated_seqs),
           enc.breakdown.total(), enc.breakdown.pointer_bits, enc.breakdown.residual_bits,
           util::format_double(static_cast<double>(bound), 0));
  }
  t2.print(std::cout);

  std::cout << "\ninterpretation: every Enc/Dec round-trip is bit-exact; each covered block\n"
               "removes u bits from the residual at a pointer cost of (log q + log v) bits,\n"
               "so the implied eps shrinks by 2^{-(u-logq-logv)} per unit of alpha — the\n"
               "exact contradiction mechanism of Lemma A.3 / Lemma 3.6.\n";
  return 0;
}
