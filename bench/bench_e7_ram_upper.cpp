// E7 — Theorem 3.1 / A.1 upper bounds: RAM evaluation costs O(T·n) time and
// O(S) space.
//
// google-benchmark timings over w (= T) and n confirm linear scaling in both
// factors; RamMeter confirms the model-level accounting (queries = w, peak
// space = uv + O(n)) exactly.
#include <benchmark/benchmark.h>

#include <iostream>

#include "core/line.hpp"
#include "core/simline.hpp"
#include "hash/random_oracle.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace mpch;

namespace {

void BM_LineEvalVsW(benchmark::State& state) {
  const std::uint64_t w = static_cast<std::uint64_t>(state.range(0));
  core::LineParams p = core::LineParams::make(64, 16, 64, w);
  hash::LazyRandomOracle oracle(p.n, p.n, 1);
  util::Rng rng(2);
  core::LineInput input = core::LineInput::random(p, rng);
  core::LineFunction f(p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.evaluate(oracle, input));
  }
  state.SetComplexityN(static_cast<std::int64_t>(w));
}
BENCHMARK(BM_LineEvalVsW)->RangeMultiplier(4)->Range(256, 16384)->Complexity(benchmark::oN);

void BM_LineEvalVsN(benchmark::State& state) {
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  core::LineParams p = core::LineParams::make(n, n / 4, 32, 1024);
  hash::LazyRandomOracle oracle(p.n, p.n, 3);
  util::Rng rng(4);
  core::LineInput input = core::LineInput::random(p, rng);
  core::LineFunction f(p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.evaluate(oracle, input));
  }
  state.SetComplexityN(static_cast<std::int64_t>(n));
}
BENCHMARK(BM_LineEvalVsN)->RangeMultiplier(2)->Range(64, 1024)->Complexity(benchmark::oN);

void BM_SimLineEvalVsW(benchmark::State& state) {
  const std::uint64_t w = static_cast<std::uint64_t>(state.range(0));
  core::LineParams p = core::LineParams::make(64, 16, 64, w);
  hash::LazyRandomOracle oracle(p.n, p.n, 5);
  util::Rng rng(6);
  core::LineInput input = core::LineInput::random(p, rng);
  core::SimLineFunction f(p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.evaluate(oracle, input));
  }
  state.SetComplexityN(static_cast<std::int64_t>(w));
}
BENCHMARK(BM_SimLineEvalVsW)->RangeMultiplier(4)->Range(256, 16384)->Complexity(benchmark::oN);

void print_meter_table() {
  std::cout << "\nmodel-level accounting (RamMeter; paper: time O(T*n), space O(S)):\n";
  util::Table t({"w=T", "S=uv_bits", "oracle_queries", "time_units", "time/(w*n)",
                 "peak_space_bits", "space/S"});
  for (std::uint64_t w : {256, 1024, 4096, 16384}) {
    core::LineParams p = core::LineParams::make(64, 16, 64, w);
    hash::LazyRandomOracle oracle(p.n, p.n, 7);
    util::Rng rng(8);
    core::LineInput input = core::LineInput::random(p, rng);
    ram::RamMeter meter(p.n);
    core::LineFunction(p).evaluate(oracle, input, &meter);
    const auto& c = meter.costs();
    t.add(w, p.input_bits(), c.oracle_queries, c.time_units,
          util::format_double(static_cast<double>(c.time_units) /
                                  (static_cast<double>(w) * static_cast<double>(p.n)),
                              3),
          c.peak_memory_bits,
          util::format_double(static_cast<double>(c.peak_memory_bits) /
                                  static_cast<double>(p.input_bits()),
                              3));
  }
  t.print(std::cout);
  std::cout << "interpretation: time/(w*n) and space/S are flat constants — the claimed\n"
               "O(T*n) time / O(S) space RAM upper bound, measured.\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::cout << "\n==================================================================\n"
               "E7 — Theorem 3.1 / A.1 RAM upper bound (time O(T*n), space O(S))\n"
               "==================================================================\n";
  print_meter_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
