// E10 — the s vs S threshold (Section 1's framing of best-possible
// hardness): rounds stay ~linear in w for every s < S and collapse to O(1)
// the moment one machine can hold the whole input.
#include "bench_common.hpp"
#include "core/line.hpp"
#include "strategies/full_memory.hpp"
#include "strategies/pointer_chasing.hpp"
#include "theory/bounds.hpp"
#include "util/rng.hpp"

using namespace mpch;

int main() {
  bench::header("E10", "The s >= S threshold (Introduction)",
                "s = S/c forces ~w(1-1/c) rounds; s >= S gives O(1) rounds — a sharp cliff");

  const std::uint64_t n = 64, u = 16, v = 64, m = 16, w = 2048;
  core::LineParams p = core::LineParams::make(n, u, v, w);

  util::Table t({"s/S", "strategy", "measured_rounds", "model"});
  for (std::uint64_t per_machine : {4, 8, 16, 32, 48, 56}) {
    double f = static_cast<double>(per_machine) / static_cast<double>(v);
    strategies::PointerChasingStrategy strat(
        p, strategies::OwnershipPlan::replicated(p, m, per_machine));
    auto oracle = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, 5000 + per_machine);
    util::Rng rng(6000 + per_machine);
    core::LineInput input = core::LineInput::random(p, rng);
    auto result = bench::run_strategy(strat, input, oracle, m);
    t.add(util::format_double(f, 3), "pointer-chasing", result.rounds_used,
          util::format_double(
              static_cast<double>(theory::pointer_chasing_expected_rounds(p, f)), 1));
  }
  {
    strategies::FullMemoryStrategy full(p, strategies::OwnershipPlan::round_robin(p, m));
    auto oracle = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, 5999);
    util::Rng rng(6999);
    core::LineInput input = core::LineInput::random(p, rng);
    auto result = bench::run_strategy(full, input, oracle, m, w + 1, 10);
    t.add(">= 1.0", "gather+solve", result.rounds_used, "2");
  }
  t.print(std::cout);

  std::cout << "\ninterpretation: rounds track w(1-f) all the way up the memory axis and\n"
               "then fall off a cliff to 2 at s >= S — hardness is a property of the\n"
               "*local* memory bound, exactly as Theorem 3.1 states (it holds even when\n"
               "total memory m*s >> S).\n";
  return 0;
}
