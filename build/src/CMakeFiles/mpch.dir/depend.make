# Empty dependencies file for mpch.
# This may be replaced when dependencies are built.
