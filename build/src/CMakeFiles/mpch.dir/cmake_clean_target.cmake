file(REMOVE_RECURSE
  "libmpch.a"
)
