
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compress/accounting.cpp" "src/CMakeFiles/mpch.dir/compress/accounting.cpp.o" "gcc" "src/CMakeFiles/mpch.dir/compress/accounting.cpp.o.d"
  "/root/repo/src/compress/line_codec.cpp" "src/CMakeFiles/mpch.dir/compress/line_codec.cpp.o" "gcc" "src/CMakeFiles/mpch.dir/compress/line_codec.cpp.o.d"
  "/root/repo/src/compress/simline_codec.cpp" "src/CMakeFiles/mpch.dir/compress/simline_codec.cpp.o" "gcc" "src/CMakeFiles/mpch.dir/compress/simline_codec.cpp.o.d"
  "/root/repo/src/core/codec.cpp" "src/CMakeFiles/mpch.dir/core/codec.cpp.o" "gcc" "src/CMakeFiles/mpch.dir/core/codec.cpp.o.d"
  "/root/repo/src/core/input.cpp" "src/CMakeFiles/mpch.dir/core/input.cpp.o" "gcc" "src/CMakeFiles/mpch.dir/core/input.cpp.o.d"
  "/root/repo/src/core/line.cpp" "src/CMakeFiles/mpch.dir/core/line.cpp.o" "gcc" "src/CMakeFiles/mpch.dir/core/line.cpp.o.d"
  "/root/repo/src/core/params.cpp" "src/CMakeFiles/mpch.dir/core/params.cpp.o" "gcc" "src/CMakeFiles/mpch.dir/core/params.cpp.o.d"
  "/root/repo/src/core/simline.cpp" "src/CMakeFiles/mpch.dir/core/simline.cpp.o" "gcc" "src/CMakeFiles/mpch.dir/core/simline.cpp.o.d"
  "/root/repo/src/hash/blake2s.cpp" "src/CMakeFiles/mpch.dir/hash/blake2s.cpp.o" "gcc" "src/CMakeFiles/mpch.dir/hash/blake2s.cpp.o.d"
  "/root/repo/src/hash/oracle_transcript.cpp" "src/CMakeFiles/mpch.dir/hash/oracle_transcript.cpp.o" "gcc" "src/CMakeFiles/mpch.dir/hash/oracle_transcript.cpp.o.d"
  "/root/repo/src/hash/random_oracle.cpp" "src/CMakeFiles/mpch.dir/hash/random_oracle.cpp.o" "gcc" "src/CMakeFiles/mpch.dir/hash/random_oracle.cpp.o.d"
  "/root/repo/src/hash/sha256.cpp" "src/CMakeFiles/mpch.dir/hash/sha256.cpp.o" "gcc" "src/CMakeFiles/mpch.dir/hash/sha256.cpp.o.d"
  "/root/repo/src/mhf/romix.cpp" "src/CMakeFiles/mpch.dir/mhf/romix.cpp.o" "gcc" "src/CMakeFiles/mpch.dir/mhf/romix.cpp.o.d"
  "/root/repo/src/mpc/fanin_circuit.cpp" "src/CMakeFiles/mpch.dir/mpc/fanin_circuit.cpp.o" "gcc" "src/CMakeFiles/mpch.dir/mpc/fanin_circuit.cpp.o.d"
  "/root/repo/src/mpc/simulation.cpp" "src/CMakeFiles/mpch.dir/mpc/simulation.cpp.o" "gcc" "src/CMakeFiles/mpch.dir/mpc/simulation.cpp.o.d"
  "/root/repo/src/mpclib/connectivity.cpp" "src/CMakeFiles/mpch.dir/mpclib/connectivity.cpp.o" "gcc" "src/CMakeFiles/mpch.dir/mpclib/connectivity.cpp.o.d"
  "/root/repo/src/mpclib/matching.cpp" "src/CMakeFiles/mpch.dir/mpclib/matching.cpp.o" "gcc" "src/CMakeFiles/mpch.dir/mpclib/matching.cpp.o.d"
  "/root/repo/src/mpclib/mis.cpp" "src/CMakeFiles/mpch.dir/mpclib/mis.cpp.o" "gcc" "src/CMakeFiles/mpch.dir/mpclib/mis.cpp.o.d"
  "/root/repo/src/mpclib/primitives.cpp" "src/CMakeFiles/mpch.dir/mpclib/primitives.cpp.o" "gcc" "src/CMakeFiles/mpch.dir/mpclib/primitives.cpp.o.d"
  "/root/repo/src/mpclib/sort.cpp" "src/CMakeFiles/mpch.dir/mpclib/sort.cpp.o" "gcc" "src/CMakeFiles/mpch.dir/mpclib/sort.cpp.o.d"
  "/root/repo/src/ram/machine.cpp" "src/CMakeFiles/mpch.dir/ram/machine.cpp.o" "gcc" "src/CMakeFiles/mpch.dir/ram/machine.cpp.o.d"
  "/root/repo/src/stats/estimator.cpp" "src/CMakeFiles/mpch.dir/stats/estimator.cpp.o" "gcc" "src/CMakeFiles/mpch.dir/stats/estimator.cpp.o.d"
  "/root/repo/src/stats/trials.cpp" "src/CMakeFiles/mpch.dir/stats/trials.cpp.o" "gcc" "src/CMakeFiles/mpch.dir/stats/trials.cpp.o.d"
  "/root/repo/src/strategies/batch_pointer_chasing.cpp" "src/CMakeFiles/mpch.dir/strategies/batch_pointer_chasing.cpp.o" "gcc" "src/CMakeFiles/mpch.dir/strategies/batch_pointer_chasing.cpp.o.d"
  "/root/repo/src/strategies/block_store.cpp" "src/CMakeFiles/mpch.dir/strategies/block_store.cpp.o" "gcc" "src/CMakeFiles/mpch.dir/strategies/block_store.cpp.o.d"
  "/root/repo/src/strategies/colluding.cpp" "src/CMakeFiles/mpch.dir/strategies/colluding.cpp.o" "gcc" "src/CMakeFiles/mpch.dir/strategies/colluding.cpp.o.d"
  "/root/repo/src/strategies/dictionary.cpp" "src/CMakeFiles/mpch.dir/strategies/dictionary.cpp.o" "gcc" "src/CMakeFiles/mpch.dir/strategies/dictionary.cpp.o.d"
  "/root/repo/src/strategies/full_memory.cpp" "src/CMakeFiles/mpch.dir/strategies/full_memory.cpp.o" "gcc" "src/CMakeFiles/mpch.dir/strategies/full_memory.cpp.o.d"
  "/root/repo/src/strategies/guess_ahead.cpp" "src/CMakeFiles/mpch.dir/strategies/guess_ahead.cpp.o" "gcc" "src/CMakeFiles/mpch.dir/strategies/guess_ahead.cpp.o.d"
  "/root/repo/src/strategies/pipelined_simline.cpp" "src/CMakeFiles/mpch.dir/strategies/pipelined_simline.cpp.o" "gcc" "src/CMakeFiles/mpch.dir/strategies/pipelined_simline.cpp.o.d"
  "/root/repo/src/strategies/pointer_chasing.cpp" "src/CMakeFiles/mpch.dir/strategies/pointer_chasing.cpp.o" "gcc" "src/CMakeFiles/mpch.dir/strategies/pointer_chasing.cpp.o.d"
  "/root/repo/src/strategies/ram_emulation.cpp" "src/CMakeFiles/mpch.dir/strategies/ram_emulation.cpp.o" "gcc" "src/CMakeFiles/mpch.dir/strategies/ram_emulation.cpp.o.d"
  "/root/repo/src/strategies/speculative.cpp" "src/CMakeFiles/mpch.dir/strategies/speculative.cpp.o" "gcc" "src/CMakeFiles/mpch.dir/strategies/speculative.cpp.o.d"
  "/root/repo/src/theory/bounds.cpp" "src/CMakeFiles/mpch.dir/theory/bounds.cpp.o" "gcc" "src/CMakeFiles/mpch.dir/theory/bounds.cpp.o.d"
  "/root/repo/src/util/bitstring.cpp" "src/CMakeFiles/mpch.dir/util/bitstring.cpp.o" "gcc" "src/CMakeFiles/mpch.dir/util/bitstring.cpp.o.d"
  "/root/repo/src/util/cli.cpp" "src/CMakeFiles/mpch.dir/util/cli.cpp.o" "gcc" "src/CMakeFiles/mpch.dir/util/cli.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/CMakeFiles/mpch.dir/util/table.cpp.o" "gcc" "src/CMakeFiles/mpch.dir/util/table.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "src/CMakeFiles/mpch.dir/util/thread_pool.cpp.o" "gcc" "src/CMakeFiles/mpch.dir/util/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
