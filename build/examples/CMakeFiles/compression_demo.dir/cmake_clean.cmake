file(REMOVE_RECURSE
  "CMakeFiles/compression_demo.dir/compression_demo.cpp.o"
  "CMakeFiles/compression_demo.dir/compression_demo.cpp.o.d"
  "compression_demo"
  "compression_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compression_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
