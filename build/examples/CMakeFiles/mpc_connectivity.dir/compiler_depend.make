# Empty compiler generated dependencies file for mpc_connectivity.
# This may be replaced when dependencies are built.
