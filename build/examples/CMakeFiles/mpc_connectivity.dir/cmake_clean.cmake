file(REMOVE_RECURSE
  "CMakeFiles/mpc_connectivity.dir/mpc_connectivity.cpp.o"
  "CMakeFiles/mpc_connectivity.dir/mpc_connectivity.cpp.o.d"
  "mpc_connectivity"
  "mpc_connectivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpc_connectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
