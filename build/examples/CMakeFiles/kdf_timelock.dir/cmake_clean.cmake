file(REMOVE_RECURSE
  "CMakeFiles/kdf_timelock.dir/kdf_timelock.cpp.o"
  "CMakeFiles/kdf_timelock.dir/kdf_timelock.cpp.o.d"
  "kdf_timelock"
  "kdf_timelock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kdf_timelock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
