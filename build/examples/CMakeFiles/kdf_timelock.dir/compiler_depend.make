# Empty compiler generated dependencies file for kdf_timelock.
# This may be replaced when dependencies are built.
