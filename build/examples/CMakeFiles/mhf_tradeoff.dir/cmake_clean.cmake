file(REMOVE_RECURSE
  "CMakeFiles/mhf_tradeoff.dir/mhf_tradeoff.cpp.o"
  "CMakeFiles/mhf_tradeoff.dir/mhf_tradeoff.cpp.o.d"
  "mhf_tradeoff"
  "mhf_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhf_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
