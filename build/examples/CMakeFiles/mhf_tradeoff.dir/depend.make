# Empty dependencies file for mhf_tradeoff.
# This may be replaced when dependencies are built.
