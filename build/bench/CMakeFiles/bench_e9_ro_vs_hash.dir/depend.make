# Empty dependencies file for bench_e9_ro_vs_hash.
# This may be replaced when dependencies are built.
