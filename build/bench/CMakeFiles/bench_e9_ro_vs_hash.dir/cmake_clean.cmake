file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_ro_vs_hash.dir/bench_e9_ro_vs_hash.cpp.o"
  "CMakeFiles/bench_e9_ro_vs_hash.dir/bench_e9_ro_vs_hash.cpp.o.d"
  "bench_e9_ro_vs_hash"
  "bench_e9_ro_vs_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_ro_vs_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
