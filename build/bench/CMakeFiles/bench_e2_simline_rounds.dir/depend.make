# Empty dependencies file for bench_e2_simline_rounds.
# This may be replaced when dependencies are built.
