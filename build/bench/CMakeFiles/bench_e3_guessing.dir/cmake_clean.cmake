file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_guessing.dir/bench_e3_guessing.cpp.o"
  "CMakeFiles/bench_e3_guessing.dir/bench_e3_guessing.cpp.o.d"
  "bench_e3_guessing"
  "bench_e3_guessing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_guessing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
