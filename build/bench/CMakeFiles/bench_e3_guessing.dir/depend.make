# Empty dependencies file for bench_e3_guessing.
# This may be replaced when dependencies are built.
