file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_line_rounds.dir/bench_e1_line_rounds.cpp.o"
  "CMakeFiles/bench_e1_line_rounds.dir/bench_e1_line_rounds.cpp.o.d"
  "bench_e1_line_rounds"
  "bench_e1_line_rounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_line_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
