# Empty compiler generated dependencies file for bench_e1_line_rounds.
# This may be replaced when dependencies are built.
