# Empty compiler generated dependencies file for bench_e7_ram_upper.
# This may be replaced when dependencies are built.
