# Empty dependencies file for bench_e4_bset.
# This may be replaced when dependencies are built.
