file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_bset.dir/bench_e4_bset.cpp.o"
  "CMakeFiles/bench_e4_bset.dir/bench_e4_bset.cpp.o.d"
  "bench_e4_bset"
  "bench_e4_bset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_bset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
