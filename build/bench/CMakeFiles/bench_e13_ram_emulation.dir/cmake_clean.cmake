file(REMOVE_RECURSE
  "CMakeFiles/bench_e13_ram_emulation.dir/bench_e13_ram_emulation.cpp.o"
  "CMakeFiles/bench_e13_ram_emulation.dir/bench_e13_ram_emulation.cpp.o.d"
  "bench_e13_ram_emulation"
  "bench_e13_ram_emulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_ram_emulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
