# Empty dependencies file for bench_e13_ram_emulation.
# This may be replaced when dependencies are built.
