file(REMOVE_RECURSE
  "CMakeFiles/bench_e14_mhf.dir/bench_e14_mhf.cpp.o"
  "CMakeFiles/bench_e14_mhf.dir/bench_e14_mhf.cpp.o.d"
  "bench_e14_mhf"
  "bench_e14_mhf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e14_mhf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
