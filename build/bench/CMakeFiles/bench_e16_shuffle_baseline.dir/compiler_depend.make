# Empty compiler generated dependencies file for bench_e16_shuffle_baseline.
# This may be replaced when dependencies are built.
