file(REMOVE_RECURSE
  "CMakeFiles/bench_e16_shuffle_baseline.dir/bench_e16_shuffle_baseline.cpp.o"
  "CMakeFiles/bench_e16_shuffle_baseline.dir/bench_e16_shuffle_baseline.cpp.o.d"
  "bench_e16_shuffle_baseline"
  "bench_e16_shuffle_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e16_shuffle_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
