file(REMOVE_RECURSE
  "CMakeFiles/bench_e15_entropy.dir/bench_e15_entropy.cpp.o"
  "CMakeFiles/bench_e15_entropy.dir/bench_e15_entropy.cpp.o.d"
  "bench_e15_entropy"
  "bench_e15_entropy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e15_entropy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
