file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_param_tables.dir/bench_e6_param_tables.cpp.o"
  "CMakeFiles/bench_e6_param_tables.dir/bench_e6_param_tables.cpp.o.d"
  "bench_e6_param_tables"
  "bench_e6_param_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_param_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
