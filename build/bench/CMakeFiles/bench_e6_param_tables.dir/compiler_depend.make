# Empty compiler generated dependencies file for bench_e6_param_tables.
# This may be replaced when dependencies are built.
