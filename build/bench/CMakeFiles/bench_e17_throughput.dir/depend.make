# Empty dependencies file for bench_e17_throughput.
# This may be replaced when dependencies are built.
