file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_speculative.dir/bench_e8_speculative.cpp.o"
  "CMakeFiles/bench_e8_speculative.dir/bench_e8_speculative.cpp.o.d"
  "bench_e8_speculative"
  "bench_e8_speculative.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_speculative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
