# Empty dependencies file for bench_e8_speculative.
# This may be replaced when dependencies are built.
