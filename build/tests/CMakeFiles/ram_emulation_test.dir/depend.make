# Empty dependencies file for ram_emulation_test.
# This may be replaced when dependencies are built.
