file(REMOVE_RECURSE
  "CMakeFiles/ram_emulation_test.dir/ram_emulation_test.cpp.o"
  "CMakeFiles/ram_emulation_test.dir/ram_emulation_test.cpp.o.d"
  "ram_emulation_test"
  "ram_emulation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ram_emulation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
