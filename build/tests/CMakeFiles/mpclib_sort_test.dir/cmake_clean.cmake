file(REMOVE_RECURSE
  "CMakeFiles/mpclib_sort_test.dir/mpclib_sort_test.cpp.o"
  "CMakeFiles/mpclib_sort_test.dir/mpclib_sort_test.cpp.o.d"
  "mpclib_sort_test"
  "mpclib_sort_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpclib_sort_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
