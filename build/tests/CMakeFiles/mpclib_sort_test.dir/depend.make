# Empty dependencies file for mpclib_sort_test.
# This may be replaced when dependencies are built.
