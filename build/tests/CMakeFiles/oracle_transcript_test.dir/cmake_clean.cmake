file(REMOVE_RECURSE
  "CMakeFiles/oracle_transcript_test.dir/oracle_transcript_test.cpp.o"
  "CMakeFiles/oracle_transcript_test.dir/oracle_transcript_test.cpp.o.d"
  "oracle_transcript_test"
  "oracle_transcript_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oracle_transcript_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
