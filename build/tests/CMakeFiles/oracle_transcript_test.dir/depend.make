# Empty dependencies file for oracle_transcript_test.
# This may be replaced when dependencies are built.
