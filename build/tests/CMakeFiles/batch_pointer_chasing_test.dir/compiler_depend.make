# Empty compiler generated dependencies file for batch_pointer_chasing_test.
# This may be replaced when dependencies are built.
