file(REMOVE_RECURSE
  "CMakeFiles/batch_pointer_chasing_test.dir/batch_pointer_chasing_test.cpp.o"
  "CMakeFiles/batch_pointer_chasing_test.dir/batch_pointer_chasing_test.cpp.o.d"
  "batch_pointer_chasing_test"
  "batch_pointer_chasing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_pointer_chasing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
