file(REMOVE_RECURSE
  "CMakeFiles/full_memory_test.dir/full_memory_test.cpp.o"
  "CMakeFiles/full_memory_test.dir/full_memory_test.cpp.o.d"
  "full_memory_test"
  "full_memory_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
