# Empty compiler generated dependencies file for full_memory_test.
# This may be replaced when dependencies are built.
