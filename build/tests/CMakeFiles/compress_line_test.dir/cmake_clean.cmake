file(REMOVE_RECURSE
  "CMakeFiles/compress_line_test.dir/compress_line_test.cpp.o"
  "CMakeFiles/compress_line_test.dir/compress_line_test.cpp.o.d"
  "compress_line_test"
  "compress_line_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compress_line_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
