# Empty dependencies file for compress_line_test.
# This may be replaced when dependencies are built.
