# Empty compiler generated dependencies file for random_oracle_test.
# This may be replaced when dependencies are built.
