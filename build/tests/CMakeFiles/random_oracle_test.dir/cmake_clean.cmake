file(REMOVE_RECURSE
  "CMakeFiles/random_oracle_test.dir/random_oracle_test.cpp.o"
  "CMakeFiles/random_oracle_test.dir/random_oracle_test.cpp.o.d"
  "random_oracle_test"
  "random_oracle_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_oracle_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
