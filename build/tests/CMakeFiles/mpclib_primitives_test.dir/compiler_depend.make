# Empty compiler generated dependencies file for mpclib_primitives_test.
# This may be replaced when dependencies are built.
