file(REMOVE_RECURSE
  "CMakeFiles/mpclib_primitives_test.dir/mpclib_primitives_test.cpp.o"
  "CMakeFiles/mpclib_primitives_test.dir/mpclib_primitives_test.cpp.o.d"
  "mpclib_primitives_test"
  "mpclib_primitives_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpclib_primitives_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
