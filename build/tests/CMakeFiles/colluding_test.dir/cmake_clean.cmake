file(REMOVE_RECURSE
  "CMakeFiles/colluding_test.dir/colluding_test.cpp.o"
  "CMakeFiles/colluding_test.dir/colluding_test.cpp.o.d"
  "colluding_test"
  "colluding_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colluding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
