# Empty dependencies file for colluding_test.
# This may be replaced when dependencies are built.
