file(REMOVE_RECURSE
  "CMakeFiles/guess_ahead_test.dir/guess_ahead_test.cpp.o"
  "CMakeFiles/guess_ahead_test.dir/guess_ahead_test.cpp.o.d"
  "guess_ahead_test"
  "guess_ahead_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guess_ahead_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
