# Empty compiler generated dependencies file for guess_ahead_test.
# This may be replaced when dependencies are built.
