file(REMOVE_RECURSE
  "CMakeFiles/pointer_chasing_test.dir/pointer_chasing_test.cpp.o"
  "CMakeFiles/pointer_chasing_test.dir/pointer_chasing_test.cpp.o.d"
  "pointer_chasing_test"
  "pointer_chasing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pointer_chasing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
