# Empty dependencies file for pointer_chasing_test.
# This may be replaced when dependencies are built.
