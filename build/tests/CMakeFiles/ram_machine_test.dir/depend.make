# Empty dependencies file for ram_machine_test.
# This may be replaced when dependencies are built.
