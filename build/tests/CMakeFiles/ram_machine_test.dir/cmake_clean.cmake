file(REMOVE_RECURSE
  "CMakeFiles/ram_machine_test.dir/ram_machine_test.cpp.o"
  "CMakeFiles/ram_machine_test.dir/ram_machine_test.cpp.o.d"
  "ram_machine_test"
  "ram_machine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ram_machine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
