file(REMOVE_RECURSE
  "CMakeFiles/parallel_simulation_test.dir/parallel_simulation_test.cpp.o"
  "CMakeFiles/parallel_simulation_test.dir/parallel_simulation_test.cpp.o.d"
  "parallel_simulation_test"
  "parallel_simulation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_simulation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
