# Empty dependencies file for parallel_simulation_test.
# This may be replaced when dependencies are built.
