file(REMOVE_RECURSE
  "CMakeFiles/fanin_circuit_test.dir/fanin_circuit_test.cpp.o"
  "CMakeFiles/fanin_circuit_test.dir/fanin_circuit_test.cpp.o.d"
  "fanin_circuit_test"
  "fanin_circuit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fanin_circuit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
