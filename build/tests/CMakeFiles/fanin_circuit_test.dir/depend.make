# Empty dependencies file for fanin_circuit_test.
# This may be replaced when dependencies are built.
