file(REMOVE_RECURSE
  "CMakeFiles/compress_simline_test.dir/compress_simline_test.cpp.o"
  "CMakeFiles/compress_simline_test.dir/compress_simline_test.cpp.o.d"
  "compress_simline_test"
  "compress_simline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compress_simline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
