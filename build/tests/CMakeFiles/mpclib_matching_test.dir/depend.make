# Empty dependencies file for mpclib_matching_test.
# This may be replaced when dependencies are built.
