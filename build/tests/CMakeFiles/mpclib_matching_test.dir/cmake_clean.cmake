file(REMOVE_RECURSE
  "CMakeFiles/mpclib_matching_test.dir/mpclib_matching_test.cpp.o"
  "CMakeFiles/mpclib_matching_test.dir/mpclib_matching_test.cpp.o.d"
  "mpclib_matching_test"
  "mpclib_matching_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpclib_matching_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
