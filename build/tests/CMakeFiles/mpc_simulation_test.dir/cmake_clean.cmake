file(REMOVE_RECURSE
  "CMakeFiles/mpc_simulation_test.dir/mpc_simulation_test.cpp.o"
  "CMakeFiles/mpc_simulation_test.dir/mpc_simulation_test.cpp.o.d"
  "mpc_simulation_test"
  "mpc_simulation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpc_simulation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
