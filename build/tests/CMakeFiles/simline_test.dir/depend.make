# Empty dependencies file for simline_test.
# This may be replaced when dependencies are built.
