file(REMOVE_RECURSE
  "CMakeFiles/simline_test.dir/simline_test.cpp.o"
  "CMakeFiles/simline_test.dir/simline_test.cpp.o.d"
  "simline_test"
  "simline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
