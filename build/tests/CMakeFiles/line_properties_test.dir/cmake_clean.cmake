file(REMOVE_RECURSE
  "CMakeFiles/line_properties_test.dir/line_properties_test.cpp.o"
  "CMakeFiles/line_properties_test.dir/line_properties_test.cpp.o.d"
  "line_properties_test"
  "line_properties_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/line_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
