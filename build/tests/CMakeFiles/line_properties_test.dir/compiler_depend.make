# Empty compiler generated dependencies file for line_properties_test.
# This may be replaced when dependencies are built.
