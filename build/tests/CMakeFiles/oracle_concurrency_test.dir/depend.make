# Empty dependencies file for oracle_concurrency_test.
# This may be replaced when dependencies are built.
