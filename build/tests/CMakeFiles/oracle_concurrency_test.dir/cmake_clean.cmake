file(REMOVE_RECURSE
  "CMakeFiles/oracle_concurrency_test.dir/oracle_concurrency_test.cpp.o"
  "CMakeFiles/oracle_concurrency_test.dir/oracle_concurrency_test.cpp.o.d"
  "oracle_concurrency_test"
  "oracle_concurrency_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oracle_concurrency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
