file(REMOVE_RECURSE
  "CMakeFiles/mpclib_connectivity_test.dir/mpclib_connectivity_test.cpp.o"
  "CMakeFiles/mpclib_connectivity_test.dir/mpclib_connectivity_test.cpp.o.d"
  "mpclib_connectivity_test"
  "mpclib_connectivity_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpclib_connectivity_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
