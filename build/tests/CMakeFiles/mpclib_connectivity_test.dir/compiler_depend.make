# Empty compiler generated dependencies file for mpclib_connectivity_test.
# This may be replaced when dependencies are built.
