file(REMOVE_RECURSE
  "CMakeFiles/blake2s_test.dir/blake2s_test.cpp.o"
  "CMakeFiles/blake2s_test.dir/blake2s_test.cpp.o.d"
  "blake2s_test"
  "blake2s_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/blake2s_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
