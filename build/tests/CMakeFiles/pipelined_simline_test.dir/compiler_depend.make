# Empty compiler generated dependencies file for pipelined_simline_test.
# This may be replaced when dependencies are built.
