file(REMOVE_RECURSE
  "CMakeFiles/pipelined_simline_test.dir/pipelined_simline_test.cpp.o"
  "CMakeFiles/pipelined_simline_test.dir/pipelined_simline_test.cpp.o.d"
  "pipelined_simline_test"
  "pipelined_simline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipelined_simline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
