# Empty compiler generated dependencies file for mpclib_mis_test.
# This may be replaced when dependencies are built.
