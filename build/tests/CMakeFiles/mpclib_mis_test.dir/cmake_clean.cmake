file(REMOVE_RECURSE
  "CMakeFiles/mpclib_mis_test.dir/mpclib_mis_test.cpp.o"
  "CMakeFiles/mpclib_mis_test.dir/mpclib_mis_test.cpp.o.d"
  "mpclib_mis_test"
  "mpclib_mis_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpclib_mis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
