# Empty compiler generated dependencies file for mhf_romix_test.
# This may be replaced when dependencies are built.
