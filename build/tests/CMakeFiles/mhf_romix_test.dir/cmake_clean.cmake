file(REMOVE_RECURSE
  "CMakeFiles/mhf_romix_test.dir/mhf_romix_test.cpp.o"
  "CMakeFiles/mhf_romix_test.dir/mhf_romix_test.cpp.o.d"
  "mhf_romix_test"
  "mhf_romix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mhf_romix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
