file(REMOVE_RECURSE
  "CMakeFiles/ram_meter_test.dir/ram_meter_test.cpp.o"
  "CMakeFiles/ram_meter_test.dir/ram_meter_test.cpp.o.d"
  "ram_meter_test"
  "ram_meter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ram_meter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
