# Empty dependencies file for ram_meter_test.
# This may be replaced when dependencies are built.
