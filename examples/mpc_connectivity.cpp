// mpc_connectivity — the MPC simulator as a general-purpose substrate:
// connected components of a graph, distributed across machines.
//
//   ./mpc_connectivity [--vertices 64] [--edges 80] [--machines 8] [--seed 7]
//
// This is the workload family the MPC literature the paper cites is built
// around. Edges are scattered across machines; label propagation converges
// in O(diameter) propagation steps, each costing 3 MPC rounds.
#include <algorithm>
#include <iostream>
#include <map>

#include "mpc/simulation.hpp"
#include "mpclib/connectivity.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace mpch;

int main(int argc, char** argv) {
  util::CliArgs args(argc, argv);
  const std::uint64_t nv = args.get_u64("vertices", 64);
  const std::uint64_t ne = args.get_u64("edges", 80);
  const std::uint64_t m = args.get_u64("machines", 8);
  const std::uint64_t seed = args.get_u64("seed", 7);

  util::Rng rng(seed);
  std::vector<mpclib::Edge> edges;
  edges.reserve(ne);
  for (std::uint64_t i = 0; i < ne; ++i) {
    edges.push_back({rng.next_below(nv), rng.next_below(nv)});
  }

  mpc::MpcConfig c;
  c.machines = m;
  c.local_memory_bits = 1 << 20;
  c.query_budget = 1;
  c.max_rounds = 10000;
  mpc::MpcSimulation sim(c, nullptr);
  mpclib::LabelPropagationCC algo(m, nv);
  auto result = sim.run(algo, mpclib::LabelPropagationCC::make_initial_memory(m, nv, edges));
  if (!result.completed) {
    std::cerr << "did not converge within " << c.max_rounds << " rounds\n";
    return 1;
  }

  auto labels = mpclib::LabelPropagationCC::parse_labels(result.output, nv);
  std::map<std::uint64_t, std::uint64_t> sizes;
  for (std::uint64_t v = 0; v < nv; ++v) ++sizes[labels[v]];

  std::cout << "graph: " << nv << " vertices, " << ne << " edges, " << m << " machines\n"
            << "rounds: " << result.rounds_used
            << ", communication: " << result.trace.total_communicated_bits() << " bits\n"
            << "components: " << sizes.size() << "\n\n";

  util::Table t({"component_root", "size"});
  std::vector<std::pair<std::uint64_t, std::uint64_t>> sorted(sizes.begin(), sizes.end());
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::size_t shown = 0;
  for (const auto& [root, size] : sorted) {
    t.add(root, size);
    if (++shown == 10) break;
  }
  t.print(std::cout);
  if (sorted.size() > 10) std::cout << "(showing 10 largest of " << sorted.size() << ")\n";

  for (const auto& unused : args.unused()) {
    std::cerr << "warning: unused flag --" << unused << "\n";
  }
  return 0;
}
