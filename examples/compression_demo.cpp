// compression_demo — the proof's Enc/Dec scheme, step by step.
//
//   ./compression_demo [--alpha 4] [--seed 1]
//
// Walks through Claim A.4's encoding of a (random oracle, input) pair: a
// machine whose round-k queries cover `alpha` correct SimLine entries lets
// the encoder drop those alpha blocks from the message and recover them from
// the query stream during decoding. The demo prints the byte accounting and
// verifies the bit-exact round trip — the entire lower-bound argument in one
// screen of output.
#include <iostream>

#include "compress/simline_codec.hpp"
#include "core/simline.hpp"
#include "theory/bounds.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace mpch;

int main(int argc, char** argv) {
  util::CliArgs args(argc, argv);
  const std::uint64_t alpha = std::min<std::uint64_t>(args.get_u64("alpha", 4), 8);
  const std::uint64_t seed = args.get_u64("seed", 1);

  // Tiny parameters so the oracle table is fully materialisable.
  core::LineParams p = core::LineParams::make(18, 6, 8, 16);
  std::cout << "SimLine with " << p.to_string() << "\n"
            << "oracle table: 2^" << p.n << " entries x " << p.n << " bits = "
            << (p.n << p.n) << " bits\n"
            << "input X: " << p.v << " blocks x " << p.u << " bits = " << p.input_bits()
            << " bits\n\n";

  util::Rng rng(seed);
  hash::ExhaustiveRandomOracle oracle(p.n, p.n, rng);
  core::LineInput input = core::LineInput::random(p, rng);
  core::SimLineFunction fn(p);
  core::SimLineChain chain = fn.evaluate_chain(oracle, input);

  // The machine: holds the chain frontier plus `alpha` scheduled blocks.
  std::vector<std::pair<std::uint64_t, util::BitString>> blocks;
  std::vector<util::BitString> entries;
  std::vector<std::uint64_t> target_blocks;
  for (std::uint64_t i = 1; i <= alpha; ++i) {
    std::uint64_t b = fn.scheduled_block(i);
    blocks.emplace_back(b, input.block(b));
    entries.push_back(chain.nodes[i - 1].query);
    target_blocks.push_back(b);
  }
  util::BitString memory =
      compress::SimLineWindowProgram::make_memory(p, 1, chain.nodes[0].r, blocks);
  std::cout << "machine state M: " << memory.size() << " bits (frontier + " << alpha
            << " blocks)\n";

  compress::SimLineCompressor comp(p, 32);
  compress::SimLineWindowProgram program(p);
  auto enc = comp.encode(oracle, input, memory, program, entries, target_blocks);

  std::cout << "running A2(M): covered alpha = " << enc.covered << " correct entries\n\n";
  util::Table t({"component", "bits", "note"});
  t.add("oracle table", enc.breakdown.oracle_bits, "the n*2^n term (both sides of the bound)");
  t.add("machine state M", enc.breakdown.memory_bits, "s bits");
  t.add("pointer records P", enc.breakdown.pointer_bits,
        "alpha x (log q + log v) = " + std::to_string(enc.covered) + " x " +
            std::to_string(comp.pointer_field_bits()));
  t.add("residual X'", enc.breakdown.residual_bits,
        "(v - alpha) x u uncovered blocks, verbatim");
  t.add("framing overhead", enc.breakdown.overhead_bits, "length/count fields (implementation)");
  t.add("TOTAL", enc.breakdown.total(), "");
  t.print(std::cout);

  std::int64_t savings = compress::savings_bits(p, enc.breakdown);
  std::cout << "\nvs trivial encoding (oracle + M + all of X): "
            << (savings >= 0 ? "saves " : "costs ") << std::abs(savings) << " bits\n"
            << "per covered block: trades u = " << p.u << " bits of X for "
            << comp.pointer_field_bits() << " pointer bits\n";

  auto dec = comp.decode(enc.message, program);
  bool ok = dec.input_bits == input.bits();
  std::cout << "\ndecode: re-ran A2(M) against the stored oracle, pulled " << enc.covered
            << " blocks out of its query stream\n"
            << "round-trip exact: " << (ok ? "YES" : "NO -- BUG") << "\n\n";

  std::cout << "why this is a lower bound: if an s-bit machine could cover alpha blocks\n"
               "with alpha(u - log q - log v) > s + 1, this encoding would compress the\n"
               "uniformly random pair (RO, X) below its entropy (Claim A.5) — impossible.\n"
               "Hence |Q ∩ C| <= s/(u - log q - log v) + 1 per round: Lemma A.3.\n";

  for (const auto& unused : args.unused()) {
    std::cerr << "warning: unused flag --" << unused << "\n";
  }
  return ok ? 0 : 1;
}
