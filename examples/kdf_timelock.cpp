// kdf_timelock — Line^h as a parallelization-resistant key-derivation /
// time-lock function.
//
//   ./kdf_timelock --password hunter2 [--difficulty 50000] [--salt 42]
//
// The paper's related-work section ties Line^RO to memory-hard functions and
// time-lock puzzles ([4, 5, 52]): the chain's sequential oracle dependency
// means an attacker with thousands of machines can brute-force candidate
// passwords no faster per-candidate than a laptop. This example instantiates
// the oracle with SHA-256 (the random-oracle-methodology step), derives the
// input blocks from the password, and outputs the final chain value as the
// key. It also demonstrates the asymmetry experimentally: doubling the
// difficulty doubles the wall-clock derivation time.
#include <chrono>
#include <iostream>

#include "core/line.hpp"
#include "hash/random_oracle.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace mpch;

namespace {

/// Expand (password, salt) into the uv-bit Line input via SHA-256.
core::LineInput derive_input(const core::LineParams& p, const std::string& password,
                             std::uint64_t salt) {
  std::vector<std::uint8_t> prefix;
  prefix.push_back('K');
  prefix.push_back('D');
  prefix.push_back('F');
  for (int i = 0; i < 8; ++i) prefix.push_back(static_cast<std::uint8_t>(salt >> (i * 8)));
  prefix.insert(prefix.end(), password.begin(), password.end());
  return core::LineInput(p, hash::sha256_expand(prefix, p.input_bits()));
}

}  // namespace

int main(int argc, char** argv) {
  util::CliArgs args(argc, argv);
  const std::string password = args.get_string("password", "correct horse battery staple");
  const std::uint64_t difficulty = args.get_u64("difficulty", 50000);  // chain length T
  const std::uint64_t salt = args.get_u64("salt", 42);

  const std::uint64_t n = 256, u = 64, v = 64;
  core::LineParams p = core::LineParams::make(n, u, v, difficulty);
  hash::Sha256Oracle oracle(p.n, p.n);  // public hash: anyone can re-derive
  core::LineInput input = derive_input(p, password, salt);

  auto start = std::chrono::steady_clock::now();
  util::BitString key = core::LineFunction(p).evaluate(oracle, input);
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();

  std::cout << "derived key : " << key.to_hex_string() << "\n"
            << "difficulty  : " << difficulty << " sequential SHA-256 chain steps\n"
            << "derivation  : " << elapsed << " ms\n\n";

  std::cout << "sequentiality check (time must scale linearly in difficulty — no\n"
               "parallel shortcut exists by Theorem 3.1):\n";
  util::Table t({"difficulty_T", "derive_ms", "ms_per_1k_steps"});
  for (std::uint64_t d : {difficulty / 4, difficulty / 2, difficulty}) {
    if (d == 0) continue;
    core::LineParams pd = core::LineParams::make(n, u, v, d);
    auto t0 = std::chrono::steady_clock::now();
    core::LineFunction(pd).evaluate(oracle, derive_input(pd, password, salt));
    double ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
                    .count();
    t.add(d, util::format_double(ms, 1), util::format_double(ms * 1000.0 / d, 2));
  }
  t.print(std::cout);

  std::cout << "\nms_per_1k_steps is flat: an attacker must pay the full sequential cost\n"
               "per password candidate, regardless of how many machines they own (as long\n"
               "as each has local memory below the input size).\n";

  for (const auto& unused : args.unused()) {
    std::cerr << "warning: unused flag --" << unused << "\n";
  }
  return 0;
}
