// mhf_tradeoff — memory-hardness on the same oracle substrate (Section 1.2).
//
//   ./mhf_tradeoff [--cost 512] [--block 64] [--seed 1]
//
// Runs scrypt's ROMix core against the library's random oracle and walks the
// classic memory/time trade-off curve: halve the stored checkpoints, pay in
// recomputation hashes. The cumulative memory complexity (CMC) — the cost
// that MHF lower bounds protect — stays high on every point of the curve,
// which is the defence. Contrast with the Line function (see quickstart):
// there the protected cost is MPC *rounds* and no trade-off exists at all.
#include <iostream>

#include "hash/random_oracle.hpp"
#include "mhf/romix.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace mpch;

int main(int argc, char** argv) {
  util::CliArgs args(argc, argv);
  const std::uint64_t cost = args.get_u64("cost", 512);
  const std::uint64_t block = args.get_u64("block", 64);
  const std::uint64_t seed = args.get_u64("seed", 1);

  mhf::RoMix romix(block, cost);
  util::Rng rng(seed);
  util::BitString password_block =
      util::BitString::random(block, [&rng] { return rng.next_u64(); });

  std::cout << "ROMix with N = " << cost << ", block = " << block << " bits\n\n";

  util::Table t({"stride", "peak_memory_bits", "oracle_calls", "CMC_bit_steps",
                 "CMC_vs_honest", "output"});
  std::uint64_t honest_cmc = 0;
  for (std::uint64_t stride : {1, 2, 4, 8, 16, 32}) {
    hash::LazyRandomOracle oracle(block, block, seed);
    mhf::CmcMeter meter;
    util::BitString out = romix.evaluate_with_stride(oracle, password_block, stride, &meter);
    if (stride == 1) honest_cmc = meter.cumulative_bit_steps();
    t.add(stride, meter.peak_bits(), meter.oracle_calls(), meter.cumulative_bit_steps(),
          util::format_double(static_cast<double>(meter.cumulative_bit_steps()) /
                                  static_cast<double>(honest_cmc),
                              2),
          out.slice(0, std::min<std::uint64_t>(block, 32)).to_hex_string());
  }
  t.print(std::cout);

  std::cout << "\nEvery row computes the same output. Peak memory falls with the stride,\n"
               "oracle calls rise — but the CMC (memory x time area) never drops much\n"
               "below the honest point: that area is what the MHF lower bounds of [4, 5]\n"
               "protect, using the same compression technique this repository implements\n"
               "for the MPC model in src/compress.\n";

  for (const auto& unused : args.unused()) {
    std::cerr << "warning: unused flag --" << unused << "\n";
  }
  return 0;
}
