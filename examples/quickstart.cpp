// quickstart — evaluate the hard function on a RAM, then watch an MPC
// cluster grind through it.
//
//   ./quickstart [--w 1024] [--v 32] [--machines 8] [--seed 1]
//
// Builds Line^RO, evaluates it sequentially (metering the O(T·n) time /
// O(S) space upper bound), then runs the honest pointer-chasing MPC
// strategy and reports the round count against the paper's bound.
#include <iostream>
#include <memory>

#include "core/line.hpp"
#include "hash/random_oracle.hpp"
#include "mpc/simulation.hpp"
#include "strategies/pointer_chasing.hpp"
#include "theory/bounds.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace mpch;

int main(int argc, char** argv) {
  util::CliArgs args(argc, argv);
  const std::uint64_t w = args.get_u64("w", 1024);
  const std::uint64_t v = args.get_u64("v", 32);
  const std::uint64_t m = args.get_u64("machines", 8);
  const std::uint64_t seed = args.get_u64("seed", 1);
  const std::uint64_t u = 16, n = 64;

  core::LineParams p = core::LineParams::make(n, u, v, w);
  std::cout << "Line^RO with " << p.to_string() << "\n";
  std::cout << "input size S = " << p.input_bits() << " bits, chain length T = " << p.w << "\n\n";

  auto oracle = std::make_shared<hash::LazyRandomOracle>(p.n, p.n, seed);
  util::Rng rng(seed * 31);
  core::LineInput input = core::LineInput::random(p, rng);

  // Sequential RAM evaluation with cost metering.
  ram::RamMeter meter(p.n);
  util::BitString output = core::LineFunction(p).evaluate(*oracle, input, &meter);
  std::cout << "RAM evaluation:\n"
            << "  output        : " << output.to_hex_string() << "\n"
            << "  oracle queries: " << meter.costs().oracle_queries << " (= T)\n"
            << "  time units    : " << meter.costs().time_units << " (~ T*n = " << p.w * p.n
            << ")\n"
            << "  peak space    : " << meter.costs().peak_memory_bits << " bits (~ S = "
            << p.input_bits() << ")\n\n";

  // MPC run: m machines, each holding a 1/m fraction of the blocks.
  strategies::PointerChasingStrategy strat(p, strategies::OwnershipPlan::round_robin(p, m));
  mpc::MpcConfig c;
  c.machines = m;
  c.local_memory_bits = strat.required_local_memory();
  c.query_budget = 1 << 20;
  c.max_rounds = 1 << 22;
  mpc::MpcSimulation sim(c, oracle);
  auto result = sim.run(strat, strat.make_initial_memory(input));

  std::cout << "MPC run (" << m << " machines, s = " << c.local_memory_bits << " bits each):\n"
            << "  output matches RAM : " << (result.output == output ? "yes" : "NO") << "\n"
            << "  rounds used        : " << result.rounds_used << "\n"
            << "  geometric model    : "
            << util::format_double(
                   static_cast<double>(theory::pointer_chasing_expected_rounds(
                       p, 1.0L / static_cast<long double>(m))),
                   1)
            << "\n"
            << "  paper lower bound  : "
            << util::format_double(static_cast<double>(theory::lemma32_round_lower_bound(p)), 1)
            << "  (w / log^2 w)\n"
            << "  total communication: " << result.trace.total_communicated_bits() << " bits\n\n";

  std::cout << "The sequential machine finished in one pass; the cluster needed "
            << result.rounds_used << " rounds for a " << p.w
            << "-step chain — parallelism bought almost nothing. That is the theorem.\n";

  for (const auto& unused : args.unused()) {
    std::cerr << "warning: unused flag --" << unused << "\n";
  }
  return 0;
}
