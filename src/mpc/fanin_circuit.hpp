// fanin_circuit.hpp — the fan-in-bounded circuit abstraction of the
// s-shuffle model of Roughgarden, Vassilvitskii & Wang [64].
//
// The paper's Section 1 frames its contribution against [64]'s result:
// unconditionally, any function that depends on all N input bits requires
// ⌊log_s N⌋ rounds in the s-shuffle model, because a round-d gate can see
// at most s bits of round-(d-1) data and its input-dependency cone therefore
// grows by at most a factor s per level. That is a *constant* bound for the
// usual s = N^ε, which is exactly why the paper turns to the random-oracle
// methodology for its Ω̃(T) bound. This module makes the baseline
// executable:
//   * circuits of levels of gates, each gate consuming ≤ s bits from the
//     previous level (inputs are level 0), computing an arbitrary function;
//   * structural validation of the fan-in budget;
//   * exact dependency-cone computation, verifying |cone| ≤ s^depth;
//   * the log_s N depth bound, plus builders for tree circuits that meet it
//     with equality (the bound is tight).
#pragma once

#include <cstdint>
#include <functional>
#include <set>
#include <vector>

#include "util/bitstring.hpp"

namespace mpch::mpc {

/// A wire is (level, index): level 0 wires are the circuit inputs.
struct Wire {
  std::uint64_t level = 0;
  std::uint64_t index = 0;

  bool operator<(const Wire& rhs) const {
    return level != rhs.level ? level < rhs.level : index < rhs.index;
  }
  bool operator==(const Wire& rhs) const { return level == rhs.level && index == rhs.index; }
};

/// One gate: reads the listed wires (all from strictly earlier levels),
/// concatenates their bits in order, applies `compute`, emits `output_bits`.
struct FaninGate {
  std::vector<Wire> inputs;
  std::uint64_t output_bits = 1;
  std::function<util::BitString(const util::BitString&)> compute;
};

class FaninCircuit {
 public:
  /// `input_bits[i]` is the width of input wire (0, i); `fanin_budget` is
  /// the model's s (bits a single gate may consume).
  FaninCircuit(std::vector<std::uint64_t> input_bits, std::uint64_t fanin_budget);

  /// Append a level of gates. Validates every gate: wires exist, come from
  /// earlier levels, and total input width ≤ s. Returns the new level index.
  std::uint64_t add_level(std::vector<FaninGate> gates);

  /// Evaluate on concrete inputs (sizes must match input_bits). Returns the
  /// outputs of the last level, concatenated per gate.
  std::vector<util::BitString> evaluate(const std::vector<util::BitString>& inputs) const;

  /// The set of level-0 input indices wire `w` depends on (structurally).
  std::set<std::uint64_t> dependency_cone(const Wire& w) const;

  /// Depth (number of gate levels).
  std::uint64_t depth() const { return levels_.size(); }
  std::uint64_t fanin_budget() const { return s_; }
  std::uint64_t num_inputs() const { return input_bits_.size(); }

  /// The [64] bound: any wire depending on all N inputs has level
  /// ≥ ceil(log_s N) (in gate levels), since |cone| ≤ s^level.
  static std::uint64_t min_depth_for_full_dependence(std::uint64_t num_inputs,
                                                     std::uint64_t fanin_budget);

  /// Structural theorem check for this circuit: every wire's cone size is
  /// at most s^level (counting each input wire as one unit).
  bool cone_growth_bound_holds() const;

 private:
  std::uint64_t wire_bits(const Wire& w) const;

  std::vector<std::uint64_t> input_bits_;
  std::uint64_t s_;
  std::vector<std::vector<FaninGate>> levels_;
};

/// Builder: a fan-in-s aggregation tree over N single-word inputs computing
/// an associative reduction (e.g. sum/xor); depth = ceil(log_{s/word} N),
/// meeting the [64] bound up to the word-size factor.
FaninCircuit make_reduction_tree(std::uint64_t num_inputs, std::uint64_t word_bits,
                                 std::uint64_t fanin_budget,
                                 const std::function<std::uint64_t(std::uint64_t, std::uint64_t)>&
                                     combine);

}  // namespace mpch::mpc
