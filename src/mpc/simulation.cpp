#include "mpc/simulation.hpp"

#include <algorithm>

namespace mpch::mpc {

MpcSimulation::MpcSimulation(MpcConfig config, std::shared_ptr<hash::RandomOracle> oracle)
    : config_(config), oracle_(std::move(oracle)) {
  if (config_.machines == 0) throw std::invalid_argument("MpcSimulation: zero machines");
  if (config_.local_memory_bits == 0) {
    throw std::invalid_argument("MpcSimulation: zero local memory");
  }
}

MpcRunResult MpcSimulation::run(MpcAlgorithm& algo,
                                const std::vector<util::BitString>& initial_memory) {
  if (initial_memory.size() > config_.machines) {
    throw std::invalid_argument("MpcSimulation::run: more input shares than machines");
  }

  MpcRunResult result;
  result.transcript = std::make_shared<hash::OracleTranscript>();
  SharedTape tape(config_.tape_seed);

  // Per-machine budgeted oracle views, all over the one shared RO.
  std::vector<std::unique_ptr<hash::CountingOracle>> oracles;
  if (oracle_) {
    oracles.reserve(config_.machines);
    for (std::uint64_t i = 0; i < config_.machines; ++i) {
      oracles.push_back(std::make_unique<hash::CountingOracle>(
          oracle_, i, config_.query_budget, result.transcript));
    }
  }

  // Round-0 memory: the input partition (Definition 2.1: "the given input is
  // arbitrarily split and distributed among all the machines").
  std::vector<std::vector<Message>> inboxes(config_.machines);
  for (std::uint64_t i = 0; i < initial_memory.size(); ++i) {
    if (initial_memory[i].size() > config_.local_memory_bits) {
      throw MemoryViolation("input share for machine " + std::to_string(i) + " has " +
                            std::to_string(initial_memory[i].size()) + " bits > s=" +
                            std::to_string(config_.local_memory_bits));
    }
    if (!initial_memory[i].empty()) {
      inboxes[i].push_back({i, i, initial_memory[i]});
    }
  }

  std::vector<util::BitString> outputs;
  bool any_output = false;

  for (std::uint64_t round = 0; round < config_.max_rounds; ++round) {
    result.trace.begin_round(round);
    std::vector<std::vector<Message>> next_inboxes(config_.machines);
    std::uint64_t queries_before = oracle_ ? oracle_->total_queries() : 0;

    for (std::uint64_t i = 0; i < config_.machines; ++i) {
      MachineIo io;
      io.round = round;
      io.machine = i;
      io.inbox = &inboxes[i];
      hash::CountingOracle* mo = oracle_ ? oracles[i].get() : nullptr;
      if (mo) mo->begin_round(round);

      algo.run_machine(io, mo, tape, result.trace);

      if (io.output.has_value()) {
        outputs.push_back(*io.output);
        any_output = true;
      }
      for (auto& msg : io.outbox) {
        if (msg.to >= config_.machines) {
          throw std::invalid_argument("MpcSimulation: message to machine " +
                                      std::to_string(msg.to) + " >= m");
        }
        msg.from = i;
        result.trace.current().messages += 1;
        result.trace.current().communicated_bits += msg.bits();
        next_inboxes[msg.to].push_back(std::move(msg));
      }
    }

    // Enforce the inbox capacity: "each machine receives no more
    // communication than its memory".
    for (std::uint64_t j = 0; j < config_.machines; ++j) {
      std::uint64_t total = 0;
      for (const auto& msg : next_inboxes[j]) total += msg.bits();
      result.trace.current().max_inbox_bits =
          std::max(result.trace.current().max_inbox_bits, total);
      if (total > config_.local_memory_bits) {
        throw MemoryViolation("machine " + std::to_string(j) + " would receive " +
                              std::to_string(total) + " bits > s=" +
                              std::to_string(config_.local_memory_bits) + " after round " +
                              std::to_string(round));
      }
    }

    if (oracle_) {
      result.trace.current().oracle_queries = oracle_->total_queries() - queries_before;
    }

    result.rounds_used = round + 1;
    if (any_output) {
      result.completed = true;
      break;
    }
    inboxes = std::move(next_inboxes);
  }

  // "the union of outputs of all the machines" — concatenated in machine
  // order of emission.
  for (const auto& o : outputs) result.output += o;
  return result;
}

std::vector<util::BitString> partition_blocks_round_robin(
    const std::vector<util::BitString>& tagged_blocks, std::uint64_t machines) {
  std::vector<util::BitString> shares(machines);
  for (std::size_t b = 0; b < tagged_blocks.size(); ++b) {
    shares[b % machines] += tagged_blocks[b];
  }
  return shares;
}

}  // namespace mpch::mpc
