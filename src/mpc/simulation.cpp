#include "mpc/simulation.hpp"

#include <algorithm>
#include <exception>

namespace mpch::mpc {

MpcSimulation::MpcSimulation(MpcConfig config, std::shared_ptr<hash::RandomOracle> oracle)
    : config_(config), oracle_(std::move(oracle)) {
  if (config_.machines == 0) throw std::invalid_argument("MpcSimulation: zero machines");
  if (config_.local_memory_bits == 0) {
    throw std::invalid_argument("MpcSimulation: zero local memory");
  }
}

/// Per-machine slot for one round: everything a machine produces lands here,
/// written by exactly one thread, then merged in machine index order after
/// the round barrier. The slot is what makes the parallel path deterministic:
/// no shared accumulator is touched while machines run.
struct MpcSimulation::MachineSlot {
  MachineIo io;
  RoundTrace scratch;                    ///< per-machine annotation buffer
  hash::CountingOracle* oracle = nullptr;
  transport::Transport* transport = nullptr;
  bool crashed = false;  ///< fault injection: consume the inbox, run nothing
  bool staged = false;   ///< the transport took the outbox bytes in phase A
  std::exception_ptr error;

  /// Run this slot's machine. Exceptions are captured, not thrown: the round
  /// must reach its barrier so the merge can rethrow the *lowest-index*
  /// machine's failure — the same exception a serial sweep surfaces first.
  void run(MpcAlgorithm& algo, const SharedTape& tape) {
    try {
      if (oracle != nullptr) oracle->begin_round(io.round);
      if (crashed) return;
      algo.run_machine(io, oracle, tape, scratch);
      // Byte-moving transports serialise the outbox here, on the worker
      // thread, while other machines are still running (the shared-memory
      // backend's rings see genuinely concurrent traffic); the barrier
      // collects it back with collect_staged() before the merge.
      if (transport != nullptr) {
        staged = transport->stage(io.round, io.machine, io.outbox);
        if (staged) io.outbox.clear();
      }
    } catch (...) {
      error = std::current_exception();
    }
  }
};

std::unique_ptr<transport::Transport> MpcSimulation::make_run_transport() const {
  if (transport_factory_) return transport_factory_();
  transport::TransportOptions options;
  options.processes = config_.transport_processes;
  return transport::make_transport(config_.transport, options);
}

void MpcSimulation::run_round_serial(MpcAlgorithm& algo, std::vector<MachineSlot>& slots,
                                     const SharedTape& tape) {
  for (auto& slot : slots) slot.run(algo, tape);
}

void MpcSimulation::run_round_parallel(MpcAlgorithm& algo, std::vector<MachineSlot>& slots,
                                       const SharedTape& tape) {
  pool_->parallel_chunks(slots.size(),
                         [&](std::size_t /*chunk*/, std::size_t begin, std::size_t end) {
                           for (std::size_t i = begin; i < end; ++i) {
                             slots[i].run(algo, tape);
                           }
                         });
}

MpcRunResult MpcSimulation::run(MpcAlgorithm& algo,
                                const std::vector<util::BitString>& initial_memory,
                                RoundObserver* observer) {
  if (initial_memory.size() > config_.machines) {
    throw std::invalid_argument("MpcSimulation::run: more input shares than machines");
  }

  // Round-0 memory: the input partition (Definition 2.1: "the given input is
  // arbitrarily split and distributed among all the machines").
  std::vector<std::vector<Message>> inboxes(config_.machines);
  for (std::uint64_t i = 0; i < initial_memory.size(); ++i) {
    if (initial_memory[i].size() > config_.local_memory_bits) {
      throw MemoryViolation("input share for machine " + std::to_string(i) + " has " +
                            std::to_string(initial_memory[i].size()) + " bits > s=" +
                            std::to_string(config_.local_memory_bits));
    }
    if (!initial_memory[i].empty()) {
      inboxes[i].push_back({i, i, initial_memory[i]});
    }
  }

  return run_rounds(algo, 0, std::move(inboxes), RoundTrace{},
                    std::make_shared<hash::OracleTranscript>(), observer);
}

MpcRunResult MpcSimulation::resume(MpcAlgorithm& algo, MpcResumeState state,
                                   RoundObserver* observer) {
  if (state.inboxes.size() != config_.machines) {
    throw std::invalid_argument("MpcSimulation::resume: state has " +
                                std::to_string(state.inboxes.size()) + " inboxes for m=" +
                                std::to_string(config_.machines) + " machines");
  }
  if (state.next_round >= config_.max_rounds) {
    throw std::invalid_argument("MpcSimulation::resume: next_round " +
                                std::to_string(state.next_round) + " >= max_rounds " +
                                std::to_string(config_.max_rounds));
  }
  auto transcript =
      state.transcript ? std::move(state.transcript) : std::make_shared<hash::OracleTranscript>();
  return run_rounds(algo, state.next_round, std::move(state.inboxes), std::move(state.trace),
                    std::move(transcript), observer);
}

MpcRunResult MpcSimulation::run_rounds(MpcAlgorithm& algo, std::uint64_t start_round,
                                       std::vector<std::vector<Message>> inboxes,
                                       RoundTrace trace,
                                       std::shared_ptr<hash::OracleTranscript> transcript,
                                       RoundObserver* observer) {
  MpcRunResult result;
  result.trace = std::move(trace);
  result.transcript = std::move(transcript);
  SharedTape tape(config_.tape_seed);
  const bool auth = config_.authenticate_messages;

  // A resumed authenticated execution starts from inboxes that crossed the
  // round (start_round - 1) barrier, so they carry tags; re-verify them here
  // rather than trusting the resume state (checkpoints are checksummed, but
  // resume states can also be built by hand).
  if (auth && start_round > 0) {
    for (std::uint64_t j = 0; j < config_.machines; ++j) {
      verify_inbox_tags(config_.tape_seed, start_round - 1, j, inboxes[j]);
    }
  }

  // Message delivery backend, created per execution (a resume gets a fresh
  // one). start() runs before the worker pool exists: the socket backend
  // forks its router processes there, and forking before this simulation
  // spins up threads keeps the children single-threaded.
  std::unique_ptr<transport::Transport> transport = make_run_transport();
  transport->start(config_.machines);

  // A machine runs on one thread at a time, so parallelism beyond m is idle;
  // never run concurrently inside a ThreadPool worker (a nested simulation
  // would multiply threads for no per-round win).
  const bool parallel =
      config_.threads > 1 && config_.machines > 1 && !util::ThreadPool::in_worker();
  if (parallel && !pool_) {
    pool_ = std::make_unique<util::ThreadPool>(
        static_cast<std::size_t>(std::min<std::uint64_t>(config_.threads, config_.machines)));
  }

  // Per-machine budgeted oracle views, all over the one shared RO. Budget
  // counters reset at every round start, so a resumed execution's views are
  // indistinguishable from the originals at the same round boundary.
  std::vector<std::unique_ptr<hash::CountingOracle>> oracles;
  if (oracle_) {
    oracles.reserve(config_.machines);
    for (std::uint64_t i = 0; i < config_.machines; ++i) {
      oracles.push_back(std::make_unique<hash::CountingOracle>(
          oracle_, i, config_.query_budget, result.transcript));
    }
  }

  std::vector<util::BitString> outputs;
  bool any_output = false;

  // Per-machine slots live across rounds: their outbox vectors and the slot
  // array itself keep their capacity, so steady-state rounds run without
  // re-allocating the phase-A scaffolding. All per-round fields are reset at
  // the top of each round.
  std::vector<MachineSlot> slots(config_.machines);
  RoundArena& buffers = arena();

  for (std::uint64_t round = start_round; round < config_.max_rounds; ++round) {
    if (observer != nullptr) observer->before_round(round);
    result.trace.begin_round(round);
    std::uint64_t queries_before = oracle_ ? oracle_->total_queries() : 0;

    // Round-start memory per machine (the inbox union M_i^k) — the observed
    // counterpart of a ProtocolSpec's declared memory envelope.
    for (std::uint64_t i = 0; i < config_.machines; ++i) {
      std::uint64_t held = 0;
      for (const auto& msg : inboxes[i]) held += msg.bits();
      result.trace.current().peak_memory_bits.observe(held, i);
    }

    // Authenticated inboxes carry tags the algorithm must not see: hand each
    // machine a tag-stripped view. Round-0 inboxes are the input partition
    // (never tagged — they did not cross a barrier); the memory observation
    // above metered the tagged sizes, which is what occupies s.
    std::vector<std::vector<Message>> plain_inboxes;
    const bool stripped = auth && round > 0;
    if (stripped) {
      plain_inboxes = buffers.acquire(config_.machines);
      for (std::uint64_t i = 0; i < config_.machines; ++i) {
        plain_inboxes[i] = strip_tags(inboxes[i]);
      }
    }

    // Phase A — run all machines of the round into their slots. Within a
    // round a machine sees only its own inbox, the shared tape, and its
    // budgeted oracle view, so machines are independent and any execution
    // order (including concurrent) is model-equivalent.
    for (std::uint64_t i = 0; i < config_.machines; ++i) {
      MachineSlot& slot = slots[i];
      slot.io.round = round;
      slot.io.machine = i;
      slot.io.machines = config_.machines;
      slot.io.authenticate = auth;
      slot.io.tape_seed = config_.tape_seed;
      slot.io.inbox = stripped ? &plain_inboxes[i] : &inboxes[i];
      slot.io.outbox.clear();
      slot.io.output.reset();
      slot.scratch = RoundTrace{};
      slot.oracle = oracle_ ? oracles[i].get() : nullptr;
      slot.transport = transport.get();
      slot.crashed = observer != nullptr && !observer->machine_runs(round, i);
      slot.staged = false;
      slot.error = nullptr;
      slot.scratch.begin_round(round);
    }
    if (parallel) {
      run_round_parallel(algo, slots, tape);
    } else {
      run_round_serial(algo, slots, tape);
    }

    // Phase B — deterministic merge in machine index order. The first
    // failing machine (lowest index) wins, exactly as in a serial sweep.
    for (const auto& slot : slots) {
      if (slot.error) std::rethrow_exception(slot.error);
    }

    for (std::uint64_t i = 0; i < config_.machines; ++i) {
      MachineSlot& slot = slots[i];
      result.trace.merge_round_from(slot.scratch);
      if (slot.oracle != nullptr) {
        result.trace.current().peak_queries.observe(slot.oracle->queries_this_round(), i);
      }
      if (slot.io.output.has_value()) {
        outputs.push_back(std::move(*slot.io.output));
        any_output = true;
      }
      // The outbox to meter: either still in the slot, or — for byte-moving
      // backends — staged as wire frames in phase A and decoded back here.
      // Validation and metering always run on the barrier thread, against
      // the exact payloads the transport will carry.
      std::vector<Message> outbox =
          slot.staged ? transport->collect_staged(round, i) : std::move(slot.io.outbox);
      std::uint64_t sent_bits = 0;
      result.trace.current().peak_fan_out.observe(outbox.size(), i);
      for (auto& msg : outbox) {
        // send() already validates; this backstop covers outboxes filled
        // directly (bypassing send) by tests or future callers.
        if (msg.to >= config_.machines) {
          throw RoutingViolation("machine " + std::to_string(i) + " sent a message to machine " +
                                 std::to_string(msg.to) + " >= m=" +
                                 std::to_string(config_.machines) + " in round " +
                                 std::to_string(round));
        }
        msg.from = i;
        result.trace.current().messages += 1;
        result.trace.current().communicated_bits += msg.bits();
        result.trace.current().peak_message_bits.observe(msg.bits(), i);
        sent_bits += msg.bits();
      }
      result.trace.current().peak_sent_bits.observe(sent_bits, i);
      transport->send(round, i, std::move(outbox));
    }

    // Round barrier: the transport moves every byte of the round, then each
    // machine's merged deliveries come back in the canonical (sender index,
    // send order) inbox order — identical across backends.
    transport->flush(round);
    std::vector<std::vector<Message>> next_inboxes = buffers.acquire(config_.machines);
    for (std::uint64_t j = 0; j < config_.machines; ++j) {
      next_inboxes[j] = transport->receive(round, j);
    }
    if (!transport->idle()) {
      throw transport::TransportError(
          transport->name() + " transport not quiescent at the round " + std::to_string(round) +
          " barrier (in-flight wire state would make the round snapshot incomplete)");
    }

    // Fault-injection window: dropped/duplicated deliveries are applied at
    // the barrier, after the honest merge and before capacity enforcement.
    if (observer != nullptr) observer->after_merge(round, next_inboxes);

    // Authenticated delivery: every message that crossed the barrier must
    // carry a valid tag, checked *after* the tamper window so an injected
    // flip or forged sender is caught at this round's barrier, with the
    // failing message's machine/round/byte-offset in the diagnostic.
    if (auth) {
      for (std::uint64_t j = 0; j < config_.machines; ++j) {
        verify_inbox_tags(config_.tape_seed, round, j, next_inboxes[j]);
      }
    }

    // Enforce the inbox capacity: "each machine receives no more
    // communication than its memory".
    for (std::uint64_t j = 0; j < config_.machines; ++j) {
      std::uint64_t total = 0;
      for (const auto& msg : next_inboxes[j]) total += msg.bits();
      result.trace.current().max_inbox_bits =
          std::max(result.trace.current().max_inbox_bits, total);
      result.trace.current().peak_fan_in.observe(next_inboxes[j].size(), j);
      result.trace.current().peak_recv_bits.observe(total, j);
      if (total > config_.local_memory_bits) {
        throw MemoryViolation("machine " + std::to_string(j) + " would receive " +
                              std::to_string(total) + " bits > s=" +
                              std::to_string(config_.local_memory_bits) + " after round " +
                              std::to_string(round));
      }
    }

    if (oracle_) {
      result.trace.current().oracle_queries = oracle_->total_queries() - queries_before;
    }

    result.rounds_used = round + 1;
    if (observer != nullptr) {
      std::vector<std::uint64_t> attestations =
          attestation_digests(config_.tape_seed, round, next_inboxes);
      RoundSnapshot snapshot;
      snapshot.round = round;
      snapshot.completed = any_output;
      snapshot.next_inboxes = &next_inboxes;
      snapshot.trace = &result.trace;
      snapshot.transcript = result.transcript.get();
      snapshot.attestations = &attestations;
      observer->after_round(snapshot);
    }
    if (stripped) buffers.release(std::move(plain_inboxes));
    if (any_output) {
      result.completed = true;
      buffers.release(std::move(next_inboxes));
      break;
    }
    buffers.release(std::move(inboxes));
    inboxes = std::move(next_inboxes);
  }
  buffers.release(std::move(inboxes));

  // Canonicalise the transcript to the (round, machine, seq) order — a no-op
  // after serial rounds, the determinism step after parallel ones.
  result.transcript->sort_canonical();

  // "the union of outputs of all the machines" — concatenated in machine
  // order of emission.
  for (const auto& o : outputs) result.output += o;
  return result;
}

std::vector<util::BitString> partition_blocks_round_robin(
    const std::vector<util::BitString>& tagged_blocks, std::uint64_t machines) {
  if (machines == 0) {
    throw std::invalid_argument("partition_blocks_round_robin: zero machines");
  }
  std::vector<util::BitString> shares(machines);
  for (std::size_t b = 0; b < tagged_blocks.size(); ++b) {
    shares[b % machines] += tagged_blocks[b];
  }
  return shares;
}

}  // namespace mpch::mpc
