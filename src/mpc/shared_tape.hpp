// shared_tape.hpp — the shared, read-only random tape of Definition 2.1.
//
// "a shared, read-only, and multiple access tape containing an arbitrarily
// long random bit string." Implemented as a PRF over the position so it is
// lazily materialised, positionally stable, and identical for all machines.
#pragma once

#include <cstdint>

#include "hash/random_oracle.hpp"
#include "util/bitstring.hpp"

namespace mpch::mpc {

class SharedTape {
 public:
  explicit SharedTape(std::uint64_t seed) : seed_(seed) {}

  /// Bit at absolute tape position `index`.
  bool bit(std::uint64_t index) const { return word(index / 64) >> (index % 64) & 1ULL; }

  /// 64 random bits at word-granular position `word_index`.
  std::uint64_t word(std::uint64_t word_index) const {
    std::vector<std::uint8_t> prefix;
    prefix.reserve(4 + 16);
    prefix.push_back('T');
    prefix.push_back('A');
    prefix.push_back('P');
    prefix.push_back('E');
    for (int i = 0; i < 8; ++i) prefix.push_back(static_cast<std::uint8_t>(seed_ >> (i * 8)));
    for (int i = 0; i < 8; ++i) prefix.push_back(static_cast<std::uint8_t>(word_index >> (i * 8)));
    util::BitString bits = hash::sha256_expand(prefix, 64);
    return bits.get_uint(0, 64);
  }

  /// `len` tape bits starting at position `pos` as a BitString (len-agnostic
  /// convenience used by randomised strategies).
  util::BitString bits(std::uint64_t pos, std::uint64_t len) const {
    util::BitString out(len);
    for (std::uint64_t i = 0; i < len; ++i) out.set(i, bit(pos + i));
    return out;
  }

  std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
};

}  // namespace mpch::mpc
