// auth.hpp — authenticated messaging and round attestation for the MPC model.
//
// The paper works in the random oracle model, and the RO doubles as a
// PRF/MAC: parties sharing the (secret) tape seed can tag messages with an
// RO-derived authenticator no bounded adversary who lacks the seed can forge.
// This module builds the two integrity primitives the Byzantine fault stack
// (src/fault) rests on:
//
//  * message_tag — a 64-bit MAC over (tape seed, round, sender, receiver,
//    payload). With MpcConfig::authenticate_messages on, MachineIo::send
//    appends the tag to every payload and delivery verifies it at the round
//    barrier; any payload flip or sender spoof surfaces as a typed
//    TamperViolation naming the receiving machine, the round, and the byte
//    offset of the failing message inside the receiver's inbox. Tag bits
//    travel inside the payload, so they are metered against s and against
//    the communication stats exactly like protocol bits — the model stays
//    honest about the cost of authentication.
//
//  * attestation_digest — a 64-bit digest of one machine's end-of-round
//    state (its next-round inbox, which by Definition 2.1 *is* its entire
//    cross-round state). The round loop records all m digests in
//    RoundSnapshot whenever an observer is attached; recovery policies
//    recompute them from checkpoints to localise which machine a silent
//    Byzantine fault corrupted (see fault/recovery.hpp's quarantine policy).
//
// Both derivations are domain-separated uses of the same SHA-256 expander
// that implements the oracle and the shared tape, so the security argument
// inherits the RO-model assumption the whole repository already makes.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "mpc/message.hpp"
#include "util/bitstring.hpp"

namespace mpch::mpc {

/// Width of the MAC tag MachineIo::send appends under authenticate_messages.
inline constexpr std::uint64_t kMessageTagBits = 64;

/// MAC over (tape seed, round, from, to, payload): the tag appended to a
/// message sent in `round`. Pure function — recomputable by the verifier and
/// by recovery policies from checkpointed state.
util::BitString message_tag(std::uint64_t tape_seed, std::uint64_t round, std::uint64_t from,
                            std::uint64_t to, const util::BitString& payload);

/// 64-bit digest of machine `machine`'s end-of-round state (the inbox it
/// will start the next round with), bound to the tape seed and the round.
std::uint64_t attestation_digest(std::uint64_t tape_seed, std::uint64_t round,
                                 std::uint64_t machine, const std::vector<Message>& inbox);

/// All m digests for a round barrier, in machine index order.
std::vector<std::uint64_t> attestation_digests(std::uint64_t tape_seed, std::uint64_t round,
                                               const std::vector<std::vector<Message>>& inboxes);

/// A message failed MAC verification at delivery. Carries full provenance:
/// the receiving machine, the round whose barrier detected it, the index of
/// the failing message in the receiver's merged inbox, and the byte offset
/// of that message within the inbox (cumulative over preceding payloads).
class TamperViolation : public std::runtime_error {
 public:
  TamperViolation(std::uint64_t machine, std::uint64_t round, std::uint64_t message_index,
                  std::uint64_t byte_offset, const std::string& what)
      : std::runtime_error(what),
        machine_(machine),
        round_(round),
        message_index_(message_index),
        byte_offset_(byte_offset) {}

  std::uint64_t machine() const { return machine_; }
  std::uint64_t round() const { return round_; }
  std::uint64_t message_index() const { return message_index_; }
  std::uint64_t byte_offset() const { return byte_offset_; }

 private:
  std::uint64_t machine_;
  std::uint64_t round_;
  std::uint64_t message_index_;
  std::uint64_t byte_offset_;
};

/// Verify every tag in `inbox` (machine `machine`'s merged deliveries for
/// the barrier of `round`). Throws TamperViolation on the first mismatch,
/// including a truncated payload too short to even carry a tag.
void verify_inbox_tags(std::uint64_t tape_seed, std::uint64_t round, std::uint64_t machine,
                       const std::vector<Message>& inbox);

/// The tag-stripped view of a tagged inbox: each payload minus its trailing
/// kMessageTagBits. This is what the algorithm sees — protocols are unaware
/// of authentication. Call only on verified inboxes.
std::vector<Message> strip_tags(const std::vector<Message>& inbox);

}  // namespace mpch::mpc
