#include "mpc/fanin_circuit.hpp"

#include <stdexcept>

#include "util/math.hpp"

namespace mpch::mpc {

FaninCircuit::FaninCircuit(std::vector<std::uint64_t> input_bits, std::uint64_t fanin_budget)
    : input_bits_(std::move(input_bits)), s_(fanin_budget) {
  if (input_bits_.empty()) throw std::invalid_argument("FaninCircuit: no inputs");
  if (s_ == 0) throw std::invalid_argument("FaninCircuit: zero fan-in budget");
  for (std::uint64_t b : input_bits_) {
    if (b == 0) throw std::invalid_argument("FaninCircuit: zero-width input");
  }
}

std::uint64_t FaninCircuit::wire_bits(const Wire& w) const {
  if (w.level == 0) {
    if (w.index >= input_bits_.size()) throw std::out_of_range("FaninCircuit: bad input wire");
    return input_bits_[w.index];
  }
  if (w.level > levels_.size()) throw std::out_of_range("FaninCircuit: bad wire level");
  const auto& level = levels_[w.level - 1];
  if (w.index >= level.size()) throw std::out_of_range("FaninCircuit: bad wire index");
  return level[w.index].output_bits;
}

std::uint64_t FaninCircuit::add_level(std::vector<FaninGate> gates) {
  if (gates.empty()) throw std::invalid_argument("FaninCircuit: empty level");
  std::uint64_t new_level = levels_.size() + 1;
  for (const auto& gate : gates) {
    if (!gate.compute) throw std::invalid_argument("FaninCircuit: gate without function");
    if (gate.output_bits == 0) throw std::invalid_argument("FaninCircuit: zero-width gate");
    std::uint64_t total = 0;
    for (const auto& w : gate.inputs) {
      if (w.level >= new_level) {
        throw std::invalid_argument("FaninCircuit: gate reads a non-earlier level");
      }
      total += wire_bits(w);
    }
    if (total > s_) {
      throw std::invalid_argument("FaninCircuit: gate fan-in " + std::to_string(total) +
                                  " bits exceeds s = " + std::to_string(s_));
    }
  }
  levels_.push_back(std::move(gates));
  return new_level;
}

std::vector<util::BitString> FaninCircuit::evaluate(
    const std::vector<util::BitString>& inputs) const {
  if (inputs.size() != input_bits_.size()) {
    throw std::invalid_argument("FaninCircuit::evaluate: wrong input count");
  }
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    if (inputs[i].size() != input_bits_[i]) {
      throw std::invalid_argument("FaninCircuit::evaluate: input " + std::to_string(i) +
                                  " has wrong width");
    }
  }

  std::vector<std::vector<util::BitString>> values;
  values.push_back(inputs);
  for (const auto& level : levels_) {
    std::vector<util::BitString> out;
    out.reserve(level.size());
    for (const auto& gate : level) {
      util::BitString in;
      for (const auto& w : gate.inputs) in += values[w.level][w.index];
      util::BitString result = gate.compute(in);
      if (result.size() != gate.output_bits) {
        throw std::logic_error("FaninCircuit: gate produced wrong output width");
      }
      out.push_back(std::move(result));
    }
    values.push_back(std::move(out));
  }
  return values.back();
}

std::set<std::uint64_t> FaninCircuit::dependency_cone(const Wire& w) const {
  if (w.level == 0) return {w.index};
  const FaninGate& gate = levels_.at(w.level - 1).at(w.index);
  std::set<std::uint64_t> cone;
  for (const auto& in : gate.inputs) {
    std::set<std::uint64_t> sub = dependency_cone(in);
    cone.insert(sub.begin(), sub.end());
  }
  return cone;
}

std::uint64_t FaninCircuit::min_depth_for_full_dependence(std::uint64_t num_inputs,
                                                          std::uint64_t fanin_budget) {
  if (num_inputs <= 1) return num_inputs == 0 ? 0 : 1;
  if (fanin_budget <= 1) throw std::invalid_argument("min_depth: s must be >= 2");
  // Smallest d with s^d >= N.
  std::uint64_t d = 0;
  std::uint64_t reach = 1;
  while (reach < num_inputs) {
    reach = util::pow_sat(fanin_budget, ++d, UINT64_MAX / 2);
  }
  return d;
}

bool FaninCircuit::cone_growth_bound_holds() const {
  for (std::uint64_t level = 1; level <= levels_.size(); ++level) {
    std::uint64_t cap = util::pow_sat(s_, level, UINT64_MAX / 2);
    for (std::uint64_t g = 0; g < levels_[level - 1].size(); ++g) {
      if (dependency_cone({level, g}).size() > cap) return false;
    }
  }
  return true;
}

FaninCircuit make_reduction_tree(
    std::uint64_t num_inputs, std::uint64_t word_bits, std::uint64_t fanin_budget,
    const std::function<std::uint64_t(std::uint64_t, std::uint64_t)>& combine) {
  if (word_bits == 0 || word_bits > 64) {
    throw std::invalid_argument("make_reduction_tree: word_bits in [1, 64]");
  }
  std::uint64_t arity = fanin_budget / word_bits;
  if (arity < 2) {
    throw std::invalid_argument("make_reduction_tree: fan-in budget below two words");
  }

  FaninCircuit circuit(std::vector<std::uint64_t>(num_inputs, word_bits), fanin_budget);
  auto gate_fn = [word_bits, combine](const util::BitString& in) {
    std::uint64_t acc = in.get_uint(0, word_bits);
    for (std::uint64_t pos = word_bits; pos < in.size(); pos += word_bits) {
      acc = combine(acc, in.get_uint(pos, word_bits));
    }
    util::BitString out(word_bits);
    out.set_uint(0, word_bits, acc & (word_bits == 64 ? ~0ULL : ((1ULL << word_bits) - 1)));
    return out;
  };

  std::uint64_t level = 0;
  std::uint64_t width = num_inputs;
  while (width > 1) {
    std::uint64_t next_width = util::ceil_div(width, arity);
    std::vector<FaninGate> gates;
    gates.reserve(next_width);
    for (std::uint64_t g = 0; g < next_width; ++g) {
      FaninGate gate;
      for (std::uint64_t i = g * arity; i < std::min(width, (g + 1) * arity); ++i) {
        gate.inputs.push_back({level, i});
      }
      gate.output_bits = word_bits;
      gate.compute = gate_fn;
      gates.push_back(std::move(gate));
    }
    level = circuit.add_level(std::move(gates));
    width = next_width;
  }
  if (num_inputs == 1) {
    // Degenerate: a single pass-through gate so depth >= 1.
    FaninGate gate;
    gate.inputs.push_back({0, 0});
    gate.output_bits = word_bits;
    gate.compute = gate_fn;
    circuit.add_level({std::move(gate)});
  }
  return circuit;
}

}  // namespace mpch::mpc
