#include "mpc/auth.hpp"

#include "hash/random_oracle.hpp"

namespace mpch::mpc {

namespace {

void append_u64(std::vector<std::uint8_t>& buf, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf.push_back(static_cast<std::uint8_t>(v >> (i * 8)));
}

void append_message(std::vector<std::uint8_t>& buf, const Message& msg) {
  append_u64(buf, msg.from);
  append_u64(buf, msg.to);
  append_u64(buf, msg.payload.size());
  const auto& bytes = msg.payload.bytes();
  buf.insert(buf.end(), bytes.begin(), bytes.end());
}

}  // namespace

util::BitString message_tag(std::uint64_t tape_seed, std::uint64_t round, std::uint64_t from,
                            std::uint64_t to, const util::BitString& payload) {
  // PRF(seed, round || from || to || payload), domain-separated by "MMAC"
  // from every other sha256_expand use (tape "TAPE", oracle "LRO",
  // checkpoint checksum "CKPT", attestation "ATST").
  std::vector<std::uint8_t> prefix;
  prefix.reserve(4 + 8 * 5 + payload.bytes().size());
  prefix.push_back('M');
  prefix.push_back('M');
  prefix.push_back('A');
  prefix.push_back('C');
  append_u64(prefix, tape_seed);
  append_u64(prefix, round);
  append_u64(prefix, from);
  append_u64(prefix, to);
  append_u64(prefix, payload.size());
  const auto& bytes = payload.bytes();
  prefix.insert(prefix.end(), bytes.begin(), bytes.end());
  return hash::sha256_expand(prefix, kMessageTagBits);
}

std::uint64_t attestation_digest(std::uint64_t tape_seed, std::uint64_t round,
                                 std::uint64_t machine, const std::vector<Message>& inbox) {
  std::vector<std::uint8_t> prefix;
  prefix.reserve(4 + 8 * 3 + inbox.size() * 24);
  prefix.push_back('A');
  prefix.push_back('T');
  prefix.push_back('S');
  prefix.push_back('T');
  append_u64(prefix, tape_seed);
  append_u64(prefix, round);
  append_u64(prefix, machine);
  for (const auto& msg : inbox) append_message(prefix, msg);
  return hash::sha256_expand(prefix, 64).get_uint(0, 64);
}

std::vector<std::uint64_t> attestation_digests(std::uint64_t tape_seed, std::uint64_t round,
                                               const std::vector<std::vector<Message>>& inboxes) {
  std::vector<std::uint64_t> out;
  out.reserve(inboxes.size());
  for (std::size_t i = 0; i < inboxes.size(); ++i) {
    out.push_back(attestation_digest(tape_seed, round, i, inboxes[i]));
  }
  return out;
}

void verify_inbox_tags(std::uint64_t tape_seed, std::uint64_t round, std::uint64_t machine,
                       const std::vector<Message>& inbox) {
  std::uint64_t offset_bits = 0;
  for (std::size_t idx = 0; idx < inbox.size(); ++idx) {
    const Message& msg = inbox[idx];
    const std::uint64_t byte_offset = offset_bits / 8;
    if (msg.payload.size() < kMessageTagBits) {
      throw TamperViolation(machine, round, idx, byte_offset,
                            "authentication failed: message " + std::to_string(idx) +
                                " delivered to machine " + std::to_string(machine) +
                                " after round " + std::to_string(round) + " (byte offset " +
                                std::to_string(byte_offset) + " in the inbox) is " +
                                std::to_string(msg.payload.size()) +
                                " bits, too short to carry a tag");
    }
    const std::size_t body_bits = msg.payload.size() - kMessageTagBits;
    util::BitString body = msg.payload.slice(0, body_bits);
    util::BitString tag = msg.payload.slice(body_bits, kMessageTagBits);
    if (tag != message_tag(tape_seed, round, msg.from, msg.to, body)) {
      throw TamperViolation(machine, round, idx, byte_offset,
                            "authentication failed: message " + std::to_string(idx) +
                                " delivered to machine " + std::to_string(machine) +
                                " after round " + std::to_string(round) +
                                " (claimed sender " + std::to_string(msg.from) +
                                ", byte offset " + std::to_string(byte_offset) +
                                " in the inbox) does not match its MAC tag");
    }
    offset_bits += msg.payload.size();
  }
}

std::vector<Message> strip_tags(const std::vector<Message>& inbox) {
  std::vector<Message> plain;
  plain.reserve(inbox.size());
  for (const auto& msg : inbox) {
    plain.push_back({msg.from, msg.to, msg.payload.slice(0, msg.payload.size() - kMessageTagBits)});
  }
  return plain;
}

}  // namespace mpch::mpc
