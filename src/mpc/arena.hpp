// arena.hpp — recycled buffers for the round loop's hot path.
//
// Every round of every run allocates one inbox set (m vectors of messages)
// and tears another down; a 455-round ram-emulation run does that ~900
// times, and an mpch-serve sweep multiplies it by thousands of jobs. The
// RoundArena keeps released inbox sets and hands their storage back to the
// next acquire, so steady-state rounds reuse vector capacity instead of
// round-tripping the allocator.
//
// Determinism is untouched: the arena recycles *capacity* only — every
// acquired set comes back cleared and sized, and message contents are always
// written fresh by the round. It is deliberately not thread-safe: the round
// loop acquires/releases only on the barrier thread, and serve workers each
// own a private arena reused across the jobs they execute (never shared).
#pragma once

#include <cstdint>
#include <vector>

#include "mpc/message.hpp"

namespace mpch::mpc {

class RoundArena {
 public:
  using InboxSet = std::vector<std::vector<Message>>;

  /// An inbox set with `machines` empty per-machine vectors. Reuses the
  /// storage of a previously released set when one is available.
  InboxSet acquire(std::size_t machines) {
    if (free_sets_.empty()) {
      ++allocations_;
      return InboxSet(machines);
    }
    ++reuses_;
    InboxSet set = std::move(free_sets_.back());
    free_sets_.pop_back();
    for (auto& inbox : set) inbox.clear();
    set.resize(machines);
    return set;
  }

  /// Return a set's storage to the pool. Message payloads are released (they
  /// belong to the round that produced them); the per-machine vectors keep
  /// their capacity for the next acquire.
  void release(InboxSet&& set) { free_sets_.push_back(std::move(set)); }

  /// Drop all pooled storage (e.g. between differently-sized campaigns).
  void clear() { free_sets_.clear(); }

  std::uint64_t reuses() const { return reuses_; }
  std::uint64_t allocations() const { return allocations_; }
  std::size_t pooled_sets() const { return free_sets_.size(); }

 private:
  std::vector<InboxSet> free_sets_;
  std::uint64_t reuses_ = 0;
  std::uint64_t allocations_ = 0;
};

}  // namespace mpch::mpc
