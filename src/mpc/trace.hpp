// trace.hpp — per-round observability for MPC executions.
//
// Experiments read round counts, communication volume, query usage, and
// strategy-specific annotations (e.g. "nodes advanced this round") out of
// the trace. Annotations are observational only — they are recorded by
// algorithms for measurement and never fed back into the computation, so
// they do not smuggle state around the s-bit memory cap.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mpch::mpc {

/// A per-round maximum together with the machine that achieved it — the
/// witness the analysis layer's spec-soundness diagnostics name. Ties go to
/// the lowest machine index, so the named witness is a function of the
/// observed values alone, not of observation order (serial sweeps, parallel
/// merges, and checkpoint-resumed replays all name the same machine).
struct Peak {
  std::uint64_t value = 0;
  std::uint64_t machine = 0;

  void observe(std::uint64_t v, std::uint64_t m) {
    if (v > value || (v == value && m < machine)) {
      value = v;
      machine = m;
    }
  }
  void merge(const Peak& rhs) { observe(rhs.value, rhs.machine); }

  bool operator==(const Peak&) const = default;
};

struct RoundStats {
  std::uint64_t round = 0;
  std::uint64_t messages = 0;
  std::uint64_t communicated_bits = 0;
  std::uint64_t oracle_queries = 0;
  std::uint64_t max_inbox_bits = 0;  ///< largest per-machine delivery this round

  // Per-machine worst cases observed this round, recorded by the simulation
  // during the deterministic merge. These are what the spec-soundness pass
  // (analysis/spec_soundness.hpp) compares against a declared ProtocolSpec.
  Peak peak_memory_bits;   ///< largest round-start memory (inbox union)
  Peak peak_queries;       ///< most oracle queries by one machine
  Peak peak_fan_out;       ///< most messages sent by one machine
  Peak peak_fan_in;        ///< most messages delivered to one machine
  Peak peak_sent_bits;     ///< most bits sent by one machine
  Peak peak_recv_bits;     ///< most bits delivered to one machine
  Peak peak_message_bits;  ///< largest single message payload

  bool operator==(const RoundStats&) const = default;
};

class RoundTrace {
 public:
  void begin_round(std::uint64_t round) {
    stats_.push_back({});
    stats_.back().round = round;
  }

  RoundStats& current() { return stats_.back(); }
  const std::vector<RoundStats>& rounds() const { return stats_; }

  /// Strategy-defined counters, e.g. "advance" -> nodes walked per round.
  void annotate(const std::string& key, std::uint64_t value) {
    annotations_[key].push_back(value);
  }

  const std::vector<std::uint64_t>& annotation(const std::string& key) const {
    static const std::vector<std::uint64_t> kEmpty;
    auto it = annotations_.find(key);
    return it == annotations_.end() ? kEmpty : it->second;
  }

  const std::map<std::string, std::vector<std::uint64_t>>& annotations() const {
    return annotations_;
  }

  /// Fold one machine's per-round scratch trace into this trace: annotation
  /// values append in the scratch's order, stats sum (max for inbox peaks).
  /// The simulation calls this once per machine, in machine index order,
  /// after the round barrier — so a parallel round accumulates exactly the
  /// sequence a serial round would have produced, regardless of which worker
  /// ran which machine.
  void merge_round_from(const RoundTrace& scratch) {
    for (const auto& [key, values] : scratch.annotations_) {
      auto& dst = annotations_[key];
      dst.insert(dst.end(), values.begin(), values.end());
    }
    if (scratch.stats_.empty() || stats_.empty()) return;
    const RoundStats& s = scratch.stats_.back();
    RoundStats& dst = stats_.back();
    dst.messages += s.messages;
    dst.communicated_bits += s.communicated_bits;
    dst.oracle_queries += s.oracle_queries;
    dst.max_inbox_bits = std::max(dst.max_inbox_bits, s.max_inbox_bits);
    dst.peak_memory_bits.merge(s.peak_memory_bits);
    dst.peak_queries.merge(s.peak_queries);
    dst.peak_fan_out.merge(s.peak_fan_out);
    dst.peak_fan_in.merge(s.peak_fan_in);
    dst.peak_sent_bits.merge(s.peak_sent_bits);
    dst.peak_recv_bits.merge(s.peak_recv_bits);
    dst.peak_message_bits.merge(s.peak_message_bits);
  }

  std::uint64_t total_communicated_bits() const {
    std::uint64_t total = 0;
    for (const auto& r : stats_) total += r.communicated_bits;
    return total;
  }

  std::uint64_t total_oracle_queries() const {
    std::uint64_t total = 0;
    for (const auto& r : stats_) total += r.oracle_queries;
    return total;
  }

  /// Replace the whole trace with deserialised checkpoint state; later
  /// begin_round/merge_round_from calls continue after the restored rounds.
  void restore(std::vector<RoundStats> stats,
               std::map<std::string, std::vector<std::uint64_t>> annotations) {
    stats_ = std::move(stats);
    annotations_ = std::move(annotations);
  }

 private:
  std::vector<RoundStats> stats_;
  std::map<std::string, std::vector<std::uint64_t>> annotations_;
};

}  // namespace mpch::mpc
