// trace.hpp — per-round observability for MPC executions.
//
// Experiments read round counts, communication volume, query usage, and
// strategy-specific annotations (e.g. "nodes advanced this round") out of
// the trace. Annotations are observational only — they are recorded by
// algorithms for measurement and never fed back into the computation, so
// they do not smuggle state around the s-bit memory cap.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mpch::mpc {

struct RoundStats {
  std::uint64_t round = 0;
  std::uint64_t messages = 0;
  std::uint64_t communicated_bits = 0;
  std::uint64_t oracle_queries = 0;
  std::uint64_t max_inbox_bits = 0;  ///< largest per-machine delivery this round
};

class RoundTrace {
 public:
  void begin_round(std::uint64_t round) {
    stats_.push_back({});
    stats_.back().round = round;
  }

  RoundStats& current() { return stats_.back(); }
  const std::vector<RoundStats>& rounds() const { return stats_; }

  /// Strategy-defined counters, e.g. "advance" -> nodes walked per round.
  void annotate(const std::string& key, std::uint64_t value) {
    annotations_[key].push_back(value);
  }

  const std::vector<std::uint64_t>& annotation(const std::string& key) const {
    static const std::vector<std::uint64_t> kEmpty;
    auto it = annotations_.find(key);
    return it == annotations_.end() ? kEmpty : it->second;
  }

  std::uint64_t total_communicated_bits() const {
    std::uint64_t total = 0;
    for (const auto& r : stats_) total += r.communicated_bits;
    return total;
  }

  std::uint64_t total_oracle_queries() const {
    std::uint64_t total = 0;
    for (const auto& r : stats_) total += r.oracle_queries;
    return total;
  }

 private:
  std::vector<RoundStats> stats_;
  std::map<std::string, std::vector<std::uint64_t>> annotations_;
};

}  // namespace mpch::mpc
