// trace.hpp — per-round observability for MPC executions.
//
// Experiments read round counts, communication volume, query usage, and
// strategy-specific annotations (e.g. "nodes advanced this round") out of
// the trace. Annotations are observational only — they are recorded by
// algorithms for measurement and never fed back into the computation, so
// they do not smuggle state around the s-bit memory cap.
#pragma once

#include <algorithm>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mpch::mpc {

struct RoundStats {
  std::uint64_t round = 0;
  std::uint64_t messages = 0;
  std::uint64_t communicated_bits = 0;
  std::uint64_t oracle_queries = 0;
  std::uint64_t max_inbox_bits = 0;  ///< largest per-machine delivery this round
};

class RoundTrace {
 public:
  void begin_round(std::uint64_t round) {
    stats_.push_back({});
    stats_.back().round = round;
  }

  RoundStats& current() { return stats_.back(); }
  const std::vector<RoundStats>& rounds() const { return stats_; }

  /// Strategy-defined counters, e.g. "advance" -> nodes walked per round.
  void annotate(const std::string& key, std::uint64_t value) {
    annotations_[key].push_back(value);
  }

  const std::vector<std::uint64_t>& annotation(const std::string& key) const {
    static const std::vector<std::uint64_t> kEmpty;
    auto it = annotations_.find(key);
    return it == annotations_.end() ? kEmpty : it->second;
  }

  const std::map<std::string, std::vector<std::uint64_t>>& annotations() const {
    return annotations_;
  }

  /// Fold one machine's per-round scratch trace into this trace: annotation
  /// values append in the scratch's order, stats sum (max for inbox peaks).
  /// The simulation calls this once per machine, in machine index order,
  /// after the round barrier — so a parallel round accumulates exactly the
  /// sequence a serial round would have produced, regardless of which worker
  /// ran which machine.
  void merge_round_from(const RoundTrace& scratch) {
    for (const auto& [key, values] : scratch.annotations_) {
      auto& dst = annotations_[key];
      dst.insert(dst.end(), values.begin(), values.end());
    }
    if (scratch.stats_.empty() || stats_.empty()) return;
    const RoundStats& s = scratch.stats_.back();
    RoundStats& dst = stats_.back();
    dst.messages += s.messages;
    dst.communicated_bits += s.communicated_bits;
    dst.oracle_queries += s.oracle_queries;
    dst.max_inbox_bits = std::max(dst.max_inbox_bits, s.max_inbox_bits);
  }

  std::uint64_t total_communicated_bits() const {
    std::uint64_t total = 0;
    for (const auto& r : stats_) total += r.communicated_bits;
    return total;
  }

  std::uint64_t total_oracle_queries() const {
    std::uint64_t total = 0;
    for (const auto& r : stats_) total += r.oracle_queries;
    return total;
  }

 private:
  std::vector<RoundStats> stats_;
  std::map<std::string, std::vector<std::uint64_t>> annotations_;
};

}  // namespace mpch::mpc
