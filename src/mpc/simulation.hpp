// simulation.hpp — the Massively Parallel Computation model, executable.
//
// A faithful implementation of Definitions 2.1/2.2:
//   * m machines, each with local memory of size s bits — enforced: a
//     machine's entire cross-round state is the union of messages addressed
//     to it, and that union may not exceed s bits;
//   * synchronous rounds; within a round a machine sees only its own memory
//     (inbox), the shared random tape, and its (budgeted) oracle;
//   * per-round per-machine oracle query budget q (Definition 2.2 /
//     Theorem 3.1's q < 2^{n/4}) — enforced by CountingOracle;
//   * the input is split across machines before round 0, each share also
//     bounded by s.
//
// Algorithms implement MpcAlgorithm. They must be *stateless across rounds*
// apart from what they put in messages; the harness gives them no other
// channel. (Read-only configuration — parameters, codecs — is part of the
// algorithm description and is allowed, exactly as the model allows each
// machine to run an arbitrary known program.)
//
// Round execution is the paper's "all m machines run concurrently" made
// literal: with MpcConfig::threads > 1, the machines of a round execute on a
// worker pool, with a barrier before any cross-machine state is touched.
// Every run — serial or parallel, any thread count — produces bit-identical
// results: per-machine outputs/outboxes/annotations land in per-machine
// slots and merge in machine index order, and the oracle transcript sorts on
// the stable key (round, machine, per-machine seq). The differential suite
// in tests/parallel_simulation_test.cpp pins this equivalence down for every
// strategy in the tree.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "hash/oracle_transcript.hpp"
#include "hash/random_oracle.hpp"
#include "mpc/arena.hpp"
#include "mpc/auth.hpp"
#include "mpc/message.hpp"
#include "mpc/shared_tape.hpp"
#include "mpc/trace.hpp"
#include "transport/transport.hpp"
#include "util/bitstring.hpp"
#include "util/thread_pool.hpp"

namespace mpch::mpc {

/// Thrown when a machine's round-start memory (inbox union) exceeds s bits.
class MemoryViolation : public std::runtime_error {
 public:
  explicit MemoryViolation(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a machine addresses a message to a machine index >= m. The
/// diagnostic names the sending machine and round (the static analogue lives
/// in analysis::check_spec, which rejects such protocols before execution).
class RoutingViolation : public std::runtime_error {
 public:
  explicit RoutingViolation(const std::string& what) : std::runtime_error(what) {}
};

struct MpcConfig {
  std::uint64_t machines = 0;           ///< m
  std::uint64_t local_memory_bits = 0;  ///< s
  std::uint64_t query_budget = 0;       ///< q, per machine per round
  std::uint64_t max_rounds = 1 << 20;   ///< safety cap for non-terminating algorithms
  std::uint64_t tape_seed = 0;          ///< seed of the shared random tape
  /// Worker threads running the machines of a round concurrently. 0 or 1 =
  /// serial (the default). Results are bit-identical to the serial path for
  /// any value: outputs/messages merge in machine index order after the
  /// round barrier, trace counters reduce deterministically, and the oracle
  /// transcript carries a stable (round, machine, seq) sort key. Requires
  /// the algorithm's run_machine to be safe to call concurrently for
  /// *different* machines (all in-tree strategies are).
  std::uint64_t threads = 0;
  /// Authenticated messaging (off by default — zero behavior change when
  /// off). When on, MachineIo::send appends a kMessageTagBits MAC derived
  /// from the shared tape seed + round + sender/receiver to every payload,
  /// and the round loop verifies every delivery at the barrier, throwing
  /// mpc::TamperViolation with machine/round/byte-offset provenance on a
  /// mismatch. Algorithms see tag-stripped inboxes and need no changes, but
  /// the tag bits ride inside the messages, so they count against s, the
  /// communication stats, and the ProtocolSpec envelopes (see
  /// analysis::with_authentication) — authentication is not free, and the
  /// model meters it.
  bool authenticate_messages = false;
  /// Message delivery backend (src/transport/). Every backend produces
  /// bit-identical results — same outputs, traces, RoundStats, transcripts,
  /// checkpoints — because deliveries arrive in the canonical (sender index,
  /// send order) merge order and every transport is quiescent at each round
  /// barrier. The default moves messages in-process with zero copies;
  /// kSharedMemory round-trips every payload through per-machine byte rings
  /// (staged by the worker threads); kSocket forks router processes and
  /// moves every message over AF_UNIX sockets with binomial-tree broadcast
  /// dissemination. tests/transport_conformance_test.cpp pins the
  /// equivalence for every strategy in the tree.
  transport::TransportKind transport = transport::TransportKind::kInProcess;
  /// Socket backend: shard-group router process count. 0 = auto (2 for
  /// m > 1); clamped to [1, machines]. Ignored by the other backends.
  std::uint64_t transport_processes = 0;
};

/// Per-machine, per-round context handed to the algorithm.
struct MachineIo {
  std::uint64_t round = 0;
  std::uint64_t machine = 0;
  std::uint64_t machines = 0;  ///< m; when nonzero, send() rejects to >= m eagerly
  bool authenticate = false;   ///< MpcConfig::authenticate_messages, per-round copy
  std::uint64_t tape_seed = 0;  ///< MAC key material when authenticate is set
  const std::vector<Message>* inbox = nullptr;  ///< this machine's memory M_i^k
  std::vector<Message> outbox;                  ///< messages to deliver next round
  std::optional<util::BitString> output;        ///< set to contribute to the final output

  void send(std::uint64_t to, util::BitString payload) {
    if (machines != 0 && to >= machines) {
      throw RoutingViolation("machine " + std::to_string(machine) + " sent a message to machine " +
                             std::to_string(to) + " >= m=" + std::to_string(machines) +
                             " in round " + std::to_string(round));
    }
    if (authenticate) {
      // Tag over the plain payload; the tag travels inside the message, so
      // every meter (s, sent/recv bits, message size peaks) sees it.
      payload += message_tag(tape_seed, round, machine, to, payload);
    }
    outbox.push_back({machine, to, std::move(payload)});
  }
};

class MpcAlgorithm {
 public:
  virtual ~MpcAlgorithm() = default;

  /// Run machine `io.machine` for round `io.round`. Oracle may be null for
  /// plain-model (Definition 2.1) algorithms.
  virtual void run_machine(MachineIo& io, hash::CountingOracle* oracle, const SharedTape& tape,
                           RoundTrace& trace) = 0;

  virtual std::string name() const = 0;
};

/// View of the committed state at a round barrier, handed to
/// RoundObserver::after_round. `next_inboxes` is the message state the next
/// round will start from — together with the trace, the transcript, and the
/// oracle's memo this is the *complete* resumable state of an execution
/// (machines are stateless across rounds by construction), which is what
/// makes fault/checkpoint.hpp's snapshots sufficient for bit-identical
/// recovery.
struct RoundSnapshot {
  std::uint64_t round = 0;   ///< the round that just committed
  bool completed = false;    ///< an output was produced; the run is over
  const std::vector<std::vector<Message>>* next_inboxes = nullptr;
  const RoundTrace* trace = nullptr;
  const hash::OracleTranscript* transcript = nullptr;
  /// Per-machine end-of-round attestation digests (auth.hpp), machine index
  /// order. Computed whenever an observer is attached — a pure function of
  /// (tape seed, round, next_inboxes), so recovery policies can recompute
  /// them from a checkpoint and cross-check which machine diverged.
  const std::vector<std::uint64_t>* attestations = nullptr;
};

/// Hooks driven by the round loop at its deterministic single-threaded
/// points (never while machines are running). The fault subsystem
/// (src/fault) implements these for checkpointing and fault injection; all
/// defaults are no-ops, so plain runs pay nothing. Any hook may throw to
/// abort the run — the exception propagates out of run()/resume() with the
/// round uncommitted.
class RoundObserver {
 public:
  virtual ~RoundObserver() = default;

  /// Called before the machines of `round` execute.
  virtual void before_round(std::uint64_t /*round*/) {}

  /// Phase-A gate: return false to keep `machine` from running this round
  /// (a crash fault). The machine's inbox is still consumed and it sends
  /// nothing — exactly a machine that died at the round boundary.
  virtual bool machine_runs(std::uint64_t /*round*/, std::uint64_t /*machine*/) { return true; }

  /// Called after the deterministic merge with the next round's inboxes,
  /// before the inbox-capacity check. May mutate them (message drop /
  /// duplicate faults).
  virtual void after_merge(std::uint64_t /*round*/,
                           std::vector<std::vector<Message>>& /*next_inboxes*/) {}

  /// Called once the round has fully committed (capacity enforced, stats
  /// merged). Checkpoints are taken here.
  virtual void after_round(const RoundSnapshot& /*snapshot*/) {}
};

/// Mid-execution state accepted by MpcSimulation::resume — the deserialised
/// form of a RoundSnapshot (see fault/checkpoint.hpp for the on-disk format).
struct MpcResumeState {
  std::uint64_t next_round = 0;                   ///< first round to execute
  std::vector<std::vector<Message>> inboxes;      ///< per-machine memory M_i^{next_round}
  RoundTrace trace;                               ///< trace of rounds [0, next_round)
  std::shared_ptr<hash::OracleTranscript> transcript;  ///< restored log; null = fresh
};

struct MpcRunResult {
  bool completed = false;             ///< some machine produced output
  std::uint64_t rounds_used = 0;      ///< R of "R-round MPC computation"
  util::BitString output;             ///< union (concatenation) of machine outputs
  RoundTrace trace;
  std::shared_ptr<hash::OracleTranscript> transcript;
};

class MpcSimulation {
 public:
  /// `oracle` may be null for plain-model algorithms.
  MpcSimulation(MpcConfig config, std::shared_ptr<hash::RandomOracle> oracle);

  /// Run `algo` from the given input partition (initial_memory[i] = M_i^0).
  /// Each share must fit in s bits; shares beyond `machines` are an error.
  /// `observer`, when non-null, receives the round-loop hooks above.
  MpcRunResult run(MpcAlgorithm& algo, const std::vector<util::BitString>& initial_memory,
                   RoundObserver* observer = nullptr);

  /// Continue an execution from a round boundary (a restored checkpoint).
  /// The caller is responsible for handing this simulation an oracle whose
  /// memo and counters were restored to the same boundary (see
  /// fault/checkpoint.hpp) — with that, the resumed run is bit-identical to
  /// an uninterrupted one: same outputs, transcript, trace, and oracle state.
  MpcRunResult resume(MpcAlgorithm& algo, MpcResumeState state,
                      RoundObserver* observer = nullptr);

  const MpcConfig& config() const { return config_; }

  /// Test/tooling hook: build the transport for subsequent executions from
  /// this factory instead of config().transport — e.g. a SocketTransport
  /// with a wire-tamper hook installed. Each run/resume calls the factory
  /// once (transports are per-execution; the socket backend forks its
  /// routers in start()).
  using TransportFactory = std::function<std::unique_ptr<transport::Transport>()>;
  void set_transport_factory(TransportFactory factory) {
    transport_factory_ = std::move(factory);
  }

  /// Recycle round-loop buffers through an externally-owned arena instead of
  /// this simulation's private one — mpch-serve workers pass their per-worker
  /// arena so buffer capacity survives *across jobs*, not just across rounds.
  /// The arena is touched only on the thread driving run()/resume(); the
  /// caller must not share one arena between concurrently-running
  /// simulations. Pass nullptr to return to the private arena.
  void set_arena(RoundArena* arena) { external_arena_ = arena; }

 private:
  struct MachineSlot;

  MpcRunResult run_rounds(MpcAlgorithm& algo, std::uint64_t start_round,
                          std::vector<std::vector<Message>> inboxes, RoundTrace trace,
                          std::shared_ptr<hash::OracleTranscript> transcript,
                          RoundObserver* observer);

  void run_round_serial(MpcAlgorithm& algo, std::vector<MachineSlot>& slots,
                        const SharedTape& tape);
  void run_round_parallel(MpcAlgorithm& algo, std::vector<MachineSlot>& slots,
                          const SharedTape& tape);

  std::unique_ptr<transport::Transport> make_run_transport() const;

  RoundArena& arena() { return external_arena_ != nullptr ? *external_arena_ : own_arena_; }

  MpcConfig config_;
  std::shared_ptr<hash::RandomOracle> oracle_;
  TransportFactory transport_factory_;
  /// Buffer recycling for the round loop (mpc/arena.hpp). The private arena
  /// makes every multi-round run reuse its own inbox-set storage; serve
  /// workers override it via set_arena to extend the reuse across jobs.
  RoundArena own_arena_;
  RoundArena* external_arena_ = nullptr;
  /// Lazily-created pool sized to config_.threads (not the host's core
  /// count): the parallelism degree is part of the experiment configuration,
  /// and a dedicated pool keeps nested simulations (e.g. inside stats/trials
  /// workers) deadlock-free since no simulation ever blocks on its own pool.
  std::unique_ptr<util::ThreadPool> pool_;
};

/// Helper: split a LineInput-style block vector across machines round-robin,
/// tagging each block with its ⌈log v⌉+1-bit index so receivers know which
/// x_i they hold. Used by strategies and examples.
std::vector<util::BitString> partition_blocks_round_robin(
    const std::vector<util::BitString>& tagged_blocks, std::uint64_t machines);

}  // namespace mpch::mpc
