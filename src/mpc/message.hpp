// message.hpp — inter-machine messages of the MPC model.
//
// In Definition 2.1, machine i's round-(k+1) memory is exactly the union of
// messages sent to it in round k (M_i^{k+1} = ∪_j M_{j,i}^k). The simulator
// enforces that literally: algorithms carry *all* state between rounds in
// messages (including messages-to-self), and the per-machine inbox total is
// capped at s bits.
#pragma once

#include <cstdint>

#include "util/bitstring.hpp"

namespace mpch::mpc {

struct Message {
  std::uint64_t from = 0;
  std::uint64_t to = 0;
  util::BitString payload;

  std::size_t bits() const { return payload.size(); }

  bool operator==(const Message&) const = default;
};

}  // namespace mpch::mpc
