#include "fault/injector.hpp"

namespace mpch::fault {

FaultInjector::FaultInjector(FaultPlan plan, bool fail_stop)
    : plan_(std::move(plan)), consumed_(plan_.events.size(), false), fail_stop_(fail_stop) {}

void FaultInjector::before_round(std::uint64_t round) {
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& ev = plan_.events[i];
    if (consumed_[i] || ev.round != round) continue;
    if (ev.kind == FaultKind::KillSimulation) {
      consumed_[i] = true;
      fired_.push_back(ev);
      // A kill is never silent — there is no state left to continue on.
      throw SimulationKilled(ev, "injected fault: " + ev.describe());
    }
    if (ev.kind == FaultKind::GarbleOracle) {
      consumed_[i] = true;
      fired_.push_back(ev);
      // The memo is shared state, corrupted before the round's machines
      // query it. Unbound oracle or out-of-range entry: fired, no-op.
      if (oracle_ == nullptr || !oracle_->corrupt_memo_entry(ev.index)) continue;
      if (fail_stop_) {
        throw ByzantineFault(ev, "injected fault: " + ev.describe() +
                                     " (detected before round " + std::to_string(round) + ")");
      }
    }
  }
}

bool FaultInjector::machine_runs(std::uint64_t round, std::uint64_t machine) {
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& ev = plan_.events[i];
    if (consumed_[i] || ev.kind != FaultKind::CrashMachine || ev.round != round ||
        ev.machine != machine) {
      continue;
    }
    consumed_[i] = true;
    fired_.push_back(ev);
    if (fail_stop_) pending_crash_ = ev;  // detected at the round barrier
    return false;
  }
  return true;
}

void FaultInjector::after_merge(std::uint64_t round,
                                std::vector<std::vector<mpc::Message>>& next_inboxes) {
  // Crash detection first: the crash happened in phase A of this round, so
  // it is the earliest fault of the barrier and must win over message
  // tampering scheduled for the same round.
  if (pending_crash_.has_value()) {
    FaultEvent ev = *pending_crash_;
    pending_crash_.reset();
    throw MachineCrash(ev, "injected fault: " + ev.describe() +
                               " (detected at the round " + std::to_string(round) + " barrier)");
  }

  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& ev = plan_.events[i];
    if (consumed_[i] || ev.round != round) continue;

    if (ev.kind == FaultKind::DropMessage || ev.kind == FaultKind::DuplicateMessage) {
      consumed_[i] = true;
      fired_.push_back(ev);
      if (ev.machine >= next_inboxes.size() || ev.index >= next_inboxes[ev.machine].size()) {
        // The plan names a delivery that does not exist this round; nothing
        // to tamper with, so nothing to detect either.
        continue;
      }
      auto& inbox = next_inboxes[ev.machine];
      if (ev.kind == FaultKind::DropMessage) {
        inbox.erase(inbox.begin() + static_cast<std::ptrdiff_t>(ev.index));
      } else {
        inbox.push_back(inbox[ev.index]);  // duplicate delivery, appended
      }
      if (fail_stop_) {
        throw MessageFault(ev, "injected fault: " + ev.describe() +
                                   " (detected at the round " + std::to_string(round) +
                                   " barrier)");
      }
      continue;
    }

    if (ev.kind == FaultKind::FlipBit) {
      consumed_[i] = true;
      fired_.push_back(ev);
      if (ev.machine >= next_inboxes.size()) continue;
      // ev.index addresses a flat bit offset across the receiver's
      // concatenated payloads; walk to the owning message.
      auto& inbox = next_inboxes[ev.machine];
      std::uint64_t offset = ev.index;
      bool applied = false;
      for (auto& msg : inbox) {
        if (offset < msg.payload.size()) {
          msg.payload.set(offset, !msg.payload.get(offset));
          applied = true;
          break;
        }
        offset -= msg.payload.size();
      }
      if (!applied) continue;  // offset beyond the inbox: fired, no-op
      if (fail_stop_) {
        throw ByzantineFault(ev, "injected fault: " + ev.describe() +
                                     " (detected at the round " + std::to_string(round) +
                                     " barrier)");
      }
      continue;
    }

    if (ev.kind == FaultKind::ForgeMessage) {
      consumed_[i] = true;
      fired_.push_back(ev);
      if (ev.machine >= next_inboxes.size() || ev.index >= next_inboxes[ev.machine].size()) {
        continue;
      }
      next_inboxes[ev.machine][ev.index].from = ev.aux;  // spoof the sender
      if (fail_stop_) {
        throw ByzantineFault(ev, "injected fault: " + ev.describe() +
                                     " (detected at the round " + std::to_string(round) +
                                     " barrier)");
      }
      continue;
    }
  }
}

}  // namespace mpch::fault
