#include "fault/injector.hpp"

namespace mpch::fault {

FaultInjector::FaultInjector(FaultPlan plan, bool fail_stop)
    : plan_(std::move(plan)), consumed_(plan_.events.size(), false), fail_stop_(fail_stop) {}

void FaultInjector::before_round(std::uint64_t round) {
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& ev = plan_.events[i];
    if (consumed_[i] || ev.kind != FaultKind::KillSimulation || ev.round != round) continue;
    consumed_[i] = true;
    fired_.push_back(ev);
    // A kill is never silent — there is no state left to continue on.
    throw SimulationKilled(ev, "injected fault: " + ev.describe());
  }
}

bool FaultInjector::machine_runs(std::uint64_t round, std::uint64_t machine) {
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& ev = plan_.events[i];
    if (consumed_[i] || ev.kind != FaultKind::CrashMachine || ev.round != round ||
        ev.machine != machine) {
      continue;
    }
    consumed_[i] = true;
    fired_.push_back(ev);
    if (fail_stop_) pending_crash_ = ev;  // detected at the round barrier
    return false;
  }
  return true;
}

void FaultInjector::after_merge(std::uint64_t round,
                                std::vector<std::vector<mpc::Message>>& next_inboxes) {
  // Crash detection first: the crash happened in phase A of this round, so
  // it is the earliest fault of the barrier and must win over message
  // tampering scheduled for the same round.
  if (pending_crash_.has_value()) {
    FaultEvent ev = *pending_crash_;
    pending_crash_.reset();
    throw MachineCrash(ev, "injected fault: " + ev.describe() +
                               " (detected at the round " + std::to_string(round) + " barrier)");
  }

  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& ev = plan_.events[i];
    if (consumed_[i] || ev.round != round) continue;
    if (ev.kind != FaultKind::DropMessage && ev.kind != FaultKind::DuplicateMessage) continue;
    consumed_[i] = true;
    fired_.push_back(ev);
    if (ev.machine >= next_inboxes.size() || ev.index >= next_inboxes[ev.machine].size()) {
      // The plan names a delivery that does not exist this round; nothing to
      // tamper with, so nothing to detect either.
      continue;
    }
    auto& inbox = next_inboxes[ev.machine];
    if (ev.kind == FaultKind::DropMessage) {
      inbox.erase(inbox.begin() + static_cast<std::ptrdiff_t>(ev.index));
    } else {
      inbox.push_back(inbox[ev.index]);  // duplicate delivery, appended
    }
    if (fail_stop_) {
      throw MessageFault(ev, "injected fault: " + ev.describe() +
                                 " (detected at the round " + std::to_string(round) +
                                 " barrier)");
    }
  }
}

}  // namespace mpch::fault
