// checkpoint.hpp — versioned binary snapshots of an MPC execution.
//
// A Checkpoint captures *everything* a resumed run needs to be bit-identical
// to an uninterrupted one: the next round to execute, every machine's inbox
// (its entire cross-round memory, by Definition 2.1), the shared tape seed,
// the LazyRandomOracle's materialised sub-function in stable (sorted-input)
// key order with its lifetime query counter, the canonical oracle
// transcript, and the full RoundStats/annotation trace. Machines themselves
// are stateless across rounds, so nothing else exists to save — that is the
// model property (and PR 1's determinism guarantee) that makes
// checkpoint-based recovery *provably* correct here: a restored run can be
// checked for equality against an uninterrupted one.
//
// Wire format (see serialize()/deserialize()):
//   magic "MPCHKPT\x01" (8 bytes) | version u64 | payload_bits u64 |
//   checksum u64 (SHA-256-derived, over the payload) | payload
// Any header or checksum mismatch throws CheckpointError with a diagnostic
// instead of resuming from a corrupted snapshot.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "hash/oracle_transcript.hpp"
#include "hash/random_oracle.hpp"
#include "mpc/simulation.hpp"
#include "mpc/trace.hpp"
#include "util/bitstring.hpp"

namespace mpch::fault {

/// Thrown when a snapshot cannot be parsed or fails its integrity checks.
class CheckpointError : public std::runtime_error {
 public:
  explicit CheckpointError(const std::string& what) : std::runtime_error(what) {}
};

struct Checkpoint {
  static constexpr std::uint64_t kVersion = 1;

  // Execution position and the config fingerprint it must be resumed under.
  std::uint64_t next_round = 0;
  std::uint64_t machines = 0;
  std::uint64_t local_memory_bits = 0;
  std::uint64_t query_budget = 0;
  std::uint64_t tape_seed = 0;

  // Per-machine memory M_i^{next_round}.
  std::vector<std::vector<mpc::Message>> inboxes;

  // Trace of rounds [0, next_round).
  std::vector<mpc::RoundStats> rounds;
  std::map<std::string, std::vector<std::uint64_t>> annotations;

  // Canonically ordered oracle transcript up to the boundary.
  std::vector<hash::QueryRecord> transcript;

  // LazyRandomOracle state: the memoised sub-function in sorted input order
  // plus the lifetime query counter. has_oracle=false for plain-model runs.
  bool has_oracle = false;
  std::uint64_t oracle_in_bits = 0;
  std::uint64_t oracle_out_bits = 0;
  std::uint64_t oracle_total_queries = 0;
  std::vector<std::pair<util::BitString, util::BitString>> oracle_memo;

  bool operator==(const Checkpoint&) const = default;
};

/// Capture a checkpoint from a live round barrier. `oracle` may be null
/// (plain-model execution). The transcript is snapshotted in canonical
/// order, so mid-run parallel logs serialise deterministically.
Checkpoint capture(const mpc::RoundSnapshot& snapshot, const mpc::MpcConfig& config,
                   const hash::LazyRandomOracle* oracle);

/// The before-round-0 checkpoint: the input partition itself. Lets recovery
/// policies roll all the way back to the start without a special case.
Checkpoint initial_checkpoint(const mpc::MpcConfig& config,
                              const std::vector<util::BitString>& initial_memory,
                              const hash::LazyRandomOracle* oracle);

/// Serialise to the versioned, checksummed wire format.
util::BitString serialize(const Checkpoint& cp);

/// Parse and integrity-check a serialised checkpoint. Throws CheckpointError
/// (bad magic / unsupported version / checksum mismatch / truncation) with a
/// diagnostic naming what failed.
Checkpoint deserialize(const util::BitString& bits);

/// Wrap arbitrary payload bits in a valid header (magic, version, length,
/// checksum). A fuzzing/testing hook: the checksum otherwise shields the
/// payload parser from any input a fuzzer can realistically produce, and the
/// parser is exactly the code that must survive hostile field counts.
util::BitString frame_checkpoint_payload(const util::BitString& payload);

/// File round-trip (write_bits_file framing). save overwrites; load throws
/// CheckpointError on a missing, truncated, or corrupted file.
void save_checkpoint_file(const std::string& path, const Checkpoint& cp);
Checkpoint load_checkpoint_file(const std::string& path);

/// Turn a checkpoint back into the two pieces a resumed execution needs:
/// the MpcResumeState for MpcSimulation::resume, and (when the checkpoint
/// has oracle state) `fresh_oracle` restored to the boundary. The oracle
/// must be a *fresh* instance built from the same seed as the original —
/// restore_table() re-derives every memo entry and throws if the snapshot
/// does not match the oracle, and the query counter is set to the
/// checkpoint's, erasing any queries a faulted round attempt wasted.
mpc::MpcResumeState make_resume_state(const Checkpoint& cp, hash::LazyRandomOracle* fresh_oracle);

}  // namespace mpch::fault
