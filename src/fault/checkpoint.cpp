#include "fault/checkpoint.hpp"

#include <algorithm>

#include "util/serialize.hpp"

namespace mpch::fault {

namespace {

constexpr std::uint8_t kMagic[8] = {'M', 'P', 'C', 'H', 'K', 'P', 'T', 0x01};

std::uint64_t payload_checksum(const util::BitString& payload) {
  // SHA-256-derived 64-bit digest over (bit length, packed bytes); domain
  // separated from every other sha256_expand use in the tree.
  std::vector<std::uint8_t> prefix;
  const auto& bytes = payload.bytes();
  prefix.reserve(4 + 8 + bytes.size());
  prefix.push_back('C');
  prefix.push_back('K');
  prefix.push_back('P');
  prefix.push_back('T');
  std::uint64_t len = payload.size();
  for (int i = 0; i < 8; ++i) prefix.push_back(static_cast<std::uint8_t>(len >> (i * 8)));
  prefix.insert(prefix.end(), bytes.begin(), bytes.end());
  return hash::sha256_expand(prefix, 64).get_uint(0, 64);
}

void write_peak(util::BitWriter& w, const mpc::Peak& p) {
  w.write_uint(p.value, 64);
  w.write_uint(p.machine, 64);
}

mpc::Peak read_peak(util::BitReader& r) {
  mpc::Peak p;
  p.value = r.read_uint(64);
  p.machine = r.read_uint(64);
  return p;
}

util::BitString serialize_payload(const Checkpoint& cp) {
  util::BitWriter w;
  w.write_uint(cp.next_round, 64);
  w.write_uint(cp.machines, 64);
  w.write_uint(cp.local_memory_bits, 64);
  w.write_uint(cp.query_budget, 64);
  w.write_uint(cp.tape_seed, 64);

  w.write_uint(cp.inboxes.size(), 64);
  for (const auto& inbox : cp.inboxes) {
    w.write_uint(inbox.size(), 64);
    for (const auto& msg : inbox) {
      w.write_uint(msg.from, 64);
      w.write_uint(msg.to, 64);
      util::write_bitstring_field(w, msg.payload);
    }
  }

  w.write_uint(cp.rounds.size(), 64);
  for (const auto& s : cp.rounds) {
    w.write_uint(s.round, 64);
    w.write_uint(s.messages, 64);
    w.write_uint(s.communicated_bits, 64);
    w.write_uint(s.oracle_queries, 64);
    w.write_uint(s.max_inbox_bits, 64);
    write_peak(w, s.peak_memory_bits);
    write_peak(w, s.peak_queries);
    write_peak(w, s.peak_fan_out);
    write_peak(w, s.peak_fan_in);
    write_peak(w, s.peak_sent_bits);
    write_peak(w, s.peak_recv_bits);
    write_peak(w, s.peak_message_bits);
  }

  w.write_uint(cp.annotations.size(), 64);
  for (const auto& [key, values] : cp.annotations) {
    util::write_string_field(w, key);
    w.write_uint(values.size(), 64);
    for (std::uint64_t v : values) w.write_uint(v, 64);
  }

  w.write_uint(cp.transcript.size(), 64);
  for (const auto& rec : cp.transcript) {
    w.write_uint(rec.round, 64);
    w.write_uint(rec.machine, 64);
    w.write_uint(rec.seq, 64);
    util::write_bitstring_field(w, rec.input);
    util::write_bitstring_field(w, rec.output);
  }

  w.write_bool(cp.has_oracle);
  if (cp.has_oracle) {
    w.write_uint(cp.oracle_in_bits, 64);
    w.write_uint(cp.oracle_out_bits, 64);
    w.write_uint(cp.oracle_total_queries, 64);
    w.write_uint(cp.oracle_memo.size(), 64);
    for (const auto& [input, output] : cp.oracle_memo) {
      util::write_bitstring_field(w, input);
      util::write_bitstring_field(w, output);
    }
  }
  return w.take();
}

/// Read an element count and reject it unless `min_bits_per_item` elements
/// could actually fit in the remaining payload — a hostile count would
/// otherwise drive the resize() below it into std::length_error / OOM
/// before the bit reader ever notices the truncation.
std::uint64_t read_count(util::BitReader& r, std::uint64_t min_bits_per_item, const char* what) {
  std::uint64_t n = r.read_uint(64);
  if (n > r.remaining() / min_bits_per_item) {
    throw CheckpointError("checkpoint corrupted: " + std::string(what) + " count " +
                          std::to_string(n) + " cannot fit in the remaining " +
                          std::to_string(r.remaining()) + " payload bits");
  }
  return n;
}

Checkpoint deserialize_payload(util::BitReader& r) {
  Checkpoint cp;
  cp.next_round = r.read_uint(64);
  cp.machines = r.read_uint(64);
  cp.local_memory_bits = r.read_uint(64);
  cp.query_budget = r.read_uint(64);
  cp.tape_seed = r.read_uint(64);

  std::uint64_t n_inboxes = read_count(r, 64, "inbox");
  cp.inboxes.resize(n_inboxes);
  for (auto& inbox : cp.inboxes) {
    std::uint64_t n_msgs = read_count(r, 192, "message");
    inbox.resize(n_msgs);
    for (auto& msg : inbox) {
      msg.from = r.read_uint(64);
      msg.to = r.read_uint(64);
      msg.payload = util::read_bitstring_field(r);
    }
  }

  std::uint64_t n_rounds = read_count(r, 5 * 64 + 7 * 128, "round-stats");
  cp.rounds.resize(n_rounds);
  for (auto& s : cp.rounds) {
    s.round = r.read_uint(64);
    s.messages = r.read_uint(64);
    s.communicated_bits = r.read_uint(64);
    s.oracle_queries = r.read_uint(64);
    s.max_inbox_bits = r.read_uint(64);
    s.peak_memory_bits = read_peak(r);
    s.peak_queries = read_peak(r);
    s.peak_fan_out = read_peak(r);
    s.peak_fan_in = read_peak(r);
    s.peak_sent_bits = read_peak(r);
    s.peak_recv_bits = read_peak(r);
    s.peak_message_bits = read_peak(r);
  }

  std::uint64_t n_annotations = read_count(r, 128, "annotation");
  for (std::uint64_t i = 0; i < n_annotations; ++i) {
    std::string key = util::read_string_field(r);
    std::uint64_t n_values = read_count(r, 64, "annotation-value");
    std::vector<std::uint64_t> values(n_values);
    for (auto& v : values) v = r.read_uint(64);
    cp.annotations.emplace(std::move(key), std::move(values));
  }

  std::uint64_t n_records = read_count(r, 5 * 64, "transcript-record");
  cp.transcript.resize(n_records);
  for (auto& rec : cp.transcript) {
    rec.round = r.read_uint(64);
    rec.machine = r.read_uint(64);
    rec.seq = r.read_uint(64);
    rec.input = util::read_bitstring_field(r);
    rec.output = util::read_bitstring_field(r);
  }

  cp.has_oracle = r.read_bool();
  if (cp.has_oracle) {
    cp.oracle_in_bits = r.read_uint(64);
    cp.oracle_out_bits = r.read_uint(64);
    cp.oracle_total_queries = r.read_uint(64);
    std::uint64_t n_memo = read_count(r, 128, "oracle-memo");
    cp.oracle_memo.resize(n_memo);
    for (auto& [input, output] : cp.oracle_memo) {
      input = util::read_bitstring_field(r);
      output = util::read_bitstring_field(r);
    }
  }
  return cp;
}

}  // namespace

Checkpoint capture(const mpc::RoundSnapshot& snapshot, const mpc::MpcConfig& config,
                   const hash::LazyRandomOracle* oracle) {
  Checkpoint cp;
  cp.next_round = snapshot.round + 1;
  cp.machines = config.machines;
  cp.local_memory_bits = config.local_memory_bits;
  cp.query_budget = config.query_budget;
  cp.tape_seed = config.tape_seed;
  cp.inboxes = *snapshot.next_inboxes;
  cp.rounds = snapshot.trace->rounds();
  cp.annotations = snapshot.trace->annotations();
  if (snapshot.transcript != nullptr) cp.transcript = snapshot.transcript->canonical_records();
  if (oracle != nullptr) {
    cp.has_oracle = true;
    cp.oracle_in_bits = oracle->input_bits();
    cp.oracle_out_bits = oracle->output_bits();
    cp.oracle_total_queries = oracle->total_queries();
    cp.oracle_memo = oracle->touched_table();
  }
  return cp;
}

Checkpoint initial_checkpoint(const mpc::MpcConfig& config,
                              const std::vector<util::BitString>& initial_memory,
                              const hash::LazyRandomOracle* oracle) {
  Checkpoint cp;
  cp.next_round = 0;
  cp.machines = config.machines;
  cp.local_memory_bits = config.local_memory_bits;
  cp.query_budget = config.query_budget;
  cp.tape_seed = config.tape_seed;
  cp.inboxes.resize(config.machines);
  for (std::uint64_t i = 0; i < initial_memory.size() && i < config.machines; ++i) {
    if (!initial_memory[i].empty()) cp.inboxes[i].push_back({i, i, initial_memory[i]});
  }
  if (oracle != nullptr) {
    cp.has_oracle = true;
    cp.oracle_in_bits = oracle->input_bits();
    cp.oracle_out_bits = oracle->output_bits();
    // A pristine oracle: no queries, empty memo. (Taking the initial
    // checkpoint after the oracle has been used would make rollback-to-start
    // under-erase; recovery policies take it before running.)
    cp.oracle_total_queries = oracle->total_queries();
    cp.oracle_memo = oracle->touched_table();
  }
  return cp;
}

util::BitString serialize(const Checkpoint& cp) {
  return frame_checkpoint_payload(serialize_payload(cp));
}

util::BitString frame_checkpoint_payload(const util::BitString& payload) {
  util::BitWriter w;
  for (std::uint8_t b : kMagic) w.write_uint(b, 8);
  w.write_uint(Checkpoint::kVersion, 64);
  w.write_uint(payload.size(), 64);
  w.write_uint(payload_checksum(payload), 64);
  w.write_bits(payload);
  return w.take();
}

Checkpoint deserialize(const util::BitString& bits) {
  util::BitReader r(bits);
  try {
    for (std::size_t i = 0; i < 8; ++i) {
      std::uint64_t b = r.read_uint(8);
      if (b != kMagic[i]) {
        throw CheckpointError("not a checkpoint snapshot: magic byte " + std::to_string(i) +
                              " is 0x" + std::to_string(b) + ", want 0x" +
                              std::to_string(kMagic[i]));
      }
    }
    std::uint64_t version = r.read_uint(64);
    if (version != Checkpoint::kVersion) {
      throw CheckpointError("unsupported checkpoint version " + std::to_string(version) +
                            " (this build reads version " +
                            std::to_string(Checkpoint::kVersion) + ")");
    }
    std::uint64_t payload_bits = r.read_uint(64);
    std::uint64_t stored_checksum = r.read_uint(64);
    if (payload_bits != r.remaining()) {
      throw CheckpointError("checkpoint truncated or padded: header declares " +
                            std::to_string(payload_bits) + " payload bits, " +
                            std::to_string(r.remaining()) + " present");
    }
    util::BitString payload = r.read_bits(static_cast<std::size_t>(payload_bits));
    std::uint64_t computed = payload_checksum(payload);
    if (computed != stored_checksum) {
      throw CheckpointError("checkpoint corrupted: checksum mismatch (stored " +
                            std::to_string(stored_checksum) + ", computed " +
                            std::to_string(computed) + ") — refusing to resume");
    }
    util::BitReader pr(std::move(payload));
    Checkpoint cp = deserialize_payload(pr);
    if (!pr.exhausted()) {
      throw CheckpointError("checkpoint corrupted: " + std::to_string(pr.remaining()) +
                            " trailing payload bits after the last field");
    }
    if (cp.inboxes.size() != cp.machines) {
      throw CheckpointError("checkpoint inconsistent: " + std::to_string(cp.inboxes.size()) +
                            " inboxes for m=" + std::to_string(cp.machines));
    }
    return cp;
  } catch (const std::out_of_range& e) {
    throw CheckpointError(std::string("checkpoint truncated: ") + e.what());
  }
}

void save_checkpoint_file(const std::string& path, const Checkpoint& cp) {
  util::write_bits_file(path, serialize(cp));
}

Checkpoint load_checkpoint_file(const std::string& path) {
  util::BitString bits;
  try {
    bits = util::read_bits_file(path);
  } catch (const std::runtime_error& e) {
    throw CheckpointError(std::string("cannot load checkpoint: ") + e.what());
  }
  return deserialize(bits);
}

mpc::MpcResumeState make_resume_state(const Checkpoint& cp, hash::LazyRandomOracle* fresh_oracle) {
  if (cp.has_oracle) {
    if (fresh_oracle == nullptr) {
      throw CheckpointError("checkpoint carries oracle state but no oracle was supplied");
    }
    if (fresh_oracle->input_bits() != cp.oracle_in_bits ||
        fresh_oracle->output_bits() != cp.oracle_out_bits) {
      throw CheckpointError(
          "checkpoint oracle domain/range (" + std::to_string(cp.oracle_in_bits) + " -> " +
          std::to_string(cp.oracle_out_bits) + ") does not match the supplied oracle (" +
          std::to_string(fresh_oracle->input_bits()) + " -> " +
          std::to_string(fresh_oracle->output_bits()) + ")");
    }
    try {
      fresh_oracle->restore_table(cp.oracle_memo, cp.oracle_total_queries);
    } catch (const std::invalid_argument& e) {
      throw CheckpointError(std::string("checkpoint oracle memo rejected: ") + e.what());
    }
  }
  mpc::MpcResumeState state;
  state.next_round = cp.next_round;
  state.inboxes = cp.inboxes;
  state.trace.restore(cp.rounds, cp.annotations);
  state.transcript = std::make_shared<hash::OracleTranscript>();
  state.transcript->restore(cp.transcript);
  return state;
}

}  // namespace mpch::fault
