#include "fault/fault_plan.hpp"

#include <map>
#include <sstream>
#include <stdexcept>

#include "util/rng.hpp"

namespace mpch::fault {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::CrashMachine: return "crash";
    case FaultKind::DropMessage: return "drop";
    case FaultKind::DuplicateMessage: return "dup";
    case FaultKind::KillSimulation: return "kill";
    case FaultKind::FlipBit: return "flip";
    case FaultKind::ForgeMessage: return "forge";
    case FaultKind::GarbleOracle: return "garble-oracle";
    case FaultKind::TamperCheckpoint: return "tamper-ckpt";
  }
  return "?";
}

std::string FaultEvent::describe() const {
  switch (kind) {
    case FaultKind::CrashMachine:
      return "crash machine " + std::to_string(machine) + " in round " + std::to_string(round);
    case FaultKind::DropMessage:
      return "drop message " + std::to_string(index) + " delivered to machine " +
             std::to_string(machine) + " after round " + std::to_string(round);
    case FaultKind::DuplicateMessage:
      return "duplicate message " + std::to_string(index) + " delivered to machine " +
             std::to_string(machine) + " after round " + std::to_string(round);
    case FaultKind::KillSimulation:
      return "kill the simulation before round " + std::to_string(round);
    case FaultKind::FlipBit:
      return "flip bit " + std::to_string(index) + " of machine " + std::to_string(machine) +
             "'s inbox after round " + std::to_string(round);
    case FaultKind::ForgeMessage:
      return "forge sender of message " + std::to_string(index) + " delivered to machine " +
             std::to_string(machine) + " after round " + std::to_string(round) +
             " (claim machine " + std::to_string(aux) + ")";
    case FaultKind::GarbleOracle:
      return "garble memoised oracle entry " + std::to_string(index) + " before round " +
             std::to_string(round);
    case FaultKind::TamperCheckpoint:
      return "tamper bit " + std::to_string(index) + " of the checkpoint taken after round " +
             std::to_string(round);
  }
  return "?";
}

namespace {

/// Parse one `kind:key=value,...` token into an event (or a random:...
/// sub-plan). Throws with the token quoted on any malformed piece.
void parse_event(const std::string& token, FaultPlan& plan) {
  auto fail = [&token](const std::string& why) {
    throw std::invalid_argument("FaultPlan::parse: " + why + " in '" + token + "'");
  };
  std::size_t colon = token.find(':');
  std::string kind_str = colon == std::string::npos ? token : token.substr(0, colon);

  std::map<std::string, std::uint64_t> kv;
  if (colon != std::string::npos) {
    std::stringstream rest(token.substr(colon + 1));
    std::string pair;
    while (std::getline(rest, pair, ',')) {
      std::size_t eq = pair.find('=');
      if (eq == std::string::npos || eq == 0) fail("expected key=value, got '" + pair + "'");
      std::string key = pair.substr(0, eq);
      std::string value = pair.substr(eq + 1);
      try {
        std::size_t used = 0;
        std::uint64_t parsed = std::stoull(value, &used);
        if (used != value.size()) throw std::invalid_argument(value);
        kv[key] = parsed;
      } catch (const std::exception&) {
        fail("value of '" + key + "' is not a number");
      }
    }
  }
  auto need = [&](const char* key) {
    auto it = kv.find(key);
    if (it == kv.end()) fail(std::string("missing '") + key + "='");
    std::uint64_t v = it->second;
    kv.erase(it);
    return v;
  };

  FaultEvent ev;
  if (kind_str == "crash") {
    ev.kind = FaultKind::CrashMachine;
    ev.machine = need("machine");
    ev.round = need("round");
  } else if (kind_str == "drop" || kind_str == "dup") {
    ev.kind = kind_str == "drop" ? FaultKind::DropMessage : FaultKind::DuplicateMessage;
    ev.round = need("round");
    ev.machine = need("to");
    ev.index = need("index");
  } else if (kind_str == "kill") {
    ev.kind = FaultKind::KillSimulation;
    ev.round = need("round");
  } else if (kind_str == "flip") {
    ev.kind = FaultKind::FlipBit;
    ev.machine = need("machine");
    ev.round = need("round");
    ev.index = need("bit");
  } else if (kind_str == "forge") {
    ev.kind = FaultKind::ForgeMessage;
    ev.round = need("round");
    ev.machine = need("to");
    ev.index = need("index");
    ev.aux = need("from");
  } else if (kind_str == "garble-oracle") {
    ev.kind = FaultKind::GarbleOracle;
    ev.round = need("round");
    ev.index = need("entry");
  } else if (kind_str == "tamper-ckpt") {
    ev.kind = FaultKind::TamperCheckpoint;
    ev.round = need("round");
    ev.index = need("bit");
  } else if (kind_str == "random") {
    std::uint64_t seed = need("seed");
    std::uint64_t events = need("events");
    std::uint64_t rounds = need("rounds");
    std::uint64_t machines = need("machines");
    if (!kv.empty()) fail("unknown key '" + kv.begin()->first + "'");
    FaultPlan sub = FaultPlan::random(seed, events, rounds, machines);
    plan.events.insert(plan.events.end(), sub.events.begin(), sub.events.end());
    return;
  } else {
    fail("unknown fault kind '" + kind_str +
         "' (want crash|drop|dup|kill|flip|forge|garble-oracle|tamper-ckpt|random)");
  }
  if (!kv.empty()) fail("unknown key '" + kv.begin()->first + "'");
  plan.events.push_back(ev);
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::stringstream ss(spec);
  std::string token;
  while (std::getline(ss, token, ';')) {
    if (token.empty()) continue;
    parse_event(token, plan);
  }
  if (plan.events.empty()) {
    throw std::invalid_argument("FaultPlan::parse: no events in '" + spec + "'");
  }
  return plan;
}

FaultPlan FaultPlan::random(std::uint64_t seed, std::uint64_t events, std::uint64_t max_round,
                            std::uint64_t machines) {
  if (max_round == 0 || machines == 0) {
    throw std::invalid_argument("FaultPlan::random: rounds and machines must be nonzero");
  }
  util::Rng rng(seed ^ 0xFA17'FA17'FA17'FA17ULL);
  FaultPlan plan;
  plan.events.reserve(events);
  for (std::uint64_t i = 0; i < events; ++i) {
    FaultEvent ev;
    switch (rng.next_u64() % 4) {
      case 0: ev.kind = FaultKind::CrashMachine; break;
      case 1: ev.kind = FaultKind::DropMessage; break;
      case 2: ev.kind = FaultKind::DuplicateMessage; break;
      default: ev.kind = FaultKind::KillSimulation; break;
    }
    ev.round = rng.next_u64() % max_round;
    ev.machine = rng.next_u64() % machines;
    ev.index = rng.next_u64() % 4;  // small indices hit real messages most of the time
    plan.events.push_back(ev);
  }
  return plan;
}

std::string FaultPlan::describe() const {
  std::string out;
  for (const auto& ev : events) {
    if (!out.empty()) out += "; ";
    out += ev.describe();
  }
  return out.empty() ? "(no faults)" : out;
}

}  // namespace mpch::fault
