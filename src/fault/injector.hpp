// injector.hpp — drives a FaultPlan through the round-loop hooks.
//
// Faults are applied at the simulation's deterministic barrier points (the
// RoundObserver hooks), never mid-phase-A, so an injected run is as
// reproducible as a clean one. Detection follows the fail-stop model: in the
// default detecting mode every applied fault surfaces as an InjectedFault
// exception at the barrier (real clusters detect crashes and lost messages
// via heartbeats/acks; here the injector doubles as the detector), and the
// recovery policies in recovery.hpp catch it, roll back, and resume. Each
// event fires at most once — after recovery, the re-executed rounds run
// clean, which is exactly what makes restored runs comparable bit-for-bit
// against uninterrupted ones.
//
// With detection off (`fail_stop=false`), crash/drop/duplicate faults are
// applied silently and the run continues on corrupted state — the
// "unprotected cluster" baseline the CLI uses to show divergence.
//
// The Byzantine verbs (flip/forge/garble-oracle) follow the same split:
// under fail_stop they apply and then throw ByzantineFault at the barrier
// (an omniscient detector, useful for the checkpoint-rollback policies);
// silent, they corrupt state and keep going — which is the honest Byzantine
// model, where detection belongs to authenticated messaging
// (mpc::TamperViolation) and the quarantine policy's attestation
// cross-check, not to the injector. tamper-ckpt events are not applied
// here at all — they live in recovery.hpp's CheckpointTamperer, which
// needs access to the saved snapshot.
#pragma once

#include <optional>
#include <stdexcept>
#include <vector>

#include "fault/fault_plan.hpp"
#include "mpc/simulation.hpp"

namespace mpch::fault {

/// Base of all injected faults; carries the event for provenance.
class InjectedFault : public std::runtime_error {
 public:
  InjectedFault(FaultEvent event, const std::string& what)
      : std::runtime_error(what), event_(event) {}
  const FaultEvent& event() const { return event_; }

 private:
  FaultEvent event_;
};

class MachineCrash : public InjectedFault {
 public:
  using InjectedFault::InjectedFault;
};

class MessageFault : public InjectedFault {
 public:
  using InjectedFault::InjectedFault;
};

class SimulationKilled : public InjectedFault {
 public:
  using InjectedFault::InjectedFault;
};

/// A Byzantine value fault (flip/forge/garble) applied in fail_stop mode.
class ByzantineFault : public InjectedFault {
 public:
  using InjectedFault::InjectedFault;
};

class FaultInjector : public mpc::RoundObserver {
 public:
  explicit FaultInjector(FaultPlan plan, bool fail_stop = true);

  /// Target for garble-oracle events. Unbound (the default), such events
  /// fire as no-ops — plain-model runs have no oracle to corrupt.
  void bind_oracle(hash::LazyRandomOracle* oracle) { oracle_ = oracle; }

  // RoundObserver hooks (see the file comment for the detection model).
  void before_round(std::uint64_t round) override;
  bool machine_runs(std::uint64_t round, std::uint64_t machine) override;
  void after_merge(std::uint64_t round,
                   std::vector<std::vector<mpc::Message>>& next_inboxes) override;

  /// Events that have fired so far (in firing order), for cost reports.
  const std::vector<FaultEvent>& fired() const { return fired_; }
  std::uint64_t faults_fired() const { return fired_.size(); }
  /// Events that can never fire anymore because their round has passed
  /// without a match (e.g. drop index beyond the inbox) are still counted in
  /// fired(); events whose round was never reached are pending.
  std::uint64_t events_planned() const { return plan_.events.size(); }

 private:
  FaultPlan plan_;
  std::vector<bool> consumed_;  ///< one-shot latch per plan event
  bool fail_stop_;
  hash::LazyRandomOracle* oracle_ = nullptr;  ///< garble-oracle target
  std::optional<FaultEvent> pending_crash_;  ///< thrown at the next barrier
  std::vector<FaultEvent> fired_;
};

}  // namespace mpch::fault
