#include "fault/recovery.hpp"

#include <utility>

#include "util/serialize.hpp"

namespace mpch::fault {

Checkpointer::Checkpointer(mpc::MpcConfig config, const hash::LazyRandomOracle* oracle,
                           std::uint64_t every, std::string file_path, bool capture_final)
    : config_(config),
      oracle_(oracle),
      every_(every),
      file_path_(std::move(file_path)),
      capture_final_(capture_final) {
  if (every_ == 0) throw std::invalid_argument("Checkpointer: snapshot cadence must be >= 1");
}

void Checkpointer::after_round(const mpc::RoundSnapshot& snapshot) {
  if (snapshot.completed && !capture_final_) return;  // the run is over; nothing to resume
  if (!snapshot.completed && (snapshot.round + 1) % every_ != 0) return;
  Checkpoint cp = capture(snapshot, config_, oracle_);
  util::BitString encoded = serialize(cp);
  bytes_last_ = (encoded.size() + 7) / 8;
  bytes_total_ += bytes_last_;
  ++checkpoints_taken_;
  if (!file_path_.empty()) util::write_bits_file(file_path_, encoded);
  latest_ = std::move(cp);
}

ChaosHarness::ChaosHarness(mpc::MpcConfig config, OracleFactory oracle_factory)
    : config_(config), oracle_factory_(std::move(oracle_factory)) {}

std::shared_ptr<hash::LazyRandomOracle> ChaosHarness::fresh_oracle() const {
  return oracle_factory_ ? oracle_factory_() : nullptr;
}

ChaosResult ChaosHarness::run_restart(mpc::MpcAlgorithm& algo,
                                      const std::vector<util::BitString>& initial_memory,
                                      const FaultPlan& plan, std::uint64_t checkpoint_every,
                                      const std::string& checkpoint_file) {
  ChaosResult out;
  std::shared_ptr<hash::LazyRandomOracle> oracle = fresh_oracle();
  FaultInjector injector(plan, /*fail_stop=*/true);
  Checkpointer checkpointer(config_, oracle.get(), checkpoint_every, checkpoint_file);
  ObserverChain chain({&injector, &checkpointer});

  auto fill_cost = [&] {
    out.cost.checkpoints_taken = checkpointer.checkpoints_taken();
    out.cost.checkpoint_bytes_last = checkpointer.bytes_last();
    out.cost.checkpoint_bytes_total = checkpointer.bytes_total();
  };

  std::optional<mpc::MpcResumeState> state;  // empty = fresh start
  const std::size_t max_attempts = plan.events.size() + 1;
  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    mpc::MpcSimulation sim(config_, oracle);
    try {
      out.run = state.has_value() ? sim.resume(algo, std::move(*state), &chain)
                                  : sim.run(algo, initial_memory, &chain);
      out.oracle = std::move(oracle);
      fill_cost();
      return out;
    } catch (const InjectedFault& fault) {
      ++out.cost.faults_injected;
      out.fault_log.emplace_back(fault.what());
      if (!checkpointer.latest().has_value()) {
        fill_cost();
        throw UnrecoverableFault(std::string(fault.what()) +
                                 " — no checkpoint exists yet (cadence: every " +
                                 std::to_string(checkpoint_every) +
                                 " round(s)); nothing to restore, cannot recover");
      }
      const Checkpoint& cp = *checkpointer.latest();
      // A kill fires *before* its round executes; crash/message faults
      // poison the round they fire in, so that round re-executes too.
      const bool is_kill = dynamic_cast<const SimulationKilled*>(&fault) != nullptr;
      std::uint64_t lost = fault.event().round - cp.next_round + (is_kill ? 0 : 1);
      ++out.cost.recoveries;
      out.cost.rounds_reexecuted += lost;
      out.cost.machine_rounds_reexecuted += lost * config_.machines;

      // Discard the poisoned execution wholesale: fresh oracle (same seed),
      // memo and counters restored from the snapshot, state rebuilt.
      oracle = fresh_oracle();
      state = make_resume_state(cp, oracle.get());
      checkpointer.rebind_oracle(oracle.get());
      out.fault_log.push_back("recovered: restored checkpoint at round boundary " +
                              std::to_string(cp.next_round) + ", re-executing " +
                              std::to_string(lost) + " round(s)");
    }
  }
  fill_cost();
  throw UnrecoverableFault("fault plan still firing after " + std::to_string(max_attempts) +
                           " recovery attempts — plan: " + plan.describe());
}

ChaosResult ChaosHarness::run_replicate(mpc::MpcAlgorithm& algo,
                                        const std::vector<util::BitString>& initial_memory,
                                        const FaultPlan& plan) {
  ChaosResult out;
  std::shared_ptr<hash::LazyRandomOracle> oracle = fresh_oracle();
  FaultInjector injector(plan, /*fail_stop=*/true);
  // Shadow every round boundary, starting from the pre-round-0 state, so any
  // faulted round has its exact start state on hand.
  Checkpointer shadow(config_, oracle.get(), /*every=*/1);
  shadow.set_latest(initial_checkpoint(config_, initial_memory, oracle.get()));
  ObserverChain chain({&injector, &shadow});

  auto fill_cost = [&] {
    out.cost.checkpoints_taken = shadow.checkpoints_taken();
    out.cost.checkpoint_bytes_last = shadow.bytes_last();
    out.cost.checkpoint_bytes_total = shadow.bytes_total();
  };

  // Re-execute the faulted round from `cp` on a fresh one-round replica;
  // returns its end-of-round snapshot and run result.
  auto run_replica = [&](const Checkpoint& cp, std::uint64_t round,
                         std::shared_ptr<hash::LazyRandomOracle>& replica_oracle)
      -> std::pair<mpc::MpcRunResult, Checkpoint> {
    replica_oracle = fresh_oracle();
    mpc::MpcResumeState rs = make_resume_state(cp, replica_oracle.get());
    mpc::MpcConfig one_round = config_;
    one_round.max_rounds = round + 1;
    Checkpointer capturer(config_, replica_oracle.get(), /*every=*/1, "", /*capture_final=*/true);
    mpc::MpcSimulation replica(one_round, replica_oracle);
    mpc::MpcRunResult res = replica.resume(algo, std::move(rs), &capturer);
    if (!capturer.latest().has_value()) {
      throw ReplicaDivergence("replica of round " + std::to_string(round) +
                              " produced no end-of-round snapshot");
    }
    return {std::move(res), *capturer.latest()};
  };

  std::optional<mpc::MpcResumeState> state;
  const std::size_t max_attempts = plan.events.size() + 1;
  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    mpc::MpcSimulation sim(config_, oracle);
    try {
      out.run = state.has_value() ? sim.resume(algo, std::move(*state), &chain)
                                  : sim.run(algo, initial_memory, &chain);
      out.oracle = std::move(oracle);
      fill_cost();
      return out;
    } catch (const InjectedFault& fault) {
      ++out.cost.faults_injected;
      out.fault_log.emplace_back(fault.what());
      Checkpoint cp = *shadow.latest();  // always present (seeded with initial state)
      ++out.cost.recoveries;

      if (dynamic_cast<const SimulationKilled*>(&fault) != nullptr) {
        // Nothing executed past the shadow; restore and carry on.
        oracle = fresh_oracle();
        state = make_resume_state(cp, oracle.get());
        shadow.rebind_oracle(oracle.get());
        out.fault_log.push_back("recovered: resumed from round boundary " +
                                std::to_string(cp.next_round));
        continue;
      }

      // Crash or message fault inside round r (== cp.next_round, since the
      // shadow tracks every boundary): re-execute r on two independent
      // restored replicas and demand bit-identical end states.
      std::uint64_t round = fault.event().round;
      std::shared_ptr<hash::LazyRandomOracle> oracle_a;
      std::shared_ptr<hash::LazyRandomOracle> oracle_b;
      auto [res_a, cp_a] = run_replica(cp, round, oracle_a);
      auto [res_b, cp_b] = run_replica(cp, round, oracle_b);
      ++out.cost.replica_verifications;
      out.cost.rounds_reexecuted += 2;
      out.cost.machine_rounds_reexecuted += 2 * config_.machines;
      if (serialize(cp_a) != serialize(cp_b) || res_a.output != res_b.output) {
        throw ReplicaDivergence("round " + std::to_string(round) +
                                " re-executed twice from the same state produced different "
                                "results — determinism broken, refusing to continue");
      }
      out.fault_log.push_back("recovered: round " + std::to_string(round) +
                              " re-executed on two replicas, merged states bit-identical");

      if (res_b.completed) {
        out.run = std::move(res_b);
        out.oracle = std::move(oracle_b);
        fill_cost();
        return out;
      }
      // Adopt replica B: its oracle is already at the end-of-round state.
      oracle = std::move(oracle_b);
      state = make_resume_state(cp_b, oracle.get());
      shadow.rebind_oracle(oracle.get());
      shadow.set_latest(std::move(cp_b));
    }
  }
  fill_cost();
  throw UnrecoverableFault("fault plan still firing after " + std::to_string(max_attempts) +
                           " recovery attempts — plan: " + plan.describe());
}

}  // namespace mpch::fault
