#include "fault/recovery.hpp"

#include <utility>

#include "fault/recovery_core.hpp"
#include "util/serialize.hpp"

namespace mpch::fault {

Checkpointer::Checkpointer(mpc::MpcConfig config, const hash::LazyRandomOracle* oracle,
                           std::uint64_t every, std::string file_path, bool capture_final)
    : config_(config),
      oracle_(oracle),
      every_(every),
      file_path_(std::move(file_path)),
      capture_final_(capture_final) {
  if (every_ == 0) throw std::invalid_argument("Checkpointer: snapshot cadence must be >= 1");
}

void Checkpointer::after_round(const mpc::RoundSnapshot& snapshot) {
  if (snapshot.completed && !capture_final_) return;  // the run is over; nothing to resume
  if (!snapshot.completed && !snapshot_due(snapshot.round, every_)) return;
  Checkpoint cp = capture(snapshot, config_, oracle_);
  util::BitString encoded = serialize(cp);
  bytes_last_ = (encoded.size() + 7) / 8;
  bytes_total_ += bytes_last_;
  ++checkpoints_taken_;
  if (!file_path_.empty()) util::write_bits_file(file_path_, encoded);
  latest_ = std::move(cp);
  encoded_latest_ = std::move(encoded);
}

void Checkpointer::set_latest(Checkpoint cp) {
  encoded_latest_ = serialize(cp);
  latest_ = std::move(cp);
}

bool Checkpointer::corrupt_latest_encoded(std::uint64_t bit) {
  if (!encoded_latest_.has_value() || encoded_latest_->empty()) return false;
  std::size_t pos = static_cast<std::size_t>(bit % encoded_latest_->size());
  encoded_latest_->set(pos, !encoded_latest_->get(pos));
  if (!file_path_.empty()) util::write_bits_file(file_path_, *encoded_latest_);
  return true;
}

void CheckpointTamperer::after_round(const mpc::RoundSnapshot& snapshot) {
  for (std::size_t i = 0; i < plan_.events.size(); ++i) {
    const FaultEvent& ev = plan_.events[i];
    if (consumed_[i] || ev.kind != FaultKind::TamperCheckpoint || ev.round != snapshot.round) {
      continue;
    }
    consumed_[i] = true;
    fired_.push_back(ev);
    if (target_ != nullptr) target_->corrupt_latest_encoded(ev.index);
  }
}

ChaosHarness::ChaosHarness(mpc::MpcConfig config, OracleFactory oracle_factory)
    : config_(config), oracle_factory_(std::move(oracle_factory)) {}

std::shared_ptr<hash::LazyRandomOracle> ChaosHarness::fresh_oracle() const {
  return oracle_factory_ ? oracle_factory_() : nullptr;
}

ChaosResult ChaosHarness::run_restart(mpc::MpcAlgorithm& algo,
                                      const std::vector<util::BitString>& initial_memory,
                                      const FaultPlan& plan, std::uint64_t checkpoint_every,
                                      const std::string& checkpoint_file) {
  ChaosResult out;
  std::shared_ptr<hash::LazyRandomOracle> oracle = fresh_oracle();
  FaultInjector injector(plan, /*fail_stop=*/true);
  injector.bind_oracle(oracle.get());
  Checkpointer checkpointer(config_, oracle.get(), checkpoint_every, checkpoint_file);
  CheckpointTamperer tamperer(plan);
  tamperer.set_target(&checkpointer);
  ObserverChain chain({&injector, &checkpointer, &tamperer});

  std::uint64_t caught_faults = 0;
  auto fill_cost = [&] {
    out.cost.faults_injected = caught_faults + tamperer.fired().size();
    out.cost.checkpoints_taken = checkpointer.checkpoints_taken();
    out.cost.checkpoint_bytes_last = checkpointer.bytes_last();
    out.cost.checkpoint_bytes_total = checkpointer.bytes_total();
  };

  std::optional<mpc::MpcResumeState> state;  // empty = fresh start
  const std::size_t max_attempts = plan.events.size() + 1;
  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    mpc::MpcSimulation sim(config_, oracle);
    try {
      out.run = state.has_value() ? sim.resume(algo, std::move(*state), &chain)
                                  : sim.run(algo, initial_memory, &chain);
      out.oracle = std::move(oracle);
      fill_cost();
      return out;
    } catch (const InjectedFault& fault) {
      ++caught_faults;
      out.fault_log.emplace_back(fault.what());
      if (!checkpointer.latest_encoded().has_value()) {
        fill_cost();
        throw UnrecoverableFault(std::string(fault.what()) +
                                 " — no checkpoint exists yet (cadence: every " +
                                 std::to_string(checkpoint_every) +
                                 " round(s)); nothing to restore, cannot recover");
      }
      // Restore from the serialised snapshot so the wire format's integrity
      // checks guard the rollback (CheckpointError on a tampered save).
      Checkpoint cp = deserialize(*checkpointer.latest_encoded());
      // A kill (and a garbled oracle, corrupted before the round ran) fires
      // *before* its round executes; crash/message/byzantine-delivery faults
      // poison the round they fire in, so that round re-executes too. The
      // resume boundary and the lost-round accounting come from the shared
      // decision core (recovery_core.hpp) that mpch-model explores.
      const bool pre_round = dynamic_cast<const SimulationKilled*>(&fault) != nullptr ||
                             fault.event().kind == FaultKind::GarbleOracle;
      const RestartDecision decision =
          plan_restart(pre_round, fault.event().round, cp.next_round);
      const std::uint64_t lost = decision.rounds_lost;
      ++out.cost.recoveries;
      out.cost.rounds_reexecuted += lost;
      out.cost.machine_rounds_reexecuted += lost * config_.machines;

      // Discard the poisoned execution wholesale: fresh oracle (same seed),
      // memo and counters restored from the snapshot, state rebuilt.
      oracle = fresh_oracle();
      state = make_resume_state(cp, oracle.get());
      checkpointer.rebind_oracle(oracle.get());
      injector.bind_oracle(oracle.get());
      out.fault_log.push_back("recovered: restored checkpoint at round boundary " +
                              std::to_string(cp.next_round) + ", re-executing " +
                              std::to_string(lost) + " round(s)");
    }
  }
  fill_cost();
  throw UnrecoverableFault("fault plan still firing after " + std::to_string(max_attempts) +
                           " recovery attempts — plan: " + plan.describe());
}

ChaosResult ChaosHarness::run_replicate(mpc::MpcAlgorithm& algo,
                                        const std::vector<util::BitString>& initial_memory,
                                        const FaultPlan& plan) {
  ChaosResult out;
  std::shared_ptr<hash::LazyRandomOracle> oracle = fresh_oracle();
  FaultInjector injector(plan, /*fail_stop=*/true);
  injector.bind_oracle(oracle.get());
  // Shadow every round boundary, starting from the pre-round-0 state, so any
  // faulted round has its exact start state on hand.
  Checkpointer shadow(config_, oracle.get(), /*every=*/1);
  shadow.set_latest(initial_checkpoint(config_, initial_memory, oracle.get()));
  CheckpointTamperer tamperer(plan);
  tamperer.set_target(&shadow);
  ObserverChain chain({&injector, &shadow, &tamperer});

  std::uint64_t caught_faults = 0;
  auto fill_cost = [&] {
    out.cost.faults_injected = caught_faults + tamperer.fired().size();
    out.cost.checkpoints_taken = shadow.checkpoints_taken();
    out.cost.checkpoint_bytes_last = shadow.bytes_last();
    out.cost.checkpoint_bytes_total = shadow.bytes_total();
  };

  // Re-execute the faulted round from `cp` on a fresh one-round replica;
  // returns its end-of-round snapshot and run result.
  auto run_replica = [&](const Checkpoint& cp, std::uint64_t round,
                         std::shared_ptr<hash::LazyRandomOracle>& replica_oracle)
      -> std::pair<mpc::MpcRunResult, Checkpoint> {
    replica_oracle = fresh_oracle();
    mpc::MpcResumeState rs = make_resume_state(cp, replica_oracle.get());
    mpc::MpcConfig one_round = config_;
    one_round.max_rounds = round + 1;
    Checkpointer capturer(config_, replica_oracle.get(), /*every=*/1, "", /*capture_final=*/true);
    mpc::MpcSimulation replica(one_round, replica_oracle);
    mpc::MpcRunResult res = replica.resume(algo, std::move(rs), &capturer);
    if (!capturer.latest().has_value()) {
      throw ReplicaDivergence("replica of round " + std::to_string(round) +
                              " produced no end-of-round snapshot");
    }
    return {std::move(res), *capturer.latest()};
  };

  std::optional<mpc::MpcResumeState> state;
  const std::size_t max_attempts = plan.events.size() + 1;
  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    mpc::MpcSimulation sim(config_, oracle);
    try {
      out.run = state.has_value() ? sim.resume(algo, std::move(*state), &chain)
                                  : sim.run(algo, initial_memory, &chain);
      out.oracle = std::move(oracle);
      fill_cost();
      return out;
    } catch (const InjectedFault& fault) {
      ++caught_faults;
      out.fault_log.emplace_back(fault.what());
      // Always present (seeded with the initial state); restored through the
      // checksummed wire form so a tampered shadow is rejected, not resumed.
      Checkpoint cp = deserialize(*shadow.latest_encoded());
      ++out.cost.recoveries;

      if (dynamic_cast<const SimulationKilled*>(&fault) != nullptr) {
        // Nothing executed past the shadow; restore and carry on.
        oracle = fresh_oracle();
        state = make_resume_state(cp, oracle.get());
        shadow.rebind_oracle(oracle.get());
        injector.bind_oracle(oracle.get());
        out.fault_log.push_back("recovered: resumed from round boundary " +
                                std::to_string(cp.next_round));
        continue;
      }

      // Crash or message fault inside round r (== cp.next_round, since the
      // shadow tracks every boundary): re-execute r on two independent
      // restored replicas and demand bit-identical end states.
      std::uint64_t round = fault.event().round;
      std::shared_ptr<hash::LazyRandomOracle> oracle_a;
      std::shared_ptr<hash::LazyRandomOracle> oracle_b;
      auto [res_a, cp_a] = run_replica(cp, round, oracle_a);
      auto [res_b, cp_b] = run_replica(cp, round, oracle_b);
      ++out.cost.replica_verifications;
      out.cost.rounds_reexecuted += 2;
      out.cost.machine_rounds_reexecuted += 2 * config_.machines;
      if (serialize(cp_a) != serialize(cp_b) || res_a.output != res_b.output) {
        throw ReplicaDivergence("round " + std::to_string(round) +
                                " re-executed twice from the same state produced different "
                                "results — determinism broken, refusing to continue");
      }
      out.fault_log.push_back("recovered: round " + std::to_string(round) +
                              " re-executed on two replicas, merged states bit-identical");

      if (res_b.completed) {
        out.run = std::move(res_b);
        out.oracle = std::move(oracle_b);
        fill_cost();
        return out;
      }
      // Adopt replica B: its oracle is already at the end-of-round state.
      oracle = std::move(oracle_b);
      state = make_resume_state(cp_b, oracle.get());
      shadow.rebind_oracle(oracle.get());
      injector.bind_oracle(oracle.get());
      shadow.set_latest(std::move(cp_b));
    }
  }
  fill_cost();
  throw UnrecoverableFault("fault plan still firing after " + std::to_string(max_attempts) +
                           " recovery attempts — plan: " + plan.describe());
}

ChaosResult ChaosHarness::run_quarantine(mpc::MpcAlgorithm& algo,
                                         const std::vector<util::BitString>& initial_memory,
                                         const FaultPlan& plan, const QuarantineConfig& qc) {
  if (qc.checkpoint_every == 0) {
    throw std::invalid_argument("run_quarantine: checkpoint cadence must be >= 1");
  }
  ChaosResult out;
  // Byzantine mode: the injector corrupts silently; detection is ours. The
  // retry/strike/escalation decisions live in QuarantineCore
  // (recovery_core.hpp) — the same transition function mpch-model explores —
  // while this harness supplies verdicts and moves the serialised snapshots
  // the core's decisions refer to.
  FaultInjector injector(plan, /*fail_stop=*/false);
  CheckpointTamperer tamperer(plan);
  QuarantineCore core(qc, config_.machines, /*escalation_budget=*/plan.events.size() + 1);

  // The last *verified* round boundary and the periodic escalation target,
  // both kept in serialised form so every restore passes the wire format's
  // integrity checks.
  util::BitString good;
  {
    std::shared_ptr<hash::LazyRandomOracle> oracle0 = fresh_oracle();
    good = serialize(initial_checkpoint(config_, initial_memory, oracle0.get()));
  }
  util::BitString periodic = good;

  struct Step {
    mpc::MpcRunResult res;
    util::BitString encoded;  ///< end-of-round snapshot (post-tamper, if any)
    std::shared_ptr<hash::LazyRandomOracle> oracle;
  };
  // Execute exactly one round from the boundary `enc`. The live attempt
  // carries the injector and the checkpoint tamperer; the clean replica
  // runs bare. Either way the end-of-round state comes back serialised.
  auto step = [&](const util::BitString& enc, bool with_faults) -> Step {
    Step s;
    Checkpoint cp = deserialize(enc);
    s.oracle = fresh_oracle();
    mpc::MpcResumeState rs = make_resume_state(cp, s.oracle.get());
    mpc::MpcConfig one_round = config_;
    one_round.max_rounds = cp.next_round + 1;
    Checkpointer capturer(config_, s.oracle.get(), /*every=*/1, "", /*capture_final=*/true);
    mpc::MpcSimulation sim(one_round, s.oracle);
    if (with_faults) {
      injector.bind_oracle(s.oracle.get());
      tamperer.set_target(&capturer);
      ObserverChain chain({&injector, &capturer, &tamperer});
      s.res = sim.resume(algo, std::move(rs), &chain);
    } else {
      s.res = sim.resume(algo, std::move(rs), &capturer);
    }
    if (!capturer.latest_encoded().has_value()) {
      throw ReplicaDivergence("round " + std::to_string(cp.next_round) +
                              " produced no end-of-round snapshot");
    }
    ++out.cost.checkpoints_taken;
    out.cost.checkpoint_bytes_last = capturer.bytes_last();
    out.cost.checkpoint_bytes_total += capturer.bytes_last();
    s.encoded = *capturer.latest_encoded();
    return s;
  };

  auto finalize = [&] {
    out.cost.faults_injected = injector.faults_fired() + tamperer.fired().size();
  };

  while (core.next_round() < config_.max_rounds) {
    bool run_done = false;
    bool committed = false;
    while (!committed) {
      const std::uint64_t round = core.next_round();
      std::optional<RoundVerdict> verdict;  // set as soon as the attempt is condemned
      std::optional<std::uint64_t> culprit;  // machine localised this attempt

      std::optional<Step> live;
      try {
        live = step(good, /*with_faults=*/true);
      } catch (const mpc::TamperViolation& tv) {
        // Authenticated messaging caught the corruption at the faulted
        // round's own barrier, with the machine already named.
        verdict = RoundVerdict::kDivergentMachine;
        culprit = tv.machine();
        out.fault_log.push_back(std::string("detected: ") + tv.what());
      } catch (const SimulationKilled& kill) {
        verdict = RoundVerdict::kKilled;
        out.fault_log.push_back(std::string("detected: ") + kill.what());
      } catch (const std::exception& e) {
        // A model guard (capacity, query budget) or the algorithm itself
        // tripping over corrupted state is detection too: quarantine the
        // attempt and re-run. A genuine harness bug shows the same way but
        // cannot loop — the retry/escalation budget bounds it and the last
        // message lands in the UnrecoverableFault provenance.
        verdict = RoundVerdict::kDivergentShared;
        out.fault_log.push_back(std::string("detected: live round failed — ") + e.what());
      }

      // Cross-check replica: the same round, re-executed clean from the
      // same verified boundary. Determinism makes inequality == corruption.
      Step ref = step(good, /*with_faults=*/false);
      ++out.cost.attestation_checks;
      ++out.cost.replica_verifications;
      ++out.cost.rounds_reexecuted;
      out.cost.machine_rounds_reexecuted += config_.machines;

      if (!verdict.has_value() && live.has_value()) {
        std::optional<Checkpoint> cp_live;
        try {
          cp_live = deserialize(live->encoded);
        } catch (const CheckpointError& e) {
          verdict = RoundVerdict::kDivergentShared;
          out.fault_log.push_back("detected: round " + std::to_string(round) +
                                  " snapshot audit failed — " + e.what());
        }
        if (!verdict.has_value() && live->encoded == ref.encoded) {
          verdict = RoundVerdict::kClean;
        } else if (!verdict.has_value()) {
          // Localise the offender: first machine whose end-of-round
          // attestation digest disagrees with the clean replica's.
          Checkpoint cp_ref = deserialize(ref.encoded);
          std::vector<std::uint64_t> att_live =
              mpc::attestation_digests(config_.tape_seed, round, cp_live->inboxes);
          std::vector<std::uint64_t> att_ref =
              mpc::attestation_digests(config_.tape_seed, round, cp_ref.inboxes);
          for (std::uint64_t mch = 0; mch < att_live.size() && mch < att_ref.size(); ++mch) {
            if (att_live[mch] != att_ref[mch]) {
              culprit = mch;
              break;
            }
          }
          if (culprit.has_value()) {
            verdict = RoundVerdict::kDivergentMachine;
            out.fault_log.push_back(
                "detected: round " + std::to_string(round) + " attestation mismatch at machine " +
                std::to_string(*culprit) + " (live digest " + std::to_string(att_live[*culprit]) +
                " != replica digest " + std::to_string(att_ref[*culprit]) + ")");
          } else {
            verdict = RoundVerdict::kDivergentShared;
            out.fault_log.push_back("detected: round " + std::to_string(round) +
                                    " diverged from its clean replica in shared state (oracle "
                                    "memo or trace) — all machine attestations agree");
          }
        }
      }

      const QuarantineAction action = core.on_verdict(*verdict, culprit);
      if (culprit.has_value()) {
        ++out.cost.quarantine_strikes;
        out.fault_log.push_back("quarantine: machine " + std::to_string(*culprit) + " struck (" +
                                std::to_string(core.strikes(*culprit)) + " strike(s)), its round " +
                                std::to_string(round) + " execution discarded");
      }
      switch (action) {
        case QuarantineAction::kCommit: {
          good = std::move(live->encoded);
          if (core.took_periodic()) periodic = good;
          out.run = std::move(live->res);
          out.oracle = std::move(live->oracle);
          run_done = out.run.completed;
          committed = true;
          break;
        }
        case QuarantineAction::kUnrecoverable: {
          finalize();
          throw UnrecoverableFault("quarantine exhausted its escalation budget (" +
                                   std::to_string(core.escalation_budget()) + ") and round " +
                                   std::to_string(round) + " still diverges — plan: " +
                                   plan.describe());
        }
        case QuarantineAction::kEscalate: {
          const bool machine_over_limit =
              culprit.has_value() && core.strikes(*culprit) >= qc.escalate_after_strikes;
          ++out.cost.escalations;
          ++out.cost.recoveries;
          Checkpoint pc = deserialize(periodic);
          out.cost.rounds_reexecuted += round - pc.next_round;
          out.cost.machine_rounds_reexecuted += (round - pc.next_round) * config_.machines;
          out.fault_log.push_back(
              (machine_over_limit
                   ? "escalation: machine " + std::to_string(*culprit) + " reached " +
                         std::to_string(core.strikes(*culprit)) + " strike(s); "
                   : "escalation: round " + std::to_string(round) + " exhausted its " +
                         std::to_string(qc.max_round_retries) + " retries; ") +
              "restarting from the periodic checkpoint at round boundary " +
              std::to_string(pc.next_round));
          good = periodic;
          committed = true;  // leave the attempt loop; the round rolled back
          break;
        }
        case QuarantineAction::kRetry: {
          ++out.cost.retries_used;
          ++out.cost.recoveries;
          out.fault_log.push_back("recovered: re-running round " + std::to_string(round) +
                                  " on fresh replicas (retry " + std::to_string(core.attempt()) +
                                  ")");
          break;
        }
      }
    }
    if (run_done) {
      finalize();
      return out;
    }
  }
  finalize();
  return out;  // max_rounds exhausted without completion, like a plain run
}

}  // namespace mpch::fault
