// fault_plan.hpp — deterministic fault schedules for MPC executions.
//
// A FaultPlan is a list of events, each pinned to a round (and, where it
// applies, a machine / message index). Plans are data, not code: the same
// plan against the same (strategy, seed, threads) configuration injects the
// same faults at the same barriers on every run, which is what lets the
// chaos suite assert bit-identical recovery. Plans come from three places:
// explicit construction, the CLI grammar parsed by parse(), or the seeded
// generator random() (a util::Rng stream, so a seed fully determines the
// schedule).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mpch::fault {

enum class FaultKind {
  CrashMachine,       ///< machine does not run in the round; its state is lost
  DropMessage,        ///< one delivered message vanishes at the barrier
  DuplicateMessage,   ///< one delivered message arrives twice
  KillSimulation,     ///< the whole execution dies between rounds
};

const char* to_string(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::KillSimulation;
  std::uint64_t round = 0;
  /// CrashMachine: the machine that dies. Drop/Duplicate: the receiving
  /// machine whose post-merge inbox is tampered with. Unused for kill.
  std::uint64_t machine = 0;
  /// Drop/Duplicate: index into the receiver's merged inbox for the round.
  std::uint64_t index = 0;

  /// Human-readable provenance, e.g. "crash machine 2 in round 3".
  std::string describe() const;

  bool operator==(const FaultEvent&) const = default;
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  /// Parse the CLI grammar: semicolon-separated events, each
  /// `kind:key=value,...`:
  ///   crash:machine=2,round=3
  ///   drop:round=1,to=0,index=0
  ///   dup:round=2,to=3,index=1
  ///   kill:round=4
  ///   random:seed=7,events=3,rounds=10,machines=4
  /// Throws std::invalid_argument naming the offending token.
  static FaultPlan parse(const std::string& spec);

  /// A seeded schedule of `events` faults over rounds [0, max_round) and
  /// machines [0, machines): same seed, same plan, every time.
  static FaultPlan random(std::uint64_t seed, std::uint64_t events, std::uint64_t max_round,
                          std::uint64_t machines);

  std::string describe() const;

  bool operator==(const FaultPlan&) const = default;
};

}  // namespace mpch::fault
