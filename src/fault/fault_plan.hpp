// fault_plan.hpp — deterministic fault schedules for MPC executions.
//
// A FaultPlan is a list of events, each pinned to a round (and, where it
// applies, a machine / message index). Plans are data, not code: the same
// plan against the same (strategy, seed, threads) configuration injects the
// same faults at the same barriers on every run, which is what lets the
// chaos suite assert bit-identical recovery. Plans come from three places:
// explicit construction, the CLI grammar parsed by parse(), or the seeded
// generator random() (a util::Rng stream, so a seed fully determines the
// schedule).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mpch::fault {

enum class FaultKind {
  CrashMachine,       ///< machine does not run in the round; its state is lost
  DropMessage,        ///< one delivered message vanishes at the barrier
  DuplicateMessage,   ///< one delivered message arrives twice
  KillSimulation,     ///< the whole execution dies between rounds
  // Byzantine (value-fault) verbs: the adversary corrupts state instead of
  // losing it. Silent by construction — detection is the job of
  // authenticated messaging and the quarantine policy, not the injector.
  FlipBit,            ///< one bit of a delivered inbox flips at the barrier
  ForgeMessage,       ///< one delivered message claims a spoofed sender
  GarbleOracle,       ///< one memoised random-oracle answer is corrupted
  TamperCheckpoint,   ///< a saved checkpoint is mutated after the fact
};

const char* to_string(FaultKind kind);

struct FaultEvent {
  FaultKind kind = FaultKind::KillSimulation;
  std::uint64_t round = 0;
  /// CrashMachine: the machine that dies. Drop/Duplicate/Flip/Forge: the
  /// receiving machine whose post-merge inbox is tampered with. Unused for
  /// kill, garble-oracle, and tamper-ckpt.
  std::uint64_t machine = 0;
  /// Drop/Duplicate/Forge: index into the receiver's merged inbox for the
  /// round. FlipBit: flat bit offset into the receiver's concatenated inbox
  /// payloads. GarbleOracle: index into the oracle's memo (sorted input
  /// order). TamperCheckpoint: bit offset into the encoded snapshot.
  std::uint64_t index = 0;
  /// ForgeMessage: the spoofed sender id written into the message. Unused
  /// by every other kind (kept 0 so plans compare and describe stably).
  std::uint64_t aux = 0;

  /// Human-readable provenance, e.g. "crash machine 2 in round 3".
  std::string describe() const;

  bool operator==(const FaultEvent&) const = default;
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  /// Parse the CLI grammar: semicolon-separated events, each
  /// `kind:key=value,...`:
  ///   crash:machine=2,round=3
  ///   drop:round=1,to=0,index=0
  ///   dup:round=2,to=3,index=1
  ///   kill:round=4
  ///   flip:machine=1,round=2,bit=5
  ///   forge:round=2,to=0,index=0,from=3
  ///   garble-oracle:round=3,entry=0
  ///   tamper-ckpt:round=3,bit=100
  ///   random:seed=7,events=3,rounds=10,machines=4
  /// Throws std::invalid_argument naming the offending token.
  static FaultPlan parse(const std::string& spec);

  /// A seeded schedule of `events` faults over rounds [0, max_round) and
  /// machines [0, machines): same seed, same plan, every time.
  static FaultPlan random(std::uint64_t seed, std::uint64_t events, std::uint64_t max_round,
                          std::uint64_t machines);

  std::string describe() const;

  bool operator==(const FaultPlan&) const = default;
};

}  // namespace mpch::fault
