#include "fault/recovery_core.hpp"

#include <stdexcept>

#include "fault/recovery.hpp"

namespace mpch::fault {

bool snapshot_due(std::uint64_t round, std::uint64_t every) {
  return (round + 1) % every == 0;
}

RestartDecision plan_restart(bool pre_round_fault, std::uint64_t fault_round,
                             std::uint64_t checkpoint_round, RestartOptions options) {
  if (checkpoint_round > fault_round) {
    throw std::invalid_argument("plan_restart: checkpoint boundary " +
                                std::to_string(checkpoint_round) + " is past the fault at round " +
                                std::to_string(fault_round));
  }
  RestartDecision d;
  const std::uint64_t poisoned = (pre_round_fault || !options.count_poisoned_round) ? 0 : 1;
  d.resume_round = options.resume_from_checkpoint
                       ? checkpoint_round
                       : fault_round + (pre_round_fault ? 0 : 1);
  d.rounds_lost = fault_round - checkpoint_round + poisoned;
  return d;
}

QuarantineCore::QuarantineCore(const QuarantineConfig& qc, std::uint64_t machines,
                               std::uint64_t escalation_budget, QuarantineCoreOptions options)
    : max_round_retries_(qc.max_round_retries),
      escalate_after_strikes_(qc.escalate_after_strikes),
      checkpoint_every_(qc.checkpoint_every),
      escalation_budget_(escalation_budget),
      options_(options),
      strikes_(machines, 0) {
  if (checkpoint_every_ == 0) {
    throw std::invalid_argument("QuarantineCore: checkpoint cadence must be >= 1");
  }
}

QuarantineAction QuarantineCore::on_verdict(RoundVerdict verdict,
                                            std::optional<std::uint64_t> culprit) {
  took_periodic_ = false;
  if (verdict == RoundVerdict::kClean) {
    ++next_round_;
    attempt_ = 0;
    if (next_round_ % checkpoint_every_ == 0) {
      periodic_round_ = next_round_;
      took_periodic_ = true;
    }
    return QuarantineAction::kCommit;
  }

  if (culprit.has_value() && options_.count_strikes) {
    strikes_.at(*culprit) += 1;
  }
  const bool machine_over_limit =
      culprit.has_value() && strikes_.at(*culprit) >= escalate_after_strikes_;
  if (attempt_ >= max_round_retries_ || machine_over_limit) {
    if (escalations_ >= escalation_budget_) return QuarantineAction::kUnrecoverable;
    ++escalations_;
    next_round_ = periodic_round_;
    attempt_ = 0;
    return QuarantineAction::kEscalate;
  }
  if (options_.count_retries) ++attempt_;
  return QuarantineAction::kRetry;
}

}  // namespace mpch::fault
