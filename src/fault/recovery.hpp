// recovery.hpp — recovery policies over checkpoints and fault injection.
//
// Three policies, all exploiting the determinism PR 1 bought:
//
//  * RestartFromCheckpoint (ChaosHarness::run_restart) — snapshot every j
//    rounds; when a fault is detected, discard the poisoned execution
//    entirely (including its oracle, whose query counter the aborted rounds
//    inflated), rebuild a fresh oracle from the seed, restore the memo from
//    the snapshot, and resume. Because every run is bit-deterministic, the
//    resumed execution is indistinguishable from one that never faulted.
//
//  * ReplicateRound (ChaosHarness::run_replicate) — keep a shadow snapshot
//    of every round boundary (j = 1, plus the pre-round-0 state); on a
//    fault, re-execute just the faulted round on TWO independent restored
//    replicas and require their serialised end states to be bit-identical
//    before adopting one. The comparison is the determinism theorem used as
//    a runtime check: any divergence means the substrate itself broke, and
//    it surfaces as ReplicaDivergence instead of silently continuing.
//
//  * Quarantine (ChaosHarness::run_quarantine) — the Byzantine policy. The
//    first two assume fail-stop detection (the injector throws); quarantine
//    assumes nothing: faults apply *silently* and the policy itself detects
//    them by stepping the live execution one round at a time from the last
//    verified boundary and cross-checking each committed round against a
//    clean replica of the same round (serialised-state equality, the
//    determinism theorem as an integrity oracle). On divergence it
//    localises the offending machine by comparing per-machine attestation
//    digests (mpc/auth.hpp), records a strike against it, quarantines the
//    faulty attempt (all of its state is discarded — the stateless-machine
//    model makes a re-executed machine indistinguishable from a replaced
//    one), and re-runs the round with bounded retries; repeated divergence
//    escalates to a RestartFromCheckpoint-style rollback to the last
//    periodic checkpoint. With MpcConfig::authenticate_messages on,
//    flip/forge faults additionally surface as typed mpc::TamperViolation
//    at the faulted round's own barrier, before any cross-check runs.
//
// All report RecoveryCost: what the faults cost in re-executed rounds,
// machine-rounds, verification replicas, and snapshot bytes.
//
// Restores always go through the serialised (checksummed) snapshot, never
// the in-memory struct, so post-save checkpoint tampering (the tamper-ckpt
// verb, applied by CheckpointTamperer) is caught by the wire format's
// integrity checks at restore time instead of resuming corrupted state.
#pragma once

#include <exception>

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fault/checkpoint.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "mpc/simulation.hpp"

namespace mpch::fault {

/// RoundObserver that snapshots the execution every `every` rounds at the
/// barrier. Keeps the latest checkpoint in memory, optionally mirrors it to
/// a file, and tracks byte costs. Rebind the oracle after a restore — the
/// replacement oracle is a different object at the same logical state.
class Checkpointer : public mpc::RoundObserver {
 public:
  Checkpointer(mpc::MpcConfig config, const hash::LazyRandomOracle* oracle, std::uint64_t every,
               std::string file_path = "", bool capture_final = false);

  void after_round(const mpc::RoundSnapshot& snapshot) override;

  void rebind_oracle(const hash::LazyRandomOracle* oracle) { oracle_ = oracle; }
  /// Seed the checkpointer with a pre-existing snapshot (e.g. the initial
  /// state) so rollback before the first periodic snapshot is possible.
  void set_latest(Checkpoint cp);

  const std::optional<Checkpoint>& latest() const { return latest_; }
  /// The latest snapshot in its serialised wire form — what recovery
  /// policies restore from, so the checksummed format actually guards the
  /// rollback path (a post-save mutation throws CheckpointError on restore).
  const std::optional<util::BitString>& latest_encoded() const { return encoded_latest_; }
  /// Chaos hook (the tamper-ckpt verb): XOR-flip bit `bit % size` of the
  /// stored encoded snapshot and of its file mirror, modelling storage
  /// corruption after a successful save. Returns false if no snapshot
  /// exists yet. The in-memory decoded `latest()` is left intact — the
  /// point is that restores must not trust it.
  bool corrupt_latest_encoded(std::uint64_t bit);

  std::uint64_t checkpoints_taken() const { return checkpoints_taken_; }
  std::uint64_t bytes_last() const { return bytes_last_; }
  std::uint64_t bytes_total() const { return bytes_total_; }

 private:
  mpc::MpcConfig config_;
  const hash::LazyRandomOracle* oracle_;
  std::uint64_t every_;
  std::string file_path_;
  bool capture_final_;
  std::optional<Checkpoint> latest_;
  std::optional<util::BitString> encoded_latest_;
  std::uint64_t checkpoints_taken_ = 0;
  std::uint64_t bytes_last_ = 0;
  std::uint64_t bytes_total_ = 0;
};

/// Applies TamperCheckpoint events: at the named round's barrier, after the
/// target Checkpointer has saved, flip one bit of the saved encoded
/// snapshot (and its file mirror). Chain it *after* the Checkpointer so the
/// save happens first. All other event kinds are ignored — pass the same
/// plan given to the FaultInjector; each half consumes its own verbs.
class CheckpointTamperer : public mpc::RoundObserver {
 public:
  explicit CheckpointTamperer(FaultPlan plan)
      : plan_(std::move(plan)), consumed_(plan_.events.size(), false) {}

  /// The Checkpointer whose saved snapshot gets mutated. Rebind freely —
  /// the quarantine policy re-creates its per-round capturer every step.
  void set_target(Checkpointer* target) { target_ = target; }

  void after_round(const mpc::RoundSnapshot& snapshot) override;

  const std::vector<FaultEvent>& fired() const { return fired_; }

 private:
  FaultPlan plan_;
  std::vector<bool> consumed_;
  Checkpointer* target_ = nullptr;
  std::vector<FaultEvent> fired_;
};

/// Fans every hook out to its children in order. Every child sees every
/// barrier even when an earlier child throws: exceptions are collected and
/// the *first* one rethrown after the sweep, so e.g. a Checkpointer chained
/// after a throwing Injector still observes the hook (an injector firing in
/// before_round must not blind the observers behind it to the barrier).
/// Order still encodes detection priority — the first thrower wins.
class ObserverChain : public mpc::RoundObserver {
 public:
  explicit ObserverChain(std::vector<mpc::RoundObserver*> children)
      : children_(std::move(children)) {}

  void before_round(std::uint64_t round) override {
    sweep([&](mpc::RoundObserver* c) { c->before_round(round); });
  }
  bool machine_runs(std::uint64_t round, std::uint64_t machine) override {
    bool runs = true;
    sweep([&](mpc::RoundObserver* c) { runs = c->machine_runs(round, machine) && runs; });
    return runs;
  }
  void after_merge(std::uint64_t round,
                   std::vector<std::vector<mpc::Message>>& next_inboxes) override {
    sweep([&](mpc::RoundObserver* c) { c->after_merge(round, next_inboxes); });
  }
  void after_round(const mpc::RoundSnapshot& snapshot) override {
    sweep([&](mpc::RoundObserver* c) { c->after_round(snapshot); });
  }

 private:
  template <typename Deliver>
  void sweep(Deliver&& deliver) {
    std::exception_ptr first;
    for (auto* c : children_) {
      try {
        deliver(c);
      } catch (...) {
        if (!first) first = std::current_exception();
      }
    }
    if (first) std::rethrow_exception(first);
  }

  std::vector<mpc::RoundObserver*> children_;
};

/// What the faults cost, beyond the fault-free execution.
struct RecoveryCost {
  std::uint64_t faults_injected = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t rounds_reexecuted = 0;          ///< extra rounds vs fault-free
  std::uint64_t machine_rounds_reexecuted = 0;  ///< extra machine-rounds
  std::uint64_t replica_verifications = 0;      ///< per-round equality checks
  std::uint64_t checkpoints_taken = 0;
  std::uint64_t checkpoint_bytes_last = 0;
  std::uint64_t checkpoint_bytes_total = 0;
  // Quarantine-policy accounting.
  std::uint64_t attestation_checks = 0;   ///< rounds cross-checked against a replica
  std::uint64_t quarantine_strikes = 0;   ///< machine-localised divergences
  std::uint64_t retries_used = 0;         ///< round re-runs after a detection
  std::uint64_t escalations = 0;          ///< rollbacks to the periodic checkpoint
};

/// Retry/backoff schedule of the quarantine policy.
struct QuarantineConfig {
  /// Re-runs of a diverged round before escalating (faults are one-shot, so
  /// the first retry is normally already clean).
  std::uint64_t max_round_retries = 2;
  /// Strikes against one machine before escalating even if retries remain —
  /// the analogue of taking a persistently flaky node out of rotation.
  std::uint64_t escalate_after_strikes = 3;
  /// Cadence of the periodic checkpoint that escalation rolls back to (the
  /// RestartFromCheckpoint fallback inside quarantine).
  std::uint64_t checkpoint_every = 4;
};

struct ChaosResult {
  mpc::MpcRunResult run;
  RecoveryCost cost;
  std::vector<std::string> fault_log;  ///< provenance of every fired fault + recovery
  /// The surviving execution's oracle (the fresh instance installed by the
  /// last restore), for transcript/memo inspection. Null for plain-model.
  std::shared_ptr<hash::LazyRandomOracle> oracle;
};

/// A detected fault that no policy could recover from; carries provenance.
class UnrecoverableFault : public std::runtime_error {
 public:
  explicit UnrecoverableFault(const std::string& what) : std::runtime_error(what) {}
};

/// ReplicateRound's verification failed: two fault-free re-executions of the
/// same round from the same state diverged. Determinism is broken.
class ReplicaDivergence : public std::runtime_error {
 public:
  explicit ReplicaDivergence(const std::string& what) : std::runtime_error(what) {}
};

class ChaosHarness {
 public:
  /// Builds a *fresh* oracle at the pre-execution state (same seed every
  /// call); null for plain-model algorithms. Called once per execution
  /// attempt — restores re-derive the memo into a new instance so wasted
  /// queries from aborted rounds vanish.
  using OracleFactory = std::function<std::shared_ptr<hash::LazyRandomOracle>()>;

  ChaosHarness(mpc::MpcConfig config, OracleFactory oracle_factory);

  /// RestartFromCheckpoint: snapshot every `checkpoint_every` rounds; on a
  /// fault, restore the latest snapshot and resume. Throws UnrecoverableFault
  /// if a fault lands before the first snapshot. `checkpoint_file`, when
  /// nonempty, mirrors each snapshot to disk.
  ChaosResult run_restart(mpc::MpcAlgorithm& algo,
                          const std::vector<util::BitString>& initial_memory,
                          const FaultPlan& plan, std::uint64_t checkpoint_every,
                          const std::string& checkpoint_file = "");

  /// ReplicateRound: shadow-snapshot every round; on a fault, re-execute the
  /// faulted round twice on independent restored replicas, require their end
  /// states to serialise identically (ReplicaDivergence otherwise), then
  /// adopt the verified state and continue.
  ChaosResult run_replicate(mpc::MpcAlgorithm& algo,
                            const std::vector<util::BitString>& initial_memory,
                            const FaultPlan& plan);

  /// Quarantine (Byzantine) policy: faults apply silently; every round is
  /// stepped from the last verified boundary and cross-checked against a
  /// clean replica (see the file comment for the full state machine).
  /// Detection provenance — typed violations, localised machines, strikes,
  /// escalations — lands in the fault log; the returned run is bit-identical
  /// to a fault-free execution or an exception explains why not
  /// (UnrecoverableFault after the retry/escalation budget is exhausted).
  ChaosResult run_quarantine(mpc::MpcAlgorithm& algo,
                             const std::vector<util::BitString>& initial_memory,
                             const FaultPlan& plan, const QuarantineConfig& qc = {});

 private:
  std::shared_ptr<hash::LazyRandomOracle> fresh_oracle() const;

  mpc::MpcConfig config_;
  OracleFactory oracle_factory_;
};

}  // namespace mpch::fault
