// recovery.hpp — recovery policies over checkpoints and fault injection.
//
// Two policies, both exploiting the determinism PR 1 bought:
//
//  * RestartFromCheckpoint (ChaosHarness::run_restart) — snapshot every j
//    rounds; when a fault is detected, discard the poisoned execution
//    entirely (including its oracle, whose query counter the aborted rounds
//    inflated), rebuild a fresh oracle from the seed, restore the memo from
//    the snapshot, and resume. Because every run is bit-deterministic, the
//    resumed execution is indistinguishable from one that never faulted.
//
//  * ReplicateRound (ChaosHarness::run_replicate) — keep a shadow snapshot
//    of every round boundary (j = 1, plus the pre-round-0 state); on a
//    fault, re-execute just the faulted round on TWO independent restored
//    replicas and require their serialised end states to be bit-identical
//    before adopting one. The comparison is the determinism theorem used as
//    a runtime check: any divergence means the substrate itself broke, and
//    it surfaces as ReplicaDivergence instead of silently continuing.
//
// Both report RecoveryCost: what the faults cost in re-executed rounds,
// machine-rounds, and snapshot bytes.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "fault/checkpoint.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "mpc/simulation.hpp"

namespace mpch::fault {

/// RoundObserver that snapshots the execution every `every` rounds at the
/// barrier. Keeps the latest checkpoint in memory, optionally mirrors it to
/// a file, and tracks byte costs. Rebind the oracle after a restore — the
/// replacement oracle is a different object at the same logical state.
class Checkpointer : public mpc::RoundObserver {
 public:
  Checkpointer(mpc::MpcConfig config, const hash::LazyRandomOracle* oracle, std::uint64_t every,
               std::string file_path = "", bool capture_final = false);

  void after_round(const mpc::RoundSnapshot& snapshot) override;

  void rebind_oracle(const hash::LazyRandomOracle* oracle) { oracle_ = oracle; }
  /// Seed the checkpointer with a pre-existing snapshot (e.g. the initial
  /// state) so rollback before the first periodic snapshot is possible.
  void set_latest(Checkpoint cp) { latest_ = std::move(cp); }

  const std::optional<Checkpoint>& latest() const { return latest_; }
  std::uint64_t checkpoints_taken() const { return checkpoints_taken_; }
  std::uint64_t bytes_last() const { return bytes_last_; }
  std::uint64_t bytes_total() const { return bytes_total_; }

 private:
  mpc::MpcConfig config_;
  const hash::LazyRandomOracle* oracle_;
  std::uint64_t every_;
  std::string file_path_;
  bool capture_final_;
  std::optional<Checkpoint> latest_;
  std::uint64_t checkpoints_taken_ = 0;
  std::uint64_t bytes_last_ = 0;
  std::uint64_t bytes_total_ = 0;
};

/// Fans every hook out to its children in order. Children that throw abort
/// the chain — order therefore encodes detection priority (the harness puts
/// the injector before the checkpointer so a faulted round is never
/// snapshotted).
class ObserverChain : public mpc::RoundObserver {
 public:
  explicit ObserverChain(std::vector<mpc::RoundObserver*> children)
      : children_(std::move(children)) {}

  void before_round(std::uint64_t round) override {
    for (auto* c : children_) c->before_round(round);
  }
  bool machine_runs(std::uint64_t round, std::uint64_t machine) override {
    bool runs = true;
    for (auto* c : children_) runs = c->machine_runs(round, machine) && runs;
    return runs;
  }
  void after_merge(std::uint64_t round,
                   std::vector<std::vector<mpc::Message>>& next_inboxes) override {
    for (auto* c : children_) c->after_merge(round, next_inboxes);
  }
  void after_round(const mpc::RoundSnapshot& snapshot) override {
    for (auto* c : children_) c->after_round(snapshot);
  }

 private:
  std::vector<mpc::RoundObserver*> children_;
};

/// What the faults cost, beyond the fault-free execution.
struct RecoveryCost {
  std::uint64_t faults_injected = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t rounds_reexecuted = 0;          ///< extra rounds vs fault-free
  std::uint64_t machine_rounds_reexecuted = 0;  ///< extra machine-rounds
  std::uint64_t replica_verifications = 0;      ///< ReplicateRound equality checks
  std::uint64_t checkpoints_taken = 0;
  std::uint64_t checkpoint_bytes_last = 0;
  std::uint64_t checkpoint_bytes_total = 0;
};

struct ChaosResult {
  mpc::MpcRunResult run;
  RecoveryCost cost;
  std::vector<std::string> fault_log;  ///< provenance of every fired fault + recovery
  /// The surviving execution's oracle (the fresh instance installed by the
  /// last restore), for transcript/memo inspection. Null for plain-model.
  std::shared_ptr<hash::LazyRandomOracle> oracle;
};

/// A detected fault that no policy could recover from; carries provenance.
class UnrecoverableFault : public std::runtime_error {
 public:
  explicit UnrecoverableFault(const std::string& what) : std::runtime_error(what) {}
};

/// ReplicateRound's verification failed: two fault-free re-executions of the
/// same round from the same state diverged. Determinism is broken.
class ReplicaDivergence : public std::runtime_error {
 public:
  explicit ReplicaDivergence(const std::string& what) : std::runtime_error(what) {}
};

class ChaosHarness {
 public:
  /// Builds a *fresh* oracle at the pre-execution state (same seed every
  /// call); null for plain-model algorithms. Called once per execution
  /// attempt — restores re-derive the memo into a new instance so wasted
  /// queries from aborted rounds vanish.
  using OracleFactory = std::function<std::shared_ptr<hash::LazyRandomOracle>()>;

  ChaosHarness(mpc::MpcConfig config, OracleFactory oracle_factory);

  /// RestartFromCheckpoint: snapshot every `checkpoint_every` rounds; on a
  /// fault, restore the latest snapshot and resume. Throws UnrecoverableFault
  /// if a fault lands before the first snapshot. `checkpoint_file`, when
  /// nonempty, mirrors each snapshot to disk.
  ChaosResult run_restart(mpc::MpcAlgorithm& algo,
                          const std::vector<util::BitString>& initial_memory,
                          const FaultPlan& plan, std::uint64_t checkpoint_every,
                          const std::string& checkpoint_file = "");

  /// ReplicateRound: shadow-snapshot every round; on a fault, re-execute the
  /// faulted round twice on independent restored replicas, require their end
  /// states to serialise identically (ReplicaDivergence otherwise), then
  /// adopt the verified state and continue.
  ChaosResult run_replicate(mpc::MpcAlgorithm& algo,
                            const std::vector<util::BitString>& initial_memory,
                            const FaultPlan& plan);

 private:
  std::shared_ptr<hash::LazyRandomOracle> fresh_oracle() const;

  mpc::MpcConfig config_;
  OracleFactory oracle_factory_;
};

}  // namespace mpch::fault
