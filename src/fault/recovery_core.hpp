// recovery_core.hpp — the recovery policies' decision logic, as pure
// transition functions.
//
// ChaosHarness (fault/recovery.hpp) interleaves two very different things:
// heavyweight mechanics (serialised checkpoints, oracle rebuilds, replica
// executions) and a small deterministic decision layer — where to resume
// after a fault, how many rounds that costs, when a diverged round is
// retried versus escalated, when a struck machine forces the escalation
// early, when the escalation budget is spent. This file is the decision
// layer alone, factored out so that:
//
//   * the production harness and mpch-model (src/check/) run the *same*
//     transitions — the explorer enumerates every bounded fault/adversary
//     schedule against this code, the harness runs the one schedule the
//     injector drew; and
//   * the logic is testable without building a single checkpoint.
//
// The options structs exist solely for mpch-model's mutation self-check
// (each disabled rule is a seeded protocol bug the checker must catch);
// production call sites always construct with defaults.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

namespace mpch::fault {

struct QuarantineConfig;  // fault/recovery.hpp

/// True when the Checkpointer's periodic cadence snapshots at the barrier
/// after `round` (cadence `every`): boundaries every `every` completed
/// rounds. Shared by Checkpointer::after_round and the recovery model so
/// the explorer and production can never disagree about where a rollback
/// can land.
bool snapshot_due(std::uint64_t round, std::uint64_t every);

/// Mutation hooks for mpch-model. Production restarts use the defaults.
struct RestartOptions {
  /// Resume from the checkpoint boundary, re-executing everything after it
  /// (including the poisoned round). Off = the seeded "resume-past-fault"
  /// mutation: resume just after the fault instead, committing whatever the
  /// poisoned execution produced.
  bool resume_from_checkpoint = true;
  /// Count the poisoned round itself in rounds_lost for in-round faults.
  /// Off = the seeded "undercount-lost-rounds" mutation (the off-by-one the
  /// accounting tests would miss if it were introduced symmetrically).
  bool count_poisoned_round = true;
};

/// Where a RestartFromCheckpoint recovery resumes and what it costs.
struct RestartDecision {
  std::uint64_t resume_round = 0;  ///< round boundary execution restarts from
  std::uint64_t rounds_lost = 0;   ///< rounds that must be re-executed
};

/// The restart policy's decision for a fault at `fault_round` given the
/// latest checkpoint boundary `checkpoint_round` (<= fault_round). A
/// pre-round fault (kill, garbled oracle) fires before its round executes,
/// so that round was never poisoned; an in-round fault poisons the round it
/// fires in, which therefore re-executes too.
RestartDecision plan_restart(bool pre_round_fault, std::uint64_t fault_round,
                             std::uint64_t checkpoint_round, RestartOptions options = {});

/// The verdict of one quarantined round attempt, as the harness's detection
/// machinery reports it: the live attempt matched its clean replica
/// (kClean), diverged with the offender localised by attestation digests
/// (kDivergentMachine), diverged in shared state with all machine
/// attestations agreeing (kDivergentShared), or died outright (kKilled).
enum class RoundVerdict : std::uint8_t {
  kClean,
  kDivergentMachine,
  kDivergentShared,
  kKilled,
};

/// What the quarantine policy does next.
enum class QuarantineAction : std::uint8_t {
  kCommit,         ///< adopt the verified round, advance
  kRetry,          ///< discard the attempt, re-run the same round
  kEscalate,       ///< roll back to the periodic checkpoint boundary
  kUnrecoverable,  ///< escalation budget spent; the harness throws
};

/// Mutation hooks for mpch-model. Production quarantine uses the defaults.
struct QuarantineCoreOptions {
  /// Count failed attempts toward the per-round retry limit. Off = the
  /// seeded "skip-retry-count" mutation (a persistently diverging round
  /// retries past its budget instead of escalating).
  bool count_retries = true;
  /// Record strikes against localised offenders. Off = the seeded
  /// "skip-strike-count" mutation (a persistently faulty machine is never
  /// taken out via early escalation).
  bool count_strikes = true;
};

/// The quarantine policy's strike/retry/escalation state machine: feed it
/// one RoundVerdict per attempt, obey the action it returns. It tracks the
/// current round, the attempt count on that round, per-machine strikes, the
/// periodic rollback boundary, and the escalation budget — everything the
/// policy decides with; the serialised snapshots those decisions move around
/// stay with the harness.
class QuarantineCore {
 public:
  /// `qc` supplies max_round_retries / escalate_after_strikes /
  /// checkpoint_every; `escalation_budget` bounds total escalations (the
  /// harness uses plan size + 1).
  QuarantineCore(const QuarantineConfig& qc, std::uint64_t machines,
                 std::uint64_t escalation_budget, QuarantineCoreOptions options = {});

  /// One attempt's verdict for round next_round(). `culprit` names the
  /// machine attestation localised (kDivergentMachine only). Mutates the
  /// machine state per the returned action:
  ///   kCommit       — next_round advanced, attempt reset, periodic boundary
  ///                   updated when the cadence is due;
  ///   kRetry        — attempt counted, same round;
  ///   kEscalate     — next_round rolled back to periodic_round(), attempt
  ///                   reset, escalation counted;
  ///   kUnrecoverable — state unchanged; the policy is out of budget.
  QuarantineAction on_verdict(RoundVerdict verdict, std::optional<std::uint64_t> culprit);

  std::uint64_t next_round() const { return next_round_; }
  std::uint64_t periodic_round() const { return periodic_round_; }
  /// Failed attempts already spent on next_round().
  std::uint64_t attempt() const { return attempt_; }
  std::uint64_t strikes(std::uint64_t machine) const { return strikes_.at(machine); }
  std::uint64_t machines() const { return strikes_.size(); }
  std::uint64_t escalations() const { return escalations_; }
  std::uint64_t escalation_budget() const { return escalation_budget_; }
  /// True iff the last kCommit moved the periodic rollback boundary.
  bool took_periodic() const { return took_periodic_; }

 private:
  std::uint64_t max_round_retries_;
  std::uint64_t escalate_after_strikes_;
  std::uint64_t checkpoint_every_;
  std::uint64_t escalation_budget_;
  QuarantineCoreOptions options_;

  std::uint64_t next_round_ = 0;
  std::uint64_t periodic_round_ = 0;
  std::uint64_t attempt_ = 0;
  std::uint64_t escalations_ = 0;
  bool took_periodic_ = false;
  std::vector<std::uint64_t> strikes_;
};

}  // namespace mpch::fault
