// machine.hpp — a small word-RAM, executable both natively and under MPC.
//
// The paper's introduction observes the trivial upper bound: "an MPC
// algorithm can compute the function in T rounds by emulating the RAM
// computation step by step, even when each machine has O(log S) local
// memory size." To make that remark checkable we need an actual RAM: this
// is a minimal 64-bit word machine (8 registers, load/store/ALU/branch)
// with deterministic semantics and step accounting. strategies/ram_emulation
// runs the same programs distributed across MPC machines, one instruction
// per round-trip, and tests assert bit-identical final states.
#pragma once

#include <array>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace mpch::ram {

enum class Opcode : std::uint8_t {
  kLoadImm,   ///< reg[a] = imm
  kLoad,      ///< reg[a] = mem[reg[b]]
  kStore,     ///< mem[reg[b]] = reg[a]
  kMov,       ///< reg[a] = reg[b]
  kAdd,       ///< reg[a] = reg[b] + reg[c]
  kSub,       ///< reg[a] = reg[b] - reg[c]
  kMul,       ///< reg[a] = reg[b] * reg[c]
  kAnd,       ///< reg[a] = reg[b] & reg[c]
  kOr,        ///< reg[a] = reg[b] | reg[c]
  kXor,       ///< reg[a] = reg[b] ^ reg[c]
  kShl,       ///< reg[a] = reg[b] << (reg[c] & 63)
  kShr,       ///< reg[a] = reg[b] >> (reg[c] & 63)
  kLessThan,  ///< reg[a] = reg[b] < reg[c] ? 1 : 0
  kJump,      ///< pc = imm
  kJumpIfZero,     ///< if (reg[a] == 0) pc = imm
  kJumpIfNotZero,  ///< if (reg[a] != 0) pc = imm
  kHalt,
};

struct Instruction {
  Opcode op = Opcode::kHalt;
  std::uint8_t a = 0;
  std::uint8_t b = 0;
  std::uint8_t c = 0;
  std::uint64_t imm = 0;

  bool operator==(const Instruction&) const = default;
};

/// Structural validation shared by the RamMachine constructor and the static
/// verifier (verify/verifier.hpp): every opcode within the enum, every
/// register index < kNumRegisters, every jump target within the program.
/// Throws std::invalid_argument naming the offending instruction; a program
/// that passes can never trip step()'s per-instruction guards.
void validate_program(const std::vector<Instruction>& program);

/// Assembly-ish helpers so programs read decently in tests/benches.
namespace asm_ops {
inline Instruction loadi(std::uint8_t r, std::uint64_t imm) {
  return {Opcode::kLoadImm, r, 0, 0, imm};
}
inline Instruction load(std::uint8_t dst, std::uint8_t addr_reg) {
  return {Opcode::kLoad, dst, addr_reg, 0, 0};
}
inline Instruction store(std::uint8_t src, std::uint8_t addr_reg) {
  return {Opcode::kStore, src, addr_reg, 0, 0};
}
inline Instruction mov(std::uint8_t dst, std::uint8_t src) {
  return {Opcode::kMov, dst, src, 0, 0};
}
inline Instruction add(std::uint8_t d, std::uint8_t x, std::uint8_t y) {
  return {Opcode::kAdd, d, x, y, 0};
}
inline Instruction sub(std::uint8_t d, std::uint8_t x, std::uint8_t y) {
  return {Opcode::kSub, d, x, y, 0};
}
inline Instruction mul(std::uint8_t d, std::uint8_t x, std::uint8_t y) {
  return {Opcode::kMul, d, x, y, 0};
}
inline Instruction band(std::uint8_t d, std::uint8_t x, std::uint8_t y) {
  return {Opcode::kAnd, d, x, y, 0};
}
inline Instruction bxor(std::uint8_t d, std::uint8_t x, std::uint8_t y) {
  return {Opcode::kXor, d, x, y, 0};
}
inline Instruction lt(std::uint8_t d, std::uint8_t x, std::uint8_t y) {
  return {Opcode::kLessThan, d, x, y, 0};
}
inline Instruction jmp(std::uint64_t target) { return {Opcode::kJump, 0, 0, 0, target}; }
inline Instruction jz(std::uint8_t r, std::uint64_t target) {
  return {Opcode::kJumpIfZero, r, 0, 0, target};
}
inline Instruction jnz(std::uint8_t r, std::uint64_t target) {
  return {Opcode::kJumpIfNotZero, r, 0, 0, target};
}
inline Instruction halt() { return {Opcode::kHalt, 0, 0, 0, 0}; }
}  // namespace asm_ops

constexpr std::size_t kNumRegisters = 8;

struct RamState {
  std::uint64_t pc = 0;
  std::array<std::uint64_t, kNumRegisters> regs{};
  bool halted = false;

  bool operator==(const RamState& rhs) const {
    return pc == rhs.pc && regs == rhs.regs && halted == rhs.halted;
  }
};

/// Effect of one instruction, separated so the MPC emulator can apply the
/// same transition function remotely.
struct StepEffect {
  RamState next;                 ///< register/pc state after the step
  bool is_load = false;          ///< needs mem[load_addr] folded into next.regs[a]
  bool is_store = false;         ///< writes store_value to mem[store_addr]
  std::uint64_t mem_addr = 0;
  std::uint64_t store_value = 0;
  std::uint8_t load_target = 0;  ///< register receiving a loaded value
};

class RamMachine {
 public:
  RamMachine(std::vector<Instruction> program, std::vector<std::uint64_t> memory);

  /// The pure transition function: compute the effect of executing the
  /// instruction at `state.pc` (memory reads are deferred into the effect).
  static StepEffect step(const std::vector<Instruction>& program, const RamState& state);

  /// Run natively until halt or `max_steps`; returns the executed step count.
  std::uint64_t run(std::uint64_t max_steps = 1 << 24);

  const RamState& state() const { return state_; }
  const std::vector<std::uint64_t>& memory() const { return memory_; }
  const std::vector<Instruction>& program() const { return program_; }
  std::uint64_t steps_executed() const { return steps_; }

 private:
  std::vector<Instruction> program_;
  std::vector<std::uint64_t> memory_;
  RamState state_;
  std::uint64_t steps_ = 0;
};

}  // namespace mpch::ram
