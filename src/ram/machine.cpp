#include "ram/machine.hpp"

namespace mpch::ram {

void validate_program(const std::vector<Instruction>& program) {
  for (std::size_t pc = 0; pc < program.size(); ++pc) {
    const Instruction& ins = program[pc];
    const auto raw_op = static_cast<std::uint8_t>(ins.op);
    if (raw_op > static_cast<std::uint8_t>(Opcode::kHalt)) {
      throw std::invalid_argument("validate_program: pc " + std::to_string(pc) +
                                  ": opcode " + std::to_string(raw_op) + " out of range");
    }
    auto check_reg = [&](std::uint8_t r, const char* field) {
      if (r >= kNumRegisters) {
        throw std::invalid_argument("validate_program: pc " + std::to_string(pc) +
                                    ": register " + field + "=" + std::to_string(r) +
                                    " out of range");
      }
    };
    check_reg(ins.a, "a");
    check_reg(ins.b, "b");
    check_reg(ins.c, "c");
    if (ins.op == Opcode::kJump || ins.op == Opcode::kJumpIfZero ||
        ins.op == Opcode::kJumpIfNotZero) {
      if (ins.imm >= program.size()) {
        throw std::invalid_argument("validate_program: pc " + std::to_string(pc) +
                                    ": jump target " + std::to_string(ins.imm) +
                                    " past program end " + std::to_string(program.size()));
      }
    }
  }
}

RamMachine::RamMachine(std::vector<Instruction> program, std::vector<std::uint64_t> memory)
    : program_(std::move(program)), memory_(std::move(memory)) {
  if (program_.empty()) throw std::invalid_argument("RamMachine: empty program");
  validate_program(program_);
}

StepEffect RamMachine::step(const std::vector<Instruction>& program, const RamState& state) {
  if (state.halted) throw std::logic_error("RamMachine::step: machine already halted");
  if (state.pc >= program.size()) {
    throw std::out_of_range("RamMachine::step: pc " + std::to_string(state.pc) +
                            " past program end");
  }
  const Instruction& ins = program[state.pc];
  auto check_reg = [](std::uint8_t r) {
    if (r >= kNumRegisters) throw std::out_of_range("RamMachine: bad register");
  };
  check_reg(ins.a);
  check_reg(ins.b);
  check_reg(ins.c);

  StepEffect eff;
  eff.next = state;
  eff.next.pc = state.pc + 1;
  auto& regs = eff.next.regs;

  switch (ins.op) {
    case Opcode::kLoadImm:
      regs[ins.a] = ins.imm;
      break;
    case Opcode::kLoad:
      eff.is_load = true;
      eff.mem_addr = state.regs[ins.b];
      eff.load_target = ins.a;
      break;
    case Opcode::kStore:
      eff.is_store = true;
      eff.mem_addr = state.regs[ins.b];
      eff.store_value = state.regs[ins.a];
      break;
    case Opcode::kMov:
      regs[ins.a] = state.regs[ins.b];
      break;
    case Opcode::kAdd:
      regs[ins.a] = state.regs[ins.b] + state.regs[ins.c];
      break;
    case Opcode::kSub:
      regs[ins.a] = state.regs[ins.b] - state.regs[ins.c];
      break;
    case Opcode::kMul:
      regs[ins.a] = state.regs[ins.b] * state.regs[ins.c];
      break;
    case Opcode::kAnd:
      regs[ins.a] = state.regs[ins.b] & state.regs[ins.c];
      break;
    case Opcode::kOr:
      regs[ins.a] = state.regs[ins.b] | state.regs[ins.c];
      break;
    case Opcode::kXor:
      regs[ins.a] = state.regs[ins.b] ^ state.regs[ins.c];
      break;
    case Opcode::kShl:
      regs[ins.a] = state.regs[ins.b] << (state.regs[ins.c] & 63);
      break;
    case Opcode::kShr:
      regs[ins.a] = state.regs[ins.b] >> (state.regs[ins.c] & 63);
      break;
    case Opcode::kLessThan:
      regs[ins.a] = state.regs[ins.b] < state.regs[ins.c] ? 1 : 0;
      break;
    case Opcode::kJump:
      eff.next.pc = ins.imm;
      break;
    case Opcode::kJumpIfZero:
      if (state.regs[ins.a] == 0) eff.next.pc = ins.imm;
      break;
    case Opcode::kJumpIfNotZero:
      if (state.regs[ins.a] != 0) eff.next.pc = ins.imm;
      break;
    case Opcode::kHalt:
      eff.next.halted = true;
      eff.next.pc = state.pc;
      break;
  }
  return eff;
}

std::uint64_t RamMachine::run(std::uint64_t max_steps) {
  std::uint64_t executed = 0;
  while (!state_.halted && executed < max_steps) {
    StepEffect eff = step(program_, state_);
    if (eff.is_load) {
      if (eff.mem_addr >= memory_.size()) {
        throw std::out_of_range("RamMachine: load address " + std::to_string(eff.mem_addr) +
                                " out of memory of " + std::to_string(memory_.size()));
      }
      eff.next.regs[eff.load_target] = memory_[eff.mem_addr];
    }
    if (eff.is_store) {
      if (eff.mem_addr >= memory_.size()) {
        throw std::out_of_range("RamMachine: store address out of memory");
      }
      memory_[eff.mem_addr] = eff.store_value;
    }
    state_ = eff.next;
    ++executed;
    ++steps_;
  }
  return executed;
}

}  // namespace mpch::ram
