// ram_meter.hpp — cost accounting for the sequential RAM model.
//
// Theorem 3.1's upper-bound side says Line^RO is computable "using memory of
// size O(S) in O(T·n) time by a RAM computation". RamMeter is how the
// library *measures* that: evaluators charge oracle queries (each costs n
// time units — "making a query to RO takes O(n) time"), word operations, and
// live memory, and the meter tracks totals and the peak. Experiment E7
// checks the measured totals scale as T·n and S.
#pragma once

#include <cstdint>
#include <stdexcept>

namespace mpch::ram {

struct RamCosts {
  std::uint64_t oracle_queries = 0;  ///< number of RO queries
  std::uint64_t time_units = 0;      ///< n per query + 1 per word op
  std::uint64_t word_ops = 0;        ///< plain RAM operations
  std::uint64_t peak_memory_bits = 0;
};

class RamMeter {
 public:
  /// `oracle_query_cost` is the paper's n (time per RO query).
  explicit RamMeter(std::uint64_t oracle_query_cost) : query_cost_(oracle_query_cost) {}

  void charge_query() {
    ++costs_.oracle_queries;
    costs_.time_units += query_cost_;
  }

  void charge_ops(std::uint64_t ops = 1) {
    costs_.word_ops += ops;
    costs_.time_units += ops;
  }

  /// Track live memory; allocate/free must balance.
  void allocate_bits(std::uint64_t bits) {
    live_bits_ += bits;
    if (live_bits_ > costs_.peak_memory_bits) costs_.peak_memory_bits = live_bits_;
  }

  void free_bits(std::uint64_t bits) {
    if (bits > live_bits_) throw std::logic_error("RamMeter: freeing more bits than live");
    live_bits_ -= bits;
  }

  std::uint64_t live_bits() const { return live_bits_; }
  const RamCosts& costs() const { return costs_; }

 private:
  std::uint64_t query_cost_;
  std::uint64_t live_bits_ = 0;
  RamCosts costs_;
};

}  // namespace mpch::ram
