// programs.hpp — the canonical word-RAM programs checked into this repo.
//
// One definition instead of seven copies: tests, benches, and tools all pull
// the same instruction sequences from here, and corpus() enumerates every
// program together with a runnable memory image so mpch-verify (and the CI
// lint job behind it) can statically verify each checked-in program exactly
// as it is executed elsewhere in the tree.
//
// Every loop below uses the same guard idiom — a counter incremented by a
// constant, compared with kLessThan against a bound, followed by the
// conditional exit branch — which is the pattern the verifier's loop-bound
// analysis (verify/abstract_interpreter) knows how to prove terminating.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ram/machine.hpp"

namespace mpch::ram::programs {

/// Sum mem[0..n-1] into R0 — the workhorse program used by the RAM-emulation
/// tests, benches, and the chaos/Byzantine harnesses.
inline std::vector<Instruction> sum(std::uint64_t n) {
  using namespace asm_ops;
  return {
      loadi(0, 0),   //  0: acc = 0
      loadi(1, 0),   //  1: i = 0
      loadi(2, n),   //  2: n
      loadi(5, 1),   //  3: one
      lt(3, 1, 2),   //  4: i < n ?
      jz(3, 10),     //  5: done
      load(4, 1),    //  6: mem[i]
      add(0, 0, 4),  //  7: acc += mem[i]
      add(1, 1, 5),  //  8: ++i
      jmp(4),        //  9
      halt(),        // 10
  };
}

/// In-place reversal of mem[0..n-1] via paired loads/stores.
inline std::vector<Instruction> reverse(std::uint64_t n) {
  using namespace asm_ops;
  return {
      loadi(1, 0),      //  0: lo = 0
      loadi(2, n - 1),  //  1: hi = n-1
      loadi(5, 1),      //  2: one
      lt(3, 1, 2),      //  3: lo < hi ?
      jz(3, 12),        //  4: done
      load(4, 1),       //  5: a = mem[lo]
      load(6, 2),       //  6: b = mem[hi]
      store(6, 1),      //  7: mem[lo] = b
      store(4, 2),      //  8: mem[hi] = a
      add(1, 1, 5),     //  9: ++lo
      sub(2, 2, 5),     // 10: --hi
      jmp(3),           // 11
      halt(),           // 12
  };
}

/// Pointer chasing: R0 = mem[R0], repeated `hops` times, starting from
/// address 0. The RAM-side mirror of the paper's pointer-chasing hard
/// instances: every load address is data-dependent, so a static bound on the
/// memory footprint must come from the memory *contents* (the verifier's
/// MemoryModel), not from the program text.
inline std::vector<Instruction> pointer_chase(std::uint64_t hops) {
  using namespace asm_ops;
  return {
      loadi(0, 0),    // 0: cursor = 0
      loadi(1, 0),    // 1: i = 0
      loadi(2, hops), // 2: hops
      loadi(5, 1),    // 3: one
      lt(3, 1, 2),    // 4: i < hops ?
      jz(3, 9),       // 5: done
      load(0, 0),     // 6: cursor = mem[cursor]
      add(1, 1, 5),   // 7: ++i
      jmp(4),         // 8
      halt(),         // 9
  };
}

/// Iterative Fibonacci entirely in registers (no memory traffic): R0 = F(k).
inline std::vector<Instruction> fibonacci(std::uint64_t k) {
  using namespace asm_ops;
  return {
      loadi(0, 0),   //  0: a = F(0)
      loadi(1, 1),   //  1: b = F(1)
      loadi(2, 0),   //  2: i = 0
      loadi(3, k),   //  3: k
      loadi(5, 1),   //  4: one
      lt(4, 2, 3),   //  5: i < k ?
      jz(4, 12),     //  6: done
      add(6, 0, 1),  //  7: t = a + b
      mov(0, 1),     //  8: a = b
      mov(1, 6),     //  9: b = t
      add(2, 2, 5),  // 10: ++i
      jmp(5),        // 11
      halt(),        // 12
  };
}

/// Store loop: mem[i] = base + i for i in 0..n-1 — exercises store-address
/// range inference (the footprint comes from the stores, not the image).
inline std::vector<Instruction> fill(std::uint64_t n, std::uint64_t base) {
  using namespace asm_ops;
  return {
      loadi(0, base),  //  0: val = base
      loadi(1, 0),     //  1: i = 0
      loadi(2, n),     //  2: n
      loadi(5, 1),     //  3: one
      lt(3, 1, 2),     //  4: i < n ?
      jz(3, 10),       //  5: done
      store(0, 1),     //  6: mem[i] = val
      add(0, 0, 5),    //  7: ++val
      add(1, 1, 5),    //  8: ++i
      jmp(4),          //  9
      halt(),          // 10
  };
}

/// A checked-in program plus the memory image it runs against. `memory` is a
/// valid native RamMachine image (loads and stores stay in range), so every
/// corpus entry is both statically verifiable and concretely runnable.
struct NamedProgram {
  std::string name;
  std::vector<Instruction> program;
  std::vector<std::uint64_t> memory;
  std::uint64_t steps_per_round = 1;  ///< emulation cadence used by the tools
};

/// Every checked-in RAM program. mpch-verify iterates this list; keep new
/// programs registered here so the CI lint job verifies them.
inline std::vector<NamedProgram> corpus() {
  std::vector<NamedProgram> all;
  {
    std::vector<std::uint64_t> memory(8);
    for (std::size_t i = 0; i < memory.size(); ++i) memory[i] = i + 1;
    all.push_back({"sum", sum(memory.size()), memory, 1});
  }
  {
    std::vector<std::uint64_t> memory{1, 2, 3, 4, 5, 6};
    all.push_back({"reverse", reverse(memory.size()), memory, 2});
  }
  {
    // A 16-cycle ring: mem[i] = (i+1) mod 16, chased for 8 hops. Contents
    // stay in [0, 15], which is exactly what bounds the load range.
    std::vector<std::uint64_t> memory(16);
    for (std::size_t i = 0; i < memory.size(); ++i) memory[i] = (i + 1) % memory.size();
    all.push_back({"pointer-chase", pointer_chase(8), memory, 1});
  }
  all.push_back({"fibonacci", fibonacci(10), {}, 4});
  all.push_back({"fill", fill(8, 100), std::vector<std::uint64_t>(8, 0), 2});
  return all;
}

}  // namespace mpch::ram::programs
