// interval.hpp — closed u64 intervals, the abstract domain of the verifier.
//
// An Interval [lo, hi] over-approximates the set of values a register (or a
// memory word) can hold. Transfer functions are sound for the word-RAM's
// wrapping 64-bit semantics: whenever a result could wrap, the function
// returns top ([0, 2^64-1]) rather than a wrong tight bound. There is no
// bottom element — unreachable states are represented by absent entries in
// the interpreter's per-pc state table instead.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <limits>
#include <optional>
#include <string>

namespace mpch::verify {

struct Interval {
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;

  static constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();

  static Interval all() { return {0, kMax}; }
  static Interval constant(std::uint64_t v) { return {v, v}; }

  bool is_constant() const { return lo == hi; }
  bool is_top() const { return lo == 0 && hi == kMax; }
  bool contains(std::uint64_t v) const { return lo <= v && v <= hi; }
  bool operator==(const Interval&) const = default;

  Interval join(const Interval& rhs) const {
    return {std::min(lo, rhs.lo), std::max(hi, rhs.hi)};
  }

  /// Widening: any bound that moved since `prev` jumps straight to the
  /// extreme, guaranteeing the fixpoint iteration terminates.
  Interval widen_from(const Interval& prev) const {
    return {lo < prev.lo ? 0 : lo, hi > prev.hi ? kMax : hi};
  }

  std::string to_string() const {
    std::string out;
    if (is_constant()) {
      out = "{";
      out += std::to_string(lo);
      out += "}";
      return out;
    }
    out = "[";
    out += std::to_string(lo);
    out += ", ";
    out += hi == kMax ? "max" : std::to_string(hi);
    out += "]";
    return out;
  }
};

/// Intersection; empty when the interpreter proves an edge infeasible.
inline std::optional<Interval> interval_meet(const Interval& a, const Interval& b) {
  const std::uint64_t lo = std::max(a.lo, b.lo);
  const std::uint64_t hi = std::min(a.hi, b.hi);
  if (lo > hi) return std::nullopt;
  return Interval{lo, hi};
}

inline bool add_overflows(std::uint64_t a, std::uint64_t b) { return Interval::kMax - a < b; }

inline Interval interval_add(const Interval& a, const Interval& b) {
  if (add_overflows(a.hi, b.hi)) return Interval::all();
  return {a.lo + b.lo, a.hi + b.hi};
}

inline Interval interval_sub(const Interval& a, const Interval& b) {
  if (a.lo < b.hi) return Interval::all();  // some pair may wrap below zero
  return {a.lo - b.hi, a.hi - b.lo};
}

inline Interval interval_mul(const Interval& a, const Interval& b) {
  if (a.hi != 0 && b.hi > Interval::kMax / a.hi) return Interval::all();
  return {a.lo * b.lo, a.hi * b.hi};
}

inline Interval interval_and(const Interval& a, const Interval& b) {
  return {0, std::min(a.hi, b.hi)};
}

/// Smallest all-ones mask covering v (0 -> 0, 5 -> 7, 8 -> 15).
inline std::uint64_t bit_mask_for(std::uint64_t v) {
  return v == 0 ? 0 : (Interval::kMax >> std::countl_zero(v));
}

inline Interval interval_or(const Interval& a, const Interval& b) {
  return {std::max(a.lo, b.lo), bit_mask_for(a.hi) | bit_mask_for(b.hi)};
}

inline Interval interval_xor(const Interval& a, const Interval& b) {
  return {0, bit_mask_for(a.hi) | bit_mask_for(b.hi)};
}

/// The machine masks shift counts with & 63 before shifting.
inline Interval effective_shift(const Interval& s) {
  if (s.is_constant()) return Interval::constant(s.lo & 63);
  if (s.hi <= 63) return s;  // masking is the identity on [0, 63]
  return {0, 63};
}

inline Interval interval_shl(const Interval& a, const Interval& shift) {
  const Interval s = effective_shift(shift);
  if (a.hi > (Interval::kMax >> s.hi)) return Interval::all();  // may shift bits out
  return {a.lo << s.lo, a.hi << s.hi};
}

inline Interval interval_shr(const Interval& a, const Interval& shift) {
  const Interval s = effective_shift(shift);
  return {a.lo >> s.hi, a.hi >> s.lo};
}

inline Interval interval_lt(const Interval& a, const Interval& b) {
  if (a.hi < b.lo) return Interval::constant(1);   // always a < b
  if (a.lo >= b.hi) return Interval::constant(0);  // never a < b
  return {0, 1};
}

}  // namespace mpch::verify
