// verifier.hpp — entry point of the static verifier.
//
// verify_program runs the structural bytecode checks (the load-time mirror of
// RamMachine's runtime guards: opcode/register/jump-target validity, no
// fall-off-the-end), then CFG-level hygiene (unreachable code, use-before-def
// against the implicit zero-initialized registers), and finally the abstract
// interpreter (verify/abstract_interpreter.hpp) for termination, step bounds,
// and memory footprints. Reports render as text (format()) or JSON
// (to_json()) for the mpch-verify CLI.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ram/machine.hpp"
#include "verify/abstract_interpreter.hpp"
#include "verify/diagnostics.hpp"

namespace mpch::verify {

struct VerifyOptions {
  MemoryModel memory;   ///< what to assume about the initial memory image
  bool analyze = true;  ///< run the abstract-interpretation pass when structure is valid
};

struct VerifyReport {
  std::string program;
  std::vector<Finding> findings;
  bool structurally_valid = false;
  std::optional<ProgramFacts> facts;  ///< present when the analysis pass ran

  /// No error-severity findings (warnings allowed).
  bool ok() const { return !has_errors(findings); }
  /// No findings at all — the bar for checked-in corpus programs.
  bool clean() const { return findings.empty(); }

  std::string format() const;
  std::string to_json() const;
};

VerifyReport verify_program(const std::string& name,
                            const std::vector<ram::Instruction>& program,
                            const VerifyOptions& options = {});

}  // namespace mpch::verify
