// abstract_interpreter.hpp — interval analysis over word-RAM programs.
//
// A classic worklist fixpoint over the interval domain (verify/interval.hpp),
// with widening for termination and branch refinement on the `lt; jz/jnz`
// guard idiom so loop counters keep tight bounds. On top of the fixpoint sits
// a loop-bound pass: for each natural loop (verify/cfg.hpp) it looks for a
// guard `lt rc, x, y` feeding the exit branch, proves x non-decreasing and y
// non-increasing by constant strides, and bounds the trip count by
// ceil((y0 - x0) / stride). The per-pc products of (trips + 1) then give a
// worst-case step count, and load/store address intervals give the touched
// memory footprint — the facts verify/envelope.hpp turns into a derived
// RAM-emulation ProtocolSpec.
//
// Everything here over-approximates: `terminates == true` and the bounds are
// proofs; `terminates == false` merely means no proof was found.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "ram/machine.hpp"
#include "verify/diagnostics.hpp"
#include "verify/interval.hpp"

namespace mpch::verify {

/// What the analyzer assumes about the initial memory image: addresses
/// [0, words) are mapped and every initial word's value lies in `values`.
/// Data-dependent addressing (pointer chasing) is only boundable when the
/// contents are bounded, which is why the model carries a value interval.
struct MemoryModel {
  std::uint64_t words = 0;
  Interval values = Interval::constant(0);

  static MemoryModel from_words(const std::vector<std::uint64_t>& memory);
};

struct LoopFact {
  std::uint64_t header_pc = 0;  ///< first pc of the loop header block
  bool bounded = false;
  std::uint64_t max_trips = 0;  ///< guard passes (body iterations), valid iff bounded
  std::string note;             ///< guard description, or why no bound was proven
};

struct ProgramFacts {
  bool terminates = false;      ///< true only with a proof
  std::uint64_t max_steps = 0;  ///< worst-case executed instructions, valid iff terminates

  bool has_loads = false;
  bool has_stores = false;
  Interval load_addrs;            ///< valid iff has_loads
  Interval store_addrs;           ///< valid iff has_stores
  std::uint64_t max_loads = 0;    ///< valid iff terminates
  std::uint64_t max_stores = 0;   ///< valid iff terminates
  std::uint64_t touched_words = 0;  ///< mapped image plus store range (saturating)

  std::vector<LoopFact> loops;
  std::vector<Finding> findings;

  std::string summary() const;
};

/// Run the full analysis (fixpoint + loop bounds + footprint). The program
/// must already be structurally valid (verify_program runs those checks
/// first and only calls this afterwards).
ProgramFacts analyze_program(const std::vector<ram::Instruction>& program,
                             const MemoryModel& memory);

}  // namespace mpch::verify
