// envelope.hpp — derive a RAM-emulation ProtocolSpec from verified facts.
//
// The RAM-emulation strategy's declared spec is a function of two hand-fed
// hints: the memory footprint (distinct addresses touched) and the worst-case
// step count. With the abstract interpreter those hints stop being trusted
// inputs: termination + max_steps + touched_words are *proven* upper bounds,
// and the spec built from them is the inferred envelope. The sandwich check
// then pins it from both sides — runtime RoundStats peaks must fit under it
// (spec_soundness), and it must fit under whatever a human declared
// (check_spec_dominance).
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/protocol_spec.hpp"
#include "ram/machine.hpp"
#include "verify/abstract_interpreter.hpp"

namespace mpch::verify {

struct InferredRamSpec {
  std::uint64_t memory_words = 0;  ///< derived footprint hint
  std::uint64_t max_steps = 0;     ///< derived step-bound hint
  analysis::ProtocolSpec spec;     ///< RAM-emulation envelope built from the derived hints
};

/// Build the RAM-emulation spec for `machines`/`steps_per_round` from
/// `facts`. Throws std::invalid_argument when the facts cannot support a
/// finite envelope: termination unproven, or an unbounded store range.
InferredRamSpec infer_ram_emulation_spec(const std::vector<ram::Instruction>& program,
                                         const ProgramFacts& facts, std::uint64_t machines,
                                         std::uint64_t steps_per_round);

}  // namespace mpch::verify
