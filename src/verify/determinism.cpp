#include "verify/determinism.hpp"

namespace mpch::verify {

util::BitString TranscriptReplayOracle::query(const util::BitString& input) {
  const std::uint64_t index = position_++;
  if (index >= transcript_.size()) {
    if (!diverged_) {
      diverged_ = true;
      first_divergence_ = index;
    }
    return util::BitString(output_bits_);  // zeros; the stream already diverged
  }
  const auto& [recorded_query, recorded_answer] = transcript_[index];
  if (!(input == recorded_query) && !diverged_) {
    diverged_ = true;
    first_divergence_ = index;
  }
  return recorded_answer;
}

ReplayAuditReport audit_round_program(compress::RoundProgram& program,
                                      const util::BitString& memory,
                                      hash::RandomOracle& oracle) {
  // Pass 1: record the transcript.
  compress::LoggingOracle logger(oracle);
  std::vector<util::BitString> answers;
  class AnswerTap final : public hash::RandomOracle {
   public:
    AnswerTap(hash::RandomOracle& inner, std::vector<util::BitString>& answers)
        : inner_(&inner), answers_(&answers) {}
    util::BitString query(const util::BitString& input) override {
      util::BitString answer = inner_->query(input);
      answers_->push_back(answer);
      return answer;
    }
    std::size_t input_bits() const override { return inner_->input_bits(); }
    std::size_t output_bits() const override { return inner_->output_bits(); }
    std::uint64_t total_queries() const override { return inner_->total_queries(); }

   private:
    hash::RandomOracle* inner_;
    std::vector<util::BitString>* answers_;
  } tap(logger, answers);
  program.run(memory, tap);

  std::vector<std::pair<util::BitString, util::BitString>> transcript;
  transcript.reserve(logger.log().size());
  for (std::size_t i = 0; i < logger.log().size(); ++i) {
    transcript.emplace_back(logger.log()[i], answers[i]);
  }

  // Pass 2: replay with the recorded answers and compare the query stream.
  TranscriptReplayOracle replay(transcript, oracle.input_bits(), oracle.output_bits());
  program.run(memory, replay);

  ReplayAuditReport report;
  report.recorded_queries = transcript.size();
  report.replayed_queries = replay.position();
  if (replay.diverged()) {
    report.deterministic = false;
    report.first_divergence = replay.first_divergence();
    report.message = "query stream diverged at query " +
                     std::to_string(replay.first_divergence()) + " of " +
                     std::to_string(transcript.size()) + " recorded";
  } else if (replay.position() != transcript.size()) {
    report.deterministic = false;
    report.first_divergence = replay.position();
    report.message = "replay issued " + std::to_string(replay.position()) + " queries but " +
                     std::to_string(transcript.size()) + " were recorded";
  } else {
    report.deterministic = true;
    report.message = "query stream is a pure function of (memory, answers): " +
                     std::to_string(transcript.size()) + " queries replayed identically";
  }
  return report;
}

}  // namespace mpch::verify
