// determinism.hpp — replay audit of the A2 purity contract.
//
// The compression proofs (Claims 3.7/A.4) re-run a machine's round program
// during decoding and assume its query stream is a pure function of (memory,
// answers so far). audit_round_program certifies that operationally: run A2
// once recording the (query, answer) transcript, then run it again against a
// replay oracle that serves the recorded answers positionally and checks the
// query stream matches byte for byte. A divergence means the program consults
// hidden state (global RNG, mutable members, wall clock) and would break the
// encoder/decoder agreement the counting argument depends on.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "compress/round_program.hpp"
#include "hash/random_oracle.hpp"
#include "util/bitstring.hpp"

namespace mpch::verify {

/// Oracle that replays a recorded transcript: query i is answered with the
/// recorded answer i, and a mismatch between the incoming query and the
/// recorded one is tallied as a divergence. Queries past the transcript end
/// are divergences answered with zeros.
class TranscriptReplayOracle final : public hash::RandomOracle {
 public:
  TranscriptReplayOracle(std::vector<std::pair<util::BitString, util::BitString>> transcript,
                         std::size_t input_bits, std::size_t output_bits)
      : transcript_(std::move(transcript)), input_bits_(input_bits), output_bits_(output_bits) {}

  util::BitString query(const util::BitString& input) override;

  std::size_t input_bits() const override { return input_bits_; }
  std::size_t output_bits() const override { return output_bits_; }
  std::uint64_t total_queries() const override { return position_; }

  std::uint64_t position() const { return position_; }
  bool diverged() const { return diverged_; }
  std::uint64_t first_divergence() const { return first_divergence_; }

 private:
  std::vector<std::pair<util::BitString, util::BitString>> transcript_;
  std::size_t input_bits_;
  std::size_t output_bits_;
  std::uint64_t position_ = 0;
  bool diverged_ = false;
  std::uint64_t first_divergence_ = 0;
};

struct ReplayAuditReport {
  bool deterministic = false;
  std::uint64_t recorded_queries = 0;
  std::uint64_t replayed_queries = 0;
  std::uint64_t first_divergence = 0;  ///< query index, valid iff !deterministic
  std::string message;
};

/// Record `program`'s query transcript against `oracle`, then replay it and
/// compare the streams. Deterministic programs (the contract) pass; any
/// divergence is reported with the first offending query index.
ReplayAuditReport audit_round_program(compress::RoundProgram& program,
                                      const util::BitString& memory,
                                      hash::RandomOracle& oracle);

}  // namespace mpch::verify
