#include "verify/abstract_interpreter.hpp"

#include <algorithm>
#include <deque>
#include <optional>
#include <utility>

#include "verify/cfg.hpp"

namespace mpch::verify {

using ram::Instruction;
using ram::Opcode;

namespace {

/// Joins absorbed by one program point before widening kicks in.
constexpr int kWidenThreshold = 8;

constexpr std::uint64_t kMax = Interval::kMax;

std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) {
  return add_overflows(a, b) ? kMax : a + b;
}

std::uint64_t sat_mul(std::uint64_t a, std::uint64_t b) {
  if (a == 0 || b == 0) return 0;
  return a > kMax / b ? kMax : a * b;
}

struct RegState {
  std::array<Interval, ram::kNumRegisters> regs{};  // registers start as {0}

  bool operator==(const RegState&) const = default;

  RegState join(const RegState& rhs) const {
    RegState out;
    for (std::size_t i = 0; i < regs.size(); ++i) out.regs[i] = regs[i].join(rhs.regs[i]);
    return out;
  }
};

/// True when the instruction writes register `ins.a`.
bool writes_register(const Instruction& ins) {
  switch (ins.op) {
    case Opcode::kStore:
    case Opcode::kJump:
    case Opcode::kJumpIfZero:
    case Opcode::kJumpIfNotZero:
    case Opcode::kHalt:
      return false;
    default:
      return true;
  }
}

class Interpreter {
 public:
  Interpreter(const std::vector<Instruction>& program, const MemoryModel& memory)
      : program_(program), memory_(memory), cfg_(program) {
    in_.resize(program.size());
    join_count_.assign(program.size(), 0);
    branch_target_.assign(program.size(), false);
    widen_point_.assign(program.size(), false);
    for (std::uint64_t pc = 0; pc < program.size(); ++pc) {
      const Instruction& ins = program[pc];
      if (ins.op == Opcode::kJump || ins.op == Opcode::kJumpIfZero ||
          ins.op == Opcode::kJumpIfNotZero) {
        branch_target_[ins.imm] = true;
        // Every pc-graph cycle contains a backward jump, so widening at the
        // targets of backward jumps (plus the memory summary's own counter)
        // cuts every cycle — straight-line code keeps refined bounds intact.
        if (ins.imm <= pc) widen_point_[ins.imm] = true;
      }
    }
    if (memory.words > 0) mem_values_ = memory.values;
  }

  ProgramFacts run() {
    fixpoint();
    ProgramFacts facts = collect_memory_facts();
    bound_loops(facts);
    count_steps(facts);
    return facts;
  }

 private:
  const std::vector<Instruction>& program_;
  MemoryModel memory_;
  Cfg cfg_;
  std::vector<std::optional<RegState>> in_;
  std::vector<int> join_count_;
  std::vector<bool> branch_target_;
  std::vector<bool> widen_point_;
  std::optional<Interval> mem_values_;  ///< initial contents joined with stored values
  int mem_join_count_ = 0;
  std::vector<LoopFact> loop_facts_;

  Interval memory_value() const { return mem_values_ ? *mem_values_ : Interval::all(); }

  // ---- fixpoint ----------------------------------------------------------

  void fixpoint() {
    std::deque<std::uint64_t> work{0};
    std::vector<bool> queued(program_.size(), false);
    in_[0] = RegState{};
    queued[0] = true;

    auto enqueue = [&](std::uint64_t pc) {
      if (!queued[pc]) {
        queued[pc] = true;
        work.push_back(pc);
      }
    };

    while (!work.empty()) {
      const std::uint64_t pc = work.front();
      work.pop_front();
      queued[pc] = false;
      const RegState state = *in_[pc];

      const bool mem_grew = apply_store_effect(pc, state);
      if (mem_grew) {
        for (std::uint64_t p = 0; p < program_.size(); ++p) {
          if (program_[p].op == Opcode::kLoad && in_[p]) enqueue(p);
        }
      }

      for (auto& [succ, out] : transfer(pc, state)) {
        if (!in_[succ]) {
          in_[succ] = out;
          enqueue(succ);
          continue;
        }
        RegState joined = in_[succ]->join(out);
        if (joined == *in_[succ]) continue;
        if (widen_point_[succ] && ++join_count_[succ] > kWidenThreshold) {
          for (std::size_t i = 0; i < joined.regs.size(); ++i) {
            joined.regs[i] = joined.regs[i].widen_from(in_[succ]->regs[i]);
          }
        }
        in_[succ] = joined;
        enqueue(succ);
      }
    }
  }

  /// Fold a store's value into the summarized memory interval; returns true
  /// when the interval grew (loads must then be revisited).
  bool apply_store_effect(std::uint64_t pc, const RegState& state) {
    const Instruction& ins = program_[pc];
    if (ins.op != Opcode::kStore) return false;
    const Interval value = state.regs[ins.a];
    if (!mem_values_) {
      mem_values_ = value;
      return true;
    }
    Interval joined = mem_values_->join(value);
    if (joined == *mem_values_) return false;
    if (++mem_join_count_ > kWidenThreshold) joined = joined.widen_from(*mem_values_);
    mem_values_ = joined;
    return true;
  }

  std::vector<std::pair<std::uint64_t, RegState>> transfer(std::uint64_t pc,
                                                           const RegState& state) {
    const Instruction& ins = program_[pc];
    RegState out = state;
    const Interval x = state.regs[ins.b];
    const Interval y = state.regs[ins.c];

    switch (ins.op) {
      case Opcode::kLoadImm: out.regs[ins.a] = Interval::constant(ins.imm); break;
      case Opcode::kLoad: out.regs[ins.a] = memory_value(); break;
      case Opcode::kStore: break;  // side effect handled in apply_store_effect
      case Opcode::kMov: out.regs[ins.a] = x; break;
      case Opcode::kAdd: out.regs[ins.a] = interval_add(x, y); break;
      case Opcode::kSub: out.regs[ins.a] = interval_sub(x, y); break;
      case Opcode::kMul: out.regs[ins.a] = interval_mul(x, y); break;
      case Opcode::kAnd: out.regs[ins.a] = interval_and(x, y); break;
      case Opcode::kOr: out.regs[ins.a] = interval_or(x, y); break;
      case Opcode::kXor: out.regs[ins.a] = interval_xor(x, y); break;
      case Opcode::kShl: out.regs[ins.a] = interval_shl(x, y); break;
      case Opcode::kShr: out.regs[ins.a] = interval_shr(x, y); break;
      case Opcode::kLessThan: out.regs[ins.a] = interval_lt(x, y); break;
      case Opcode::kJump: return {{ins.imm, out}};
      case Opcode::kJumpIfZero:
        return branch_edges(pc, state, /*taken_when_zero=*/true);
      case Opcode::kJumpIfNotZero:
        return branch_edges(pc, state, /*taken_when_zero=*/false);
      case Opcode::kHalt: return {};
    }
    return {{pc + 1, out}};
  }

  /// Edges of a conditional branch, refined by the tested register and — when
  /// the branch directly follows the `lt` that produced it — by the compared
  /// operands. Infeasible edges (empty meet) are pruned.
  std::vector<std::pair<std::uint64_t, RegState>> branch_edges(std::uint64_t pc,
                                                               const RegState& state,
                                                               bool taken_when_zero) {
    const Instruction& ins = program_[pc];
    std::vector<std::pair<std::uint64_t, RegState>> edges;
    auto add_edge = [&](std::uint64_t succ, bool cond_zero) {
      RegState out = state;
      const Interval cond = cond_zero ? Interval::constant(0) : Interval{1, kMax};
      auto refined = interval_meet(state.regs[ins.a], cond);
      if (!refined) return;  // this edge cannot be taken
      out.regs[ins.a] = *refined;
      if (!refine_by_guard(pc, cond_zero, out)) return;
      edges.emplace_back(succ, out);
    };
    add_edge(ins.imm, taken_when_zero);
    add_edge(pc + 1, !taken_when_zero);
    return edges;
  }

  /// If `program[pc-1]` is `lt rc, x, y` feeding this branch (and pc has no
  /// other predecessor), refine x and y on each edge: rc == 0 means x >= y,
  /// rc != 0 means x < y. Returns false when the edge is infeasible.
  bool refine_by_guard(std::uint64_t pc, bool cond_zero, RegState& out) {
    if (pc == 0 || branch_target_[pc]) return true;
    const Instruction& prev = program_[pc - 1];
    const Instruction& branch = program_[pc];
    if (prev.op != Opcode::kLessThan || prev.a != branch.a) return true;
    if (prev.a == prev.b || prev.a == prev.c || prev.b == prev.c) return true;
    Interval& x = out.regs[prev.b];
    Interval& y = out.regs[prev.c];
    if (cond_zero) {  // x >= y
      auto rx = interval_meet(x, {y.lo, kMax});
      auto ry = interval_meet(y, {0, x.hi});
      if (!rx || !ry) return false;
      x = *rx;
      y = *ry;
    } else {  // x < y, hence y >= 1 and x <= y.hi - 1
      if (y.hi == 0 || x.lo == kMax) return false;
      auto rx = interval_meet(x, {0, y.hi - 1});
      auto ry = interval_meet(y, {x.lo + 1, kMax});
      if (!rx || !ry) return false;
      x = *rx;
      y = *ry;
    }
    return true;
  }

  // ---- memory facts ------------------------------------------------------

  ProgramFacts collect_memory_facts() {
    ProgramFacts facts;
    std::uint64_t first_oob_load_pc = 0;
    bool oob_load = false;
    for (std::uint64_t pc = 0; pc < program_.size(); ++pc) {
      if (!in_[pc]) continue;
      const Instruction& ins = program_[pc];
      if (ins.op == Opcode::kLoad) {
        const Interval addr = in_[pc]->regs[ins.b];
        facts.load_addrs = facts.has_loads ? facts.load_addrs.join(addr) : addr;
        facts.has_loads = true;
      } else if (ins.op == Opcode::kStore) {
        const Interval addr = in_[pc]->regs[ins.b];
        facts.store_addrs = facts.has_stores ? facts.store_addrs.join(addr) : addr;
        facts.has_stores = true;
      }
    }

    facts.touched_words = memory_.words;
    if (facts.has_stores) {
      if (facts.store_addrs.hi == kMax) {
        facts.findings.push_back({FindingKind::kOobStore, Severity::kWarning, 0,
                                  "store address range unbounded; memory footprint unknown"});
        facts.touched_words = kMax;
      } else {
        facts.touched_words = std::max(facts.touched_words, sat_add(facts.store_addrs.hi, 1));
      }
    }
    if (facts.has_loads) {
      for (std::uint64_t pc = 0; pc < program_.size(); ++pc) {
        if (!in_[pc] || program_[pc].op != Opcode::kLoad) continue;
        if (in_[pc]->regs[program_[pc].b].hi >= facts.touched_words) {
          first_oob_load_pc = pc;
          oob_load = true;
          break;
        }
      }
    }
    if (oob_load) {
      const std::string range = facts.load_addrs.to_string();
      facts.findings.push_back({FindingKind::kOobLoad, Severity::kWarning, first_oob_load_pc,
                                "load address range " + range + " may leave the " +
                                    (facts.touched_words == kMax
                                         ? std::string("unbounded")
                                         : std::to_string(facts.touched_words) + "-word") +
                                    " footprint"});
    }
    return facts;
  }

  // ---- loop bounds -------------------------------------------------------

  struct Guard {
    std::uint64_t lt_pc = 0;
    std::uint64_t branch_pc = 0;
    std::uint8_t x = 0;  ///< non-decreasing side of `lt rc, x, y`
    std::uint8_t y = 0;  ///< non-increasing side
  };

  /// pcs covered by a loop's member blocks.
  std::vector<std::uint64_t> loop_pcs(const NaturalLoop& loop) const {
    std::vector<std::uint64_t> pcs;
    for (std::uint64_t b : loop.blocks) {
      for (std::uint64_t pc = cfg_.blocks()[b].first; pc <= cfg_.blocks()[b].last; ++pc) {
        pcs.push_back(pc);
      }
    }
    std::sort(pcs.begin(), pcs.end());
    return pcs;
  }

  bool block_dominates_all_latches(std::uint64_t block, const NaturalLoop& loop) const {
    return std::all_of(loop.latches.begin(), loop.latches.end(),
                       [&](std::uint64_t latch) { return cfg_.dominates(block, latch); });
  }

  /// Guards inside a loop nested within `loop` run many times per outer
  /// circuit, which breaks the once-per-circuit gap argument — skip them.
  bool inside_nested_loop(std::uint64_t block, const NaturalLoop& loop) const {
    for (const NaturalLoop& other : cfg_.loops()) {
      if (other.header == loop.header) continue;
      if (loop.contains_block(other.header) && other.contains_block(block)) return true;
    }
    return false;
  }

  std::optional<Guard> find_guard(const NaturalLoop& loop,
                                  const std::vector<std::uint64_t>& pcs) const {
    for (std::uint64_t pc : pcs) {
      const Instruction& ins = program_[pc];
      if (ins.op != Opcode::kLessThan) continue;
      if (pc + 1 >= program_.size()) continue;
      const Instruction& branch = program_[pc + 1];
      if (branch.a != ins.a || ins.a == ins.b || ins.a == ins.c || ins.b == ins.c) continue;
      if (cfg_.block_of(pc) != cfg_.block_of(pc + 1)) continue;
      std::uint64_t exit_pc = 0;
      if (branch.op == Opcode::kJumpIfZero) {
        exit_pc = branch.imm;  // rc == 0 (x >= y) exits
      } else if (branch.op == Opcode::kJumpIfNotZero) {
        if (pc + 2 >= program_.size()) continue;
        if (!loop.contains_block(cfg_.block_of(branch.imm))) continue;  // taken must stay in
        exit_pc = pc + 2;  // fallthrough (rc == 0) exits
      } else {
        continue;
      }
      if (loop.contains_block(cfg_.block_of(exit_pc))) continue;  // not an exit
      const std::uint64_t guard_block = cfg_.block_of(pc + 1);
      if (!block_dominates_all_latches(guard_block, loop)) continue;
      if (inside_nested_loop(guard_block, loop)) continue;
      return Guard{pc, pc + 1, ins.b, ins.c};
    }
    return std::nullopt;
  }

  /// Sum of the constant strides by which the loop provably closes the
  /// x-vs-y gap each circuit: every write to `reg` must be the allowed
  /// monotone form; strides only count when their block dominates the
  /// latches. Returns nullopt when monotonicity cannot be established.
  std::optional<std::uint64_t> stride_toward_guard(std::uint8_t reg, bool increasing,
                                                   const NaturalLoop& loop,
                                                   const std::vector<std::uint64_t>& pcs) const {
    auto loop_writes = [&](std::uint8_t r) {
      return std::any_of(pcs.begin(), pcs.end(), [&](std::uint64_t pc) {
        return writes_register(program_[pc]) && program_[pc].a == r;
      });
    };
    std::uint64_t progress = 0;
    for (std::uint64_t pc : pcs) {
      const Instruction& ins = program_[pc];
      if (!writes_register(ins) || ins.a != reg) continue;
      if (!in_[pc]) continue;  // unreachable write: no effect on any execution
      std::uint8_t stride_reg = 0;
      if (increasing && ins.op == Opcode::kAdd && ins.b == reg) {
        stride_reg = ins.c;
      } else if (increasing && ins.op == Opcode::kAdd && ins.c == reg) {
        stride_reg = ins.b;
      } else if (!increasing && ins.op == Opcode::kSub && ins.b == reg) {
        stride_reg = ins.c;
      } else {
        return std::nullopt;  // not a recognized monotone update
      }
      if (stride_reg == reg || loop_writes(stride_reg)) return std::nullopt;
      const Interval stride = in_[pc]->regs[stride_reg];
      if (!stride.is_constant()) return std::nullopt;
      const Interval value = in_[pc]->regs[reg];
      if (increasing) {
        if (add_overflows(value.hi, stride.lo)) return std::nullopt;  // could wrap forward
      } else {
        if (value.lo < stride.lo) return std::nullopt;  // could wrap below zero
      }
      if (block_dominates_all_latches(cfg_.block_of(pc), loop)) {
        progress = sat_add(progress, stride.lo);
      }
    }
    return progress;
  }

  void bound_loops(ProgramFacts& facts) {
    if (!cfg_.reducible()) {
      facts.findings.push_back({FindingKind::kIrreducibleFlow, Severity::kWarning, 0,
                                "control flow is not reducible; termination analysis declined"});
      return;
    }
    for (const NaturalLoop& loop : cfg_.loops()) {
      LoopFact fact;
      fact.header_pc = cfg_.blocks()[loop.header].first;
      const std::vector<std::uint64_t> pcs = loop_pcs(loop);
      const auto guard = find_guard(loop, pcs);
      if (!guard) {
        fact.note = "no `lt; jz/jnz` exit guard recognized";
      } else if (!in_[guard->lt_pc]) {
        fact.note = "guard unreachable in the abstract execution";
      } else {
        const auto up = stride_toward_guard(guard->x, /*increasing=*/true, loop, pcs);
        const auto down = stride_toward_guard(guard->y, /*increasing=*/false, loop, pcs);
        if (!up || !down) {
          fact.note = "guard operands not provably monotone with constant stride";
        } else if (sat_add(*up, *down) == 0) {
          fact.note = "no constant-stride progress toward the guard";
        } else {
          const RegState& header_in = *in_[cfg_.blocks()[loop.header].first];
          const std::uint64_t x0 = header_in.regs[guard->x].lo;
          const std::uint64_t y0 = header_in.regs[guard->y].hi;
          if (y0 == kMax) {
            fact.note = "guard bound register has no finite upper bound";
          } else {
            const std::uint64_t gap = y0 > x0 ? y0 - x0 : 0;
            const std::uint64_t stride = sat_add(*up, *down);
            fact.bounded = true;
            fact.max_trips = gap == 0 ? 0 : (gap + stride - 1) / stride;
            fact.note = "guard at pc " + std::to_string(guard->lt_pc) + ", gap " +
                        std::to_string(gap) + ", stride " + std::to_string(stride);
          }
        }
      }
      if (!fact.bounded) {
        facts.findings.push_back({FindingKind::kUnboundedLoop, Severity::kWarning,
                                  fact.header_pc,
                                  "loop at pc " + std::to_string(fact.header_pc) +
                                      " has no proven trip bound: " + fact.note});
      }
      facts.loops.push_back(std::move(fact));
    }
    loop_facts_ = facts.loops;
  }

  // ---- step counting -----------------------------------------------------

  /// Worst-case executions of one pc: product of (trips + 1) over every loop
  /// containing it (nested loops multiply), saturating.
  std::uint64_t pc_multiplier(std::uint64_t pc) const {
    std::uint64_t mult = 1;
    const std::uint64_t block = cfg_.block_of(pc);
    const auto& loops = cfg_.loops();
    for (std::size_t i = 0; i < loops.size(); ++i) {
      if (!loops[i].contains_block(block)) continue;
      mult = sat_mul(mult, sat_add(loop_facts_[i].max_trips, 1));
    }
    return mult;
  }

  void count_steps(ProgramFacts& facts) {
    const bool all_bounded = std::all_of(facts.loops.begin(), facts.loops.end(),
                                         [](const LoopFact& f) { return f.bounded; });
    facts.terminates = cfg_.reducible() && all_bounded;
    if (!facts.terminates) return;
    for (std::uint64_t pc = 0; pc < program_.size(); ++pc) {
      if (!in_[pc]) continue;  // never reached in the abstract execution
      const std::uint64_t mult = pc_multiplier(pc);
      facts.max_steps = sat_add(facts.max_steps, mult);
      if (program_[pc].op == Opcode::kLoad) facts.max_loads = sat_add(facts.max_loads, mult);
      if (program_[pc].op == Opcode::kStore) facts.max_stores = sat_add(facts.max_stores, mult);
    }
  }
};

}  // namespace

MemoryModel MemoryModel::from_words(const std::vector<std::uint64_t>& memory) {
  MemoryModel model;
  model.words = memory.size();
  if (!memory.empty()) {
    model.values = Interval::constant(memory[0]);
    for (std::uint64_t word : memory) model.values = model.values.join(Interval::constant(word));
  }
  return model;
}

std::string ProgramFacts::summary() const {
  std::string out;
  if (terminates) {
    out = "terminates: steps <= " + std::to_string(max_steps);
  } else {
    out = "termination unproven";
  }
  if (has_loads) {
    out += ", loads";
    if (terminates) out += " <= " + std::to_string(max_loads);
    out += " in " + load_addrs.to_string();
  }
  if (has_stores) {
    out += ", stores";
    if (terminates) out += " <= " + std::to_string(max_stores);
    out += " in " + store_addrs.to_string();
  }
  out += ", footprint " +
         (touched_words == Interval::kMax ? std::string("unbounded")
                                          : std::to_string(touched_words) + " words");
  return out;
}

ProgramFacts analyze_program(const std::vector<ram::Instruction>& program,
                             const MemoryModel& memory) {
  return Interpreter(program, memory).run();
}

}  // namespace mpch::verify
