// program_decoder.hpp — fixed-width binary codec for word-RAM programs.
//
// 12 bytes per instruction: op(1) a(1) b(1) c(1) imm(8, little-endian). The
// decoder is the hostile-input boundary (and the fuzz target): it rejects
// truncated streams and opcode bytes outside the enum with typed
// std::invalid_argument, while out-of-range registers and jump targets pass
// through so the static verifier can report them as findings — mirroring how
// a checkpoint payload is framed before deserialization elsewhere in the
// tree.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ram/machine.hpp"

namespace mpch::verify {

constexpr std::size_t kInstructionBytes = 12;

std::vector<std::uint8_t> encode_program(const std::vector<ram::Instruction>& program);

/// Throws std::invalid_argument on truncation (size not a multiple of 12) or
/// an opcode byte outside the Opcode enum. An empty stream decodes to an
/// empty program (which verify_program then rejects as kEmptyProgram).
std::vector<ram::Instruction> decode_program(const std::uint8_t* data, std::size_t size);
std::vector<ram::Instruction> decode_program(const std::vector<std::uint8_t>& bytes);

}  // namespace mpch::verify
