#include "verify/diagnostics.hpp"

#include <algorithm>

namespace mpch::verify {

const char* severity_name(Severity severity) {
  switch (severity) {
    case Severity::kError: return "error";
    case Severity::kWarning: return "warning";
    case Severity::kNote: return "note";
  }
  return "unknown";
}

const char* finding_kind_name(FindingKind kind) {
  switch (kind) {
    case FindingKind::kEmptyProgram: return "empty-program";
    case FindingKind::kTruncatedProgram: return "truncated-program";
    case FindingKind::kBadOpcode: return "bad-opcode";
    case FindingKind::kBadRegister: return "bad-register";
    case FindingKind::kBadJumpTarget: return "bad-jump-target";
    case FindingKind::kFallsOffEnd: return "falls-off-end";
    case FindingKind::kUnreachableCode: return "unreachable-code";
    case FindingKind::kUseBeforeDef: return "use-before-def";
    case FindingKind::kIrreducibleFlow: return "irreducible-flow";
    case FindingKind::kUnboundedLoop: return "unbounded-loop";
    case FindingKind::kOobLoad: return "oob-load";
    case FindingKind::kOobStore: return "oob-store";
    case FindingKind::kNonReplayable: return "non-replayable";
  }
  return "unknown";
}

std::string Finding::to_string() const {
  return "[" + std::string(severity_name(severity)) + "/" + finding_kind_name(kind) + "] pc " +
         std::to_string(pc) + ": " + message;
}

bool has_errors(const std::vector<Finding>& findings) {
  return std::any_of(findings.begin(), findings.end(),
                     [](const Finding& f) { return f.severity == Severity::kError; });
}

bool has_warnings(const std::vector<Finding>& findings) {
  return std::any_of(findings.begin(), findings.end(),
                     [](const Finding& f) { return f.severity == Severity::kWarning; });
}

}  // namespace mpch::verify
