#include "verify/program_decoder.hpp"

#include <stdexcept>
#include <string>

namespace mpch::verify {

using ram::Instruction;
using ram::Opcode;

std::vector<std::uint8_t> encode_program(const std::vector<Instruction>& program) {
  std::vector<std::uint8_t> bytes;
  bytes.reserve(program.size() * kInstructionBytes);
  for (const Instruction& ins : program) {
    bytes.push_back(static_cast<std::uint8_t>(ins.op));
    bytes.push_back(ins.a);
    bytes.push_back(ins.b);
    bytes.push_back(ins.c);
    for (int shift = 0; shift < 64; shift += 8) {
      bytes.push_back(static_cast<std::uint8_t>(ins.imm >> shift));
    }
  }
  return bytes;
}

std::vector<Instruction> decode_program(const std::uint8_t* data, std::size_t size) {
  if (size % kInstructionBytes != 0) {
    throw std::invalid_argument("decode_program: " + std::to_string(size) +
                                " bytes is not a whole number of " +
                                std::to_string(kInstructionBytes) + "-byte instructions");
  }
  std::vector<Instruction> program;
  program.reserve(size / kInstructionBytes);
  for (std::size_t off = 0; off < size; off += kInstructionBytes) {
    const std::uint8_t raw_op = data[off];
    if (raw_op > static_cast<std::uint8_t>(Opcode::kHalt)) {
      throw std::invalid_argument("decode_program: instruction " +
                                  std::to_string(off / kInstructionBytes) + ": opcode byte " +
                                  std::to_string(raw_op) + " outside the instruction set");
    }
    Instruction ins;
    ins.op = static_cast<Opcode>(raw_op);
    ins.a = data[off + 1];
    ins.b = data[off + 2];
    ins.c = data[off + 3];
    ins.imm = 0;
    for (int byte = 0; byte < 8; ++byte) {
      ins.imm |= static_cast<std::uint64_t>(data[off + 4 + byte]) << (8 * byte);
    }
    program.push_back(ins);
  }
  return program;
}

std::vector<Instruction> decode_program(const std::vector<std::uint8_t>& bytes) {
  return decode_program(bytes.data(), bytes.size());
}

}  // namespace mpch::verify
