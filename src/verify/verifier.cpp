#include "verify/verifier.hpp"

#include <algorithm>
#include <array>
#include <sstream>

#include "verify/cfg.hpp"

namespace mpch::verify {

using ram::Instruction;
using ram::Opcode;

namespace {

/// Registers an instruction reads (before its own write takes effect).
std::vector<std::uint8_t> read_registers(const Instruction& ins) {
  switch (ins.op) {
    case Opcode::kLoadImm:
    case Opcode::kJump:
    case Opcode::kHalt:
      return {};
    case Opcode::kLoad:
      return {ins.b};
    case Opcode::kStore:
      return {ins.a, ins.b};
    case Opcode::kMov:
      return {ins.b};
    case Opcode::kJumpIfZero:
    case Opcode::kJumpIfNotZero:
      return {ins.a};
    default:  // three-operand ALU
      return {ins.b, ins.c};
  }
}

void structural_pass(const std::vector<Instruction>& program, std::vector<Finding>& findings) {
  for (std::uint64_t pc = 0; pc < program.size(); ++pc) {
    const Instruction& ins = program[pc];
    const auto raw_op = static_cast<std::uint8_t>(ins.op);
    if (raw_op > static_cast<std::uint8_t>(Opcode::kHalt)) {
      findings.push_back({FindingKind::kBadOpcode, Severity::kError, pc,
                          "opcode " + std::to_string(raw_op) + " outside the instruction set"});
      continue;  // cannot classify the rest of this instruction
    }
    for (std::uint8_t reg : {ins.a, ins.b, ins.c}) {
      if (reg >= ram::kNumRegisters) {
        findings.push_back({FindingKind::kBadRegister, Severity::kError, pc,
                            "register " + std::to_string(reg) + " >= " +
                                std::to_string(ram::kNumRegisters)});
        break;
      }
    }
    if (ins.op == Opcode::kJump || ins.op == Opcode::kJumpIfZero ||
        ins.op == Opcode::kJumpIfNotZero) {
      if (ins.imm >= program.size()) {
        findings.push_back({FindingKind::kBadJumpTarget, Severity::kError, pc,
                            "jump target " + std::to_string(ins.imm) + " past program end " +
                                std::to_string(program.size())});
      }
    }
  }
  if (has_errors(findings)) return;
  for (std::uint64_t pc = 0; pc < program.size(); ++pc) {
    for (std::uint64_t succ : Cfg::successor_pcs(program, pc)) {
      if (succ >= program.size()) {
        findings.push_back({FindingKind::kFallsOffEnd, Severity::kError, pc,
                            "execution can step past the last instruction (missing halt?)"});
      }
    }
  }
}

void hygiene_pass(const std::vector<Instruction>& program, const Cfg& cfg,
                  std::vector<Finding>& findings) {
  for (std::uint64_t b = 0; b < cfg.blocks().size(); ++b) {
    if (!cfg.block_reachable(b)) {
      findings.push_back({FindingKind::kUnreachableCode, Severity::kWarning,
                          cfg.blocks()[b].first,
                          "instructions " + std::to_string(cfg.blocks()[b].first) + ".." +
                              std::to_string(cfg.blocks()[b].last) +
                              " are unreachable from pc 0"});
    }
  }

  // Must-written-before dataflow: meet = intersection over predecessors,
  // entry starts with nothing written. A read outside the must set relies on
  // the implicit zero initialization — defined behavior, hence a warning.
  std::vector<std::uint8_t> in(program.size(), 0xFF);
  std::vector<bool> reached(program.size(), false);
  in[0] = 0;
  reached[0] = true;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::uint64_t pc = 0; pc < program.size(); ++pc) {
      if (!reached[pc]) continue;
      std::uint8_t out = in[pc];
      const Instruction& ins = program[pc];
      const bool writes = ins.op != Opcode::kStore && ins.op != Opcode::kJump &&
                          ins.op != Opcode::kJumpIfZero && ins.op != Opcode::kJumpIfNotZero &&
                          ins.op != Opcode::kHalt;
      if (writes) out = static_cast<std::uint8_t>(out | (1u << ins.a));
      for (std::uint64_t succ : Cfg::successor_pcs(program, pc)) {
        const std::uint8_t met = in[succ] & out;
        if (!reached[succ] || met != in[succ]) {
          reached[succ] = true;
          in[succ] = met;
          changed = true;
        }
      }
    }
  }
  std::array<bool, ram::kNumRegisters> reported{};
  for (std::uint64_t pc = 0; pc < program.size(); ++pc) {
    if (!reached[pc]) continue;
    for (std::uint8_t reg : read_registers(program[pc])) {
      if ((in[pc] >> reg) & 1) continue;
      if (reported[reg]) continue;
      reported[reg] = true;
      findings.push_back({FindingKind::kUseBeforeDef, Severity::kWarning, pc,
                          "register " + std::to_string(reg) +
                              " read before any write (implicit zero)"});
    }
  }
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c; break;
    }
  }
  return out;
}

std::string interval_json(const Interval& iv) {
  return "[" + std::to_string(iv.lo) + "," + std::to_string(iv.hi) + "]";
}

}  // namespace

VerifyReport verify_program(const std::string& name, const std::vector<Instruction>& program,
                            const VerifyOptions& options) {
  VerifyReport report;
  report.program = name;
  if (program.empty()) {
    report.findings.push_back(
        {FindingKind::kEmptyProgram, Severity::kError, 0, "program has no instructions"});
    return report;
  }
  structural_pass(program, report.findings);
  if (has_errors(report.findings)) return report;
  report.structurally_valid = true;

  const Cfg cfg(program);
  hygiene_pass(program, cfg, report.findings);

  if (options.analyze) {
    ProgramFacts facts = analyze_program(program, options.memory);
    report.findings.insert(report.findings.end(), facts.findings.begin(), facts.findings.end());
    facts.findings.clear();
    report.facts = std::move(facts);
  }
  return report;
}

std::string VerifyReport::format() const {
  std::ostringstream os;
  os << program << ": " << (ok() ? (clean() ? "PASS" : "PASS (with warnings)") : "FAIL");
  if (facts) {
    os << "\n  " << facts->summary();
    for (const LoopFact& loop : facts->loops) {
      os << "\n  loop@" << loop.header_pc << ": "
         << (loop.bounded ? "trips <= " + std::to_string(loop.max_trips) : "UNBOUNDED") << " ("
         << loop.note << ")";
    }
  }
  for (const Finding& finding : findings) os << "\n  " << finding.to_string();
  return os.str();
}

std::string VerifyReport::to_json() const {
  std::ostringstream os;
  os << "{\"program\":\"" << json_escape(program) << "\",\"ok\":" << (ok() ? "true" : "false")
     << ",\"clean\":" << (clean() ? "true" : "false")
     << ",\"structurally_valid\":" << (structurally_valid ? "true" : "false");
  os << ",\"findings\":[";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    os << (i ? "," : "") << "{\"kind\":\"" << finding_kind_name(f.kind) << "\",\"severity\":\""
       << severity_name(f.severity) << "\",\"pc\":" << f.pc << ",\"message\":\""
       << json_escape(f.message) << "\"}";
  }
  os << "]";
  if (facts) {
    os << ",\"facts\":{\"terminates\":" << (facts->terminates ? "true" : "false");
    if (facts->terminates) {
      os << ",\"max_steps\":" << facts->max_steps << ",\"max_loads\":" << facts->max_loads
         << ",\"max_stores\":" << facts->max_stores;
    }
    os << ",\"touched_words\":" << facts->touched_words;
    if (facts->has_loads) os << ",\"load_addrs\":" << interval_json(facts->load_addrs);
    if (facts->has_stores) os << ",\"store_addrs\":" << interval_json(facts->store_addrs);
    os << ",\"loops\":[";
    for (std::size_t i = 0; i < facts->loops.size(); ++i) {
      const LoopFact& loop = facts->loops[i];
      os << (i ? "," : "") << "{\"header_pc\":" << loop.header_pc
         << ",\"bounded\":" << (loop.bounded ? "true" : "false");
      if (loop.bounded) os << ",\"max_trips\":" << loop.max_trips;
      os << ",\"note\":\"" << json_escape(loop.note) << "\"}";
    }
    os << "]}";
  }
  os << "}";
  return os.str();
}

}  // namespace mpch::verify
