#include "verify/cfg.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>

namespace mpch::verify {

using ram::Instruction;
using ram::Opcode;

bool NaturalLoop::contains_block(std::uint64_t block) const {
  return std::binary_search(blocks.begin(), blocks.end(), block);
}

std::vector<std::uint64_t> Cfg::successor_pcs(const std::vector<Instruction>& program,
                                              std::uint64_t pc) {
  const Instruction& ins = program[pc];
  switch (ins.op) {
    case Opcode::kHalt:
      return {};
    case Opcode::kJump:
      return {ins.imm};
    case Opcode::kJumpIfZero:
    case Opcode::kJumpIfNotZero:
      if (ins.imm == pc + 1) return {pc + 1};  // degenerate branch to fallthrough
      return {ins.imm, pc + 1};
    default:
      return {pc + 1};
  }
}

Cfg::Cfg(const std::vector<Instruction>& program) {
  if (program.empty()) throw std::invalid_argument("Cfg: empty program");

  // Leaders: pc 0, every branch target, and every pc following a control
  // transfer (jump, conditional, halt).
  std::set<std::uint64_t> leaders{0};
  for (std::uint64_t pc = 0; pc < program.size(); ++pc) {
    const Instruction& ins = program[pc];
    const bool is_control = ins.op == Opcode::kJump || ins.op == Opcode::kJumpIfZero ||
                            ins.op == Opcode::kJumpIfNotZero || ins.op == Opcode::kHalt;
    if (!is_control) continue;
    if (ins.op != Opcode::kHalt) {
      if (ins.imm >= program.size()) throw std::invalid_argument("Cfg: jump target out of range");
      leaders.insert(ins.imm);
    }
    if (pc + 1 < program.size()) leaders.insert(pc + 1);
  }

  block_of_.assign(program.size(), 0);
  for (auto it = leaders.begin(); it != leaders.end(); ++it) {
    CfgBlock block;
    block.first = *it;
    auto next = std::next(it);
    block.last = (next == leaders.end() ? program.size() : *next) - 1;
    for (std::uint64_t pc = block.first; pc <= block.last; ++pc) block_of_[pc] = blocks_.size();
    blocks_.push_back(block);
  }

  for (std::uint64_t b = 0; b < blocks_.size(); ++b) {
    std::set<std::uint64_t> succ_blocks;
    for (std::uint64_t pc : successor_pcs(program, blocks_[b].last)) {
      if (pc >= program.size()) continue;  // fall-off is flagged upstream
      succ_blocks.insert(block_of_[pc]);
    }
    for (std::uint64_t s : succ_blocks) {
      blocks_[b].succ.push_back(s);
      blocks_[s].pred.push_back(b);
    }
  }

  reachable_.assign(blocks_.size(), false);
  std::vector<std::uint64_t> stack{0};
  reachable_[0] = true;
  while (!stack.empty()) {
    const std::uint64_t b = stack.back();
    stack.pop_back();
    for (std::uint64_t s : blocks_[b].succ) {
      if (!reachable_[s]) {
        reachable_[s] = true;
        stack.push_back(s);
      }
    }
  }

  compute_dominators();
  find_back_edges_and_loops();
}

void Cfg::compute_dominators() {
  const std::uint64_t n = blocks_.size();
  words_per_block_ = (n + 63) / 64;
  const std::vector<std::uint64_t> full(words_per_block_, ~std::uint64_t{0});
  dom_.assign(n, full);
  dom_[0].assign(words_per_block_, 0);
  dom_[0][0] = 1;  // entry dominated only by itself

  bool changed = true;
  while (changed) {
    changed = false;
    for (std::uint64_t b = 1; b < n; ++b) {
      if (!reachable_[b]) continue;
      std::vector<std::uint64_t> meet(full);
      bool any_pred = false;
      for (std::uint64_t p : blocks_[b].pred) {
        if (!reachable_[p]) continue;
        any_pred = true;
        for (std::uint64_t w = 0; w < words_per_block_; ++w) meet[w] &= dom_[p][w];
      }
      if (!any_pred) meet.assign(words_per_block_, 0);
      meet[b / 64] |= std::uint64_t{1} << (b % 64);
      if (meet != dom_[b]) {
        dom_[b] = std::move(meet);
        changed = true;
      }
    }
  }
}

bool Cfg::dominates(std::uint64_t a, std::uint64_t b) const {
  if (!reachable_[a] || !reachable_[b]) return false;
  return (dom_[b][a / 64] >> (a % 64)) & 1;
}

void Cfg::find_back_edges_and_loops() {
  // DFS from the entry; an edge into a gray (on-stack) node closes a cycle.
  // Reducible iff every such edge targets a dominator of its source.
  enum class Color : std::uint8_t { kWhite, kGray, kBlack };
  std::vector<Color> color(blocks_.size(), Color::kWhite);
  std::map<std::uint64_t, std::vector<std::uint64_t>> latches_by_header;

  std::vector<std::pair<std::uint64_t, std::size_t>> stack;
  stack.emplace_back(0, 0);
  color[0] = Color::kGray;
  while (!stack.empty()) {
    auto& [b, next] = stack.back();
    if (next < blocks_[b].succ.size()) {
      const std::uint64_t s = blocks_[b].succ[next++];
      if (color[s] == Color::kWhite) {
        color[s] = Color::kGray;
        stack.emplace_back(s, 0);
      } else if (color[s] == Color::kGray) {
        if (dominates(s, b)) {
          latches_by_header[s].push_back(b);
        } else {
          reducible_ = false;
        }
      }
    } else {
      color[b] = Color::kBlack;
      stack.pop_back();
    }
  }

  for (const auto& [header, latches] : latches_by_header) {
    NaturalLoop loop;
    loop.header = header;
    loop.latches = latches;
    std::set<std::uint64_t> members{header};
    std::vector<std::uint64_t> work(latches.begin(), latches.end());
    while (!work.empty()) {
      const std::uint64_t b = work.back();
      work.pop_back();
      if (!members.insert(b).second) continue;
      for (std::uint64_t p : blocks_[b].pred) {
        if (reachable_[p]) work.push_back(p);
      }
    }
    loop.blocks.assign(members.begin(), members.end());
    loops_.push_back(std::move(loop));
  }
}

}  // namespace mpch::verify
