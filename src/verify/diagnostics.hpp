// diagnostics.hpp — finding/severity vocabulary for the static verifier.
//
// Mirrors analysis/static_checker's Diagnostic style (typed kind + provenance
// + human-readable message) but anchored to bytecode program counters instead
// of protocol rounds. Errors are contract violations (the program cannot run
// or cannot be admitted); warnings are soundness hazards the analysis could
// not rule out (unbounded loop, possibly out-of-range address); notes are
// informational. mpch-verify exits 1 on errors, and on warnings under
// --strict.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mpch::verify {

enum class Severity : std::uint8_t { kError, kWarning, kNote };

enum class FindingKind : std::uint8_t {
  kEmptyProgram,      ///< no instructions at all
  kTruncatedProgram,  ///< byte stream not a whole number of instructions
  kBadOpcode,         ///< opcode byte outside the Opcode enum
  kBadRegister,       ///< register index >= kNumRegisters
  kBadJumpTarget,     ///< jump immediate past the program end
  kFallsOffEnd,       ///< a non-jump path can step past the last instruction
  kUnreachableCode,   ///< instruction not reachable from pc 0
  kUseBeforeDef,      ///< register read before any write (implicit zero)
  kIrreducibleFlow,   ///< CFG not reducible; loop analysis declines
  kUnboundedLoop,     ///< no trip-count bound proven for a natural loop
  kOobLoad,           ///< load address may leave the touched-memory footprint
  kOobStore,          ///< store address range could not be bounded
  kNonReplayable,     ///< round-program query stream diverged under replay
};

const char* severity_name(Severity severity);
const char* finding_kind_name(FindingKind kind);

struct Finding {
  FindingKind kind = FindingKind::kEmptyProgram;
  Severity severity = Severity::kError;
  std::uint64_t pc = 0;  ///< instruction index the finding anchors to
  std::string message;

  /// "[error/bad-jump-target] pc 3: target 999 past program end 5"
  std::string to_string() const;
};

bool has_errors(const std::vector<Finding>& findings);
bool has_warnings(const std::vector<Finding>& findings);

}  // namespace mpch::verify
