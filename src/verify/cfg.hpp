// cfg.hpp — control-flow graph over word-RAM bytecode.
//
// Basic blocks, reachability, iterative dominators, a reducibility check, and
// natural-loop discovery. The loop-bound pass in abstract_interpreter builds
// on these: a back edge u -> h (h dominating u) defines a natural loop, and a
// reducible CFG guarantees every cycle goes through such a back edge — the
// structural precondition for proving termination loop by loop.
//
// Construction requires a structurally valid program (jump targets in range,
// no fall-off-the-end): run the structural checks in verify/verifier.hpp
// first.
#pragma once

#include <cstdint>
#include <vector>

#include "ram/machine.hpp"

namespace mpch::verify {

struct CfgBlock {
  std::uint64_t first = 0;  ///< first pc of the block
  std::uint64_t last = 0;   ///< last pc of the block (inclusive)
  std::vector<std::uint64_t> succ;  ///< successor block ids
  std::vector<std::uint64_t> pred;  ///< predecessor block ids
};

struct NaturalLoop {
  std::uint64_t header = 0;             ///< header block id
  std::vector<std::uint64_t> latches;   ///< back-edge source block ids
  std::vector<std::uint64_t> blocks;    ///< member block ids, sorted, incl. header
  bool contains_block(std::uint64_t block) const;
};

class Cfg {
 public:
  explicit Cfg(const std::vector<ram::Instruction>& program);

  /// Successor pcs of one instruction; may include program.size() when a
  /// non-jump path steps past the end (flagged upstream as kFallsOffEnd and
  /// dropped from the block graph here).
  static std::vector<std::uint64_t> successor_pcs(const std::vector<ram::Instruction>& program,
                                                  std::uint64_t pc);

  const std::vector<CfgBlock>& blocks() const { return blocks_; }
  std::uint64_t block_of(std::uint64_t pc) const { return block_of_[pc]; }
  bool block_reachable(std::uint64_t block) const { return reachable_[block]; }

  /// Does block `a` dominate block `b`? Unreachable blocks dominate nothing
  /// and are dominated by everything (vacuous).
  bool dominates(std::uint64_t a, std::uint64_t b) const;

  /// Reducible iff every cycle edge found by DFS targets a dominator of its
  /// source (i.e. every retreating edge is a back edge).
  bool reducible() const { return reducible_; }

  /// Natural loops, one per header (multiple back edges to the same header
  /// are merged). Meaningful only when reducible().
  const std::vector<NaturalLoop>& loops() const { return loops_; }

 private:
  std::vector<CfgBlock> blocks_;
  std::vector<std::uint64_t> block_of_;
  std::vector<bool> reachable_;
  std::vector<std::vector<std::uint64_t>> dom_;  ///< bitset words per block
  std::uint64_t words_per_block_ = 0;
  bool reducible_ = true;
  std::vector<NaturalLoop> loops_;

  void compute_dominators();
  void find_back_edges_and_loops();
};

}  // namespace mpch::verify
