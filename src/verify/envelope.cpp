#include "verify/envelope.hpp"

#include <stdexcept>

#include "strategies/ram_emulation.hpp"

namespace mpch::verify {

InferredRamSpec infer_ram_emulation_spec(const std::vector<ram::Instruction>& program,
                                         const ProgramFacts& facts, std::uint64_t machines,
                                         std::uint64_t steps_per_round) {
  if (!facts.terminates) {
    throw std::invalid_argument(
        "infer_ram_emulation_spec: termination unproven; no finite round bound exists");
  }
  if (facts.touched_words == Interval::kMax) {
    throw std::invalid_argument(
        "infer_ram_emulation_spec: memory footprint unbounded; no finite envelope exists");
  }
  InferredRamSpec inferred;
  inferred.memory_words = facts.touched_words;
  // A program touching no memory still needs max_steps >= 1 for a
  // well-formed spec (max_steps == 0 means "no hint" to the strategy).
  inferred.max_steps = facts.max_steps == 0 ? 1 : facts.max_steps;
  const strategies::RamEmulationStrategy strategy(program, machines, steps_per_round,
                                                  inferred.memory_words, inferred.max_steps);
  inferred.spec = strategy.protocol_spec();
  inferred.spec.protocol += " (inferred)";
  return inferred;
}

}  // namespace mpch::verify
