// estimator.hpp — empirical probability estimation and curve fitting.
//
// The probability-regime experiments (E3, E4) compare measured event rates
// against the paper's 2^{-u}-type bounds. Estimates come with Wilson score
// intervals (robust at the tiny rates we measure), and the exponential-decay
// claims are checked by fitting log2(rate) against the parameter and reading
// off the slope.
#pragma once

#include <cstdint>
#include <vector>

namespace mpch::stats {

/// Wilson score interval for a binomial proportion.
struct Proportion {
  std::uint64_t successes = 0;
  std::uint64_t trials = 0;

  double rate() const { return trials == 0 ? 0.0 : static_cast<double>(successes) / trials; }

  /// Wilson interval at `z` standard deviations (default 1.96 ~ 95%).
  double wilson_low(double z = 1.96) const;
  double wilson_high(double z = 1.96) const;

  /// Does the interval contain `p`?
  bool contains(double p, double z = 1.96) const {
    return wilson_low(z) <= p && p <= wilson_high(z);
  }
};

/// Ordinary least squares y = slope·x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};

LinearFit fit_line(const std::vector<double>& xs, const std::vector<double>& ys);

/// Running mean/variance (Welford).
class RunningStats {
 public:
  void add(double x);
  std::uint64_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const;  ///< sample variance
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-bin histogram over [0, bins).
class Histogram {
 public:
  explicit Histogram(std::size_t bins) : counts_(bins, 0) {}

  /// Values >= bins land in the last bin (tracked separately as overflow).
  void add(std::uint64_t value);

  std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t total() const { return total_; }
  std::size_t bins() const { return counts_.size(); }

  /// Empirical tail probability Pr[X > x].
  double tail_probability(std::uint64_t x) const;

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace mpch::stats
