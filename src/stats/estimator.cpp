#include "stats/estimator.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mpch::stats {

namespace {
double wilson_center(double p, double n, double z) { return (p + z * z / (2 * n)) / (1 + z * z / n); }
double wilson_margin(double p, double n, double z) {
  return (z / (1 + z * z / n)) * std::sqrt(p * (1 - p) / n + z * z / (4 * n * n));
}
}  // namespace

double Proportion::wilson_low(double z) const {
  if (trials == 0) return 0.0;
  double p = rate();
  double n = static_cast<double>(trials);
  return std::max(0.0, wilson_center(p, n, z) - wilson_margin(p, n, z));
}

double Proportion::wilson_high(double z) const {
  if (trials == 0) return 1.0;
  double p = rate();
  double n = static_cast<double>(trials);
  return std::min(1.0, wilson_center(p, n, z) + wilson_margin(p, n, z));
}

LinearFit fit_line(const std::vector<double>& xs, const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) {
    throw std::invalid_argument("fit_line: need >=2 paired points");
  }
  double n = static_cast<double>(xs.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  double denom = n * sxx - sx * sx;
  if (denom == 0.0) throw std::invalid_argument("fit_line: degenerate x values");
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  double ss_tot = syy - sy * sy / n;
  double ss_res = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    double r = ys[i] - (fit.slope * xs[i] + fit.intercept);
    ss_res += r * r;
  }
  fit.r_squared = ss_tot == 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void Histogram::add(std::uint64_t value) {
  ++total_;
  if (value >= counts_.size()) {
    ++overflow_;
  } else {
    ++counts_[value];
  }
}

double Histogram::tail_probability(std::uint64_t x) const {
  if (total_ == 0) return 0.0;
  std::uint64_t above = overflow_;  // all overflow values exceed every bin index
  for (std::size_t b = static_cast<std::size_t>(x) + 1; b < counts_.size(); ++b) {
    above += counts_[b];
  }
  return static_cast<double>(above) / static_cast<double>(total_);
}

}  // namespace mpch::stats
