// trials.hpp — deterministic, thread-parallel Monte-Carlo driver.
//
// Trials are partitioned into ordered chunks, each chunk derives its Rng
// substream from (seed, chunk index), so the aggregate result is independent
// of thread count and scheduling — the benches' numbers are reproducible.
#pragma once

#include <cstdint>
#include <functional>

#include "stats/estimator.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace mpch::stats {

/// Run `trials` independent boolean trials of `trial(rng)` in parallel and
/// count successes. `trial` must be thread-safe with respect to captured
/// state (best: capture only immutable config).
Proportion run_boolean_trials(std::uint64_t trials, std::uint64_t seed,
                              const std::function<bool(util::Rng&)>& trial,
                              util::ThreadPool* pool = nullptr);

/// Run `trials` independent numeric trials and return aggregate stats.
RunningStats run_numeric_trials(std::uint64_t trials, std::uint64_t seed,
                                const std::function<double(util::Rng&)>& trial,
                                util::ThreadPool* pool = nullptr);

/// Run `trials` independent integer trials and histogram the outcomes.
Histogram run_histogram_trials(std::uint64_t trials, std::uint64_t seed, std::size_t bins,
                               const std::function<std::uint64_t(util::Rng&)>& trial,
                               util::ThreadPool* pool = nullptr);

}  // namespace mpch::stats
