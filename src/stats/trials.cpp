#include "stats/trials.hpp"

#include <mutex>
#include <vector>

namespace mpch::stats {

namespace {

/// Chunk seed derivation: independent substream per (seed, chunk).
util::Rng chunk_rng(std::uint64_t seed, std::size_t chunk) {
  util::SplitMix64 sm(seed ^ (0xC2B2AE3D27D4EB4FULL * (chunk + 1)));
  return util::Rng(sm.next());
}

// Fixed chunk count so the (seed, chunk)->substream mapping — and therefore
// every aggregate result — is independent of the pool's thread count.
constexpr std::size_t kChunks = 64;

}  // namespace

Proportion run_boolean_trials(std::uint64_t trials, std::uint64_t seed,
                              const std::function<bool(util::Rng&)>& trial,
                              util::ThreadPool* pool) {
  if (pool == nullptr) pool = &util::global_pool();
  std::mutex mu;
  Proportion total;
  total.trials = trials;
  pool->parallel_chunks(trials, [&](std::size_t chunk, std::size_t begin, std::size_t end) {
    util::Rng rng = chunk_rng(seed, chunk);
    std::uint64_t hits = 0;
    for (std::size_t t = begin; t < end; ++t) {
      if (trial(rng)) ++hits;
    }
    std::lock_guard<std::mutex> lock(mu);
    total.successes += hits;
  }, kChunks);
  return total;
}

RunningStats run_numeric_trials(std::uint64_t trials, std::uint64_t seed,
                                const std::function<double(util::Rng&)>& trial,
                                util::ThreadPool* pool) {
  if (pool == nullptr) pool = &util::global_pool();
  std::mutex mu;
  RunningStats total;
  pool->parallel_chunks(trials, [&](std::size_t chunk, std::size_t begin, std::size_t end) {
    util::Rng rng = chunk_rng(seed, chunk);
    std::vector<double> local;
    local.reserve(end - begin);
    for (std::size_t t = begin; t < end; ++t) local.push_back(trial(rng));
    std::lock_guard<std::mutex> lock(mu);
    for (double x : local) total.add(x);
  }, kChunks);
  return total;
}

Histogram run_histogram_trials(std::uint64_t trials, std::uint64_t seed, std::size_t bins,
                               const std::function<std::uint64_t(util::Rng&)>& trial,
                               util::ThreadPool* pool) {
  if (pool == nullptr) pool = &util::global_pool();
  std::mutex mu;
  Histogram total(bins);
  pool->parallel_chunks(trials, [&](std::size_t chunk, std::size_t begin, std::size_t end) {
    util::Rng rng = chunk_rng(seed, chunk);
    std::vector<std::uint64_t> local;
    local.reserve(end - begin);
    for (std::size_t t = begin; t < end; ++t) local.push_back(trial(rng));
    std::lock_guard<std::mutex> lock(mu);
    for (std::uint64_t x : local) total.add(x);
  }, kChunks);
  return total;
}

}  // namespace mpch::stats
