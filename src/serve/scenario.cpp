#include "serve/scenario.hpp"

#include <stdexcept>

#include "ram/machine.hpp"
#include "ram/programs.hpp"
#include "strategies/batch_pointer_chasing.hpp"
#include "strategies/colluding.hpp"
#include "strategies/dictionary.hpp"
#include "strategies/full_memory.hpp"
#include "strategies/pipelined_simline.hpp"
#include "strategies/pointer_chasing.hpp"
#include "strategies/ram_emulation.hpp"
#include "strategies/speculative.hpp"
#include "util/rng.hpp"
#include "verify/abstract_interpreter.hpp"

namespace mpch::serve {

namespace {

mpc::MpcConfig base_config(std::uint64_t m, std::uint64_t s, std::uint64_t q,
                           std::uint64_t threads, std::uint64_t max_rounds = 20000) {
  mpc::MpcConfig c;
  c.machines = m;
  c.local_memory_bits = s;
  c.query_budget = q;
  c.max_rounds = max_rounds;
  c.tape_seed = 5;
  c.threads = threads;
  return c;
}

}  // namespace

std::shared_ptr<hash::LazyRandomOracle> Scenario::make_oracle(
    std::shared_ptr<hash::SharedOracleMemo> memo) const {
  if (!family.present()) return nullptr;
  auto oracle =
      std::make_shared<hash::LazyRandomOracle>(family.in_bits, family.out_bits, family.seed);
  if (memo != nullptr) oracle->attach_shared_memo(std::move(memo));
  return oracle;
}

const std::vector<std::string>& strategy_names() {
  static const std::vector<std::string> kNames = {
      "pointer-chasing", "batch-pointer-chasing", "speculative", "pipelined-simline",
      "colluding",       "dictionary",            "full-memory", "ram-emulation",
  };
  return kNames;
}

Scenario make_scenario(const std::string& name, std::uint64_t seed, std::uint64_t threads) {
  Scenario s;
  auto oracle_family = [seed](std::uint64_t n) { return OracleFamily{n, n, seed}; };

  if (name == "pointer-chasing") {
    core::LineParams p = core::LineParams::make(64, 16, 8, 96);
    util::Rng rng(seed + 1);
    core::LineInput input = core::LineInput::random(p, rng);
    auto strat = std::make_shared<strategies::PointerChasingStrategy>(
        p, strategies::OwnershipPlan::round_robin(p, 4));
    s.config = base_config(4, strat->required_local_memory(), 1 << 20, threads);
    s.initial = strat->make_initial_memory(input);
    s.algo = strat;
    s.family = oracle_family(p.n);
  } else if (name == "batch-pointer-chasing") {
    core::LineParams p = core::LineParams::make(64, 16, 8, 128);
    std::vector<core::LineInput> inputs;
    for (std::uint64_t i = 0; i < 4; ++i) {
      util::Rng rng(seed * 100 + i);
      inputs.push_back(core::LineInput::random(p, rng));
    }
    auto strat = std::make_shared<strategies::BatchPointerChasingStrategy>(
        p, strategies::OwnershipPlan::round_robin(p, 4), 4);
    s.config = base_config(4, strat->required_local_memory(), 1 << 20, threads);
    s.initial = strat->make_initial_memory(inputs);
    s.algo = strat;
    s.family = oracle_family(p.n);
  } else if (name == "speculative") {
    // u = 16 with a small guess budget: stalls essentially never escape, so
    // the run lasts long enough for mid-flight faults to land.
    core::LineParams p = core::LineParams::make(64, 16, 8, 96);
    util::Rng rng(seed * 3 + 7);
    auto input = std::make_shared<core::LineInput>(core::LineInput::random(p, rng));
    s.truth = input;
    auto strat = std::make_shared<strategies::SpeculativeStrategy>(
        p, strategies::OwnershipPlan::round_robin(p, 4), strategies::SpeculativeConfig{4, true},
        *input);
    s.config = base_config(4, strat->required_local_memory(), 1 << 20, threads);
    s.initial = strat->make_initial_memory(*input);
    s.algo = strat;
    s.family = oracle_family(p.n);
  } else if (name == "pipelined-simline") {
    core::LineParams p = core::LineParams::make(64, 16, 16, 256);
    util::Rng rng(seed + 2);
    core::LineInput input = core::LineInput::random(p, rng);
    auto strat = std::make_shared<strategies::PipelinedSimLineStrategy>(
        p, strategies::OwnershipPlan::windows(p, 4, 4));
    s.config = base_config(4, strat->required_local_memory(), 1 << 20, threads);
    s.initial = strat->make_initial_memory(input);
    s.algo = strat;
    s.family = oracle_family(p.n);
  } else if (name == "colluding") {
    core::LineParams p = core::LineParams::make(64, 16, 8, 96);
    util::Rng rng(seed + 3);
    core::LineInput input = core::LineInput::random(p, rng);
    auto strat = std::make_shared<strategies::ColludingStrategy>(
        p, strategies::OwnershipPlan::round_robin(p, 4));
    s.config = base_config(4, strat->required_local_memory(), 1 << 20, threads);
    s.initial = strat->make_initial_memory(input);
    s.algo = strat;
    s.family = oracle_family(p.n);
  } else if (name == "dictionary") {
    core::LineParams p = core::LineParams::make(64, 16, 32, 128);
    util::Rng rng(seed + 4);
    core::LineInput input = strategies::make_low_entropy_input(p, 2, rng);
    auto strat = std::make_shared<strategies::DictionaryStrategy>(p, 4);
    s.config = base_config(4, strat->gathered_bits(2), p.w + 1, threads, 10);
    s.initial = strat->make_initial_memory(input);
    s.algo = strat;
    s.family = oracle_family(p.n);
  } else if (name == "full-memory") {
    core::LineParams p = core::LineParams::make(64, 16, 8, 256);
    util::Rng rng(seed + 5);
    core::LineInput input = core::LineInput::random(p, rng);
    auto strat = std::make_shared<strategies::FullMemoryStrategy>(
        p, strategies::OwnershipPlan::round_robin(p, 4));
    s.config = base_config(4, strat->required_local_memory(), p.w + 1, threads, 10);
    s.initial = strat->make_initial_memory(input);
    s.algo = strat;
    s.family = oracle_family(p.n);
  } else if (name == "ram-emulation") {
    const std::uint64_t n = 8;
    std::vector<std::uint64_t> memory(n);
    for (std::uint64_t i = 0; i < n; ++i) memory[i] = (seed * 7 + i * 3) % 97;
    std::vector<ram::Instruction> prog = ram::programs::sum(n);
    // Verifier-proven envelope hints so protocol_spec() (and hence serve's
    // budget admission) works; hints never change execution.
    const verify::ProgramFacts facts =
        verify::analyze_program(prog, verify::MemoryModel::from_words(memory));
    auto strat = std::make_shared<strategies::RamEmulationStrategy>(prog, 4, 1,
                                                                    facts.touched_words,
                                                                    facts.max_steps);
    s.config = base_config(4, strat->required_local_memory(memory.size()), 1, threads, 1 << 20);
    s.initial = strat->make_initial_memory(memory);
    s.algo = strat;
  } else {
    throw std::invalid_argument("unknown strategy '" + name + "' (try --list)");
  }
  return s;
}

std::vector<std::string> artifact_mismatches(const mpc::MpcRunResult& ref,
                                             const hash::LazyRandomOracle* ref_oracle,
                                             const mpc::MpcRunResult& got,
                                             const hash::LazyRandomOracle* got_oracle) {
  std::vector<std::string> bad;
  if (ref.completed != got.completed) bad.push_back("completed flag differs");
  if (ref.rounds_used != got.rounds_used) {
    bad.push_back("rounds_used: " + std::to_string(ref.rounds_used) + " vs " +
                  std::to_string(got.rounds_used));
  }
  if (ref.output != got.output) bad.push_back("output bits differ");
  if (ref.trace.rounds() != got.trace.rounds()) bad.push_back("per-round stats differ");
  if (ref.trace.annotations() != got.trace.annotations()) bad.push_back("annotations differ");
  if (ref.transcript->records() != got.transcript->records()) {
    bad.push_back("oracle transcript differs (" + std::to_string(ref.transcript->records().size()) +
                  " vs " + std::to_string(got.transcript->records().size()) + " records)");
  }
  if ((ref_oracle == nullptr) != (got_oracle == nullptr)) {
    bad.push_back("oracle presence differs");
  } else if (ref_oracle != nullptr) {
    if (ref_oracle->total_queries() != got_oracle->total_queries()) {
      bad.push_back("oracle query count: " + std::to_string(ref_oracle->total_queries()) + " vs " +
                    std::to_string(got_oracle->total_queries()));
    }
    if (ref_oracle->touched_table() != got_oracle->touched_table()) {
      bad.push_back("materialised oracle table differs");
    }
  }
  return bad;
}

}  // namespace mpch::serve
