// scenario.hpp — the shared strategy catalog behind mpch-chaos and
// mpch-serve.
//
// A Scenario is one runnable (config, algorithm, initial memory, oracle
// recipe) bundle for a named strategy at a given seed. Both tools build the
// exact same bundles — that is what makes serve's cornerstone conformance
// claim ("every JobResult is bit-identical to a standalone run") testable at
// all: there is one construction, not two copies drifting apart.
//
// Scenarios are built fresh per execution (strategy-internal counters must
// never leak between runs), and the oracle is created through make_oracle so
// a caller may attach a process-wide SharedOracleMemo: sharing only
// short-circuits the pure derive() step, so every observable surface (local
// memo contents, transcript, query counts) is unchanged — see
// hash/random_oracle.hpp.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/line.hpp"
#include "hash/random_oracle.hpp"
#include "mpc/simulation.hpp"

namespace mpch::serve {

/// The oracle-family key (input width, output width, secret seed). Two runs
/// whose families agree evaluate the *same* random function, so their memo
/// entries are interchangeable — the sharing key for SharedOracleMemo.
struct OracleFamily {
  std::uint64_t in_bits = 0;
  std::uint64_t out_bits = 0;
  std::uint64_t seed = 0;

  bool present() const { return in_bits != 0; }
  bool operator<(const OracleFamily& o) const {
    if (in_bits != o.in_bits) return in_bits < o.in_bits;
    if (out_bits != o.out_bits) return out_bits < o.out_bits;
    return seed < o.seed;
  }
};

struct Scenario {
  mpc::MpcConfig config;
  std::shared_ptr<mpc::MpcAlgorithm> algo;
  std::vector<util::BitString> initial;
  OracleFamily family;  ///< !present() for plain-model (Definition 2.1) runs
  std::shared_ptr<const core::LineInput> truth;  // outlives algo (speculative holds a pointer)

  /// A fresh oracle for one execution, or null for plain-model scenarios.
  /// `memo` (optional) must match `family`; it is attached before any query.
  std::shared_ptr<hash::LazyRandomOracle> make_oracle(
      std::shared_ptr<hash::SharedOracleMemo> memo = nullptr) const;
};

/// Names accepted by make_scenario, in canonical order.
const std::vector<std::string>& strategy_names();

/// Build the named strategy's scenario. `threads` is MpcConfig::threads for
/// the inner round loop (0 = serial). Throws std::invalid_argument for an
/// unknown name.
Scenario make_scenario(const std::string& name, std::uint64_t seed, std::uint64_t threads);

/// Compare one run against another across every observable surface (output,
/// round stats, annotations, oracle transcript, materialised oracle table,
/// query counts); returns human-readable mismatch descriptions, empty when
/// bit-identical. Shared by mpch-chaos recovery verification and serve's
/// chaos verb so "verified" means the same thing everywhere.
std::vector<std::string> artifact_mismatches(const mpc::MpcRunResult& ref,
                                             const hash::LazyRandomOracle* ref_oracle,
                                             const mpc::MpcRunResult& got,
                                             const hash::LazyRandomOracle* got_oracle);

}  // namespace mpch::serve
