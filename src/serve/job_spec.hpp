// job_spec.hpp — the mpch-serve jobfile grammar, as a hostile-input boundary.
//
// A jobfile describes a campaign: one job per line, thousands of lines, fed
// to the service by scripts, sweep generators, or remote users. Like the
// checkpoint/wire/trace codecs before it, the parser trusts nothing: every
// malformed line — unknown verb, unknown or duplicate key, non-numeric
// value, a repeat count that would pre-allocate an absurd number of jobs —
// is rejected through the typed JobSpecError path with the offending line
// number, never via bad_alloc, length_error, or silent acceptance.
//
// Grammar (one job per non-empty, non-comment line):
//
//   <verb> key=value [key=value ...]
//
//   verb     : simulate | chaos | verify
//   common   : strategy=<name> (required)  seed=N  threads=N  repeat=N
//              transport=in-process|shared-memory|socket  transport-procs=N
//              authenticate=true|false  budget-bits=N
//   chaos    : plan=<FaultPlan spec>  policy=restart|replicate|quarantine
//              every=N
//
// `repeat=N` expands to N jobs with seeds seed, seed+1, ..., seed+N-1 — the
// sweep primitive. Expansion is capped (kMaxRepeat per line, kMaxJobs per
// file) *before* any allocation, so a hostile "repeat=18446744073709551615"
// costs one comparison, not the address space.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "transport/transport.hpp"

namespace mpch::serve {

/// Typed rejection of a malformed jobfile; `line()` is 1-based.
class JobSpecError : public std::runtime_error {
 public:
  JobSpecError(std::uint64_t line, const std::string& what)
      : std::runtime_error("jobfile line " + std::to_string(line) + ": " + what), line_(line) {}

  std::uint64_t line() const { return line_; }

 private:
  std::uint64_t line_;
};

enum class JobVerb : std::uint8_t {
  kSimulate,  ///< run the strategy once, report full artifacts
  kChaos,     ///< run under a fault plan + recovery policy, verify recovery
  kVerify,    ///< static spec check + instrumented soundness run
};

const char* job_verb_name(JobVerb verb);

struct JobSpec {
  JobVerb verb = JobVerb::kSimulate;
  std::string strategy;
  std::uint64_t seed = 1;
  std::uint64_t threads = 0;  ///< inner MpcConfig::threads for this job's rounds
  transport::TransportKind transport = transport::TransportKind::kInProcess;
  std::uint64_t transport_processes = 0;
  bool authenticate = false;
  /// Per-job memory budget in bits; 0 = the strategy's documented s. A job
  /// whose declared envelope exceeds the budget is rejected at admission,
  /// before it runs (see ServeService).
  std::uint64_t budget_bits = 0;

  // Chaos-verb fields (rejected on other verbs).
  std::string plan;               ///< FaultPlan spec text, validated at parse time
  std::string policy = "restart";
  std::uint64_t every = 2;

  std::uint64_t source_line = 0;  ///< jobfile provenance (1-based)

  /// One-line human-readable description for logs and reports.
  std::string describe() const;
};

/// Pre-allocation guards: per-line repeat cap and whole-file job cap.
inline constexpr std::uint64_t kMaxRepeat = 1ULL << 12;
inline constexpr std::uint64_t kMaxJobs = 1ULL << 16;

/// Parse a whole jobfile (text, one job per line; '#' starts a comment;
/// blank lines are skipped), expanding repeat=N into N seeded jobs. Throws
/// JobSpecError with line provenance on the first malformed line.
std::vector<JobSpec> parse_jobfile(const std::string& text);

/// Parse one job line (no comments/blank handling, no repeat expansion —
/// repeat is returned via *repeat). Exposed for the fuzz harness and tests.
JobSpec parse_job_line(const std::string& line, std::uint64_t line_number,
                       std::uint64_t* repeat);

}  // namespace mpch::serve
