// queue.hpp — the bounded job queue that gives mpch-serve backpressure.
//
// The submitter thread pushes parsed jobs; worker threads pop them. The
// capacity bound is the backpressure mechanism: when workers fall behind, a
// push blocks instead of letting a million-line jobfile materialise a
// million queued jobs in memory. Instrumented so the service can report how
// often the submitter actually stalled (backpressure_waits) and how full the
// queue ever got (high_watermark).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <utility>

namespace mpch::serve {

template <typename T>
class BoundedQueue {
 public:
  /// `capacity` must be >= 1; a capacity-1 queue serialises submission
  /// against consumption (the degenerate full-backpressure case the tests
  /// exercise).
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Block until there is room, then enqueue. Push-after-close is a
  /// programming error; it is ignored rather than crashing a worker.
  void push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    if (items_.size() >= capacity_) {
      ++backpressure_waits_;
      not_full_.wait(lock, [&] { return items_.size() < capacity_ || closed_; });
    }
    if (closed_) return;
    items_.push_back(std::move(item));
    if (items_.size() > high_watermark_) high_watermark_ = items_.size();
    not_empty_.notify_one();
  }

  /// Block until an item arrives or the queue is closed and drained.
  /// Returns false only in the closed-and-drained case.
  bool pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return true;
  }

  /// No more pushes; poppers drain what is left, then get false.
  void close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::uint64_t backpressure_waits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return backpressure_waits_;
  }

  std::size_t high_watermark() const {
    std::lock_guard<std::mutex> lock(mu_);
    return high_watermark_;
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
  std::uint64_t backpressure_waits_ = 0;
  std::size_t high_watermark_ = 0;
};

}  // namespace mpch::serve
