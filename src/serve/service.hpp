// service.hpp — mpch-serve's job execution engine.
//
// A ServeService takes a batch of parsed JobSpecs and executes them on a
// fixed-size pool of worker threads fed by a bounded queue (backpressure:
// submission blocks when workers fall behind). Three things make the hot
// path cheap without touching the cornerstone bit-determinism guarantee:
//
//  * Shared oracle memo — one process-wide SharedOracleMemo per oracle
//    family (in_bits, out_bits, seed), attached to every job oracle of that
//    family. Sharing short-circuits only the pure derive() step; each job's
//    own LazyRandomOracle still records exactly the sub-function *it*
//    queried, so transcripts, touched tables, and query counts are
//    byte-for-byte what a standalone run produces.
//
//  * Per-worker buffer arenas — each worker owns a RoundArena handed to the
//    simulations it runs, so inbox-set storage is recycled across the jobs
//    that worker executes instead of round-tripping the allocator. Arenas
//    recycle capacity only and are never shared between workers.
//
//  * Budget admission — before a job runs, its strategy's declared
//    ProtocolSpec is checked against the job's memory budget with the
//    existing static checker. A job that cannot fit is rejected with full
//    diagnostic provenance (and a distinct exit code at the CLI) before a
//    single round executes.
//
// The cornerstone invariant, proven by serve_conformance_test: every
// JobResult is bit-identical to running the same JobSpec standalone
// (run_standalone), for every worker count and with sharing/reuse on.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "analysis/static_checker.hpp"
#include "fault/recovery.hpp"
#include "hash/random_oracle.hpp"
#include "mpc/arena.hpp"
#include "mpc/simulation.hpp"
#include "serve/job_spec.hpp"
#include "serve/scenario.hpp"

namespace mpch::serve {

enum class JobStatus : std::uint8_t {
  kOk,        ///< ran to completion, all verifications passed
  kRejected,  ///< refused at admission (budget/spec), never executed
  kFailed,    ///< executed but errored, diverged, or failed verification
};

const char* job_status_name(JobStatus status);

struct JobResult {
  std::uint64_t job_id = 0;
  JobSpec spec;
  JobStatus status = JobStatus::kFailed;
  std::string error;  ///< why rejected/failed; empty for kOk

  /// Static admission report (populated whenever the strategy declares a
  /// ProtocolSpec; violations non-empty exactly for kRejected).
  analysis::AnalysisReport admission;
  /// verify-verb only: declared-spec-vs-observed-peaks report.
  analysis::AnalysisReport soundness;

  mpc::MpcRunResult run;  ///< valid when the job executed (status != kRejected)
  std::shared_ptr<hash::LazyRandomOracle> oracle;  ///< null for plain-model jobs

  // chaos-verb artifacts.
  fault::RecoveryCost cost;
  std::vector<std::string> fault_log;
  std::vector<std::string> mismatches;  ///< recovered-vs-reference differences

  double wall_ms = 0;
  std::uint64_t worker = 0;  ///< pool index that executed the job
};

struct ServeOptions {
  std::uint64_t workers = 1;
  std::size_t queue_depth = 64;
  bool share_memo = true;
  bool reuse_buffers = true;
};

/// Campaign-level accounting, filled by run_jobs.
struct ServeStats {
  double wall_ms = 0;
  double runs_per_sec = 0;  ///< executed jobs (ok+failed) per wall second
  std::uint64_t ok = 0;
  std::uint64_t rejected = 0;
  std::uint64_t failed = 0;
  std::uint64_t memo_families = 0;
  std::uint64_t memo_entries = 0;
  std::uint64_t memo_hits = 0;
  std::uint64_t memo_misses = 0;
  std::uint64_t arena_reuses = 0;
  std::uint64_t arena_allocations = 0;
  std::uint64_t backpressure_waits = 0;
  std::uint64_t queue_high_watermark = 0;
};

class ServeService {
 public:
  explicit ServeService(ServeOptions options = {});

  /// Execute every job on the worker pool. Returns one JobResult per job, in
  /// jobfile order; result *content* is independent of workers/queue_depth/
  /// share_memo/reuse_buffers (only wall_ms and the worker index vary).
  std::vector<JobResult> run_jobs(const std::vector<JobSpec>& jobs);

  const ServeStats& stats() const { return stats_; }

  /// The reference executor: one job with standalone semantics — no shared
  /// memo, no arena reuse, current thread. serve_conformance_test compares
  /// pool results against this.
  static JobResult run_standalone(const JobSpec& spec, std::uint64_t job_id = 0);

 private:
  JobResult execute(const JobSpec& spec, std::uint64_t job_id, mpc::RoundArena* arena);
  std::shared_ptr<hash::SharedOracleMemo> memo_for(const OracleFamily& family);

  ServeOptions options_;
  ServeStats stats_;
  std::mutex memo_mu_;
  std::map<OracleFamily, std::shared_ptr<hash::SharedOracleMemo>> memos_;
};

}  // namespace mpch::serve
