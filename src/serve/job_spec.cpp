#include "serve/job_spec.hpp"

#include <set>
#include <sstream>

#include "fault/fault_plan.hpp"

namespace mpch::serve {

namespace {

/// Strict u64: all digits, no sign, no overflow. The CLI layer is lenient;
/// this boundary is not.
std::uint64_t parse_u64(const std::string& value, const std::string& key,
                        std::uint64_t line_number) {
  if (value.empty()) {
    throw JobSpecError(line_number, "empty value for key '" + key + "'");
  }
  std::uint64_t out = 0;
  for (char c : value) {
    if (c < '0' || c > '9') {
      throw JobSpecError(line_number,
                         "value '" + value + "' for key '" + key + "' is not a number");
    }
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (out > (UINT64_MAX - digit) / 10) {
      throw JobSpecError(line_number,
                         "value '" + value + "' for key '" + key + "' overflows 64 bits");
    }
    out = out * 10 + digit;
  }
  return out;
}

bool parse_bool(const std::string& value, const std::string& key, std::uint64_t line_number) {
  if (value == "true" || value == "1") return true;
  if (value == "false" || value == "0") return false;
  throw JobSpecError(line_number, "value '" + value + "' for key '" + key +
                                      "' is not a boolean (true|false|1|0)");
}

}  // namespace

const char* job_verb_name(JobVerb verb) {
  switch (verb) {
    case JobVerb::kSimulate:
      return "simulate";
    case JobVerb::kChaos:
      return "chaos";
    case JobVerb::kVerify:
      return "verify";
  }
  return "?";
}

std::string JobSpec::describe() const {
  std::ostringstream out;
  out << job_verb_name(verb) << " strategy=" << strategy << " seed=" << seed;
  if (threads != 0) out << " threads=" << threads;
  if (transport != transport::TransportKind::kInProcess) {
    out << " transport=" << transport::to_string(transport);
  }
  if (authenticate) out << " authenticate=true";
  if (budget_bits != 0) out << " budget-bits=" << budget_bits;
  if (verb == JobVerb::kChaos) {
    out << " plan=" << plan << " policy=" << policy << " every=" << every;
  }
  return out.str();
}

JobSpec parse_job_line(const std::string& line, std::uint64_t line_number,
                       std::uint64_t* repeat) {
  std::istringstream tokens(line);
  std::string verb_token;
  tokens >> verb_token;
  if (verb_token.empty()) {
    throw JobSpecError(line_number, "empty job line");
  }

  JobSpec spec;
  spec.source_line = line_number;
  if (verb_token == "simulate") {
    spec.verb = JobVerb::kSimulate;
  } else if (verb_token == "chaos") {
    spec.verb = JobVerb::kChaos;
  } else if (verb_token == "verify") {
    spec.verb = JobVerb::kVerify;
  } else {
    throw JobSpecError(line_number, "unknown verb '" + verb_token +
                                        "' (want simulate|chaos|verify)");
  }

  std::uint64_t repeat_count = 1;
  std::set<std::string> seen;
  std::string token;
  bool has_plan = false;
  while (tokens >> token) {
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw JobSpecError(line_number, "malformed token '" + token + "' (want key=value)");
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (!seen.insert(key).second) {
      throw JobSpecError(line_number, "duplicate key '" + key + "'");
    }

    if (key == "strategy") {
      if (value.empty()) throw JobSpecError(line_number, "empty value for key 'strategy'");
      spec.strategy = value;
    } else if (key == "seed") {
      spec.seed = parse_u64(value, key, line_number);
    } else if (key == "threads") {
      spec.threads = parse_u64(value, key, line_number);
    } else if (key == "repeat") {
      repeat_count = parse_u64(value, key, line_number);
      if (repeat_count == 0) {
        throw JobSpecError(line_number, "repeat=0 describes no jobs");
      }
      if (repeat_count > kMaxRepeat) {
        throw JobSpecError(line_number, "repeat=" + value + " exceeds the per-line cap of " +
                                            std::to_string(kMaxRepeat));
      }
    } else if (key == "transport") {
      try {
        spec.transport = transport::parse_transport_kind(value);
      } catch (const std::invalid_argument& e) {
        throw JobSpecError(line_number, e.what());
      }
    } else if (key == "transport-procs") {
      spec.transport_processes = parse_u64(value, key, line_number);
    } else if (key == "authenticate") {
      spec.authenticate = parse_bool(value, key, line_number);
    } else if (key == "budget-bits") {
      spec.budget_bits = parse_u64(value, key, line_number);
    } else if (key == "plan") {
      if (spec.verb != JobVerb::kChaos) {
        throw JobSpecError(line_number, "key 'plan' is only valid on chaos jobs");
      }
      try {
        (void)fault::FaultPlan::parse(value);
      } catch (const std::invalid_argument& e) {
        throw JobSpecError(line_number, std::string("bad fault plan: ") + e.what());
      }
      spec.plan = value;
      has_plan = true;
    } else if (key == "policy") {
      if (spec.verb != JobVerb::kChaos) {
        throw JobSpecError(line_number, "key 'policy' is only valid on chaos jobs");
      }
      if (value != "restart" && value != "replicate" && value != "quarantine") {
        throw JobSpecError(line_number, "unknown policy '" + value +
                                            "' (want restart|replicate|quarantine)");
      }
      spec.policy = value;
    } else if (key == "every") {
      if (spec.verb != JobVerb::kChaos) {
        throw JobSpecError(line_number, "key 'every' is only valid on chaos jobs");
      }
      spec.every = parse_u64(value, key, line_number);
      if (spec.every == 0) {
        throw JobSpecError(line_number, "every=0 would never checkpoint");
      }
    } else {
      throw JobSpecError(line_number, "unknown key '" + key + "'");
    }
  }

  if (spec.strategy.empty()) {
    throw JobSpecError(line_number, "missing required key 'strategy'");
  }
  if (spec.verb == JobVerb::kChaos && !has_plan) {
    throw JobSpecError(line_number, "chaos jobs require a plan=... key");
  }
  *repeat = repeat_count;
  return spec;
}

std::vector<JobSpec> parse_jobfile(const std::string& text) {
  std::vector<JobSpec> jobs;
  std::istringstream lines(text);
  std::string line;
  std::uint64_t line_number = 0;
  while (std::getline(lines, line)) {
    ++line_number;
    const std::size_t comment = line.find('#');
    if (comment != std::string::npos) line.resize(comment);
    const std::size_t content = line.find_first_not_of(" \t\r");
    if (content == std::string::npos) continue;

    std::uint64_t repeat = 1;
    JobSpec spec = parse_job_line(line, line_number, &repeat);
    if (jobs.size() + repeat > kMaxJobs) {
      throw JobSpecError(line_number,
                         "jobfile expands past the " + std::to_string(kMaxJobs) + "-job cap");
    }
    for (std::uint64_t i = 0; i < repeat; ++i) {
      jobs.push_back(spec);
      jobs.back().seed = spec.seed + i;
    }
  }
  return jobs;
}

}  // namespace mpch::serve
