#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "analysis/spec_soundness.hpp"
#include "fault/fault_plan.hpp"
#include "mpc/auth.hpp"
#include "reduce/term.hpp"
#include "serve/queue.hpp"

namespace mpch::serve {

namespace {

double elapsed_ms(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start)
      .count();
}

/// Apply the job's runtime knobs to a freshly built scenario config —
/// identical to what mpch-chaos does for --transport/--authenticate, so
/// serve and standalone runs execute the same MpcConfig.
void apply_job_config(const JobSpec& spec, Scenario* sc) {
  sc->config.transport = spec.transport;
  sc->config.transport_processes = spec.transport_processes;
  if (spec.authenticate) {
    sc->config.authenticate_messages = true;
    // Tag bits count against the memory budget; same headroom as mpch-chaos.
    sc->config.local_memory_bits += 1 << 16;
  }
}

}  // namespace

const char* job_status_name(JobStatus status) {
  switch (status) {
    case JobStatus::kOk:
      return "ok";
    case JobStatus::kRejected:
      return "rejected";
    case JobStatus::kFailed:
      return "failed";
  }
  return "?";
}

ServeService::ServeService(ServeOptions options) : options_(options) {
  if (options_.workers == 0) options_.workers = 1;
  if (options_.queue_depth == 0) options_.queue_depth = 1;
}

std::shared_ptr<hash::SharedOracleMemo> ServeService::memo_for(const OracleFamily& family) {
  std::lock_guard<std::mutex> lock(memo_mu_);
  auto it = memos_.find(family);
  if (it == memos_.end()) {
    it = memos_
             .emplace(family, std::make_shared<hash::SharedOracleMemo>(
                                  family.in_bits, family.out_bits, family.seed))
             .first;
  }
  return it->second;
}

JobResult ServeService::execute(const JobSpec& spec, std::uint64_t job_id,
                                mpc::RoundArena* arena) {
  JobResult r;
  r.job_id = job_id;
  r.spec = spec;
  const auto start = std::chrono::steady_clock::now();
  try {
    Scenario sc = make_scenario(spec.strategy, spec.seed, spec.threads);
    apply_job_config(spec, &sc);

    // --- Admission: when the job declares a memory budget, prove the
    // strategy's declared envelope fits it, or reject with static-checker
    // provenance before a single round executes. (A job without a budget
    // runs under the scenario's own config, exactly like the standalone
    // tools — the runtime guards still apply.)
    auto* provider = dynamic_cast<analysis::ProtocolSpecProvider*>(sc.algo.get());
    analysis::ProtocolSpec declared;
    if (provider != nullptr) {
      declared = provider->protocol_spec();
      if (sc.config.authenticate_messages) {
        // The MAC lift is a reduction-calculus term (the same transfer
        // function mpch-reduce proves sound), not a serve-private rewrite.
        declared =
            reduce::apply_term(reduce::Term::with_authentication(mpc::kMessageTagBits), declared)
                .spec;
      }
      if (spec.budget_bits != 0) {
        mpc::MpcConfig admission_config = sc.config;
        admission_config.local_memory_bits = spec.budget_bits;
        r.admission = analysis::check_spec(declared, admission_config);
        if (!r.admission.ok()) {
          r.status = JobStatus::kRejected;
          r.error = "jobfile line " + std::to_string(spec.source_line) + ": " + spec.strategy +
                    " does not fit the admitted budget (" + std::to_string(spec.budget_bits) +
                    " bits)";
          r.wall_ms = elapsed_ms(start);
          return r;
        }
      }
    } else if (spec.budget_bits != 0 || spec.verb == JobVerb::kVerify) {
      r.status = JobStatus::kRejected;
      r.error = "jobfile line " + std::to_string(spec.source_line) + ": " + spec.strategy +
                " declares no ProtocolSpec to admit against";
      r.wall_ms = elapsed_ms(start);
      return r;
    }

    std::shared_ptr<hash::SharedOracleMemo> memo;
    if (options_.share_memo && sc.family.present()) memo = memo_for(sc.family);

    switch (spec.verb) {
      case JobVerb::kSimulate:
      case JobVerb::kVerify: {
        auto oracle = sc.make_oracle(memo);
        mpc::MpcSimulation sim(sc.config, oracle);
        if (arena != nullptr) sim.set_arena(arena);
        r.run = sim.run(*sc.algo, sc.initial);
        r.oracle = std::move(oracle);
        r.status = JobStatus::kOk;
        if (spec.verb == JobVerb::kVerify) {
          r.soundness = analysis::check_soundness(declared, r.run, sc.config);
          if (!r.soundness.ok()) {
            r.status = JobStatus::kFailed;
            r.error = "declared spec is unsound against the observed run";
          }
        }
        break;
      }
      case JobVerb::kChaos: {
        // Fault-free reference first (same scenario instance), then a fresh
        // scenario for the chaotic run so strategy-internal counters never
        // carry over — mirrors mpch-chaos exactly.
        auto ref_oracle = sc.make_oracle(memo);
        mpc::MpcSimulation ref_sim(sc.config, ref_oracle);
        if (arena != nullptr) ref_sim.set_arena(arena);
        mpc::MpcRunResult ref_run = ref_sim.run(*sc.algo, sc.initial);

        Scenario chaos = make_scenario(spec.strategy, spec.seed, spec.threads);
        apply_job_config(spec, &chaos);
        fault::FaultPlan plan = fault::FaultPlan::parse(spec.plan);
        fault::ChaosHarness harness(chaos.config,
                                    [&chaos, memo] { return chaos.make_oracle(memo); });
        fault::ChaosResult chaos_result;
        if (spec.policy == "restart") {
          chaos_result = harness.run_restart(*chaos.algo, chaos.initial, plan, spec.every);
        } else if (spec.policy == "replicate") {
          chaos_result = harness.run_replicate(*chaos.algo, chaos.initial, plan);
        } else {
          fault::QuarantineConfig qc;
          qc.checkpoint_every = spec.every;
          chaos_result = harness.run_quarantine(*chaos.algo, chaos.initial, plan, qc);
        }
        r.run = chaos_result.run;
        r.oracle = chaos_result.oracle;
        r.cost = chaos_result.cost;
        r.fault_log = std::move(chaos_result.fault_log);
        r.mismatches =
            artifact_mismatches(ref_run, ref_oracle.get(), r.run, r.oracle.get());
        if (r.mismatches.empty()) {
          r.status = JobStatus::kOk;
        } else {
          r.status = JobStatus::kFailed;
          r.error = "recovered run differs from the fault-free reference";
        }
        break;
      }
    }
  } catch (const fault::UnrecoverableFault& e) {
    r.status = JobStatus::kFailed;
    r.error = std::string("unrecoverable: ") + e.what();
  } catch (const fault::ReplicaDivergence& e) {
    r.status = JobStatus::kFailed;
    r.error = std::string("replica divergence: ") + e.what();
  } catch (const std::exception& e) {
    r.status = JobStatus::kFailed;
    r.error = e.what();
  }
  r.wall_ms = elapsed_ms(start);
  return r;
}

std::vector<JobResult> ServeService::run_jobs(const std::vector<JobSpec>& jobs) {
  stats_ = ServeStats{};
  std::vector<JobResult> results(jobs.size());
  BoundedQueue<std::uint64_t> queue(options_.queue_depth);
  std::vector<mpc::RoundArena> arenas(options_.workers);

  const auto start = std::chrono::steady_clock::now();
  // Plain std::thread workers on purpose: util::ThreadPool would mark them
  // as pool threads and the *inner* simulations would refuse to nest their
  // own round-level parallelism — jobs must behave exactly as standalone.
  std::vector<std::thread> pool;
  pool.reserve(options_.workers);
  for (std::uint64_t w = 0; w < options_.workers; ++w) {
    pool.emplace_back([this, w, &queue, &jobs, &results, &arenas] {
      std::uint64_t id = 0;
      while (queue.pop(&id)) {
        // Each slot is written by exactly one worker; no lock needed.
        JobResult r =
            execute(jobs[id], id, options_.reuse_buffers ? &arenas[w] : nullptr);
        r.worker = w;
        results[id] = std::move(r);
      }
    });
  }
  for (std::uint64_t id = 0; id < jobs.size(); ++id) queue.push(id);
  queue.close();
  for (auto& t : pool) t.join();
  stats_.wall_ms = elapsed_ms(start);

  for (const JobResult& r : results) {
    switch (r.status) {
      case JobStatus::kOk:
        ++stats_.ok;
        break;
      case JobStatus::kRejected:
        ++stats_.rejected;
        break;
      case JobStatus::kFailed:
        ++stats_.failed;
        break;
    }
  }
  const std::uint64_t executed = stats_.ok + stats_.failed;
  if (stats_.wall_ms > 0) stats_.runs_per_sec = 1000.0 * double(executed) / stats_.wall_ms;
  {
    std::lock_guard<std::mutex> lock(memo_mu_);
    stats_.memo_families = memos_.size();
    for (const auto& [family, memo] : memos_) {
      stats_.memo_entries += memo->entries();
      stats_.memo_hits += memo->hits();
      stats_.memo_misses += memo->misses();
    }
  }
  for (const mpc::RoundArena& arena : arenas) {
    stats_.arena_reuses += arena.reuses();
    stats_.arena_allocations += arena.allocations();
  }
  stats_.backpressure_waits = queue.backpressure_waits();
  stats_.queue_high_watermark = queue.high_watermark();
  return results;
}

JobResult ServeService::run_standalone(const JobSpec& spec, std::uint64_t job_id) {
  ServeService service(ServeOptions{/*workers=*/1, /*queue_depth=*/1,
                                    /*share_memo=*/false, /*reuse_buffers=*/false});
  return service.execute(spec, job_id, nullptr);
}

}  // namespace mpch::serve
