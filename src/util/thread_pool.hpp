// thread_pool.hpp — a small fixed-size worker pool for Monte-Carlo trials.
//
// The statistics layer needs to run millions of independent trials (e.g. the
// 2^-u guessing experiments of Lemma 3.3/A.7); the pool gives near-linear
// speedup while keeping determinism: work is partitioned into ordered chunks
// and each chunk derives its own Rng substream, so results are independent of
// thread scheduling.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mpch::util {

class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// True when the calling thread is a worker of *any* ThreadPool. Callers
  /// that block on futures of the pool they run in would deadlock; nested
  /// parallel code uses this to degrade to serial execution instead.
  static bool in_worker();

  /// Enqueue a nullary task; returns a future for its completion.
  template <typename Fn>
  std::future<void> submit(Fn&& fn) {
    auto task = std::make_shared<std::packaged_task<void()>>(std::forward<Fn>(fn));
    std::future<void> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Run `body(chunk_index, begin, end)` over [0, total) split into
  /// roughly-equal contiguous chunks, one task per chunk, and wait for all.
  /// `chunks == 0` defaults to 4x the thread count for load balance.
  void parallel_chunks(std::size_t total,
                       const std::function<void(std::size_t, std::size_t, std::size_t)>& body,
                       std::size_t chunks = 0);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Process-wide pool for benches/tests that don't want to manage lifetime.
ThreadPool& global_pool();

}  // namespace mpch::util
