#include "util/table.hpp"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace mpch::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table::add_row: expected " + std::to_string(headers_.size()) +
                                " cells, got " + std::to_string(cells.size()));
  }
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c])) << row[c];
      if (c + 1 < row.size()) os << "  ";
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w;
  total += 2 * (widths.empty() ? 0 : widths.size() - 1);
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string Table::to_cell(double v) { return format_double(v); }
std::string Table::to_cell(long double v) { return format_double(static_cast<double>(v)); }

std::string format_double(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  std::string s = ss.str();
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

std::string format_log2_prob(long double lp) {
  std::ostringstream ss;
  ss << "2^" << format_double(static_cast<double>(lp), 2);
  if (lp > -50.0L) {
    ss << " (" << format_double(static_cast<double>(std::exp2(lp)), 8) << ")";
  }
  return ss.str();
}

}  // namespace mpch::util
