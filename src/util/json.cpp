#include "util/json.hpp"

#include <stdexcept>

#include "util/table.hpp"

namespace mpch::util {

std::string JsonWriter::escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (unsigned char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[c >> 4];
          out += hex[c & 0xF];
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void JsonWriter::begin_value(bool is_key) {
  if (started_ && stack_.empty()) {
    throw std::logic_error("JsonWriter: document already complete");
  }
  if (!stack_.empty()) {
    const bool in_object = stack_.back() == Frame::kObject;
    if (in_object && !is_key && !expecting_value_) {
      throw std::logic_error("JsonWriter: object member needs a key first");
    }
    if (in_object && is_key && expecting_value_) {
      throw std::logic_error("JsonWriter: key written twice without a value");
    }
    if (!in_object && is_key) {
      throw std::logic_error("JsonWriter: key inside an array");
    }
    // A key opens the member (comma before it); its value follows bare.
    if (!expecting_value_) {
      if (!first_in_frame_.back()) out_ += ',';
      first_in_frame_.back() = false;
    }
  } else if (is_key) {
    throw std::logic_error("JsonWriter: key at top level");
  }
  started_ = true;
}

JsonWriter& JsonWriter::begin_object() {
  begin_value(false);
  expecting_value_ = false;
  out_ += '{';
  stack_.push_back(Frame::kObject);
  first_in_frame_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back() != Frame::kObject || expecting_value_) {
    throw std::logic_error("JsonWriter: end_object without a matching open object");
  }
  out_ += '}';
  stack_.pop_back();
  first_in_frame_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  begin_value(false);
  expecting_value_ = false;
  out_ += '[';
  stack_.push_back(Frame::kArray);
  first_in_frame_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back() != Frame::kArray) {
    throw std::logic_error("JsonWriter: end_array without a matching open array");
  }
  out_ += ']';
  stack_.pop_back();
  first_in_frame_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& name) {
  begin_value(true);
  out_ += '"';
  out_ += escape(name);
  out_ += "\":";
  expecting_value_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  begin_value(false);
  expecting_value_ = false;
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(std::uint64_t v) {
  begin_value(false);
  expecting_value_ = false;
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  begin_value(false);
  expecting_value_ = false;
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  begin_value(false);
  expecting_value_ = false;
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value_double(double v, int decimals) {
  begin_value(false);
  expecting_value_ = false;
  out_ += format_double(v, decimals);
  return *this;
}

JsonWriter& JsonWriter::value_null() {
  begin_value(false);
  expecting_value_ = false;
  out_ += "null";
  return *this;
}

}  // namespace mpch::util
