// bitstring.hpp — arbitrary-length bit vectors with slicing and packing.
//
// The paper manipulates objects measured in *bits*: inputs x_i of u bits,
// oracle domain/range of n bits, memory states of s bits. BitString is the
// common currency for all of them. Bits are indexed MSB-first within the
// logical string (bit 0 is the leftmost / most significant), which matches
// the paper's "parse the input as v strings of u bits" convention.
#pragma once

#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

namespace mpch::util {

/// A dynamically sized string of bits.
///
/// Storage is byte-packed. All operations are bounds-checked in debug builds
/// (assert) and rely on callers passing valid ranges in release builds, like
/// the rest of the library. Equality, hashing, and lexicographic comparison
/// treat the value as the exact bit sequence (two BitStrings of different
/// length are never equal even if one is a zero-padded version of the other).
class BitString {
 public:
  BitString() = default;

  /// An all-zero string of `nbits` bits.
  explicit BitString(std::size_t nbits);

  /// The low `nbits` bits of `value`, MSB-first. Requires nbits <= 64.
  static BitString from_uint(std::uint64_t value, std::size_t nbits);

  /// Parse a string of '0'/'1' characters.
  static BitString from_binary_string(const std::string& bits);

  /// Wrap a full byte buffer (length = 8 * bytes.size() bits).
  static BitString from_bytes(const std::vector<std::uint8_t>& bytes);

  /// A uniformly random string of `nbits` bits drawn from `next_u64`,
  /// a callable returning fresh 64-bit words.
  template <typename NextU64>
  static BitString random(std::size_t nbits, NextU64&& next_u64) {
    BitString out(nbits);
    std::size_t full_words = nbits / 64;
    std::size_t pos = 0;
    for (std::size_t i = 0; i < full_words; ++i, pos += 64) {
      out.set_uint(pos, 64, next_u64());
    }
    if (std::size_t rem = nbits % 64; rem != 0) {
      out.set_uint(pos, rem, next_u64() & ((rem == 64) ? ~0ULL : ((1ULL << rem) - 1)));
    }
    return out;
  }

  std::size_t size() const { return nbits_; }
  bool empty() const { return nbits_ == 0; }

  bool get(std::size_t i) const;
  void set(std::size_t i, bool v);

  /// Read `len` bits starting at `pos` as an unsigned integer (len <= 64).
  std::uint64_t get_uint(std::size_t pos, std::size_t len) const;

  /// Write the low `len` bits of `value` at `pos` (len <= 64).
  void set_uint(std::size_t pos, std::size_t len, std::uint64_t value);

  /// Copy of bits [pos, pos+len).
  BitString slice(std::size_t pos, std::size_t len) const;

  /// Overwrite bits [pos, pos+other.size()) with `other`.
  void splice(std::size_t pos, const BitString& other);

  /// Concatenation.
  BitString operator+(const BitString& rhs) const;
  BitString& operator+=(const BitString& rhs);

  /// Append `len` zero bits (the paper's `0*` padding).
  void pad_zeros(std::size_t len);

  /// Truncate to the first `len` bits. Requires len <= size().
  void truncate(std::size_t len);

  /// Bitwise XOR; both operands must have equal length.
  BitString operator^(const BitString& rhs) const;

  bool operator==(const BitString& rhs) const;
  bool operator!=(const BitString& rhs) const { return !(*this == rhs); }
  /// Lexicographic by (length, bits) so BitString can key ordered maps.
  bool operator<(const BitString& rhs) const;

  /// Number of set bits.
  std::size_t popcount() const;

  /// '0'/'1' rendering, MSB first.
  std::string to_binary_string() const;
  /// Hex rendering (bit length padded up to a nibble boundary for display).
  std::string to_hex_string() const;

  /// Stable 64-bit hash of (length, contents) — used for hash maps keyed by
  /// oracle inputs and for cheap fingerprinting in tests.
  std::uint64_t hash() const;

  /// Underlying packed bytes; the final byte's unused low bits are zero.
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }

 private:
  void assert_range(std::size_t pos, std::size_t len) const;
  // Invariant: bits beyond nbits_ in the final byte are zero; this makes
  // operator== and hash() well-defined on the byte buffer.
  void clear_tail_slack();

  std::vector<std::uint8_t> bytes_;
  std::size_t nbits_ = 0;
};

/// std::hash adapter so BitString can key unordered containers.
struct BitStringHash {
  std::size_t operator()(const BitString& b) const { return static_cast<std::size_t>(b.hash()); }
};

}  // namespace mpch::util
