#include "util/thread_pool.hpp"

#include <algorithm>

namespace mpch::util {

namespace {
thread_local bool t_pool_worker = false;
}  // namespace

bool ThreadPool::in_worker() { return t_pool_worker; }

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::worker_loop() {
  t_pool_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_chunks(
    std::size_t total, const std::function<void(std::size_t, std::size_t, std::size_t)>& body,
    std::size_t chunks) {
  if (total == 0) return;
  if (chunks == 0) chunks = thread_count() * 4;
  chunks = std::min(chunks, total);
  std::size_t per = total / chunks;
  std::size_t extra = total % chunks;
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  std::size_t begin = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    std::size_t len = per + (c < extra ? 1 : 0);
    std::size_t end = begin + len;
    futures.push_back(submit([&body, c, begin, end] { body(c, begin, end); }));
    begin = end;
  }
  for (auto& f : futures) f.get();
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace mpch::util
