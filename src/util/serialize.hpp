// serialize.hpp — byte/bit-level writer and reader used by the compression
// argument (src/compress) and the fault subsystem's checkpoints (src/fault).
// The proof's Enc/Dec schemes are literal encodings whose *length in bits* is
// the whole point, so the writer tracks bit-exact sizes and supports
// fixed-width fields like "log q bits for a query index". The field helpers
// below add the self-describing (length-prefixed) layer checkpoints need,
// where the reader cannot know field widths a priori.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/bitstring.hpp"

namespace mpch::util {

/// Appends fixed-width fields into a growing BitString.
class BitWriter {
 public:
  /// Append the low `width` bits of `value` (width <= 64).
  void write_uint(std::uint64_t value, std::size_t width) {
    if (width > 64) throw std::invalid_argument("BitWriter::write_uint: width > 64");
    if (width < 64 && value >> width != 0) {
      throw std::invalid_argument("BitWriter::write_uint: value does not fit width");
    }
    buffer_.pad_zeros(width);
    buffer_.set_uint(buffer_.size() - width, width, value);
  }

  void write_bits(const BitString& bits) { buffer_ += bits; }

  void write_bool(bool b) { write_uint(b ? 1 : 0, 1); }

  std::size_t bit_count() const { return buffer_.size(); }
  const BitString& bits() const { return buffer_; }
  BitString take() { return std::move(buffer_); }

 private:
  BitString buffer_;
};

/// Sequentially consumes fixed-width fields from a BitString.
class BitReader {
 public:
  explicit BitReader(BitString bits) : bits_(std::move(bits)) {}

  std::uint64_t read_uint(std::size_t width) {
    check(width);
    std::uint64_t v = bits_.get_uint(pos_, width);
    pos_ += width;
    return v;
  }

  BitString read_bits(std::size_t len) {
    check(len);
    BitString v = bits_.slice(pos_, len);
    pos_ += len;
    return v;
  }

  bool read_bool() { return read_uint(1) != 0; }

  std::size_t remaining() const { return bits_.size() - pos_; }
  std::size_t position() const { return pos_; }
  bool exhausted() const { return pos_ == bits_.size(); }

 private:
  void check(std::size_t len) const {
    // Compare against the remainder, not pos_ + len: a hostile 64-bit length
    // near SIZE_MAX would overflow the sum and slip past the bound.
    if (len > bits_.size() - pos_) {
      throw std::out_of_range("BitReader: read past end (pos=" + std::to_string(pos_) +
                              " len=" + std::to_string(len) +
                              " size=" + std::to_string(bits_.size()) + ")");
    }
  }

  BitString bits_;
  std::size_t pos_ = 0;
};

// --------------------------------------------------------------------------
// Self-describing fields: a 64-bit length prefix followed by the payload, so
// a reader with no schema knowledge of the value can still skip or load it.

/// Write `bits` as a length-prefixed field.
void write_bitstring_field(BitWriter& w, const BitString& bits);

/// Read a field written by write_bitstring_field.
BitString read_bitstring_field(BitReader& r);

/// Write a UTF-8/byte string as a length-prefixed field (length in bytes).
void write_string_field(BitWriter& w, const std::string& s);

/// Read a field written by write_string_field.
std::string read_string_field(BitReader& r);

// --------------------------------------------------------------------------
// File round-trip for encodings. The on-disk layout is an 8-byte
// little-endian bit count followed by the packed bytes, so a BitString of any
// (non-byte-aligned) length survives save -> load exactly.

/// Write `bits` to `path`, replacing any existing file. Throws
/// std::runtime_error on IO failure.
void write_bits_file(const std::string& path, const BitString& bits);

/// Read a file written by write_bits_file. Throws std::runtime_error on IO
/// failure or a malformed (truncated) file.
BitString read_bits_file(const std::string& path);

}  // namespace mpch::util
