// cli.hpp — minimal flag parsing for example/bench binaries.
//
// Supports `--name=value`, `--name value`, and boolean `--flag`. Unknown
// flags are an error (typos in experiment sweeps should fail loudly, not
// silently run the default).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mpch::util {

class CliArgs {
 public:
  /// Parse argv; throws std::invalid_argument on malformed input.
  CliArgs(int argc, const char* const* argv);

  bool has(const std::string& name) const { return values_.count(name) != 0; }

  std::string get_string(const std::string& name, const std::string& fallback) const;
  std::uint64_t get_u64(const std::string& name, std::uint64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

  /// Names that were provided but never queried — call at the end of main to
  /// reject typos.
  std::vector<std::string> unused() const;

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> queried_;
  std::vector<std::string> positional_;
};

}  // namespace mpch::util
