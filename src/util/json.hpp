// json.hpp — a small shared JSON writer for the CLI/bench emitters.
//
// mpch-analyze and mpch-verify grew hand-rolled JSON emitters before this
// existed; mpch-chaos --format json, mpch-serve, and the bench JSON artifacts
// use this writer instead of hand-concatenating a third/fourth/fifth copy.
// It is a streaming writer, not a DOM: keys and values append in call order
// (deterministic output — same calls, same bytes), commas and nesting are
// managed by an explicit container stack, and strings are escaped per RFC
// 8259 (quote, backslash, and control characters; everything else passes
// through byte-for-byte).
//
// Misuse (a value where a key is required, end_object inside an array, ...)
// throws std::logic_error: the writer is for trusted in-process emitters, so
// a structural mistake is a bug to surface loudly, not an input to tolerate.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mpch::util {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object member key; must be directly inside an object, and must be
  /// followed by exactly one value (or container) before the next key.
  JsonWriter& key(const std::string& name);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  /// Doubles render with up to `decimals` fractional digits, trailing zeros
  /// trimmed — matches util::format_double so tables and JSON agree.
  JsonWriter& value_double(double v, int decimals = 3);
  JsonWriter& value_null();

  /// Shorthand for key(name).value(v).
  template <typename V>
  JsonWriter& member(const std::string& name, const V& v) {
    key(name);
    return value(v);
  }
  JsonWriter& member_double(const std::string& name, double v, int decimals = 3) {
    key(name);
    return value_double(v, decimals);
  }

  /// The document so far. Valid JSON once every container is closed.
  const std::string& str() const { return out_; }
  bool complete() const { return stack_.empty() && started_; }

  static std::string escape(const std::string& raw);

 private:
  enum class Frame : std::uint8_t { kObject, kArray };

  void begin_value(bool is_key);

  std::string out_;
  std::vector<Frame> stack_;
  std::vector<bool> first_in_frame_;
  bool expecting_value_ = false;  ///< a key was written, its value is pending
  bool started_ = false;
};

}  // namespace mpch::util
