#include "util/serialize.hpp"

#include <fstream>

namespace mpch::util {

void write_bitstring_field(BitWriter& w, const BitString& bits) {
  w.write_uint(bits.size(), 64);
  w.write_bits(bits);
}

BitString read_bitstring_field(BitReader& r) {
  std::uint64_t len = r.read_uint(64);
  return r.read_bits(static_cast<std::size_t>(len));
}

void write_string_field(BitWriter& w, const std::string& s) {
  w.write_uint(s.size(), 64);
  std::vector<std::uint8_t> bytes(s.begin(), s.end());
  w.write_bits(BitString::from_bytes(bytes));
}

std::string read_string_field(BitReader& r) {
  std::uint64_t len = r.read_uint(64);
  // Guard the byte->bit multiply: a hostile length near 2^61 would wrap and
  // read_bits would see a tiny (aliased) request instead of rejecting it.
  if (len > r.remaining() / 8) {
    throw std::out_of_range("read_string_field: declared length " + std::to_string(len) +
                            " bytes exceeds the remaining " + std::to_string(r.remaining()) +
                            " bits");
  }
  BitString bits = r.read_bits(static_cast<std::size_t>(len) * 8);
  const auto& bytes = bits.bytes();
  return std::string(bytes.begin(), bytes.end());
}

void write_bits_file(const std::string& path, const BitString& bits) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("write_bits_file: cannot open '" + path + "' for writing");
  std::uint64_t nbits = bits.size();
  std::uint8_t header[8];
  for (int i = 0; i < 8; ++i) header[i] = static_cast<std::uint8_t>(nbits >> (i * 8));
  out.write(reinterpret_cast<const char*>(header), 8);
  const auto& bytes = bits.bytes();
  if (!bytes.empty()) {
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
  }
  if (!out) throw std::runtime_error("write_bits_file: write to '" + path + "' failed");
}

BitString read_bits_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("read_bits_file: cannot open '" + path + "'");
  std::uint8_t header[8];
  in.read(reinterpret_cast<char*>(header), 8);
  if (in.gcount() != 8) throw std::runtime_error("read_bits_file: '" + path + "' truncated header");
  std::uint64_t nbits = 0;
  for (int i = 0; i < 8; ++i) nbits |= static_cast<std::uint64_t>(header[i]) << (i * 8);
  std::size_t nbytes = static_cast<std::size_t>((nbits + 7) / 8);
  std::vector<std::uint8_t> bytes(nbytes);
  if (nbytes != 0) {
    in.read(reinterpret_cast<char*>(bytes.data()), static_cast<std::streamsize>(nbytes));
    if (static_cast<std::size_t>(in.gcount()) != nbytes) {
      throw std::runtime_error("read_bits_file: '" + path + "' truncated payload (want " +
                               std::to_string(nbytes) + " bytes)");
    }
  }
  BitString out = BitString::from_bytes(bytes);
  out.truncate(static_cast<std::size_t>(nbits));
  return out;
}

}  // namespace mpch::util
