// math.hpp — integer/log-space helpers shared by the parameter derivations
// (Table 3) and the exact bound calculators (src/theory).
#pragma once

#include <cmath>
#include <cstdint>
#include <stdexcept>

namespace mpch::util {

/// ceil(log2(x)) for x >= 1; the paper's ⌈log v⌉ bit widths.
constexpr std::uint64_t ceil_log2(std::uint64_t x) {
  if (x == 0) throw std::invalid_argument("ceil_log2(0)");
  std::uint64_t bits = 0;
  std::uint64_t v = x - 1;
  while (v > 0) {
    ++bits;
    v >>= 1;
  }
  return bits == 0 ? 1 : bits;  // convention: indices over [1] still take 1 bit
}

/// floor(log2(x)) for x >= 1.
constexpr std::uint64_t floor_log2(std::uint64_t x) {
  if (x == 0) throw std::invalid_argument("floor_log2(0)");
  std::uint64_t bits = 0;
  while (x > 1) {
    ++bits;
    x >>= 1;
  }
  return bits;
}

/// Exact ceiling division for non-negative integers.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  if (b == 0) throw std::invalid_argument("ceil_div by zero");
  return (a + b - 1) / b;
}

/// Is x a power of two (x >= 1)?
constexpr bool is_pow2(std::uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// log2 as a real number (long double) — the currency of src/theory, where
/// probabilities like v^{log^2 w} * 2^{-u} overflow any fixed-width float if
/// evaluated directly.
inline long double log2l_of(long double x) { return std::log2(x); }

/// Numerically stable log2(2^a + 2^b): the "union bound" addition in
/// log-space.
inline long double log2_add(long double a, long double b) {
  if (std::isinf(a) && a < 0) return b;
  if (std::isinf(b) && b < 0) return a;
  long double hi = a > b ? a : b;
  long double lo = a > b ? b : a;
  return hi + std::log2(1.0L + std::exp2(lo - hi));
}

/// Clamp a log2-probability to at most 0 (probability 1).
inline long double clamp_log2_prob(long double lp) { return lp > 0.0L ? 0.0L : lp; }

/// Saturating integer exponentiation base^e, capped at cap.
constexpr std::uint64_t pow_sat(std::uint64_t base, std::uint64_t e, std::uint64_t cap) {
  std::uint64_t r = 1;
  for (std::uint64_t i = 0; i < e; ++i) {
    if (base != 0 && r > cap / base) return cap;
    r *= base;
    if (r >= cap) return cap;
  }
  return r;
}

}  // namespace mpch::util
