#include "util/cli.hpp"

#include <stdexcept>

namespace mpch::util {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    if (body.empty()) throw std::invalid_argument("CliArgs: bare '--'");
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "true";  // boolean flag
    }
  }
}

std::string CliArgs::get_string(const std::string& name, const std::string& fallback) const {
  queried_[name] = true;
  auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second;
}

std::uint64_t CliArgs::get_u64(const std::string& name, std::uint64_t fallback) const {
  queried_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::stoull(it->second);
}

double CliArgs::get_double(const std::string& name, double fallback) const {
  queried_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return std::stod(it->second);
}

bool CliArgs::get_bool(const std::string& name, bool fallback) const {
  queried_[name] = true;
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::string> CliArgs::unused() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : values_) {
    if (!queried_.count(name)) out.push_back(name);
  }
  return out;
}

}  // namespace mpch::util
