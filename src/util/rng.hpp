// rng.hpp — deterministic, splittable pseudo-randomness for simulations.
//
// Everything in the library that needs randomness (oracle sampling, input
// generation, Monte-Carlo trials) takes an explicit Rng so runs are exactly
// reproducible from a seed. The generator is xoshiro256**, seeded through
// SplitMix64 per the reference recommendation.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace mpch::util {

/// SplitMix64 — used to expand seeds and derive independent substreams.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — fast, high-quality, 256-bit state PRNG.
/// Satisfies UniformRandomBitGenerator so it can drive <random> distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5EEDED5EEDED5EEDULL) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() { return next_u64(); }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound) without modulo bias (Lemire's method fallback to
  /// rejection for exactness).
  std::uint64_t next_below(std::uint64_t bound) {
    if (bound == 0) return 0;
    // Rejection sampling over the largest multiple of bound.
    std::uint64_t threshold = (0 - bound) % bound;  // == 2^64 mod bound
    for (;;) {
      std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform double in [0, 1).
  double next_double() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  bool next_bool() { return (next_u64() >> 63) != 0; }

  /// Derive an independent child generator (for thread-parallel trials).
  Rng split() {
    // Fold the whole state through SplitMix so children of successive splits
    // are decorrelated from the parent's future output stream.
    SplitMix64 sm(next_u64() ^ 0xA5A5A5A5DEADBEEFULL);
    Rng child(sm.next());
    return child;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace mpch::util
