#include "util/bitstring.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

namespace mpch::util {

namespace {
constexpr std::size_t kByteBits = 8;

std::size_t bytes_for(std::size_t nbits) { return (nbits + kByteBits - 1) / kByteBits; }
}  // namespace

BitString::BitString(std::size_t nbits) : bytes_(bytes_for(nbits), 0), nbits_(nbits) {}

BitString BitString::from_uint(std::uint64_t value, std::size_t nbits) {
  if (nbits > 64) throw std::invalid_argument("BitString::from_uint: nbits > 64");
  BitString out(nbits);
  out.set_uint(0, nbits, value);
  return out;
}

BitString BitString::from_binary_string(const std::string& bits) {
  BitString out(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] == '1') {
      out.set(i, true);
    } else if (bits[i] != '0') {
      throw std::invalid_argument("BitString::from_binary_string: non-binary character");
    }
  }
  return out;
}

BitString BitString::from_bytes(const std::vector<std::uint8_t>& bytes) {
  BitString out(bytes.size() * kByteBits);
  out.bytes_ = bytes;
  return out;
}

void BitString::assert_range(std::size_t pos, std::size_t len) const {
  if (pos + len > nbits_ || pos + len < pos) {
    throw std::out_of_range("BitString: range [" + std::to_string(pos) + ", " +
                            std::to_string(pos + len) + ") exceeds size " +
                            std::to_string(nbits_));
  }
}

bool BitString::get(std::size_t i) const {
  assert_range(i, 1);
  return (bytes_[i / kByteBits] >> (kByteBits - 1 - i % kByteBits)) & 1U;
}

void BitString::set(std::size_t i, bool v) {
  assert_range(i, 1);
  std::uint8_t mask = static_cast<std::uint8_t>(1U << (kByteBits - 1 - i % kByteBits));
  if (v) {
    bytes_[i / kByteBits] |= mask;
  } else {
    bytes_[i / kByteBits] &= static_cast<std::uint8_t>(~mask);
  }
}

std::uint64_t BitString::get_uint(std::size_t pos, std::size_t len) const {
  if (len > 64) throw std::invalid_argument("BitString::get_uint: len > 64");
  assert_range(pos, len);
  std::uint64_t out = 0;
  // Byte-at-a-time fast path; bit loop only at the unaligned edges.
  std::size_t i = pos;
  std::size_t end = pos + len;
  while (i < end && (i % kByteBits) != 0) {
    out = (out << 1) | static_cast<std::uint64_t>(get(i));
    ++i;
  }
  while (i + kByteBits <= end) {
    out = (out << kByteBits) | bytes_[i / kByteBits];
    i += kByteBits;
  }
  while (i < end) {
    out = (out << 1) | static_cast<std::uint64_t>(get(i));
    ++i;
  }
  return out;
}

void BitString::set_uint(std::size_t pos, std::size_t len, std::uint64_t value) {
  if (len > 64) throw std::invalid_argument("BitString::set_uint: len > 64");
  assert_range(pos, len);
  for (std::size_t i = 0; i < len; ++i) {
    bool bit = (value >> (len - 1 - i)) & 1ULL;
    set(pos + i, bit);
  }
}

BitString BitString::slice(std::size_t pos, std::size_t len) const {
  assert_range(pos, len);
  BitString out(len);
  if (pos % kByteBits == 0) {
    // Aligned fast path: straight byte copy then mask the tail.
    std::size_t nb = bytes_for(len);
    std::copy_n(bytes_.begin() + static_cast<std::ptrdiff_t>(pos / kByteBits), nb,
                out.bytes_.begin());
    out.clear_tail_slack();
  } else {
    for (std::size_t i = 0; i < len; ++i) out.set(i, get(pos + i));
  }
  return out;
}

void BitString::splice(std::size_t pos, const BitString& other) {
  assert_range(pos, other.size());
  for (std::size_t i = 0; i < other.size(); ++i) set(pos + i, other.get(i));
}

BitString BitString::operator+(const BitString& rhs) const {
  BitString out(nbits_ + rhs.nbits_);
  if (nbits_ % kByteBits == 0) {
    std::copy(bytes_.begin(), bytes_.end(), out.bytes_.begin());
    for (std::size_t i = 0; i < rhs.nbits_; ++i) out.set(nbits_ + i, rhs.get(i));
  } else {
    for (std::size_t i = 0; i < nbits_; ++i) out.set(i, get(i));
    for (std::size_t i = 0; i < rhs.nbits_; ++i) out.set(nbits_ + i, rhs.get(i));
  }
  return out;
}

BitString& BitString::operator+=(const BitString& rhs) {
  // In-place append: O(|rhs|), not O(|this| + |rhs|) — BitWriter relies on
  // this when assembling large encodings (e.g. full oracle tables).
  std::size_t old_bits = nbits_;
  nbits_ += rhs.nbits_;
  bytes_.resize(bytes_for(nbits_), 0);
  if (old_bits % kByteBits == 0) {
    std::copy(rhs.bytes_.begin(), rhs.bytes_.end(),
              bytes_.begin() + static_cast<std::ptrdiff_t>(old_bits / kByteBits));
    clear_tail_slack();
  } else {
    for (std::size_t i = 0; i < rhs.nbits_; ++i) set(old_bits + i, rhs.get(i));
  }
  return *this;
}

void BitString::pad_zeros(std::size_t len) {
  nbits_ += len;
  bytes_.resize(bytes_for(nbits_), 0);
}

void BitString::truncate(std::size_t len) {
  if (len > nbits_) throw std::out_of_range("BitString::truncate: len > size()");
  nbits_ = len;
  bytes_.resize(bytes_for(nbits_));
  clear_tail_slack();
}

BitString BitString::operator^(const BitString& rhs) const {
  if (nbits_ != rhs.nbits_) throw std::invalid_argument("BitString::operator^: length mismatch");
  BitString out(nbits_);
  for (std::size_t i = 0; i < bytes_.size(); ++i) out.bytes_[i] = bytes_[i] ^ rhs.bytes_[i];
  return out;
}

bool BitString::operator==(const BitString& rhs) const {
  return nbits_ == rhs.nbits_ && bytes_ == rhs.bytes_;
}

bool BitString::operator<(const BitString& rhs) const {
  if (nbits_ != rhs.nbits_) return nbits_ < rhs.nbits_;
  return bytes_ < rhs.bytes_;
}

std::size_t BitString::popcount() const {
  std::size_t count = 0;
  for (std::uint8_t b : bytes_) count += static_cast<std::size_t>(std::popcount(b));
  return count;
}

std::string BitString::to_binary_string() const {
  std::string out;
  out.reserve(nbits_);
  for (std::size_t i = 0; i < nbits_; ++i) out.push_back(get(i) ? '1' : '0');
  return out;
}

std::string BitString::to_hex_string() const {
  static const char* kHex = "0123456789abcdef";
  std::string out;
  std::size_t nibbles = (nbits_ + 3) / 4;
  out.reserve(nibbles);
  for (std::size_t i = 0; i < nibbles; ++i) {
    std::size_t pos = i * 4;
    std::size_t len = std::min<std::size_t>(4, nbits_ - pos);
    std::uint64_t val = get_uint(pos, len) << (4 - len);
    out.push_back(kHex[val & 0xF]);
  }
  return out;
}

std::uint64_t BitString::hash() const {
  // FNV-1a over (length, bytes). Tail slack is zeroed by invariant, so the
  // byte buffer is canonical.
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint8_t byte) {
    h ^= byte;
    h *= 1099511628211ULL;
  };
  for (int i = 0; i < 8; ++i) mix(static_cast<std::uint8_t>(nbits_ >> (i * 8)));
  for (std::uint8_t b : bytes_) mix(b);
  return h;
}

void BitString::clear_tail_slack() {
  if (nbits_ % kByteBits != 0 && !bytes_.empty()) {
    std::size_t used = nbits_ % kByteBits;
    std::uint8_t mask = static_cast<std::uint8_t>(0xFFU << (kByteBits - used));
    bytes_.back() &= mask;
  }
}

}  // namespace mpch::util
