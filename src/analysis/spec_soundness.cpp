#include "analysis/spec_soundness.hpp"

#include <string>

namespace mpch::analysis {

namespace {

void check_peak(ViolationKind kind, const mpc::Peak& observed, std::uint64_t limit,
                std::uint64_t round, const std::string& what, const std::string& unit,
                AnalysisReport& report) {
  if (observed.value <= limit) return;
  Diagnostic d;
  d.kind = kind;
  d.round = round;
  d.machine = observed.machine;
  d.value = observed.value;
  d.limit = limit;
  d.message = "observed " + what + " " + std::to_string(observed.value) + unit +
              " > declared " + std::to_string(limit) + unit;
  report.violations.push_back(d);
}

}  // namespace

AnalysisReport check_soundness(const ProtocolSpec& spec, const mpc::MpcRunResult& result,
                               const mpc::MpcConfig& config) {
  AnalysisReport report;
  report.protocol = spec.protocol;

  if (result.rounds_used > spec.max_rounds) {
    Diagnostic d;
    d.kind = ViolationKind::kRoundCount;
    d.round = result.rounds_used;
    d.machine = 0;
    d.value = result.rounds_used;
    d.limit = spec.max_rounds;
    d.message = "run used " + std::to_string(result.rounds_used) + " rounds > declared " +
                std::to_string(spec.max_rounds);
    report.violations.push_back(d);
  }

  for (const auto& stats : result.trace.rounds()) {
    const RoundEnvelope& env = spec.envelope(stats.round);
    check_peak(ViolationKind::kMemory, stats.peak_memory_bits, env.memory_bits, stats.round,
               "round-start memory", " bits", report);
    check_peak(ViolationKind::kQueryBudget, stats.peak_queries,
               effective_query_bound(spec, env, config), stats.round, "oracle queries", "",
               report);
    check_peak(ViolationKind::kFanOut, stats.peak_fan_out, env.fan_out, stats.round, "fan-out",
               " messages", report);
    check_peak(ViolationKind::kFanIn, stats.peak_fan_in, env.fan_in, stats.round, "fan-in",
               " messages", report);
    check_peak(ViolationKind::kSentBits, stats.peak_sent_bits, env.sent_bits, stats.round,
               "sent volume", " bits", report);
    check_peak(ViolationKind::kInboxCapacity, stats.peak_recv_bits, env.recv_bits, stats.round,
               "delivered volume", " bits", report);
    check_peak(ViolationKind::kMessageSize, stats.peak_message_bits, env.max_message_bits,
               stats.round, "message payload", " bits", report);
  }

  return report;
}

}  // namespace mpch::analysis
