// spec_soundness.hpp — the dynamic half of the conformance story.
//
// A static checker is only as good as the specs it is fed: a strategy whose
// declared envelope understates its real footprint would pass check_spec and
// then blow the runtime guards anyway. This pass closes the loop: run the
// protocol under the instrumented simulation (RoundStats::peak_* record each
// round's per-machine maxima with witness machines) and assert the observed
// trace never exceeds the declared ProtocolSpec. Tests run it for every
// in-tree strategy, so a spec that rots fails CI with machine/round
// provenance instead of silently weakening the static pass.
#pragma once

#include "analysis/protocol_spec.hpp"
#include "analysis/static_checker.hpp"
#include "mpc/simulation.hpp"
#include "mpc/trace.hpp"

namespace mpch::analysis {

/// Compare an executed run against `spec`: every per-round observed peak must
/// be <= the declared envelope for that round (queries compared against the
/// budget-clamped bound via effective_query_bound), and the run must finish
/// within the declared round count. Diagnostics carry the observed value,
/// the declared limit, and the witness machine/round.
AnalysisReport check_soundness(const ProtocolSpec& spec, const mpc::MpcRunResult& result,
                               const mpc::MpcConfig& config);

}  // namespace mpch::analysis
