// protocol_spec.hpp — MPC protocols as declarative, statically-checkable
// objects.
//
// Theorem 3.1 only binds algorithms that genuinely obey Definitions 2.1/2.2:
// local memory <= s bits, per-round per-machine oracle budget q, no
// intra-round cross-machine visibility. The simulator enforces those
// invariants at *runtime*, mid-execution, after cycles are spent. A
// ProtocolSpec is the same contract stated *declaratively*: each strategy
// publishes its worst-case per-round resource envelope (memory footprint,
// message fan-in/fan-out and payload sizes, oracle queries, round count as a
// function of its Params), and analysis/static_checker.hpp proves or refutes
// budget conformance against an MpcConfig before a single oracle call — the
// way an ML compiler shape-checks a graph before launching kernels.
//
// Specs cannot silently rot: analysis/spec_soundness.hpp cross-validates a
// declared spec against the per-round peaks an instrumented simulation run
// actually observed (RoundStats::peak_*), so every strategy's spec is pinned
// to reality by tests.
//
// This header is dependency-free on purpose (no mpc/, no strategies/):
// strategies include it to publish specs, and the checkers include it plus
// whatever they compare against.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mpch::analysis {

/// Worst-case per-machine resource bounds for one round. "Worst case" is over
/// machines; `witness_machine` names a machine that attains (or dominates)
/// the bound so diagnostics carry provenance — e.g. the gather target in
/// full-memory, or the frontier carrier in pointer-chasing.
struct RoundEnvelope {
  std::uint64_t memory_bits = 0;       ///< round-start memory (inbox union) M_i^k
  std::uint64_t oracle_queries = 0;    ///< oracle queries issued by one machine
  std::uint64_t fan_out = 0;           ///< messages sent by one machine
  std::uint64_t fan_in = 0;            ///< messages delivered to one machine
  std::uint64_t sent_bits = 0;         ///< total bits sent by one machine
  std::uint64_t recv_bits = 0;         ///< total bits delivered to one machine
  std::uint64_t max_message_bits = 0;  ///< largest single payload
  std::uint64_t witness_machine = 0;   ///< machine attaining the worst case
};

/// The declarative surface of an MPC protocol: everything the static checker
/// needs to decide "does this protocol fit inside this MpcConfig" without
/// executing it. All bounds are worst-case functions of the strategy's own
/// parameters (LineParams, plan, instance count, ...), never of the runtime
/// input.
struct ProtocolSpec {
  std::string protocol;  ///< strategy name() this spec describes

  /// Machine indices the protocol addresses are in [0, machines). Running
  /// under an MpcConfig with fewer machines is a (static) routing violation.
  std::uint64_t machines = 0;

  /// Declared worst-case round count R(params). The protocol commits to
  /// producing output within R rounds; exceeding it at runtime is a
  /// spec-soundness failure, and R > MpcConfig::max_rounds is a static
  /// round-count blowup.
  std::uint64_t max_rounds = 0;

  /// Definition 2.2 protocols need the oracle; plain-model (Definition 2.1)
  /// protocols set false and declare zero queries everywhere.
  bool needs_oracle = false;

  /// True for strategies that adaptively stop querying when the per-round
  /// budget runs out (all the pointer-chasing family do — they check
  /// remaining_budget() and carry the frontier over). For such protocols the
  /// effective per-round query bound is min(envelope, q) and the static
  /// query check can never fail; protocols that do NOT clamp must declare an
  /// envelope <= q or be rejected.
  bool clamps_queries_to_budget = false;

  /// Rounds 0..prologue.size()-1 get their own envelopes (gather protocols
  /// have a shape change between round 0 and 1); every later round is bound
  /// by `steady`.
  std::vector<RoundEnvelope> prologue;
  RoundEnvelope steady;

  const RoundEnvelope& envelope(std::uint64_t round) const {
    return round < prologue.size() ? prologue[round] : steady;
  }

  /// Number of distinct round shapes worth checking statically: each
  /// prologue round, plus `steady` once if rounds extend past the prologue.
  std::uint64_t distinct_round_shapes() const {
    std::uint64_t shapes = prologue.size();
    if (max_rounds > prologue.size()) shapes += 1;
    return shapes;
  }

  /// Highest machine index any message may be addressed to.
  std::uint64_t max_destination() const { return machines == 0 ? 0 : machines - 1; }

  /// One-line human-readable summary (worst envelope over all shapes).
  std::string summary() const;

  /// The same protocol under authenticated messaging: every message sent
  /// carries a `tag_bits` MAC (mpc::kMessageTagBits when run through the
  /// simulator), which the runtime meters against the budgets. Traffic
  /// bounds grow by one tag per message (sent += fan_out·tag, recv +=
  /// fan_in·tag, max_message += tag); round-start memory at round r >= 1
  /// grows by fan_in(r-1)·tag because the inbox union holds the previous
  /// barrier's tagged deliveries — round 0's input partition is untagged.
  /// `steady` takes the worst incoming fan-in over the rounds it covers.
  ProtocolSpec with_authentication(std::uint64_t tag_bits) const;
};

/// Implemented by strategies that publish a ProtocolSpec. Kept separate from
/// mpc::MpcAlgorithm so algorithms without a spec (mpclib, test fakes) are
/// untouched; callers discover the spec with dynamic_cast.
class ProtocolSpecProvider {
 public:
  virtual ~ProtocolSpecProvider() = default;
  virtual ProtocolSpec protocol_spec() const = 0;
};

}  // namespace mpch::analysis
