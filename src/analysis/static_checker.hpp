// static_checker.hpp — prove or refute ProtocolSpec-vs-MpcConfig conformance
// without executing the protocol.
//
// The checks mirror, one for one, the runtime guards of MpcSimulation and
// CountingOracle:
//
//   runtime guard                      static check
//   ---------------------------------------------------------------------
//   MemoryViolation (inbox union > s)  kMemory / kInboxCapacity
//   QueryBudgetExceeded                kQueryBudget
//   RoutingViolation (to >= m)         kRouting
//   max_rounds cap hit                 kRoundCount
//   null-oracle crash                  kOracleMissing
//
// Every diagnostic carries machine/round provenance (the envelope's witness
// machine and the first offending round), so a rejected protocol reads the
// same as a runtime violation would — just before any cycles are spent.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/protocol_spec.hpp"
#include "mpc/simulation.hpp"

namespace mpch::analysis {

enum class ViolationKind {
  kMemory,         ///< declared round-start memory exceeds s
  kInboxCapacity,  ///< declared per-round delivery exceeds s
  kQueryBudget,    ///< declared per-round queries exceed q (unclamped protocols)
  kRouting,        ///< protocol addresses machine indices >= m
  kRoundCount,     ///< declared round count exceeds the configured cap
  kOracleMissing,  ///< protocol needs an oracle the config cannot provide
  kFanIn,          ///< observed fan-in exceeded the declared envelope
  kFanOut,         ///< observed fan-out exceeded the declared envelope
  kSentBits,       ///< observed sent bits exceeded the declared envelope
  kMessageSize,    ///< observed payload exceeded the declared envelope
};

const char* violation_kind_name(ViolationKind kind);

/// One conformance failure with provenance: which bound, where, by how much.
struct Diagnostic {
  ViolationKind kind = ViolationKind::kMemory;
  std::uint64_t round = 0;    ///< first offending round
  std::uint64_t machine = 0;  ///< witness machine
  std::uint64_t value = 0;    ///< declared (static pass) or observed (soundness pass)
  std::uint64_t limit = 0;    ///< the bound that was exceeded
  std::string message;        ///< full human-readable diagnostic

  std::string to_string() const;
};

struct AnalysisReport {
  std::string protocol;
  std::vector<Diagnostic> violations;

  bool ok() const { return violations.empty(); }
  /// Multi-line report: "PASS"/"FAIL" headline plus one line per diagnostic.
  std::string format() const;
  /// One JSON object per report — the machine-readable twin of format(),
  /// mirroring mpch-verify's report shape so `--format json` consumers can
  /// share parsing code: {"protocol":...,"ok":...,"violations":[{"kind":...,
  /// "round":...,"machine":...,"value":...,"limit":...,"message":...}]}.
  std::string to_json() const;
};

/// The static pass: verify `spec` fits inside `config`. Does not execute
/// anything. Throws std::invalid_argument on a malformed spec (zero machines
/// or zero rounds) — that is a bug in the spec, not a conformance result.
AnalysisReport check_spec(const ProtocolSpec& spec, const mpc::MpcConfig& config);

/// Effective per-round query bound of `spec` under `config` — the declared
/// envelope, clamped to q for budget-adaptive protocols. Shared by the
/// static and soundness passes so they can never disagree about what a
/// protocol promised.
std::uint64_t effective_query_bound(const ProtocolSpec& spec, const RoundEnvelope& env,
                                    const mpc::MpcConfig& config);

/// Fieldwise spec dominance: does `inner` fit inside `outer`? Every resource
/// `inner` may use per round (memory, queries, fan-in/out, traffic, message
/// size), its machine count, and its round count must be <= what `outer`
/// declares. Diagnostics reuse the check_spec vocabulary (kRouting for
/// machines, kRoundCount for rounds, kOracleMissing when inner needs an
/// oracle outer does not). This is the middle link of the verifier's sandwich
/// check: observed peaks <= inferred spec <= hand-declared spec.
AnalysisReport check_spec_dominance(const ProtocolSpec& inner, const ProtocolSpec& outer);

}  // namespace mpch::analysis
