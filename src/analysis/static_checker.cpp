#include "analysis/static_checker.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace mpch::analysis {

const char* violation_kind_name(ViolationKind kind) {
  switch (kind) {
    case ViolationKind::kMemory:
      return "memory";
    case ViolationKind::kInboxCapacity:
      return "inbox-capacity";
    case ViolationKind::kQueryBudget:
      return "query-budget";
    case ViolationKind::kRouting:
      return "routing";
    case ViolationKind::kRoundCount:
      return "round-count";
    case ViolationKind::kOracleMissing:
      return "oracle-missing";
    case ViolationKind::kFanIn:
      return "fan-in";
    case ViolationKind::kFanOut:
      return "fan-out";
    case ViolationKind::kSentBits:
      return "sent-bits";
    case ViolationKind::kMessageSize:
      return "message-size";
  }
  return "unknown";
}

std::string Diagnostic::to_string() const {
  std::ostringstream os;
  os << "[" << violation_kind_name(kind) << "] round " << round << ", machine " << machine
     << ": " << message;
  return os.str();
}

std::string AnalysisReport::format() const {
  std::ostringstream os;
  os << protocol << ": " << (ok() ? "PASS" : "FAIL");
  if (!ok()) {
    os << " (" << violations.size() << (violations.size() == 1 ? " violation" : " violations")
       << ")";
    for (const auto& d : violations) os << "\n  " << d.to_string();
  }
  return os.str();
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c; break;
    }
  }
  return out;
}

}  // namespace

std::string AnalysisReport::to_json() const {
  std::ostringstream os;
  os << "{\"protocol\":\"" << json_escape(protocol)
     << "\",\"ok\":" << (ok() ? "true" : "false") << ",\"violations\":[";
  for (std::size_t i = 0; i < violations.size(); ++i) {
    const Diagnostic& d = violations[i];
    os << (i ? "," : "") << "{\"kind\":\"" << violation_kind_name(d.kind)
       << "\",\"round\":" << d.round << ",\"machine\":" << d.machine << ",\"value\":" << d.value
       << ",\"limit\":" << d.limit << ",\"message\":\"" << json_escape(d.message) << "\"}";
  }
  os << "]}";
  return os.str();
}

std::string ProtocolSpec::summary() const {
  RoundEnvelope worst;
  for (std::uint64_t r = 0; r < distinct_round_shapes(); ++r) {
    const RoundEnvelope& e = envelope(r == prologue.size() ? max_rounds : r);
    worst.memory_bits = std::max(worst.memory_bits, e.memory_bits);
    worst.oracle_queries = std::max(worst.oracle_queries, e.oracle_queries);
    worst.fan_in = std::max(worst.fan_in, e.fan_in);
    worst.fan_out = std::max(worst.fan_out, e.fan_out);
  }
  std::ostringstream os;
  os << protocol << ": m=" << machines << " rounds<=" << max_rounds << " mem<="
     << worst.memory_bits << "b queries<=" << worst.oracle_queries
     << (clamps_queries_to_budget ? " (clamped to q)" : "") << " fan-in<=" << worst.fan_in
     << " fan-out<=" << worst.fan_out << (needs_oracle ? " oracle" : " plain-model");
  return os.str();
}

ProtocolSpec ProtocolSpec::with_authentication(std::uint64_t tag_bits) const {
  ProtocolSpec spec = *this;
  auto bump_traffic = [tag_bits](RoundEnvelope& e) {
    e.sent_bits += e.fan_out * tag_bits;
    e.recv_bits += e.fan_in * tag_bits;
    if (e.fan_out > 0 || e.max_message_bits > 0) e.max_message_bits += tag_bits;
  };
  // Round-start memory at round r is the inbox union of round r-1's tagged
  // deliveries; round 0 starts from the untagged input partition.
  std::uint64_t prev_fan_in = 0;
  for (RoundEnvelope& e : spec.prologue) {
    e.memory_bits += prev_fan_in * tag_bits;
    prev_fan_in = e.fan_in;
    bump_traffic(e);
  }
  // `steady` bounds every round past the prologue; its incoming fan-in is
  // the last prologue round's (first steady round) or its own (later ones).
  std::uint64_t steady_incoming = std::max(prev_fan_in, spec.steady.fan_in);
  if (spec.prologue.empty() && spec.max_rounds <= 1) steady_incoming = 0;  // only round 0
  spec.steady.memory_bits += steady_incoming * tag_bits;
  bump_traffic(spec.steady);
  return spec;
}

std::uint64_t effective_query_bound(const ProtocolSpec& spec, const RoundEnvelope& env,
                                    const mpc::MpcConfig& config) {
  if (spec.clamps_queries_to_budget) {
    return std::min(env.oracle_queries, config.query_budget);
  }
  return env.oracle_queries;
}

namespace {

Diagnostic make_diag(ViolationKind kind, std::uint64_t round, std::uint64_t machine,
                     std::uint64_t value, std::uint64_t limit, const std::string& message) {
  Diagnostic d;
  d.kind = kind;
  d.round = round;
  d.machine = machine;
  d.value = value;
  d.limit = limit;
  d.message = message;
  return d;
}

/// Static checks for one round shape. `round` is the concrete round index
/// used for provenance (for the steady-state shape, the first steady round).
void check_round(const ProtocolSpec& spec, const RoundEnvelope& env, std::uint64_t round,
                 const mpc::MpcConfig& config, AnalysisReport& report) {
  if (env.memory_bits > config.local_memory_bits) {
    report.violations.push_back(make_diag(
        ViolationKind::kMemory, round, env.witness_machine, env.memory_bits,
        config.local_memory_bits,
        "declared round-start memory " + std::to_string(env.memory_bits) + " bits > s=" +
            std::to_string(config.local_memory_bits)));
  }
  if (env.recv_bits > config.local_memory_bits) {
    report.violations.push_back(make_diag(
        ViolationKind::kInboxCapacity, round, env.witness_machine, env.recv_bits,
        config.local_memory_bits,
        "declared delivery of " + std::to_string(env.recv_bits) + " bits (fan-in " +
            std::to_string(env.fan_in) + ") > s=" + std::to_string(config.local_memory_bits)));
  }
  std::uint64_t queries = effective_query_bound(spec, env, config);
  if (queries > config.query_budget) {
    report.violations.push_back(make_diag(
        ViolationKind::kQueryBudget, round, env.witness_machine, queries, config.query_budget,
        "declared " + std::to_string(queries) + " oracle queries > q=" +
            std::to_string(config.query_budget)));
  }
}

}  // namespace

namespace {

/// Compare one pair of round shapes for dominance; `round` is provenance.
void check_round_dominance(const RoundEnvelope& in, const RoundEnvelope& out, std::uint64_t round,
                           AnalysisReport& report) {
  auto expect = [&](ViolationKind kind, std::uint64_t inner_value, std::uint64_t outer_value,
                    const char* what) {
    if (inner_value <= outer_value) return;
    report.violations.push_back(make_diag(
        kind, round, in.witness_machine, inner_value, outer_value,
        std::string("inner spec ") + what + " " + std::to_string(inner_value) +
            " exceeds outer bound " + std::to_string(outer_value)));
  };
  expect(ViolationKind::kMemory, in.memory_bits, out.memory_bits, "memory bits");
  expect(ViolationKind::kQueryBudget, in.oracle_queries, out.oracle_queries, "oracle queries");
  expect(ViolationKind::kFanOut, in.fan_out, out.fan_out, "fan-out");
  expect(ViolationKind::kFanIn, in.fan_in, out.fan_in, "fan-in");
  expect(ViolationKind::kSentBits, in.sent_bits, out.sent_bits, "sent bits");
  expect(ViolationKind::kInboxCapacity, in.recv_bits, out.recv_bits, "recv bits");
  expect(ViolationKind::kMessageSize, in.max_message_bits, out.max_message_bits, "message bits");
}

}  // namespace

AnalysisReport check_spec_dominance(const ProtocolSpec& inner, const ProtocolSpec& outer) {
  if (inner.machines == 0) {
    throw std::invalid_argument("check_spec_dominance: malformed inner spec (zero machines): " +
                                inner.protocol);
  }
  if (outer.machines == 0) {
    throw std::invalid_argument("check_spec_dominance: malformed outer spec (zero machines): " +
                                outer.protocol);
  }

  AnalysisReport report;
  report.protocol = inner.protocol + " <= " + outer.protocol;

  if (inner.machines > outer.machines) {
    report.violations.push_back(make_diag(
        ViolationKind::kRouting, 0, inner.max_destination(), inner.machines, outer.machines,
        "inner spec addresses " + std::to_string(inner.machines) + " machines but outer declares " +
            std::to_string(outer.machines)));
  }
  if (inner.max_rounds > outer.max_rounds) {
    report.violations.push_back(make_diag(
        ViolationKind::kRoundCount, outer.max_rounds, 0, inner.max_rounds, outer.max_rounds,
        "inner spec declares " + std::to_string(inner.max_rounds) + " rounds but outer declares " +
            std::to_string(outer.max_rounds)));
  }
  if (inner.needs_oracle && !outer.needs_oracle) {
    report.violations.push_back(
        make_diag(ViolationKind::kOracleMissing, 0, 0, 0, 0,
                  "inner spec needs an oracle but the outer spec is plain-model"));
  }

  // Compare every distinct shape pair: each round covered by either prologue,
  // plus one steady-vs-steady comparison past both prologues. Clamp to the
  // rounds the inner spec can actually run.
  const std::uint64_t shapes =
      std::max<std::uint64_t>(inner.prologue.size(), outer.prologue.size());
  const std::uint64_t rounds_to_check = std::min(shapes, inner.max_rounds);
  for (std::uint64_t r = 0; r < rounds_to_check; ++r) {
    check_round_dominance(inner.envelope(r), outer.envelope(r), r, report);
  }
  if (inner.max_rounds > shapes) {
    check_round_dominance(inner.steady, outer.steady, shapes, report);
  }
  return report;
}

AnalysisReport check_spec(const ProtocolSpec& spec, const mpc::MpcConfig& config) {
  if (spec.machines == 0) {
    throw std::invalid_argument("check_spec: malformed spec (zero machines): " + spec.protocol);
  }
  if (spec.max_rounds == 0) {
    throw std::invalid_argument("check_spec: malformed spec (zero rounds): " + spec.protocol);
  }

  AnalysisReport report;
  report.protocol = spec.protocol;

  // Routing: every destination the protocol may address must exist.
  if (spec.machines > config.machines) {
    report.violations.push_back(make_diag(
        ViolationKind::kRouting, 0, spec.max_destination(), spec.max_destination(),
        config.machines,
        "protocol addresses machine " + std::to_string(spec.max_destination()) + " but m=" +
            std::to_string(config.machines) + " (destinations must be < m)"));
  }

  // Round-count blowup: the declared R must fit under the configured cap.
  if (spec.max_rounds > config.max_rounds) {
    report.violations.push_back(make_diag(
        ViolationKind::kRoundCount, config.max_rounds, 0, spec.max_rounds, config.max_rounds,
        "declared round count " + std::to_string(spec.max_rounds) + " > max_rounds=" +
            std::to_string(config.max_rounds)));
  }

  // Oracle availability: a Definition 2.2 protocol under q=0 can never issue
  // the queries it declares (budget-adaptive ones would stall forever).
  if (spec.needs_oracle && config.query_budget == 0) {
    report.violations.push_back(
        make_diag(ViolationKind::kOracleMissing, 0, 0, 0, 0,
                  "protocol requires an oracle but the config grants q=0 queries per round"));
  }

  // Per-round envelopes: each prologue round, then the steady state once
  // (provenance: the first round the steady envelope governs).
  std::uint64_t rounds_to_check = std::min<std::uint64_t>(spec.prologue.size(), spec.max_rounds);
  for (std::uint64_t r = 0; r < rounds_to_check; ++r) {
    check_round(spec, spec.prologue[r], r, config, report);
  }
  if (spec.max_rounds > spec.prologue.size()) {
    check_round(spec, spec.steady, spec.prologue.size(), config, report);
  }

  return report;
}

}  // namespace mpch::analysis
