#include "transport/wire.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace mpch::transport {

namespace {

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint32_t get_u32(const std::uint8_t* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t get_u64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

bool known_type(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(FrameType::kData) &&
         t <= static_cast<std::uint8_t>(FrameType::kStageDone);
}

std::size_t payload_bytes_for(std::uint64_t payload_bits) {
  return static_cast<std::size_t>((payload_bits + 7) / 8);
}

}  // namespace

std::vector<std::uint8_t> encode_frame(const WireFrame& frame) {
  std::vector<std::uint8_t> out;
  const std::size_t payload_len = payload_bytes_for(frame.payload.size());
  out.reserve(kFrameHeaderBytes + payload_len + frame.fanout.size() * 16);
  put_u32(out, kWireMagic);
  out.push_back(static_cast<std::uint8_t>(frame.type));
  put_u64(out, frame.round);
  put_u64(out, frame.from);
  put_u64(out, frame.seq);
  // For broadcast frames the `to` slot carries the fanout count; the
  // (to, seq) entries follow the header, before the payload bytes.
  put_u64(out, frame.type == FrameType::kBroadcast ? frame.fanout.size() : frame.to);
  put_u64(out, frame.payload.size());
  if (frame.type == FrameType::kBroadcast) {
    for (const auto& [to, seq] : frame.fanout) {
      put_u64(out, to);
      put_u64(out, seq);
    }
  }
  const auto& bytes = frame.payload.bytes();
  out.insert(out.end(), bytes.begin(), bytes.end());
  return out;
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t size) {
  buffer_.insert(buffer_.end(), data, data + size);
}

std::optional<WireFrame> FrameDecoder::next() {
  // A wrong magic is provable from the first four bytes alone; reject it
  // without waiting for a full header — the stream can never resynchronise.
  if (buffer_.size() >= 4 && get_u32(buffer_.data()) != kWireMagic) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%08X", get_u32(buffer_.data()));
    throw WireError("wire frame: bad magic 0x" + std::string(buf) + " at byte " +
                    std::to_string(bytes_consumed_) + " (stream is not MPCF-framed or lost sync)");
  }
  if (buffer_.size() < kFrameHeaderBytes) return std::nullopt;

  const std::uint8_t* p = buffer_.data();
  const std::uint8_t type_byte = p[4];
  if (!known_type(type_byte)) {
    throw WireError("wire frame: unknown frame type " + std::to_string(type_byte) + " at byte " +
                    std::to_string(bytes_consumed_ + 4));
  }
  WireFrame frame;
  frame.type = static_cast<FrameType>(type_byte);
  frame.round = get_u64(p + 5);
  frame.from = get_u64(p + 13);
  frame.seq = get_u64(p + 21);
  std::uint64_t to_or_count = get_u64(p + 29);
  const std::uint64_t payload_bits = get_u64(p + 37);

  // Length-prefix gates fire before any buffering or allocation sized from
  // the prefix — a hostile 2^60 here must cost nothing.
  if (payload_bits > max_payload_bits_) {
    throw WireError("wire frame: oversized length prefix (" + std::to_string(payload_bits) +
                    " payload bits > cap " + std::to_string(max_payload_bits_) + ") at byte " +
                    std::to_string(bytes_consumed_ + 37));
  }
  std::uint64_t fanout_count = 0;
  if (frame.type == FrameType::kBroadcast) {
    fanout_count = to_or_count;
    if (fanout_count > kMaxBroadcastFanout) {
      throw WireError("wire frame: oversized length prefix (broadcast fanout " +
                      std::to_string(fanout_count) + " > cap " +
                      std::to_string(kMaxBroadcastFanout) + ") at byte " +
                      std::to_string(bytes_consumed_ + 29));
    }
  } else {
    frame.to = to_or_count;
  }

  const std::size_t total = kFrameHeaderBytes + static_cast<std::size_t>(fanout_count) * 16 +
                            payload_bytes_for(payload_bits);
  if (buffer_.size() < total) return std::nullopt;

  std::size_t pos = kFrameHeaderBytes;
  frame.fanout.reserve(static_cast<std::size_t>(fanout_count));
  for (std::uint64_t i = 0; i < fanout_count; ++i) {
    std::uint64_t to = get_u64(p + pos);
    std::uint64_t seq = get_u64(p + pos + 8);
    frame.fanout.emplace_back(to, seq);
    pos += 16;
  }
  std::vector<std::uint8_t> payload(p + pos, p + total);
  frame.payload = util::BitString::from_bytes(payload);
  frame.payload.truncate(static_cast<std::size_t>(payload_bits));

  buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(total));
  bytes_consumed_ += total;
  return frame;
}

std::vector<WireFrame> decode_frames(const std::vector<std::uint8_t>& bytes,
                                     std::uint64_t max_payload_bits) {
  FrameDecoder decoder(max_payload_bits);
  decoder.feed(bytes.data(), bytes.size());
  std::vector<WireFrame> frames;
  while (auto frame = decoder.next()) frames.push_back(std::move(*frame));
  if (decoder.pending_bytes() != 0) {
    throw WireError("wire frame: truncated frame — " + std::to_string(decoder.pending_bytes()) +
                    " byte(s) after byte " + std::to_string(decoder.bytes_consumed()) +
                    " do not form a complete frame");
  }
  return frames;
}

void InboxAssembler::add(std::uint64_t from, std::uint64_t seq, util::BitString payload) {
  auto it = last_seq_.find(from);
  if (it != last_seq_.end()) {
    if (seq == it->second && options_.reject_duplicates) {
      throw WireError("wire frame: duplicated frame — machine " + std::to_string(machine_) +
                      " received seq " + std::to_string(seq) + " from machine " +
                      std::to_string(from) + " twice in round " + std::to_string(round_));
    }
    if (seq < it->second && options_.reject_reordered) {
      throw WireError("wire frame: reordered frame — machine " + std::to_string(machine_) +
                      " received seq " + std::to_string(seq) + " from machine " +
                      std::to_string(from) + " after seq " + std::to_string(it->second) +
                      " in round " + std::to_string(round_));
    }
    it->second = seq;
  } else {
    last_seq_.emplace(from, seq);
  }
  entries_.push_back({from, seq, std::move(payload)});
}

std::vector<mpc::Message> InboxAssembler::take() {
  std::sort(entries_.begin(), entries_.end(), [](const Entry& a, const Entry& b) {
    return a.from != b.from ? a.from < b.from : a.seq < b.seq;
  });
  std::vector<mpc::Message> inbox;
  inbox.reserve(entries_.size());
  for (auto& e : entries_) {
    inbox.push_back({e.from, machine_, std::move(e.payload)});
  }
  entries_.clear();
  last_seq_.clear();
  return inbox;
}

}  // namespace mpch::transport
