// transport.hpp — pluggable message delivery for the MPC round barrier.
//
// Definition 2.1 says nothing about *how* the s-bit messages move between
// rounds, only that machine i's round-(k+1) memory is exactly the union of
// messages addressed to it in round k. MpcSimulation therefore routes every
// delivery through this interface, and the three backends differ only in
// how bytes travel:
//
//   * InProcessTransport    — messages move by std::move; zero-copy. The
//     behaviour the tree has always had, and the serial reference every
//     other backend is conformance-tested against.
//   * SharedMemoryTransport — each machine owns a byte ring buffer; the
//     worker thread that ran the machine serialises its outbox into the ring
//     as MPCF frames (transport/wire.hpp) before the barrier, and the
//     barrier thread decodes them back. Every payload round-trips through
//     bytes, concurrently, without the thread pool's determinism changing.
//   * SocketTransport       — machines are partitioned into shard groups,
//     one forked router OS process per group; frames travel over AF_UNIX
//     stream sockets, broadcasts coalesce into single frames fanned out
//     along a binomial tree of inter-router channels.
//
// The contract that makes backends interchangeable is *barrier quiescence*
// and *canonical order*:
//   - send() is called once per machine, in machine index order, on the
//     barrier thread, with the machine's validated and metered outbox;
//   - flush() then moves every byte of the round; after it returns, nothing
//     is in flight (idle() is the checkable form — fault/checkpoint.hpp's
//     snapshots stay complete because the wire holds no state at a barrier);
//   - receive() returns machine j's merged deliveries in the canonical
//     (sender index, send order) order of the in-process merge.
// Under this contract a run's outputs, traces, RoundStats, transcripts, and
// checkpoints are bit-identical across backends — the property the
// conformance matrix in tests/transport_conformance_test.cpp pins for every
// strategy, and the property that lets lower-bound measurements taken
// in-process carry to a deployment where the bytes are real.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "mpc/message.hpp"

namespace mpch::transport {

/// The transport failed outside the framed-decode path (router process died,
/// barrier left bytes in flight, start() misconfigured). Frame-level decode
/// failures are the more specific WireError (transport/wire.hpp).
class TransportError : public std::runtime_error {
 public:
  explicit TransportError(const std::string& what) : std::runtime_error(what) {}
};

/// Backend selector, routed through MpcConfig::transport.
enum class TransportKind : std::uint8_t {
  kInProcess = 0,
  kSharedMemory = 1,
  kSocket = 2,
};

/// Parse "in-process"/"inprocess", "shared-memory"/"shm", "socket".
/// Throws std::invalid_argument on anything else (CLI flags fail loudly).
TransportKind parse_transport_kind(const std::string& name);
std::string to_string(TransportKind kind);

/// Backend tuning, mapped from MpcConfig by the simulation.
struct TransportOptions {
  /// Socket backend: number of shard-group router processes. 0 = auto
  /// (min(machines, 2)); clamped to [1, machines].
  std::uint64_t processes = 0;
  /// Frame decoder payload cap (see wire.hpp). Tests shrink it to exercise
  /// the oversized-length-prefix gate without 8 MiB inputs.
  std::uint64_t max_payload_bits = 0;  ///< 0 = kDefaultMaxPayloadBits
  /// Socket backend: coalesce >= this many identical payloads from one
  /// sender into a single broadcast frame fanned out via the router tree.
  /// 0 = default (4).
  std::uint64_t broadcast_min_fanout = 0;
};

class Transport {
 public:
  virtual ~Transport() = default;

  virtual std::string name() const = 0;

  /// Bind to an execution: called once before the first barrier of a
  /// run/resume with the machine count. Backends allocate rings / spawn
  /// router processes here (never lazily mid-round).
  virtual void start(std::uint64_t machines) = 0;

  /// Phase-A hook, called from the worker thread that ran `machine` (at
  /// most once per (round, machine), concurrently across machines): offer
  /// the outbox for early wire encoding. Return true to take the bytes —
  /// the barrier will then call collect_staged() to get them back — or
  /// false to leave the outbox with the caller. Default: not staged.
  virtual bool stage(std::uint64_t /*round*/, std::uint64_t /*machine*/,
                     const std::vector<mpc::Message>& /*outbox*/) {
    return false;
  }

  /// Decode a staged outbox back at the barrier, in original send order.
  /// Only called when stage() returned true for this (round, machine).
  virtual std::vector<mpc::Message> collect_staged(std::uint64_t /*round*/,
                                                   std::uint64_t /*machine*/) {
    throw TransportError(name() + ": collect_staged without a staged outbox");
  }

  /// Barrier step 1 — machine `from`'s outbox, validated and metered, in
  /// machine index order on the barrier thread.
  virtual void send(std::uint64_t round, std::uint64_t from,
                    std::vector<mpc::Message> outbox) = 0;

  /// Barrier step 2 — all sends of the round are in; move every byte.
  virtual void flush(std::uint64_t round) = 0;

  /// Barrier step 3 — machine `to`'s merged deliveries in canonical
  /// (sender, send order) order. Called once per machine, in index order.
  virtual std::vector<mpc::Message> receive(std::uint64_t round, std::uint64_t to) = 0;

  /// True iff no message bytes are in flight or buffered. The round loop
  /// asserts this at every committed barrier: RoundSnapshot is the complete
  /// execution state only because the wire is provably empty when it is
  /// taken (checkpoint/resume capture nothing in flight because there is
  /// nothing in flight to capture).
  virtual bool idle() const = 0;
};

/// Build a backend. Socket construction forks router processes at start().
std::unique_ptr<Transport> make_transport(TransportKind kind, const TransportOptions& options = {});

}  // namespace mpch::transport
